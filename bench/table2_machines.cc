/**
 * @file
 * Regenerates Table II: the server architectures present in the data
 * center, plus the derived throughput parameters the timing model uses.
 */

#include "bench/bench_common.hh"
#include "core/logging.hh"
#include "machine/machine_spec.hh"

using namespace recperf;

int
main()
{
    bench::banner("Table II: data-center server architectures");

    std::printf("  %-22s %10s %10s %10s\n", "", "Haswell", "Broadwell",
                "Skylake");
    auto machines = fleetMachines();
    auto row = [&](const char *label, auto getter) {
        std::printf("  %-22s", label);
        for (const MachineSpec &m : machines)
            std::printf(" %10s", getter(m).c_str());
        std::printf("\n");
    };

    row("Frequency", [](const MachineSpec &m) {
        return strprintf("%.1f GHz", m.freqGHz);
    });
    row("Cores per socket", [](const MachineSpec &m) {
        return strprintf("%u", m.coresPerSocket);
    });
    row("Sockets", [](const MachineSpec &m) {
        return strprintf("%u", m.sockets);
    });
    row("SIMD", [](const MachineSpec &m) {
        return std::string(simdIsaName(m.simd.isa));
    });
    row("L1 cache", [](const MachineSpec &m) {
        return strprintf("%llu KB", static_cast<unsigned long long>(
            m.l1.sizeBytes / 1024));
    });
    row("L2 cache", [](const MachineSpec &m) {
        return strprintf("%llu KB", static_cast<unsigned long long>(
            m.l2.sizeBytes / 1024));
    });
    row("L3 cache", [](const MachineSpec &m) {
        return strprintf("%.1f MB", static_cast<double>(m.l3.sizeBytes) /
            (1024.0 * 1024.0));
    });
    row("L2/L3 policy", [](const MachineSpec &m) {
        return std::string(m.policy == InclusionPolicy::Inclusive
                               ? "Inclusive" : "Exclusive");
    });
    row("DDR type", [](const MachineSpec &m) { return m.dram.ddrType; });
    row("DDR frequency", [](const MachineSpec &m) {
        return strprintf("%.0f MHz", m.dram.ddrFreqMHz);
    });
    row("DDR BW per socket", [](const MachineSpec &m) {
        return strprintf("%.0f GB/s", m.dram.bandwidthGBps);
    });

    bench::section("derived timing-model parameters");
    row("peak fp32/core", [](const MachineSpec &m) {
        return strprintf("%.0f F/cyc", m.simd.peakFlopsPerCycle());
    });
    row("DRAM latency", [](const MachineSpec &m) {
        return strprintf("%u cyc", m.dramLatencyCycles());
    });
    row("stream BW (DRAM)", [](const MachineSpec &m) {
        return strprintf("%.1f GB/s", m.dram.streamGBps());
    });
    row("gather BW (batch 1)", [](const MachineSpec &m) {
        return strprintf("%.2f GB/s", m.dram.gatherGBps());
    });
    return 0;
}
