/**
 * @file
 * Study: silent-data-corruption defense for sharded embedding state.
 *
 * The paper's capacity argument (§II, §V) parks tens of gigabytes of
 * embedding rows in commodity DRAM per socket; at that scale memory
 * faults are a when, not an if, and an undetected flip serves a wrong
 * ranking silently. This study sweeps the defense ladder over the
 * sharded-inference plane as a (corruption rate x scrub interval x
 * inline-sampling rate) grid on RMC1:
 *
 *  - "baseline": corruption-free, defense off — the p99 yardstick;
 *  - "undefended": corruption on, every defense off — measures the
 *    escape rate the ladder must drive to zero;
 *  - the grid cells: background scrubbing (bounds detection latency by
 *    one sweep period, taxes table bandwidth) with and without inline
 *    sampled verification on the SLS hot path;
 *  - "guarded": the full ladder — scrub + inline sampling + output
 *    guards + canary queries — which must serve zero corrupted
 *    responses.
 *
 * Doubles as the SDC CI leg's invariant checker:
 *
 *  - every grid cell detects >= 99% of resident row corruptions, each
 *    within one scrub period (detection-latency p99 <= the interval);
 *  - the guarded cell's escape count is exactly zero;
 *  - served p99 while scrubbing stays <= 1.1x the corruption-free
 *    baseline;
 *  - the undefended cell really does serve corrupted responses (> 0
 *    escapes), so the zero above is load-bearing.
 *
 * Emits JSON (detection rate, latency percentiles, escapes, p99 per
 * cell) for scripts/run_bench.sh, which stores it as BENCH_sdc.json.
 *
 *   study_sdc [--quick] [--seed 3] [--out file.json]
 */

#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "core/args.hh"
#include "core/logging.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "serving/distributed.hh"

using namespace recperf;

namespace {

constexpr uint32_t kNodes = 4;
constexpr int64_t kBatch = 16;

constexpr double kDetectionBound = 0.99; // detected / resident rows
constexpr double kP99Bound = 1.10;       // scrubbing p99 vs baseline

struct Cell
{
    std::string mode;
    double ratePerSec = 0.0;
    double scrubMs = 0.0;
    double inlineSample = 0.0;
    bool guards = false;
    double canaryMs = 0.0;
    RunResult result;

    /** Row corruptions still resident when the run ended: injected
     *  minus those a repair's fresh copy wiped before any detector
     *  reached them (benign by construction, not misses). */
    uint64_t residentRows() const
    {
        return result.sdc.injectedRows - result.sdc.clearedRows;
    }

    double detectionRate() const
    {
        uint64_t resident = residentRows();
        return resident > 0
            ? static_cast<double>(result.sdc.detected) /
                static_cast<double>(resident)
            : 1.0;
    }
};

RunOptions
baseOptions(uint64_t seed, int iters)
{
    RunOptions options;
    options.measureIters = iters;
    options.faults.seed = seed;
    return options;
}

Cell
runCell(Cell cell, const RunOptions &options)
{
    TimerOptions topts;
    topts.batch = kBatch;
    ShardedInference sim(broadwell(), rmc1Small(), kNodes,
                         NetworkConfig{}, topts);
    cell.result = sim.run(options);
    return cell;
}

void
cellJson(bench::JsonWriter &json, const Cell &c)
{
    const SdcStats &s = c.result.sdc;
    json.newResult()
        .add("mode", c.mode)
        .add("corrupt_rate_per_s", c.ratePerSec)
        .add("scrub_interval_ms", c.scrubMs)
        .add("inline_sample", c.inlineSample)
        .add("output_guards", c.guards)
        .add("canary_interval_ms", c.canaryMs)
        .add("completed", c.result.completed)
        .add("injected_rows", s.injectedRows)
        .add("injected_fc", s.injectedFc)
        .add("cleared_rows", s.clearedRows)
        .add("detected", s.detected)
        .add("detected_scrub", s.detectedScrub)
        .add("detected_inline", s.detectedInline)
        .add("detected_guard", s.detectedGuard)
        .add("detected_canary", s.detectedCanary)
        .add("detection_rate", c.detectionRate())
        .add("detection_p50_ms", s.detectionLatency.empty()
                 ? 0.0
                 : s.detectionLatency.p(50) * 1e3)
        .add("detection_p99_ms", s.detectionLatency.empty()
                 ? 0.0
                 : s.detectionLatency.p(99) * 1e3)
        .add("quarantined_rows", s.quarantinedRows)
        .add("repairs", s.repairs)
        .add("escapes", s.corruptedServed)
        .add("degraded_served", s.degradedServed)
        .add("served_p99_ms", c.result.latency.p(99) * 1e3)
        .add("duration_s", c.result.duration)
        .add("mean_quality", s.active && c.result.completed > 0
                 ? s.qualitySum /
                     static_cast<double>(c.result.completed)
                 : 1.0);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("study_sdc",
                   "memory-corruption detection + repair ladder sweep");
    args.addFlag("quick", "CI-sized run (400 inferences instead of "
                          "1500)");
    args.addOption("seed", "3", "corruption/lookup seed");
    args.addOption("out", "", "write JSON here (default: stdout)");
    std::string error;
    if (!args.parse({argv + 1, argv + argc}, &error)) {
        std::fprintf(stderr, "error: %s\n%s", error.c_str(),
                     args.helpText().c_str());
        return 2;
    }

    bool quick = args.flag("quick");
    int iters = quick ? 400 : 1500;
    auto seed = static_cast<uint64_t>(args.optionInt("seed"));

    bench::banner(strprintf(
        "Study: silent-data-corruption defense -- detection, escapes, "
        "p99 tax\n(RMC1 sharded over %u nodes, batch %lld, %d "
        "inferences, seed %llu)", kNodes,
        static_cast<long long>(kBatch), iters,
        static_cast<unsigned long long>(seed)));

    std::vector<Cell> cells;

    // Corruption-free yardstick for the p99-tax pin.
    cells.push_back(
        runCell({"baseline", 0, 0, 0, false, 0, {}},
                baseOptions(seed, iters)));

    // No defense: corrupted rows flow straight into served responses.
    {
        RunOptions options = baseOptions(seed, iters);
        options.faults.corruption.ratePerSec = 5000.0;
        cells.push_back(
            runCell({"undefended", 5000.0, 0, 0, false, 0, {}},
                    options));
    }

    // The grid: corruption rate x scrub interval x inline sampling.
    for (double rate : {2000.0, 10000.0}) {
        for (double scrub_ms : {5.0, 10.0}) {
            for (double sample : {0.0, 0.25}) {
                RunOptions options = baseOptions(seed, iters);
                options.faults.corruption.ratePerSec = rate;
                options.sdc.scrubIntervalSeconds = scrub_ms * 1e-3;
                options.sdc.inlineSampleRate = sample;
                std::string mode = strprintf(
                    "scrub%.0fms_s%.2f_r%.0f", scrub_ms, sample, rate);
                cells.push_back(runCell(
                    {mode, rate, scrub_ms, sample, false, 0, {}},
                    options));
            }
        }
    }

    // The full ladder: nothing corrupted may be served.
    {
        RunOptions options = baseOptions(seed, iters);
        options.faults.corruption.ratePerSec = 10000.0;
        options.sdc.scrubIntervalSeconds = 5e-3;
        options.sdc.inlineSampleRate = 0.25;
        options.sdc.outputGuards = true;
        options.sdc.canaryIntervalSeconds = 5e-3;
        cells.push_back(
            runCell({"guarded", 10000.0, 5.0, 0.25, true, 5.0, {}},
                    options));
    }

    bench::section("detection / escape / p99 grid");
    std::printf("  %-22s | %-9s | %-9s | %-13s | %-7s | %s\n", "cell",
                "injected", "detected", "det p99", "escapes",
                "served p99");
    for (const Cell &c : cells) {
        const SdcStats &s = c.result.sdc;
        std::printf("  %-22s | %9llu | %8.1f%% | %10.3f ms | %7llu | "
                    "%7.3f ms\n", c.mode.c_str(),
                    static_cast<unsigned long long>(s.injectedRows),
                    c.detectionRate() * 100.0,
                    s.detectionLatency.empty()
                        ? 0.0
                        : s.detectionLatency.p(99) * 1e3,
                    static_cast<unsigned long long>(s.corruptedServed),
                    c.result.latency.p(99) * 1e3);
    }

    // --- Invariant checks (the integrity CI leg runs these per seed).
    bench::section("invariants");

    const Cell &baseline = cells[0];
    const Cell &undefended = cells[1];
    const Cell &guarded = cells.back();
    double base_p99 = baseline.result.latency.p(99);

    for (size_t i = 2; i + 1 < cells.size(); ++i) {
        const Cell &c = cells[i];
        RP_ASSERT(c.result.sdc.injectedRows > 0,
                  "'%s' injected no row corruption at %.0f/s",
                  c.mode.c_str(), c.ratePerSec);
        RP_ASSERT(c.detectionRate() >= kDetectionBound,
                  "'%s' detected %.2f%% of %llu resident corruptions, "
                  "below the %.0f%% bound", c.mode.c_str(),
                  c.detectionRate() * 100.0,
                  static_cast<unsigned long long>(c.residentRows()),
                  kDetectionBound * 100.0);
        double bound = c.scrubMs * 1e-3 * (1.0 + 1e-9);
        RP_ASSERT(!c.result.sdc.detectionLatency.empty() &&
                      c.result.sdc.detectionLatency.p(99) <= bound,
                  "'%s' detection p99 %.3f ms above its %.1f ms scrub "
                  "period", c.mode.c_str(),
                  c.result.sdc.detectionLatency.p(99) * 1e3,
                  c.scrubMs);
    }
    std::printf("  [ok] every grid cell detects >= %.0f%% of resident "
                "corruptions within one\n       scrub period\n",
                kDetectionBound * 100.0);

    RP_ASSERT(guarded.result.sdc.corruptedServed == 0,
              "guarded cell served %llu corrupted responses",
              static_cast<unsigned long long>(
                  guarded.result.sdc.corruptedServed));
    RP_ASSERT(guarded.result.sdc.detected > 0 &&
                  guarded.result.completed ==
                      static_cast<uint64_t>(iters),
              "guarded cell did not complete cleanly (%llu/%d, %llu "
              "detected)",
              static_cast<unsigned long long>(guarded.result.completed),
              iters,
              static_cast<unsigned long long>(
                  guarded.result.sdc.detected));
    std::printf("  [ok] full ladder serves zero corrupted responses "
                "(%llu detected, %llu\n       quarantined)\n",
                static_cast<unsigned long long>(
                    guarded.result.sdc.detected),
                static_cast<unsigned long long>(
                    guarded.result.sdc.quarantinedRows));

    for (size_t i = 2; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        RP_ASSERT(c.result.latency.p(99) <= kP99Bound * base_p99,
                  "'%s' served p99 %.3f ms above %.2fx the "
                  "corruption-free baseline's %.3f ms", c.mode.c_str(),
                  c.result.latency.p(99) * 1e3, kP99Bound,
                  base_p99 * 1e3);
    }
    std::printf("  [ok] served p99 while scrubbing <= %.2fx the "
                "corruption-free baseline\n       (%.3f ms)\n",
                kP99Bound, base_p99 * 1e3);

    RP_ASSERT(undefended.result.sdc.corruptedServed > 0,
              "undefended cell served no corrupted responses -- the "
              "guarded zero proves nothing");
    std::printf("  [ok] undefended cell escapes: %llu corrupted "
                "responses served silently\n",
                static_cast<unsigned long long>(
                    undefended.result.sdc.corruptedServed));

    // --- JSON for run_bench.sh -> BENCH_sdc.json ---
    bench::JsonWriter json("study_sdc");
    json.config()
        .add("seed", seed)
        .add("iters", static_cast<int64_t>(iters))
        .add("nodes", static_cast<int64_t>(kNodes))
        .add("batch", static_cast<int64_t>(kBatch))
        .add("detection_bound", kDetectionBound)
        .add("p99_bound", kP99Bound);
    for (const Cell &c : cells)
        cellJson(json, c);
    RP_ASSERT(json.writeOrPrint(args.option("out")), "JSON write failed");

    bench::section("takeaways");
    std::printf("  - undefended, corruption flows silently into served "
                "rankings: detection is\n    zero and every poisoned "
                "lookup is an escape;\n");
    std::printf("  - the scrubber alone bounds detection latency by "
                "one sweep period at a p99\n    tax under %.0f%%; "
                "inline sampling pulls hot-row detections earlier "
                "still;\n", (kP99Bound - 1.0) * 100.0);
    std::printf("  - output guards + canaries close the last gap: "
                "corrupted responses are\n    caught at the "
                "aggregation boundary, quarantined rows serve "
                "degraded-but-\n    bounded quality until the "
                "parameter-store re-fetch lands.\n");
    return 0;
}
