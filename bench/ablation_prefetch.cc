/**
 * @file
 * Ablation: next-line hardware prefetching for embedding gathers.
 *
 * §VII points at "intelligent pre-fetching/caching techniques" as a
 * memory-system opportunity. Embedding rows wider than one cache line
 * (dim 32 at fp32 = 128 B = 2 lines) make even a trivial next-line
 * prefetcher effective: the second line of every gathered row stops
 * missing. Narrow (int8) rows fit one line, so the prefetcher only
 * pollutes.
 */

#include "bench/bench_common.hh"
#include "core/logging.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "timing/model_timer.hh"

using namespace recperf;

namespace {

double
slsMs(bool prefetch, EmbPrecision precision)
{
    MachineSpec bdw = broadwell();
    bdw.prefetch.nextLine = prefetch;
    ModelConfig cfg = rmc2Small();
    cfg.emb.precision = precision;
    TimerOptions opts;
    opts.batch = 16;
    ModelTimer timer(bdw, cfg, opts);
    return timer.steadyState(12, 12).secondsByKind(OpKind::SLS) * 1e3;
}

} // namespace

int
main()
{
    bench::banner("Ablation: next-line prefetching (RMC2 SLS, batch 16, "
                  "Broadwell)");

    std::printf("  %-24s %14s %14s %10s\n", "embedding rows",
                "prefetch off", "prefetch on", "speedup");
    for (EmbPrecision precision :
         {EmbPrecision::Fp32, EmbPrecision::Int8}) {
        EmbeddingConfig emb = rmc2Small().emb;
        emb.precision = precision;
        int64_t lines = (emb.rowBytes() + 63) / 64;
        double off = slsMs(false, precision);
        double on = slsMs(true, precision);
        std::string label = strprintf(
            "%s (%lld B, %lld line%s)", embPrecisionName(precision),
            static_cast<long long>(emb.rowBytes()),
            static_cast<long long>(lines), lines > 1 ? "s" : "");
        std::printf("  %-24s %11.3f ms %11.3f ms %9.2fx\n", label.c_str(),
                    off, on, off / on);
    }

    bench::section("takeaway");
    std::printf("  next-line prefetching recovers the second line of "
                "wide fp32 rows almost\n  for free; once rows are "
                "quantized to a single line the prefetcher has\n  "
                "nothing left to fetch — the two optimizations do not "
                "compose.\n");
    return 0;
}
