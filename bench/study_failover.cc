/**
 * @file
 * Study: replicated shards with health-checked failover under faults.
 *
 * The paper's availability argument (§III) is that recommendation
 * inference is a fan-out workload: one request touches every table-wise
 * shard, so a single shard in its repair window fails the whole
 * inference. This study quantifies the failover layer built on top of
 * that observation — R replicas per shard, a per-replica circuit
 * breaker, and hedge-to-second-best routing — as a (replica count x
 * failure rate) grid, and doubles as the chaos harness's invariant
 * checker for CI:
 *
 *  - accounting never breaks: completed + failed == offered, per cell;
 *  - with R >= 2 and MTBF = 10x MTTR, availability stays >= 99.9% and
 *    p99 within 2x the fault-free baseline;
 *  - R = 1 under the same failure process demonstrably violates both
 *    bounds (this is the point of replication);
 *  - breakers open under failures and re-close after recovery probes.
 *
 * Emits JSON (availability + p99 per cell) for scripts/run_bench.sh,
 * which stores it as BENCH_failover.json.
 *
 *   study_failover [--quick] [--seed 3] [--out file.json]
 */

#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "core/args.hh"
#include "core/logging.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "resilience/fault_injector.hh"
#include "resilience/policies.hh"
#include "serving/distributed.hh"

using namespace recperf;

namespace {

// Two shards keep the simulated timing cheap; batch 64 makes service
// time large against the retry backoff so the p99 bound isolates the
// failure process, not the backoff constants.
constexpr uint32_t kNodes = 2;
constexpr int64_t kBatch = 64;
constexpr int kWarmup = 20;

/** MTBF = 10x MTTR: each replica is in repair ~9% of the time. */
constexpr double kMttrSeconds = 1e-3;
constexpr double kMtbfSeconds = 10e-3;

constexpr double kAvailabilityBound = 0.999;
constexpr double kTailBound = 2.0; // p99 <= bound x fault-free p99

struct Cell
{
    uint32_t replicas;
    double mtbfSeconds; // 0 = fault-free
    ReplicatedShardedResult result;
};

FaultOptions
faultsAt(double mtbf_seconds, uint64_t seed)
{
    FaultOptions f;
    f.shardMtbfSeconds = mtbf_seconds;
    f.shardMttrSeconds = kMttrSeconds;
    f.seed = seed;
    return f;
}

ReplicatedShardedResult
runCell(uint32_t replicas, double mtbf_seconds, uint64_t seed, int iters)
{
    TimerOptions topts;
    topts.batch = kBatch;
    ShardedInference sim(broadwell(), rmc1Small(), kNodes,
                         NetworkConfig{}, topts);

    RetryPolicy retry;
    retry.timeoutSeconds = 2e-3;
    retry.maxRetries = 4;

    HedgePolicy hedge;
    hedge.enabled = true; // delay auto-calibrates to warmup p95

    ReplicaOptions ropts;
    ropts.replicas = replicas;
    ropts.seed = seed;

    RunOptions options;
    options.warmupIters = kWarmup;
    options.measureIters = iters;
    options.faults = faultsAt(mtbf_seconds, seed);
    options.retry = retry;
    options.hedge = hedge;
    options.replicas = ropts; // engaged even at R = 1 (baseline cell)
    return sim.run(options);
}

void
cellJson(bench::JsonWriter &json, const Cell &c)
{
    const ReplicatedShardedResult &r = c.result;
    json.newResult()
        .add("replicas", c.replicas)
        .add("mtbf_ms", c.mtbfSeconds * 1e3)
        .add("mttr_ms", c.mtbfSeconds > 0.0 ? kMttrSeconds * 1e3 : 0.0)
        .add("offered", r.completed + r.failed)
        .add("completed", r.completed)
        .add("failed", r.failed)
        .add("availability", r.availability())
        .add("p50_ms", r.latency.p(50) * 1e3)
        .add("p99_ms", r.latency.p(99) * 1e3)
        .add("goodput_inf_s", r.goodput())
        .add("failovers", r.failovers)
        .add("breaker_opens", r.breakerOpens)
        .add("breaker_closes", r.breakerCloses)
        .add("warmup_penalty_ms", r.warmupPenaltySeconds * 1e3);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("study_failover",
                   "replica count x failure rate availability grid");
    args.addFlag("quick", "CI-sized run (600 iters instead of 2000)");
    args.addOption("seed", "3", "failure-process seed");
    args.addOption("out", "", "write JSON here (default: stdout)");
    std::string error;
    if (!args.parse({argv + 1, argv + argc}, &error)) {
        std::fprintf(stderr, "error: %s\n%s", error.c_str(),
                     args.helpText().c_str());
        return 2;
    }

    bool quick = args.flag("quick");
    int iters = quick ? 600 : 2000;
    auto seed = static_cast<uint64_t>(args.optionInt("seed"));

    bench::banner(strprintf(
        "Study: replicated-shard failover -- availability and p99 vs "
        "replica count\n(RMC1 on %u x Broadwell shards, batch %lld, "
        "MTBF %.0f ms = 10x MTTR, seed %llu)", kNodes,
        static_cast<long long>(kBatch), kMtbfSeconds * 1e3,
        static_cast<unsigned long long>(seed)));

    // Grid: the fault-free baseline plus R = 1..3 under the failure
    // process. The baseline uses R = 1 -- with no faults injected the
    // router never leaves the primary, so replicas would be idle.
    std::vector<Cell> cells;
    cells.push_back({1, 0.0, runCell(1, 0.0, seed, iters)});
    for (uint32_t r = 1; r <= 3; ++r)
        cells.push_back({r, kMtbfSeconds, runCell(r, kMtbfSeconds, seed,
                                                  iters)});

    bench::section("availability / p99 grid");
    std::printf("  %-22s | %-12s | %-10s | %-9s | %s\n", "cell",
                "availability", "p99", "failovers", "breakers o/c");
    for (const Cell &c : cells) {
        const ReplicatedShardedResult &r = c.result;
        std::printf("  %-22s | %10.2f%% | %7.3f ms | %9llu | %llu/%llu\n",
                    c.mtbfSeconds == 0.0
                        ? "fault-free baseline"
                        : strprintf("R=%u, MTBF %.0f ms", c.replicas,
                                    c.mtbfSeconds * 1e3).c_str(),
                    r.availability() * 100, r.latency.p(99) * 1e3,
                    static_cast<unsigned long long>(r.failovers),
                    static_cast<unsigned long long>(r.breakerOpens),
                    static_cast<unsigned long long>(r.breakerCloses));
    }

    // --- Invariant checks (the chaos CI leg runs these per seed). ---
    bench::section("invariants");

    for (const Cell &c : cells) {
        const ReplicatedShardedResult &r = c.result;
        RP_ASSERT(r.completed + r.failed ==
                      static_cast<uint64_t>(iters),
                  "accounting broken at R=%u: %llu + %llu != %d",
                  c.replicas,
                  static_cast<unsigned long long>(r.completed),
                  static_cast<unsigned long long>(r.failed), iters);
    }
    std::printf("  [ok] completed + failed == offered in every cell\n");

    double baseline_p99 = cells[0].result.latency.p(99);
    const ReplicatedShardedResult &r1 = cells[1].result;
    RP_ASSERT(r1.availability() < kAvailabilityBound,
              "R=1 under MTBF=10xMTTR should violate the %.1f%% "
              "availability bound (got %.2f%%) -- replication would "
              "look unnecessary", kAvailabilityBound * 100,
              r1.availability() * 100);
    RP_ASSERT(r1.latency.p(99) > kTailBound * baseline_p99,
              "R=1 p99 (%.3f ms) should blow the %.1fx fault-free "
              "bound (%.3f ms)", r1.latency.p(99) * 1e3, kTailBound,
              kTailBound * baseline_p99 * 1e3);
    std::printf("  [ok] R=1 violates both bounds (%.2f%% < %.1f%%, "
                "p99 %.3f > %.3f ms)\n", r1.availability() * 100,
                kAvailabilityBound * 100, r1.latency.p(99) * 1e3,
                kTailBound * baseline_p99 * 1e3);

    for (size_t i = 2; i < cells.size(); ++i) {
        const ReplicatedShardedResult &r = cells[i].result;
        RP_ASSERT(r.availability() >= kAvailabilityBound,
                  "R=%u availability %.3f%% below the %.1f%% bound",
                  cells[i].replicas, r.availability() * 100,
                  kAvailabilityBound * 100);
        RP_ASSERT(r.latency.p(99) <= kTailBound * baseline_p99,
                  "R=%u p99 %.3f ms above the %.1fx fault-free bound "
                  "(%.3f ms)", cells[i].replicas,
                  r.latency.p(99) * 1e3, kTailBound,
                  kTailBound * baseline_p99 * 1e3);
        RP_ASSERT(r.breakerOpens > 0 && r.breakerCloses > 0,
                  "R=%u: breakers should open under faults and re-close "
                  "after probes (opened %llu, closed %llu)",
                  cells[i].replicas,
                  static_cast<unsigned long long>(r.breakerOpens),
                  static_cast<unsigned long long>(r.breakerCloses));
    }
    std::printf("  [ok] R>=2 holds availability >= %.1f%% with p99 "
                "within %.1fx of fault-free\n", kAvailabilityBound * 100,
                kTailBound);
    std::printf("  [ok] breakers opened and re-closed in every "
                "replicated cell\n");

    // --- JSON for run_bench.sh -> BENCH_failover.json ---
    bench::JsonWriter json("study_failover");
    json.config()
        .add("seed", seed)
        .add("iters", iters)
        .add("nodes", kNodes)
        .add("batch", static_cast<int64_t>(kBatch));
    for (const Cell &c : cells)
        cellJson(json, c);
    RP_ASSERT(json.writeOrPrint(args.option("out")), "JSON write failed");

    bench::section("takeaways");
    std::printf("  - a single copy of each shard cannot hold three "
                "nines when the shard\n    failure process keeps ~9%% "
                "of replicas in repair;\n");
    std::printf("  - R=2 with breaker-aware routing absorbs the same "
                "schedule: a down primary\n    is rescued by the "
                "second-best replica within the hedge delay;\n");
    std::printf("  - breakers convert repeated failures into fast "
                "rejections and re-close\n    via seeded probes once "
                "the replica heals, so recovery needs no operator.\n");
    return 0;
}
