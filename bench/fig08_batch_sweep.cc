/**
 * @file
 * Regenerates Figure 8: inference latency vs. batch size on Haswell,
 * Broadwell and Skylake for all three model classes, plus the Section V
 * AVX-512 utilization data.
 *
 * Shape to reproduce: Broadwell is optimal at small batches (higher
 * frequency); Skylake overtakes at large batches (AVX-512), crossing
 * over near batch 64 for the compute-intensive RMC3.
 */

#include "bench/bench_common.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "timing/model_timer.hh"

using namespace recperf;

int
main()
{
    bench::banner("Figure 8: latency vs. batch across server "
                  "generations");

    auto machines = fleetMachines();
    for (const ModelConfig &cfg : representativeModels()) {
        bench::section(cfg.name + " latency (ms)");
        std::printf("  %6s %10s %10s %10s   %s\n", "batch", "Haswell",
                    "Broadwell", "Skylake", "best");
        for (int64_t batch : {1, 4, 16, 64, 128, 256}) {
            double lat[3];
            for (size_t m = 0; m < machines.size(); ++m) {
                TimerOptions opts;
                opts.batch = batch;
                ModelTimer timer(machines[m], cfg, opts);
                // Fewer iterations at large batch keep runtime sane;
                // per-inference work grows linearly with batch.
                int iters = batch >= 64 ? 6 : 20;
                lat[m] = timer.steadyState(iters, iters).totalSeconds();
            }
            size_t best = 0;
            for (size_t m = 1; m < 3; ++m) {
                if (lat[m] < lat[best])
                    best = m;
            }
            std::printf("  %6lld %10.3f %10.3f %10.3f   %s\n",
                        static_cast<long long>(batch), lat[0] * 1e3,
                        lat[1] * 1e3, lat[2] * 1e3,
                        machines[best].name.c_str());
        }
    }

    bench::section("AVX-512 achieved efficiency vs batch (Section V: "
                   "74% of theoretical at batch 4, 91% at 16 for packed "
                   "SIMD issue; our model reports achieved GEMM fraction)");
    SimdModel avx512 = makeAvx512Model();
    SimdModel avx2 = makeAvx2Model();
    std::printf("  %6s %12s %12s\n", "batch", "AVX-512", "AVX-2");
    for (int64_t batch : {1, 4, 16, 64, 128, 256, 1024}) {
        std::printf("  %6lld %11.1f%% %11.1f%%\n",
                    static_cast<long long>(batch),
                    avx512.efficiency(batch) / avx512.baseEfficiency * 100,
                    avx2.efficiency(batch) / avx2.baseEfficiency * 100);
    }
    return 0;
}
