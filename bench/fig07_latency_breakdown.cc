/**
 * @file
 * Regenerates Figure 7: unit-batch inference latency of RMC1/RMC2/RMC3
 * on Broadwell (left) and the per-operator time breakdown (right).
 *
 * Paper anchors: 0.04 ms / 0.30 ms / 0.60 ms; BatchMatMul+FC >= 96% of
 * RMC3, SLS ~80% of RMC2, FC ~61% and SLS ~20% of RMC1.
 *
 * The breakdown is computed from the observability layer rather than
 * the raw ModelTiming: each model's steady-state timing is emitted as
 * per-op trace spans (one virtual lane per model) and the table
 * aggregates the spans' durations by their "kind" argument — the same
 * pipeline `recperf serve --trace-out` feeds, so this bench doubles as
 * a check that the spans tile the model latency exactly.
 */

#include <map>

#include "bench/bench_common.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "obs/trace.hh"
#include "timing/model_timer.hh"
#include "timing/op_timing.hh"

using namespace recperf;

namespace {

/** Per-lane aggregate of the "op" spans: total and by-kind seconds. */
struct LaneBreakdown
{
    double totalSeconds = 0.0;
    std::map<std::string, double> byKind;

    double fraction(const std::string &kind) const
    {
        auto it = byKind.find(kind);
        return it == byKind.end() || totalSeconds <= 0.0
            ? 0.0
            : it->second / totalSeconds;
    }
};

std::map<uint32_t, LaneBreakdown>
aggregateOpSpans(const obs::Tracer &tracer)
{
    std::map<uint32_t, LaneBreakdown> lanes;
    for (const obs::TraceEvent &ev : tracer.snapshot()) {
        if (ev.ph != 'X' || std::string(ev.cat) != "op")
            continue;
        LaneBreakdown &lane = lanes[ev.tid];
        double seconds = ev.durUs / 1e6;
        lane.totalSeconds += seconds;
        for (const auto &[key, value] : ev.args) {
            if (key == "kind")
                lane.byKind[value] += seconds;
        }
    }
    return lanes;
}

} // namespace

int
main()
{
    bench::banner("Figure 7: batch-1 latency and operator breakdown "
                  "(Broadwell)");

    MachineSpec bdw = broadwell();
    obs::Tracer &tracer = obs::Tracer::global();
    tracer.clear();
    tracer.setEnabled(true);

    // Emit every model's steady-state timing as op spans, one virtual
    // lane per model, back to back on a shared virtual clock.
    std::vector<ModelConfig> models = representativeModels();
    double clock = 0.0;
    for (uint32_t lane = 0; lane < models.size(); ++lane) {
        TimerOptions opts;
        opts.batch = 1;
        ModelTimer timer(bdw, models[lane], opts);
        tracer.nameLane(lane, models[lane].name);
        clock = emitOpSpans(tracer, timer.steadyState(50, 50), clock,
                            lane);
    }
    tracer.setEnabled(false);
    std::map<uint32_t, LaneBreakdown> lanes = aggregateOpSpans(tracer);

    std::printf("  %-12s %10s   %6s %6s %7s %6s\n", "model",
                "latency", "FC", "SLS", "Concat", "Rest");
    for (uint32_t lane = 0; lane < models.size(); ++lane) {
        const LaneBreakdown &b = lanes[lane];
        double fc = b.fraction("FC");
        double sls = b.fraction("SLS");
        double concat = b.fraction("Concat");
        std::printf("  %-12s %8.3f ms   %5.1f%% %5.1f%% %6.1f%% %5.1f%%\n",
                    models[lane].name.c_str(), b.totalSeconds * 1e3,
                    fc * 100, sls * 100, concat * 100,
                    (1.0 - fc - sls - concat) * 100);
    }
    tracer.clear();

    bench::section("small vs large variants (paper: ~2x within a class)");
    for (const auto &[small, large] :
         {std::pair{rmc1Small(), rmc1Large()},
          std::pair{rmc2Small(), rmc2Large()},
          std::pair{rmc3Small(), rmc3Large()}}) {
        TimerOptions opts;
        opts.batch = 1;
        ModelTimer ts(bdw, small, opts), tl(bdw, large, opts);
        double s = ts.steadyState(30, 30).totalSeconds();
        double l = tl.steadyState(30, 30).totalSeconds();
        std::printf("  %-6s small %8.3f ms   large %8.3f ms   (%.2fx)\n",
                    modelClassName(small.modelClass), s * 1e3, l * 1e3,
                    l / s);
    }
    return 0;
}
