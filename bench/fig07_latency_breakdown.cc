/**
 * @file
 * Regenerates Figure 7: unit-batch inference latency of RMC1/RMC2/RMC3
 * on Broadwell (left) and the per-operator time breakdown (right).
 *
 * Paper anchors: 0.04 ms / 0.30 ms / 0.60 ms; BatchMatMul+FC >= 96% of
 * RMC3, SLS ~80% of RMC2, FC ~61% and SLS ~20% of RMC1.
 */

#include "bench/bench_common.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "timing/model_timer.hh"

using namespace recperf;

int
main()
{
    bench::banner("Figure 7: batch-1 latency and operator breakdown "
                  "(Broadwell)");

    MachineSpec bdw = broadwell();
    std::printf("  %-12s %10s   %6s %6s %7s %6s\n", "model",
                "latency", "FC", "SLS", "Concat", "Rest");
    for (const ModelConfig &cfg : representativeModels()) {
        TimerOptions opts;
        opts.batch = 1;
        ModelTimer timer(bdw, cfg, opts);
        ModelTiming t = timer.steadyState(50, 50);
        double fc = t.fractionByKind(OpKind::FC);
        double sls = t.fractionByKind(OpKind::SLS);
        double concat = t.fractionByKind(OpKind::Concat);
        std::printf("  %-12s %8.3f ms   %5.1f%% %5.1f%% %6.1f%% %5.1f%%\n",
                    cfg.name.c_str(), t.totalSeconds() * 1e3, fc * 100,
                    sls * 100, concat * 100,
                    (1.0 - fc - sls - concat) * 100);
    }

    bench::section("small vs large variants (paper: ~2x within a class)");
    for (const auto &[small, large] :
         {std::pair{rmc1Small(), rmc1Large()},
          std::pair{rmc2Small(), rmc2Large()},
          std::pair{rmc3Small(), rmc3Large()}}) {
        TimerOptions opts;
        opts.batch = 1;
        ModelTimer ts(bdw, small, opts), tl(bdw, large, opts);
        double s = ts.steadyState(30, 30).totalSeconds();
        double l = tl.steadyState(30, 30).totalSeconds();
        std::printf("  %-6s small %8.3f ms   large %8.3f ms   (%.2fx)\n",
                    modelClassName(small.modelClass), s * 1e3, l * 1e3,
                    l / s);
    }
    return 0;
}
