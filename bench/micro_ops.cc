/**
 * @file
 * Google-benchmark microbenchmarks for the functional operator kernels
 * (host-machine wall-clock, not the simulated fleet): blocked GEMM,
 * SparseLengthsSum, Concat, and activations.
 */

#include <benchmark/benchmark.h>

#include "core/rng.hh"
#include "ops/batch_matmul.hh"
#include "ops/elementwise.hh"
#include "ops/fully_connected.hh"
#include "ops/sparse_lengths_sum.hh"

using namespace recperf;

namespace {

void
BM_FullyConnected(benchmark::State &state)
{
    int64_t batch = state.range(0);
    int64_t width = state.range(1);
    Rng rng(1);
    FullyConnected fc(width, width, rng);
    Tensor x({batch, width});
    x.fillUniform(rng, -1.0f, 1.0f);
    for (auto _ : state) {
        Tensor y = fc.forward(x);
        benchmark::DoNotOptimize(y.data());
    }
    state.counters["GFLOP/s"] = benchmark::Counter(
        2.0 * static_cast<double>(batch) * width * width *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_FullyConnected)
    ->Args({1, 256})
    ->Args({16, 256})
    ->Args({128, 256})
    ->Args({16, 1024});

void
BM_SparseLengthsSum(benchmark::State &state)
{
    int64_t lookups = state.range(0);
    int64_t batch = state.range(1);
    Rng rng(2);
    EmbeddingTable table(100'000, 32, rng);
    std::vector<int64_t> ids, lengths;
    for (int64_t b = 0; b < batch; ++b) {
        lengths.push_back(lookups);
        for (int64_t j = 0; j < lookups; ++j)
            ids.push_back(rng.nextInt(0, 99'999));
    }
    for (auto _ : state) {
        Tensor out = table.forward(ids, lengths);
        benchmark::DoNotOptimize(out.data());
    }
    state.counters["rows/s"] = benchmark::Counter(
        static_cast<double>(ids.size()) *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SparseLengthsSum)->Args({80, 1})->Args({80, 16})->Args({20, 16});

void
BM_Concat(benchmark::State &state)
{
    int64_t batch = state.range(0);
    Rng rng(3);
    std::vector<Tensor> parts;
    std::vector<const Tensor *> ptrs;
    for (int i = 0; i < 20; ++i) {
        parts.emplace_back(Shape{batch, 32});
        parts.back().fillUniform(rng, -1.0f, 1.0f);
    }
    for (const Tensor &t : parts)
        ptrs.push_back(&t);
    for (auto _ : state) {
        Tensor out = concatCols(ptrs);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_Concat)->Arg(1)->Arg(32)->Arg(256);

void
BM_Sigmoid(benchmark::State &state)
{
    Rng rng(4);
    Tensor x({state.range(0)});
    x.fillUniform(rng, -4.0f, 4.0f);
    for (auto _ : state) {
        Tensor y = sigmoid(x);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_Sigmoid)->Arg(1024)->Arg(65536);

void
BM_DotInteraction(benchmark::State &state)
{
    Rng rng(5);
    Tensor z({32, state.range(0), 32});
    z.fillUniform(rng, -1.0f, 1.0f);
    for (auto _ : state) {
        Tensor out = dotInteraction(z);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_DotInteraction)->Arg(8)->Arg(33);

} // namespace

BENCHMARK_MAIN();
