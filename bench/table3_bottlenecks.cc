/**
 * @file
 * Regenerates Table III: which micro-architectural features bottleneck
 * each class of recommendation model.
 *
 * Method: start from the Broadwell baseline and improve one feature at
 * a time (frequency, SIMD width, DRAM bandwidth/frequency, LLC
 * capacity); report the latency change for an MLP-dominated model
 * (RMC3, large batch) and an embedding-dominated one (RMC2). The paper
 * concludes that dense models are bound by core frequency/count and
 * SIMD, sparse models by DRAM frequency/bandwidth and cache contention.
 */

#include "bench/bench_common.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "timing/colocation.hh"
#include "timing/model_timer.hh"

using namespace recperf;

namespace {

double
latency(const MachineSpec &machine, const ModelConfig &cfg, int64_t batch)
{
    TimerOptions opts;
    opts.batch = batch;
    ModelTimer timer(machine, cfg, opts);
    return timer.steadyState(15, 15).totalSeconds();
}

void
speedupRow(const char *label, const MachineSpec &variant,
           const MachineSpec &base)
{
    double dense_base = latency(base, rmc3Small(), 64);
    double dense_new = latency(variant, rmc3Small(), 64);
    double sparse_base = latency(base, rmc2Small(), 16);
    double sparse_new = latency(variant, rmc2Small(), 16);
    std::printf("  %-26s %10.2fx %12.2fx\n", label,
                dense_base / dense_new, sparse_base / sparse_new);
}

} // namespace

int
main()
{
    bench::banner("Table III: micro-architectural bottlenecks by model "
                  "class");

    MachineSpec base = broadwell();
    std::printf("  %-26s %11s %13s\n", "improved feature",
                "MLP-dom.", "embedding-dom.");
    std::printf("  %-26s %11s %13s\n", "(one at a time, on BDW)",
                "(RMC3 b64)", "(RMC2 b16)");

    {
        MachineSpec m = base;
        m.freqGHz *= 1.25;
        speedupRow("core frequency +25%", m, base);
    }
    {
        MachineSpec m = base;
        m.simd = makeAvx512Model(); // widen SIMD, keep everything else
        speedupRow("SIMD AVX-2 -> AVX-512", m, base);
    }
    {
        MachineSpec m = base;
        m.dram.bandwidthGBps *= 1.5;
        m.dram.ddrFreqMHz *= 1.5;
        speedupRow("DRAM freq/bandwidth +50%", m, base);
    }
    {
        MachineSpec m = base;
        m.dram.latencyNs *= 0.75;
        speedupRow("DRAM latency -25%", m, base);
    }
    {
        MachineSpec m = base;
        m.l3.sizeBytes *= 2;
        speedupRow("LLC capacity x2", m, base);
    }

    bench::section("cache contention sensitivity (co-location N=8 vs 1, "
                   "batch 32)");
    for (const ModelConfig &cfg : {rmc3Small(), rmc2Small()}) {
        TimerOptions opts;
        opts.batch = 32;
        ColocationSim solo(base, cfg, opts, 1);
        ColocationSim packed(base, cfg, opts, 8);
        double s = solo.run(10, 6).meanLatency();
        double p = packed.run(10, 6).meanLatency();
        std::printf("  %-12s latency degradation: %5.2fx\n",
                    cfg.name.c_str(), p / s);
    }

    bench::section("hyperthreading penalty (Section VI)");
    {
        TimerOptions solo_opts;
        solo_opts.batch = 32;
        TimerOptions ht_opts = solo_opts;
        ht_opts.hyperthreading = true;
        for (const ModelConfig &cfg : {rmc3Small(), rmc2Small()}) {
            ModelTimer a(base, cfg, solo_opts);
            ModelTimer b(base, cfg, ht_opts);
            ModelTiming ta = a.steadyState(10, 10);
            ModelTiming tb = b.steadyState(10, 10);
            std::printf("  %-12s FC %.2fx  SLS %.2fx  total %.2fx  "
                        "(paper: FC 1.6x, SLS 1.3x)\n", cfg.name.c_str(),
                        tb.secondsByKind(OpKind::FC) /
                            ta.secondsByKind(OpKind::FC),
                        tb.secondsByKind(OpKind::SLS) /
                            ta.secondsByKind(OpKind::SLS),
                        tb.totalSeconds() / ta.totalSeconds());
        }
    }

    bench::section("summary (Table III)");
    std::printf("  dense/MLP-dominated (RMC1, RMC3): core frequency, "
                "SIMD width, cache size\n");
    std::printf("  sparse/embedding-dominated (RMC1, RMC2): DRAM "
                "frequency & bandwidth, cache contention\n");
    return 0;
}
