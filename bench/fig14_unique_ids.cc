/**
 * @file
 * Regenerates Figure 14: percentage of unique sparse IDs across
 * recommendation use cases — a random trace plus ten production-like
 * trace profiles spanning high to low uniqueness.
 */

#include "bench/bench_common.hh"
#include "core/rng.hh"
#include "trace/id_generator.hh"

using namespace recperf;

int
main()
{
    bench::banner("Figure 14: unique sparse IDs across production "
                  "traces");

    const int64_t rows = 5'000'000;
    const size_t trace_len = 40'000;
    Rng rng(7);

    std::printf("  %-10s %10s\n", "trace", "unique IDs");
    {
        UniformGen random_gen(rows, rng.split());
        double uf = uniqueFraction(random_gen.draw(trace_len));
        std::printf("  %-10s %9.1f%%  |%s\n", "random", uf * 100,
                    bench::bar(uf).c_str());
    }
    for (const TraceProfile &profile : productionTraceProfiles()) {
        auto gen = makeGenerator(profile, rows, rng.split());
        double uf = uniqueFraction(gen->draw(trace_len));
        std::printf("  %-10s %9.1f%%  |%s   (zipf %.2f, repeat %.2f)\n",
                    profile.name.c_str(), uf * 100, bench::bar(uf).c_str(),
                    profile.zipfAlpha, profile.repeatProb);
    }

    bench::section("paper-shape check");
    std::printf("  profiles span ~90%% down to ~5%% unique IDs, matching "
                "Fig 14's spread;\n  low-uniqueness traces enable "
                "embedding-vector caching (Section VII).\n");
    return 0;
}
