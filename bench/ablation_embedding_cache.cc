/**
 * @file
 * Ablation: software embedding-vector caching across trace localities.
 *
 * Fig 14 motivates "intelligent cache and prefetching optimizations";
 * this sweeps a row-granular vector cache over capacity, replacement
 * policy, and trace profile to show where caching pays off.
 */

#include "bench/bench_common.hh"
#include "core/rng.hh"
#include "trace/embedding_cache.hh"

using namespace recperf;

int
main()
{
    bench::banner("Ablation: embedding-vector cache (2M-row table)");

    const int64_t rows = 2'000'000;
    const size_t trace_len = 60'000;
    Rng rng(23);

    auto profiles = productionTraceProfiles();
    const TraceProfile sparse_profile = profiles[1];   // ~80% unique
    const TraceProfile typical_profile = profiles[5];  // ~25% unique
    const TraceProfile hot_profile = profiles[9];      // ~4% unique

    std::printf("  %-10s %10s | %9s %9s %9s\n", "policy", "capacity",
                "80%-uniq", "25%-uniq", "4%-uniq");
    for (CachePolicy policy : {CachePolicy::Lru, CachePolicy::Lfu}) {
        for (size_t capacity : {2'000, 20'000, 200'000}) {
            std::printf("  %-10s %10zu |", cachePolicyName(policy),
                        capacity);
            for (const TraceProfile &profile :
                 {sparse_profile, typical_profile, hot_profile}) {
                auto gen = makeGenerator(profile, rows, rng.split());
                double rate = simulateCacheHitRate(*gen, trace_len,
                                                   capacity, policy);
                std::printf(" %8.1f%%", rate * 100.0);
            }
            std::printf("\n");
        }
    }

    bench::section("takeaway");
    std::printf("  near-random traces defeat any reasonable cache; the "
                "low-uniqueness\n  traces of Fig 14 reach >90%% hit rate "
                "with caches holding ~1%% of rows,\n  which is what makes "
                "DRAM-cache-over-NVM designs viable (see the tiered\n  "
                "memory ablation).\n");
    return 0;
}
