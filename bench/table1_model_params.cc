/**
 * @file
 * Regenerates Table I: normalized architecture parameters of the three
 * production recommendation model classes.
 *
 * As in the paper, Bottom/Top FC sizes are normalized to RMC1's layer 3,
 * embedding number/input/output dims to RMC1, lookups to RMC3.
 */

#include "bench/bench_common.hh"
#include "model/zoo.hh"

using namespace recperf;

namespace {

void
printRow(const ModelConfig &small, const ModelConfig &large)
{
    ModelConfig base1 = rmc1Small();
    double fc_base = static_cast<double>(base1.bottomMlp.back());
    double lookup_base = static_cast<double>(rmc3Small().emb.lookupsPerTable);

    std::printf("  %-6s bottom-FC:", modelClassName(small.modelClass));
    for (int64_t w : small.bottomMlp)
        std::printf(" %4.0fx", w / fc_base);
    std::printf("   top-FC:");
    for (int64_t w : small.topMlp)
        std::printf(" %5.2fx", w / fc_base);
    std::printf("\n         tables: %lld-%lld   rows: %.0fx-%.0fx   "
                "emb-dim: %lldx   lookups: %.0fx\n",
                static_cast<long long>(small.emb.numTables),
                static_cast<long long>(large.emb.numTables),
                static_cast<double>(small.emb.rowsPerTable) /
                    static_cast<double>(base1.emb.rowsPerTable),
                static_cast<double>(large.emb.rowsPerTable) /
                    static_cast<double>(base1.emb.rowsPerTable),
                static_cast<long long>(small.emb.embDim /
                                       base1.emb.embDim),
                static_cast<double>(small.emb.lookupsPerTable) /
                    lookup_base);
    std::printf("         emb storage: %.2f-%.2f GB   FC params: "
                "%.2f-%.2f M\n",
                small.embStorageBytes() / 1e9, large.embStorageBytes() / 1e9,
                small.fcParamCount() / 1e6, large.fcParamCount() / 1e6);
}

} // namespace

int
main()
{
    bench::banner("Table I: production model architecture parameters");

    printRow(rmc1Small(), rmc1Large());
    printRow(rmc2Small(), rmc2Large());
    printRow(rmc3Small(), rmc3Large());

    bench::section("paper anchors");
    std::printf("  embedding storage ~100 MB / ~10 GB / ~1 GB for "
                "RMC1/RMC2/RMC3:\n");
    std::printf("    RMC1 %6.2f GB   RMC2 %6.2f GB   RMC3 %6.2f GB\n",
                rmc1Small().embStorageBytes() / 1e9,
                rmc2Small().embStorageBytes() / 1e9,
                rmc3Small().embStorageBytes() / 1e9);
    std::printf("  Section VII example RMC1: %lld tables x %lld rows, "
                "%lld lookups\n",
                static_cast<long long>(rmc1PaperExample().emb.numTables),
                static_cast<long long>(rmc1PaperExample().emb.rowsPerTable),
                static_cast<long long>(
                    rmc1PaperExample().emb.lookupsPerTable));
    return 0;
}
