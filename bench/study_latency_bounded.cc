/**
 * @file
 * Study: latency-bounded throughput (Section III's headline metric).
 *
 * The paper argues that benchmarking inference by latency alone is
 * insufficient: the data-center metric is how many items can be ranked
 * per second while meeting the SLA. For each machine and SLA this
 * sweeps the batch size and reports the best operating point — showing
 * both that the optimal batch grows with the SLA and that the optimal
 * *platform* flips from Broadwell (tight SLA) to Skylake (loose SLA).
 */

#include <cstdint>

#include "bench/bench_common.hh"
#include "core/logging.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "timing/model_timer.hh"

using namespace recperf;

namespace {

struct OperatingPoint
{
    int64_t batch = 0;
    double latency = 0.0;
    double itemsPerSec = 0.0;
};

OperatingPoint
bestPoint(const MachineSpec &machine, const ModelConfig &cfg, double sla)
{
    OperatingPoint best;
    for (int64_t batch : {1, 4, 16, 64, 128, 256}) {
        TimerOptions opts;
        opts.batch = batch;
        ModelTimer timer(machine, cfg, opts);
        int iters = batch >= 64 ? 6 : 15;
        double lat = timer.steadyState(iters, iters).totalSeconds();
        if (lat > sla)
            continue;
        double rate = static_cast<double>(batch) / lat;
        if (rate > best.itemsPerSec)
            best = {batch, lat, rate};
    }
    return best;
}

} // namespace

int
main()
{
    bench::banner("Study: latency-bounded throughput (single core)");

    for (const ModelConfig &cfg : {rmc1Small(), rmc2Small()}) {
        bench::section(cfg.name);
        std::printf("  %8s | %-28s %-28s %-28s\n", "SLA", "Haswell",
                    "Broadwell", "Skylake");
        for (double sla : {0.0001, 0.001, 0.010, 0.100}) {
            std::printf("  %6.1f ms |", sla * 1e3);
            OperatingPoint points[3];
            size_t best_machine = 3;
            auto machines = fleetMachines();
            for (size_t m = 0; m < machines.size(); ++m) {
                points[m] = bestPoint(machines[m], cfg, sla);
                if (points[m].batch &&
                    (best_machine == 3 ||
                     points[m].itemsPerSec >
                         points[best_machine].itemsPerSec)) {
                    best_machine = m;
                }
            }
            for (size_t m = 0; m < machines.size(); ++m) {
                if (points[m].batch == 0) {
                    std::printf(" %-28s", "SLA infeasible");
                } else {
                    std::string cell = strprintf(
                        "b=%-3lld %7.0f items/s%s",
                        static_cast<long long>(points[m].batch),
                        points[m].itemsPerSec,
                        m == best_machine ? " *" : "");
                    std::printf(" %-28s", cell.c_str());
                }
            }
            std::printf("\n");
        }
    }

    bench::section("takeaways");
    std::printf("  - the viable batch (and hence throughput) grows with "
                "the SLA: latency-only\n    rankings hide this entirely "
                "(Section III);\n");
    std::printf("  - under tight SLAs the high-frequency Broadwell wins; "
                "once the SLA allows\n    batch >= 64, wide-SIMD Skylake "
                "takes over (Takeaways 3-4).\n");
    return 0;
}
