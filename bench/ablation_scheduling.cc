/**
 * @file
 * Ablation: heterogeneity-aware vs type-oblivious placement.
 *
 * The paper's system takeaway — "maximize latency-bounded throughput by
 * exploiting server heterogeneity when scheduling inference requests" —
 * quantified over a mixed Haswell/Broadwell/Skylake fleet serving
 * latency-critical filtering and batched ranking simultaneously.
 */

#include "bench/bench_common.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "sched/scheduler.hh"

using namespace recperf;

int
main()
{
    bench::banner("Ablation: heterogeneous-fleet scheduling");

    std::vector<MachinePool> fleet = {
        {haswell(), 12}, {broadwell(), 12}, {skylake(), 12}};
    HeterogeneousScheduler sched(fleet, /*tenants_per_socket=*/8);

    std::vector<Workload> workloads = {
        // Latency-critical light ranking (search-like SLA).
        {rmc2Small(), 8, 0.0015, 4e6},
        // Batched feed ranking: throughput under a loose SLA.
        {rmc1Small(), 128, 0.100, 4e6},
    };

    bench::section("per-machine rates (items/s within SLA)");
    std::printf("  %-10s %18s %18s\n", "machine", "tight-SLA RMC2",
                "batched RMC1");
    for (size_t p = 0; p < fleet.size(); ++p) {
        std::printf("  %-10s %18.0f %18.0f\n",
                    fleet[p].spec.name.c_str(),
                    sched.machineRate(p, workloads[0]),
                    sched.machineRate(p, workloads[1]));
    }

    bench::section("placement outcomes");
    for (PlacementPolicy policy : {PlacementPolicy::TypeOblivious,
                                   PlacementPolicy::ModelAware}) {
        Placement placement = sched.place(workloads, policy);
        std::printf("  %-15s served %12.0f items/s (%.1f%% of demand)\n",
                    placementPolicyName(policy),
                    placement.servedItemsPerSec,
                    placement.servedFraction() * 100.0);
        for (const Allocation &a : placement.allocations) {
            std::printf("      %2u x %-10s -> %-11s (%.0f items/s "
                        "each)\n", a.machines,
                        fleet[a.poolIndex].spec.name.c_str(),
                        workloads[a.workloadIndex].config.name.c_str(),
                        a.itemsPerSecPerMachine);
        }
    }
    return 0;
}
