/**
 * @file
 * Study: near-memory SLS backend vs the host CPU across the model zoo.
 *
 * The paper (§II, §VII) pins RMC1/RMC2 latency on the irregular
 * SparseLengthsSum gather: embedding tables of GBs see no reuse, so
 * the host burns DRAM bandwidth streaming rows it touches once. A
 * RecNMP/UPMEM-style near-memory engine executes the gather inside the
 * memory ranks and returns only the pooled vectors, trading the row
 * stream for a thin host link. This study quantifies that trade on the
 * deterministic virtual-time model:
 *
 *   models  : RMC1 / RMC2 / RMC3 (small variants, batch 16, Broadwell)
 *   pooling : lookups-per-table swept {20, 80, 160}
 *   ranks   : PIM concurrency swept {4, 8, 16}
 *
 * Each cell times the identical trace (same seed, same draw count per
 * pooled row) under CpuBackend and NmpBackend and reports the latency
 * pair, the speedup, and the offload accounting (on-engine seconds,
 * host-link bytes).
 *
 * Doubles as the backend CI leg's invariant checker:
 *
 *  - the headline pin: NMP >= 2x CPU on RMC2 at the default operating
 *    point (pooling 80, 8 ranks);
 *  - embedding-bound models (RMC1/RMC2) always gain on the SLS portion
 *    once tables offload, and more ranks never slow the gather;
 *  - offloaded cells report nonzero on-engine time and link traffic,
 *    CPU cells report exactly zero (the accounting cannot leak);
 *  - FC-dominated RMC3 keeps its dense layers untouched: CPU and NMP
 *    FC seconds are bit-identical in every cell.
 *
 * Emits JSON (bench::JsonWriter) for scripts/run_bench.sh, stored as
 * BENCH_backend.json.
 *
 *   study_backend [--quick] [--seed 42] [--out file.json]
 */

#include <cmath>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "core/args.hh"
#include "core/logging.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "timing/model_timer.hh"

using namespace recperf;

namespace {

constexpr int64_t kBatch = 16;
constexpr double kRmc2SpeedupPin = 2.0; // acceptance: NMP >= 2x on RMC2

const std::vector<int64_t> kPoolings = {20, 80, 160};
const std::vector<uint32_t> kRanks = {4, 8, 16};

struct Cell
{
    std::string model;
    int64_t pooling = 0;
    uint32_t ranks = 0;
    ModelTiming cpu;
    ModelTiming nmp;

    double speedup() const
    {
        return nmp.totalSeconds() > 0.0
            ? cpu.totalSeconds() / nmp.totalSeconds()
            : 0.0;
    }
};

double
offloadSeconds(const ModelTiming &t)
{
    double s = 0.0;
    for (const OpTiming &op : t.ops)
        s += op.offloadSeconds;
    return s;
}

uint64_t
transferBytes(const ModelTiming &t)
{
    uint64_t b = 0;
    for (const OpTiming &op : t.ops)
        b += op.transferBytes;
    return b;
}

ModelTiming
timeModel(const ModelConfig &cfg, const BackendConfig &backend,
          uint64_t seed, int warmup, int iters)
{
    TimerOptions topts;
    topts.batch = kBatch;
    topts.seed = seed;
    topts.backend = backend;
    ModelTimer timer(broadwell(), cfg, topts);
    return timer.steadyState(warmup, iters);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("study_backend",
                   "near-memory SLS backend vs host CPU sweep");
    args.addFlag("quick", "CI-sized run (10 inferences per cell "
                          "instead of 50)");
    args.addOption("seed", "42", "embedding trace seed");
    args.addOption("out", "", "write JSON here (default: stdout)");
    std::string error;
    if (!args.parse({argv + 1, argv + argc}, &error)) {
        std::fprintf(stderr, "error: %s\n%s", error.c_str(),
                     args.helpText().c_str());
        return 2;
    }

    bool quick = args.flag("quick");
    int warmup = quick ? 3 : 10;
    int iters = quick ? 10 : 50;
    auto seed = static_cast<uint64_t>(args.optionInt("seed"));

    bench::banner(strprintf(
        "Study: near-memory SLS backend -- RMC1/2/3 x pooling x ranks\n"
        "(Broadwell, batch %lld, %d inferences per cell, seed %llu)",
        static_cast<long long>(kBatch), iters,
        static_cast<unsigned long long>(seed)));

    std::vector<std::pair<std::string, ModelConfig>> models = {
        {"rmc1", rmc1Small()},
        {"rmc2", rmc2Small()},
        {"rmc3", rmc3Small()},
    };

    std::vector<Cell> cells;
    for (const auto &[short_name, base_cfg] : models) {
        for (int64_t pooling : kPoolings) {
            ModelConfig cfg = base_cfg;
            cfg.emb.lookupsPerTable = pooling;
            cfg.validate();

            // One CPU yardstick per (model, pooling); rank count only
            // exists on the NMP side.
            ModelTiming cpu = timeModel(cfg, BackendConfig{}, seed,
                                        warmup, iters);
            for (uint32_t ranks : kRanks) {
                BackendConfig backend;
                backend.kind = BackendKind::Nmp;
                backend.nmp.ranks = ranks;
                Cell cell;
                cell.model = short_name;
                cell.pooling = pooling;
                cell.ranks = ranks;
                cell.cpu = cpu;
                cell.nmp = timeModel(cfg, backend, seed, warmup, iters);
                cells.push_back(std::move(cell));
            }
        }
    }

    bench::section("latency grid (per inference)");
    std::printf("  %-6s | %-7s | %-5s | %-10s | %-10s | %-7s | %s\n",
                "model", "pooling", "ranks", "cpu", "nmp", "speedup",
                "offload / link");
    for (const Cell &c : cells) {
        std::printf("  %-6s | %7lld | %5u | %7.3f ms | %7.3f ms | "
                    "%6.2fx | %7.3f ms / %6.1f KB\n", c.model.c_str(),
                    static_cast<long long>(c.pooling), c.ranks,
                    c.cpu.totalSeconds() * 1e3,
                    c.nmp.totalSeconds() * 1e3, c.speedup(),
                    offloadSeconds(c.nmp) * 1e3,
                    static_cast<double>(transferBytes(c.nmp)) / 1024.0);
    }

    // --- Invariant checks (the backend CI leg runs these per seed).
    bench::section("invariants");

    const Cell *pin = nullptr;
    for (const Cell &c : cells)
        if (c.model == "rmc2" && c.pooling == 80 && c.ranks == 8)
            pin = &c;
    RP_ASSERT(pin != nullptr, "rmc2/pooling80/ranks8 cell missing");
    RP_ASSERT(pin->speedup() >= kRmc2SpeedupPin,
              "RMC2 default-point speedup %.2fx below the %.1fx pin "
              "(cpu %.3f ms, nmp %.3f ms)", pin->speedup(),
              kRmc2SpeedupPin, pin->cpu.totalSeconds() * 1e3,
              pin->nmp.totalSeconds() * 1e3);
    std::printf("  [ok] RMC2 at pooling 80 / 8 ranks: %.2fx >= %.1fx\n",
                pin->speedup(), kRmc2SpeedupPin);

    for (const Cell &c : cells) {
        // The host path must never report offload accounting, and an
        // offloaded run must account for both the engine and the link.
        RP_ASSERT(offloadSeconds(c.cpu) == 0.0 &&
                      transferBytes(c.cpu) == 0,
                  "%s/p%lld CPU run leaked offload accounting",
                  c.model.c_str(), static_cast<long long>(c.pooling));
        RP_ASSERT(offloadSeconds(c.nmp) > 0.0 && transferBytes(c.nmp) > 0,
                  "%s/p%lld/r%u NMP run reports no offload accounting "
                  "(tables failed to offload?)", c.model.c_str(),
                  static_cast<long long>(c.pooling), c.ranks);

        // Embedding gathers must gain from the in-rank engine. The
        // dense layers never leave the host, but they may still get
        // *faster* under NMP: the offloaded gather no longer fills the
        // LLC, so LLC-resident FC weights see less displacement
        // (ctx.lastDramBytes shrinks). They must never get slower.
        RP_ASSERT(c.nmp.secondsByKind(OpKind::SLS) <
                      c.cpu.secondsByKind(OpKind::SLS),
                  "%s/p%lld/r%u: NMP SLS %.4f ms not below CPU %.4f ms",
                  c.model.c_str(), static_cast<long long>(c.pooling),
                  c.ranks, c.nmp.secondsByKind(OpKind::SLS) * 1e3,
                  c.cpu.secondsByKind(OpKind::SLS) * 1e3);
        RP_ASSERT(c.nmp.secondsByKind(OpKind::FC) <=
                      c.cpu.secondsByKind(OpKind::FC),
                  "%s/p%lld/r%u: FC seconds grew under NMP (%.4f ms > "
                  "%.4f ms)", c.model.c_str(),
                  static_cast<long long>(c.pooling), c.ranks,
                  c.nmp.secondsByKind(OpKind::FC) * 1e3,
                  c.cpu.secondsByKind(OpKind::FC) * 1e3);
    }
    std::printf("  [ok] every NMP cell beats CPU on the SLS portion "
                "and never slows FC;\n       offload accounting is "
                "nonzero offloaded, zero on host\n");

    // More ranks spread the max-loaded rank thinner: the gather (and
    // with fixed link/launch terms, the whole op) never gets slower.
    for (const auto &[short_name, base_cfg] : models) {
        (void)base_cfg;
        for (int64_t pooling : kPoolings) {
            const Cell *prev = nullptr;
            for (const Cell &c : cells) {
                if (c.model != short_name || c.pooling != pooling)
                    continue;
                if (prev)
                    RP_ASSERT(c.nmp.totalSeconds() <=
                                  prev->nmp.totalSeconds() * (1 + 1e-9),
                              "%s/p%lld: %u ranks slower than %u "
                              "(%.4f ms > %.4f ms)", c.model.c_str(),
                              static_cast<long long>(pooling), c.ranks,
                              prev->ranks, c.nmp.totalSeconds() * 1e3,
                              prev->nmp.totalSeconds() * 1e3);
                prev = &c;
            }
        }
    }
    std::printf("  [ok] NMP latency is non-increasing in rank count on "
                "every model x pooling\n");

    // --- JSON for run_bench.sh -> BENCH_backend.json ---
    bench::JsonWriter json("study_backend");
    json.config()
        .add("seed", seed)
        .add("iters", static_cast<int64_t>(iters))
        .add("warmup", static_cast<int64_t>(warmup))
        .add("batch", static_cast<int64_t>(kBatch))
        .add("machine", "broadwell")
        .add("rmc2_speedup_pin", kRmc2SpeedupPin);
    for (const Cell &c : cells) {
        json.newResult()
            .add("model", c.model)
            .add("pooling", c.pooling)
            .add("ranks", static_cast<uint64_t>(c.ranks))
            .add("batch", kBatch)
            .add("cpu_latency_ms", c.cpu.totalSeconds() * 1e3)
            .add("nmp_latency_ms", c.nmp.totalSeconds() * 1e3)
            .add("speedup", c.speedup())
            .add("cpu_sls_ms", c.cpu.secondsByKind(OpKind::SLS) * 1e3)
            .add("nmp_sls_ms", c.nmp.secondsByKind(OpKind::SLS) * 1e3)
            .add("offload_ms", offloadSeconds(c.nmp) * 1e3)
            .add("link_kb",
                 static_cast<double>(transferBytes(c.nmp)) / 1024.0);
    }
    RP_ASSERT(json.writeOrPrint(args.option("out")), "JSON write failed");

    bench::section("takeaways");
    std::printf("  - RMC1/RMC2 are gather-bound: moving SLS into the "
                "ranks collapses the DRAM\n    row stream to pooled "
                "vectors over the link and the speedup tracks pooling\n"
                "    depth (more rows folded per transferred vector);\n");
    std::printf("  - rank count buys near-linear gather parallelism "
                "until the hot-rank load\n    flattens; duplicate-ID "
                "coalescing is what keeps Zipf-hot traffic from\n"
                "    serializing on one rank;\n");
    std::printf("  - RMC3 stays FC-dominated: its dense layers never "
                "leave the host, so the\n    end-to-end gain is "
                "bounded by the SLS fraction (Amdahl).\n");
    return 0;
}
