/**
 * @file
 * Study: deadline budgets + the brownout ladder under overload.
 *
 * The paper's serving argument (§III, §VI) is that the data-center
 * metric is latency-bounded throughput: an answer past its deadline is
 * worth nothing, so under overload the right move is to stop spending
 * cycles on hopeless requests and to shrink the work per request
 * before shedding it. This study measures both mechanisms as an
 * (offered load x policy) grid at 1.5x the saturation throughput:
 *
 *  - "disabled": no deadline, no ladder — the queue grows without
 *    bound and almost every item completes past the budget;
 *  - "deadline": end-to-end budgets shed hopeless items at admission,
 *    in the queue, and cancel mid-batch completions that land late;
 *  - "ladder": deadlines plus the SLO-burn-driven brownout ladder
 *    (truncated candidates -> skipped tables -> stale embeddings);
 *  - "ladder_chaos": the same ladder composed with the study_failover
 *    fault channels (stragglers + load spikes).
 *
 * Doubles as the chaos harness's invariant checker for CI:
 *
 *  - accounting never breaks: served + shed + cancelled == offered in
 *    every cell;
 *  - the ladder cell improves goodput >= 25% over "disabled" and its
 *    served p99 stays within the SLO (the PR's acceptance bound);
 *  - the ladder actually engages: level >= 1 occupancy and at least
 *    one transition under overload.
 *
 * Emits JSON (goodput + p99 + level occupancy per cell) for
 * scripts/run_bench.sh, which stores it as BENCH_brownout.json.
 *
 *   study_brownout [--quick] [--seed 3] [--out file.json]
 */

#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "core/args.hh"
#include "core/logging.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "resilience/fault_injector.hh"
#include "serving/server.hh"

using namespace recperf;

namespace {

constexpr uint32_t kWorkers = 2;
constexpr int64_t kMaxBatch = 16;

/** Budget == SLO: an item past the deadline has missed the SLO, so
 *  goodput (items within budget per second) is comparable across the
 *  deadline-on and deadline-off cells. */
constexpr double kDeadlineSeconds = 1.5e-3;

/** Offered load as a multiple of closed-loop saturation. */
constexpr double kOverload = 1.5;

constexpr double kGoodputBound = 1.25; // ladder >= bound x disabled

struct Cell
{
    std::string mode;
    ServingStats stats;

    /** Items answered within the budget, per second. With a deadline
     *  a late answer is cancelled (never served), so deadlineMet is
     *  the within-budget count; without one, slaMet is (SLA==budget). */
    double goodput() const
    {
        return stats.deadlineMet > 0 ? stats.deadlineGoodput()
                                     : stats.goodThroughput();
    }

    uint64_t degradedItems() const
    {
        uint64_t n = 0;
        for (int l = 1; l < kBrownoutLevels; ++l)
            n += stats.brownoutItems[l];
        return n;
    }
};

ServerOptions
baseOptions(uint64_t seed)
{
    ServerOptions sopts;
    sopts.numWorkers = kWorkers;
    sopts.maxBatch = kMaxBatch;
    sopts.slaSeconds = kDeadlineSeconds;
    sopts.seed = seed;
    return sopts;
}

/** Ladder tuned to the short virtual-time window of a bench run: the
 *  burn sensor reacts within ~10 ms and transitions may follow every
 *  5 ms, so a ~50 ms overload run can climb and descend the ladder. */
BrownoutOptions
ladderOptions()
{
    BrownoutOptions b;
    b.enabled = true;
    b.shortWindowSeconds = 0.010;
    b.longWindowSeconds = 0.050;
    b.dwellSeconds = 0.005;
    return b;
}

FaultOptions
chaosFaults(uint64_t seed)
{
    FaultOptions f;
    f.stragglerProb = 0.05;
    f.spikeRatePerSec = 50.0;
    f.spikeDurationSeconds = 2e-3;
    f.spikeFactor = 2.0;
    f.seed = seed;
    return f;
}

Cell
runCell(const std::string &mode, const ServerOptions &sopts,
        double rate, uint64_t items)
{
    TimerOptions topts;
    topts.batch = kMaxBatch;
    Server server(broadwell(), rmc1Small(), topts, sopts);
    return {mode, server.runOpenLoop(rate, items)};
}

void
cellJson(bench::JsonWriter &json, const Cell &c, double rate,
         uint64_t items)
{
    const ServingStats &s = c.stats;
    json.newResult()
        .add("mode", c.mode)
        .add("offered_rate_items_s", rate)
        .add("offered", static_cast<uint64_t>(items))
        .add("served", s.completedItems())
        .add("shed_admission_deadline", s.shedAdmissionDeadline)
        .add("deadline_shed_queue", s.deadlineShedQueue)
        .add("deadline_cancelled", s.deadlineCancelled)
        .add("goodput_items_s", c.goodput())
        .add("served_p99_ms",
             s.completedItems() > 0 ? s.itemLatency.p(99) * 1e3 : 0.0)
        .add("quality_score", s.qualityScore())
        .add("brownout_transitions", s.brownoutTransitions)
        .add("degraded_level_items", c.degradedItems());
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("study_brownout",
                   "deadline + brownout goodput under 1.5x overload");
    args.addFlag("quick", "CI-sized run (6000 items instead of 20000)");
    args.addOption("seed", "3", "arrival/jitter/fault seed");
    args.addOption("out", "", "write JSON here (default: stdout)");
    std::string error;
    if (!args.parse({argv + 1, argv + argc}, &error)) {
        std::fprintf(stderr, "error: %s\n%s", error.c_str(),
                     args.helpText().c_str());
        return 2;
    }

    bool quick = args.flag("quick");
    uint64_t items = quick ? 6000 : 20000;
    auto seed = static_cast<uint64_t>(args.optionInt("seed"));

    // Saturation capacity of this server: closed-loop throughput with
    // every policy off. The grid offers 1.5x this rate.
    TimerOptions topts;
    topts.batch = kMaxBatch;
    Server probe(broadwell(), rmc1Small(), topts, baseOptions(seed));
    ServingStats closed = probe.runClosedLoop(quick ? 40 : 100);
    double saturation = closed.totalThroughput();
    double rate = kOverload * saturation;

    bench::banner(strprintf(
        "Study: deadline budgets + brownout ladder -- goodput under "
        "%.1fx overload\n(RMC1 on Broadwell, %u workers, max batch "
        "%lld, budget %.1f ms, seed %llu)", kOverload, kWorkers,
        static_cast<long long>(kMaxBatch), kDeadlineSeconds * 1e3,
        static_cast<unsigned long long>(seed)));
    std::printf("\n  saturation: %.0f items/s closed-loop -> offering "
                "%.0f items/s\n", saturation, rate);

    std::vector<Cell> cells;
    {
        ServerOptions sopts = baseOptions(seed);
        cells.push_back(runCell("disabled", sopts, rate, items));
    }
    {
        ServerOptions sopts = baseOptions(seed);
        sopts.deadlineSeconds = kDeadlineSeconds;
        cells.push_back(runCell("deadline", sopts, rate, items));
    }
    {
        ServerOptions sopts = baseOptions(seed);
        sopts.deadlineSeconds = kDeadlineSeconds;
        sopts.brownout = ladderOptions();
        cells.push_back(runCell("ladder", sopts, rate, items));
    }
    {
        ServerOptions sopts = baseOptions(seed);
        sopts.deadlineSeconds = kDeadlineSeconds;
        sopts.brownout = ladderOptions();
        sopts.faults = chaosFaults(seed);
        cells.push_back(runCell("ladder_chaos", sopts, rate, items));
    }

    bench::section("goodput / p99 grid");
    std::printf("  %-13s | %-9s | %-10s | %-22s | %s\n", "cell",
                "goodput", "served p99", "shed adm/queue/cancel",
                "degraded items");
    for (const Cell &c : cells) {
        const ServingStats &s = c.stats;
        std::printf("  %-13s | %7.0f/s | %7.3f ms | %6llu %6llu %6llu "
                    "| %llu (%llu transitions)\n", c.mode.c_str(),
                    c.goodput(),
                    s.completedItems() > 0 ? s.itemLatency.p(99) * 1e3
                                           : 0.0,
                    static_cast<unsigned long long>(
                        s.shedAdmissionDeadline),
                    static_cast<unsigned long long>(s.deadlineShedQueue),
                    static_cast<unsigned long long>(s.deadlineCancelled),
                    static_cast<unsigned long long>(c.degradedItems()),
                    static_cast<unsigned long long>(
                        s.brownoutTransitions));
    }

    // --- Invariant checks (the chaos CI leg runs these per seed). ---
    bench::section("invariants");

    for (const Cell &c : cells) {
        RP_ASSERT(c.stats.offeredItems() == items,
                  "accounting broken in '%s': served %llu + shed "
                  "%llu/%llu/%llu + dropped %llu + cancelled %llu != "
                  "%llu offered", c.mode.c_str(),
                  static_cast<unsigned long long>(
                      c.stats.completedItems()),
                  static_cast<unsigned long long>(c.stats.shedItems),
                  static_cast<unsigned long long>(
                      c.stats.shedAdmissionDeadline),
                  static_cast<unsigned long long>(
                      c.stats.deadlineShedQueue),
                  static_cast<unsigned long long>(
                      c.stats.droppedLowPriority),
                  static_cast<unsigned long long>(
                      c.stats.deadlineCancelled),
                  static_cast<unsigned long long>(items));
    }
    std::printf("  [ok] served + shed + cancelled == offered in every "
                "cell\n");

    const Cell &disabled = cells[0];
    const Cell &ladder = cells[2];
    RP_ASSERT(ladder.goodput() >= kGoodputBound * disabled.goodput(),
              "ladder goodput %.0f/s below %.2fx the disabled "
              "baseline's %.0f/s", ladder.goodput(), kGoodputBound,
              disabled.goodput());
    std::printf("  [ok] ladder goodput %.0f/s >= %.2fx disabled "
                "(%.0f/s)\n", ladder.goodput(), kGoodputBound,
                disabled.goodput());

    RP_ASSERT(ladder.stats.completedItems() > 0 &&
                  ladder.stats.itemLatency.p(99) <= kDeadlineSeconds,
              "ladder served p99 %.3f ms above the %.1f ms SLO",
              ladder.stats.itemLatency.p(99) * 1e3,
              kDeadlineSeconds * 1e3);
    std::printf("  [ok] ladder served p99 %.3f ms <= SLO %.1f ms\n",
                ladder.stats.itemLatency.p(99) * 1e3,
                kDeadlineSeconds * 1e3);

    for (size_t i = 2; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        RP_ASSERT(c.degradedItems() > 0 &&
                      c.stats.brownoutTransitions > 0,
                  "'%s' ladder never engaged under %.1fx overload "
                  "(%llu degraded items, %llu transitions)",
                  c.mode.c_str(), kOverload,
                  static_cast<unsigned long long>(c.degradedItems()),
                  static_cast<unsigned long long>(
                      c.stats.brownoutTransitions));
    }
    std::printf("  [ok] ladder engaged (level >= 1 occupancy and "
                "transitions) in both ladder cells\n");

    // --- JSON for run_bench.sh -> BENCH_brownout.json ---
    bench::JsonWriter json("study_brownout");
    json.config()
        .add("seed", seed)
        .add("items", items)
        .add("workers", kWorkers)
        .add("batch", static_cast<int64_t>(kMaxBatch))
        .add("deadline_ms", kDeadlineSeconds * 1e3)
        .add("overload", kOverload);
    for (const Cell &c : cells)
        cellJson(json, c, rate, items);
    RP_ASSERT(json.writeOrPrint(args.option("out")), "JSON write failed");

    bench::section("takeaways");
    std::printf("  - without deadlines, 1.5x overload grows the queue "
                "without bound: every\n    cycle is spent on answers "
                "that arrive too late to matter;\n");
    std::printf("  - budgets alone recover most of the goodput by "
                "refusing hopeless work at\n    admission and "
                "abandoning it mid-batch once the budget burns away;\n");
    std::printf("  - the ladder converts the remaining overload into "
                "quality loss instead of\n    shed traffic: truncated "
                "candidates and skipped tables shrink the work\n    "
                "per answer until goodput meets the offered rate.\n");
    return 0;
}
