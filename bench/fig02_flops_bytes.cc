/**
 * @file
 * Regenerates Figure 2: per-inference FLOPs vs. bytes read for the
 * production recommendation models against open-source CNNs/RNNs and
 * MLPerf-NCF.
 *
 * Shape to reproduce: the RMCs occupy a distinct region — orders of
 * magnitude more bytes read than NCF once lookups are batched (the
 * embedding gathers scale with batch while NCF's small FC weights
 * amortize), but far fewer FLOPs than the large CNNs.
 */

#include <cmath>
#include <cstdlib>
#include <vector>

#include "bench/bench_common.hh"
#include "model/proxy.hh"
#include "model/zoo.hh"

using namespace recperf;

namespace {

struct Point
{
    std::string name;
    double mflops;
    double mbytes;
};

std::vector<Point>
collect(int64_t batch)
{
    std::vector<Point> points;
    for (const ModelConfig &cfg : allZooModels()) {
        OpCost c = cfg.inferenceCost(batch);
        points.push_back({cfg.name, c.flops / 1e6, c.bytesRead / 1e6});
    }
    {
        OpCost c = ncfConfig().inferenceCost(batch);
        points.push_back({"MLPerf-NCF", c.flops / 1e6, c.bytesRead / 1e6});
    }
    for (const ProxyModel &p : proxyModels()) {
        OpCost c = p.cost(batch);
        points.push_back({p.name, c.flops / 1e6, c.bytesRead / 1e6});
    }
    return points;
}

const Point &
find(const std::vector<Point> &points, const std::string &name)
{
    for (const Point &p : points) {
        if (p.name == name)
            return p;
    }
    std::fprintf(stderr, "missing point %s\n", name.c_str());
    std::abort();
}

void
printPoints(const std::vector<Point> &points)
{
    for (const Point &p : points) {
        std::printf("  %-14s %12.3f MFLOPs %12.3f MB read  "
                    "(intensity %6.2f)\n", p.name.c_str(), p.mflops,
                    p.mbytes, p.mflops / p.mbytes);
    }
}

} // namespace

int
main()
{
    bench::banner("Figure 2: compute (FLOPs) vs. memory (bytes read)");

    bench::section("batch 1 (per-sample view)");
    printPoints(collect(1));

    bench::section("batch 64 (served view: gathers scale, weights "
                   "amortize)");
    std::vector<Point> served = collect(64);
    printPoints(served);

    bench::section("paper-shape checks (batch 64)");
    const Point &rmc1 = find(served, "RMC1-small");
    const Point &rmc2 = find(served, "RMC2-small");
    const Point &rmc3 = find(served, "RMC3-small");
    const Point &ncf = find(served, "MLPerf-NCF");
    const Point &vgg = find(served, "VGG16");
    std::printf("  RMC2 bytes vs NCF bytes:   %8.1fx (orders of "
                "magnitude)\n", rmc2.mbytes / ncf.mbytes);
    std::printf("  VGG16 flops vs RMC1 flops: %8.1fx (CNNs are "
                "compute-heavy)\n", vgg.mflops / rmc1.mflops);
    std::printf("  RMC3 flops vs RMC1 flops:  %8.1fx (diversity within "
                "recommendation)\n", rmc3.mflops / rmc1.mflops);
    std::printf("  RMC2 bytes vs RMC1 bytes:  %8.1fx\n",
                rmc2.mbytes / rmc1.mbytes);
    return 0;
}
