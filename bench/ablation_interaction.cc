/**
 * @file
 * Ablation: feature-interaction operator (concat vs pairwise dot).
 *
 * The paper's heavyweight ranking models spend "over 96% of the time in
 * the BatchMatMul or FC operators" (§V); the dot-product interaction is
 * where BatchMatMul comes from. This compares the two interaction modes
 * on latency and operator mix.
 */

#include "bench/bench_common.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "timing/model_timer.hh"

using namespace recperf;

int
main()
{
    bench::banner("Ablation: concat vs dot feature interaction");

    MachineSpec bdw = broadwell();
    std::printf("  %-10s %6s | %10s %7s %8s %7s %7s\n", "model", "batch",
                "latency", "FC", "BatchMM", "SLS", "other");
    for (const ModelConfig &cfg : {rmc3Small(), rmc3Dot()}) {
        for (int64_t batch : {1, 16, 128}) {
            TimerOptions opts;
            opts.batch = batch;
            ModelTimer timer(bdw, cfg, opts);
            int iters = batch >= 128 ? 6 : 15;
            ModelTiming t = timer.steadyState(iters, iters);
            double fc = t.fractionByKind(OpKind::FC);
            double mm = t.fractionByKind(OpKind::BatchMM);
            double sls = t.fractionByKind(OpKind::SLS);
            std::printf("  %-10s %6lld | %7.3f ms %6.1f%% %7.1f%% "
                        "%6.1f%% %6.1f%%\n", cfg.name.c_str(),
                        static_cast<long long>(batch),
                        t.totalSeconds() * 1e3, fc * 100, mm * 100,
                        sls * 100, (1 - fc - mm - sls) * 100);
        }
    }

    bench::section("paper-shape check");
    TimerOptions opts;
    opts.batch = 16;
    ModelTimer timer(bdw, rmc3Dot(), opts);
    ModelTiming t = timer.steadyState(10, 10);
    double share = t.fractionByKind(OpKind::FC) +
        t.fractionByKind(OpKind::BatchMM);
    std::printf("  RMC3-dot FC+BatchMM share: %.1f%%  (paper: > 96%%)\n",
                share * 100.0);
    return 0;
}
