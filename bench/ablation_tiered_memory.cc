/**
 * @file
 * Ablation: DRAM/NVM tiered embedding storage (Eisenman et al. [25]).
 *
 * RMC2's ~10 GB of tables strain DRAM capacity; NVM is dense but slow.
 * This sweeps the DRAM row-cache size in front of NVM-resident tables
 * and reports SLS latency, NVM read traffic, and DRAM footprint —
 * showing the design point where tiering approaches all-DRAM speed at a
 * fraction of the DRAM cost.
 */

#include "bench/bench_common.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "timing/model_timer.hh"
#include "timing/tiered_memory.hh"

using namespace recperf;

int
main()
{
    bench::banner("Ablation: NVM-backed embeddings with a DRAM row "
                  "cache (RMC2, batch 8)");

    MachineSpec bdw = broadwell();
    ModelConfig cfg = rmc2Small();
    TimerOptions opts;
    opts.batch = 8;

    // All-DRAM reference from the standard timing model.
    ModelTimer dram_timer(bdw, cfg, opts);
    double all_dram_sls =
        dram_timer.steadyState(12, 12).secondsByKind(OpKind::SLS);
    std::printf("  all-DRAM reference SLS: %.3f ms (tables use %.1f GB "
                "of DRAM)\n\n", all_dram_sls * 1e3,
                cfg.embStorageBytes() / 1e9);

    std::printf("  %-12s %10s %12s %12s %14s\n", "DRAM cache", "hit rate",
                "NVM reads", "SLS (ms)", "DRAM needed");
    for (size_t cache_rows :
         {size_t{0}, size_t{100'000}, size_t{1'000'000},
          size_t{10'000'000}}) {
        TieredSlsModel tiered(bdw, cfg, NvmConfig{}, cache_rows,
                              CachePolicy::Lru, opts);
        TieredSlsResult r = tiered.run(12, 12);
        std::printf("  %10zu %9.1f%% %12llu %9.3f ms %11.2f GB\n",
                    cache_rows, r.dramCacheHitRate * 100.0,
                    static_cast<unsigned long long>(
                        r.nvmReadsPerInference),
                    r.slsSecondsPerInference * 1e3,
                    r.dramCacheBytes / 1e9);
    }

    bench::section("takeaway");
    std::printf("  a DRAM cache holding a few %% of rows absorbs most "
                "gathers (Fig 14\n  locality), bringing NVM-resident "
                "tables within ~2x of all-DRAM SLS at\n  ~100x less DRAM "
                "— the capacity escape hatch for RMC2-class models.\n");
    return 0;
}
