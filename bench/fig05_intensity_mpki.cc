/**
 * @file
 * Regenerates Figure 5: operational intensity (FLOPs/byte, left) and
 * LLC MPKI (right) for SLS vs. FC, CNN and RNN layers.
 *
 * Paper anchors: SLS ~0.25 FLOPs/B vs. RNN 5.5, FC 18, CNN 141;
 * SLS ~8 MPKI vs. RNN 0.5, FC 0.2, CNN 0.06.
 */

#include <cmath>

#include "bench/bench_common.hh"
#include "core/rng.hh"
#include "machine/machine_spec.hh"
#include "model/proxy.hh"
#include "model/zoo.hh"
#include "ops/sparse_lengths_sum.hh"
#include "timing/model_timer.hh"
#include "trace/id_generator.hh"

using namespace recperf;

namespace {

/**
 * LLC MPKI of a weight-streaming operator (FC / CNN / RNN) measured on
 * a simulated Broadwell: stream the weight and activation lines through
 * the hierarchy in steady state; instructions follow the same model the
 * timing layer uses.
 */
double
streamingOpMpki(double weight_bytes, double act_bytes_per_iter,
                double flops_per_iter, int iters)
{
    MachineSpec bdw = broadwell();
    auto hier = bdw.makeHierarchy(1);
    const uint64_t weight_lines =
        static_cast<uint64_t>(weight_bytes / 64.0);
    const uint64_t act_lines =
        static_cast<uint64_t>(act_bytes_per_iter / 64.0);

    uint64_t act_cursor = 1ull << 40; // fresh activations every iter
    for (int it = 0; it < iters; ++it) {
        for (uint64_t l = 0; l < weight_lines; ++l)
            hier->access(0, l * 64);
        for (uint64_t l = 0; l < act_lines; ++l) {
            hier->access(0, act_cursor);
            act_cursor += 64;
        }
    }
    // Steady state: drop the cold first iteration.
    double misses = static_cast<double>(hier->l3().stats().misses) -
        static_cast<double>(weight_lines);
    if (misses < 0)
        misses = 0;
    double instr_per_iter = flops_per_iter / 16.0 +
        (weight_bytes + act_bytes_per_iter) / 32.0 + 3000.0;
    return misses / (iters - 1) / (instr_per_iter / 1000.0);
}

/** LLC MPKI of the SLS operator over a production-like trace. */
double
slsMpki()
{
    TimerOptions opts;
    opts.batch = 16;
    ModelTimer timer(broadwell(), rmc2Small(), opts);
    ModelTiming t = timer.steadyState(15, 15);
    double sls_misses = 0.0, sls_instr = 0.0;
    for (const OpTiming &op : t.ops) {
        if (op.kind == OpKind::SLS) {
            sls_misses += static_cast<double>(op.dramLines);
            sls_instr += op.instructions;
        }
    }
    return sls_misses / (sls_instr / 1000.0);
}

} // namespace

int
main()
{
    bench::banner("Figure 5: operator compute intensity and LLC MPKI");

    // --- Left panel: operational intensity (FLOPs per byte read). ---
    OpCost sls = EmbeddingTable::cost(/*total_ids=*/80, /*outputs=*/1,
                                      /*dim=*/32);
    OpCost rnn = lstmLayerCost(/*batch=*/11);
    OpCost fc = fcLayerCost(/*batch=*/38);
    OpCost cnn = convLayerCost(/*batch=*/2);

    bench::section("operational intensity (paper: SLS 0.25, RNN 5.5, "
                   "FC 18, CNN 141)");
    std::printf("  %-6s %8.2f FLOPs/B\n", "SLS", sls.intensity());
    std::printf("  %-6s %8.2f FLOPs/B\n", "RNN", rnn.intensity());
    std::printf("  %-6s %8.2f FLOPs/B\n", "FC", fc.intensity());
    std::printf("  %-6s %8.2f FLOPs/B\n", "CNN", cnn.intensity());

    // --- Right panel: LLC MPKI on simulated Broadwell. Weights of the
    // dense layers are LLC-resident in steady state; only the incoming
    // activations (and recurrent gate/state traffic for the LSTM) are
    // fresh lines, so MPKI tracks fresh-bytes per instruction. ---
    bench::section("LLC MPKI (paper: SLS ~8, RNN 0.5, FC 0.2, CNN 0.06)");
    double mpki_sls = slsMpki();
    // RNN: 1024-wide LSTM; gates + cell/hidden state are fresh each
    // timestep (8*h floats per sample).
    double mpki_rnn = streamingOpMpki(4.0 * 1024 * 2048 * 4,
                                      8.0 * 1024 * 4 * 11,
                                      lstmLayerCost(11).flops, 6);
    // FC: ResNet-50 classifier; the 2048-wide input batch is fresh.
    double mpki_fc = streamingOpMpki(2048 * 1000 * 4, 2048 * 4 * 38,
                                     fcLayerCost(38).flops, 6);
    // CNN: 3x3 conv layer; the input tile was just produced by the
    // previous layer, so almost nothing is fresh.
    double mpki_cnn = streamingOpMpki(9.0 * 256 * 256 * 4, 96.0 * 1024,
                                      convLayerCost(2).flops, 6);
    std::printf("  %-6s %8.2f MPKI\n", "SLS", mpki_sls);
    std::printf("  %-6s %8.2f MPKI\n", "RNN", mpki_rnn);
    std::printf("  %-6s %8.2f MPKI\n", "FC", mpki_fc);
    std::printf("  %-6s %8.2f MPKI\n", "CNN", mpki_cnn);

    bench::section("paper-shape checks");
    std::printf("  CNN/SLS intensity ratio: %7.1fx (paper ~560x)\n",
                cnn.intensity() / sls.intensity());
    std::printf("  SLS/FC MPKI ratio:       %7.1fx (paper ~40x)\n",
                mpki_sls / std::max(mpki_fc, 1e-3));
    return 0;
}
