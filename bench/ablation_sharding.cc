/**
 * @file
 * Ablation: table-wise sharded (distributed) inference.
 *
 * Section VII suggests studying "running recommendation models across
 * many nodes". This sweeps the shard count for the embedding-dominated
 * RMC2 and shows the scale-out win on the parallel SLS phase against
 * the network/aggregator floor.
 */

#include "bench/bench_common.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "serving/distributed.hh"

using namespace recperf;

int
main()
{
    bench::banner("Ablation: sharded inference (RMC2, batch 16, "
                  "Broadwell nodes)");

    TimerOptions opts;
    opts.batch = 16;
    NetworkConfig net;

    std::printf("  %5s %12s %12s %12s %12s\n", "nodes", "total",
                "shard SLS", "network", "aggregator");
    double baseline = 0.0;
    for (uint32_t nodes : {1u, 2u, 4u, 8u, 16u, 32u}) {
        ShardedInference sim(broadwell(), rmc2Small(), nodes, net, opts);
        ShardedResult r =
            sim.run(RunOptions{.warmupIters = 8, .measureIters = 6})
                .breakdown();
        if (nodes == 1)
            baseline = r.totalSeconds;
        std::printf("  %5u %9.3f ms %9.3f ms %9.3f ms %9.3f ms   "
                    "(%.2fx)\n", nodes, r.totalSeconds * 1e3,
                    r.slowestShardSeconds * 1e3, r.networkSeconds * 1e3,
                    r.aggregatorSeconds * 1e3,
                    baseline / r.totalSeconds);
    }

    bench::section("network sensitivity (8 nodes)");
    for (double bw : {1.0, 3.0, 12.5}) {
        NetworkConfig slow = net;
        slow.bandwidthGBps = bw;
        ShardedInference sim(broadwell(), rmc2Small(), 8, slow, opts);
        ShardedResult r =
            sim.run(RunOptions{.warmupIters = 8, .measureIters = 6})
                .breakdown();
        std::printf("  %5.1f GB/s links: total %.3f ms (network "
                    "%.3f ms)\n", bw, r.totalSeconds * 1e3,
                    r.networkSeconds * 1e3);
    }
    return 0;
}
