/**
 * @file
 * Regenerates Figure 9: per-model latency degradation when co-locating
 * N inferences on a Broadwell socket (batch 32), broken down into FC,
 * SparseLengthsSum and the rest.
 *
 * Paper anchors at N=8: latency degrades 1.3x / 2.6x / 1.6x for
 * RMC1/RMC2/RMC3; RMC2's FC and SLS degrade 1.6x and 3x.
 */

#include "bench/bench_common.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "timing/colocation.hh"

using namespace recperf;

int
main()
{
    bench::banner("Figure 9: co-location latency degradation "
                  "(Broadwell, batch 32)");

    MachineSpec bdw = broadwell();
    for (const ModelConfig &cfg : representativeModels()) {
        bench::section(cfg.name);
        double base_total = 0, base_fc = 0, base_sls = 0;
        std::printf("  %3s %12s %8s | normalized: %6s %6s %6s %6s\n", "N",
                    "latency", "", "total", "FC", "SLS", "Rest");
        for (uint32_t n : {1u, 2u, 4u, 8u}) {
            TimerOptions opts;
            opts.batch = 32;
            ColocationSim sim(bdw, cfg, opts, n);
            ColocationResult r = sim.run(12, 8);
            ModelTiming avg = r.averageTiming();
            double total = avg.totalSeconds();
            double fc = avg.secondsByKind(OpKind::FC);
            double sls = avg.secondsByKind(OpKind::SLS);
            double rest = total - fc - sls;
            if (n == 1) {
                base_total = total;
                base_fc = fc;
                base_sls = sls;
            }
            std::printf("  %3u %9.3f ms %8s | %11.2fx %5.2fx %5.2fx "
                        "(rest %4.1f%%)\n",
                        n, total * 1e3, "",
                        total / base_total, fc / base_fc, sls / base_sls,
                        rest / total * 100);
        }
    }
    return 0;
}
