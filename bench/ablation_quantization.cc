/**
 * @file
 * Ablation: embedding-table precision (fp32 / fp16 / int8).
 *
 * Quantifies the compression lever of §VIII on the memory-intensive
 * RMC2: storage capacity, SparseLengthsSum latency (fewer cache lines
 * per gather), and the numeric error introduced by row-wise int8.
 */

#include <algorithm>
#include <cmath>

#include "bench/bench_common.hh"
#include "core/rng.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "ops/quantized_embedding.hh"
#include "timing/model_timer.hh"

using namespace recperf;

int
main()
{
    bench::banner("Ablation: embedding precision (RMC2, Broadwell)");

    MachineSpec bdw = broadwell();
    std::printf("  %-6s %12s %14s %14s\n", "prec", "storage", "SLS b=16",
                "total b=16");
    for (EmbPrecision precision :
         {EmbPrecision::Fp32, EmbPrecision::Fp16, EmbPrecision::Int8}) {
        ModelConfig cfg = rmc2Small();
        cfg.emb.precision = precision;
        TimerOptions opts;
        opts.batch = 16;
        ModelTimer timer(bdw, cfg, opts);
        ModelTiming t = timer.steadyState(15, 15);
        std::printf("  %-6s %9.2f GB %11.3f ms %11.3f ms\n",
                    embPrecisionName(precision),
                    cfg.embStorageBytes() / 1e9,
                    t.secondsByKind(OpKind::SLS) * 1e3,
                    t.totalSeconds() * 1e3);
    }

    bench::section("numeric fidelity of row-wise int8");
    Rng rng(17);
    EmbeddingTable table(50'000, 32, rng);
    QuantizedEmbeddingTable q(table);
    std::vector<int64_t> ids, lengths;
    for (int b = 0; b < 64; ++b) {
        lengths.push_back(80);
        for (int j = 0; j < 80; ++j)
            ids.push_back(rng.nextInt(0, 49'999));
    }
    Tensor exact = table.forward(ids, lengths);
    Tensor approx = q.forward(ids, lengths);
    double max_err = 0.0, max_mag = 0.0;
    for (int64_t i = 0; i < exact.size(); ++i) {
        max_err = std::max(max_err, static_cast<double>(
            std::fabs(exact.at(i) - approx.at(i))));
        max_mag = std::max(max_mag, static_cast<double>(
            std::fabs(exact.at(i))));
    }
    std::printf("  pooled-output max abs error: %.5f (%.3f%% of max "
                "magnitude)\n", max_err, 100.0 * max_err / max_mag);
    std::printf("  storage saving vs fp32:      %.2fx\n",
                static_cast<double>(table.storageBytes()) /
                    static_cast<double>(q.storageBytes()));
    return 0;
}
