/**
 * @file
 * Shared helpers for the figure/table regeneration benchmarks.
 *
 * Every binary in bench/ regenerates one table or figure of the paper:
 * it runs the corresponding experiment on the simulated fleet and
 * prints the same rows/series the paper reports, so results can be
 * compared shape-for-shape against the original.
 */

#ifndef RECPERF_BENCH_BENCH_COMMON_HH
#define RECPERF_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "backend/compute_backend.hh"
#include "machine/simd.hh"

namespace recperf {
namespace bench {

/** Print a centered banner naming the figure being regenerated. */
inline void
banner(const std::string &title)
{
    std::string rule(72, '=');
    std::printf("%s\n%s\n%s\n", rule.c_str(), title.c_str(), rule.c_str());
}

/** Print a section separator. */
inline void
section(const std::string &title)
{
    std::printf("\n-- %s --\n", title.c_str());
}

/** Render a fixed-width ASCII bar scaled to @p frac of @p width. */
inline std::string
bar(double frac, int width = 40)
{
    if (frac < 0.0)
        frac = 0.0;
    if (frac > 1.0)
        frac = 1.0;
    int n = static_cast<int>(frac * width + 0.5);
    return std::string(static_cast<size_t>(n), '#');
}

/** Ordered JSON object: typed add() calls render fields in order. */
class JsonObject
{
  public:
    JsonObject &add(const std::string &key, const std::string &value)
    {
        return raw(key, '"' + escape(value) + '"');
    }
    JsonObject &add(const std::string &key, const char *value)
    {
        return add(key, std::string(value));
    }
    JsonObject &add(const std::string &key, double value)
    {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.10g", value);
        return raw(key, buf);
    }
    JsonObject &add(const std::string &key, int64_t value)
    {
        return raw(key, std::to_string(value));
    }
    JsonObject &add(const std::string &key, uint64_t value)
    {
        return raw(key, std::to_string(value));
    }
    JsonObject &add(const std::string &key, int value)
    {
        return add(key, static_cast<int64_t>(value));
    }
    JsonObject &add(const std::string &key, unsigned value)
    {
        return add(key, static_cast<uint64_t>(value));
    }
    JsonObject &add(const std::string &key, bool value)
    {
        return raw(key, value ? "true" : "false");
    }

    /** Render with every field on one line, indented @p indent. */
    std::string render(int indent) const
    {
        std::string pad(static_cast<size_t>(indent), ' ');
        std::string out = "{\n";
        for (size_t i = 0; i < fields_.size(); ++i) {
            out += pad + "  \"" + fields_[i].first +
                "\": " + fields_[i].second;
            out += i + 1 < fields_.size() ? ",\n" : "\n";
        }
        return out + pad + "}";
    }

  private:
    static std::string escape(const std::string &s)
    {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
                continue;
            }
            out += c;
        }
        return out;
    }

    JsonObject &raw(const std::string &key, std::string rendered)
    {
        fields_.emplace_back(key, std::move(rendered));
        return *this;
    }

    std::vector<std::pair<std::string, std::string>> fields_;
};

/**
 * Uniform emitter for the in-tree BENCH_*.json files:
 *
 *   { "schema_version": 1, "bench": "<name>",
 *     "machine": {...}, "config": {...}, "results": [ {...}, ... ] }
 *
 * `machine` is pre-seeded with the host core count; benches append
 * whatever else identifies the run (thread list, model, ...) to
 * config() and push one flat JsonObject per measured point to
 * newResult().
 */
class JsonWriter
{
  public:
    static constexpr int kSchemaVersion = 1;

    explicit JsonWriter(std::string bench_name)
        : bench_(std::move(bench_name))
    {
        machine_.add("host_cores",
                     static_cast<uint64_t>(
                         std::thread::hardware_concurrency()));
        // Stamp the active compute backend and ISA policy so
        // scripts/bench_diff.py can flag a cross-backend comparison as
        // config drift instead of reporting it as a perf regression.
        const BackendConfig &backend = activeBackendConfig();
        machine_.add("backend", backendKindName(backend.kind));
        machine_.add("isa", backend.isa.autoSelect
                         ? "auto"
                         : kernelIsaName(backend.isa.pinned));
    }

    JsonObject &machine() { return machine_; }
    JsonObject &config() { return config_; }

    JsonObject &newResult()
    {
        results_.emplace_back();
        return results_.back();
    }

    std::string str() const
    {
        std::string out = "{\n";
        out += "  \"schema_version\": " +
            std::to_string(kSchemaVersion) + ",\n";
        out += "  \"bench\": \"" + bench_ + "\",\n";
        out += "  \"machine\": " + machine_.render(2) + ",\n";
        out += "  \"config\": " + config_.render(2) + ",\n";
        out += "  \"results\": [\n";
        for (size_t i = 0; i < results_.size(); ++i) {
            out += "    " + results_[i].render(4);
            out += i + 1 < results_.size() ? ",\n" : "\n";
        }
        out += "  ]\n}\n";
        return out;
    }

    /**
     * Write to @p path, or print to stdout when @p path is empty.
     * Returns false (after a stderr warning) when the file cannot be
     * opened.
     */
    bool writeOrPrint(const std::string &path) const
    {
        std::string json = str();
        if (path.empty()) {
            std::printf("\n%s", json.c_str());
            return true;
        }
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "error: cannot open %s\n",
                         path.c_str());
            return false;
        }
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("\n  wrote %s\n", path.c_str());
        return true;
    }

  private:
    std::string bench_;
    JsonObject machine_;
    JsonObject config_;
    std::vector<JsonObject> results_;
};

} // namespace bench
} // namespace recperf

#endif // RECPERF_BENCH_BENCH_COMMON_HH
