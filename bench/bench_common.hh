/**
 * @file
 * Shared helpers for the figure/table regeneration benchmarks.
 *
 * Every binary in bench/ regenerates one table or figure of the paper:
 * it runs the corresponding experiment on the simulated fleet and
 * prints the same rows/series the paper reports, so results can be
 * compared shape-for-shape against the original.
 */

#ifndef RECPERF_BENCH_BENCH_COMMON_HH
#define RECPERF_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>

namespace recperf {
namespace bench {

/** Print a centered banner naming the figure being regenerated. */
inline void
banner(const std::string &title)
{
    std::string rule(72, '=');
    std::printf("%s\n%s\n%s\n", rule.c_str(), title.c_str(), rule.c_str());
}

/** Print a section separator. */
inline void
section(const std::string &title)
{
    std::printf("\n-- %s --\n", title.c_str());
}

/** Render a fixed-width ASCII bar scaled to @p frac of @p width. */
inline std::string
bar(double frac, int width = 40)
{
    if (frac < 0.0)
        frac = 0.0;
    if (frac > 1.0)
        frac = 1.0;
    int n = static_cast<int>(frac * width + 0.5);
    return std::string(static_cast<size_t>(n), '#');
}

} // namespace bench
} // namespace recperf

#endif // RECPERF_BENCH_BENCH_COMMON_HH
