/**
 * @file
 * Regenerates Figure 12: production recommendation models vs.
 * MLPerf-NCF, normalized to NCF.
 *
 * Paper anchors: the RMCs have orders-of-magnitude longer latency,
 * larger embedding tables, and more FC parameters; FC is >90% of NCF's
 * runtime while SLS dominates RMC1 (batched) and RMC2.
 */

#include "bench/bench_common.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "timing/model_timer.hh"

using namespace recperf;

int
main()
{
    bench::banner("Figure 12: production models vs MLPerf-NCF "
                  "(normalized to NCF)");

    MachineSpec bdw = broadwell();
    ModelConfig ncf = ncfConfig();

    TimerOptions opts;
    opts.batch = 16;
    ModelTimer ncf_timer(bdw, ncf, opts);
    ModelTiming ncf_t = ncf_timer.steadyState(30, 30);
    double ncf_lat = ncf_t.totalSeconds();

    std::printf("  %-12s %10s %12s %12s %10s %8s\n", "model", "latency",
                "emb storage", "FC params", "lookups", "SLS time");
    std::printf("  %-12s %9.1fx %11.1fx %11.1fx %9.1fx %7.0f%%\n",
                "MLPerf-NCF", 1.0, 1.0, 1.0, 1.0,
                ncf_t.fractionByKind(OpKind::SLS) * 100);
    for (const ModelConfig &cfg : representativeModels()) {
        ModelTimer timer(bdw, cfg, opts);
        ModelTiming t = timer.steadyState(20, 20);
        std::printf("  %-12s %9.1fx %11.1fx %11.1fx %9.1fx %7.0f%%\n",
                    cfg.name.c_str(), t.totalSeconds() / ncf_lat,
                    static_cast<double>(cfg.embStorageBytes()) /
                        static_cast<double>(ncf.embStorageBytes()),
                    static_cast<double>(cfg.fcParamCount()) /
                        static_cast<double>(ncf.fcParamCount()),
                    static_cast<double>(cfg.lookupsPerSample()) /
                        static_cast<double>(ncf.lookupsPerSample()),
                    t.fractionByKind(OpKind::SLS) * 100);
    }

    bench::section("operator-mix contrast (Section VII)");
    std::printf("  NCF FC share:            %5.1f%%  (paper: > 90%%)\n",
                ncf_t.fractionByKind(OpKind::FC) * 100);
    TimerOptions b32 = opts;
    b32.batch = 32;
    ModelTimer rmc1_timer(bdw, rmc1Small(), b32);
    std::printf("  RMC1 (batched) SLS share: %4.1f%%  (paper: ~80%%)\n",
                rmc1_timer.steadyState(20, 20)
                    .fractionByKind(OpKind::SLS) * 100);
    return 0;
}
