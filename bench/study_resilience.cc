/**
 * @file
 * Study: serving resilience under injected faults.
 *
 * The paper's tail-latency section (§VI-A) shows that p99 behaviour —
 * not mean latency — decides how much of a cluster's throughput is
 * usable under an SLA, and that co-location noise and node misbehaviour
 * dominate that tail. This study quantifies the two mitigation layers
 * of the resilience subsystem:
 *
 *  1. Sharded inference: a (failure rate x hedging policy) grid. Each
 *     cell reports p99 latency, goodput, and availability; hedged
 *     requests should cut p99 at every failure rate, at a bounded
 *     duplicate-work cost.
 *  2. Single-node serving: arrival-rate sweep with the SLA-aware
 *     admission controller off/on. Shedding items whose queue wait
 *     already blew the budget keeps the SLA-met fraction of served
 *     items high through saturation.
 *
 * Everything is reproducible from the fixed seeds below.
 */

#include <cstdint>
#include <vector>

#include "bench/bench_common.hh"
#include "core/logging.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "resilience/fault_injector.hh"
#include "resilience/policies.hh"
#include "serving/distributed.hh"
#include "serving/server.hh"

using namespace recperf;

namespace {

constexpr uint32_t kNodes = 4;
constexpr int kWarmup = 20;
constexpr int kMeasure = 120;

FaultOptions
faultsAt(double mtbf_seconds)
{
    FaultOptions f;
    f.stragglerProb = 0.10;
    f.stragglerAlpha = 1.5;
    f.stragglerMin = 3.0;
    f.shardMtbfSeconds = mtbf_seconds;
    f.shardMttrSeconds = 0.005;
    f.seed = 2020;
    return f;
}

ResilientShardedResult
runCell(double mtbf_seconds, const HedgePolicy &hedge)
{
    TimerOptions opts;
    opts.batch = 16;
    ShardedInference sim(broadwell(), rmc2Small(), kNodes,
                         NetworkConfig{}, opts);
    RetryPolicy retry;
    retry.timeoutSeconds = 0.005;
    retry.maxRetries = 2;
    RunOptions options;
    options.warmupIters = kWarmup;
    options.measureIters = kMeasure;
    options.faults = faultsAt(mtbf_seconds);
    options.retry = retry;
    options.hedge = hedge;
    return sim.run(options);
}

void
shardedGrid()
{
    bench::section(strprintf("sharded RMC2 on %u x Broadwell: failure "
                             "rate x hedging -> p99 / goodput", kNodes));

    struct HedgeCol
    {
        const char *name;
        HedgePolicy policy;
    };
    std::vector<HedgeCol> cols = {
        {"no hedge", {}},
        {"hedge @p95", {true, 0.0}},
        {"hedge @0.2ms", {true, 0.2e-3}},
    };
    std::vector<std::pair<const char *, double>> rows = {
        {"no failures", 0.0},
        {"MTBF 100 ms", 0.100},
        {"MTBF  20 ms", 0.020},
    };

    std::printf("  %-12s", "failure rate");
    for (const HedgeCol &c : cols)
        std::printf(" | %-26s", c.name);
    std::printf("\n");

    double p99_nohedge = 0.0;
    double p99_hedge = 0.0;
    for (const auto &[row_name, mtbf] : rows) {
        std::printf("  %-12s", row_name);
        for (size_t c = 0; c < cols.size(); ++c) {
            ResilientShardedResult r = runCell(mtbf, cols[c].policy);
            std::string cell = strprintf(
                "p99 %6.3f ms %5.0f inf/s %s", r.latency.p(99) * 1e3,
                r.goodput(),
                r.availability() >= 1.0
                    ? "100%"
                    : strprintf("%3.0f%%", r.availability() * 100)
                          .c_str());
            std::printf(" | %-26s", cell.c_str());
            if (mtbf == 0.020 && c == 0)
                p99_nohedge = r.latency.p(99);
            if (mtbf == 0.020 && c == 1)
                p99_hedge = r.latency.p(99);
        }
        std::printf("\n");
    }

    RP_ASSERT(p99_hedge < p99_nohedge,
              "hedging must cut p99 under injected faults "
              "(%.3f >= %.3f ms)", p99_hedge * 1e3, p99_nohedge * 1e3);
    std::printf("\n  hedging cuts p99 by %.0f%% at the highest failure "
                "rate (%.3f -> %.3f ms)\n",
                (1.0 - p99_hedge / p99_nohedge) * 100,
                p99_nohedge * 1e3, p99_hedge * 1e3);
}

void
admissionSweep()
{
    bench::section("open-loop serving: admission control through "
                   "saturation (RMC2, 2 workers, SLA 10 ms)");

    std::printf("  %-14s | %-34s | %-34s\n", "offered", "admission off",
                "admission on (wait budget 50% SLA)");
    for (double rate : {5'000.0, 15'000.0, 40'000.0}) {
        std::printf("  %8.0f it/s", rate);
        double sla_frac_on = 0.0;
        for (bool admission : {false, true}) {
            ServerOptions o;
            o.numWorkers = 2;
            o.maxBatch = 8;
            o.slaSeconds = 0.010;
            o.admission.enabled = admission;
            o.admission.maxWaitFraction = 0.5;
            Server server(broadwell(), rmc2Small(), TimerOptions{}, o);
            ServingStats s = server.runOpenLoop(rate, 3'000);
            std::string cell = strprintf(
                "SLA %5.1f%%  good %5.0f it/s  shed %4llu",
                s.slaFraction() * 100, s.goodThroughput(),
                static_cast<unsigned long long>(s.shedItems));
            std::printf(" | %-34s", cell.c_str());
            if (admission)
                sla_frac_on = s.slaFraction();
        }
        std::printf("\n");
        RP_ASSERT(sla_frac_on > 0.8,
                  "admission control must keep served items under the "
                  "SLA (got %.1f%%)", sla_frac_on * 100);
    }
}

} // namespace

int
main()
{
    bench::banner("Study: resilient serving under injected faults "
                  "(stragglers, shard failures, overload)");

    shardedGrid();
    admissionSweep();

    bench::section("takeaways");
    std::printf("  - hedged requests trade bounded duplicate work for a "
                "large p99 cut, and\n    rescue requests to shards in "
                "their MTTR window (availability stays 100%%);\n");
    std::printf("  - without hedging, transient shard failures burn the "
                "retry budget and can\n    surface as failed "
                "inferences, not just latency;\n");
    std::printf("  - shedding items whose queue wait already exceeds "
                "the SLA budget keeps the\n    served fraction's SLA "
                "compliance high past saturation -- goodput degrades\n"
                "    gracefully instead of collapsing (\"latency-bounded "
                "throughput\", Section III).\n");
    return 0;
}
