/**
 * @file
 * Figure 11, reconstructed from the request log: where the latency
 * tail comes from.
 *
 * The paper's Fig 11 shows the latency distribution of a production
 * operator blowing up under co-location — the tail is not noise, it
 * has causes. This bench derives that decomposition from the
 * per-request causal records (obs/request_log.hh) alone: each scenario
 * runs a serving loop with the request logger enabled, then attributes
 * the p99-p50 gap to the mechanism that charged it (queue wait,
 * shard stragglers, hedges, retries, scrub tax, ...).
 *
 * Scenario grid:
 *  - serve_overload: open-loop serving at 1.4x saturation — the tail
 *    is queueing delay;
 *  - shard_clean: sharded fan-out with no fault injection — the tail
 *    is shard imbalance + aggregation;
 *  - shard_straggler: 30% straggling shards — the tail must be
 *    dominated by `shard_straggler` (asserted);
 *  - shard_hedged: the same stragglers with hedged requests — hedges
 *    buy back tail at a visible `hedge` blame share.
 *
 * Invariants asserted in every scenario (the CI observability leg
 * runs this binary):
 *  - blame fractions sum to 1 within 1e-6;
 *  - every record's phase durations tile its latency (rel 1e-6);
 *  - under injected stragglers, `shard_straggler` is the top cause.
 *
 * Emits JSON for scripts/run_bench.sh (BENCH_tail_attribution.json);
 * all measurements ride the deterministic virtual clocks, so a fresh
 * run reproduces the committed baseline exactly.
 *
 *   fig11_tail_latency [--quick] [--seed 3] [--out file.json]
 */

#include <cmath>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "core/args.hh"
#include "core/logging.hh"
#include "core/stats.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "obs/request_log.hh"
#include "resilience/fault_injector.hh"
#include "serving/distributed.hh"
#include "serving/server.hh"

using namespace recperf;

namespace {

constexpr double kBlameSumTol = 1e-6;

struct Scenario
{
    std::string name;
    uint64_t offered = 0;
    std::vector<obs::RequestRecord> records;
    obs::TailAttribution tail;
};

/** Pull the log + attribution accumulated by the run just finished. */
Scenario
capture(const std::string &name, uint64_t offered)
{
    obs::RequestLogger &rlog = obs::RequestLogger::global();
    Scenario s;
    s.name = name;
    s.offered = offered;
    s.records = rlog.records();
    s.tail = rlog.attribution();
    return s;
}

Scenario
runServeOverload(uint64_t seed, uint64_t items)
{
    ServerOptions sopts;
    sopts.numWorkers = 2;
    sopts.maxBatch = 16;
    sopts.slaSeconds = 1.5e-3;
    sopts.seed = seed;
    TimerOptions topts;
    topts.batch = sopts.maxBatch;
    Server probe(broadwell(), rmc1Small(), topts, sopts);
    double saturation =
        probe.runClosedLoop(40).totalThroughput();
    Server server(broadwell(), rmc1Small(), topts, sopts);
    server.runOpenLoop(1.4 * saturation, items);
    return capture("serve_overload", items);
}

Scenario
runShard(const std::string &name, uint64_t seed, int iters,
         double straggler_prob, bool hedge)
{
    TimerOptions topts;
    topts.batch = 16;
    ShardedInference sim(broadwell(), rmc1Small(), 4, NetworkConfig{},
                         topts);
    RunOptions ropts;
    ropts.warmupIters = 10;
    ropts.measureIters = iters;
    ropts.faults.stragglerProb = straggler_prob;
    ropts.faults.seed = seed;
    ropts.hedge.enabled = hedge;
    sim.run(ropts);
    return capture(name, static_cast<uint64_t>(iters));
}

/** Largest-blame cause index of a scenario. */
size_t
topCause(const obs::TailAttribution &tail)
{
    size_t top = 0;
    for (size_t c = 1; c < obs::kNumRequestPhases; ++c) {
        if (tail.blame[c] > tail.blame[top])
            top = c;
    }
    return top;
}

void
checkInvariants(const Scenario &s)
{
    double sum = 0.0;
    for (double b : s.tail.blame)
        sum += b;
    RP_ASSERT(std::fabs(sum - 1.0) <= kBlameSumTol,
              "'%s': blame fractions sum to %.9f, not 1 +/- %g",
              s.name.c_str(), sum, kBlameSumTol);
    for (const obs::RequestRecord &rec : s.records) {
        double err = std::fabs(rec.phaseSum() - rec.latency);
        RP_ASSERT(err <= 1e-9 + 1e-6 * rec.latency,
                  "'%s' record %llu: phases sum to %.12g but latency "
                  "is %.12g", s.name.c_str(),
                  static_cast<unsigned long long>(rec.id),
                  rec.phaseSum(), rec.latency);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("fig11_tail_latency",
                   "tail-latency attribution from per-request records");
    args.addFlag("quick", "CI-sized run (2000 items / 300 iters)");
    args.addOption("seed", "3", "arrival/jitter/fault seed");
    args.addOption("out", "", "write JSON here (default: stdout)");
    std::string error;
    if (!args.parse({argv + 1, argv + argc}, &error)) {
        std::fprintf(stderr, "error: %s\n%s", error.c_str(),
                     args.helpText().c_str());
        return 2;
    }
    bool quick = args.flag("quick");
    auto seed = static_cast<uint64_t>(args.optionInt("seed"));
    uint64_t items = quick ? 2000 : 6000;
    int iters = quick ? 300 : 1000;

    bench::banner(strprintf(
        "Figure 11 (reconstructed): tail-latency attribution from the "
        "request log\n(RMC1 on Broadwell, seed %llu)",
        static_cast<unsigned long long>(seed)));

    obs::RequestLogger &rlog = obs::RequestLogger::global();
    rlog.configure(obs::RequestLogOptions{});
    rlog.setEnabled(true);

    std::vector<Scenario> grid;
    grid.push_back(runServeOverload(seed, items));
    grid.push_back(runShard("shard_clean", seed, iters, 0.0, false));
    grid.push_back(runShard("shard_straggler", seed, iters, 0.3, false));
    grid.push_back(runShard("shard_hedged", seed, iters, 0.3, true));
    rlog.setEnabled(false);

    bench::section("p99 - p50 blame decomposition");
    std::printf("  %-16s %6s %9s %9s %9s  %s\n", "scenario", "served",
                "p50(ms)", "p99(ms)", "gap(ms)", "top cause");
    for (const Scenario &s : grid) {
        size_t top = topCause(s.tail);
        std::printf("  %-16s %6llu %9.3f %9.3f %9.3f  %s %.0f%%\n",
                    s.name.c_str(),
                    static_cast<unsigned long long>(s.tail.served),
                    s.tail.p50 * 1e3, s.tail.p99 * 1e3,
                    s.tail.gap * 1e3,
                    obs::requestPhaseName(
                        static_cast<obs::RequestPhase>(top)),
                    s.tail.blame[top] * 100.0);
    }

    bench::section("invariants");
    for (const Scenario &s : grid)
        checkInvariants(s);
    std::printf("  [ok] blame fractions sum to 1 +/- %g in every "
                "scenario\n", kBlameSumTol);
    std::printf("  [ok] every record's phases tile its latency\n");

    const Scenario &overload = grid[0];
    RP_ASSERT(topCause(overload.tail) ==
                  static_cast<size_t>(obs::RequestPhase::Queue),
              "serve_overload: expected queueing to dominate the tail, "
              "got '%s'",
              obs::requestPhaseName(static_cast<obs::RequestPhase>(
                  topCause(overload.tail))));
    const Scenario &straggler = grid[2];
    size_t straggler_top = topCause(straggler.tail);
    RP_ASSERT(straggler_top ==
                  static_cast<size_t>(obs::RequestPhase::ShardStraggler),
              "shard_straggler: expected shard stragglers to dominate "
              "the tail, got '%s'",
              obs::requestPhaseName(
                  static_cast<obs::RequestPhase>(straggler_top)));
    std::printf("  [ok] queue dominates under overload; "
                "shard_straggler dominates under stragglers "
                "(%.0f%% of the gap)\n",
                straggler.tail.blame[straggler_top] * 100.0);

    bench::JsonWriter json("fig11_tail_latency");
    json.machine().add("machine", "broadwell");
    json.config()
        .add("model", "rmc1")
        .add("seed", seed)
        .add("quick", quick)
        .add("serve_items", items)
        .add("shard_iters", static_cast<int64_t>(iters));
    for (const Scenario &s : grid) {
        bench::JsonObject &row = json.newResult();
        row.add("scenario", s.name)
            .add("offered", s.offered)
            .add("served", s.tail.served)
            .add("p50_ms", s.tail.p50 * 1e3)
            .add("p99_ms", s.tail.p99 * 1e3)
            .add("gap_ms", s.tail.gap * 1e3);
        for (size_t c = 0; c < obs::kNumRequestPhases; ++c) {
            row.add(std::string("blame_") +
                        obs::requestPhaseName(
                            static_cast<obs::RequestPhase>(c)),
                    s.tail.blame[c]);
        }
    }
    return json.writeOrPrint(args.option("out")) ? 0 : 1;
}
