/**
 * @file
 * Regenerates Figure 11: the latency distribution of a standalone FC
 * operator co-located with RMC1 inferences in a production-like
 * environment.
 *
 * Shapes to reproduce:
 *  (a) on Broadwell the FC latency distribution is multimodal — one
 *      mode per co-location regime — while Skylake shows a single mode;
 *  (b) mean latency rises with co-location and the p5..p99 band blows
 *      up on Broadwell at high co-location, but grows gradually on
 *      Skylake (exclusive LLC; larger L2 holds the FC's weights);
 *  (c) the same holds for a larger FC that no longer fits Skylake's L2.
 */

#include <cmath>
#include <vector>

#include "bench/bench_common.hh"
#include "core/logging.hh"
#include "core/rng.hh"
#include "core/stats.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "timing/colocation.hh"

using namespace recperf;

namespace {

/** FC-probe model: one FC layer of the given width, no embeddings. */
ModelConfig
fcProbe(int64_t width)
{
    ModelConfig m;
    m.name = strprintf("fc-%lldx%lld", static_cast<long long>(width),
                       static_cast<long long>(width));
    m.modelClass = ModelClass::Other;
    m.denseFeatures = width;
    m.bottomMlp = {width};
    m.topMlp = {64, 1};
    m.validate();
    return m;
}

/** FC time samples of the probe under N co-located RMC1 instances. */
std::vector<double>
probeSamples(const MachineSpec &machine, int64_t width, uint32_t colocated,
             int iters)
{
    std::vector<TenantSpec> tenants;
    TimerOptions probe_opts;
    probe_opts.batch = 1;
    tenants.push_back({fcProbe(width), probe_opts});
    for (uint32_t i = 0; i < colocated; ++i) {
        TimerOptions opts;
        opts.batch = 32;
        opts.seed = 1000 + i;
        tenants.push_back({rmc1Large(), opts});
    }
    ColocationSim sim(machine, tenants);
    ColocationResult r = sim.run(8, iters);

    // Apply production-environment jitter (scheduler noise) and keep
    // only the probe tenant's samples (tenant 0, stride = #tenants).
    Rng jitter(42 + colocated);
    std::vector<double> samples;
    for (size_t i = 0; i < r.fcSamples.size(); i += tenants.size()) {
        double noise = std::exp(jitter.nextGaussian() * 0.03);
        samples.push_back(r.fcSamples[i] * noise * 1e6);
    }
    return samples;
}

void
distributionPanel(int64_t width)
{
    for (const MachineSpec &machine : {broadwell(), skylake()}) {
        std::printf("  %s, FC %lldx%lld (weights %.0f KB)\n",
                    machine.name.c_str(), static_cast<long long>(width),
                    static_cast<long long>(width),
                    static_cast<double>(width * width) * 4.0 / 1024.0);
        std::printf("  %4s %10s %10s %10s %10s\n", "N", "p5(us)",
                    "mean(us)", "p99(us)", "p99/p5");
        for (uint32_t n : {0u, 6u, 12u, 18u}) {
            std::vector<double> s = probeSamples(machine, width, n, 24);
            double p5 = percentile(s, 5);
            double mean = 0;
            for (double x : s)
                mean += x;
            mean /= static_cast<double>(s.size());
            double p99 = percentile(s, 99);
            std::printf("  %4u %10.2f %10.2f %10.2f %9.2fx\n", n, p5,
                        mean, p99, p99 / p5);
        }
    }
}

} // namespace

int
main()
{
    bench::banner("Figure 11: FC operator tail latency under "
                  "co-location");

    // (a) Latency histogram on Broadwell: mixture over co-location
    // regimes (low / medium / high), as in the production environment.
    bench::section("(a) Broadwell FC latency distribution across "
                   "co-location regimes");
    {
        std::vector<double> all;
        for (uint32_t n : {0u, 10u, 18u}) {
            auto s = probeSamples(broadwell(), 448, n, 24);
            all.insert(all.end(), s.begin(), s.end());
        }
        double lo = percentile(all, 0.5) * 0.9;
        double hi = percentile(all, 99.5) * 1.1;
        Histogram hist(lo, hi, 24);
        for (double x : all)
            hist.add(x);
        std::printf("%s", hist.render(46).c_str());

        std::vector<double> skl_all;
        for (uint32_t n : {0u, 10u, 18u}) {
            auto s = probeSamples(skylake(), 448, n, 24);
            skl_all.insert(skl_all.end(), s.begin(), s.end());
        }
        std::printf("\n  Skylake same mixture (single mode expected):\n");
        Histogram skl_hist(percentile(skl_all, 0.5) * 0.9,
                           percentile(skl_all, 99.5) * 1.1, 24);
        for (double x : skl_all)
            skl_hist.add(x);
        std::printf("%s", skl_hist.render(46).c_str());
    }

    // (b) FC that fits SKL L2 (and only BDW LLC): 448x448 = 800 KB.
    bench::section("(b) FC fits Skylake L2 / Broadwell LLC");
    distributionPanel(448);

    // (c) Larger FC that fits neither L2: 1024x1024 = 4 MB (LLC on
    // both machines).
    bench::section("(c) larger FC (fits only the LLCs)");
    distributionPanel(1024);

    return 0;
}
