/**
 * @file
 * Google-benchmark microbenchmarks for the cache simulator — the inner
 * loop of every timing experiment, so its host-side throughput bounds
 * how large a sweep the harness can run.
 */

#include <benchmark/benchmark.h>

#include "core/rng.hh"
#include "machine/machine_spec.hh"
#include "simcache/hierarchy.hh"
#include "trace/id_generator.hh"

using namespace recperf;

namespace {

void
BM_CacheAccessHit(benchmark::State &state)
{
    Cache cache("bench", 1024 * 1024, 16);
    for (uint64_t line = 0; line < 1024; ++line)
        cache.fill(line * 64);
    uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access((i++ % 1024) * 64));
    }
    state.counters["access/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CacheAccessHit);

void
BM_CacheAccessMissFill(benchmark::State &state)
{
    Cache cache("bench", 256 * 1024, 8);
    Rng rng(1);
    for (auto _ : state) {
        uint64_t addr = rng.nextBelow(1 << 22) * 64;
        if (!cache.access(addr))
            cache.fill(addr);
    }
    state.counters["access/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CacheAccessMissFill);

void
BM_HierarchyRandomAccess(benchmark::State &state)
{
    auto tenants = static_cast<uint32_t>(state.range(0));
    auto hier = broadwell().makeHierarchy(tenants);
    Rng rng(2);
    for (auto _ : state) {
        uint32_t core = static_cast<uint32_t>(rng.nextBelow(tenants));
        uint64_t addr = rng.nextBelow(1 << 24) * 64;
        benchmark::DoNotOptimize(hier->access(core, addr));
    }
    state.counters["access/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HierarchyRandomAccess)->Arg(1)->Arg(8);

void
BM_HierarchyZipfAccess(benchmark::State &state)
{
    auto hier = skylake().makeHierarchy(1);
    ZipfGen gen(2'000'000, 1.05, Rng(3));
    for (auto _ : state) {
        uint64_t addr = static_cast<uint64_t>(gen.next()) * 128;
        benchmark::DoNotOptimize(hier->access(0, addr));
    }
    state.counters["access/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HierarchyZipfAccess);

} // namespace

BENCHMARK_MAIN();
