/**
 * @file
 * Kernel-engine benchmark: tuned/memoized microkernels vs the generic
 * baseline, ISA-tier crossover, and end-to-end eval speedup.
 *
 * Four suites, one BENCH_kernel_tuning.json:
 *  - gemm: Table 1 FC shapes, scalar-generic vs auto-tuned GFLOP/s
 *    (plus each pinned vector tier for the variant trajectory);
 *  - sls: Table 1 embedding shapes, float and int8, scalar-generic vs
 *    auto-tuned Mlookups/s;
 *  - crossover: batch sweep at fixed (n, k) with avx2 vs avx512
 *    pinned, the measured counterpart of SimdModel's predicted
 *    crossover (EXPERIMENTS.md cross-references Figures 8/10);
 *  - eval: RMC3 forward throughput, scalar-generic vs auto-tuned,
 *    cold (first call pays the tuning sweeps) vs warm (dispatch is
 *    one atomic load).
 *
 * Asserts the engine's two contracts on the way out: warm >= cold,
 * and auto-tuned >= 1.2x scalar-generic eval throughput whenever a
 * vector tier is available.
 *
 *   micro_kernel_tuning [--quick] [--min-time 0.2] [--rows-cap 65536]
 *                       [--out file.json]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "core/args.hh"
#include "core/logging.hh"
#include "core/rng.hh"
#include "core/thread_pool.hh"
#include "machine/simd.hh"
#include "model/rec_model.hh"
#include "model/zoo.hh"
#include "ops/fully_connected.hh"
#include "ops/kernel_cache.hh"
#include "ops/microkernels.hh"
#include "ops/quantized_embedding.hh"
#include "ops/sparse_lengths_sum.hh"
#include "tensor/tensor.hh"

using namespace recperf;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Repeats fn, doubling the iteration count until min_time elapses. */
template <typename Fn>
double
secondsPerIter(Fn fn, double min_time)
{
    fn(); // warm-up (and first-touch tuning, outside the timed region)
    int64_t iters = 1;
    for (;;) {
        double start = now();
        for (int64_t i = 0; i < iters; ++i)
            fn();
        double elapsed = now() - start;
        if (elapsed >= min_time)
            return elapsed / static_cast<double>(iters);
        iters *= 2;
    }
}

/** Engine configurations the suites compare. */
struct EngineMode
{
    const char *name;
    IsaPolicy policy;
    bool tuned;
};

/** scalar-generic baseline + auto-tuned + each usable pinned tier. */
std::vector<EngineMode>
engineModes()
{
    std::vector<EngineMode> modes;
    modes.push_back({"scalar-generic",
                     IsaPolicy{false, KernelIsa::Scalar}, false});
    modes.push_back({"auto-tuned", IsaPolicy{}, true});
    for (int t = 0; t <= static_cast<int>(detectIsa()); ++t) {
        KernelIsa isa = static_cast<KernelIsa>(t);
        if (!microkernels::kernelsFor(isa).available)
            continue;
        static const char *kTunedName[] = {"scalar-tuned", "avx2-tuned",
                                           "avx512-tuned"};
        modes.push_back({kTunedName[t], IsaPolicy{false, isa}, true});
    }
    return modes;
}

void
applyMode(const EngineMode &mode)
{
    // Each setter clears the cache, so every mode starts cold and the
    // warm-up iteration inside secondsPerIter absorbs the re-tune.
    KernelCache::global().setPolicy(mode.policy);
    KernelCache::global().setTuningEnabled(mode.tuned);
}

struct GemmCase
{
    const char *name;
    int64_t m, n, k;
};

const GemmCase kGemmCases[] = {
    {"rmc1-bottom0-b256", 256, 128, 128},
    {"rmc1-top0-b256", 256, 128, 160},
    {"rmc3-bottom0-b64", 64, 2560, 2048},
    {"rmc3-bottom1-b64", 64, 256, 2560},
    {"rmc3-top0-b64", 64, 512, 256},
};

struct SlsCase
{
    const char *name;
    int64_t rows, dim, lookups, batch;
};

const SlsCase kSlsCases[] = {
    {"rmc1-table", 200'000, 32, 80, 64},
    {"rmc2-table", 2'000'000, 32, 80, 16},
    {"rmc3-table", 2'000'000, 32, 20, 64},
};

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("micro_kernel_tuning",
                   "tuned kernel engine vs generic baseline");
    args.addOption("min-time", "0.2", "seconds per measurement");
    args.addOption("rows-cap", "65536",
                   "max embedding rows per table to allocate");
    args.addOption("out", "", "write JSON here (default: stdout)");
    args.addFlag("quick", "reduced sweep for CI smoke runs");
    args.addFlag("help", "show this help");

    std::vector<std::string> raw(argv + 1, argv + argc);
    std::string error;
    if (!args.parse(raw, &error)) {
        std::fprintf(stderr, "error: %s\n%s", error.c_str(),
                     args.helpText().c_str());
        return 2;
    }
    if (args.flag("help")) {
        std::printf("%s", args.helpText().c_str());
        return 0;
    }

    const bool quick = args.flag("quick");
    double min_time = args.optionDouble("min-time");
    if (quick)
        min_time = std::min(min_time, 0.05);
    int64_t rows_cap = args.optionInt("rows-cap");
    Rng rng(7);

    bench::banner("micro_kernel_tuning — shape-specialized kernel engine");
    std::printf("detected ISA: %s\n", kernelIsaName(detectIsa()));

    bench::JsonWriter json("micro_kernel_tuning");
    json.machine().add("isa_detected", kernelIsaName(detectIsa()));
    json.config()
        .add("min_time_s", min_time)
        .add("rows_cap", static_cast<int64_t>(rows_cap))
        .add("quick", quick);

    const std::vector<EngineMode> modes = engineModes();

    // ------------------------------------------------------- GEMM suite
    bench::section("GEMM (C[m,n] = A[m,k] * B[n,k]^T)");
    for (const GemmCase &gc : kGemmCases) {
        if (quick && gc.k > 1024)
            continue; // the wide RMC3 shapes dominate quick runtime
        Tensor a({gc.m, gc.k}), b({gc.n, gc.k}), c({gc.m, gc.n});
        a.fillUniform(rng, -1.0f, 1.0f);
        b.fillUniform(rng, -1.0f, 1.0f);
        double flops = 2.0 * static_cast<double>(gc.m) *
            static_cast<double>(gc.n) * static_cast<double>(gc.k);
        std::printf("%-20s m=%-4lld n=%-4lld k=%-4lld\n", gc.name,
                    static_cast<long long>(gc.m),
                    static_cast<long long>(gc.n),
                    static_cast<long long>(gc.k));
        double baseline = 0.0;
        for (const EngineMode &mode : modes) {
            applyMode(mode);
            double s = secondsPerIter(
                [&] {
                    gemmBt(a.data(), b.data(), c.data(), gc.m, gc.n,
                           gc.k, /*accumulate=*/false);
                },
                min_time);
            if (baseline == 0.0)
                baseline = s;
            std::printf("  %-15s %8.2f GFLOP/s  %5.2fx\n", mode.name,
                        flops / s / 1e9, baseline / s);
            json.newResult()
                .add("suite", "gemm")
                .add("name", gc.name)
                .add("mode", mode.name)
                .add("m", gc.m)
                .add("n", gc.n)
                .add("k", gc.k)
                .add("seconds_per_iter", s)
                .add("gflops", flops / s / 1e9)
                .add("speedup_vs_generic", baseline / s);
        }
    }

    // -------------------------------------------------------- SLS suite
    bench::section("SparseLengthsSum (float + int8)");
    for (const SlsCase &sc : kSlsCases) {
        int64_t rows = std::min(sc.rows, rows_cap);
        EmbeddingTable table(rows, sc.dim, rng);
        QuantizedEmbeddingTable qtable(table);
        std::vector<int64_t> ids;
        std::vector<int64_t> lengths(static_cast<size_t>(sc.batch),
                                     sc.lookups);
        for (int64_t i = 0; i < sc.batch * sc.lookups; ++i)
            ids.push_back(static_cast<int64_t>(
                rng.nextBelow(static_cast<uint64_t>(rows))));
        double lookups_per_iter =
            static_cast<double>(sc.batch * sc.lookups);
        std::printf("%-20s %lld rows, dim %lld, %lld lookups x batch "
                    "%lld\n", sc.name, static_cast<long long>(rows),
                    static_cast<long long>(sc.dim),
                    static_cast<long long>(sc.lookups),
                    static_cast<long long>(sc.batch));
        for (bool quantized : {false, true}) {
            for (const EngineMode &mode : modes) {
                applyMode(mode);
                double s = secondsPerIter(
                    [&] {
                        if (quantized)
                            (void)qtable.forward(ids, lengths,
                                                 SlsReduction::Sum);
                        else
                            (void)table.forward(ids, lengths,
                                                SlsReduction::Sum);
                    },
                    min_time);
                std::printf("  %-5s %-15s %8.2f Mlookups/s\n",
                            quantized ? "int8" : "fp32", mode.name,
                            lookups_per_iter / s / 1e6);
                json.newResult()
                    .add("suite", "sls")
                    .add("name", sc.name)
                    .add("mode", mode.name)
                    .add("quantized", quantized)
                    .add("rows", rows)
                    .add("dim", sc.dim)
                    .add("lookups", sc.lookups)
                    .add("batch", sc.batch)
                    .add("seconds_per_iter", s)
                    .add("mlookups_per_s", lookups_per_iter / s / 1e6);
            }
        }
    }

    // -------------------------------------------------- crossover suite
    // Fixed FC layer (n, k) = (256, 256), batch swept: where does
    // avx512 overtake avx2? SimdModel predicts the frequency-license
    // crossover; this measures it on the host (EXPERIMENTS.md).
    bench::section("ISA crossover (n=256, k=256, batch sweep)");
    {
        const int64_t kN = 256, kK = 256;
        std::vector<int64_t> batches =
            quick ? std::vector<int64_t>{1, 16, 256}
                  : std::vector<int64_t>{1, 2, 4, 8, 16, 32, 64, 128,
                                         256};
        std::vector<KernelIsa> tiers;
        for (int t = 0; t <= static_cast<int>(detectIsa()); ++t)
            if (microkernels::kernelsFor(static_cast<KernelIsa>(t))
                    .available)
                tiers.push_back(static_cast<KernelIsa>(t));
        Tensor b({kN, kK});
        b.fillUniform(rng, -1.0f, 1.0f);
        for (int64_t m : batches) {
            Tensor a({m, kK}), c({m, kN});
            a.fillUniform(rng, -1.0f, 1.0f);
            double flops = 2.0 * static_cast<double>(m * kN * kK);
            std::printf("  batch %-4lld:", static_cast<long long>(m));
            for (KernelIsa isa : tiers) {
                applyMode({"pinned", IsaPolicy{false, isa}, true});
                double s = secondsPerIter(
                    [&] {
                        gemmBt(a.data(), b.data(), c.data(), m, kN, kK,
                               false);
                    },
                    min_time);
                std::printf("  %s %7.2f GF/s", kernelIsaName(isa),
                            flops / s / 1e9);
                json.newResult()
                    .add("suite", "crossover")
                    .add("isa", kernelIsaName(isa))
                    .add("m", m)
                    .add("n", kN)
                    .add("k", kK)
                    .add("seconds_per_iter", s)
                    .add("gflops", flops / s / 1e9);
            }
            std::printf("\n");
        }
    }

    // ------------------------------------------------------- eval suite
    // End-to-end RMC3 forward: the acceptance anchor. Cold pays every
    // first-touch tuning sweep inside one forward; warm is pure
    // dispatch.
    bench::section("RMC3 eval (end-to-end forward)");
    double scalar_generic_qps = 0.0, tuned_qps = 0.0;
    double cold_s = 0.0, warm_s = 0.0;
    {
        ModelConfig cfg = rmc3Small().functionalScale(rows_cap);
        Rng model_rng(11);
        RecModel model(cfg, model_rng);
        const int64_t batch = quick ? 16 : 64;
        ModelInput input = model.randomInput(batch, model_rng);

        for (const EngineMode &mode :
             {EngineMode{"scalar-generic",
                         IsaPolicy{false, KernelIsa::Scalar}, false},
              EngineMode{"auto-tuned", IsaPolicy{}, true}}) {
            applyMode(mode);
            double cold = now();
            (void)model.forward(input);
            cold = now() - cold;
            double warm = secondsPerIter(
                [&] { (void)model.forward(input); }, min_time);
            double qps = static_cast<double>(batch) / warm;
            std::printf("  %-15s cold %8.3f ms  warm %8.3f ms  %8.1f "
                        "samples/s\n", mode.name, cold * 1e3,
                        warm * 1e3, qps);
            json.newResult()
                .add("suite", "eval")
                .add("name", "rmc3-small")
                .add("mode", mode.name)
                .add("batch", batch)
                .add("cold_seconds", cold)
                .add("warm_seconds_per_iter", warm)
                .add("samples_per_s", qps);
            if (mode.tuned) {
                tuned_qps = qps;
                cold_s = cold;
                warm_s = warm;
            } else {
                scalar_generic_qps = qps;
            }
        }
        std::printf("  tuned vs scalar-generic: %.2fx\n",
                    tuned_qps / scalar_generic_qps);
        json.newResult()
            .add("suite", "eval")
            .add("name", "rmc3-small")
            .add("mode", "summary")
            .add("tuned_speedup_vs_generic",
                 tuned_qps / scalar_generic_qps)
            .add("warm_over_cold", cold_s / warm_s);
    }

    // Contracts: warm dispatch must beat the cold tuning run, and on a
    // vector-capable host the tuned engine must clear the 1.2x bar.
    RP_ASSERT(warm_s <= cold_s,
              "warm eval (%.3f ms) slower than cold (%.3f ms)",
              warm_s * 1e3, cold_s * 1e3);
    if (microkernels::kernelsFor(KernelIsa::Avx2).available &&
        detectIsa() >= KernelIsa::Avx2) {
        RP_ASSERT(tuned_qps >= 1.2 * scalar_generic_qps,
                  "tuned eval %.1f samples/s < 1.2x scalar-generic "
                  "%.1f samples/s", tuned_qps, scalar_generic_qps);
    }

    // Leave the global cache in the default state for good hygiene.
    KernelCache::global().setPolicy(IsaPolicy{});
    KernelCache::global().setTuningEnabled(true);

    RP_ASSERT(json.writeOrPrint(args.option("out")), "JSON write failed");
    return 0;
}
