/**
 * @file
 * Thread-scaling microbenchmark for the parallel execution engine.
 *
 * Sweeps thread counts over (a) the GEMM shapes of the Table 1 model
 * classes' FC stacks and (b) multi-table SparseLengthsSum
 * configurations shaped like RMC1/RMC2/RMC3's embedding fan-out, and
 * emits JSON with per-point throughput, speedup vs. 1 thread, and
 * parallel efficiency. `scripts/run_bench.sh` writes the result to
 * BENCH_parallel_ops.json so the repo carries a perf trajectory
 * across PRs.
 *
 *   micro_parallel_ops [--threads 1,2,4,8] [--min-time 0.25]
 *                      [--rows-cap 131072] [--out file.json]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hh"
#include "core/args.hh"
#include "core/logging.hh"
#include "core/rng.hh"
#include "core/thread_pool.hh"
#include "machine/simd.hh"
#include "ops/fully_connected.hh"
#include "ops/sparse_lengths_sum.hh"
#include "tensor/tensor.hh"

using namespace recperf;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Repeats fn, doubling the iteration count until min_time elapses. */
template <typename Fn>
double
secondsPerIter(Fn fn, double min_time)
{
    fn(); // warm-up
    int64_t iters = 1;
    for (;;) {
        double start = now();
        for (int64_t i = 0; i < iters; ++i)
            fn();
        double elapsed = now() - start;
        if (elapsed >= min_time)
            return elapsed / static_cast<double>(iters);
        iters *= 2;
    }
}

std::vector<int>
parseThreadList(const std::string &spec)
{
    std::vector<int> threads;
    std::string token;
    for (char c : spec) {
        if (c == ',') {
            if (!token.empty())
                threads.push_back(std::stoi(token));
            token.clear();
        } else {
            token += c;
        }
    }
    if (!token.empty())
        threads.push_back(std::stoi(token));
    RP_ASSERT(!threads.empty() && threads.front() == 1,
              "--threads list must start with 1 (the speedup baseline)");
    return threads;
}

// ------------------------------------------------------------- GEMM sweep

struct GemmCase
{
    const char *name; // which Table 1 FC stack the shape comes from
    int64_t m, n, k;  // C[m,n] = A[m,k] * B[n,k]^T
};

// Bottom/Top-FC layer shapes of the zoo models at serving batch sizes
// (m = batch). RMC3's first bottom layer is the paper's
// compute-intensity extreme; RMC1's stack is the light filtering case.
const GemmCase kGemmCases[] = {
    {"rmc1-bottom0-b256", 256, 128, 128},
    {"rmc1-top0-b256", 256, 128, 160},
    {"rmc3-bottom0-b64", 64, 2560, 2048},
    {"rmc3-bottom1-b64", 64, 256, 2560},
    {"rmc3-top0-b64", 64, 512, 256},
};

struct SweepPoint
{
    int threads = 1;
    double seconds = 0.0;
    double speedup = 1.0;
    double efficiency = 1.0;
};

std::vector<SweepPoint>
sweepGemm(const GemmCase &gc, const std::vector<int> &thread_list,
          double min_time, Rng &rng)
{
    Tensor a({gc.m, gc.k}), b({gc.n, gc.k}), c({gc.m, gc.n});
    a.fillUniform(rng, -1.0f, 1.0f);
    b.fillUniform(rng, -1.0f, 1.0f);

    std::vector<SweepPoint> points;
    for (int threads : thread_list) {
        setGlobalThreadCount(threads);
        SweepPoint p;
        p.threads = threads;
        p.seconds = secondsPerIter(
            [&] {
                gemmBt(a.data(), b.data(), c.data(), gc.m, gc.n, gc.k,
                       /*accumulate=*/false);
            },
            min_time);
        p.speedup = points.empty() ? 1.0
                                   : points.front().seconds / p.seconds;
        p.efficiency = p.speedup / threads;
        points.push_back(p);
    }
    return points;
}

// -------------------------------------------------------------- SLS sweep

struct SlsCase
{
    const char *name;
    int64_t tables;  // fan-out width (inter-op dimension)
    int64_t rows;    // rows per table (capped for allocatability)
    int64_t dim;     // embedding dimension
    int64_t lookups; // pooled IDs per output slot
    int64_t batch;   // output slots per table
};

// Embedding blocks of Table 1's model classes; rows are capped by
// --rows-cap (production tables don't fit a benchmark heap) which
// preserves the gather/reduce work per iteration exactly.
const SlsCase kSlsCases[] = {
    {"rmc1-4tables", 4, 200'000, 32, 80, 64},
    {"rmc2-32tables", 32, 2'000'000, 32, 80, 16},
    {"rmc3-4tables", 4, 2'000'000, 32, 20, 64},
};

std::vector<SweepPoint>
sweepSls(const SlsCase &sc, int64_t rows_cap,
         const std::vector<int> &thread_list, double min_time, Rng &rng)
{
    int64_t rows = std::min(sc.rows, rows_cap);
    std::vector<EmbeddingTable> tables;
    tables.reserve(static_cast<size_t>(sc.tables));
    for (int64_t t = 0; t < sc.tables; ++t)
        tables.emplace_back(rows, sc.dim, rng);

    // One sparse input per table, Zipf-free uniform draws (locality
    // effects are the cache simulator's domain; this benchmark
    // measures the execution engine).
    std::vector<std::vector<int64_t>> ids(
        static_cast<size_t>(sc.tables));
    std::vector<int64_t> lengths(static_cast<size_t>(sc.batch),
                                 sc.lookups);
    for (auto &table_ids : ids) {
        for (int64_t i = 0; i < sc.batch * sc.lookups; ++i) {
            table_ids.push_back(static_cast<int64_t>(
                rng.nextBelow(static_cast<uint64_t>(rows))));
        }
    }

    // Same fan-out policy as RecModel::forward: inter-op across tables
    // when they outnumber threads, intra-op within each lookup
    // otherwise.
    std::vector<Tensor> pooled(static_cast<size_t>(sc.tables));
    auto run = [&] {
        if (sc.tables >= globalThreadCount()) {
            parallelFor(0, sc.tables, 1, [&](int64_t lo, int64_t hi) {
                for (int64_t t = lo; t < hi; ++t) {
                    pooled[static_cast<size_t>(t)] =
                        tables[static_cast<size_t>(t)].forward(
                            ids[static_cast<size_t>(t)], lengths);
                }
            });
        } else {
            for (int64_t t = 0; t < sc.tables; ++t) {
                pooled[static_cast<size_t>(t)] =
                    tables[static_cast<size_t>(t)].forward(
                        ids[static_cast<size_t>(t)], lengths);
            }
        }
    };

    std::vector<SweepPoint> points;
    for (int threads : thread_list) {
        setGlobalThreadCount(threads);
        SweepPoint p;
        p.threads = threads;
        p.seconds = secondsPerIter(run, min_time);
        p.speedup = points.empty() ? 1.0
                                   : points.front().seconds / p.seconds;
        p.efficiency = p.speedup / threads;
        points.push_back(p);
    }
    return points;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("micro_parallel_ops",
                   "thread-scaling sweep over GEMM and SLS hot paths");
    args.addOption("threads", "1,2,4,8",
                   "comma-separated thread counts (must start with 1)");
    args.addOption("min-time", "0.25", "seconds per measurement");
    args.addOption("rows-cap", "131072",
                   "max embedding rows per table to allocate");
    args.addOption("out", "", "write JSON here (default: stdout)");
    args.addFlag("help", "show this help");

    std::vector<std::string> raw(argv + 1, argv + argc);
    std::string error;
    if (!args.parse(raw, &error)) {
        std::fprintf(stderr, "error: %s\n%s", error.c_str(),
                     args.helpText().c_str());
        return 2;
    }
    if (args.flag("help")) {
        std::printf("%s", args.helpText().c_str());
        return 0;
    }

    std::vector<int> thread_list = parseThreadList(args.option("threads"));
    double min_time = args.optionDouble("min-time");
    int64_t rows_cap = args.optionInt("rows-cap");
    Rng rng(7);

    bench::banner("micro_parallel_ops — intra-/inter-op thread scaling");
    bench::JsonWriter json("micro_parallel_ops");
    json.machine().add("isa_detected", kernelIsaName(detectIsa()));
    json.config()
        .add("min_time_s", min_time)
        .add("threads", args.option("threads"))
        .add("rows_cap", static_cast<int64_t>(rows_cap));

    bench::section("GEMM (C[m,n] = A[m,k] * B[n,k]^T)");
    for (const GemmCase &gc : kGemmCases) {
        std::vector<SweepPoint> points =
            sweepGemm(gc, thread_list, min_time, rng);
        double flops = 2.0 * static_cast<double>(gc.m) *
            static_cast<double>(gc.n) * static_cast<double>(gc.k);
        std::printf("%-20s m=%-4lld n=%-4lld k=%-4lld\n", gc.name,
                    static_cast<long long>(gc.m),
                    static_cast<long long>(gc.n),
                    static_cast<long long>(gc.k));
        for (const SweepPoint &p : points) {
            std::printf("  %2d threads: %8.2f GFLOP/s  %5.2fx  "
                        "(%.0f%% efficient)\n",
                        p.threads, flops / p.seconds / 1e9, p.speedup,
                        p.efficiency * 100);
            json.newResult()
                .add("suite", "gemm")
                .add("name", gc.name)
                .add("m", gc.m)
                .add("n", gc.n)
                .add("k", gc.k)
                .add("threads", p.threads)
                .add("seconds_per_iter", p.seconds)
                .add("gflops", flops / p.seconds / 1e9)
                .add("speedup_vs_1t", p.speedup)
                .add("efficiency", p.efficiency);
        }
    }

    bench::section("multi-table SparseLengthsSum (RecModel fan-out)");
    for (const SlsCase &sc : kSlsCases) {
        std::vector<SweepPoint> points =
            sweepSls(sc, rows_cap, thread_list, min_time, rng);
        double lookups_per_iter = static_cast<double>(
            sc.tables * sc.batch * sc.lookups);
        std::printf("%-20s %lld tables x %lld rows (cap %lld), dim "
                    "%lld, %lld lookups, batch %lld\n", sc.name,
                    static_cast<long long>(sc.tables),
                    static_cast<long long>(sc.rows),
                    static_cast<long long>(std::min(sc.rows, rows_cap)),
                    static_cast<long long>(sc.dim),
                    static_cast<long long>(sc.lookups),
                    static_cast<long long>(sc.batch));
        for (const SweepPoint &p : points) {
            std::printf("  %2d threads: %8.2f Mlookups/s %5.2fx  "
                        "(%.0f%% efficient)\n",
                        p.threads, lookups_per_iter / p.seconds / 1e6,
                        p.speedup, p.efficiency * 100);
            json.newResult()
                .add("suite", "sls")
                .add("name", sc.name)
                .add("tables", sc.tables)
                .add("rows_per_table", std::min(sc.rows, rows_cap))
                .add("dim", sc.dim)
                .add("lookups", sc.lookups)
                .add("batch", sc.batch)
                .add("threads", p.threads)
                .add("seconds_per_iter", p.seconds)
                .add("mlookups_per_s", lookups_per_iter / p.seconds / 1e6)
                .add("speedup_vs_1t", p.speedup)
                .add("efficiency", p.efficiency);
        }
    }

    RP_ASSERT(json.writeOrPrint(args.option("out")), "JSON write failed");
    return 0;
}
