/**
 * @file
 * Regenerates Figure 1: the share of data-center AI inference cycles
 * consumed by each recommendation model class.
 *
 * Paper anchors: RMC1+RMC2+RMC3 consume 65% of AI inference cycles;
 * recommendation models in total consume over 79%.
 */

#include "bench/bench_common.hh"
#include "fleet/fleet_mix.hh"
#include "machine/machine_spec.hh"

using namespace recperf;

int
main()
{
    bench::banner("Figure 1: AI inference cycles by model class");

    FleetMix mix = FleetMix::productionDefault(broadwell());

    bench::section("cycle share per workload");
    for (const auto &[name, share] : mix.modelShares()) {
        std::printf("  %-14s %5.1f%%  |%s\n", name.c_str(), share * 100.0,
                    bench::bar(share).c_str());
    }

    bench::section("aggregates (paper: RMC1-3 = 65%, all rec >= 79%)");
    std::printf("  RMC1+RMC2+RMC3 share: %5.1f%%\n", mix.rmcShare() * 100.0);
    std::printf("  all recommendation:   %5.1f%%\n",
                mix.recommendationShare() * 100.0);
    std::printf("  non-recommendation:   %5.1f%%\n",
                (1.0 - mix.recommendationShare()) * 100.0);
    return 0;
}
