/**
 * @file
 * Regenerates Figure 10: the latency/throughput trade-off of
 * co-locating RMC2 inferences (batch 32) across server generations.
 *
 * Shape to reproduce: starting from no co-location, latency degrades
 * quickly then plateaus; Broadwell is best under low co-location
 * (latency-optimal), Skylake under high co-location (throughput-
 * optimal, exclusive LLC).
 */

#include "bench/bench_common.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "timing/colocation.hh"

using namespace recperf;

int
main()
{
    bench::banner("Figure 10: latency vs throughput under co-location "
                  "(RMC2, batch 32)");

    ModelConfig cfg = rmc2Small();
    for (const MachineSpec &machine : fleetMachines()) {
        bench::section(machine.name);
        std::printf("  %3s %12s %16s %8s\n", "N", "latency",
                    "throughput", "HT");
        for (uint32_t n : {1u, 2u, 4u, 8u, 12u, 16u, 20u, 24u}) {
            TimerOptions opts;
            opts.batch = 32;
            ColocationSim sim(machine, cfg, opts, n);
            int iters = n >= 12 ? 4 : 8;
            ColocationResult r = sim.run(8, iters);
            std::printf("  %3u %9.3f ms %11.0f inf/s %8s\n", n,
                        r.meanLatency() * 1e3, r.throughput(),
                        sim.hyperthreading() ? "yes" : "no");
        }
    }

    bench::section("latency-optimal vs throughput-optimal platform");
    double best_lat = 1e18, best_thr = 0.0;
    std::string lat_machine, thr_machine;
    for (const MachineSpec &machine : fleetMachines()) {
        TimerOptions opts;
        opts.batch = 32;
        ColocationSim low(machine, cfg, opts, 2);
        ColocationResult rl = low.run(8, 6);
        if (rl.meanLatency() < best_lat) {
            best_lat = rl.meanLatency();
            lat_machine = machine.name;
        }
        ColocationSim high(machine, cfg, opts, 16);
        ColocationResult rh = high.run(8, 4);
        if (rh.throughput() > best_thr) {
            best_thr = rh.throughput();
            thr_machine = machine.name;
        }
    }
    std::printf("  low co-location (N=2):  %s is latency-optimal "
                "(%.3f ms)\n", lat_machine.c_str(), best_lat * 1e3);
    std::printf("  high co-location (N=16): %s is throughput-optimal "
                "(%.0f inf/s)\n", thr_machine.c_str(), best_thr);
    return 0;
}
