/**
 * @file
 * Regenerates Figure 4: data-center-wide cycles by operator, split
 * into recommendation and non-recommendation models.
 *
 * Paper anchors: FC, SLS and Concat together comprise over 45% of all
 * cycles; SLS alone is several times the Conv and Recurrent shares.
 */

#include "bench/bench_common.hh"
#include "fleet/fleet_mix.hh"
#include "machine/machine_spec.hh"

using namespace recperf;

int
main()
{
    bench::banner("Figure 4: fleet-wide cycles by operator");

    FleetMix mix = FleetMix::productionDefault(broadwell());
    FleetMix::OperatorShares shares = mix.operatorShares();

    bench::section("recommendation models");
    for (const auto &[kind, share] : shares.recommendation) {
        std::printf("  %-11s %5.1f%%  |%s\n", opKindName(kind),
                    share * 100.0, bench::bar(share).c_str());
    }
    bench::section("non-recommendation models");
    for (const auto &[kind, share] : shares.nonRecommendation) {
        std::printf("  %-11s %5.1f%%  |%s\n", opKindName(kind),
                    share * 100.0, bench::bar(share).c_str());
    }

    bench::section("paper-shape checks");
    double fc = shares.recommendation[OpKind::FC];
    double sls = shares.recommendation[OpKind::SLS];
    double concat = shares.recommendation[OpKind::Concat];
    double conv = shares.nonRecommendation[OpKind::Conv];
    double rnn = shares.nonRecommendation[OpKind::Recurrent];
    std::printf("  FC+SLS+Concat (rec):  %5.1f%%  (paper: > 45%%)\n",
                (fc + sls + concat) * 100.0);
    std::printf("  SLS vs Conv:          %5.1fx  (paper: ~4x)\n",
                sls / conv);
    std::printf("  SLS vs Recurrent:     %5.1fx  (paper: ~20x)\n",
                sls / rnn);
    return 0;
}
