/**
 * @file
 * Tests for row-wise int8 quantized embedding tables and the embedding
 * precision knob in the model config / timing layer.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/logging.hh"
#include "core/rng.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "ops/quantized_embedding.hh"
#include "timing/model_timer.hh"

namespace recperf {
namespace {

TEST(QuantizedEmbedding, StorageShrinksNearly4x)
{
    Rng rng(1);
    EmbeddingTable table(1000, 32, rng);
    QuantizedEmbeddingTable q(table);
    EXPECT_EQ(q.rowBytes(), 32 + 8);
    EXPECT_EQ(q.storageBytes(), 1000 * 40);
    double ratio = static_cast<double>(table.storageBytes()) /
        static_cast<double>(q.storageBytes());
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 4.0);
}

TEST(QuantizedEmbedding, DequantizeWithinOneStep)
{
    Rng rng(2);
    EmbeddingTable table(200, 16, rng);
    QuantizedEmbeddingTable q(table);
    float step = q.maxQuantizationStep();
    std::vector<float> row(16);
    for (int64_t r = 0; r < 200; ++r) {
        q.dequantizeRow(r, row.data());
        for (int64_t c = 0; c < 16; ++c) {
            EXPECT_NEAR(row[static_cast<size_t>(c)], table.table().at(r, c),
                        step * 0.51f)
                << "row " << r << " col " << c;
        }
    }
}

TEST(QuantizedEmbedding, ConstantRowExact)
{
    EmbeddingTable table(4, 8);
    table.table().fill(3.25f);
    QuantizedEmbeddingTable q(table);
    std::vector<float> row(8);
    q.dequantizeRow(2, row.data());
    for (float v : row)
        EXPECT_FLOAT_EQ(v, 3.25f);
}

TEST(QuantizedEmbedding, ForwardApproximatesFp32)
{
    Rng rng(3);
    EmbeddingTable table(500, 32, rng);
    QuantizedEmbeddingTable q(table);

    std::vector<int64_t> ids, lengths;
    for (int b = 0; b < 8; ++b) {
        lengths.push_back(10);
        for (int j = 0; j < 10; ++j)
            ids.push_back(rng.nextInt(0, 499));
    }
    Tensor exact = table.forward(ids, lengths);
    Tensor approx = q.forward(ids, lengths);
    ASSERT_EQ(exact.shape(), approx.shape());
    // Pooled error grows at most linearly with pooling factor.
    float bound = q.maxQuantizationStep() * 0.51f * 10;
    for (int64_t i = 0; i < exact.size(); ++i)
        EXPECT_NEAR(approx.at(i), exact.at(i), bound);
}

TEST(QuantizedEmbedding, MeanReduction)
{
    Rng rng(4);
    EmbeddingTable table(100, 8, rng);
    QuantizedEmbeddingTable q(table);
    Tensor sum = q.forward({1, 2, 3}, {3});
    Tensor mean = q.forward({1, 2, 3}, {3}, SlsReduction::Mean);
    for (int64_t c = 0; c < 8; ++c)
        EXPECT_NEAR(mean.at(0, c), sum.at(0, c) / 3.0f, 1e-5f);
}

TEST(QuantizedEmbedding, ValidatesInputs)
{
    Rng rng(5);
    EmbeddingTable table(10, 4, rng);
    QuantizedEmbeddingTable q(table);
    EXPECT_THROW(q.forward({0, 1}, {3}), PanicError);
    std::vector<float> row(4);
    EXPECT_THROW(q.dequantizeRow(10, row.data()), PanicError);
}

TEST(QuantizedEmbedding, CostReflectsSmallerRows)
{
    OpCost fp32 = EmbeddingTable::cost(80, 1, 32);
    OpCost int8 = QuantizedEmbeddingTable::cost(80, 1, 32);
    EXPECT_LT(int8.bytesRead, fp32.bytesRead);
    EXPECT_GT(int8.flops, fp32.flops); // dequantization work
}

TEST(EmbPrecision, RowBytes)
{
    EmbeddingConfig e{4, 1000, 32, 80, EmbPrecision::Fp32};
    EXPECT_EQ(e.rowBytes(), 128);
    e.precision = EmbPrecision::Fp16;
    EXPECT_EQ(e.rowBytes(), 64);
    e.precision = EmbPrecision::Int8;
    EXPECT_EQ(e.rowBytes(), 40);
    EXPECT_STREQ(embPrecisionName(EmbPrecision::Int8), "int8");
}

TEST(EmbPrecision, StorageScalesWithPrecision)
{
    ModelConfig fp32 = rmc2Small();
    ModelConfig int8 = rmc2Small();
    int8.emb.precision = EmbPrecision::Int8;
    double ratio = static_cast<double>(fp32.embStorageBytes()) /
        static_cast<double>(int8.embStorageBytes());
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 4.0);
}

TEST(EmbPrecision, QuantizationSpeedsUpSls)
{
    // Fewer lines per gathered row -> faster SparseLengthsSum on the
    // memory-intensive model (the §VIII compression motivation).
    MachineSpec bdw = broadwell();
    TimerOptions opts;
    opts.batch = 16;

    ModelConfig fp32 = rmc2Small();
    ModelConfig int8 = rmc2Small();
    int8.emb.precision = EmbPrecision::Int8;

    ModelTimer t32(bdw, fp32, opts);
    ModelTimer t8(bdw, int8, opts);
    double s32 = t32.steadyState(12, 12).secondsByKind(OpKind::SLS);
    double s8 = t8.steadyState(12, 12).secondsByKind(OpKind::SLS);
    EXPECT_LT(s8, 0.85 * s32);
}

} // namespace
} // namespace recperf
