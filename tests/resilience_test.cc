/**
 * @file
 * Tests for the resilience subsystem: deterministic fault injection,
 * timeout/retry/hedging in sharded inference, and SLA-aware admission
 * control in the server.
 */

#include <gtest/gtest.h>

#include "core/logging.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "resilience/fault_injector.hh"
#include "resilience/policies.hh"
#include "resilience/replica_set.hh"
#include "serving/distributed.hh"
#include "serving/server.hh"

namespace recperf {
namespace {

FaultOptions
stragglerFaults(double prob)
{
    FaultOptions f;
    f.stragglerProb = prob;
    f.stragglerAlpha = 1.5;
    f.stragglerMin = 4.0;
    f.seed = 7;
    return f;
}

/** A shard that dies almost immediately and never recovers. */
FaultOptions
deadShardFaults()
{
    FaultOptions f;
    f.shardMtbfSeconds = 1e-9;
    f.shardMttrSeconds = 1e9;
    f.seed = 7;
    return f;
}

ResilientShardedResult
runSharded(const FaultOptions &faults, const RetryPolicy &retry,
           const HedgePolicy &hedge, int measure = 120)
{
    TimerOptions opts;
    opts.batch = 16;
    ShardedInference sim(broadwell(), rmc1Small(), 4, NetworkConfig{},
                         opts);
    RunOptions options;
    options.warmupIters = 20;
    options.measureIters = measure;
    options.faults = faults;
    options.retry = retry;
    options.hedge = hedge;
    return sim.run(options);
}

TEST(FaultInjector, DeterministicFromSeed)
{
    FaultOptions f = stragglerFaults(0.3);
    f.shardMtbfSeconds = 0.002;
    f.shardMttrSeconds = 0.001;
    FaultInjector a(f, 4);
    FaultInjector b(f, 4);
    for (int i = 0; i < 500; ++i) {
        double now = 1e-5 * i;
        EXPECT_EQ(a.serviceMultiplier(now), b.serviceMultiplier(now));
        EXPECT_EQ(a.shardUp(i % 4, now), b.shardUp(i % 4, now));
    }
    EXPECT_EQ(a.stragglersInjected(), b.stragglersInjected());
    EXPECT_EQ(a.downAnswers(), b.downAnswers());
}

TEST(FaultInjector, SeedChangesSchedule)
{
    FaultOptions f = stragglerFaults(0.3);
    FaultOptions g = f;
    g.seed = f.seed + 1;
    FaultInjector a(f, 0);
    FaultInjector b(g, 0);
    int diffs = 0;
    for (int i = 0; i < 200; ++i) {
        if (a.serviceMultiplier(0.0) != b.serviceMultiplier(0.0))
            ++diffs;
    }
    EXPECT_GT(diffs, 0);
}

TEST(FaultInjector, ParetoStragglersBoundedBelow)
{
    FaultOptions f = stragglerFaults(1.0);
    FaultInjector inj(f, 0);
    for (int i = 0; i < 200; ++i)
        EXPECT_GE(inj.serviceMultiplier(0.0), f.stragglerMin);
    EXPECT_EQ(inj.stragglersInjected(), 200u);

    FaultInjector clean(stragglerFaults(0.0), 0);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(clean.serviceMultiplier(0.0), 1.0);
}

TEST(FaultInjector, ShardFailureProcess)
{
    FaultOptions f;
    f.shardMtbfSeconds = 0.001;
    f.shardMttrSeconds = 0.001;
    f.seed = 11;
    FaultInjector inj(f, 2);
    int down = 0;
    for (int i = 0; i < 2000; ++i) {
        if (!inj.shardUp(0, 1e-5 * i))
            ++down;
    }
    // With MTBF == MTTR the shard is down roughly half the time.
    EXPECT_GT(down, 200);
    EXPECT_LT(down, 1800);

    FaultOptions never;
    FaultInjector up(never, 2);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(up.shardUp(1, 1e-3 * i));
}

TEST(FaultInjector, LoadSpikesInflateService)
{
    FaultOptions f;
    f.spikeRatePerSec = 200.0;
    f.spikeDurationSeconds = 0.002;
    f.spikeFactor = 3.0;
    f.seed = 5;
    FaultInjector inj(f, 0);
    int inflated = 0;
    for (int i = 0; i < 2000; ++i) {
        if (inj.serviceMultiplier(1e-5 * i) > 1.0)
            ++inflated;
    }
    EXPECT_GT(inj.spikesStarted(), 0u);
    EXPECT_GT(inflated, 0);
    EXPECT_LT(inflated, 2000);
}

TEST(Resilient, DeterministicFromSeed)
{
    FaultOptions f = stragglerFaults(0.2);
    f.shardMtbfSeconds = 0.01;
    f.shardMttrSeconds = 0.002;
    RetryPolicy retry;
    retry.timeoutSeconds = 0.002;
    HedgePolicy hedge;
    hedge.enabled = true;

    ResilientShardedResult a = runSharded(f, retry, hedge, 60);
    ResilientShardedResult b = runSharded(f, retry, hedge, 60);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.hedgesIssued, b.hedgesIssued);
    EXPECT_EQ(a.hedgeWins, b.hedgeWins);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_DOUBLE_EQ(a.latency.p(99), b.latency.p(99));
    EXPECT_DOUBLE_EQ(a.duration, b.duration);
}

TEST(Resilient, CleanRunCompletesEverything)
{
    ResilientShardedResult r =
        runSharded(FaultOptions{}, RetryPolicy{}, HedgePolicy{}, 40);
    EXPECT_EQ(r.completed, 40u);
    EXPECT_EQ(r.failed, 0u);
    EXPECT_EQ(r.hedgesIssued, 0u);
    EXPECT_EQ(r.retries, 0u);
    EXPECT_DOUBLE_EQ(r.availability(), 1.0);
    EXPECT_GT(r.goodput(), 0.0);
    EXPECT_EQ(r.latency.count(), 40u);
}

TEST(Resilient, HedgingImprovesTailUnderStragglers)
{
    FaultOptions f = stragglerFaults(0.25);
    RetryPolicy retry; // no timeout: stragglers are waited out
    HedgePolicy off;
    HedgePolicy on;
    on.enabled = true; // auto p95 delay

    ResilientShardedResult r_off = runSharded(f, retry, off);
    ResilientShardedResult r_on = runSharded(f, retry, on);
    ASSERT_EQ(r_off.completed, r_on.completed);
    EXPECT_GT(r_on.hedgesIssued, 0u);
    EXPECT_GT(r_on.hedgeWins, 0u);
    EXPECT_LT(r_on.latency.p(99), r_off.latency.p(99));
    // Hedging pays with duplicated work, which is accounted.
    EXPECT_GT(r_on.hedgeExtraSeconds, 0.0);
    EXPECT_GT(r_on.hedgeExtraBytes, 0.0);
}

TEST(Resilient, RetryExhaustionFailsInsteadOfHanging)
{
    RetryPolicy retry;
    retry.maxRetries = 2;
    ResilientShardedResult r =
        runSharded(deadShardFaults(), retry, HedgePolicy{}, 50);
    // The shards die within nanoseconds of t=0, so only the very first
    // inference (issued exactly at t=0) completes; every later one
    // fail-fasts, retries, and exhausts on all four dead shards.
    EXPECT_EQ(r.failed, 49u);
    EXPECT_EQ(r.completed, 1u);
    EXPECT_EQ(r.latency.count(), 1u);
    EXPECT_EQ(r.retries, 49u * 4u * 2u);
    EXPECT_GT(r.shardDownEncounters, 0u);
    EXPECT_LT(r.availability(), 0.05);
    // Failed attempts cost bounded time, not an unbounded hang.
    EXPECT_GT(r.wastedSeconds, 0.0);
    EXPECT_LT(r.duration, 1.0);
}

TEST(Resilient, HedgeRescuesDownShard)
{
    RetryPolicy retry;
    retry.maxRetries = 1;
    HedgePolicy hedge;
    hedge.enabled = true;
    ResilientShardedResult r =
        runSharded(deadShardFaults(), retry, hedge, 50);
    EXPECT_EQ(r.completed, 50u);
    EXPECT_EQ(r.failed, 0u);
    EXPECT_GT(r.hedgeWins, 0u);
    EXPECT_DOUBLE_EQ(r.availability(), 1.0);
}

TEST(Resilient, TimeoutsAreCountedAndRetried)
{
    // Every attempt straggles by >= 100x; a tight timeout abandons each
    // attempt, so every inference exhausts its retries.
    FaultOptions f = stragglerFaults(1.0);
    f.stragglerMin = 100.0;
    RetryPolicy retry;
    retry.timeoutSeconds = 20e-6; // far below 8x the base SLS time
    retry.maxRetries = 1;
    ResilientShardedResult r = runSharded(f, retry, HedgePolicy{}, 30);
    EXPECT_EQ(r.completed, 0u);
    EXPECT_EQ(r.failed, 30u);
    EXPECT_GT(r.timeouts, 0u);
    EXPECT_GT(r.wastedSeconds, 0.0);
}

TEST(ServingStats, ZeroItemRunsAreSafe)
{
    ServingStats empty;
    EXPECT_EQ(empty.goodThroughput(), 0.0);
    EXPECT_EQ(empty.totalThroughput(), 0.0);
    EXPECT_EQ(empty.slaFraction(), 0.0);
    EXPECT_EQ(empty.servedFraction(), 0.0);
    EXPECT_EQ(empty.completedItems(), 0u);
    EXPECT_EQ(empty.offeredItems(), 0u);
    EXPECT_EQ(empty.itemLatency.p(50), 0.0);
    EXPECT_EQ(empty.itemLatency.p(99), 0.0);
    EXPECT_EQ(empty.itemLatency.mean(), 0.0);

    ResilientShardedResult r;
    EXPECT_EQ(r.availability(), 0.0);
    EXPECT_EQ(r.goodput(), 0.0);
}

ServerOptions
overloadOptions()
{
    ServerOptions o;
    o.numWorkers = 1;
    o.maxBatch = 4;
    o.slaSeconds = 0.005;
    o.jitterSigma = 0.05;
    return o;
}

TEST(Admission, ShedsLoadAndProtectsSla)
{
    ServerOptions off = overloadOptions();
    Server base(broadwell(), rmc2Small(), TimerOptions{}, off);
    ServingStats without = base.runOpenLoop(50'000.0, 2'000);

    ServerOptions on = overloadOptions();
    on.admission.enabled = true;
    on.admission.maxWaitFraction = 0.5;
    Server guarded(broadwell(), rmc2Small(), TimerOptions{}, on);
    ServingStats with = guarded.runOpenLoop(50'000.0, 2'000);

    EXPECT_GT(with.shedItems, 0u);
    EXPECT_EQ(with.offeredItems(), 2'000u);
    // Shedding hopeless items keeps the served items under the SLA.
    EXPECT_GT(with.slaFraction(), without.slaFraction());
    EXPECT_GT(with.slaFraction(), 0.8);
    EXPECT_LT(with.servedFraction(), 1.0);
}

TEST(Admission, DeterministicShedCounts)
{
    ServerOptions on = overloadOptions();
    on.admission.enabled = true;
    Server a(broadwell(), rmc2Small(), TimerOptions{}, on);
    ServingStats sa = a.runOpenLoop(40'000.0, 1'500);
    Server b(broadwell(), rmc2Small(), TimerOptions{}, on);
    ServingStats sb = b.runOpenLoop(40'000.0, 1'500);
    EXPECT_EQ(sa.shedItems, sb.shedItems);
    EXPECT_EQ(sa.slaMet, sb.slaMet);
    EXPECT_EQ(sa.slaMissed, sb.slaMissed);
}

TEST(Admission, IdleTrafficIsUntouched)
{
    ServerOptions on = overloadOptions();
    on.admission.enabled = true;
    Server server(broadwell(), rmc1Small(), TimerOptions{}, on);
    ServingStats stats = server.runOpenLoop(50.0, 300);
    EXPECT_EQ(stats.shedItems, 0u);
    EXPECT_EQ(stats.completedItems(), 300u);
}

TEST(Degrade, DropsLowPriorityUnderBacklog)
{
    ServerOptions o = overloadOptions();
    o.maxBatch = 8;
    o.degrade.enabled = true;
    o.degrade.backlogFactor = 1.0;
    o.degrade.degradedMaxBatch = 2;
    o.degrade.lowPriorityFraction = 0.5;
    Server server(broadwell(), rmc2Small(), TimerOptions{}, o);
    ServingStats stats = server.runOpenLoop(50'000.0, 2'000);
    EXPECT_GT(stats.degradedBatches, 0u);
    EXPECT_GT(stats.droppedLowPriority, 0u);
    EXPECT_EQ(stats.offeredItems(), 2'000u);
}

TEST(Degrade, OffByDefault)
{
    Server server(broadwell(), rmc2Small(), TimerOptions{},
                  overloadOptions());
    ServingStats stats = server.runOpenLoop(50'000.0, 1'000);
    EXPECT_EQ(stats.degradedBatches, 0u);
    EXPECT_EQ(stats.droppedLowPriority, 0u);
    EXPECT_EQ(stats.shedItems, 0u);
}

TEST(Health, EwmaTracksLatencyAndErrorStreaks)
{
    HealthTracker h;
    EXPECT_DOUBLE_EQ(h.ewmaSeconds(), 0.0);
    EXPECT_DOUBLE_EQ(h.score(5.0), 5.0); // no history: fallback

    h.recordSuccess(1e-3, 0.0);
    EXPECT_DOUBLE_EQ(h.ewmaSeconds(), 1e-3); // first sample seeds EWMA
    h.recordSuccess(2e-3, 1.0);
    // alpha 0.2: 0.2 * 2ms + 0.8 * 1ms
    EXPECT_NEAR(h.ewmaSeconds(), 1.2e-3, 1e-12);
    EXPECT_DOUBLE_EQ(h.score(5.0), h.ewmaSeconds());

    h.recordError(2.0);
    h.recordError(3.0);
    EXPECT_EQ(h.consecutiveErrors(), 2);
    EXPECT_EQ(h.errors(), 2u);
    h.recordSuccess(1e-3, 4.0);
    EXPECT_EQ(h.consecutiveErrors(), 0); // success resets the streak
    EXPECT_EQ(h.successes(), 3u);
    EXPECT_DOUBLE_EQ(h.lastEventTime(), 4.0);
}

TEST(Breaker, TripsCoolsAndRecloses)
{
    BreakerOptions o;
    o.errorThreshold = 2;
    o.openSeconds = 1.0;
    o.probeAdmitProb = 1.0; // every half-open request is a probe
    o.closeAfterProbes = 2;
    CircuitBreaker b(o, /*salt=*/0);

    EXPECT_EQ(b.state(), BreakerState::Closed);
    EXPECT_TRUE(b.allowRequest(0.0));
    b.onFailure(0.0);
    EXPECT_EQ(b.state(), BreakerState::Closed); // one error: not yet
    b.onFailure(0.1);
    EXPECT_EQ(b.state(), BreakerState::Open);
    EXPECT_EQ(b.timesOpened(), 1u);

    EXPECT_FALSE(b.allowRequest(0.5)); // cooldown running
    EXPECT_GT(b.rejections(), 0u);
    EXPECT_TRUE(b.allowRequest(1.2)); // cooldown over: probe admitted
    EXPECT_EQ(b.state(), BreakerState::HalfOpen);
    b.onSuccess(1.2);
    EXPECT_EQ(b.state(), BreakerState::HalfOpen); // one probe of two
    EXPECT_TRUE(b.allowRequest(1.3));
    b.onSuccess(1.3);
    EXPECT_EQ(b.state(), BreakerState::Closed);
    EXPECT_EQ(b.timesClosed(), 1u);
    EXPECT_EQ(b.probesAdmitted(), 2u);
}

TEST(Breaker, FailedProbeReopens)
{
    BreakerOptions o;
    o.errorThreshold = 1;
    o.openSeconds = 1.0;
    o.probeAdmitProb = 1.0;
    CircuitBreaker b(o, 0);
    b.onFailure(0.0);
    EXPECT_EQ(b.state(), BreakerState::Open);
    EXPECT_TRUE(b.allowRequest(1.5));
    b.onFailure(1.5); // probe fails: back to open, cooldown restarted
    EXPECT_EQ(b.state(), BreakerState::Open);
    EXPECT_EQ(b.timesOpened(), 2u);
    EXPECT_FALSE(b.allowRequest(2.0));
    EXPECT_TRUE(b.allowRequest(2.6));
}

TEST(Breaker, ProbeCoinIsSeeded)
{
    BreakerOptions o;
    o.errorThreshold = 1;
    o.openSeconds = 0.1;
    o.probeAdmitProb = 0.5;
    auto admissions = [&o](uint64_t salt) {
        CircuitBreaker b(o, salt);
        b.onFailure(0.0);
        std::vector<bool> seq;
        for (int i = 0; i < 32; ++i) {
            bool admitted = b.allowRequest(0.2 + 0.01 * i);
            seq.push_back(admitted);
            if (admitted)
                b.onFailure(0.2 + 0.01 * i); // stay half-open/open
        }
        return seq;
    };
    EXPECT_EQ(admissions(3), admissions(3)); // same salt: same stream
    EXPECT_NE(admissions(3), admissions(4)); // salts decorrelate
}

TEST(Breaker, OptionValidation)
{
    BreakerOptions o;
    EXPECT_TRUE(o.validate().empty());
    o.errorThreshold = 0;
    EXPECT_FALSE(o.validate().empty());
    o = {};
    o.probeAdmitProb = 1.5;
    EXPECT_FALSE(o.validate().empty());
    o = {};
    o.openSeconds = -1.0;
    EXPECT_FALSE(o.validate().empty());
}

TEST(Router, PolicyNamesRoundTrip)
{
    RouterPolicy p;
    EXPECT_TRUE(routerPolicyFromName("primary-first", &p));
    EXPECT_EQ(p, RouterPolicy::PrimaryFirst);
    EXPECT_TRUE(routerPolicyFromName("least-loaded", &p));
    EXPECT_EQ(p, RouterPolicy::LeastLoaded);
    EXPECT_TRUE(routerPolicyFromName("p2c", &p));
    EXPECT_EQ(p, RouterPolicy::PowerOfTwo);
    EXPECT_FALSE(routerPolicyFromName("round-robin", &p));
}

TEST(Router, PrimaryFirstPrefersLowestAdmittedIndex)
{
    ReplicaOptions o;
    o.replicas = 3;
    ReplicaSet set(0, o, /*warmup_factor=*/2.0);
    ReplicaSet::Pick pick = set.route(0.0);
    EXPECT_EQ(pick.replica, 0);
    EXPECT_EQ(pick.alternate, 1);

    // Trip the primary's breaker: routing falls over to replica 1.
    for (int i = 0; i < o.breaker.errorThreshold; ++i)
        set.recordError(0, 0.0);
    pick = set.route(0.0);
    EXPECT_EQ(pick.replica, 1);
    EXPECT_EQ(pick.alternate, 2);
}

TEST(Router, LeastLoadedAvoidsTheBusyReplica)
{
    ReplicaOptions o;
    o.replicas = 2;
    o.router = RouterPolicy::LeastLoaded;
    ReplicaSet set(0, o, 2.0);
    // Pile virtual work onto replica 0.
    for (int i = 0; i < 8; ++i)
        set.recordSuccess(0, 5e-3, 0.0);
    ReplicaSet::Pick pick = set.route(0.0);
    EXPECT_EQ(pick.replica, 1);
    EXPECT_EQ(pick.alternate, 0);
}

TEST(Router, PowerOfTwoIsDeterministicAndAlwaysHasAlternate)
{
    ReplicaOptions o;
    o.replicas = 3;
    o.router = RouterPolicy::PowerOfTwo;
    o.seed = 99;
    ReplicaSet a(0, o, 2.0);
    ReplicaSet b(0, o, 2.0);
    for (int i = 0; i < 50; ++i) {
        ReplicaSet::Pick pa = a.route(1e-4 * i);
        ReplicaSet::Pick pb = b.route(1e-4 * i);
        EXPECT_EQ(pa.replica, pb.replica);
        EXPECT_EQ(pa.alternate, pb.alternate);
        ASSERT_GE(pa.replica, 0);
        ASSERT_GE(pa.alternate, 0);
        EXPECT_NE(pa.replica, pa.alternate);
    }
}

TEST(Router, WarmupMultiplierDecaysLinearly)
{
    ReplicaOptions o;
    o.replicas = 2;
    o.warmupSeconds = 1.0;
    ReplicaSet set(0, o, /*warmup_factor=*/3.0);
    EXPECT_DOUBLE_EQ(set.warmupMultiplier(0, 0.0), 1.0); // never down

    set.observeUp(0, false, 0.0);
    set.observeUp(0, true, 1.0); // down -> up edge starts warm-up
    EXPECT_DOUBLE_EQ(set.warmupMultiplier(0, 1.0), 3.0);
    EXPECT_NEAR(set.warmupMultiplier(0, 1.5), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(set.warmupMultiplier(0, 2.0), 1.0);
    EXPECT_DOUBLE_EQ(set.warmupMultiplier(0, 5.0), 1.0);
    // Replica 1 never went down: always warm.
    EXPECT_DOUBLE_EQ(set.warmupMultiplier(1, 1.5), 1.0);
}

TEST(ReplicaOptionsValidation, CatchesNonsense)
{
    ReplicaOptions o;
    EXPECT_TRUE(o.validate().empty());
    o.replicas = 0;
    EXPECT_FALSE(o.validate().empty());
    o = {};
    o.warmupFactor = 0.5; // below 1 and not the 0 auto sentinel
    EXPECT_FALSE(o.validate().empty());
    o = {};
    o.warmupSeconds = -1.0;
    EXPECT_FALSE(o.validate().empty());
    o = {};
    o.breaker.errorThreshold = -2;
    EXPECT_FALSE(o.validate().empty());
}

TEST(PolicyValidation, RetryAndHedgeCrossChecks)
{
    RetryPolicy retry;
    EXPECT_TRUE(validateRetryPolicy(retry).empty());
    retry.timeoutSeconds = -1e-3;
    EXPECT_FALSE(validateRetryPolicy(retry).empty());
    retry = {};
    retry.maxRetries = -1;
    EXPECT_FALSE(validateRetryPolicy(retry).empty());
    retry = {};
    retry.backoffSeconds = -1.0;
    EXPECT_FALSE(validateRetryPolicy(retry).empty());

    HedgePolicy hedge;
    hedge.enabled = true;
    retry = {};
    retry.timeoutSeconds = 5e-3;
    hedge.delaySeconds = 1e-3;
    EXPECT_TRUE(validateHedgePolicy(hedge, retry).empty());
    hedge.delaySeconds = 5e-3; // at the timeout: can never fire
    EXPECT_FALSE(validateHedgePolicy(hedge, retry).empty());
    hedge.delaySeconds = -1e-3;
    EXPECT_FALSE(validateHedgePolicy(hedge, retry).empty());

    // Disabled policies are not validated; enabling exposes the issue.
    AdmissionOptions admission;
    admission.maxWaitFraction = -0.1;
    EXPECT_TRUE(validateAdmissionOptions(admission).empty());
    admission.enabled = true;
    EXPECT_FALSE(validateAdmissionOptions(admission).empty());

    DegradeOptions degrade;
    degrade.enabled = true;
    EXPECT_TRUE(validateDegradeOptions(degrade).empty());
    degrade.lowPriorityFraction = 1.5;
    EXPECT_FALSE(validateDegradeOptions(degrade).empty());
    degrade = {};
    degrade.degradedMaxBatch = 0;
    degrade.enabled = true;
    EXPECT_FALSE(validateDegradeOptions(degrade).empty());
}

TEST(FaultOptionsValidation, CatchesNonsense)
{
    FaultOptions f;
    EXPECT_TRUE(f.validate().empty());
    f.stragglerProb = 1.5;
    EXPECT_FALSE(f.validate().empty());
    f = {};
    f.shardMtbfSeconds = -1.0;
    EXPECT_FALSE(f.validate().empty());
    f = {};
    f.stragglerProb = 0.5;
    f.stragglerAlpha = 0.5; // Pareto needs alpha > 1
    EXPECT_FALSE(f.validate().empty());
}

TEST(ServerFaults, StragglersStretchServiceTimes)
{
    ServerOptions clean = overloadOptions();
    clean.jitterSigma = 0.0;
    Server a(broadwell(), rmc1Small(), TimerOptions{}, clean);
    ServingStats sa = a.runClosedLoop(40);

    ServerOptions faulty = clean;
    faulty.faults.stragglerProb = 0.2;
    faulty.faults.stragglerMin = 4.0;
    Server b(broadwell(), rmc1Small(), TimerOptions{}, faulty);
    ServingStats sb = b.runClosedLoop(40);

    double spread_a = sa.serviceTime.p(99) / sa.serviceTime.p(50);
    double spread_b = sb.serviceTime.p(99) / sb.serviceTime.p(50);
    EXPECT_GT(spread_b, spread_a);
    EXPECT_GT(sb.serviceTime.p(99), sa.serviceTime.p(99));
}

} // namespace
} // namespace recperf
