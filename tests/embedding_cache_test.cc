/**
 * @file
 * Tests for the software embedding-vector cache (LRU/LFU).
 */

#include <gtest/gtest.h>

#include "core/logging.hh"
#include "trace/embedding_cache.hh"

namespace recperf {
namespace {

TEST(EmbeddingCache, RejectsZeroCapacity)
{
    EXPECT_THROW(EmbeddingVectorCache(0, CachePolicy::Lru), PanicError);
}

TEST(EmbeddingCache, PolicyNames)
{
    EXPECT_STREQ(cachePolicyName(CachePolicy::Lru), "LRU");
    EXPECT_STREQ(cachePolicyName(CachePolicy::Lfu), "LFU");
}

TEST(EmbeddingCache, MissThenHit)
{
    EmbeddingVectorCache cache(4, CachePolicy::Lru);
    EXPECT_FALSE(cache.access(7));
    EXPECT_TRUE(cache.access(7));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.5);
}

TEST(EmbeddingCache, CapacityEnforced)
{
    EmbeddingVectorCache cache(3, CachePolicy::Lru);
    for (uint64_t k = 0; k < 5; ++k)
        cache.access(k);
    EXPECT_EQ(cache.size(), 3u);
}

TEST(EmbeddingCache, LruEvictsLeastRecent)
{
    EmbeddingVectorCache cache(3, CachePolicy::Lru);
    cache.access(1);
    cache.access(2);
    cache.access(3);
    cache.access(1);     // 2 is now LRU
    cache.access(4);     // evicts 2
    EXPECT_TRUE(cache.contains(1));
    EXPECT_FALSE(cache.contains(2));
    EXPECT_TRUE(cache.contains(3));
    EXPECT_TRUE(cache.contains(4));
}

TEST(EmbeddingCache, LfuKeepsHotRows)
{
    EmbeddingVectorCache cache(3, CachePolicy::Lfu);
    for (int i = 0; i < 10; ++i)
        cache.access(100); // very hot
    cache.access(1);
    cache.access(2);
    // Insert a new key: the cold key (1, LRU tie-break among freq-1)
    // is evicted, never the hot one.
    cache.access(3);
    EXPECT_TRUE(cache.contains(100));
    EXPECT_FALSE(cache.contains(1));
}

TEST(EmbeddingCache, LfuBeatsLruOnScanPollution)
{
    // A hot set plus a one-off scan: LFU protects the hot rows, LRU
    // lets the scan flush them.
    auto run = [](CachePolicy policy) {
        EmbeddingVectorCache cache(8, policy);
        for (int round = 0; round < 50; ++round) {
            // The hot rows are referenced several times per round, so
            // LFU can build up frequency before the scan arrives.
            for (int rep = 0; rep < 3; ++rep) {
                for (uint64_t hot = 0; hot < 6; ++hot)
                    cache.access(hot);
            }
            // Scan of cold keys.
            for (uint64_t cold = 0; cold < 8; ++cold)
                cache.access(1000 + 8ull * static_cast<uint64_t>(round) +
                             cold);
        }
        return cache.hitRate();
    };
    EXPECT_GT(run(CachePolicy::Lfu), run(CachePolicy::Lru));
}

TEST(EmbeddingCache, ResetStatsKeepsContents)
{
    EmbeddingVectorCache cache(4, CachePolicy::Lru);
    cache.access(1);
    cache.resetStats();
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_TRUE(cache.contains(1));
    EXPECT_TRUE(cache.access(1));
}

TEST(EmbeddingCache, HitRateGrowsWithCapacity)
{
    Rng rng(5);
    double prev = -1.0;
    for (size_t capacity : {100, 1000, 10'000, 100'000}) {
        ZipfGen gen(1'000'000, 1.0, rng.split());
        double rate = simulateCacheHitRate(gen, 30'000, capacity,
                                           CachePolicy::Lru);
        EXPECT_GT(rate, prev) << "capacity " << capacity;
        prev = rate;
    }
    EXPECT_GT(prev, 0.4); // 10% of rows cached under zipf(1.0)
}

TEST(EmbeddingCache, HitRateTracksTraceLocality)
{
    // Fig 14's implication: low-uniqueness traces cache far better.
    Rng rng(7);
    auto profiles = productionTraceProfiles();
    auto hot = makeGenerator(profiles.back(), 5'000'000, rng.split());
    auto cold = makeGenerator(profiles.front(), 5'000'000, rng.split());
    double hot_rate = simulateCacheHitRate(*hot, 20'000, 20'000,
                                           CachePolicy::Lru);
    double cold_rate = simulateCacheHitRate(*cold, 20'000, 20'000,
                                            CachePolicy::Lru);
    EXPECT_GT(hot_rate, 0.8);
    EXPECT_LT(cold_rate, 0.5);
}

TEST(EmbeddingCache, UniformTraceBarelyCaches)
{
    Rng rng(9);
    UniformGen gen(10'000'000, rng.split());
    double rate = simulateCacheHitRate(gen, 20'000, 10'000,
                                       CachePolicy::Lru);
    EXPECT_LT(rate, 0.02);
}

} // namespace
} // namespace recperf
