/**
 * @file
 * Tests for the single-model timing layer: the paper's Takeaways 1-5.
 */

#include <gtest/gtest.h>

#include "core/logging.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "timing/model_timer.hh"

namespace recperf {
namespace {

ModelTiming
timeModel(const MachineSpec &m, const ModelConfig &cfg, int64_t batch,
          bool ht = false)
{
    TimerOptions opts;
    opts.batch = batch;
    opts.hyperthreading = ht;
    ModelTimer timer(m, cfg, opts);
    return timer.steadyState(20, 20);
}

TEST(ModelTimer, Takeaway1LatencySpreadAcrossClasses)
{
    // Inference latency varies by >= 10x across RMC1..RMC3 (batch 1,
    // Broadwell; the paper reports 15x).
    MachineSpec bdw = broadwell();
    double rmc1 = timeModel(bdw, rmc1Small(), 1).totalSeconds();
    double rmc2 = timeModel(bdw, rmc2Small(), 1).totalSeconds();
    double rmc3 = timeModel(bdw, rmc3Small(), 1).totalSeconds();
    EXPECT_LT(rmc1, rmc2);
    EXPECT_LT(rmc2, rmc3);
    EXPECT_GT(rmc3 / rmc1, 10.0);
}

TEST(ModelTimer, Fig7AbsoluteLatencyAnchors)
{
    // Paper: 0.04 ms / 0.30 ms / 0.60 ms on Broadwell at batch 1. We
    // require the same order of magnitude (factor-2 bands).
    MachineSpec bdw = broadwell();
    double rmc1_ms = timeModel(bdw, rmc1Small(), 1).totalSeconds() * 1e3;
    double rmc2_ms = timeModel(bdw, rmc2Small(), 1).totalSeconds() * 1e3;
    double rmc3_ms = timeModel(bdw, rmc3Small(), 1).totalSeconds() * 1e3;
    EXPECT_GT(rmc1_ms, 0.02);
    EXPECT_LT(rmc1_ms, 0.08);
    EXPECT_GT(rmc2_ms, 0.15);
    EXPECT_LT(rmc2_ms, 0.60);
    EXPECT_GT(rmc3_ms, 0.30);
    EXPECT_LT(rmc3_ms, 1.20);
}

TEST(ModelTimer, Takeaway2OperatorBottlenecksDiffer)
{
    // No single operator dominates every class: FC rules RMC3 (>90%),
    // SLS rules RMC2 (>60%), RMC1 is mixed.
    MachineSpec bdw = broadwell();
    ModelTiming rmc1 = timeModel(bdw, rmc1Small(), 1);
    ModelTiming rmc2 = timeModel(bdw, rmc2Small(), 1);
    ModelTiming rmc3 = timeModel(bdw, rmc3Small(), 1);

    EXPECT_GT(rmc3.fractionByKind(OpKind::FC), 0.90);
    EXPECT_GT(rmc2.fractionByKind(OpKind::SLS), 0.60);
    EXPECT_GT(rmc1.fractionByKind(OpKind::FC), 0.30);
    EXPECT_LT(rmc1.fractionByKind(OpKind::FC), 0.80);
    EXPECT_GT(rmc1.fractionByKind(OpKind::SLS), 0.10);
}

TEST(ModelTimer, Takeaway3BroadwellBestAtUnitBatch)
{
    for (const ModelConfig &cfg : representativeModels()) {
        double hsw = timeModel(haswell(), cfg, 1).totalSeconds();
        double bdw = timeModel(broadwell(), cfg, 1).totalSeconds();
        double skl = timeModel(skylake(), cfg, 1).totalSeconds();
        EXPECT_LT(bdw, hsw) << cfg.name;
        EXPECT_LT(bdw, skl) << cfg.name;
    }
}

TEST(ModelTimer, Takeaway4SkylakeBestAtLargeBatch)
{
    for (const ModelConfig &cfg : representativeModels()) {
        double hsw = timeModel(haswell(), cfg, 256).totalSeconds();
        double bdw = timeModel(broadwell(), cfg, 256).totalSeconds();
        double skl = timeModel(skylake(), cfg, 256).totalSeconds();
        EXPECT_LT(skl, hsw) << cfg.name;
        EXPECT_LT(skl, bdw) << cfg.name;
    }
}

TEST(ModelTimer, Fig8Rmc3BatchSixteenRatios)
{
    // Paper: at batch 16 Broadwell beats Haswell by 1.32x and Skylake
    // by 1.65x on RMC3. Allow generous bands around those anchors.
    double hsw = timeModel(haswell(), rmc3Small(), 16).totalSeconds();
    double bdw = timeModel(broadwell(), rmc3Small(), 16).totalSeconds();
    double skl = timeModel(skylake(), rmc3Small(), 16).totalSeconds();
    EXPECT_GT(hsw / bdw, 1.1);
    EXPECT_LT(hsw / bdw, 1.6);
    EXPECT_GT(skl / bdw, 1.3);
    EXPECT_LT(skl / bdw, 2.0);
}

TEST(ModelTimer, LatencyMonotoneInBatch)
{
    MachineSpec bdw = broadwell();
    for (const ModelConfig &cfg : {rmc1Small(), rmc3Small()}) {
        double prev = 0.0;
        for (int64_t batch : {1, 4, 16, 64, 256}) {
            double t = timeModel(bdw, cfg, batch).totalSeconds();
            EXPECT_GT(t, prev) << cfg.name << " batch " << batch;
            prev = t;
        }
    }
}

TEST(ModelTimer, BatchingImprovesPerItemLatency)
{
    // Throughput motivation (§III): batch-256 latency is far below
    // 256x the batch-1 latency.
    MachineSpec bdw = broadwell();
    double t1 = timeModel(bdw, rmc1Small(), 1).totalSeconds();
    double t256 = timeModel(bdw, rmc1Small(), 256).totalSeconds();
    EXPECT_LT(t256, 100.0 * t1);
}

TEST(ModelTimer, HyperthreadingDegradesLatency)
{
    MachineSpec bdw = broadwell();
    for (const ModelConfig &cfg : {rmc1Small(), rmc3Small()}) {
        double solo = timeModel(bdw, cfg, 32, false).totalSeconds();
        double ht = timeModel(bdw, cfg, 32, true).totalSeconds();
        EXPECT_GT(ht, 1.2 * solo) << cfg.name;
        EXPECT_LT(ht, 1.7 * solo) << cfg.name;
    }
}

TEST(ModelTimer, HyperthreadingHurtsComputeModelMore)
{
    // §VI: the FC-heavy model suffers the larger SMT penalty.
    MachineSpec bdw = broadwell();
    double r1 = timeModel(bdw, rmc1Small(), 32, true).totalSeconds() /
        timeModel(bdw, rmc1Small(), 32, false).totalSeconds();
    double r3 = timeModel(bdw, rmc3Small(), 32, true).totalSeconds() /
        timeModel(bdw, rmc3Small(), 32, false).totalSeconds();
    EXPECT_GT(r3, r1);
}

TEST(ModelTimer, SlsMpkiInPaperRange)
{
    // Fig 5: SLS-heavy models show 1-10 LLC MPKI; FC-heavy nearly none.
    MachineSpec bdw = broadwell();
    double rmc2_mpki = timeModel(bdw, rmc2Small(), 1).llcMpki();
    double rmc3_mpki = timeModel(bdw, rmc3Small(), 1).llcMpki();
    EXPECT_GT(rmc2_mpki, 1.0);
    EXPECT_LT(rmc2_mpki, 15.0);
    EXPECT_LT(rmc3_mpki, 0.5);
    EXPECT_GT(rmc2_mpki, 10.0 * rmc3_mpki);
}

TEST(ModelTimer, WarmCacheFasterThanCold)
{
    MachineSpec bdw = broadwell();
    TimerOptions opts;
    opts.batch = 1;
    ModelTimer timer(bdw, rmc1Small(), opts);
    double cold = timer.run().totalSeconds();
    for (int i = 0; i < 30; ++i)
        timer.run();
    double warm = timer.run().totalSeconds();
    EXPECT_LT(warm, cold);
}

TEST(ModelTimer, LargerModelVariantSlower)
{
    // §V: a large RMC1 has ~2x the latency of a small RMC1.
    MachineSpec bdw = broadwell();
    double small = timeModel(bdw, rmc1Small(), 1).totalSeconds();
    double large = timeModel(bdw, rmc1Large(), 1).totalSeconds();
    EXPECT_GT(large / small, 1.5);
    EXPECT_LT(large / small, 4.0);
}

TEST(ModelTimer, SetBatchTakesEffect)
{
    MachineSpec bdw = broadwell();
    TimerOptions opts;
    opts.batch = 1;
    ModelTimer timer(bdw, rmc1Small(), opts);
    timer.steadyState(5, 5);
    double b1 = timer.run().totalSeconds();
    timer.setBatch(64);
    double b64 = timer.run().totalSeconds();
    EXPECT_GT(b64, 2.0 * b1);
    EXPECT_THROW(timer.setBatch(0), PanicError);
}

TEST(ModelTimer, NcfIsFcDominatedAndFast)
{
    // Fig 12 / §VII: NCF's runtime is FC-dominated (>90%) and orders of
    // magnitude below the production models'.
    MachineSpec bdw = broadwell();
    ModelTiming ncf = timeModel(bdw, ncfConfig(), 1);
    EXPECT_GT(ncf.fractionByKind(OpKind::FC), 0.5);
    EXPECT_LT(ncf.fractionByKind(OpKind::SLS), 0.2);
    EXPECT_LT(ncf.totalSeconds(),
              timeModel(bdw, rmc2Small(), 1).totalSeconds() / 4.0);
}

TEST(ModelTiming, BreakdownSumsToTotal)
{
    MachineSpec bdw = broadwell();
    ModelTiming t = timeModel(bdw, rmc1Small(), 4);
    double sum = 0.0;
    for (const auto &[kind, secs] : t.breakdown())
        sum += secs;
    EXPECT_NEAR(sum, t.totalSeconds(), 1e-12);
    double frac = 0.0;
    for (const auto &[kind, secs] : t.breakdown())
        frac += t.fractionByKind(kind);
    EXPECT_NEAR(frac, 1.0, 1e-9);
}

TEST(ModelTiming, AccumulateAndScale)
{
    ModelTiming a;
    OpTiming op;
    op.kind = OpKind::FC;
    op.seconds = 2.0;
    op.instructions = 100.0;
    op.dramLines = 10;
    a.ops.push_back(op);
    ModelTiming b = a;
    a.accumulate(b);
    EXPECT_DOUBLE_EQ(a.totalSeconds(), 4.0);
    a.scale(0.5);
    EXPECT_DOUBLE_EQ(a.totalSeconds(), 2.0);
    EXPECT_DOUBLE_EQ(a.instructions(), 100.0);
    EXPECT_EQ(a.dramLines(), 10u);
}

} // namespace
} // namespace recperf
