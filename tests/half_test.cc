/**
 * @file
 * Tests for IEEE binary16 conversion and fp16 embedding tables.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/logging.hh"
#include "core/rng.hh"
#include "ops/half.hh"

namespace recperf {
namespace {

TEST(Half, ExactValues)
{
    // Values exactly representable in binary16 round-trip exactly.
    for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -3.25f, 1024.0f,
                    65504.0f, -65504.0f, 0.0009765625f}) {
        EXPECT_EQ(halfToFloat(floatToHalf(v)), v) << v;
    }
}

TEST(Half, SignedZero)
{
    EXPECT_EQ(floatToHalf(0.0f), 0x0000);
    EXPECT_EQ(floatToHalf(-0.0f), 0x8000);
    EXPECT_EQ(halfToFloat(0x8000), -0.0f);
    EXPECT_TRUE(std::signbit(halfToFloat(0x8000)));
}

TEST(Half, KnownBitPatterns)
{
    EXPECT_EQ(floatToHalf(1.0f), 0x3c00);
    EXPECT_EQ(floatToHalf(2.0f), 0x4000);
    EXPECT_EQ(floatToHalf(-2.0f), 0xc000);
    EXPECT_EQ(floatToHalf(0.5f), 0x3800);
    EXPECT_EQ(floatToHalf(65504.0f), 0x7bff); // max finite half
}

TEST(Half, OverflowToInfinity)
{
    EXPECT_EQ(floatToHalf(1e6f), 0x7c00);
    EXPECT_EQ(floatToHalf(-1e6f), 0xfc00);
    EXPECT_TRUE(std::isinf(halfToFloat(0x7c00)));
    EXPECT_LT(halfToFloat(0xfc00), 0.0f);
}

TEST(Half, NanPreserved)
{
    uint16_t h = floatToHalf(std::numeric_limits<float>::quiet_NaN());
    EXPECT_TRUE(std::isnan(halfToFloat(h)));
}

TEST(Half, Subnormals)
{
    // Smallest positive subnormal half = 2^-24.
    float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(floatToHalf(tiny), 0x0001);
    EXPECT_EQ(halfToFloat(0x0001), tiny);
    // Below half the smallest subnormal underflows to zero.
    EXPECT_EQ(floatToHalf(std::ldexp(1.0f, -26)), 0x0000);
}

TEST(Half, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly halfway between 1.0 and the next half
    // (1 + 2^-10); ties round to even (1.0).
    float halfway = 1.0f + std::ldexp(1.0f, -11);
    EXPECT_EQ(floatToHalf(halfway), 0x3c00);
    // Slightly above the tie rounds up.
    float above = 1.0f + std::ldexp(1.0f, -11) + std::ldexp(1.0f, -13);
    EXPECT_EQ(floatToHalf(above), 0x3c01);
}

TEST(Half, RelativeErrorBound)
{
    // Normal-range conversions stay within 2^-11 relative error.
    Rng rng(1);
    for (int i = 0; i < 20'000; ++i) {
        float v = rng.nextFloat(-1000.0f, 1000.0f);
        if (std::fabs(v) < 1e-3f)
            continue;
        float back = halfToFloat(floatToHalf(v));
        EXPECT_NEAR(back, v, std::fabs(v) * 4.9e-4f) << v;
    }
}

TEST(HalfEmbedding, StorageHalved)
{
    Rng rng(2);
    EmbeddingTable table(100, 32, rng);
    HalfEmbeddingTable half(table);
    EXPECT_EQ(half.rowBytes(), 64);
    EXPECT_EQ(half.storageBytes() * 2, table.storageBytes());
}

TEST(HalfEmbedding, ForwardCloseToFp32)
{
    Rng rng(3);
    EmbeddingTable table(500, 32, rng);
    HalfEmbeddingTable half(table);
    std::vector<int64_t> ids, lengths;
    for (int b = 0; b < 8; ++b) {
        lengths.push_back(20);
        for (int j = 0; j < 20; ++j)
            ids.push_back(rng.nextInt(0, 499));
    }
    Tensor exact = table.forward(ids, lengths);
    Tensor approx = half.forward(ids, lengths);
    EXPECT_TRUE(approx.allClose(exact, 2e-3f));
}

TEST(HalfEmbedding, MeanReduction)
{
    Rng rng(4);
    EmbeddingTable table(10, 4, rng);
    HalfEmbeddingTable half(table);
    Tensor sum = half.forward({0, 1}, {2});
    Tensor mean = half.forward({0, 1}, {2}, SlsReduction::Mean);
    for (int64_t c = 0; c < 4; ++c)
        EXPECT_NEAR(mean.at(0, c), sum.at(0, c) / 2.0f, 1e-6f);
}

TEST(HalfEmbedding, Validation)
{
    Rng rng(5);
    EmbeddingTable table(10, 4, rng);
    HalfEmbeddingTable half(table);
    EXPECT_THROW(half.forward({0}, {2}), PanicError);
    float row[4];
    EXPECT_THROW(half.expandRow(10, row), PanicError);
}

} // namespace
} // namespace recperf
