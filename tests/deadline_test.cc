/**
 * @file
 * Tests for end-to-end deadline budgets and cooperative cancellation:
 * the Deadline arithmetic, the CancelToken (including its
 * deterministic test fuse), the serving layer's deadline shed/cancel
 * accounting, the model-layer cancellation checkpoints, and the shard
 * fan-out's budget-clamped retries and fail-fast path.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/cancellation.hh"
#include "core/logging.hh"
#include "core/rng.hh"
#include "core/thread_pool.hh"
#include "machine/machine_spec.hh"
#include "model/rec_model.hh"
#include "model/zoo.hh"
#include "resilience/deadline.hh"
#include "serving/distributed.hh"
#include "serving/server.hh"

namespace recperf {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Deadline, DisabledIsInfinite)
{
    Deadline off{5.0, 0.0};
    EXPECT_FALSE(off.enabled());
    EXPECT_EQ(off.remaining(100.0), kInf);
    EXPECT_FALSE(off.expired(1e9));
    // Disabled budget keeps legacy timeout semantics: the fixed value
    // when set, unbounded when not.
    EXPECT_EQ(off.clampTimeout(2e-3, 6.0), 2e-3);
    EXPECT_EQ(off.clampTimeout(0.0, 6.0), kInf);
}

TEST(Deadline, RemainingDecrementsAndClamps)
{
    Deadline dl{1.0, 10e-3};
    EXPECT_TRUE(dl.enabled());
    EXPECT_NEAR(dl.remaining(1.0), 10e-3, 1e-12);
    EXPECT_NEAR(dl.remaining(1.0 + 4e-3), 6e-3, 1e-12);
    // Never negative, even well past expiry.
    EXPECT_DOUBLE_EQ(dl.remaining(2.0), 0.0);
    EXPECT_FALSE(dl.expired(1.0 + 9e-3));
    EXPECT_TRUE(dl.expired(1.0 + 11e-3));
    EXPECT_TRUE(dl.expired(2.0));
}

TEST(Deadline, ClampTimeoutTakesTheTighterBound)
{
    Deadline dl{0.0, 10e-3};
    // Fixed timeout tighter than the budget early on...
    EXPECT_DOUBLE_EQ(dl.clampTimeout(2e-3, 0.0), 2e-3);
    // ...the budget tighter once most of it is burned...
    EXPECT_DOUBLE_EQ(dl.clampTimeout(2e-3, 9e-3), 1e-3);
    // ...and an unbounded policy timeout still honors the budget.
    EXPECT_DOUBLE_EQ(dl.clampTimeout(0.0, 4e-3), 6e-3);
    // At/after expiry the clamp is zero, not negative.
    EXPECT_DOUBLE_EQ(dl.clampTimeout(2e-3, 20e-3), 0.0);
}

TEST(Deadline, ValidationRejectsNonFinite)
{
    EXPECT_TRUE(validateDeadlineSeconds(0.0).empty());
    EXPECT_TRUE(validateDeadlineSeconds(0.25).empty());
    EXPECT_FALSE(validateDeadlineSeconds(-1.0).empty());
    EXPECT_FALSE(validateDeadlineSeconds(kInf).empty());
    EXPECT_FALSE(validateDeadlineSeconds(std::nan("")).empty());
}

TEST(CancelToken, ManualCancelSticks)
{
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
    token.cancel();
    EXPECT_TRUE(token.cancelled());
    EXPECT_TRUE(token.cancelled()); // idempotent
    token.reset();
    EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, FuseCancelsAtExactPoll)
{
    CancelToken token;
    token.cancelAfterChecks(3);
    EXPECT_FALSE(token.cancelled()); // poll 1
    EXPECT_FALSE(token.cancelled()); // poll 2
    EXPECT_FALSE(token.cancelled()); // poll 3
    EXPECT_TRUE(token.cancelled());  // poll 4 observes the fuse
    token.reset();
    EXPECT_FALSE(token.cancelled());
}

ServerOptions
servingOptions()
{
    ServerOptions o;
    o.numWorkers = 2;
    o.maxBatch = 16;
    o.slaSeconds = 1.5e-3;
    o.jitterSigma = 0.05;
    return o;
}

TEST(ServerDeadline, NearZeroBudgetShedsEverythingWithoutHanging)
{
    // A budget below any feasible service time must not hang or
    // underflow: every item is rejected at admission and the
    // accounting still closes exactly.
    ServerOptions opts = servingOptions();
    opts.deadlineSeconds = 1e-9;
    Server server(broadwell(), rmc1Small(), TimerOptions{}, opts);
    ServingStats stats = server.runOpenLoop(50'000.0, 1'000);
    EXPECT_EQ(stats.completedItems(), 0u);
    EXPECT_EQ(stats.offeredItems(), 1'000u);
    EXPECT_EQ(stats.shedAdmissionDeadline + stats.deadlineShedQueue,
              1'000u);
}

TEST(ServerDeadline, ServedItemsNeverExceedTheBudget)
{
    // Under overload the deadline cancels late completions, so the
    // worst served latency is bounded by the budget itself.
    ServerOptions opts = servingOptions();
    opts.deadlineSeconds = 1.5e-3;
    Server server(broadwell(), rmc1Small(), TimerOptions{}, opts);
    ServingStats stats = server.runOpenLoop(400'000.0, 4'000);
    EXPECT_EQ(stats.offeredItems(), 4'000u);
    EXPECT_GT(stats.completedItems(), 0u);
    EXPECT_EQ(stats.deadlineMet, stats.completedItems());
    ASSERT_GT(stats.itemLatency.count(), 0u);
    EXPECT_LE(stats.itemLatency.p(100), opts.deadlineSeconds + 1e-12);
    // Overload must actually exercise the shed/cancel paths.
    EXPECT_GT(stats.shedAdmissionDeadline + stats.deadlineShedQueue +
                  stats.deadlineCancelled,
              0u);
}

TEST(ServerDeadline, DisabledBudgetMatchesLegacyRun)
{
    // deadlineSeconds = 0 must be bit-identical to the pre-deadline
    // serving path.
    ServerOptions legacy = servingOptions();
    ServerOptions off = servingOptions();
    off.deadlineSeconds = 0.0;
    Server a(broadwell(), rmc1Small(), TimerOptions{}, legacy);
    Server b(broadwell(), rmc1Small(), TimerOptions{}, off);
    ServingStats sa = a.runOpenLoop(100'000.0, 2'000);
    ServingStats sb = b.runOpenLoop(100'000.0, 2'000);
    EXPECT_EQ(sa.slaMet, sb.slaMet);
    EXPECT_EQ(sa.slaMissed, sb.slaMissed);
    EXPECT_EQ(sa.deadlineMet, 0u);
    ASSERT_EQ(sa.itemLatency.count(), sb.itemLatency.count());
    for (size_t i = 0; i < sa.itemLatency.count(); ++i)
        EXPECT_EQ(sa.itemLatency.samples()[i],
                  sb.itemLatency.samples()[i]);
}

TEST(ServerDeadline, RunCancellationKeepsAccountingExact)
{
    // Cancel the whole run mid-stream: the items admitted before the
    // token fired are fully accounted; the rest were never offered.
    ServerOptions opts = servingOptions();
    opts.deadlineSeconds = 1.5e-3;
    Server server(broadwell(), rmc1Small(), TimerOptions{}, opts);
    CancelToken token;
    token.cancelAfterChecks(20); // fires during batch formation
    server.setCancelToken(&token);
    ServingStats stats = server.runOpenLoop(200'000.0, 4'000);
    EXPECT_TRUE(token.cancelled());
    EXPECT_LT(stats.offeredItems(), 4'000u);
    EXPECT_EQ(stats.offeredItems(),
              stats.completedItems() + stats.shedItems +
                  stats.droppedLowPriority + stats.shedAdmissionDeadline +
                  stats.deadlineShedQueue + stats.deadlineCancelled);
}

ModelConfig
tinyConfig()
{
    ModelConfig m;
    m.name = "tiny";
    m.modelClass = ModelClass::RMC1;
    m.denseFeatures = 8;
    m.bottomMlp = {16, 4};
    m.emb = {3, 64, 4, 5};
    m.topMlp = {8, 1};
    m.validate();
    return m;
}

TEST(RecModelCancel, PreCancelledForwardReturnsEmpty)
{
    Rng rng(1);
    RecModel model(tinyConfig(), rng);
    ModelInput input = model.randomInput(4, rng);
    CancelToken token;
    token.cancel();
    Tensor out = model.forward(input, &token);
    EXPECT_EQ(out.size(), 0);
}

TEST(RecModelCancel, MidFanoutCancelAbandonsTheBatch)
{
    // Fire the fuse partway through the per-table SLS fan-out: the
    // forward pass must notice at the next checkpoint and abandon the
    // batch instead of finishing it.
    int original = globalThreadCount();
    setGlobalThreadCount(1); // deterministic poll order for the fuse
    Rng rng(1);
    RecModel model(tinyConfig(), rng);
    ModelInput input = model.randomInput(4, rng);
    CancelToken token;
    token.cancelAfterChecks(2);
    Tensor out = model.forward(input, &token);
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(out.size(), 0);
    setGlobalThreadCount(original);
}

TEST(RecModelCancel, NullTokenStillComputes)
{
    Rng rng(1);
    RecModel model(tinyConfig(), rng);
    ModelInput input = model.randomInput(4, rng);
    EXPECT_EQ(model.forward(input, nullptr).shape(), (Shape{4, 1}));
}

RunOptions
shardOptions(int iters)
{
    RunOptions o;
    o.warmupIters = 10;
    o.measureIters = iters;
    return o;
}

TEST(ShardedDeadline, AccountingClosesUnderBudget)
{
    TimerOptions topts;
    topts.batch = 16;
    ShardedInference sim(broadwell(), rmc1Small(), 4, NetworkConfig{},
                         topts);
    RunOptions opts = shardOptions(200);
    opts.deadlineSeconds = 2e-3;
    opts.faults.stragglerProb = 0.2;
    opts.faults.seed = 11;
    opts.retry.timeoutSeconds = 3e-3;
    ResilientShardedResult r = sim.run(opts);
    EXPECT_EQ(r.completed + r.failed + r.deadlineExpired, 200u);
    // Nothing completes past its budget: availability only counts
    // in-budget answers.
    EXPECT_LE(r.availability(), 1.0);
}

TEST(ShardedDeadline, HopelessBudgetFailsFastEveryInference)
{
    // A budget far below the p50 of a fresh attempt trips the
    // fail-fast check before the first shard: every inference is
    // deadline-shed, none burns retry cycles.
    TimerOptions topts;
    topts.batch = 16;
    ShardedInference sim(broadwell(), rmc1Small(), 4, NetworkConfig{},
                         topts);
    RunOptions opts = shardOptions(50);
    opts.deadlineSeconds = 1e-9;
    ResilientShardedResult r = sim.run(opts);
    EXPECT_EQ(r.deadlineExpired, 50u);
    EXPECT_EQ(r.completed, 0u);
    EXPECT_GT(r.deadlineFastFails, 0u);
    EXPECT_EQ(r.retries, 0u);
}

TEST(ShardedDeadline, ExternalTokenCancelsRemainingInferences)
{
    TimerOptions topts;
    topts.batch = 16;
    ShardedInference sim(broadwell(), rmc1Small(), 4, NetworkConfig{},
                         topts);
    RunOptions opts = shardOptions(100);
    CancelToken token;
    token.cancelAfterChecks(60); // mid-run, mid-fan-out
    opts.cancel = &token;
    ResilientShardedResult r = sim.run(opts);
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(r.completed + r.failed + r.deadlineExpired, 100u);
    EXPECT_GT(r.deadlineExpired, 0u);
    EXPECT_GT(r.completed, 0u);
}

TEST(ShardedDeadline, DisabledBudgetMatchesLegacyRun)
{
    TimerOptions topts;
    topts.batch = 16;
    RunOptions opts = shardOptions(100);
    opts.faults.stragglerProb = 0.1;
    opts.faults.seed = 5;
    opts.retry.timeoutSeconds = 2e-3;

    ShardedInference legacy(broadwell(), rmc1Small(), 2,
                            NetworkConfig{}, topts);
    ResilientShardedResult a = legacy.run(opts);

    RunOptions off = opts;
    off.deadlineSeconds = 0.0;
    ShardedInference with(broadwell(), rmc1Small(), 2, NetworkConfig{},
                          topts);
    ResilientShardedResult b = with.run(off);

    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(b.deadlineExpired, 0u);
    ASSERT_EQ(a.latency.count(), b.latency.count());
    for (size_t i = 0; i < a.latency.count(); ++i)
        EXPECT_EQ(a.latency.samples()[i], b.latency.samples()[i]);
}

TEST(ShardedDeadline, ReplicaRoutingSkipsOverBudgetCopies)
{
    // With replicas and a straggler-prone primary, a tight budget
    // makes the router consult replica EWMAs: the skip counter only
    // moves when the deadline machinery is engaged.
    TimerOptions topts;
    topts.batch = 16;
    ShardedInference sim(broadwell(), rmc1Small(), 2, NetworkConfig{},
                         topts);
    RunOptions opts = shardOptions(300);
    opts.faults.stragglerProb = 0.4;
    opts.faults.stragglerMin = 4.0;
    opts.faults.seed = 9;
    ReplicaOptions ropts;
    ropts.replicas = 2;
    opts.replicas = ropts;
    opts.deadlineSeconds = 1.2e-3;
    ReplicatedShardedResult r = sim.run(opts);
    EXPECT_EQ(r.completed + r.failed + r.deadlineExpired, 300u);

    RunOptions off = opts;
    off.deadlineSeconds = 0.0;
    ShardedInference base(broadwell(), rmc1Small(), 2, NetworkConfig{},
                          topts);
    ReplicatedShardedResult b = base.run(off);
    EXPECT_EQ(b.replicaSkips, 0u);
    EXPECT_EQ(b.deadlineExpired, 0u);
}

TEST(ShardedDeadline, DeterministicAcrossThreadCounts)
{
    TimerOptions topts;
    topts.batch = 16;
    RunOptions opts = shardOptions(150);
    opts.deadlineSeconds = 2e-3;
    opts.faults.stragglerProb = 0.2;
    opts.faults.seed = 4;

    int original = globalThreadCount();
    setGlobalThreadCount(1);
    ShardedInference one(broadwell(), rmc1Small(), 2, NetworkConfig{},
                         topts);
    ResilientShardedResult a = one.run(opts);
    setGlobalThreadCount(4);
    ShardedInference four(broadwell(), rmc1Small(), 2, NetworkConfig{},
                          topts);
    ResilientShardedResult b = four.run(opts);
    setGlobalThreadCount(original);

    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.deadlineExpired, b.deadlineExpired);
    EXPECT_EQ(a.deadlineFastFails, b.deadlineFastFails);
    ASSERT_EQ(a.latency.count(), b.latency.count());
    for (size_t i = 0; i < a.latency.count(); ++i)
        EXPECT_EQ(a.latency.samples()[i], b.latency.samples()[i]);
}

} // namespace
} // namespace recperf
