/**
 * @file
 * Tests for the shared worker pool: exact index coverage under every
 * pool size / grain combination, exception propagation, nested-call
 * degradation, oversubscription, and the global-pool knobs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "core/logging.hh"
#include "core/thread_pool.hh"

namespace recperf {
namespace {

/** Restores the default global pool after each test. */
class GlobalPoolFixture : public ::testing::Test
{
  protected:
    void TearDown() override { setGlobalThreadCount(0); }
};

TEST(ThreadPool, CoverageIsExact)
{
    for (int threads : {1, 2, 3, 4, 8}) {
        ThreadPool pool(threads);
        for (int64_t total : {0ll, 1ll, 5ll, 31ll, 32ll, 33ll, 1000ll,
                              4097ll}) {
            for (int64_t grain : {1ll, 7ll, 32ll, 100ll}) {
                std::vector<std::atomic<int>> hits(
                    static_cast<size_t>(total));
                pool.parallelFor(0, total, grain,
                                 [&](int64_t lo, int64_t hi) {
                    for (int64_t i = lo; i < hi; ++i)
                        hits[static_cast<size_t>(i)].fetch_add(1);
                });
                for (int64_t i = 0; i < total; ++i) {
                    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1)
                        << "threads=" << threads << " total=" << total
                        << " grain=" << grain << " index=" << i;
                }
            }
        }
    }
}

TEST(ThreadPool, NonZeroBeginCovered)
{
    ThreadPool pool(4);
    std::atomic<int64_t> sum{0};
    pool.parallelFor(100, 200, 9, [&](int64_t lo, int64_t hi) {
        int64_t local = 0;
        for (int64_t i = lo; i < hi; ++i)
            local += i;
        sum.fetch_add(local);
    });
    // sum of [100, 200) = (100+199)*100/2
    EXPECT_EQ(sum.load(), 14950);
}

TEST(ThreadPool, EmptyAndInvertedRangesDoNothing)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
    pool.parallelFor(5, 3, 1, [&](int64_t, int64_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, RejectsNonPositiveGrain)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(0, 10, 0, [](int64_t, int64_t) {}),
                 PanicError);
}

TEST(ThreadPool, ChunksAreOrderedAndWithinBounds)
{
    ThreadPool pool(3);
    std::atomic<bool> ok{true};
    pool.parallelFor(0, 1000, 13, [&](int64_t lo, int64_t hi) {
        if (!(0 <= lo && lo < hi && hi <= 1000))
            ok = false;
    });
    EXPECT_TRUE(ok.load());
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(0, 1000, 1,
                         [&](int64_t lo, int64_t) {
            if (lo >= 500)
                throw std::runtime_error("boom");
        }),
        std::runtime_error);
}

TEST(ThreadPool, PoolUsableAfterException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(0, 100, 1,
                                  [](int64_t, int64_t) {
        throw std::runtime_error("boom");
    }),
                 std::runtime_error);

    std::atomic<int64_t> covered{0};
    pool.parallelFor(0, 1000, 1, [&](int64_t lo, int64_t hi) {
        covered.fetch_add(hi - lo);
    });
    EXPECT_EQ(covered.load(), 1000);
}

TEST(ThreadPool, NestedCallsRunInlineWithExactCoverage)
{
    ThreadPool pool(4);
    constexpr int64_t kOuter = 16;
    constexpr int64_t kInner = 100;
    std::vector<std::atomic<int>> hits(kOuter * kInner);
    std::atomic<bool> inner_saw_region{true};
    pool.parallelFor(0, kOuter, 1, [&](int64_t olo, int64_t ohi) {
        for (int64_t o = olo; o < ohi; ++o) {
            // The nested call must observe an active region and thus
            // degrade to inline execution on this thread.
            if (!inParallelRegion())
                inner_saw_region = false;
            pool.parallelFor(0, kInner, 1, [&](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i)
                    hits[static_cast<size_t>(o * kInner + i)]
                        .fetch_add(1);
            });
        }
    });
    EXPECT_TRUE(inner_saw_region.load());
    for (size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1) << "flat index " << i;
}

TEST(ThreadPool, SmallRangeInlineDoesNotSuppressNestedParallelism)
{
    ThreadPool pool(4);
    // total <= grain executes inline on the caller WITHOUT entering a
    // region, so an op wrapped in a trivial outer loop keeps its inner
    // parallelism.
    bool outer_in_region = true;
    pool.parallelFor(0, 1, 1, [&](int64_t, int64_t) {
        outer_in_region = inParallelRegion();
    });
    EXPECT_FALSE(outer_in_region);
}

TEST(ThreadPool, OversubscriptionCompletes)
{
    // Far more threads than this machine has cores: the pool must
    // still cover every index exactly once and terminate.
    ThreadPool pool(64);
    EXPECT_EQ(pool.threadCount(), 64);
    std::atomic<int64_t> covered{0};
    pool.parallelFor(0, 1 << 20, 1024, [&](int64_t lo, int64_t hi) {
        covered.fetch_add(hi - lo);
    });
    EXPECT_EQ(covered.load(), 1 << 20);
}

TEST(ThreadPool, ClampsThreadCount)
{
    ThreadPool tiny(0);
    EXPECT_EQ(tiny.threadCount(), 1);
    ThreadPool negative(-5);
    EXPECT_EQ(negative.threadCount(), 1);
}

TEST_F(GlobalPoolFixture, SetGlobalThreadCount)
{
    setGlobalThreadCount(3);
    EXPECT_EQ(globalThreadCount(), 3);
    setGlobalThreadCount(5);
    EXPECT_EQ(globalThreadCount(), 5);
    setGlobalThreadCount(0);
    EXPECT_GE(globalThreadCount(), 1);
}

TEST_F(GlobalPoolFixture, EnvVarSetsDefault)
{
    ::setenv("RECPERF_THREADS", "7", /*overwrite=*/1);
    setGlobalThreadCount(0); // re-resolve the default
    EXPECT_EQ(globalThreadCount(), 7);
    ::unsetenv("RECPERF_THREADS");
    setGlobalThreadCount(0);
    EXPECT_GE(globalThreadCount(), 1);
}

TEST_F(GlobalPoolFixture, FreeFunctionUsesGlobalPool)
{
    setGlobalThreadCount(4);
    std::atomic<int64_t> covered{0};
    parallelFor(0, 12345, 100, [&](int64_t lo, int64_t hi) {
        covered.fetch_add(hi - lo);
    });
    EXPECT_EQ(covered.load(), 12345);
}

} // namespace
} // namespace recperf
