/**
 * @file
 * Unit and statistical tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/logging.hh"
#include "core/rng.hh"

namespace recperf {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(7);
    for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowOneIsAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(Rng, NextBelowZeroPanics)
{
    Rng rng(5);
    EXPECT_THROW(rng.nextBelow(0), PanicError);
}

TEST(Rng, NextIntInclusiveRange)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.nextInt(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextIntEmptyRangePanics)
{
    Rng rng(5);
    EXPECT_THROW(rng.nextInt(3, 2), PanicError);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 10'000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, DoubleMeanNearHalf)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, FloatRange)
{
    Rng rng(19);
    for (int i = 0; i < 1000; ++i) {
        float f = rng.nextFloat(-2.0f, 5.0f);
        EXPECT_GE(f, -2.0f);
        EXPECT_LT(f, 5.0f);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(23);
    const int n = 200'000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        double g = rng.nextGaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(29);
    const double rate = 4.0;
    const int n = 200'000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        double e = rng.nextExponential(rate);
        EXPECT_GT(e, 0.0);
        sum += e;
    }
    EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, ExponentialBadRatePanics)
{
    Rng rng(5);
    EXPECT_THROW(rng.nextExponential(0.0), PanicError);
    EXPECT_THROW(rng.nextExponential(-1.0), PanicError);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(31);
    const int n = 100'000;
    int heads = 0;
    for (int i = 0; i < n; ++i)
        heads += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(37);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += parent.next() == child.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformityChiSquare)
{
    // 16 buckets over nextBelow(16): chi-square should stay far below
    // the 0.001 critical value (~37.7 for 15 dof).
    Rng rng(41);
    const int n = 160'000;
    int counts[16] = {0};
    for (int i = 0; i < n; ++i)
        ++counts[rng.nextBelow(16)];
    double expected = n / 16.0;
    double chi = 0.0;
    for (int c : counts)
        chi += (c - expected) * (c - expected) / expected;
    EXPECT_LT(chi, 37.7);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator)
{
    static_assert(Rng::min() == 0);
    static_assert(Rng::max() == UINT64_MAX);
    Rng rng(3);
    EXPECT_NE(rng(), rng());
}

} // namespace
} // namespace recperf
