/**
 * @file
 * Tests for the virtual-time series sampler (obs::TimeSeriesSampler):
 * fixed-cadence capture, ring-buffer overflow and fast-forward
 * accounting, SLO burn-rate windows, JSONL shape, metrics export, and
 * the disabled-path contract.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <vector>

#include "obs/hw_counters.hh"
#include "obs/metrics.hh"
#include "obs/timeseries.hh"

namespace recperf {
namespace {

obs::TimeSeriesOptions
smallOptions(obs::HwTelemetry *telem = nullptr)
{
    obs::TimeSeriesOptions opts;
    opts.intervalSeconds = 0.1;
    opts.capacity = 8;
    opts.shortWindowSeconds = 1.0;
    opts.longWindowSeconds = 10.0;
    opts.errorBudget = 0.01;
    opts.telemetry = telem;
    return opts;
}

TEST(TimeSeries, FixedCadenceAnchorsAtFirstTick)
{
    obs::TimeSeriesSampler sampler;
    sampler.configure(smallOptions());
    sampler.setEnabled(true);
    sampler.tick(5.0);   // anchor + first sample
    sampler.tick(5.05);  // before next interval: nothing
    sampler.tick(5.25);  // crosses 5.1 and 5.2: two samples
    std::vector<obs::TimeSeriesSample> s = sampler.samples();
    ASSERT_EQ(s.size(), 3u);
    EXPECT_DOUBLE_EQ(s[0].t, 5.0);
    EXPECT_NEAR(s[1].t, 5.1, 1e-9);
    EXPECT_NEAR(s[2].t, 5.2, 1e-9);
    EXPECT_EQ(sampler.samplesTaken(), 3u);
    EXPECT_EQ(sampler.samplesDropped(), 0u);
}

TEST(TimeSeries, RingOverflowDropsOldestAndFastForwards)
{
    obs::TimeSeriesSampler sampler;
    sampler.configure(smallOptions()); // capacity 8, interval 0.1
    sampler.setEnabled(true);
    sampler.tick(0.0);
    // Jump 10 seconds: 101 samples pending >> capacity 8. The sampler
    // must keep only the trailing window, count the rest as dropped,
    // and not loop 100 times building evicted samples.
    sampler.tick(10.0);
    std::vector<obs::TimeSeriesSample> s = sampler.samples();
    ASSERT_EQ(s.size(), 8u);
    // The ring holds the trailing ~0.8 s window ending near t = 10
    // (exact endpoints depend on FP accumulation of the 0.1 steps).
    EXPECT_GT(s.back().t, 9.85);
    EXPECT_LE(s.back().t, 10.0 + 1e-9);
    EXPECT_NEAR(s.back().t - s.front().t, 0.7, 1e-9);
    // At most capacity samples were materialized; the fast-forwarded
    // leading intervals (and any ring eviction) count as dropped.
    EXPECT_LE(sampler.samplesTaken(), 1u + 8u);
    EXPECT_GE(sampler.samplesDropped(), 92u);
    EXPECT_GE(sampler.samplesTaken() + sampler.samplesDropped(), 101u);
}

TEST(TimeSeries, BurnRateTracksViolationFraction)
{
    obs::TimeSeriesSampler sampler;
    sampler.configure(smallOptions());
    sampler.setEnabled(true);
    sampler.tick(0.0);
    // 100 items in the first second, 2 violations: the violation
    // fraction is 2%, which burns a 1% budget at rate 2.
    for (int i = 0; i < 100; ++i)
        sampler.observeItem(0.0 + i * 0.01, 1e-3, i < 2);
    sampler.tick(1.0);
    std::vector<obs::TimeSeriesSample> s = sampler.samples();
    ASSERT_FALSE(s.empty());
    const obs::TimeSeriesSample &last = s.back();
    EXPECT_EQ(last.items, 100u);
    EXPECT_EQ(last.violations, 2u);
    EXPECT_NEAR(last.burnShort, 2.0, 0.2);
    EXPECT_NEAR(last.burnLong, 2.0, 0.2);

    // A clean second flushes the short window but not the long one.
    for (int i = 0; i < 100; ++i)
        sampler.observeItem(1.0 + i * 0.01, 1e-3, false);
    sampler.tick(2.0);
    const obs::TimeSeriesSample &after = sampler.samples().back();
    EXPECT_NEAR(after.burnShort, 0.0, 1e-9);
    EXPECT_GT(after.burnLong, 0.5); // 2/200 over 1% budget = 1.0
}

TEST(TimeSeries, SamplesCarryTelemetrySnapshot)
{
    obs::HwTelemetry telem;
    telem.setEnabled(true);
    obs::TimeSeriesSampler sampler;
    sampler.configure(smallOptions(&telem));
    sampler.setEnabled(true);

    sampler.tick(0.0);
    obs::OpRecord r;
    r.kindName = "FC";
    r.flops = 500.0;
    r.bytesRead = 100.0;
    r.instructions = 1000.0;
    r.dramLines = 4;
    telem.recordOp(r);
    sampler.tick(0.1);

    std::vector<obs::TimeSeriesSample> s = sampler.samples();
    ASSERT_EQ(s.size(), 2u);
    EXPECT_DOUBLE_EQ(s[0].flops, 0.0);
    EXPECT_DOUBLE_EQ(s[1].flops, 500.0);
    EXPECT_EQ(s[1].dramLines, 4u);
    EXPECT_DOUBLE_EQ(s[1].llcMpki, 4.0);
}

TEST(TimeSeries, JsonlHasOneObjectPerSampleWithStableKeys)
{
    obs::TimeSeriesSampler sampler;
    sampler.configure(smallOptions());
    sampler.setEnabled(true);
    sampler.tick(0.0);
    sampler.observeItem(0.05, 1e-3, true);
    sampler.tick(0.2);

    std::string jsonl = sampler.toJsonl();
    std::istringstream lines(jsonl);
    std::string line;
    size_t n = 0;
    while (std::getline(lines, line)) {
        ++n;
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        for (const char *key :
             {"\"t_s\"", "\"items\"", "\"violations\"", "\"burn_short\"",
              "\"burn_long\"", "\"flops\"", "\"bytes_read\"",
              "\"bytes_written\"", "\"dram_lines\"", "\"llc_mpki\""})
            EXPECT_NE(line.find(key), std::string::npos)
                << key << " missing from: " << line;
    }
    EXPECT_EQ(n, sampler.size());
}

TEST(TimeSeries, ExportPublishesBurnAndBudgetMetrics)
{
    obs::TimeSeriesSampler sampler;
    sampler.configure(smallOptions());
    sampler.setEnabled(true);
    sampler.tick(0.0);
    for (int i = 0; i < 50; ++i)
        sampler.observeItem(i * 0.01, 1e-3, i == 0);
    sampler.tick(1.0);

    obs::MetricsRegistry reg;
    sampler.exportTo(reg);
    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("slo.items"), 50u);
    EXPECT_EQ(snap.counter("slo.violations"), 1u);
    EXPECT_EQ(snap.counter("timeseries.samples_taken"),
              sampler.samplesTaken());
    // 1/50 violations over a 1% budget: budget consumed at 2x.
    EXPECT_NEAR(snap.gauge("slo.error_budget_consumed"), 2.0, 1e-9);
    EXPECT_GT(snap.gauge("slo.burn_rate_long"), 0.0);
}

TEST(TimeSeries, DisabledTicksObserveNothingAndAreCheap)
{
    obs::TimeSeriesSampler sampler;
    sampler.configure(smallOptions());
    EXPECT_FALSE(sampler.enabled());
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 1000000; ++i) {
        sampler.tick(i * 1e-4);
        sampler.observeItem(i * 1e-4, 1e-3, false);
    }
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    EXPECT_LT(elapsed, 0.5);
    EXPECT_EQ(sampler.size(), 0u);
    EXPECT_EQ(sampler.samplesTaken(), 0u);
}

TEST(TimeSeries, ResetClearsStateButKeepsOptions)
{
    obs::TimeSeriesSampler sampler;
    sampler.configure(smallOptions());
    sampler.setEnabled(true);
    sampler.tick(0.0);
    sampler.tick(0.5);
    ASSERT_GT(sampler.size(), 0u);

    sampler.reset();
    EXPECT_EQ(sampler.size(), 0u);
    EXPECT_EQ(sampler.samplesTaken(), 0u);
    // Cadence re-anchors at the next tick with the configured interval.
    sampler.tick(100.0);
    sampler.tick(100.25);
    EXPECT_EQ(sampler.size(), 3u); // 100.0, 100.1, 100.2
}

} // namespace
} // namespace recperf
