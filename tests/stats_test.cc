/**
 * @file
 * Unit tests for statistics helpers (RunningStat, percentile, Histogram).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/logging.hh"
#include "core/rng.hh"
#include "core/stats.hh"

namespace recperf {
namespace {

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, SingleValue)
{
    RunningStat s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 5.0);
    EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStat, MatchesNaiveComputation)
{
    Rng rng(1);
    std::vector<double> xs;
    RunningStat s;
    for (int i = 0; i < 1000; ++i) {
        double x = rng.nextGaussian() * 3.0 + 10.0;
        xs.push_back(x);
        s.add(x);
    }
    double mean = 0.0;
    for (double x : xs)
        mean += x;
    mean /= xs.size();
    double var = 0.0;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    var /= (xs.size() - 1);

    EXPECT_NEAR(s.mean(), mean, 1e-9);
    EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(RunningStat, MergeEqualsSequential)
{
    Rng rng(2);
    RunningStat all, a, b;
    for (int i = 0; i < 500; ++i) {
        double x = rng.nextDouble() * 100.0;
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(1.0);
    a.add(2.0);
    RunningStat before = a;
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.mean(), before.mean());

    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_NEAR(b.mean(), 1.5, 1e-12);
}

TEST(Percentile, KnownValues)
{
    std::vector<double> v = {1, 2, 3, 4, 5};
    EXPECT_EQ(percentile(v, 0), 1.0);
    EXPECT_EQ(percentile(v, 50), 3.0);
    EXPECT_EQ(percentile(v, 100), 5.0);
    EXPECT_EQ(percentile(v, 25), 2.0);
    EXPECT_NEAR(percentile(v, 10), 1.4, 1e-12);
}

TEST(Percentile, UnsortedInput)
{
    std::vector<double> v = {9, 1, 5, 3, 7};
    EXPECT_EQ(percentile(v, 50), 5.0);
}

TEST(Percentile, SingleSample)
{
    EXPECT_EQ(percentile({42.0}, 0), 42.0);
    EXPECT_EQ(percentile({42.0}, 99), 42.0);
}

TEST(Percentile, EmptyPanics)
{
    EXPECT_THROW(percentile({}, 50), PanicError);
}

TEST(Percentile, OutOfRangePanics)
{
    EXPECT_THROW(percentile({1.0}, -1), PanicError);
    EXPECT_THROW(percentile({1.0}, 101), PanicError);
}

TEST(Percentile, MonotoneInPct)
{
    Rng rng(3);
    std::vector<double> v;
    for (int i = 0; i < 200; ++i)
        v.push_back(rng.nextDouble());
    double prev = percentile(v, 0);
    for (double p = 5; p <= 100; p += 5) {
        double cur = percentile(v, p);
        EXPECT_GE(cur, prev);
        prev = cur;
    }
}

TEST(LatencySample, BasicStats)
{
    LatencySample s;
    EXPECT_TRUE(s.empty());
    for (double x : {3.0, 1.0, 2.0})
        s.add(x);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_NEAR(s.mean(), 2.0, 1e-12);
    EXPECT_EQ(s.min(), 1.0);
    EXPECT_EQ(s.max(), 3.0);
    EXPECT_EQ(s.p(50), 2.0);
}

TEST(LatencySample, ClearResets)
{
    LatencySample s;
    s.add(1.0);
    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(Histogram, BucketsAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);   // bucket 0
    h.add(9.5);   // bucket 9
    h.add(-5.0);  // clamps to 0
    h.add(50.0);  // clamps to 9
    h.add(5.0);   // bucket 5
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucketHits(0), 2u);
    EXPECT_EQ(h.bucketHits(9), 2u);
    EXPECT_EQ(h.bucketHits(5), 1u);
    EXPECT_EQ(h.bucketHits(3), 0u);
}

TEST(Histogram, BucketBounds)
{
    Histogram h(0.0, 100.0, 4);
    EXPECT_EQ(h.bucketLow(0), 0.0);
    EXPECT_EQ(h.bucketLow(2), 50.0);
    EXPECT_EQ(h.bucketHigh(3), 100.0);
}

TEST(Histogram, InvalidConfigPanics)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), PanicError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), PanicError);
}

TEST(Histogram, RenderContainsCounts)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.25);
    h.add(0.75);
    h.add(0.80);
    std::string out = h.render();
    EXPECT_NE(out.find('#'), std::string::npos);
    EXPECT_NE(out.find('2'), std::string::npos);
}

TEST(Histogram, RenderEmpty)
{
    Histogram h(0.0, 1.0, 4);
    EXPECT_NE(h.render().find("empty"), std::string::npos);
}

} // namespace
} // namespace recperf
