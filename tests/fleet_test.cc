/**
 * @file
 * Tests for the fleet mix model (Figs 1 and 4).
 */

#include <gtest/gtest.h>

#include "core/logging.hh"
#include "fleet/fleet_mix.hh"
#include "machine/machine_spec.hh"

namespace recperf {
namespace {

TEST(FleetMix, SharesMustSumToOne)
{
    std::vector<FleetEntry> bad = {
        {"a", ModelClass::RMC1, 0.5, {}},
        {"b", ModelClass::Other, 0.6, {}},
    };
    EXPECT_THROW(FleetMix(std::move(bad)), PanicError);
}

TEST(FleetMix, NegativeShareRejected)
{
    std::vector<FleetEntry> bad = {
        {"a", ModelClass::RMC1, -0.5, {}},
        {"b", ModelClass::Other, 1.5, {}},
    };
    EXPECT_THROW(FleetMix(std::move(bad)), PanicError);
}

class ProductionFleet : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        mix_ = new FleetMix(FleetMix::productionDefault(broadwell()));
    }

    static void
    TearDownTestSuite()
    {
        delete mix_;
        mix_ = nullptr;
    }

    static FleetMix *mix_;
};

FleetMix *ProductionFleet::mix_ = nullptr;

TEST_F(ProductionFleet, Fig1RmcShare)
{
    // RMC1+RMC2+RMC3 consume 65% of AI inference cycles.
    EXPECT_NEAR(mix_->rmcShare(), 0.65, 1e-9);
}

TEST_F(ProductionFleet, Fig1RecommendationShare)
{
    // All recommendation >= 79%.
    EXPECT_GE(mix_->recommendationShare(), 0.79 - 1e-9);
}

TEST_F(ProductionFleet, ModelSharesSumToOne)
{
    double total = 0.0;
    for (const auto &[name, share] : mix_->modelShares())
        total += share;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(ProductionFleet, Fig4OperatorShares)
{
    auto shares = mix_->operatorShares();
    double fc = shares.recommendation[OpKind::FC];
    double sls = shares.recommendation[OpKind::SLS];
    double concat = shares.recommendation[OpKind::Concat];

    // Fig 4: FC + SLS + Concat comprise over 45% of all cycles, and
    // SLS alone is a sizeable slice (paper: ~15%; our zoo's RMC2 is
    // somewhat more SLS-bound, so we accept a wider band).
    EXPECT_GT(fc + sls + concat, 0.45);
    EXPECT_GT(sls, 0.08);
    EXPECT_LT(sls, 0.45);

    // Conv cycles exist but belong to non-recommendation models only.
    EXPECT_EQ(shares.recommendation.count(OpKind::Conv), 0u);
    EXPECT_GT(shares.nonRecommendation[OpKind::Conv], 0.0);
}

TEST_F(ProductionFleet, OperatorSharesSumToOne)
{
    auto shares = mix_->operatorShares();
    double total = 0.0;
    for (const auto &[kind, s] : shares.recommendation)
        total += s;
    for (const auto &[kind, s] : shares.nonRecommendation)
        total += s;
    EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST_F(ProductionFleet, SlsDwarfsConvAndRecurrent)
{
    // §II-B: SLS alone consumes several times the cycles of CNNs or
    // RNNs fleet-wide (paper: 4x and 20x).
    auto shares = mix_->operatorShares();
    double sls = shares.recommendation[OpKind::SLS];
    double conv = shares.nonRecommendation[OpKind::Conv];
    double rnn = shares.nonRecommendation[OpKind::Recurrent];
    EXPECT_GT(sls, conv);
    EXPECT_GT(sls, rnn);
}

} // namespace
} // namespace recperf
