/**
 * @file
 * Parallel-vs-serial bitwise-equality tests: every parallelized kernel
 * (FC GEMM, SparseLengthsSum, quantized SLS, BatchMatMul, dot
 * interaction, Conv2d, LSTM, full RecModel forward) must produce
 * outputs bitwise-identical to its 1-thread execution at every thread
 * count — the execution engine's determinism contract.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/rng.hh"
#include "core/thread_pool.hh"
#include "model/rec_model.hh"
#include "model/zoo.hh"
#include "ops/batch_matmul.hh"
#include "ops/conv.hh"
#include "ops/fully_connected.hh"
#include "ops/lstm.hh"
#include "ops/quantized_embedding.hh"
#include "ops/sparse_lengths_sum.hh"
#include "tensor/tensor.hh"

namespace recperf {
namespace {

const std::vector<int> kThreadCounts = {2, 3, 4, 8};

class ParallelOpsTest : public ::testing::Test
{
  protected:
    void TearDown() override { setGlobalThreadCount(0); }

    static ::testing::AssertionResult
    bitwiseEqual(const Tensor &a, const Tensor &b)
    {
        if (a.shape() != b.shape()) {
            return ::testing::AssertionFailure()
                << "shape mismatch " << shapeToString(a.shape())
                << " vs " << shapeToString(b.shape());
        }
        if (a.size() > 0 &&
            std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.size()) *
                            sizeof(float)) != 0) {
            for (int64_t i = 0; i < a.size(); ++i) {
                if (std::memcmp(&a.data()[i], &b.data()[i],
                                sizeof(float)) != 0) {
                    return ::testing::AssertionFailure()
                        << "first difference at flat index " << i
                        << ": " << a.data()[i] << " vs " << b.data()[i];
                }
            }
        }
        return ::testing::AssertionSuccess();
    }

    /**
     * Runs @p compute once per thread count and asserts the output is
     * bitwise-identical to the 1-thread result.
     */
    template <typename Fn>
    void
    expectThreadInvariant(Fn compute)
    {
        setGlobalThreadCount(1);
        Tensor serial = compute();
        for (int threads : kThreadCounts) {
            setGlobalThreadCount(threads);
            Tensor parallel = compute();
            EXPECT_TRUE(bitwiseEqual(serial, parallel))
                << "at " << threads << " threads";
        }
    }
};

TEST_F(ParallelOpsTest, GemmBtBitwise)
{
    Rng rng(11);
    // Deliberately awkward sizes: partial M panels, partial N/K blocks.
    for (auto [m, n, k] : {std::tuple<int64_t, int64_t, int64_t>{1, 1, 1},
                           {3, 5, 7},
                           {33, 31, 257},
                           {128, 64, 300},
                           {70, 130, 515}}) {
        Tensor a({m, k}), b({n, k});
        a.fillUniform(rng, -1.0f, 1.0f);
        b.fillUniform(rng, -1.0f, 1.0f);
        expectThreadInvariant([&] {
            Tensor c({m, n});
            gemmBt(a.data(), b.data(), c.data(), m, n, k,
                   /*accumulate=*/false);
            return c;
        });
        // Accumulate path on a non-zero C.
        Tensor seeded({m, n});
        seeded.fillUniform(rng, -1.0f, 1.0f);
        expectThreadInvariant([&] {
            Tensor c = seeded.reshaped(seeded.shape());
            gemmBt(a.data(), b.data(), c.data(), m, n, k,
                   /*accumulate=*/true);
            return c;
        });
    }
}

TEST_F(ParallelOpsTest, FullyConnectedBitwise)
{
    Rng rng(12);
    FullyConnected fc(96, 72, rng);
    Tensor x({65, 96});
    x.fillUniform(rng, -1.0f, 1.0f);
    expectThreadInvariant([&] { return fc.forward(x); });
}

TEST_F(ParallelOpsTest, SparseLengthsSumBitwise)
{
    Rng rng(13);
    EmbeddingTable table(1000, 48, rng);
    std::vector<int64_t> lengths, ids;
    for (int64_t slot = 0; slot < 77; ++slot) {
        int64_t len = static_cast<int64_t>(rng.nextBelow(31)); // incl. 0
        lengths.push_back(len);
        for (int64_t j = 0; j < len; ++j)
            ids.push_back(static_cast<int64_t>(rng.nextBelow(1000)));
    }
    for (SlsReduction red : {SlsReduction::Sum, SlsReduction::Mean}) {
        expectThreadInvariant(
            [&] { return table.forward(ids, lengths, red); });
    }
}

TEST_F(ParallelOpsTest, QuantizedSlsBitwise)
{
    Rng rng(14);
    EmbeddingTable source(500, 32, rng);
    QuantizedEmbeddingTable table(source);
    std::vector<int64_t> lengths, ids;
    for (int64_t slot = 0; slot < 64; ++slot) {
        int64_t len = static_cast<int64_t>(rng.nextBelow(20));
        lengths.push_back(len);
        for (int64_t j = 0; j < len; ++j)
            ids.push_back(static_cast<int64_t>(rng.nextBelow(500)));
    }
    expectThreadInvariant([&] { return table.forward(ids, lengths); });
}

TEST_F(ParallelOpsTest, BatchMatMulBitwise)
{
    Rng rng(15);
    // batch >= threads exercises the inter-op path; batch 1 exercises
    // the intra-op (row-parallel gemm) path.
    for (int64_t batch : {1ll, 2ll, 16ll}) {
        Tensor a({batch, 33, 129}), b({batch, 17, 129});
        a.fillUniform(rng, -1.0f, 1.0f);
        b.fillUniform(rng, -1.0f, 1.0f);
        expectThreadInvariant([&] { return batchMatMulBt(a, b); });
    }
}

TEST_F(ParallelOpsTest, DotInteractionBitwise)
{
    Rng rng(16);
    Tensor features({67, 9, 32});
    features.fillUniform(rng, -1.0f, 1.0f);
    expectThreadInvariant([&] { return dotInteraction(features); });
}

TEST_F(ParallelOpsTest, Conv2dBitwise)
{
    Rng rng(17);
    Conv2d conv(3, 8, 3, /*stride=*/1, /*padding=*/1, rng);
    Tensor x({2, 3, 9, 9});
    x.fillUniform(rng, -1.0f, 1.0f);
    expectThreadInvariant([&] { return conv.forward(x); });
}

TEST_F(ParallelOpsTest, LstmSequenceBitwise)
{
    Rng rng(18);
    LstmCell cell(24, 40, rng);
    Tensor xs({6, 33, 24});
    xs.fillUniform(rng, -1.0f, 1.0f);
    expectThreadInvariant([&] {
        LstmState s = cell.forwardSequence(xs, cell.initialState(33));
        // Fold h and c into one tensor for the comparison.
        Tensor both({2, 33, 40});
        std::memcpy(both.data(), s.h.data(),
                    static_cast<size_t>(s.h.size()) * sizeof(float));
        std::memcpy(both.data() + s.h.size(), s.c.data(),
                    static_cast<size_t>(s.c.size()) * sizeof(float));
        return both;
    });
}

TEST_F(ParallelOpsTest, RecModelForwardBitwise)
{
    // Full inter-op + intra-op path: bottom FC stack, fanned table
    // lookups, interaction, top FC stack.
    Rng model_rng(19);
    ModelConfig cfg = rmc1Small().functionalScale(2048);
    RecModel model(cfg, model_rng);
    Rng input_rng(20);
    ModelInput input = model.randomInput(32, input_rng);
    expectThreadInvariant([&] { return model.forward(input); });
}

TEST_F(ParallelOpsTest, RecModelDotInteractionBitwise)
{
    Rng model_rng(21);
    ModelConfig cfg = rmc3Dot().functionalScale(1024);
    RecModel model(cfg, model_rng);
    Rng input_rng(22);
    ModelInput input = model.randomInput(16, input_rng);
    expectThreadInvariant([&] { return model.forward(input); });
}

} // namespace
} // namespace recperf
