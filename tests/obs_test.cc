/**
 * @file
 * Tests for the observability layer (src/obs): metrics registry
 * merging across thread shards, HDR histogram accuracy against the
 * exact LatencySample statistics, Chrome trace-event JSON
 * well-formedness and span nesting, virtual-time determinism across
 * thread counts, and the near-zero cost of the disabled path.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/rng.hh"
#include "core/stats.hh"
#include "core/thread_pool.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "obs/hw_counters.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serving/server.hh"

namespace recperf {
namespace {

// --- Minimal JSON validator -------------------------------------------
//
// Enough of a recursive-descent parser to establish that the emitted
// trace/metrics documents are structurally valid JSON (objects,
// arrays, strings with escapes, numbers, literals). Returns false on
// the first syntax error.

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    void skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    bool literal(const char *word)
    {
        size_t n = std::string(word).size();
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool string()
    {
        if (pos_ >= s_.size() || s_[pos_] != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool number()
    {
        size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool value()
    {
        if (pos_ >= s_.size())
            return false;
        char c = s_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }

    bool object()
    {
        ++pos_; // '{'
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            break;
        }
        if (pos_ >= s_.size() || s_[pos_] != '}')
            return false;
        ++pos_;
        return true;
    }

    bool array()
    {
        ++pos_; // '['
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            break;
        }
        if (pos_ >= s_.size() || s_[pos_] != ']')
            return false;
        ++pos_;
        return true;
    }

    const std::string &s_;
    size_t pos_ = 0;
};

// --- Metrics registry --------------------------------------------------

TEST(Metrics, CountersMergeAcrossThreadShards)
{
    int original = globalThreadCount();
    setGlobalThreadCount(4);

    obs::MetricsRegistry reg;
    obs::Counter items = reg.counter("test.items");
    obs::LatencyHistogram lat = reg.histogram("test.latency");
    constexpr int64_t kN = 20000;
    parallelFor(0, kN, 64, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            items.inc();
            lat.record(1e-6 * static_cast<double>(1 + i % 100));
        }
    });
    setGlobalThreadCount(original);

    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("test.items"), static_cast<uint64_t>(kN));
    const obs::HistogramSnapshot *h = snap.histogram("test.latency");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, static_cast<uint64_t>(kN));
    EXPECT_NEAR(h->min, 1e-6, 1e-9);
    EXPECT_NEAR(h->max, 100e-6, 1e-9);
}

TEST(Metrics, InterningIsIdempotentAndResetSurvives)
{
    obs::MetricsRegistry reg;
    reg.counter("a").add(3);
    reg.counter("a").add(4);
    reg.gauge("g").set(2.5);
    EXPECT_EQ(reg.snapshot().counter("a"), 7u);
    EXPECT_EQ(reg.snapshot().gauge("g"), 2.5);

    reg.reset();
    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("a"), 0u); // registration survives, value zeroed
    EXPECT_EQ(snap.gauge("g"), 0.0);
    reg.counter("a").inc();
    EXPECT_EQ(reg.snapshot().counter("a"), 1u);
}

TEST(Metrics, HistogramPercentilesTrackExactSample)
{
    // Log-uniform latencies over four decades: every percentile of the
    // HDR histogram must stay within the documented ~3% bucket error
    // (we allow 5%) of the exact rank statistic.
    obs::MetricsRegistry reg;
    obs::LatencyHistogram hist = reg.histogram("lat");
    LatencySample exact;
    Rng rng(2020);
    for (int i = 0; i < 20000; ++i) {
        double v = std::pow(10.0, -6.0 + 4.0 * rng.nextDouble());
        hist.record(v);
        exact.add(v);
    }
    obs::MetricsSnapshot snap = reg.snapshot();
    const obs::HistogramSnapshot *h = snap.histogram("lat");
    ASSERT_NE(h, nullptr);
    for (double pct : {10.0, 50.0, 90.0, 95.0, 99.0}) {
        double approx = h->percentile(pct);
        double truth = exact.p(pct);
        EXPECT_NEAR(approx / truth, 1.0, 0.05)
            << "p" << pct << ": " << approx << " vs exact " << truth;
    }
    EXPECT_NEAR(h->mean(), exact.mean(), 0.01 * exact.mean());
}

TEST(Metrics, BucketRoundTripStaysWithinHalfSubBucket)
{
    for (double v : {2e-9, 1e-7, 3.7e-6, 1e-4, 0.42, 17.0}) {
        size_t i = obs::LatencyHistogram::bucketIndex(v);
        double mid = obs::LatencyHistogram::bucketMidpoint(i);
        EXPECT_NEAR(mid / v, 1.0, 1.0 / 16.0)
            << "value " << v << " bucket " << i;
    }
}

TEST(Metrics, EmptyHistogramReportsZeroesEverywhere)
{
    obs::MetricsRegistry reg;
    (void)reg.histogram("never.recorded");
    obs::MetricsSnapshot snap = reg.snapshot();
    const obs::HistogramSnapshot *h = snap.histogram("never.recorded");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 0u);
    EXPECT_DOUBLE_EQ(h->mean(), 0.0);
    for (double pct : {0.0, 50.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(h->percentile(pct), 0.0) << "p" << pct;
}

TEST(Metrics, SingleSampleHistogramPinsEveryPercentile)
{
    obs::MetricsRegistry reg;
    obs::LatencyHistogram hist = reg.histogram("one");
    hist.record(3.7e-4);
    obs::MetricsSnapshot snap = reg.snapshot();
    const obs::HistogramSnapshot *h = snap.histogram("one");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 1u);
    // With one sample min == max == the sample; percentiles clamp to
    // that range instead of reporting a bucket midpoint.
    for (double pct : {1.0, 50.0, 99.0, 99.9})
        EXPECT_DOUBLE_EQ(h->percentile(pct), 3.7e-4) << "p" << pct;
    EXPECT_DOUBLE_EQ(h->min, 3.7e-4);
    EXPECT_DOUBLE_EQ(h->max, 3.7e-4);
}

TEST(Metrics, AboveTopBucketValuesClampToLastBucket)
{
    // 2^40 ns (~18 min) is the histogram's top octave; an hour-long
    // "latency" must land in the last bucket, not index out of range.
    size_t top = obs::LatencyHistogram::bucketIndex(3600.0);
    EXPECT_EQ(top, obs::LatencyHistogram::kNumBuckets - 1);

    obs::MetricsRegistry reg;
    obs::LatencyHistogram hist = reg.histogram("huge");
    hist.record(3600.0);
    hist.record(7200.0);
    obs::MetricsSnapshot snap = reg.snapshot();
    const obs::HistogramSnapshot *h = snap.histogram("huge");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 2u);
    // Percentiles clamp to the recorded [min, max], so the saturated
    // bucket midpoint never exaggerates past the true maximum.
    EXPECT_LE(h->percentile(99.0), 7200.0);
    EXPECT_GE(h->percentile(1.0), 3600.0);
}

TEST(Metrics, NonFiniteAndNegativeSamplesAreSanitized)
{
    obs::MetricsRegistry reg;
    obs::LatencyHistogram hist = reg.histogram("dirty");
    hist.record(std::nan(""));
    hist.record(-1.0);
    hist.record(std::numeric_limits<double>::infinity());
    hist.record(2e-6);
    obs::MetricsSnapshot snap = reg.snapshot();
    const obs::HistogramSnapshot *h = snap.histogram("dirty");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 4u);
    // NaN/negative collapse to 0 instead of poisoning sum/min/max;
    // +inf saturates into the top bucket rather than breaking mean().
    EXPECT_DOUBLE_EQ(h->min, 0.0);
    EXPECT_TRUE(std::isfinite(h->mean()));
    EXPECT_TRUE(std::isfinite(h->percentile(99.0)));
}

TEST(Metrics, JsonAndTableAreWellFormed)
{
    obs::MetricsRegistry reg;
    reg.counter("c.one").add(42);
    reg.gauge("g\"quoted").set(1.5);
    reg.histogram("h.lat").record(3e-6);
    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_TRUE(JsonChecker(snap.toJson()).valid()) << snap.toJson();
    EXPECT_NE(snap.table().find("c.one"), std::string::npos);
}

// --- Tracer ------------------------------------------------------------

TEST(Trace, DisabledPathEmitsNothing)
{
    obs::Tracer tracer;
    tracer.span("cat", "ignored", 0.0, 1.0, 0);
    tracer.instant("cat", "ignored", 0.5, 0);
    tracer.counter("cat", "ignored", 0.5, 0, 1.0);
    { obs::Tracer::Scope scope(tracer, "cat", "ignored"); }
    EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(Trace, DisabledScopeIsCheap)
{
    // The off-by-default contract: a disabled emission site costs one
    // relaxed load and a branch. 1M constructions in well under a
    // second leaves orders of magnitude of slack on any CI machine.
    obs::Tracer tracer;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 1000000; ++i)
        obs::Tracer::Scope scope(tracer, "op", "noop");
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    EXPECT_LT(elapsed, 0.5);
}

TEST(Trace, JsonIsWellFormedAndOrdered)
{
    obs::Tracer tracer;
    tracer.setEnabled(true);
    tracer.nameLane(0, "queue");
    tracer.nameLane(1, "worker \"0\"");
    tracer.span("serve", "batch", 1e-3, 2e-3, 1, {{"items", "16"}});
    tracer.span("op", "FC", 1e-3, 1.5e-3, 1, {{"kind", "FC"}});
    tracer.instant("serve", "shed", 0.5e-3, 0);
    tracer.counter("serve", "queue_depth", 1e-3, 0, 3.0);
    tracer.setEnabled(false);

    std::vector<obs::TraceEvent> events = tracer.snapshot();
    ASSERT_EQ(events.size(), 4u);
    for (size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].tsUs, events[i].tsUs);

    EXPECT_TRUE(JsonChecker(tracer.toJson()).valid()) << tracer.toJson();
}

TEST(Trace, VirtualSpansNestPerLane)
{
    // Run a small serving simulation with tracing on and check the
    // stack discipline of virtual-lane spans: within each lane,
    // every span must lie inside the enclosing open span.
    obs::Tracer &tracer = obs::Tracer::global();
    tracer.clear();
    tracer.setEnabled(true);
    ServerOptions opts;
    opts.numWorkers = 2;
    opts.maxBatch = 8;
    opts.slaSeconds = 0.01;
    Server server(broadwell(), rmc1Small(), TimerOptions{}, opts);
    (void)server.runOpenLoop(2000.0, 400);
    tracer.setEnabled(false);

    std::vector<obs::TraceEvent> events = tracer.snapshot();
    ASSERT_FALSE(events.empty());

    std::map<uint32_t, std::vector<const obs::TraceEvent *>> lanes;
    for (const obs::TraceEvent &ev : events) {
        if (ev.ph == 'X' && ev.tid < obs::Tracer::kWallTidBase)
            lanes[ev.tid].push_back(&ev);
    }
    ASSERT_FALSE(lanes.empty());
    constexpr double kSlackUs = 1e-3; // FP rounding in us conversions
    for (const auto &[tid, spans] : lanes) {
        std::vector<const obs::TraceEvent *> stack;
        for (const obs::TraceEvent *ev : spans) {
            while (!stack.empty() &&
                   ev->tsUs >=
                       stack.back()->tsUs + stack.back()->durUs - kSlackUs)
                stack.pop_back();
            if (!stack.empty()) {
                EXPECT_LE(ev->tsUs + ev->durUs,
                          stack.back()->tsUs + stack.back()->durUs +
                              kSlackUs)
                    << ev->name << " escapes " << stack.back()->name
                    << " on lane " << tid;
            }
            stack.push_back(ev);
        }
    }
    tracer.clear();
}

TEST(Trace, OpSpansTileTheirBatchSpan)
{
    // Acceptance invariant: per-op spans must sum to the enclosing
    // batch span within 1%.
    obs::Tracer &tracer = obs::Tracer::global();
    tracer.clear();
    tracer.setEnabled(true);
    ServerOptions opts;
    opts.numWorkers = 1;
    opts.maxBatch = 8;
    opts.slaSeconds = 0.01;
    Server server(broadwell(), rmc2Small(), TimerOptions{}, opts);
    (void)server.runOpenLoop(1000.0, 200);
    tracer.setEnabled(false);

    double batch_us = 0.0, op_us = 0.0;
    size_t batches = 0;
    for (const obs::TraceEvent &ev : tracer.snapshot()) {
        if (ev.ph != 'X')
            continue;
        if (std::string(ev.cat) == "serve" && ev.name == "batch") {
            batch_us += ev.durUs;
            ++batches;
        } else if (std::string(ev.cat) == "op") {
            op_us += ev.durUs;
        }
    }
    ASSERT_GT(batches, 0u);
    ASSERT_GT(op_us, 0.0);
    EXPECT_NEAR(op_us / batch_us, 1.0, 0.01);
    tracer.clear();
}

std::vector<obs::TraceEvent>
virtualServeTrace(int threads)
{
    int original = globalThreadCount();
    setGlobalThreadCount(threads);
    obs::Tracer &tracer = obs::Tracer::global();
    tracer.clear();
    tracer.setEnabled(true);
    ServerOptions opts;
    opts.numWorkers = 2;
    opts.maxBatch = 8;
    opts.slaSeconds = 0.01;
    opts.jitterSigma = 0.05;
    Server server(broadwell(), rmc1Small(), TimerOptions{}, opts);
    (void)server.runOpenLoop(3000.0, 300);
    tracer.setEnabled(false);
    setGlobalThreadCount(original);

    std::vector<obs::TraceEvent> virtual_events;
    for (const obs::TraceEvent &ev : tracer.snapshot()) {
        if (ev.tid < obs::Tracer::kWallTidBase)
            virtual_events.push_back(ev);
    }
    tracer.clear();
    return virtual_events;
}

TEST(Trace, VirtualTimeTraceIsDeterministicAcrossThreadCounts)
{
    std::vector<obs::TraceEvent> one = virtualServeTrace(1);
    std::vector<obs::TraceEvent> four = virtualServeTrace(4);
    ASSERT_FALSE(one.empty());
    ASSERT_EQ(one.size(), four.size());
    for (size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one[i].name, four[i].name) << "event " << i;
        EXPECT_EQ(one[i].tid, four[i].tid) << "event " << i;
        EXPECT_EQ(one[i].tsUs, four[i].tsUs) << "event " << i;
        EXPECT_EQ(one[i].durUs, four[i].durUs) << "event " << i;
    }
}

std::vector<obs::TraceEvent>
counterServeTrace(int threads)
{
    int original = globalThreadCount();
    setGlobalThreadCount(threads);
    obs::Tracer &tracer = obs::Tracer::global();
    obs::HwTelemetry &telem = obs::HwTelemetry::global();
    tracer.clear();
    telem.reset();
    tracer.setEnabled(true);
    telem.setEnabled(true);
    ServerOptions opts;
    opts.numWorkers = 2;
    opts.maxBatch = 8;
    opts.slaSeconds = 0.01;
    Server server(broadwell(), rmc1Small(), TimerOptions{}, opts);
    (void)server.runOpenLoop(3000.0, 300);
    telem.setEnabled(false);
    tracer.setEnabled(false);
    setGlobalThreadCount(original);

    std::vector<obs::TraceEvent> counter_events;
    for (const obs::TraceEvent &ev : tracer.snapshot()) {
        if (ev.ph == 'C' && ev.tid < obs::Tracer::kWallTidBase)
            counter_events.push_back(ev);
    }
    tracer.clear();
    telem.reset();
    return counter_events;
}

TEST(Trace, CounterTraceIsDeterministicAcrossThreadCounts)
{
    // Acceptance: hardware-counter events ride the virtual clock, so
    // the emitted series -- names, lanes, timestamps, and values --
    // must be bit-identical whether the host uses 1 thread or 4.
    std::vector<obs::TraceEvent> one = counterServeTrace(1);
    std::vector<obs::TraceEvent> four = counterServeTrace(4);
    ASSERT_FALSE(one.empty());
    ASSERT_EQ(one.size(), four.size());
    double prev_ts = 0.0;
    std::map<std::string, double> last_value;
    for (size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one[i].name, four[i].name) << "event " << i;
        EXPECT_EQ(one[i].tid, four[i].tid) << "event " << i;
        EXPECT_EQ(one[i].tsUs, four[i].tsUs) << "event " << i;
        ASSERT_EQ(one[i].args.size(), 1u);
        ASSERT_EQ(four[i].args.size(), 1u);
        EXPECT_EQ(one[i].args[0].second, four[i].args[0].second)
            << "event " << i << " (" << one[i].name << ")";

        // Per-track invariants check_trace.py enforces on artifacts:
        // monotone timestamps, and non-decreasing values for the
        // cumulative tracks (MPKI is a ratio gauge, free to dip).
        EXPECT_GE(one[i].tsUs, prev_ts) << "event " << i;
        prev_ts = one[i].tsUs;
        if (one[i].name.find("mpki") == std::string::npos) {
            double value = std::stod(one[i].args[0].second);
            auto it = last_value.find(one[i].name);
            if (it != last_value.end())
                EXPECT_GE(value, it->second) << one[i].name;
            last_value[one[i].name] = value;
        }
    }
}

TEST(Trace, WallClockScopesLandOnWallLanes)
{
    obs::Tracer &tracer = obs::Tracer::global();
    tracer.clear();
    tracer.setEnabled(true);
    { obs::Tracer::Scope scope(tracer, "op", "unit-test-scope"); }
    tracer.setEnabled(false);
    bool found = false;
    for (const obs::TraceEvent &ev : tracer.snapshot()) {
        if (ev.name == "unit-test-scope") {
            found = true;
            EXPECT_GE(ev.tid, obs::Tracer::kWallTidBase);
            EXPECT_GE(ev.durUs, 0.0);
        }
    }
    EXPECT_TRUE(found);
    tracer.clear();
}

} // namespace
} // namespace recperf
