/**
 * @file
 * Unit and property tests for the FullyConnected operator, validating
 * the blocked GEMM against the naive reference over a shape grid.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/logging.hh"
#include "core/rng.hh"
#include "ops/fully_connected.hh"
#include "ops/reference.hh"

namespace recperf {
namespace {

TEST(FullyConnected, RejectsBadDims)
{
    EXPECT_THROW(FullyConnected(0, 4), PanicError);
    EXPECT_THROW(FullyConnected(4, 0), PanicError);
}

TEST(FullyConnected, ShapesAndParams)
{
    FullyConnected fc(16, 8);
    EXPECT_EQ(fc.inFeatures(), 16);
    EXPECT_EQ(fc.outFeatures(), 8);
    EXPECT_EQ(fc.weight().shape(), (Shape{8, 16}));
    EXPECT_EQ(fc.bias().shape(), (Shape{8}));
    EXPECT_EQ(fc.paramCount(), 16 * 8 + 8);
}

TEST(FullyConnected, ZeroWeightsGiveBias)
{
    FullyConnected fc(4, 3);
    fc.bias().fill(2.5f);
    Tensor x({2, 4}, 1.0f);
    Tensor y = fc.forward(x);
    EXPECT_EQ(y.shape(), (Shape{2, 3}));
    for (int64_t i = 0; i < y.size(); ++i)
        EXPECT_EQ(y.at(i), 2.5f);
}

TEST(FullyConnected, IdentityWeights)
{
    FullyConnected fc(3, 3);
    for (int64_t i = 0; i < 3; ++i)
        fc.weight().at(i, i) = 1.0f;
    Tensor x({1, 3});
    x.at(static_cast<int64_t>(0)) = 1.0f;
    x.at(static_cast<int64_t>(1)) = 2.0f;
    x.at(static_cast<int64_t>(2)) = 3.0f;
    Tensor y = fc.forward(x);
    EXPECT_FLOAT_EQ(y.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(y.at(0, 1), 2.0f);
    EXPECT_FLOAT_EQ(y.at(0, 2), 3.0f);
}

TEST(FullyConnected, InputShapeValidation)
{
    FullyConnected fc(4, 2);
    EXPECT_THROW(fc.forward(Tensor({3})), PanicError);     // rank 1
    EXPECT_THROW(fc.forward(Tensor({2, 5})), PanicError);  // wrong width
}

TEST(FullyConnected, HeInitializationScale)
{
    Rng rng(5);
    FullyConnected fc(1024, 256, rng);
    double sq = 0.0;
    const Tensor &w = fc.weight();
    for (int64_t i = 0; i < w.size(); ++i)
        sq += static_cast<double>(w.at(i)) * w.at(i);
    double var = sq / static_cast<double>(w.size());
    EXPECT_NEAR(var, 2.0 / 1024.0, 0.3 * 2.0 / 1024.0);
}

TEST(FullyConnectedCost, MatchesClosedForm)
{
    OpCost c = FullyConnected::cost(8, 100, 50);
    EXPECT_DOUBLE_EQ(c.flops, 2.0 * 8 * 100 * 50 + 8 * 50);
    EXPECT_DOUBLE_EQ(c.bytesRead, 4.0 * (100 * 50 + 50 + 8 * 100));
    EXPECT_DOUBLE_EQ(c.bytesWritten, 4.0 * 8 * 50);
}

TEST(FullyConnectedCost, IntensityGrowsWithBatch)
{
    // Weight reuse across the batch raises FLOPs/byte — the mechanism
    // that turns FC compute-bound at large batch (paper §V).
    double prev = 0.0;
    for (int64_t batch : {1, 4, 16, 64, 256}) {
        double intensity = FullyConnected::cost(batch, 512, 512).intensity();
        EXPECT_GT(intensity, prev);
        prev = intensity;
    }
}

TEST(GemmBt, AccumulateFlag)
{
    // C = A * B^T with accumulate adds onto existing contents.
    const float a[2] = {1.0f, 2.0f};    // 1x2
    const float b[2] = {3.0f, 4.0f};    // 1x2 (B^T operand)
    float c[1] = {10.0f};
    gemmBt(a, b, c, 1, 1, 2, /*accumulate=*/true);
    EXPECT_FLOAT_EQ(c[0], 10.0f + 11.0f);
    gemmBt(a, b, c, 1, 1, 2, /*accumulate=*/false);
    EXPECT_FLOAT_EQ(c[0], 11.0f);
}

/** Property sweep: blocked GEMM == naive reference over a shape grid. */
class FcShapeSweep : public ::testing::TestWithParam<
    std::tuple<int64_t, int64_t, int64_t>>
{
};

TEST_P(FcShapeSweep, MatchesReference)
{
    auto [batch, in, out] = GetParam();
    Rng rng(static_cast<uint64_t>(batch * 1'000'003 + in * 1'009 + out));
    FullyConnected fc(in, out, rng);
    fc.bias().fillUniform(rng, -1.0f, 1.0f);

    Tensor x({batch, in});
    x.fillUniform(rng, -1.0f, 1.0f);

    Tensor got = fc.forward(x);
    Tensor want = reference::fullyConnected(x, fc.weight(), fc.bias());
    EXPECT_TRUE(got.allClose(want, 1e-4f))
        << "mismatch at batch=" << batch << " in=" << in << " out=" << out;
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, FcShapeSweep,
    ::testing::Combine(
        ::testing::Values<int64_t>(1, 3, 16, 33),
        ::testing::Values<int64_t>(1, 7, 32, 129, 300),
        ::testing::Values<int64_t>(1, 5, 32, 257)));

/** Odd, non-power-of-two, non-cache-line-aligned widths (§III-B). */
class FcOddWidths : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(FcOddWidths, MatchesReference)
{
    int64_t width = GetParam();
    Rng rng(static_cast<uint64_t>(width));
    FullyConnected fc(width, width, rng);
    Tensor x({5, width});
    x.fillUniform(rng, -2.0f, 2.0f);
    Tensor got = fc.forward(x);
    Tensor want = reference::fullyConnected(x, fc.weight(), fc.bias());
    EXPECT_TRUE(got.allClose(want, 1e-4f)) << "width=" << width;
}

INSTANTIATE_TEST_SUITE_P(OddWidths, FcOddWidths,
                         ::testing::Values<int64_t>(13, 63, 65, 100, 255));

} // namespace
} // namespace recperf
