/**
 * @file
 * Unit and property tests for BatchMatMul and the dot-product feature
 * interaction.
 */

#include <gtest/gtest.h>

#include "core/logging.hh"
#include "core/rng.hh"
#include "ops/batch_matmul.hh"
#include "ops/reference.hh"

namespace recperf {
namespace {

TEST(BatchMatMul, ShapeValidation)
{
    Tensor a({2, 3, 4}), b({2, 5, 4});
    EXPECT_EQ(batchMatMulBt(a, b).shape(), (Shape{2, 3, 5}));

    Tensor bad_batch({3, 3, 4});
    EXPECT_THROW(batchMatMulBt(a, bad_batch), PanicError);
    Tensor bad_k({2, 5, 7});
    EXPECT_THROW(batchMatMulBt(a, bad_k), PanicError);
    Tensor rank2({2, 3});
    EXPECT_THROW(batchMatMulBt(a, rank2), PanicError);
}

TEST(BatchMatMul, TinyKnownCase)
{
    // A = [[1, 2]], B = [[3, 4]] per batch: C = [1*3 + 2*4] = [11].
    Tensor a({1, 1, 2}), b({1, 1, 2});
    a.at(static_cast<int64_t>(0)) = 1.0f;
    a.at(static_cast<int64_t>(1)) = 2.0f;
    b.at(static_cast<int64_t>(0)) = 3.0f;
    b.at(static_cast<int64_t>(1)) = 4.0f;
    Tensor c = batchMatMulBt(a, b);
    EXPECT_FLOAT_EQ(c.at(static_cast<int64_t>(0)), 11.0f);
}

TEST(BatchMatMul, IndependentBatches)
{
    Rng rng(3);
    Tensor a({2, 2, 3}), b({2, 2, 3});
    a.fillUniform(rng, -1.0f, 1.0f);
    b.fillUniform(rng, -1.0f, 1.0f);
    Tensor c = batchMatMulBt(a, b);

    // Batch 1 result must not depend on batch 0 contents.
    Tensor a2 = a.reshaped(a.shape());
    for (int64_t i = 0; i < 6; ++i)
        a2.at(i) = 99.0f; // clobber batch 0
    Tensor c2 = batchMatMulBt(a2, b);
    for (int64_t i = 4; i < 8; ++i)
        EXPECT_FLOAT_EQ(c.at(i), c2.at(i));
}

TEST(DotInteraction, PairCount)
{
    Tensor z({3, 5, 8});
    Tensor out = dotInteraction(z);
    EXPECT_EQ(out.shape(), (Shape{3, 10})); // C(5,2) = 10
}

TEST(DotInteraction, KnownPairwiseDots)
{
    // Features: f0 = (1,0), f1 = (0,1), f2 = (1,1).
    Tensor z({1, 3, 2});
    float vals[] = {1, 0, 0, 1, 1, 1};
    for (int64_t i = 0; i < 6; ++i)
        z.at(i) = vals[i];
    Tensor out = dotInteraction(z);
    // Order: (f1,f0), (f2,f0), (f2,f1).
    EXPECT_FLOAT_EQ(out.at(static_cast<int64_t>(0)), 0.0f);
    EXPECT_FLOAT_EQ(out.at(static_cast<int64_t>(1)), 1.0f);
    EXPECT_FLOAT_EQ(out.at(static_cast<int64_t>(2)), 1.0f);
}

TEST(DotInteraction, SymmetricUnderFeatureScaling)
{
    Rng rng(7);
    Tensor z({2, 4, 8});
    z.fillUniform(rng, -1.0f, 1.0f);
    Tensor base = dotInteraction(z);

    // Scaling all features by 2 scales every dot product by 4.
    Tensor scaled = z.reshaped(z.shape());
    for (int64_t i = 0; i < scaled.size(); ++i)
        scaled.at(i) *= 2.0f;
    Tensor quad = dotInteraction(scaled);
    for (int64_t i = 0; i < base.size(); ++i)
        EXPECT_NEAR(quad.at(i), 4.0f * base.at(i), 1e-4f);
}

TEST(BatchMatMulCost, ClosedForm)
{
    OpCost c = batchMatMulCost(2, 3, 5, 7);
    EXPECT_DOUBLE_EQ(c.flops, 2.0 * 2 * 3 * 5 * 7);
    EXPECT_DOUBLE_EQ(c.bytesRead, 4.0 * 2 * (3 * 7 + 5 * 7));
    EXPECT_DOUBLE_EQ(c.bytesWritten, 4.0 * 2 * 3 * 5);
}

/** Property sweep: batched GEMM equals the naive reference. */
class BmmSweep : public ::testing::TestWithParam<
    std::tuple<int64_t, int64_t, int64_t, int64_t>>
{
};

TEST_P(BmmSweep, MatchesReference)
{
    auto [batch, m, n, k] = GetParam();
    Rng rng(static_cast<uint64_t>(batch * 73 + m * 31 + n * 7 + k));
    Tensor a({batch, m, k}), b({batch, n, k});
    a.fillUniform(rng, -1.0f, 1.0f);
    b.fillUniform(rng, -1.0f, 1.0f);
    Tensor got = batchMatMulBt(a, b);
    Tensor want = reference::batchMatMulBt(a, b);
    EXPECT_TRUE(got.allClose(want, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BmmSweep,
    ::testing::Combine(::testing::Values<int64_t>(1, 4),
                       ::testing::Values<int64_t>(1, 9, 33),
                       ::testing::Values<int64_t>(1, 8, 17),
                       ::testing::Values<int64_t>(1, 31, 64)));

} // namespace
} // namespace recperf
