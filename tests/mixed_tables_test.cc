/**
 * @file
 * Tests for heterogeneous per-table embedding sizes (§II-C: single
 * tables span tens of MB to several GB within one model).
 */

#include <gtest/gtest.h>

#include "core/logging.hh"
#include "core/rng.hh"
#include "machine/machine_spec.hh"
#include "model/rec_model.hh"
#include "model/zoo.hh"
#include "serving/distributed.hh"
#include "timing/model_timer.hh"

namespace recperf {
namespace {

ModelConfig
tinyMixed()
{
    ModelConfig m;
    m.name = "tiny-mixed";
    m.modelClass = ModelClass::RMC2;
    m.denseFeatures = 8;
    m.bottomMlp = {8};
    m.emb = {3, 0, 4, 5};
    m.emb.tableRows = {16, 64, 256};
    m.topMlp = {8, 1};
    m.validate();
    return m;
}

TEST(MixedTables, RowsOfHonorsOverride)
{
    ModelConfig m = tinyMixed();
    EXPECT_EQ(m.emb.rowsOf(0), 16);
    EXPECT_EQ(m.emb.rowsOf(2), 256);
    EXPECT_EQ(m.emb.totalRows(), 16 + 64 + 256);
    EXPECT_THROW(m.emb.rowsOf(3), PanicError);
}

TEST(MixedTables, UniformFallback)
{
    EmbeddingConfig e{4, 1000, 32, 80};
    EXPECT_EQ(e.rowsOf(0), 1000);
    EXPECT_EQ(e.totalRows(), 4000);
}

TEST(MixedTables, ValidateChecksSizeMatch)
{
    ModelConfig m = tinyMixed();
    m.emb.tableRows.pop_back();
    EXPECT_THROW(m.validate(), PanicError);
    m = tinyMixed();
    m.emb.tableRows[1] = 0;
    EXPECT_THROW(m.validate(), PanicError);
}

TEST(MixedTables, StorageUsesActualRows)
{
    ModelConfig m = tinyMixed();
    EXPECT_EQ(m.embParamCount(), (16 + 64 + 256) * 4);
    EXPECT_EQ(m.embStorageBytes(), (16 + 64 + 256) * 16);
}

TEST(MixedTables, FunctionalModelAllocatesPerTable)
{
    Rng rng(1);
    RecModel model(tinyMixed(), rng);
    EXPECT_EQ(model.tables()[0].rows(), 16);
    EXPECT_EQ(model.tables()[2].rows(), 256);
    ModelInput input = model.randomInput(4, rng);
    for (size_t t = 0; t < 3; ++t) {
        for (int64_t id : input.sparse[t].ids)
            EXPECT_LT(id, model.tables()[t].rows());
    }
    Tensor ctr = model.forward(input);
    EXPECT_EQ(ctr.shape(), (Shape{4, 1}));
}

TEST(MixedTables, FunctionalScaleCapsOverrides)
{
    ModelConfig m = tinyMixed().functionalScale(32);
    EXPECT_EQ(m.emb.tableRows, (std::vector<int64_t>{16, 32, 32}));
    EXPECT_NE(m.name, tinyMixed().name);
}

TEST(MixedTables, ZooMixedVariantValid)
{
    ModelConfig m = rmc2Mixed();
    EXPECT_EQ(static_cast<int64_t>(m.emb.tableRows.size()),
              m.emb.numTables);
    // Spread spans two orders of magnitude; aggregate near RMC2-small.
    int64_t lo = m.emb.tableRows.front(), hi = lo;
    for (int64_t rows : m.emb.tableRows) {
        lo = std::min(lo, rows);
        hi = std::max(hi, rows);
    }
    EXPECT_GE(hi / lo, 100);
    double gb = m.embStorageBytes() / 1e9;
    EXPECT_GT(gb, 5.0);
    EXPECT_LT(gb, 20.0);
}

TEST(MixedTables, TimerRunsMixedModel)
{
    TimerOptions opts;
    opts.batch = 4;
    ModelTimer timer(broadwell(), rmc2Mixed(), opts);
    ModelTiming t = timer.steadyState(5, 5);
    EXPECT_GT(t.totalSeconds(), 0.0);
    EXPECT_GT(t.fractionByKind(OpKind::SLS), 0.4);
}

TEST(MixedTables, ShardingSpreadsMixedSizes)
{
    // Round-robin dealing keeps per-shard row totals within a small
    // factor of each other despite the 128x table-size spread.
    TimerOptions opts;
    opts.batch = 4;
    ShardedInference sim(broadwell(), rmc2Mixed(), 4, NetworkConfig{},
                         opts);
    ShardedResult r =
        sim.run(RunOptions{.warmupIters = 3, .measureIters = 3})
            .breakdown();
    EXPECT_GT(r.totalSeconds, 0.0);
    EXPECT_GT(r.networkBytes, 0.0);
}

} // namespace
} // namespace recperf
