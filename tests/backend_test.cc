/**
 * @file
 * Backend-parity suite for the pluggable ComputeBackend API.
 *
 * The refactor's contract (DESIGN.md §16): CpuBackend is the
 * pre-backend code moved verbatim, so the default path must stay
 * bitwise-identical — both the functional plane (eval checksums, here
 * as golden FNV-1a constants at the pinned scalar tier) and the timing
 * plane (default-constructed BackendConfig vs explicit cpu). The NMP
 * engine shares the host kernels, so backends agree numerically on
 * SLS outputs bit-for-bit; it differs only in the cost model, where it
 * must actually pay off on the embedding-bound models.
 *
 * The golden checksums reproduce `recperf eval --model rmcX --isa
 * scalar` (rows capped at 4096, batch 16, seed 42). CI runs this
 * binary under RECPERF_THREADS=1 and =4, which is what makes the
 * constants a cross-thread-count determinism anchor.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "backend/compute_backend.hh"
#include "backend/nmp_backend.hh"
#include "core/rng.hh"
#include "machine/machine_spec.hh"
#include "model/rec_model.hh"
#include "model/zoo.hh"
#include "ops/sparse_lengths_sum.hh"
#include "timing/model_timer.hh"

namespace recperf {
namespace {

/** Restore the process-wide backend when a test changes it. */
class ScopedBackend
{
  public:
    explicit ScopedBackend(const BackendConfig &config)
        : saved_(activeBackendConfig())
    {
        setActiveBackend(config);
    }
    ~ScopedBackend() { setActiveBackend(saved_); }

  private:
    BackendConfig saved_;
};

BackendConfig
pinnedScalarConfig(BackendKind kind)
{
    BackendConfig config;
    config.kind = kind;
    config.isa.autoSelect = false;
    config.isa.pinned = KernelIsa::Scalar;
    return config;
}

/** FNV-1a over a tensor's bytes — the eval checksum, verbatim. */
uint64_t
fnv1a(const Tensor &t)
{
    const auto *bytes = reinterpret_cast<const unsigned char *>(t.data());
    uint64_t hash = 0xcbf29ce484222325ULL;
    for (size_t i = 0; i < static_cast<size_t>(t.size()) * sizeof(float);
         ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

/** The `recperf eval` recipe: capped model, seeded weights and input. */
uint64_t
evalChecksum(const ModelConfig &full)
{
    ModelConfig cfg = full.functionalScale(4096);
    Rng rng(42);
    RecModel model(cfg, rng);
    ModelInput input = model.randomInput(16, rng);
    return fnv1a(model.forward(input));
}

ModelTiming
timeWith(const ModelConfig &cfg, const BackendConfig &backend,
         int64_t batch = 16)
{
    TimerOptions topts;
    topts.batch = batch;
    topts.backend = backend;
    ModelTimer timer(broadwell(), cfg, topts);
    return timer.steadyState(/*warmup_iters=*/2, /*measure_iters=*/5);
}

// ---------------------------------------------------------------------
// Functional plane: bitwise identity.

TEST(BackendParity, CpuGoldenChecksumsScalar)
{
    // Golden constants recorded from the pre-refactor binary
    // (`eval --model rmcX --isa scalar`). Any change to the CpuBackend
    // hot path that lands here is a silent numerics break.
    ScopedBackend scoped(pinnedScalarConfig(BackendKind::Cpu));
    EXPECT_EQ(evalChecksum(rmc1Small()), 0xe71e7fb4d9ae888dULL);
    EXPECT_EQ(evalChecksum(rmc2Small()), 0x48241e8356dd7045ULL);
    EXPECT_EQ(evalChecksum(rmc3Small()), 0x259a7fa40b909f97ULL);
}

TEST(BackendParity, NmpMatchesCpuChecksumsScalar)
{
    // The NMP backend re-models cost, not math: it delegates to the
    // same shape-keyed kernel cache, so the functional plane is
    // bit-identical across backends.
    ScopedBackend scoped(pinnedScalarConfig(BackendKind::Nmp));
    EXPECT_EQ(evalChecksum(rmc1Small()), 0xe71e7fb4d9ae888dULL);
    EXPECT_EQ(evalChecksum(rmc2Small()), 0x48241e8356dd7045ULL);
}

TEST(BackendParity, SlsOutputBitIdenticalAcrossBackends)
{
    Rng rng(11);
    EmbeddingTable table(512, 48, rng);
    std::vector<int64_t> ids, lengths;
    Rng id_rng(5);
    for (int slot = 0; slot < 24; ++slot) {
        lengths.push_back(8);
        for (int j = 0; j < 8; ++j)
            ids.push_back(static_cast<int64_t>(id_rng.nextBelow(512)));
    }

    Tensor cpu_out, nmp_out;
    {
        ScopedBackend scoped(pinnedScalarConfig(BackendKind::Cpu));
        cpu_out = table.forward(ids, lengths);
    }
    {
        ScopedBackend scoped(pinnedScalarConfig(BackendKind::Nmp));
        nmp_out = table.forward(ids, lengths);
    }
    ASSERT_EQ(cpu_out.shape(), nmp_out.shape());
    EXPECT_EQ(std::memcmp(cpu_out.data(), nmp_out.data(),
                          static_cast<size_t>(cpu_out.size()) *
                              sizeof(float)),
              0);
}

// ---------------------------------------------------------------------
// Timing plane: default == explicit cpu, NMP pays off where it should.

TEST(BackendParity, DefaultTimingIsExplicitCpuBitwise)
{
    ModelConfig cfg = rmc2Small();
    BackendConfig cpu;
    cpu.kind = BackendKind::Cpu;
    ModelTiming a = timeWith(cfg, BackendConfig{});
    ModelTiming b = timeWith(cfg, cpu);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    for (size_t i = 0; i < a.ops.size(); ++i) {
        EXPECT_EQ(a.ops[i].name, b.ops[i].name);
        EXPECT_EQ(a.ops[i].seconds, b.ops[i].seconds) << a.ops[i].name;
        EXPECT_EQ(a.ops[i].dramLines, b.ops[i].dramLines);
        EXPECT_EQ(a.ops[i].instructions, b.ops[i].instructions);
        EXPECT_EQ(a.ops[i].offloadSeconds, 0.0);
        EXPECT_EQ(a.ops[i].transferBytes, 0u);
    }
}

TEST(BackendParity, NmpAtLeastTwiceAsFastOnRmc2)
{
    BackendConfig nmp;
    nmp.kind = BackendKind::Nmp;
    ModelTiming cpu = timeWith(rmc2Small(), BackendConfig{});
    ModelTiming pim = timeWith(rmc2Small(), nmp);
    EXPECT_GE(cpu.totalSeconds() / pim.totalSeconds(), 2.0);

    // The offloaded gather accounts its engine time and link traffic
    // and leaves the host DRAM roof (no dramLines).
    double offload = 0.0;
    uint64_t transfer = 0, sls_dram = 0;
    for (const OpTiming &op : pim.ops) {
        offload += op.offloadSeconds;
        transfer += op.transferBytes;
        if (op.kind == OpKind::SLS)
            sls_dram += op.dramLines;
    }
    EXPECT_GT(offload, 0.0);
    EXPECT_GT(transfer, 0u);
    EXPECT_EQ(sls_dram, 0u);
}

TEST(BackendParity, NmpPlacementNoneIsCpuTiming)
{
    BackendConfig nmp;
    nmp.kind = BackendKind::Nmp;
    nmp.nmp.placement = NmpPlacement::None;
    ModelTiming cpu = timeWith(rmc2Small(), BackendConfig{});
    ModelTiming host = timeWith(rmc2Small(), nmp);
    ASSERT_EQ(cpu.ops.size(), host.ops.size());
    for (size_t i = 0; i < cpu.ops.size(); ++i)
        EXPECT_EQ(cpu.ops[i].seconds, host.ops[i].seconds)
            << cpu.ops[i].name;
}

// ---------------------------------------------------------------------
// Placement policy and spec validation.

TEST(NmpPlacement, AutoPolicyBoundaries)
{
    NmpConfig config; // min 1 MB, 0.5x LLC share
    const double llc = 32.0 * 1024 * 1024;

    // Forced modes ignore size entirely.
    config.placement = NmpPlacement::All;
    EXPECT_TRUE(nmpTableOffloaded(config, 1, llc));
    config.placement = NmpPlacement::None;
    EXPECT_FALSE(nmpTableOffloaded(config, 1ull << 40, llc));

    config.placement = NmpPlacement::Auto;
    // Below the absolute floor: host, even though it dwarfs the LLC.
    EXPECT_FALSE(nmpTableOffloaded(config, (1ull << 20) - 1, 1024.0));
    // Above the floor but cache-fixable (<= 0.5x LLC share): host.
    EXPECT_FALSE(nmpTableOffloaded(
        config, static_cast<uint64_t>(llc * 0.5), llc));
    // Above both: offload.
    EXPECT_TRUE(nmpTableOffloaded(
        config, static_cast<uint64_t>(llc * 0.5) + 1, llc));
}

TEST(NmpConfigValidate, RejectsBadKnobs)
{
    EXPECT_EQ(NmpConfig{}.validate(), "");

    NmpConfig c;
    c.ranks = 0;
    EXPECT_NE(c.validate(), "");
    c = NmpConfig{};
    c.rankGBps = 0.0;
    EXPECT_NE(c.validate(), "");
    c = NmpConfig{};
    c.linkGBps = -1.0;
    EXPECT_NE(c.validate(), "");
    c = NmpConfig{};
    c.hostLlcFraction = 1.5;
    EXPECT_NE(c.validate(), "");
}

TEST(BackendSpec, ParsesAndValidatesAsOneUnit)
{
    BackendConfig out;
    // Empty components mean defaults: cpu + auto ISA.
    EXPECT_EQ(backendConfigFromSpec("", "", &out), "");
    EXPECT_EQ(out.kind, BackendKind::Cpu);
    EXPECT_TRUE(out.isa.autoSelect);

    EXPECT_EQ(backendConfigFromSpec("nmp", "scalar", &out), "");
    EXPECT_EQ(out.kind, BackendKind::Nmp);
    EXPECT_FALSE(out.isa.autoSelect);
    EXPECT_EQ(out.isa.pinned, KernelIsa::Scalar);

    std::string err = backendConfigFromSpec("bogus", "", &out);
    EXPECT_NE(err.find("unknown backend"), std::string::npos) << err;
    EXPECT_NE(backendConfigFromSpec("cpu", "bogus", &out), "");
}

} // namespace
} // namespace recperf
