/**
 * @file
 * Tests for the hardware-counter telemetry accumulator (obs::HwTelemetry):
 * per-op and per-kind aggregation, delta-based simcache sampling with
 * warm-up exclusion and shared-hierarchy deduplication, the external
 * reset guard, disabled-path cost, and the counter-event / metrics
 * cross-consistency contract that check_trace.py relies on.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "obs/hw_counters.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "simcache/hierarchy.hh"

namespace recperf {
namespace {

CacheHierarchy
tinyHierarchy(uint32_t cores = 1)
{
    LevelConfig l1{4 * 1024, 4, 4};
    LevelConfig l2{16 * 1024, 8, 12};
    LevelConfig l3{64 * 1024, 16, 40};
    return CacheHierarchy(cores, l1, l2, l3, InclusionPolicy::Inclusive,
                          200);
}

obs::OpRecord
fcRecord(double seconds, double flops)
{
    obs::OpRecord r;
    r.kindName = "FC";
    r.seconds = seconds;
    r.flops = flops;
    r.bytesRead = 2.0 * flops;
    r.bytesWritten = 0.5 * flops;
    r.instructions = flops / 8.0;
    r.l1Lines = 100;
    r.dramLines = 10;
    return r;
}

TEST(HwTelemetry, RecordOpAggregatesTotalsAndKinds)
{
    obs::HwTelemetry telem;
    telem.setEnabled(true);
    telem.recordOp(fcRecord(1e-3, 1000.0));
    telem.recordOp(fcRecord(2e-3, 3000.0));
    obs::OpRecord sls;
    sls.kindName = "SLS";
    sls.seconds = 5e-3;
    sls.bytesRead = 640.0;
    sls.instructions = 100.0;
    sls.dramLines = 7;
    telem.recordOp(sls);

    obs::HwTotals t = telem.totals();
    EXPECT_DOUBLE_EQ(t.seconds, 8e-3);
    EXPECT_DOUBLE_EQ(t.flops, 4000.0);
    EXPECT_DOUBLE_EQ(t.bytesRead, 8000.0 + 640.0);
    EXPECT_DOUBLE_EQ(t.bytesWritten, 2000.0);
    EXPECT_EQ(t.l1Lines, 200u);
    EXPECT_EQ(t.dramLines, 27u);

    // Per-kind breakdown surfaces through exportTo as gauges.
    obs::MetricsRegistry reg;
    telem.exportTo(reg);
    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_NEAR(snap.gauge("hw.op.FC.seconds"), 3e-3, 1e-12);
    EXPECT_NEAR(snap.gauge("hw.op.FC.fraction"), 3.0 / 8.0, 1e-12);
    EXPECT_NEAR(snap.gauge("hw.op.SLS.fraction"), 5.0 / 8.0, 1e-12);
    EXPECT_EQ(snap.counter("hw.flops"), 4000u);
}

TEST(HwTelemetry, IntensityAndMpkiDerivations)
{
    obs::HwTotals t;
    t.flops = 1000.0;
    t.bytesRead = 400.0;
    t.bytesWritten = 100.0;
    t.instructions = 2000.0;
    t.dramLines = 6;
    EXPECT_DOUBLE_EQ(t.intensity(), 2.0);
    EXPECT_DOUBLE_EQ(t.llcMpki(), 3.0);

    obs::HwTotals zero;
    EXPECT_DOUBLE_EQ(zero.intensity(), 0.0); // no div-by-zero
    EXPECT_DOUBLE_EQ(zero.llcMpki(), 0.0);
}

TEST(HwTelemetry, FirstHierarchySampleOnlySetsBaseline)
{
    CacheHierarchy hier = tinyHierarchy();
    // Warm-up traffic that must NOT be counted.
    for (uint64_t i = 0; i < 512; ++i)
        hier.access(0, i * 64);

    obs::HwTelemetry telem;
    telem.setEnabled(true);
    telem.sampleHierarchy(hier); // baseline only
    EXPECT_EQ(telem.totals().cache.l1.accesses, 0u);

    // Measured traffic appears as the delta.
    for (uint64_t i = 0; i < 100; ++i)
        hier.access(0, i * 64);
    telem.sampleHierarchy(hier);
    EXPECT_EQ(telem.totals().cache.l1.accesses, 100u);

    // Sampling again with no traffic adds nothing.
    telem.sampleHierarchy(hier);
    EXPECT_EQ(telem.totals().cache.l1.accesses, 100u);
}

TEST(HwTelemetry, DeltaMatchesHierarchyGroundTruth)
{
    // Acceptance: telemetry's per-level counters must equal the
    // simcache's own stats delta over the measurement window, exactly.
    CacheHierarchy hier = tinyHierarchy(2);
    for (uint64_t i = 0; i < 300; ++i) // warm-up
        hier.access(i % 2, i * 64);

    obs::HwTelemetry telem;
    telem.setEnabled(true);
    telem.sampleHierarchy(hier);
    HierarchyCounters before = hier.counters();

    for (uint64_t i = 0; i < 4096; ++i)
        hier.access(i % 2, (i * 193) % (256 * 1024));
    telem.sampleHierarchy(hier);
    HierarchyCounters after = hier.counters();

    obs::HwTotals t = telem.totals();
    EXPECT_EQ(t.cache.l1.accesses, after.l1.accesses - before.l1.accesses);
    EXPECT_EQ(t.cache.l1.misses, after.l1.misses - before.l1.misses);
    EXPECT_EQ(t.cache.l2.hits, after.l2.hits - before.l2.hits);
    EXPECT_EQ(t.cache.l3.misses, after.l3.misses - before.l3.misses);
    EXPECT_EQ(t.cache.l3.backInvalidations,
              after.l3.backInvalidations - before.l3.backInvalidations);
}

TEST(HwTelemetry, SharedHierarchyCountedOnce)
{
    // Two timers sampling the same hierarchy advance one baseline:
    // interleaved samples never double-count.
    CacheHierarchy hier = tinyHierarchy();
    obs::HwTelemetry telem;
    telem.setEnabled(true);
    telem.sampleHierarchy(hier); // baseline
    for (uint64_t i = 0; i < 50; ++i)
        hier.access(0, i * 64);
    telem.sampleHierarchy(hier); // "timer A"
    telem.sampleHierarchy(hier); // "timer B", same point: delta 0
    EXPECT_EQ(telem.totals().cache.l1.accesses, 50u);
}

TEST(HwTelemetry, ResetDropsBaselinesButKeepsRoofline)
{
    CacheHierarchy hier = tinyHierarchy();
    obs::HwTelemetry telem;
    telem.setEnabled(true);
    obs::RooflineSpec roof{"TestMachine", 100.0, 50.0, 5.0};
    telem.setRoofline(roof);
    telem.sampleHierarchy(hier);
    for (uint64_t i = 0; i < 10; ++i)
        hier.access(0, i * 64);
    telem.sampleHierarchy(hier);
    telem.recordOp(fcRecord(1e-3, 8.0));

    telem.reset();
    EXPECT_EQ(telem.totals().cache.l1.accesses, 0u);
    EXPECT_DOUBLE_EQ(telem.totals().flops, 0.0);
    EXPECT_EQ(telem.roofline().machine, "TestMachine");
    EXPECT_DOUBLE_EQ(telem.roofline().ridge(), 2.0);

    // Post-reset, the first sample is again baseline-only.
    telem.sampleHierarchy(hier);
    EXPECT_EQ(telem.totals().cache.l1.accesses, 0u);
}

TEST(HwTelemetry, DisabledSitesAreCheap)
{
    // Off-by-default contract: a disabled site is one relaxed load and
    // a branch; the accumulator never takes its lock.
    obs::HwTelemetry telem;
    EXPECT_FALSE(telem.enabled());
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 1000000; ++i) {
        if (telem.enabled())
            telem.recordOp(obs::OpRecord{});
    }
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    EXPECT_LT(elapsed, 0.5);
    EXPECT_DOUBLE_EQ(telem.totals().seconds, 0.0);
}

TEST(HwTelemetry, CounterEventsMatchExportedMetrics)
{
    // The final emitted trace value of every track that is also an
    // exported metric must agree with the export -- this is the
    // cross-check check_trace.py performs on real runs.
    obs::HwTelemetry telem;
    telem.setEnabled(true);
    telem.recordOp(fcRecord(1e-3, 12345.0));

    obs::Tracer tracer;
    tracer.setEnabled(true);
    telem.emitCounters(tracer, 0.5, 0);
    tracer.setEnabled(false);

    obs::MetricsRegistry reg;
    telem.exportTo(reg);
    obs::MetricsSnapshot snap = reg.snapshot();

    std::vector<obs::TraceEvent> events = tracer.snapshot();
    ASSERT_FALSE(events.empty());
    size_t checked = 0;
    for (const obs::TraceEvent &ev : events) {
        ASSERT_EQ(ev.ph, 'C');
        EXPECT_LT(ev.tid, obs::Tracer::kWallTidBase);
        ASSERT_EQ(ev.args.size(), 1u) << ev.name;
        EXPECT_EQ(ev.args[0].first, "value");
        if (ev.name == "hw.flops") {
            EXPECT_DOUBLE_EQ(std::stod(ev.args[0].second), 12345.0);
            EXPECT_EQ(snap.counter("hw.flops"), 12345u);
            ++checked;
        }
    }
    EXPECT_EQ(checked, 1u);
}

TEST(HwTelemetry, EmitCountersRespectsDisabledTracer)
{
    obs::HwTelemetry telem;
    telem.setEnabled(true);
    telem.recordOp(fcRecord(1e-3, 8.0));
    obs::Tracer tracer; // disabled
    telem.emitCounters(tracer, 0.5, 0);
    EXPECT_TRUE(tracer.snapshot().empty());
}

} // namespace
} // namespace recperf
