/**
 * @file
 * Tests for the next-line hardware prefetcher.
 */

#include <gtest/gtest.h>

#include "core/rng.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "simcache/hierarchy.hh"
#include "timing/model_timer.hh"
#include "trace/id_generator.hh"

namespace recperf {
namespace {

LevelConfig
l1cfg()
{
    return {4 * 1024, 4, 4};
}

LevelConfig
l2cfg()
{
    return {16 * 1024, 8, 12};
}

LevelConfig
l3cfg()
{
    return {64 * 1024, 16, 38};
}

TEST(Prefetch, OffByDefault)
{
    CacheHierarchy h(1, l1cfg(), l2cfg(), l3cfg(),
                     InclusionPolicy::Inclusive, 200);
    h.access(0, 0);
    EXPECT_EQ(h.prefetchedLines(), 0u);
    EXPECT_FALSE(h.l2(0).contains(64));
}

TEST(Prefetch, NextLineInstalledInL2)
{
    PrefetchConfig pf{true, 1};
    CacheHierarchy h(1, l1cfg(), l2cfg(), l3cfg(),
                     InclusionPolicy::Inclusive, 200, pf);
    EXPECT_EQ(h.access(0, 0), HitLevel::Memory);
    EXPECT_EQ(h.prefetchedLines(), 1u);
    EXPECT_TRUE(h.l2(0).contains(64));
    EXPECT_FALSE(h.l1(0).contains(64)); // L1 untouched
    // The demand access to the prefetched line now hits in L2.
    EXPECT_EQ(h.access(0, 64), HitLevel::L2);
}

TEST(Prefetch, DegreeTwoCoversTwoLines)
{
    PrefetchConfig pf{true, 2};
    CacheHierarchy h(1, l1cfg(), l2cfg(), l3cfg(),
                     InclusionPolicy::Inclusive, 200, pf);
    h.access(0, 0);
    EXPECT_TRUE(h.l2(0).contains(64));
    EXPECT_TRUE(h.l2(0).contains(128));
    EXPECT_EQ(h.prefetchedLines(), 2u);
}

TEST(Prefetch, InclusionInvariantPreserved)
{
    PrefetchConfig pf{true, 2};
    CacheHierarchy h(2, l1cfg(), l2cfg(), l3cfg(),
                     InclusionPolicy::Inclusive, 200, pf);
    Rng rng(3);
    for (int i = 0; i < 10'000; ++i) {
        h.access(static_cast<uint32_t>(rng.nextBelow(2)),
                 rng.nextBelow(1 << 18) * 64);
    }
    h.checkInclusionInvariant();
    EXPECT_GT(h.prefetchedLines(), 0u);
}

TEST(Prefetch, WorksOnExclusiveHierarchy)
{
    PrefetchConfig pf{true, 1};
    CacheHierarchy h(1, l1cfg(), l2cfg(), l3cfg(),
                     InclusionPolicy::Exclusive, 200, pf);
    h.access(0, 0);
    EXPECT_TRUE(h.l2(0).contains(64));
    EXPECT_FALSE(h.l3().contains(64)); // exclusive L3 not polluted
}

TEST(Prefetch, HalvesMissesForTwoLineRows)
{
    // Embedding rows of 128 B span two lines; the next-line prefetcher
    // should convert nearly all second-line demand misses into hits,
    // cutting SLS DRAM line misses roughly in half.
    auto sls_dram_lines = [](bool enable) {
        MachineSpec bdw = broadwell();
        bdw.prefetch.nextLine = enable;
        TimerOptions opts;
        opts.batch = 8;
        opts.repeatProb = 0.0; // mostly-miss traffic
        opts.zipfAlpha = 0.5;
        ModelTimer timer(bdw, rmc2Small(), opts);
        ModelTiming t = timer.steadyState(5, 5);
        return static_cast<double>(t.dramLines());
    };
    double off = sls_dram_lines(false);
    double on = sls_dram_lines(true);
    EXPECT_LT(on, 0.7 * off);
    EXPECT_GT(on, 0.3 * off);
}

} // namespace
} // namespace recperf
