/**
 * @file
 * Tests for the discrete-event serving simulation (batching queue,
 * SLA-bounded throughput, open- vs closed-loop).
 */

#include <gtest/gtest.h>

#include "core/logging.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "serving/server.hh"

namespace recperf {
namespace {

ServerOptions
baseOptions()
{
    ServerOptions o;
    o.numWorkers = 2;
    o.maxBatch = 16;
    o.slaSeconds = 0.450;
    o.jitterSigma = 0.05;
    return o;
}

TEST(Server, ClosedLoopProducesThroughput)
{
    Server server(broadwell(), rmc1Small(), TimerOptions{}, baseOptions());
    ServingStats stats = server.runClosedLoop(10);
    EXPECT_GT(stats.totalThroughput(), 0.0);
    EXPECT_EQ(stats.slaMet + stats.slaMissed,
              static_cast<uint64_t>(10 * 2 * 16));
    EXPECT_GT(stats.duration, 0.0);
}

TEST(Server, GoodThroughputNeverExceedsTotal)
{
    Server server(broadwell(), rmc2Small(), TimerOptions{}, baseOptions());
    ServingStats stats = server.runClosedLoop(6);
    EXPECT_LE(stats.goodThroughput(), stats.totalThroughput() + 1e-9);
    EXPECT_GE(stats.slaFraction(), 0.0);
    EXPECT_LE(stats.slaFraction(), 1.0);
}

TEST(Server, OpenLoopLowRateLatencyNearService)
{
    // At a trickle arrival rate there is no queueing: item latency is
    // close to single-item service time.
    ServerOptions opts = baseOptions();
    opts.numWorkers = 2;
    Server server(broadwell(), rmc1Small(), TimerOptions{}, opts);
    ServingStats stats = server.runOpenLoop(/*items_per_second=*/50.0,
                                            /*num_items=*/200);
    ASSERT_GT(stats.itemLatency.count(), 0u);
    // Batch-1 service on RMC1 is ~40 us; with no queueing p50 stays
    // well below a millisecond.
    EXPECT_LT(stats.itemLatency.p(50), 1e-3);
    EXPECT_NEAR(stats.slaFraction(), 1.0, 1e-9);
}

TEST(Server, OpenLoopOverloadMissesSla)
{
    // Arrivals far beyond capacity drive queueing delay past any SLA.
    ServerOptions opts = baseOptions();
    opts.numWorkers = 1;
    opts.maxBatch = 4;
    opts.slaSeconds = 0.005;
    Server server(broadwell(), rmc2Small(), TimerOptions{}, opts);
    ServingStats stats = server.runOpenLoop(/*items_per_second=*/50'000.0,
                                            /*num_items=*/2'000);
    EXPECT_GT(stats.slaMissed, 0u);
    EXPECT_LT(stats.slaFraction(), 0.5);
}

TEST(Server, LoadGrowsBatches)
{
    // Under heavy load the dynamic batcher forms larger batches, so the
    // mean service time exceeds the light-load service time.
    ServerOptions opts = baseOptions();
    opts.numWorkers = 1;
    opts.maxBatch = 32;
    Server light(broadwell(), rmc1Small(), TimerOptions{}, opts);
    ServingStats idle = light.runOpenLoop(20.0, 150);
    Server heavy(broadwell(), rmc1Small(), TimerOptions{}, opts);
    ServingStats busy = heavy.runOpenLoop(100'000.0, 1'500);
    EXPECT_GT(busy.serviceTime.mean(), idle.serviceTime.mean());
}

TEST(Server, TailAboveMedian)
{
    Server server(broadwell(), rmc1Small(), TimerOptions{}, baseOptions());
    ServingStats stats = server.runOpenLoop(5'000.0, 1'000);
    ASSERT_GT(stats.itemLatency.count(), 100u);
    EXPECT_GE(stats.itemLatency.p(99), stats.itemLatency.p(50));
    EXPECT_GE(stats.itemLatency.p(50), stats.itemLatency.p(5));
}

TEST(Server, TailLatencyRegression)
{
    // Tail-latency regression guard: percentiles must stay ordered and
    // the SLA-miss fraction must grow monotonically as the arrival
    // rate passes saturation (§VI-A / Fig 10-11 behaviour).
    ServerOptions opts = baseOptions();
    opts.numWorkers = 1;
    opts.maxBatch = 8;
    opts.slaSeconds = 0.005;

    double prev_missed = -1.0;
    for (double rate : {500.0, 20'000.0, 200'000.0}) {
        Server server(broadwell(), rmc1Small(), TimerOptions{}, opts);
        ServingStats stats = server.runOpenLoop(rate, 1'500);
        ASSERT_GT(stats.itemLatency.count(), 0u);

        // Percentile ordering (p99 >= p50 >= p5) at every load level.
        EXPECT_GE(stats.itemLatency.p(99), stats.itemLatency.p(50));
        EXPECT_GE(stats.itemLatency.p(50), stats.itemLatency.p(5));

        double missed = static_cast<double>(stats.slaMissed) /
            static_cast<double>(stats.completedItems());
        EXPECT_GE(missed, prev_missed);
        prev_missed = missed;
    }
    // Past saturation, most items miss the SLA.
    EXPECT_GT(prev_missed, 0.5);
}

TEST(Server, JitterWidensServiceDistribution)
{
    ServerOptions no_jitter = baseOptions();
    no_jitter.jitterSigma = 0.0;
    no_jitter.numWorkers = 1;
    Server a(broadwell(), rmc1Small(), TimerOptions{}, no_jitter);
    ServingStats sa = a.runClosedLoop(30);

    ServerOptions jitter = no_jitter;
    jitter.jitterSigma = 0.25;
    Server b(broadwell(), rmc1Small(), TimerOptions{}, jitter);
    ServingStats sb = b.runClosedLoop(30);

    double spread_a = sa.serviceTime.p(99) / sa.serviceTime.p(5);
    double spread_b = sb.serviceTime.p(99) / sb.serviceTime.p(5);
    EXPECT_GT(spread_b, spread_a);
}

TEST(Server, MoreWorkersMoreThroughput)
{
    ServerOptions one = baseOptions();
    one.numWorkers = 1;
    Server a(broadwell(), rmc1Small(), TimerOptions{}, one);
    double t1 = a.runClosedLoop(12).totalThroughput();

    ServerOptions four = baseOptions();
    four.numWorkers = 4;
    Server b(broadwell(), rmc1Small(), TimerOptions{}, four);
    double t4 = b.runClosedLoop(12).totalThroughput();
    EXPECT_GT(t4, 2.0 * t1);
}

TEST(Server, FcTimesRecorded)
{
    Server server(broadwell(), rmc3Small(), TimerOptions{}, baseOptions());
    ServingStats stats = server.runClosedLoop(5);
    ASSERT_GT(stats.fcTime.count(), 0u);
    // RMC3 service time is FC-dominated.
    EXPECT_GT(stats.fcTime.mean(), 0.8 * stats.serviceTime.mean());
}

TEST(Server, ValidatesOptions)
{
    ServerOptions bad = baseOptions();
    bad.numWorkers = 0;
    EXPECT_THROW(Server(broadwell(), rmc1Small(), TimerOptions{}, bad),
                 PanicError);
    bad = baseOptions();
    bad.maxBatch = 0;
    EXPECT_THROW(Server(broadwell(), rmc1Small(), TimerOptions{}, bad),
                 PanicError);
}

TEST(Server, RejectsDegenerateRuns)
{
    Server server(broadwell(), rmc1Small(), TimerOptions{}, baseOptions());
    EXPECT_THROW(server.runOpenLoop(0.0, 10), PanicError);
    EXPECT_THROW(server.runOpenLoop(10.0, 0), PanicError);
    EXPECT_THROW(server.runClosedLoop(0), PanicError);
}

} // namespace
} // namespace recperf
