/**
 * @file
 * Tests for the CNN (conv2d) and RNN (LSTM) baseline operators.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/logging.hh"
#include "core/rng.hh"
#include "ops/conv.hh"
#include "ops/lstm.hh"

namespace recperf {
namespace {

// ---------------------------------------------------------------- Conv2d

TEST(Conv2d, OutputGeometry)
{
    Conv2d c(3, 8, 3, /*stride=*/1, /*padding=*/1);
    EXPECT_EQ(c.outSize(14), 14); // same-padding
    Conv2d s(3, 8, 3, /*stride=*/2, /*padding=*/1);
    EXPECT_EQ(s.outSize(14), 7);
    Conv2d v(3, 8, 3);
    EXPECT_EQ(v.outSize(14), 12); // valid
}

TEST(Conv2d, RejectsBadConfig)
{
    EXPECT_THROW(Conv2d(0, 1, 3), PanicError);
    EXPECT_THROW(Conv2d(1, 1, 3, 0), PanicError);
    Conv2d c(1, 1, 5);
    EXPECT_THROW(c.outSize(3), PanicError); // kernel > input
}

TEST(Conv2d, IdentityKernel)
{
    // 1x1 kernel with weight 1 copies the input channel.
    Conv2d c(1, 1, 1);
    c.weight().at(static_cast<int64_t>(0)) = 1.0f;
    Rng rng(1);
    Tensor x({1, 1, 4, 4});
    x.fillUniform(rng, -1.0f, 1.0f);
    Tensor y = c.forward(x);
    EXPECT_TRUE(y.allClose(x));
}

TEST(Conv2d, BoxFilterSum)
{
    // 3x3 all-ones kernel on an all-ones image (valid padding) sums 9.
    Conv2d c(1, 1, 3);
    c.weight().fill(1.0f);
    Tensor x({1, 1, 5, 5}, 1.0f);
    Tensor y = c.forward(x);
    EXPECT_EQ(y.shape(), (Shape{1, 1, 3, 3}));
    for (int64_t i = 0; i < y.size(); ++i)
        EXPECT_FLOAT_EQ(y.at(i), 9.0f);
}

TEST(Conv2d, ZeroPaddingBorders)
{
    // Same box filter with padding 1: corners only see 4 input cells.
    Conv2d c(1, 1, 3, 1, 1);
    c.weight().fill(1.0f);
    Tensor x({1, 1, 3, 3}, 1.0f);
    Tensor y = c.forward(x);
    EXPECT_EQ(y.shape(), (Shape{1, 1, 3, 3}));
    EXPECT_FLOAT_EQ(y.data()[0], 4.0f); // corner
    EXPECT_FLOAT_EQ(y.data()[1], 6.0f); // edge
    EXPECT_FLOAT_EQ(y.data()[4], 9.0f); // center
}

TEST(Conv2d, BiasApplied)
{
    Conv2d c(1, 2, 1);
    c.bias().at(static_cast<int64_t>(0)) = 1.5f;
    c.bias().at(static_cast<int64_t>(1)) = -2.0f;
    Tensor x({1, 1, 2, 2});
    Tensor y = c.forward(x);
    EXPECT_FLOAT_EQ(y.data()[0], 1.5f);
    EXPECT_FLOAT_EQ(y.data()[4], -2.0f);
}

TEST(Conv2d, ChannelsAccumulate)
{
    Conv2d c(2, 1, 1);
    c.weight().at(static_cast<int64_t>(0)) = 2.0f; // channel 0
    c.weight().at(static_cast<int64_t>(1)) = 3.0f; // channel 1
    Tensor x({1, 2, 1, 1});
    x.at(static_cast<int64_t>(0)) = 10.0f;
    x.at(static_cast<int64_t>(1)) = 100.0f;
    Tensor y = c.forward(x);
    EXPECT_FLOAT_EQ(y.at(static_cast<int64_t>(0)), 320.0f);
}

TEST(Conv2d, Linearity)
{
    Rng rng(2);
    Conv2d c(3, 4, 3, 1, 1, rng);
    c.bias().fill(0.0f);
    Tensor x({2, 3, 6, 6});
    x.fillUniform(rng, -1.0f, 1.0f);
    Tensor y1 = c.forward(x);
    Tensor x2 = x.reshaped(x.shape());
    for (int64_t i = 0; i < x2.size(); ++i)
        x2.at(i) *= 2.0f;
    Tensor y2 = c.forward(x2);
    for (int64_t i = 0; i < y1.size(); ++i)
        EXPECT_NEAR(y2.at(i), 2.0f * y1.at(i), 1e-4f);
}

TEST(Conv2d, InputValidation)
{
    Conv2d c(3, 4, 3);
    EXPECT_THROW(c.forward(Tensor({1, 2, 8, 8})), PanicError);
    EXPECT_THROW(c.forward(Tensor({3, 8, 8})), PanicError);
}

TEST(Conv2d, CostMatchesClosedForm)
{
    OpCost c = Conv2d::cost(2, 16, 32, 3, 14, 14);
    EXPECT_DOUBLE_EQ(c.flops, 2.0 * 2 * 32 * 14 * 14 * 16 * 9);
    EXPECT_GT(c.intensity(), 50.0); // CNN layers are compute-dense
}

// --------------------------------------------------------------- LstmCell

TEST(Lstm, StateShapes)
{
    LstmCell cell(6, 10);
    LstmState s = cell.initialState(3);
    EXPECT_EQ(s.h.shape(), (Shape{3, 10}));
    EXPECT_EQ(s.c.shape(), (Shape{3, 10}));
    EXPECT_EQ(cell.paramCount(), (6 * 40 + 40) + (10 * 40 + 40));
}

TEST(Lstm, ZeroEverythingGivesZeroOutput)
{
    LstmCell cell(4, 8);
    Tensor x({2, 4});
    LstmState s = cell.forward(x, cell.initialState(2));
    // gates: sigmoid(0)=0.5, tanh(0)=0: c = 0.5*0 + 0.5*0 = 0; h = 0.
    for (int64_t i = 0; i < s.h.size(); ++i) {
        EXPECT_FLOAT_EQ(s.c.at(i), 0.0f);
        EXPECT_FLOAT_EQ(s.h.at(i), 0.0f);
    }
}

TEST(Lstm, ForgetGateExtremes)
{
    // Huge positive forget bias keeps the cell state; huge negative
    // erases it.
    for (float bias : {50.0f, -50.0f}) {
        LstmCell cell(1, 1);
        cell.inputGates().bias().at(static_cast<int64_t>(1)) = bias;
        LstmState s = cell.initialState(1);
        s.c.at(static_cast<int64_t>(0)) = 0.7f;
        Tensor x({1, 1});
        LstmState next = cell.forward(x, s);
        float expected = bias > 0 ? 0.7f : 0.0f;
        EXPECT_NEAR(next.c.at(static_cast<int64_t>(0)), expected, 1e-5f);
    }
}

TEST(Lstm, InputGateWritesCandidate)
{
    LstmCell cell(1, 1);
    // Open input gate, close forget gate, saturate candidate positive.
    cell.inputGates().bias().at(static_cast<int64_t>(0)) = 50.0f;  // i
    cell.inputGates().bias().at(static_cast<int64_t>(1)) = -50.0f; // f
    cell.inputGates().bias().at(static_cast<int64_t>(2)) = 50.0f;  // g
    cell.inputGates().bias().at(static_cast<int64_t>(3)) = 50.0f;  // o
    Tensor x({1, 1});
    LstmState s = cell.forward(x, cell.initialState(1));
    EXPECT_NEAR(s.c.at(static_cast<int64_t>(0)), 1.0f, 1e-4f);
    EXPECT_NEAR(s.h.at(static_cast<int64_t>(0)), std::tanh(1.0f), 1e-4f);
}

TEST(Lstm, HiddenStateBounded)
{
    Rng rng(3);
    LstmCell cell(8, 16, rng);
    LstmState s = cell.initialState(4);
    for (int t = 0; t < 20; ++t) {
        Tensor x({4, 8});
        x.fillUniform(rng, -3.0f, 3.0f);
        s = cell.forward(x, s);
        for (int64_t i = 0; i < s.h.size(); ++i) {
            EXPECT_GE(s.h.at(i), -1.0f);
            EXPECT_LE(s.h.at(i), 1.0f);
        }
    }
}

TEST(Lstm, SequenceEqualsStepLoop)
{
    Rng rng(5);
    LstmCell cell(4, 6, rng);
    Tensor xs({5, 2, 4});
    xs.fillUniform(rng, -1.0f, 1.0f);

    LstmState via_seq = cell.forwardSequence(xs, cell.initialState(2));

    LstmState manual = cell.initialState(2);
    for (int64_t t = 0; t < 5; ++t) {
        Tensor x({2, 4});
        for (int64_t i = 0; i < 8; ++i)
            x.at(i) = xs.data()[t * 8 + i];
        manual = cell.forward(x, manual);
    }
    EXPECT_TRUE(via_seq.h.allClose(manual.h, 1e-5f));
    EXPECT_TRUE(via_seq.c.allClose(manual.c, 1e-5f));
}

TEST(Lstm, ValidatesShapes)
{
    LstmCell cell(4, 6);
    EXPECT_THROW(cell.forward(Tensor({2, 5}), cell.initialState(2)),
                 PanicError);
    EXPECT_THROW(cell.forward(Tensor({2, 4}), cell.initialState(3)),
                 PanicError);
    EXPECT_THROW(LstmCell(0, 4), PanicError);
}

TEST(Lstm, CostLowIntensity)
{
    // Fig 5: RNN layers sit far below CNN in FLOPs/byte because the
    // weights are re-read every timestep.
    OpCost rnn = LstmCell::cost(11, 1024, 1024);
    EXPECT_GT(rnn.intensity(), 1.0);
    EXPECT_LT(rnn.intensity(), 15.0);
}

} // namespace
} // namespace recperf
