/**
 * @file
 * Tests for the DLRM-style dot-product feature interaction, in both
 * the functional model and the timing layer.
 */

#include <gtest/gtest.h>

#include "core/logging.hh"
#include "core/rng.hh"
#include "machine/machine_spec.hh"
#include "model/rec_model.hh"
#include "model/zoo.hh"
#include "ops/batch_matmul.hh"
#include "ops/elementwise.hh"
#include "ops/reference.hh"
#include "timing/model_timer.hh"

namespace recperf {
namespace {

ModelConfig
tinyDot()
{
    ModelConfig m;
    m.name = "tiny-dot";
    m.modelClass = ModelClass::Other;
    m.denseFeatures = 8;
    m.bottomMlp = {16, 4};
    m.emb = {3, 64, 4, 5}; // embDim matches bottomOutDim = 4
    m.interaction = InteractionKind::Dot;
    m.topMlp = {8, 1};
    m.validate();
    return m;
}

TEST(Interaction, KindNames)
{
    EXPECT_STREQ(interactionKindName(InteractionKind::Concat), "concat");
    EXPECT_STREQ(interactionKindName(InteractionKind::Dot), "dot");
}

TEST(Interaction, TopInputDimForDot)
{
    ModelConfig m = tinyDot();
    // 4 features (3 tables + bottom) -> 6 pairs, plus bottom width 4.
    EXPECT_EQ(m.featureCount(), 4);
    EXPECT_EQ(m.topInputDim(), 6 + 4);
}

TEST(Interaction, ValidateRejectsDimMismatch)
{
    ModelConfig m = tinyDot();
    m.emb.embDim = 8; // != bottomOutDim 4
    EXPECT_THROW(m.validate(), PanicError);
}

TEST(Interaction, ValidateRejectsDotWithoutTables)
{
    ModelConfig m = tinyDot();
    m.emb.numTables = 0;
    EXPECT_THROW(m.validate(), PanicError);
}

TEST(Interaction, ForwardShapeAndRange)
{
    Rng rng(1);
    RecModel model(tinyDot(), rng);
    ModelInput input = model.randomInput(5, rng);
    Tensor ctr = model.forward(input);
    EXPECT_EQ(ctr.shape(), (Shape{5, 1}));
    for (int64_t i = 0; i < ctr.size(); ++i) {
        EXPECT_GT(ctr.at(i), 0.0f);
        EXPECT_LT(ctr.at(i), 1.0f);
    }
}

TEST(Interaction, ForwardMatchesManualComposition)
{
    ModelConfig cfg = tinyDot();
    Rng rng(3);
    RecModel model(cfg, rng);
    Rng in_rng(5);
    ModelInput input = model.randomInput(2, in_rng);

    // Bottom MLP.
    Tensor z = input.dense.reshaped(input.dense.shape());
    for (const FullyConnected &fc : model.bottomLayers())
        z = relu(reference::fullyConnected(z, fc.weight(), fc.bias()));

    // Pooled embeddings and stacked features [batch, f, d].
    std::vector<Tensor> pooled;
    for (size_t t = 0; t < model.tables().size(); ++t) {
        pooled.push_back(reference::sparseLengthsSum(
            model.tables()[t].table(), input.sparse[t].ids,
            input.sparse[t].lengths));
    }
    std::vector<const Tensor *> feats = {&z};
    for (const Tensor &p : pooled)
        feats.push_back(&p);
    Tensor stacked = concatCols(feats).reshaped(
        {2, cfg.featureCount(), cfg.emb.embDim});
    Tensor pairs = dotInteraction(stacked);
    Tensor joined = concatCols({&pairs, &z});

    const auto &top = model.topLayers();
    for (size_t i = 0; i < top.size(); ++i) {
        joined = reference::fullyConnected(joined, top[i].weight(),
                                           top[i].bias());
        if (i + 1 < top.size())
            reluInplace(joined);
    }
    Tensor want = sigmoid(joined);
    EXPECT_TRUE(model.forward(input).allClose(want, 1e-4f));
}

TEST(Interaction, DotChangesPredictionsVsConcat)
{
    ModelConfig dot_cfg = tinyDot();
    ModelConfig cat_cfg = tinyDot();
    cat_cfg.interaction = InteractionKind::Concat;
    // Different topInputDim, so different architecture entirely.
    EXPECT_NE(dot_cfg.topInputDim(), cat_cfg.topInputDim());
}

TEST(Interaction, InferenceCostIncludesBatchMM)
{
    ModelConfig dot_cfg = rmc3Dot();
    OpCost c = dot_cfg.inferenceCost(4);
    EXPECT_GT(c.flops, 0.0);
    // Dot flops exceed the equivalent concat model's (extra pairwise
    // products).
    ModelConfig cat_cfg = dot_cfg;
    cat_cfg.interaction = InteractionKind::Concat;
    // Note: topInputDim differs, so compare only the interaction term
    // indirectly through total flops ordering at equal MLPs is unfair;
    // instead check the dot model costs more than its own MLPs alone.
    EXPECT_GT(c.flops, cat_cfg.inferenceCost(4).flops * 0.5);
}

TEST(Interaction, TimerEmitsBatchMMForDot)
{
    TimerOptions opts;
    opts.batch = 16;
    ModelTimer timer(broadwell(), rmc3Dot(), opts);
    ModelTiming t = timer.steadyState(10, 10);
    EXPECT_GT(t.secondsByKind(OpKind::BatchMM), 0.0);
    EXPECT_EQ(t.secondsByKind(OpKind::Concat), 0.0);
    // Paper: >96% of RMC3 time in BatchMatMul or FC.
    double share = t.fractionByKind(OpKind::FC) +
        t.fractionByKind(OpKind::BatchMM);
    EXPECT_GT(share, 0.90);
}

TEST(Interaction, TimerEmitsConcatForConcat)
{
    TimerOptions opts;
    opts.batch = 16;
    ModelTimer timer(broadwell(), rmc3Small(), opts);
    ModelTiming t = timer.steadyState(5, 5);
    EXPECT_EQ(t.secondsByKind(OpKind::BatchMM), 0.0);
    EXPECT_GT(t.secondsByKind(OpKind::Concat), 0.0);
}

TEST(Interaction, Rmc3DotLatencyComparableToRmc3)
{
    TimerOptions opts;
    opts.batch = 16;
    ModelTimer dot_timer(broadwell(), rmc3Dot(), opts);
    ModelTimer cat_timer(broadwell(), rmc3Small(), opts);
    double dot = dot_timer.steadyState(8, 8).totalSeconds();
    double cat = cat_timer.steadyState(8, 8).totalSeconds();
    EXPECT_GT(dot, 0.5 * cat);
    EXPECT_LT(dot, 3.0 * cat);
}

TEST(Interaction, FunctionalDotAtZooScale)
{
    Rng rng(9);
    RecModel model(rmc3Dot().functionalScale(256), rng);
    ModelInput input = model.randomInput(3, rng);
    Tensor ctr = model.forward(input);
    EXPECT_EQ(ctr.shape(), (Shape{3, 1}));
}

} // namespace
} // namespace recperf
