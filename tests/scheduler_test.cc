/**
 * @file
 * Tests for heterogeneity-aware inference placement.
 */

#include <gtest/gtest.h>

#include "core/logging.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "sched/scheduler.hh"

namespace recperf {
namespace {

std::vector<MachinePool>
smallFleet()
{
    return {{haswell(), 4}, {broadwell(), 4}, {skylake(), 4}};
}

TEST(Scheduler, PolicyNames)
{
    EXPECT_STREQ(placementPolicyName(PlacementPolicy::TypeOblivious),
                 "type-oblivious");
    EXPECT_STREQ(placementPolicyName(PlacementPolicy::ModelAware),
                 "model-aware");
}

TEST(Scheduler, RejectsEmptyInputs)
{
    EXPECT_THROW(HeterogeneousScheduler({}), PanicError);
    HeterogeneousScheduler sched(smallFleet(), 4);
    EXPECT_THROW(sched.place({}, PlacementPolicy::ModelAware), PanicError);
}

TEST(Scheduler, RateZeroWhenSlaImpossible)
{
    HeterogeneousScheduler sched(smallFleet(), 4);
    Workload w{rmc2Small(), 64, /*sla=*/1e-6, 1000.0};
    EXPECT_EQ(sched.machineRate(0, w), 0.0);
}

TEST(Scheduler, RatePositiveUnderGenerousSla)
{
    HeterogeneousScheduler sched(smallFleet(), 4);
    Workload w{rmc1Small(), 32, /*sla=*/0.5, 1000.0};
    for (size_t p = 0; p < 3; ++p)
        EXPECT_GT(sched.machineRate(p, w), 0.0) << "pool " << p;
}

TEST(Scheduler, SkylakeBestForBatchedThroughput)
{
    // Takeaway 4 surfaces through the scheduler's rate estimates.
    HeterogeneousScheduler sched(smallFleet(), 8);
    Workload batched{rmc1Small(), 128, 0.5, 1e9};
    double hsw = sched.machineRate(0, batched);
    double bdw = sched.machineRate(1, batched);
    double skl = sched.machineRate(2, batched);
    EXPECT_GT(skl, bdw);
    EXPECT_GT(bdw, hsw);
}

TEST(Scheduler, ModelAwareBeatsTypeObliviousOnMixedFleet)
{
    HeterogeneousScheduler sched(smallFleet(), 4);
    // Two over-subscribed services: a latency-critical one whose SLA
    // only some generations can meet, and a batched throughput one.
    // A type-oblivious dealer wastes machines that cannot meet the
    // first SLA; the model-aware placer does not.
    std::vector<Workload> workloads = {
        {rmc2Small(), 8, 0.0015, 1e9},
        {rmc1Small(), 128, 0.200, 1e9},
    };
    Placement aware = sched.place(workloads, PlacementPolicy::ModelAware);
    Placement blind = sched.place(workloads,
                                  PlacementPolicy::TypeOblivious);
    EXPECT_GT(aware.servedItemsPerSec, blind.servedItemsPerSec);
    EXPECT_GT(aware.servedItemsPerSec, 0.0);
    EXPECT_LE(aware.servedFraction(), 1.0 + 1e-9);
}

TEST(Scheduler, AllocationsRespectPoolSizes)
{
    auto fleet = smallFleet();
    HeterogeneousScheduler sched(fleet, 4);
    std::vector<Workload> workloads = {
        {rmc1Small(), 32, 0.5, 1e9}, // insatiable demand
    };
    Placement p = sched.place(workloads, PlacementPolicy::ModelAware);
    std::vector<uint32_t> used(fleet.size(), 0);
    for (const Allocation &a : p.allocations) {
        ASSERT_LT(a.poolIndex, fleet.size());
        used[a.poolIndex] += a.machines;
    }
    for (size_t i = 0; i < fleet.size(); ++i)
        EXPECT_LE(used[i], fleet[i].machines);
}

TEST(Scheduler, ServedNeverExceedsDemand)
{
    HeterogeneousScheduler sched(smallFleet(), 4);
    std::vector<Workload> workloads = {
        {rmc1Small(), 32, 0.5, 500.0}, // tiny demand, huge fleet
    };
    Placement p = sched.place(workloads, PlacementPolicy::ModelAware);
    EXPECT_LE(p.servedItemsPerSec, 500.0 + 1e-6);
    EXPECT_NEAR(p.servedFraction(), 1.0, 1e-6);
}

} // namespace
} // namespace recperf
