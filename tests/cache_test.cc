/**
 * @file
 * Unit tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/logging.hh"
#include "simcache/cache.hh"

namespace recperf {
namespace {

TEST(Cache, GeometryValidation)
{
    Cache c("t", 64 * 1024, 8);
    EXPECT_EQ(c.numSets(), 64u * 1024 / 64 / 8);
    EXPECT_EQ(c.lineBytes(), 64u);
    EXPECT_THROW(Cache("bad", 1000, 8), PanicError); // not divisible
}

TEST(Cache, MissOnEmpty)
{
    Cache c("t", 4096, 4);
    EXPECT_FALSE(c.access(0));
    EXPECT_EQ(c.stats().misses, 1u);
    EXPECT_EQ(c.stats().hits, 0u);
}

TEST(Cache, HitAfterFill)
{
    Cache c("t", 4096, 4);
    c.fill(128);
    EXPECT_TRUE(c.access(128));
    EXPECT_EQ(c.stats().hits, 1u);
}

TEST(Cache, SameLineDifferentBytes)
{
    Cache c("t", 4096, 4);
    c.fill(0);
    EXPECT_TRUE(c.access(1));   // same 64 B line
    EXPECT_TRUE(c.access(63));
    EXPECT_FALSE(c.access(64)); // next line
}

TEST(Cache, AccessDoesNotAllocate)
{
    Cache c("t", 4096, 4);
    c.access(0);
    EXPECT_FALSE(c.contains(0));
    EXPECT_EQ(c.occupancy(), 0u);
}

TEST(Cache, FillIsIdempotent)
{
    Cache c("t", 4096, 4);
    c.fill(0);
    EXPECT_FALSE(c.fill(0).has_value());
    EXPECT_EQ(c.occupancy(), 1u);
}

TEST(Cache, LruEvictionOrder)
{
    // One set: 256 B, 4-way => 1 set of 4 lines.
    Cache c("t", 256, 4);
    EXPECT_EQ(c.numSets(), 1u);
    for (uint64_t line = 0; line < 4; ++line)
        c.fill(line * 64);
    // Touch lines 0-2 so line 3 is LRU.
    c.access(0);
    c.access(64);
    c.access(128);
    auto evicted = c.fill(1024);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 192u);
}

TEST(Cache, EvictionReturnsLineAddress)
{
    Cache c("t", 256, 1); // direct-mapped, 4 sets
    c.fill(0);
    auto evicted = c.fill(256); // maps to the same set (4 sets * 64 B)
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 0u);
    EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, InvalidateCountsBackInvalidation)
{
    Cache c("t", 4096, 4);
    c.fill(0);
    EXPECT_TRUE(c.invalidate(0));
    EXPECT_EQ(c.stats().backInvalidations, 1u);
    EXPECT_FALSE(c.invalidate(0));
    EXPECT_EQ(c.stats().backInvalidations, 1u);
    EXPECT_FALSE(c.contains(0));
}

TEST(Cache, ExtractDoesNotCountBackInvalidation)
{
    Cache c("t", 4096, 4);
    c.fill(0);
    EXPECT_TRUE(c.extract(0));
    EXPECT_EQ(c.stats().backInvalidations, 0u);
    EXPECT_FALSE(c.contains(0));
    EXPECT_FALSE(c.extract(0));
}

TEST(Cache, FlushKeepsStats)
{
    Cache c("t", 4096, 4);
    c.fill(0);
    c.access(0);
    c.flush();
    EXPECT_EQ(c.occupancy(), 0u);
    EXPECT_EQ(c.stats().hits, 1u);
    EXPECT_FALSE(c.access(0));
}

TEST(Cache, ResidentLines)
{
    Cache c("t", 4096, 4);
    c.fill(0);
    c.fill(640);
    auto lines = c.residentLines();
    std::sort(lines.begin(), lines.end());
    EXPECT_EQ(lines, (std::vector<uint64_t>{0, 640}));
}

TEST(Cache, WorkingSetFitsNoCapacityMisses)
{
    // A working set smaller than capacity: after the first pass, every
    // access hits regardless of order.
    Cache c("t", 64 * 1024, 8);
    const uint64_t lines = 64 * 1024 / 64 / 2; // half capacity
    for (uint64_t i = 0; i < lines; ++i) {
        c.access(i * 64);
        c.fill(i * 64);
    }
    c.stats().reset();
    for (int pass = 0; pass < 3; ++pass) {
        for (uint64_t i = 0; i < lines; ++i)
            EXPECT_TRUE(c.access(i * 64));
    }
    EXPECT_EQ(c.stats().misses, 0u);
}

TEST(Cache, ThrashingWorkingSetMissesEverything)
{
    // Classic LRU pathology: cyclic sweep over capacity+1 lines of one
    // set misses every time.
    Cache c("t", 256, 4); // one set, 4 ways
    const uint64_t lines = 5;
    for (int pass = 0; pass < 4; ++pass) {
        for (uint64_t i = 0; i < lines; ++i) {
            if (!c.access(i * 64))
                c.fill(i * 64);
        }
    }
    // First pass: 5 misses. Subsequent passes: all misses (LRU cycle).
    EXPECT_EQ(c.stats().misses, 20u);
}

TEST(Cache, StatsMissRate)
{
    Cache c("t", 4096, 4);
    c.access(0);
    c.fill(0);
    c.access(0);
    EXPECT_DOUBLE_EQ(c.stats().missRate(), 0.5);
}

TEST(Cache, SetIndexingIsolation)
{
    // Lines mapping to different sets never evict each other.
    Cache c("t", 512, 1); // 8 direct-mapped sets
    for (uint64_t i = 0; i < 8; ++i)
        EXPECT_FALSE(c.fill(i * 64).has_value());
    EXPECT_EQ(c.occupancy(), 8u);
}

} // namespace
} // namespace recperf
