/**
 * @file
 * Tests for the per-request causal record plane (obs/request_log.hh):
 * the blame decomposition math, the exemplar reservoirs' edge cases,
 * bitwise determinism of the log across host thread counts and chaos
 * seeds, byte-identity of every other export when logging is off, the
 * JSONL round trip with its strict parser, the CLI-knob validation
 * messages, and the `recperf explain` renderer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/thread_pool.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "obs/metrics.hh"
#include "obs/request_log.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"
#include "serving/distributed.hh"
#include "serving/server.hh"
#include "timing/model_timer.hh"

namespace recperf {
namespace {

using obs::RequestLogger;
using obs::RequestLogOptions;
using obs::RequestOutcome;
using obs::RequestPhase;
using obs::RequestRecord;
using obs::TailAttribution;

RequestRecord
servedRecord(uint64_t id, double latency,
             RequestPhase phase = RequestPhase::Service)
{
    RequestRecord r;
    r.id = id;
    r.arrival = static_cast<double>(id) * 1e-3;
    r.start = r.arrival;
    r.finish = r.arrival + latency;
    r.latency = latency;
    r.outcome = RequestOutcome::Served;
    r.phase[static_cast<size_t>(phase)] = latency;
    return r;
}

double
blameSum(const TailAttribution &tail)
{
    double sum = 0.0;
    for (double b : tail.blame)
        sum += b;
    return sum;
}

// --- blame decomposition ------------------------------------------------

TEST(AttributeTail, BlameMatchesHandComputation)
{
    // Nine fast all-service requests and one slow one whose extra time
    // is all queueing: p50 = 1 ms, the single tail record (10 ms) has
    // weight (10-1)/10 = 0.9, so mass is 0.9 ms service + 8.1 ms queue
    // and queue owns 90% of the blame.
    std::vector<RequestRecord> records;
    for (uint64_t i = 0; i < 9; ++i)
        records.push_back(servedRecord(i, 1e-3));
    RequestRecord slow = servedRecord(9, 10e-3);
    slow.phase[static_cast<size_t>(RequestPhase::Service)] = 1e-3;
    slow.phase[static_cast<size_t>(RequestPhase::Queue)] = 9e-3;
    records.push_back(slow);

    TailAttribution tail = obs::attributeTail(records);
    EXPECT_EQ(tail.served, 10u);
    EXPECT_DOUBLE_EQ(tail.p50, 1e-3);
    EXPECT_NEAR(tail.gap, tail.p99 - tail.p50, 1e-15);
    double w = (10e-3 - tail.p50) / 10e-3;
    EXPECT_NEAR(tail.mass[static_cast<size_t>(RequestPhase::Queue)],
                9e-3 * w, 1e-12);
    EXPECT_NEAR(tail.mass[static_cast<size_t>(RequestPhase::Service)],
                1e-3 * w, 1e-12);
    EXPECT_NEAR(tail.blame[static_cast<size_t>(RequestPhase::Queue)],
                0.9, 1e-12);
    EXPECT_NEAR(blameSum(tail), 1.0, 1e-12);
}

TEST(AttributeTail, NonServedRecordsAreExcluded)
{
    std::vector<RequestRecord> records;
    for (uint64_t i = 0; i < 4; ++i)
        records.push_back(servedRecord(i, 1e-3));
    RequestRecord shed = servedRecord(99, 50e-3, RequestPhase::Queue);
    shed.outcome = RequestOutcome::ShedAdmission;
    records.push_back(shed);

    TailAttribution tail = obs::attributeTail(records);
    EXPECT_EQ(tail.served, 4u);
    EXPECT_DOUBLE_EQ(tail.blame[static_cast<size_t>(
        RequestPhase::Queue)], 0.0);
}

TEST(AttributeTail, UniformLatenciesFallBackToServiceBlame)
{
    // No record is slower than the median: zero tail mass, but the
    // fractions must still sum to 1 (all on Service by convention).
    std::vector<RequestRecord> records;
    for (uint64_t i = 0; i < 5; ++i)
        records.push_back(servedRecord(i, 2e-3));
    TailAttribution tail = obs::attributeTail(records);
    EXPECT_EQ(tail.excessMass, 0.0);
    EXPECT_DOUBLE_EQ(tail.blame[static_cast<size_t>(
        RequestPhase::Service)], 1.0);
    EXPECT_NEAR(blameSum(tail), 1.0, 1e-12);
}

TEST(AttributeTail, EmptyLogStillSumsToOne)
{
    TailAttribution tail = obs::attributeTail({});
    EXPECT_EQ(tail.served, 0u);
    EXPECT_NEAR(blameSum(tail), 1.0, 1e-12);
}

// --- exemplar reservoirs ------------------------------------------------

TEST(Reservoirs, SlowestKHandlesEmptyAndOversizedK)
{
    RequestLogger log;
    RequestLogOptions opts;
    opts.slowestK = 10;
    log.configure(opts);
    log.setEnabled(true);
    EXPECT_TRUE(log.slowestExemplars().empty());

    log.record(servedRecord(0, 3e-3));
    log.record(servedRecord(1, 1e-3));
    log.record(servedRecord(2, 2e-3));
    // k = 10 > 3 served records: all of them, latency descending.
    std::vector<RequestRecord> slow = log.slowestExemplars();
    ASSERT_EQ(slow.size(), 3u);
    EXPECT_EQ(slow[0].id, 0u);
    EXPECT_EQ(slow[1].id, 2u);
    EXPECT_EQ(slow[2].id, 1u);
    log.setEnabled(false);
}

TEST(Reservoirs, DuplicateLatenciesBreakTiesByIdAscending)
{
    RequestLogger log;
    RequestLogOptions opts;
    opts.slowestK = 2;
    log.configure(opts);
    log.setEnabled(true);
    log.record(servedRecord(5, 2e-3));
    log.record(servedRecord(3, 2e-3));
    log.record(servedRecord(8, 2e-3));
    std::vector<RequestRecord> slow = log.slowestExemplars();
    ASSERT_EQ(slow.size(), 2u);
    EXPECT_EQ(slow[0].id, 3u);
    EXPECT_EQ(slow[1].id, 5u);
    log.setEnabled(false);
}

TEST(Reservoirs, WindowExcludesOldRecords)
{
    RequestLogger log;
    RequestLogOptions opts;
    opts.slowestK = 4;
    opts.windowSeconds = 1.0;
    log.configure(opts);
    log.setEnabled(true);
    // Slowest record finishes early; the window (anchored at the last
    // finish) must exclude it even though it is the global maximum.
    RequestRecord old = servedRecord(0, 50e-3);
    old.finish = 0.05;
    log.record(old);
    RequestRecord recent = servedRecord(1, 1e-3);
    recent.finish = 10.0;
    log.record(recent);
    std::vector<RequestRecord> slow = log.slowestExemplars();
    ASSERT_EQ(slow.size(), 1u);
    EXPECT_EQ(slow[0].id, 1u);
    log.setEnabled(false);
}

TEST(Reservoirs, DecileExemplarsRespectPerDecileCap)
{
    RequestLogger log;
    RequestLogOptions opts;
    opts.perDecile = 1;
    log.configure(opts);
    log.setEnabled(true);
    for (uint64_t i = 0; i < 40; ++i)
        log.record(servedRecord(i, 1e-4 * static_cast<double>(i + 1)));
    std::vector<RequestRecord> deciles = log.decileExemplars();
    EXPECT_EQ(deciles.size(), 10u);
    for (size_t i = 1; i < deciles.size(); ++i)
        EXPECT_LE(deciles[i - 1].latency, deciles[i].latency);

    opts.perDecile = 0;
    log.configure(opts);
    log.record(servedRecord(0, 1e-3));
    EXPECT_TRUE(log.decileExemplars().empty());
    log.setEnabled(false);
}

TEST(Reservoirs, CapacityDropsAndCounts)
{
    RequestLogger log;
    RequestLogOptions opts;
    opts.capacity = 2;
    log.configure(opts);
    log.setEnabled(true);
    for (uint64_t i = 0; i < 5; ++i)
        log.record(servedRecord(i, 1e-3));
    EXPECT_EQ(log.size(), 2u);
    EXPECT_EQ(log.recorded(), 5u);
    EXPECT_EQ(log.dropped(), 3u);
    log.setEnabled(false);
}

// --- determinism --------------------------------------------------------

ServerOptions
overloadServerOptions(uint64_t seed)
{
    ServerOptions sopts;
    sopts.numWorkers = 2;
    sopts.maxBatch = 16;
    sopts.slaSeconds = 1.5e-3;
    sopts.seed = seed;
    sopts.admission.enabled = true;
    sopts.deadlineSeconds = 4e-3;
    return sopts;
}

/** Overloaded serve run with the global logger on; returns the JSONL. */
std::string
loggedServeRun(uint64_t seed)
{
    RequestLogger &rlog = RequestLogger::global();
    rlog.configure(RequestLogOptions{});
    rlog.setEnabled(true);
    TimerOptions topts;
    topts.batch = 16;
    Server server(broadwell(), rmc1Small(), topts,
                  overloadServerOptions(seed));
    server.runOpenLoop(250000.0, 1200);
    std::string jsonl = rlog.toJsonl();
    rlog.setEnabled(false);
    return jsonl;
}

/** Chaos shard run (replicas + hedges + stragglers) with logging. */
std::string
loggedShardRun(uint64_t seed)
{
    RequestLogger &rlog = RequestLogger::global();
    rlog.configure(RequestLogOptions{});
    rlog.setEnabled(true);
    TimerOptions topts;
    topts.batch = 16;
    ShardedInference sim(broadwell(), rmc1Small(), 4, NetworkConfig{},
                         topts);
    RunOptions ropts;
    ropts.warmupIters = 10;
    ropts.measureIters = 120;
    ropts.faults.stragglerProb = 0.2;
    ropts.faults.shardMtbfSeconds = 20e-3;
    ropts.faults.shardMttrSeconds = 2e-3;
    ropts.faults.seed = seed;
    ropts.retry.timeoutSeconds = 2e-3;
    ropts.retry.maxRetries = 2;
    ropts.hedge.enabled = true;
    ropts.deadlineSeconds = 50e-3;
    ReplicaOptions replicas;
    replicas.replicas = 2;
    replicas.seed = seed;
    ropts.replicas = replicas;
    sim.run(ropts);
    std::string jsonl = rlog.toJsonl();
    rlog.setEnabled(false);
    return jsonl;
}

TEST(Determinism, ServeLogBitIdenticalAcrossRunsAndThreadCounts)
{
    int saved = globalThreadCount();
    setGlobalThreadCount(1);
    std::string once = loggedServeRun(11);
    std::string twice = loggedServeRun(11);
    EXPECT_EQ(once, twice) << "same seed, same thread count";
    setGlobalThreadCount(4);
    std::string wide = loggedServeRun(11);
    setGlobalThreadCount(saved);
    EXPECT_EQ(once, wide) << "RECPERF_THREADS must not leak into the "
                             "virtual-time record plane";
    EXPECT_FALSE(once.empty());
}

TEST(Determinism, ShardChaosSeedsAreReproducibleAndTiled)
{
    int saved = globalThreadCount();
    for (uint64_t seed : {3u, 4u, 6u}) {
        setGlobalThreadCount(1);
        std::string narrow = loggedShardRun(seed);
        setGlobalThreadCount(4);
        std::string wide = loggedShardRun(seed);
        EXPECT_EQ(narrow, wide) << "seed " << seed;

        // Parse back and hold the core invariants per seed.
        std::vector<RequestRecord> records;
        std::string err;
        ASSERT_TRUE(obs::parseRequestLog(narrow, &records, &err))
            << err;
        EXPECT_EQ(records.size(), 120u);
        for (const RequestRecord &rec : records) {
            EXPECT_NEAR(rec.phaseSum(), rec.latency,
                        1e-9 + 1e-6 * rec.latency)
                << "seed " << seed << " record " << rec.id;
        }
        EXPECT_NEAR(blameSum(obs::attributeTail(records)), 1.0, 1e-6);
    }
    setGlobalThreadCount(saved);
}

// --- off-path byte identity ---------------------------------------------

/** Trace + timeseries + serving-metrics exports of one seeded run. */
struct RunArtifacts
{
    std::string traceJson;
    std::string timeseriesJsonl;
    std::string metricsJson;
};

RunArtifacts
observedServeRun(bool log_requests)
{
    obs::Tracer &tracer = obs::Tracer::global();
    tracer.clear();
    tracer.setEnabled(true);
    obs::TimeSeriesSampler &sampler = obs::TimeSeriesSampler::global();
    sampler.configure(obs::TimeSeriesOptions{});
    sampler.setEnabled(true);
    RequestLogger &rlog = RequestLogger::global();
    if (log_requests) {
        rlog.configure(RequestLogOptions{});
        rlog.setEnabled(true);
    }

    TimerOptions topts;
    topts.batch = 16;
    Server server(broadwell(), rmc1Small(), topts,
                  overloadServerOptions(21));
    ServingStats stats = server.runOpenLoop(250000.0, 800);

    RunArtifacts a;
    tracer.setEnabled(false);
    sampler.setEnabled(false);
    rlog.setEnabled(false);
    a.traceJson = tracer.toJson();
    a.timeseriesJsonl = sampler.toJsonl();
    static obs::MetricsRegistry reg;
    reg.reset();
    stats.exportTo(reg);
    a.metricsJson = reg.snapshot().toJson();
    return a;
}

TEST(OffPath, EnablingTheLoggerLeavesEveryOtherExportByteIdentical)
{
    RunArtifacts off = observedServeRun(false);
    RunArtifacts on = observedServeRun(true);
    EXPECT_EQ(off.traceJson, on.traceJson);
    EXPECT_EQ(off.timeseriesJsonl, on.timeseriesJsonl);
    EXPECT_EQ(off.metricsJson, on.metricsJson);
    // And the legacy exports never grow tail.* keys on their own.
    EXPECT_EQ(off.metricsJson.find("tail."), std::string::npos);
}

// --- JSONL round trip and strict parsing --------------------------------

TEST(RoundTrip, ToJsonlParsesBackToTheSameRecords)
{
    std::string jsonl = loggedShardRun(3);
    std::vector<RequestRecord> records;
    std::string err;
    ASSERT_TRUE(obs::parseRequestLog(jsonl, &records, &err)) << err;
    ASSERT_EQ(records.size(), 120u);
    for (size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(records[i].id, static_cast<uint64_t>(i));
    // Re-serializing the parsed records reproduces the log: nothing
    // the blame math needs is lost in the %.9g round trip.
    std::string again;
    for (const RequestRecord &rec : records)
        again += obs::requestRecordJson(rec) + "\n";
    EXPECT_EQ(jsonl, again);
}

TEST(Parse, MalformedLogsFailLoudlyWithLineNumbers)
{
    std::vector<RequestRecord> out;
    std::string err;
    EXPECT_FALSE(obs::parseRequestLog("", &out, &err));
    EXPECT_NE(err.find("empty"), std::string::npos) << err;

    EXPECT_FALSE(obs::parseRequestLog("{not json\n", &out, &err));
    EXPECT_NE(err.find("line 1"), std::string::npos) << err;

    std::string good = obs::requestRecordJson(servedRecord(0, 1e-3));
    EXPECT_FALSE(
        obs::parseRequestLog(good + "\n[1, 2]\n", &out, &err));
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;

    // Truncated mid-record: the cut line must fail, not parse as a
    // shorter log.
    std::string truncated = good.substr(0, good.size() / 2);
    EXPECT_FALSE(obs::parseRequestLog(truncated + "\n", &out, &err));

    std::string bad_outcome = good;
    bad_outcome.replace(bad_outcome.find("served"), 6, "lost42");
    EXPECT_FALSE(
        obs::parseRequestLog(bad_outcome + "\n", &out, &err));
    EXPECT_NE(err.find("outcome"), std::string::npos) << err;

    std::string bad_phase = good;
    bad_phase.replace(bad_phase.find("service"), 7, "voodoo7");
    EXPECT_FALSE(obs::parseRequestLog(bad_phase + "\n", &out, &err));
    EXPECT_NE(err.find("phase"), std::string::npos) << err;
}

// --- CLI knob validation ------------------------------------------------

TEST(ValidateArgs, RejectsBadKnobsWithActionableMessages)
{
    using obs::validateRequestLogArgs;
    EXPECT_EQ(validateRequestLogArgs(4, 0.0, true, false, false), "");
    EXPECT_EQ(validateRequestLogArgs(1, 0.5, true, true, true), "");
    EXPECT_EQ(validateRequestLogArgs(4, 0.0, false, false, false), "");

    EXPECT_NE(validateRequestLogArgs(0, 0.0, true, true, false)
                  .find("--request-log-k"),
              std::string::npos);
    EXPECT_NE(validateRequestLogArgs(4, -1.0, true, false, true)
                  .find("--request-log-window-ms"),
              std::string::npos);
    // Tuning knobs without a sink are a spec error, not a no-op.
    EXPECT_NE(validateRequestLogArgs(8, 0.0, false, true, false)
                  .find("no effect"),
              std::string::npos);
    EXPECT_NE(validateRequestLogArgs(4, 0.5, false, false, true)
                  .find("no effect"),
              std::string::npos);
}

// --- explain ------------------------------------------------------------

TEST(Explain, RendersAttributionExemplarsAndDecilesFromLogAlone)
{
    obs::ExplainInputs inputs;
    inputs.requestLogJsonl = loggedShardRun(6);
    std::string err;
    std::string view = obs::renderExplain(inputs, err);
    ASSERT_FALSE(view.empty()) << err;
    EXPECT_NE(view.find("== Tail attribution"), std::string::npos);
    EXPECT_NE(view.find("== Slowest exemplars =="), std::string::npos);
    EXPECT_NE(view.find("== Latency deciles"), std::string::npos);
    EXPECT_NE(view.find("blame fractions sum to 1.000000"),
              std::string::npos)
        << view;
    // No metrics artifact: no cross-check section.
    EXPECT_EQ(view.find("Metrics cross-check"), std::string::npos);
}

TEST(Explain, MetricsJoinCrossChecksBlameGauges)
{
    std::string jsonl = loggedShardRun(4);
    static obs::MetricsRegistry reg;
    reg.reset();
    RequestLogger::global().exportTo(reg);

    obs::ExplainInputs inputs;
    inputs.requestLogJsonl = jsonl;
    inputs.metricsJson = reg.snapshot().toJson();
    std::string err;
    std::string view = obs::renderExplain(inputs, err);
    ASSERT_FALSE(view.empty()) << err;
    EXPECT_NE(view.find("== Metrics cross-check =="),
              std::string::npos);
    EXPECT_NE(view.find("match the log within 1e-6"),
              std::string::npos)
        << view;

    // A doctored gauge must fail the join, not render quietly.
    std::string doctored = inputs.metricsJson;
    size_t pos = doctored.find("tail.blame.");
    ASSERT_NE(pos, std::string::npos);
    size_t colon = doctored.find(": ", pos);
    ASSERT_NE(colon, std::string::npos);
    size_t end = doctored.find_first_of(",\n}", colon);
    doctored.replace(colon + 2, end - colon - 2, "0.5");
    inputs.metricsJson = doctored;
    EXPECT_EQ(obs::renderExplain(inputs, err), "");
    EXPECT_FALSE(err.empty());
}

TEST(Explain, MalformedLogIsAnErrorNotACrash)
{
    obs::ExplainInputs inputs;
    inputs.requestLogJsonl = "{broken\n";
    std::string err;
    EXPECT_EQ(obs::renderExplain(inputs, err), "");
    EXPECT_FALSE(err.empty());
}

} // namespace
} // namespace recperf
