/**
 * @file
 * Unit tests for ModelConfig and the production model zoo (Table I).
 */

#include <gtest/gtest.h>

#include "core/logging.hh"
#include "model/config.hh"
#include "model/proxy.hh"
#include "model/zoo.hh"

namespace recperf {
namespace {

TEST(ModelConfig, ValidateAcceptsZoo)
{
    for (const ModelConfig &m : allZooModels())
        EXPECT_NO_THROW(m.validate()) << m.name;
}

TEST(ModelConfig, ValidateRejectsBadTop)
{
    ModelConfig m = rmc1Small();
    m.topMlp.back() = 2;
    EXPECT_THROW(m.validate(), PanicError);
    m.topMlp.clear();
    EXPECT_THROW(m.validate(), PanicError);
}

TEST(ModelConfig, ValidateRejectsBottomWithoutDense)
{
    ModelConfig m = rmc1Small();
    m.denseFeatures = 0;
    EXPECT_THROW(m.validate(), PanicError);
}

TEST(ModelConfig, ValidateRejectsIncompleteEmbedding)
{
    ModelConfig m = rmc1Small();
    m.emb.embDim = 0;
    EXPECT_THROW(m.validate(), PanicError);
}

TEST(ModelConfig, TopInputDim)
{
    ModelConfig m = rmc1Small();
    EXPECT_EQ(m.bottomOutDim(), 32);
    EXPECT_EQ(m.topInputDim(), 32 + 4 * 32);
}

TEST(ModelConfig, FcParamCount)
{
    ModelConfig m;
    m.name = "tiny";
    m.denseFeatures = 4;
    m.bottomMlp = {3};
    m.emb = {1, 10, 2, 1};
    m.topMlp = {1};
    m.validate();
    // bottom: 4*3+3 = 15; top input = 3 + 2 = 5; top: 5*1+1 = 6.
    EXPECT_EQ(m.fcParamCount(), 21);
    EXPECT_EQ(m.embParamCount(), 20);
}

TEST(Zoo, EmbeddingStorageAnchors)
{
    // Section III-B: ~100 MB (RMC1), ~10 GB (RMC2), ~1 GB (RMC3).
    double rmc1_mb = rmc1Small().embStorageBytes() / 1e6;
    double rmc2_gb = rmc2Small().embStorageBytes() / 1e9;
    double rmc3_gb = rmc3Small().embStorageBytes() / 1e9;
    EXPECT_GT(rmc1_mb, 50.0);
    EXPECT_LT(rmc1_mb, 200.0);
    EXPECT_GT(rmc2_gb, 5.0);
    EXPECT_LT(rmc2_gb, 15.0);
    EXPECT_GT(rmc3_gb, 0.5);
    EXPECT_LT(rmc3_gb, 2.0);
}

TEST(Zoo, Rmc2HasManyMoreTables)
{
    // Table I: RMC2 has close to an order of magnitude more tables.
    EXPECT_GE(rmc2Small().emb.numTables, 8 * rmc1Small().emb.numTables);
    EXPECT_GE(rmc2Small().emb.numTables, 8 * rmc3Small().emb.numTables);
}

TEST(Zoo, TableCountsWithinFleetRange)
{
    // Section II-C: 4 to 40 embedding tables per model.
    for (const ModelConfig &m : allZooModels()) {
        EXPECT_GE(m.emb.numTables, 4) << m.name;
        EXPECT_LE(m.emb.numTables, 40) << m.name;
    }
}

TEST(Zoo, EmbeddingDimWithinPaperRange)
{
    // Section III-B: output dimension between 24 and 40 for all RMCs.
    for (const ModelConfig &m : allZooModels()) {
        EXPECT_GE(m.emb.embDim, 24) << m.name;
        EXPECT_LE(m.emb.embDim, 40) << m.name;
    }
}

TEST(Zoo, Rmc3FewerLookups)
{
    // RMC1/RMC2 pool ~4x more sparse IDs per table than RMC3.
    EXPECT_GE(rmc1Small().emb.lookupsPerTable,
              3 * rmc3Small().emb.lookupsPerTable);
    EXPECT_GE(rmc2Small().emb.lookupsPerTable,
              3 * rmc3Small().emb.lookupsPerTable);
}

TEST(Zoo, Rmc3WiderBottomFc)
{
    EXPECT_GE(rmc3Small().bottomMlp.front(),
              8 * rmc1Small().bottomMlp.front());
    EXPECT_GE(rmc3Small().denseFeatures, 8 * rmc1Small().denseFeatures);
}

TEST(Zoo, LargeVariantsAreLarger)
{
    EXPECT_GT(rmc1Large().fcParamCount() + rmc1Large().embParamCount(),
              rmc1Small().fcParamCount() + rmc1Small().embParamCount());
    EXPECT_GT(rmc2Large().embParamCount(), rmc2Small().embParamCount());
    EXPECT_GT(rmc3Large().fcParamCount(), rmc3Small().fcParamCount());
}

TEST(Zoo, PaperExampleMatchesSectionVII)
{
    ModelConfig m = rmc1PaperExample();
    EXPECT_EQ(m.emb.numTables, 5);
    EXPECT_EQ(m.emb.rowsPerTable, 100'000);
    EXPECT_EQ(m.emb.embDim, 32);
    EXPECT_EQ(m.emb.lookupsPerTable, 80);
    EXPECT_EQ(m.bottomMlp, (std::vector<int64_t>{128, 64, 32}));
    EXPECT_EQ(m.topMlp, (std::vector<int64_t>{128, 32, 1}));
}

TEST(Zoo, NcfOrdersOfMagnitudeSmaller)
{
    // Fig 12: NCF embedding tables and FC stacks are far smaller than
    // the production ranking models'.
    ModelConfig ncf = ncfConfig();
    EXPECT_LT(ncf.embStorageBytes(), rmc1Small().embStorageBytes());
    EXPECT_LT(ncf.embStorageBytes() * 50, rmc2Small().embStorageBytes());
    EXPECT_LT(ncf.embStorageBytes() * 10, rmc3Small().embStorageBytes());
    EXPECT_EQ(ncf.emb.lookupsPerTable, 1);
    EXPECT_EQ(ncf.denseFeatures, 0);
    EXPECT_NO_THROW(ncf.validate());
}

TEST(ModelConfig, LookupsPerSample)
{
    EXPECT_EQ(rmc1Small().lookupsPerSample(), 4 * 80);
    EXPECT_EQ(rmc3Small().lookupsPerSample(), 4 * 20);
}

TEST(ModelConfig, InferenceCostScalesWithBatch)
{
    ModelConfig m = rmc1Small();
    OpCost c1 = m.inferenceCost(1);
    OpCost c8 = m.inferenceCost(8);
    EXPECT_GT(c1.flops, 0.0);
    // FLOPs scale exactly linearly with batch.
    EXPECT_NEAR(c8.flops, 8.0 * c1.flops, 1e-6 * c8.flops);
    // Bytes grow sublinearly (weights amortize across the batch).
    EXPECT_LT(c8.bytesRead, 8.0 * c1.bytesRead);
}

TEST(ModelConfig, Rmc3MostComputeIntense)
{
    // Fig 2: RMC3 has the most FLOPs of the three classes.
    EXPECT_GT(rmc3Small().inferenceCost(1).flops,
              10 * rmc1Small().inferenceCost(1).flops);
    EXPECT_GT(rmc3Small().inferenceCost(1).flops,
              rmc2Small().inferenceCost(1).flops);
}

TEST(ModelConfig, Rmc2MostBytes)
{
    // Fig 2: RMC2 reads the most bytes (embedding-heavy).
    EXPECT_GT(rmc2Small().inferenceCost(1).bytesRead,
              rmc1Small().inferenceCost(1).bytesRead);
}

TEST(ModelConfig, FunctionalScaleCapsRows)
{
    ModelConfig scaled = rmc2Small().functionalScale(1024);
    EXPECT_EQ(scaled.emb.rowsPerTable, 1024);
    EXPECT_EQ(scaled.emb.numTables, rmc2Small().emb.numTables);
    EXPECT_NE(scaled.name, rmc2Small().name);
    // Already-small tables are untouched.
    ModelConfig same = rmc1Small().functionalScale(1'000'000'000);
    EXPECT_EQ(same.emb.rowsPerTable, rmc1Small().emb.rowsPerTable);
    EXPECT_EQ(same.name, rmc1Small().name);
}

TEST(ModelClass, Names)
{
    EXPECT_STREQ(modelClassName(ModelClass::RMC1), "RMC1");
    EXPECT_STREQ(modelClassName(ModelClass::NCF), "NCF");
}

TEST(Proxy, Fig2ReferenceSet)
{
    auto proxies = proxyModels();
    ASSERT_EQ(proxies.size(), 5u);
    for (const ProxyModel &p : proxies) {
        EXPECT_GT(p.flopsPerSample, 0.0) << p.name;
        EXPECT_GT(p.paramBytes, 0.0) << p.name;
        double share = 0.0;
        for (const auto &[kind, frac] : p.opShare)
            share += frac;
        EXPECT_NEAR(share, 1.0, 1e-9) << p.name;
    }
}

TEST(Proxy, CnnIntensityFarAboveSls)
{
    // Fig 5's ordering: CNN >> FC > RNN >> SLS in FLOPs/byte.
    double cnn = convLayerCost(2).intensity();
    double fc = fcLayerCost(32).intensity();
    double rnn = lstmLayerCost(8).intensity();
    EXPECT_GT(cnn, fc);
    EXPECT_GT(fc, rnn);
    EXPECT_GT(rnn, 0.25); // all above SLS's ~0.25
}

} // namespace
} // namespace recperf
