/**
 * @file
 * Unit tests for element-wise activations and concat.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/logging.hh"
#include "core/rng.hh"
#include "ops/elementwise.hh"

namespace recperf {
namespace {

TEST(Relu, ClampsNegatives)
{
    Tensor x({4});
    x.at(static_cast<int64_t>(0)) = -1.0f;
    x.at(static_cast<int64_t>(1)) = 0.0f;
    x.at(static_cast<int64_t>(2)) = 2.0f;
    x.at(static_cast<int64_t>(3)) = -0.5f;
    Tensor y = relu(x);
    EXPECT_EQ(y.at(static_cast<int64_t>(0)), 0.0f);
    EXPECT_EQ(y.at(static_cast<int64_t>(1)), 0.0f);
    EXPECT_EQ(y.at(static_cast<int64_t>(2)), 2.0f);
    EXPECT_EQ(y.at(static_cast<int64_t>(3)), 0.0f);
    // Input untouched.
    EXPECT_EQ(x.at(static_cast<int64_t>(0)), -1.0f);
}

TEST(Relu, InplaceMatchesOutOfPlace)
{
    Rng rng(1);
    Tensor x({100});
    x.fillUniform(rng, -5.0f, 5.0f);
    Tensor expected = relu(x);
    reluInplace(x);
    EXPECT_TRUE(x.allClose(expected));
}

TEST(Sigmoid, KnownValues)
{
    Tensor x({3});
    x.at(static_cast<int64_t>(0)) = 0.0f;
    x.at(static_cast<int64_t>(1)) = 100.0f;
    x.at(static_cast<int64_t>(2)) = -100.0f;
    Tensor y = sigmoid(x);
    EXPECT_FLOAT_EQ(y.at(static_cast<int64_t>(0)), 0.5f);
    EXPECT_NEAR(y.at(static_cast<int64_t>(1)), 1.0f, 1e-6f);
    EXPECT_NEAR(y.at(static_cast<int64_t>(2)), 0.0f, 1e-6f);
}

TEST(Sigmoid, OutputInUnitInterval)
{
    // Over extreme inputs fp32 saturates to exactly 0/1, so the closed
    // interval holds; over moderate inputs the open interval holds.
    Rng rng(2);
    Tensor x({1000});
    x.fillUniform(rng, -50.0f, 50.0f);
    Tensor y = sigmoid(x);
    for (int64_t i = 0; i < y.size(); ++i) {
        EXPECT_GE(y.at(i), 0.0f);
        EXPECT_LE(y.at(i), 1.0f);
    }

    x.fillUniform(rng, -10.0f, 10.0f);
    y = sigmoid(x);
    for (int64_t i = 0; i < y.size(); ++i) {
        EXPECT_GT(y.at(i), 0.0f);
        EXPECT_LT(y.at(i), 1.0f);
    }
}

TEST(Sigmoid, Monotone)
{
    Tensor x({2});
    x.at(static_cast<int64_t>(0)) = 1.0f;
    x.at(static_cast<int64_t>(1)) = 2.0f;
    Tensor y = sigmoid(x);
    EXPECT_LT(y.at(static_cast<int64_t>(0)), y.at(static_cast<int64_t>(1)));
}

TEST(ConcatCols, TwoTensors)
{
    Tensor a({2, 2}, 1.0f), b({2, 3}, 2.0f);
    Tensor c = concatCols({&a, &b});
    EXPECT_EQ(c.shape(), (Shape{2, 5}));
    EXPECT_EQ(c.at(0, 0), 1.0f);
    EXPECT_EQ(c.at(0, 1), 1.0f);
    EXPECT_EQ(c.at(0, 2), 2.0f);
    EXPECT_EQ(c.at(1, 4), 2.0f);
}

TEST(ConcatCols, PreservesOrderWithinRows)
{
    Tensor a({1, 2}), b({1, 1});
    a.at(0, 0) = 1.0f;
    a.at(0, 1) = 2.0f;
    b.at(0, 0) = 3.0f;
    Tensor c = concatCols({&a, &b});
    EXPECT_EQ(c.at(0, 0), 1.0f);
    EXPECT_EQ(c.at(0, 1), 2.0f);
    EXPECT_EQ(c.at(0, 2), 3.0f);
}

TEST(ConcatCols, SingleInputCopies)
{
    Tensor a({3, 2}, 4.0f);
    Tensor c = concatCols({&a});
    EXPECT_TRUE(c.allClose(a));
}

TEST(ConcatCols, ManyInputs)
{
    std::vector<Tensor> parts;
    std::vector<const Tensor *> ptrs;
    for (int i = 0; i < 10; ++i)
        parts.emplace_back(Shape{4, 3}, static_cast<float>(i));
    for (const Tensor &t : parts)
        ptrs.push_back(&t);
    Tensor c = concatCols(ptrs);
    EXPECT_EQ(c.shape(), (Shape{4, 30}));
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(c.at(2, i * 3 + 1), static_cast<float>(i));
}

TEST(ConcatCols, ErrorsOnMismatch)
{
    Tensor a({2, 2}), b({3, 2});
    EXPECT_THROW(concatCols({&a, &b}), PanicError);
    EXPECT_THROW(concatCols({}), PanicError);
    Tensor c({4});
    EXPECT_THROW(concatCols({&c}), PanicError);
}

TEST(ElementwiseCost, ClosedForm)
{
    OpCost c = elementwiseCost(100);
    EXPECT_DOUBLE_EQ(c.flops, 100.0);
    EXPECT_DOUBLE_EQ(c.bytesRead, 400.0);
    EXPECT_DOUBLE_EQ(c.bytesWritten, 400.0);
}

TEST(ConcatCost, NoFlops)
{
    OpCost c = concatCost(64);
    EXPECT_DOUBLE_EQ(c.flops, 0.0);
    EXPECT_DOUBLE_EQ(c.bytesRead, 256.0);
    EXPECT_DOUBLE_EQ(c.intensity(), 0.0);
}

TEST(OpCost, Accumulation)
{
    OpCost a{1.0, 2.0, 3.0};
    OpCost b{10.0, 20.0, 30.0};
    a += b;
    EXPECT_DOUBLE_EQ(a.flops, 11.0);
    EXPECT_DOUBLE_EQ(a.bytesRead, 22.0);
    EXPECT_DOUBLE_EQ(a.bytesWritten, 33.0);
    OpCost c = a + b;
    EXPECT_DOUBLE_EQ(c.flops, 21.0);
}

TEST(OpKind, Names)
{
    EXPECT_STREQ(opKindName(OpKind::FC), "FC");
    EXPECT_STREQ(opKindName(OpKind::SLS), "SLS");
    EXPECT_STREQ(opKindName(OpKind::Concat), "Concat");
    EXPECT_STREQ(opKindName(OpKind::Recurrent), "Recurrent");
}

} // namespace
} // namespace recperf
