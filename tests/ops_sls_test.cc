/**
 * @file
 * Unit and property tests for SparseLengthsSum (Algorithm 1).
 */

#include <gtest/gtest.h>

#include "core/logging.hh"
#include "core/rng.hh"
#include "ops/reference.hh"
#include "ops/sparse_lengths_sum.hh"

namespace recperf {
namespace {

TEST(EmbeddingTable, RejectsBadDims)
{
    EXPECT_THROW(EmbeddingTable(0, 4), PanicError);
    EXPECT_THROW(EmbeddingTable(4, 0), PanicError);
}

TEST(EmbeddingTable, StorageAccounting)
{
    EmbeddingTable t(1000, 32);
    EXPECT_EQ(t.paramCount(), 32'000);
    EXPECT_EQ(t.storageBytes(), 128'000);
}

TEST(Sls, SingleLookupReturnsRow)
{
    EmbeddingTable t(4, 3);
    for (int64_t r = 0; r < 4; ++r) {
        for (int64_t c = 0; c < 3; ++c)
            t.table().at(r, c) = static_cast<float>(10 * r + c);
    }
    Tensor out = t.forward({2}, {1});
    EXPECT_EQ(out.shape(), (Shape{1, 3}));
    EXPECT_FLOAT_EQ(out.at(0, 0), 20.0f);
    EXPECT_FLOAT_EQ(out.at(0, 2), 22.0f);
}

TEST(Sls, SumsMultipleRows)
{
    EmbeddingTable t(3, 2);
    t.table().at(0, 0) = 1.0f;
    t.table().at(1, 0) = 2.0f;
    t.table().at(2, 0) = 4.0f;
    Tensor out = t.forward({0, 1, 2}, {3});
    EXPECT_FLOAT_EQ(out.at(0, 0), 7.0f);
}

TEST(Sls, RepeatedIdCountsTwice)
{
    EmbeddingTable t(2, 1);
    t.table().at(0, 0) = 5.0f;
    Tensor out = t.forward({0, 0}, {2});
    EXPECT_FLOAT_EQ(out.at(0, 0), 10.0f);
}

TEST(Sls, MultipleOutputSlots)
{
    EmbeddingTable t(4, 1);
    for (int64_t r = 0; r < 4; ++r)
        t.table().at(r, 0) = static_cast<float>(1 << r);
    // Slot 0 pools {0,1}; slot 1 pools {2}; slot 2 pools {3, 0}.
    Tensor out = t.forward({0, 1, 2, 3, 0}, {2, 1, 2});
    EXPECT_EQ(out.shape(), (Shape{3, 1}));
    EXPECT_FLOAT_EQ(out.at(0, 0), 3.0f);
    EXPECT_FLOAT_EQ(out.at(1, 0), 4.0f);
    EXPECT_FLOAT_EQ(out.at(2, 0), 9.0f);
}

TEST(Sls, EmptySlotYieldsZeros)
{
    Rng rng(1);
    EmbeddingTable t(4, 2, rng);
    Tensor out = t.forward({1}, {0, 1});
    EXPECT_FLOAT_EQ(out.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(out.at(0, 1), 0.0f);
}

TEST(Sls, MeanReduction)
{
    EmbeddingTable t(2, 1);
    t.table().at(0, 0) = 2.0f;
    t.table().at(1, 0) = 4.0f;
    Tensor out = t.forward({0, 1}, {2}, SlsReduction::Mean);
    EXPECT_FLOAT_EQ(out.at(0, 0), 3.0f);
}

TEST(Sls, LengthsMismatchPanics)
{
    EmbeddingTable t(4, 2);
    EXPECT_THROW(t.forward({0, 1}, {3}), PanicError);
    EXPECT_THROW(t.forward({0, 1, 2}, {2}), PanicError);
}

TEST(Sls, OutOfRangeIdPanics)
{
    EmbeddingTable t(4, 2);
    EXPECT_THROW(t.forward({4}, {1}), PanicError);
    EXPECT_THROW(t.forward({-1}, {1}), PanicError);
}

TEST(SlsCost, ClosedForm)
{
    OpCost c = EmbeddingTable::cost(80, 1, 32);
    EXPECT_DOUBLE_EQ(c.flops, 80.0 * 32.0);
    EXPECT_DOUBLE_EQ(c.bytesRead, 80.0 * 32.0 * 4.0 + 80.0 * 8.0);
    EXPECT_DOUBLE_EQ(c.bytesWritten, 32.0 * 4.0);
}

TEST(SlsCost, LowComputeIntensity)
{
    // Fig 5: SLS operational intensity ~0.25 FLOPs/byte, far below FC.
    OpCost sls = EmbeddingTable::cost(80, 1, 32);
    EXPECT_NEAR(sls.intensity(), 0.25, 0.05);
    EXPECT_LT(sls.intensity(), 1.0);
}

/** Property sweep: pooled lookup equals the naive reference. */
class SlsSweep : public ::testing::TestWithParam<
    std::tuple<int64_t, int64_t, int64_t>>
{
};

TEST_P(SlsSweep, MatchesReference)
{
    auto [rows, dim, batch] = GetParam();
    Rng rng(static_cast<uint64_t>(rows * 131 + dim * 17 + batch));
    EmbeddingTable t(rows, dim, rng);

    std::vector<int64_t> ids, lengths;
    for (int64_t b = 0; b < batch; ++b) {
        int64_t len = rng.nextInt(0, 8);
        lengths.push_back(len);
        for (int64_t j = 0; j < len; ++j)
            ids.push_back(rng.nextInt(0, rows - 1));
    }

    Tensor got = t.forward(ids, lengths);
    Tensor want = reference::sparseLengthsSum(t.table(), ids, lengths);
    EXPECT_TRUE(got.allClose(want, 1e-5f))
        << "rows=" << rows << " dim=" << dim << " batch=" << batch;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SlsSweep,
    ::testing::Combine(::testing::Values<int64_t>(1, 16, 1000),
                       ::testing::Values<int64_t>(1, 15, 32, 64),
                       ::testing::Values<int64_t>(1, 7, 32)));

} // namespace
} // namespace recperf
