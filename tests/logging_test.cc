/**
 * @file
 * Unit tests for the logging/error-handling primitives.
 */

#include <gtest/gtest.h>

#include "core/logging.hh"

namespace recperf {
namespace {

TEST(StrPrintf, FormatsBasicTypes)
{
    EXPECT_EQ(strprintf("x=%d", 42), "x=42");
    EXPECT_EQ(strprintf("%s-%s", "a", "b"), "a-b");
    EXPECT_EQ(strprintf("%.2f", 3.14159), "3.14");
}

TEST(StrPrintf, EmptyFormat)
{
    EXPECT_EQ(strprintf("%s", ""), "");
}

TEST(StrPrintf, LongOutput)
{
    std::string big(10'000, 'q');
    std::string out = strprintf("%s!", big.c_str());
    EXPECT_EQ(out.size(), big.size() + 1);
    EXPECT_EQ(out.back(), '!');
}

TEST(Fatal, ThrowsFatalError)
{
    EXPECT_THROW(RP_FATAL("bad config %d", 7), FatalError);
}

TEST(Fatal, MessagePreserved)
{
    try {
        RP_FATAL("value was %d", 13);
        FAIL() << "RP_FATAL did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value was 13");
    }
}

TEST(Panic, ThrowsPanicError)
{
    EXPECT_THROW(RP_PANIC("impossible state"), PanicError);
}

TEST(Assert, PassesOnTrue)
{
    EXPECT_NO_THROW(RP_ASSERT(1 + 1 == 2, "math works"));
}

TEST(Assert, ThrowsOnFalse)
{
    EXPECT_THROW(RP_ASSERT(false, "deliberate"), PanicError);
}

TEST(Assert, ThrowsWithoutMessage)
{
    EXPECT_THROW(RP_ASSERT(false), PanicError);
}

TEST(Warn, DoesNotThrow)
{
    EXPECT_NO_THROW(RP_WARN("just a warning %d", 1));
    EXPECT_NO_THROW(RP_INFORM("status update"));
}

} // namespace
} // namespace recperf
