/**
 * @file
 * Unit tests for the NeuMF (MLPerf-NCF) baseline model.
 */

#include <gtest/gtest.h>

#include "core/logging.hh"
#include "core/rng.hh"
#include "model/ncf.hh"
#include "model/zoo.hh"

namespace recperf {
namespace {

NcfConfig
tinyNcf()
{
    NcfConfig c;
    c.numUsers = 50;
    c.numItems = 30;
    c.gmfDim = 8;
    c.mlpDim = 4;
    c.mlpLayers = {16, 8};
    return c;
}

TEST(Ncf, OutputShapeAndRange)
{
    Rng rng(1);
    NcfModel model(tinyNcf(), rng);
    NcfInput input = model.randomInput(7, rng);
    Tensor p = model.forward(input);
    EXPECT_EQ(p.shape(), (Shape{7, 1}));
    for (int64_t i = 0; i < p.size(); ++i) {
        EXPECT_GT(p.at(i), 0.0f);
        EXPECT_LT(p.at(i), 1.0f);
    }
}

TEST(Ncf, Deterministic)
{
    Rng a(3), b(3);
    NcfModel ma(tinyNcf(), a), mb(tinyNcf(), b);
    Rng in_a(5), in_b(5);
    EXPECT_TRUE(ma.forward(ma.randomInput(4, in_a))
                    .allClose(mb.forward(mb.randomInput(4, in_b))));
}

TEST(Ncf, BatchConsistency)
{
    Rng rng(7);
    NcfModel model(tinyNcf(), rng);
    Rng in_rng(9);
    NcfInput batch = model.randomInput(4, in_rng);
    Tensor full = model.forward(batch);
    for (size_t s = 0; s < 4; ++s) {
        NcfInput one{{batch.userIds[s]}, {batch.itemIds[s]}};
        Tensor p = model.forward(one);
        EXPECT_NEAR(p.at(static_cast<int64_t>(0)),
                    full.at(static_cast<int64_t>(s)), 1e-5f);
    }
}

TEST(Ncf, SameUserItemPairGivesSameScore)
{
    Rng rng(11);
    NcfModel model(tinyNcf(), rng);
    NcfInput input{{5, 5}, {9, 9}};
    Tensor p = model.forward(input);
    EXPECT_FLOAT_EQ(p.at(static_cast<int64_t>(0)),
                    p.at(static_cast<int64_t>(1)));
}

TEST(Ncf, DifferentItemsGiveDifferentScores)
{
    Rng rng(13);
    NcfModel model(tinyNcf(), rng);
    NcfInput input{{5, 5}, {9, 10}};
    Tensor p = model.forward(input);
    EXPECT_NE(p.at(static_cast<int64_t>(0)), p.at(static_cast<int64_t>(1)));
}

TEST(Ncf, RejectsMismatchedInputs)
{
    Rng rng(1);
    NcfModel model(tinyNcf(), rng);
    NcfInput bad{{1, 2}, {3}};
    EXPECT_THROW(model.forward(bad), PanicError);
    NcfInput empty{{}, {}};
    EXPECT_THROW(model.forward(empty), PanicError);
}

TEST(Ncf, ParamCountFormula)
{
    NcfConfig c = tinyNcf();
    Rng rng(1);
    NcfModel model(c, rng);
    int64_t emb = (c.numUsers + c.numItems) * (c.gmfDim + c.mlpDim);
    int64_t mlp = (2 * c.mlpDim) * 16 + 16 + 16 * 8 + 8;
    int64_t final = (c.gmfDim + 8) * 1 + 1;
    EXPECT_EQ(model.paramCount(), emb + mlp + final);
}

TEST(Ncf, DefaultConfigIsMovieLensScale)
{
    NcfConfig c;
    EXPECT_EQ(c.numUsers, 138'000);
    EXPECT_EQ(c.numItems, 27'000);
    // Full model runs at the real MLPerf scale (tables are only ~50 MB
    // total — that is the paper's point in Fig 12).
    Rng rng(17);
    NcfModel model(c, rng);
    EXPECT_LT(model.paramCount() * 4, 100 * 1'000'000);
    NcfInput input = model.randomInput(2, rng);
    EXPECT_EQ(model.forward(input).shape(), (Shape{2, 1}));
}

TEST(Ncf, ConfigApproximationConsistent)
{
    // The ModelConfig view of NCF used for characterization agrees with
    // the functional model's scale (same order of embedding params).
    Rng rng(19);
    NcfModel model(NcfConfig{}, rng);
    ModelConfig approx = ncfConfig();
    double ratio = static_cast<double>(approx.embParamCount()) /
        static_cast<double>(model.paramCount());
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.0);
}

} // namespace
} // namespace recperf
