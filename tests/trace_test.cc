/**
 * @file
 * Unit and statistical tests for sparse-ID trace generation (Fig 14).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include "core/logging.hh"
#include "trace/id_generator.hh"
#include "trace/trace_file.hh"

namespace recperf {
namespace {

TEST(UniformGen, StaysInRange)
{
    UniformGen gen(100, Rng(1));
    for (int i = 0; i < 10'000; ++i) {
        int64_t id = gen.next();
        EXPECT_GE(id, 0);
        EXPECT_LT(id, 100);
    }
}

TEST(UniformGen, NearlyUniqueOverLargeDomain)
{
    UniformGen gen(10'000'000, Rng(2));
    auto trace = gen.draw(10'000);
    EXPECT_GT(uniqueFraction(trace), 0.99);
}

TEST(UniformGen, RejectsEmptyDomain)
{
    EXPECT_THROW(UniformGen(0, Rng(1)), PanicError);
}

TEST(ZipfGen, StaysInRange)
{
    ZipfGen gen(1000, 1.0, Rng(3));
    for (int i = 0; i < 10'000; ++i) {
        int64_t id = gen.next();
        EXPECT_GE(id, 0);
        EXPECT_LT(id, 1000);
    }
}

TEST(ZipfGen, RankOneDominatesWithoutScatter)
{
    ZipfGen gen(10'000, 1.0, Rng(5), /*scatter=*/false);
    std::map<int64_t, int> counts;
    const int n = 50'000;
    for (int i = 0; i < n; ++i)
        ++counts[gen.next()];
    // Rank 0 should receive roughly 1/H(N) of the mass — about 10% for
    // alpha=1, N=1e4 — and be the most popular row.
    int max_count = 0;
    for (auto &[id, c] : counts)
        max_count = std::max(max_count, c);
    EXPECT_EQ(counts.begin()->first, 0);
    EXPECT_EQ(counts[0], max_count);
    EXPECT_GT(counts[0], n / 20);
}

TEST(ZipfGen, HigherAlphaIsMoreSkewed)
{
    auto top_share = [](double alpha) {
        ZipfGen gen(100'000, alpha, Rng(7), /*scatter=*/false);
        int top = 0;
        const int n = 20'000;
        for (int i = 0; i < n; ++i)
            top += gen.next() < 10 ? 1 : 0;
        return static_cast<double>(top) / n;
    };
    EXPECT_GT(top_share(1.2), top_share(0.8));
    EXPECT_GT(top_share(0.8), top_share(0.5));
}

TEST(ZipfGen, ScatterDecorrelatesButPreservesSkew)
{
    ZipfGen gen(100'000, 1.0, Rng(9), /*scatter=*/true);
    std::map<int64_t, int> counts;
    const int n = 50'000;
    for (int i = 0; i < n; ++i)
        ++counts[gen.next()];
    int max_count = 0;
    int64_t hottest = -1;
    for (auto &[id, c] : counts) {
        if (c > max_count) {
            max_count = c;
            hottest = id;
        }
    }
    EXPECT_NE(hottest, 0);          // not physically first
    EXPECT_GT(max_count, n / 25);   // still very hot
}

TEST(ZipfGen, RejectsBadParams)
{
    EXPECT_THROW(ZipfGen(0, 1.0, Rng(1)), PanicError);
    EXPECT_THROW(ZipfGen(10, 0.0, Rng(1)), PanicError);
}

TEST(ZipfGen, MatchesTheoreticalFrequencies)
{
    // Chi-square-style check on the top 5 ranks for alpha = 1.
    const int64_t rows = 1000;
    ZipfGen gen(rows, 1.0, Rng(11), /*scatter=*/false);
    double harmonic = 0.0;
    for (int64_t k = 1; k <= rows; ++k)
        harmonic += 1.0 / static_cast<double>(k);
    std::map<int64_t, int> counts;
    const int n = 200'000;
    for (int i = 0; i < n; ++i)
        ++counts[gen.next()];
    for (int64_t rank = 0; rank < 5; ++rank) {
        double expected = n / (static_cast<double>(rank + 1) * harmonic);
        EXPECT_NEAR(counts[rank], expected, 0.1 * expected)
            << "rank " << rank;
    }
}

TEST(RepeatGen, ZeroWindowRejected)
{
    EXPECT_THROW(RepeatGen(std::make_unique<UniformGen>(10, Rng(1)), 0.5, 0,
                           Rng(2)),
                 PanicError);
    EXPECT_THROW(RepeatGen(nullptr, 0.5, 8, Rng(2)), PanicError);
    EXPECT_THROW(RepeatGen(std::make_unique<UniformGen>(10, Rng(1)), 1.0, 8,
                           Rng(2)),
                 PanicError);
}

TEST(RepeatGen, UniqueFractionTracksRepeatProb)
{
    // Over a huge base domain, unique fraction ~ (1 - repeatProb).
    for (double p : {0.0, 0.3, 0.6, 0.9}) {
        RepeatGen gen(std::make_unique<UniformGen>(100'000'000, Rng(13)), p,
                      4096, Rng(14));
        auto trace = gen.draw(20'000);
        EXPECT_NEAR(uniqueFraction(trace), 1.0 - p, 0.06) << "p=" << p;
    }
}

TEST(RepeatGen, MonotoneInRepeatProb)
{
    double prev = 2.0;
    for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        RepeatGen gen(std::make_unique<UniformGen>(10'000'000, Rng(15)), p,
                      1024, Rng(16));
        double uf = uniqueFraction(gen.draw(10'000));
        EXPECT_LT(uf, prev);
        prev = uf;
    }
}

TEST(UniqueFraction, EdgeCases)
{
    EXPECT_EQ(uniqueFraction({}), 0.0);
    EXPECT_EQ(uniqueFraction({5}), 1.0);
    EXPECT_EQ(uniqueFraction({5, 5, 5, 5}), 0.25);
    EXPECT_EQ(uniqueFraction({1, 2, 3, 4}), 1.0);
}

TEST(TraceProfiles, SpanFig14Range)
{
    // The ten production-like profiles should cover a wide unique-ID
    // spectrum, strictly ordered from mostly-unique to mostly-repeated.
    auto profiles = productionTraceProfiles();
    ASSERT_EQ(profiles.size(), 10u);
    std::vector<double> fractions;
    Rng rng(17);
    for (const TraceProfile &p : profiles) {
        auto gen = makeGenerator(p, 5'000'000, rng.split());
        fractions.push_back(uniqueFraction(gen->draw(20'000)));
    }
    EXPECT_GT(fractions.front(), 0.6);
    EXPECT_LT(fractions.back(), 0.12);
    for (size_t i = 1; i < fractions.size(); ++i)
        EXPECT_LT(fractions[i], fractions[i - 1] + 0.05) << "profile " << i;
}

TEST(TraceFile, SaveLoadRoundTrip)
{
    std::string path = ::testing::TempDir() + "/trace_roundtrip.txt";
    std::vector<int64_t> ids = {0, 5, 123456789, 42, 5};
    saveTrace(path, ids);
    EXPECT_EQ(loadTrace(path), ids);
    std::remove(path.c_str());
}

TEST(TraceFile, LoadMissingFileFails)
{
    EXPECT_THROW(loadTrace("/nonexistent/dir/trace.txt"), FatalError);
}

TEST(TraceReplay, CyclesThroughTrace)
{
    TraceReplayGen gen({1, 2, 3}, 10);
    EXPECT_EQ(gen.next(), 1);
    EXPECT_EQ(gen.next(), 2);
    EXPECT_EQ(gen.next(), 3);
    EXPECT_EQ(gen.next(), 1);
    EXPECT_EQ(gen.rows(), 10);
}

TEST(TraceReplay, ValidatesIds)
{
    EXPECT_THROW(TraceReplayGen({}, 10), PanicError);
    EXPECT_THROW(TraceReplayGen({10}, 10), PanicError);
    EXPECT_THROW(TraceReplayGen({-1}, 10), PanicError);
}

TEST(IdGenerator, DrawReturnsRequestedCount)
{
    UniformGen gen(100, Rng(19));
    EXPECT_EQ(gen.draw(0).size(), 0u);
    EXPECT_EQ(gen.draw(57).size(), 57u);
}

} // namespace
} // namespace recperf
