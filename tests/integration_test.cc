/**
 * @file
 * Cross-module integration tests: functional execution, cost
 * accounting, and the timing model agree with each other and with the
 * paper's end-to-end claims.
 */

#include <gtest/gtest.h>

#include "core/rng.hh"
#include "machine/machine_spec.hh"
#include "machine/simd.hh"
#include "model/ncf.hh"
#include "model/rec_model.hh"
#include "model/zoo.hh"
#include "ops/kernel_cache.hh"
#include "serving/server.hh"
#include "timing/colocation.hh"
#include "timing/model_timer.hh"

namespace recperf {
namespace {

TEST(Integration, CostModelConsistentWithFunctionalModel)
{
    // ModelConfig::inferenceCost counts FC parameter bytes that match
    // the materialized model's actual parameter footprint.
    ModelConfig cfg = rmc1Small().functionalScale(256);
    Rng rng(1);
    RecModel model(cfg, rng);

    int64_t fc_params = 0;
    for (const FullyConnected &fc : model.bottomLayers())
        fc_params += fc.paramCount();
    for (const FullyConnected &fc : model.topLayers())
        fc_params += fc.paramCount();
    EXPECT_EQ(fc_params, cfg.fcParamCount());

    int64_t emb_params = 0;
    for (const EmbeddingTable &t : model.tables())
        emb_params += t.paramCount();
    EXPECT_EQ(emb_params, cfg.embParamCount());
}

TEST(Integration, EndToEndPipelineRuns)
{
    // Filtering (RMC1) -> ranking (RMC3), the Fig 6 hierarchy, at
    // functional scale: outputs stay valid probabilities throughout.
    Rng rng(2);
    RecModel filter(rmc1Small().functionalScale(512), rng);
    RecModel ranker(rmc3Small().functionalScale(512), rng);

    const int64_t candidates = 16;
    ModelInput stage1 = filter.randomInput(candidates, rng);
    Tensor scores = filter.forward(stage1);

    // Keep the top half, re-rank with the heavy model.
    std::vector<std::pair<float, int64_t>> ranked;
    for (int64_t i = 0; i < candidates; ++i)
        ranked.emplace_back(scores.at(i, 0), i);
    std::sort(ranked.rbegin(), ranked.rend());

    ModelInput stage2 = ranker.randomInput(candidates / 2, rng);
    Tensor final_scores = ranker.forward(stage2);
    EXPECT_EQ(final_scores.dim(0), candidates / 2);
    for (int64_t i = 0; i < final_scores.size(); ++i) {
        EXPECT_GT(final_scores.at(i), 0.0f);
        EXPECT_LT(final_scores.at(i), 1.0f);
    }
}

TEST(Integration, Fig2QuadrantsHold)
{
    // FLOPs/bytes landscape: NCF is small on both axes; RMC2 is
    // byte-heavy but FLOP-light; RMC3 is FLOP-heavy.
    OpCost ncf = ncfConfig().inferenceCost(1);
    OpCost rmc1 = rmc1Small().inferenceCost(1);
    OpCost rmc2 = rmc2Small().inferenceCost(1);
    OpCost rmc3 = rmc3Small().inferenceCost(1);

    EXPECT_LT(ncf.flops, rmc3.flops / 10);
    EXPECT_GT(rmc2.bytesRead, rmc1.bytesRead);
    EXPECT_GT(rmc3.flops, rmc1.flops);
    EXPECT_GT(rmc3.flops, rmc2.flops);
}

TEST(Integration, LatencyBoundedThroughputPrefersBatchingOnSkylake)
{
    // §V Takeaway 4: under a latency budget, Skylake sustains larger
    // batches; its throughput at batch 128 beats its batch-16
    // throughput (items/s).
    MachineSpec skl = skylake();
    auto items_per_sec = [&](int64_t batch) {
        TimerOptions opts;
        opts.batch = batch;
        ModelTimer timer(skl, rmc1Small(), opts);
        double lat = timer.steadyState(10, 10).totalSeconds();
        return static_cast<double>(batch) / lat;
    };
    EXPECT_GT(items_per_sec(128), items_per_sec(16));
}

TEST(Integration, ColocationThroughputLatencyTradeoffExists)
{
    // Fig 10: co-location raises throughput while degrading latency —
    // both directions must be visible in the same experiment.
    MachineSpec bdw = broadwell();
    TimerOptions opts;
    opts.batch = 32;
    ColocationSim solo(bdw, rmc2Small(), opts, 1);
    ColocationSim packed(bdw, rmc2Small(), opts, 8);
    ColocationResult r1 = solo.run(10, 6);
    ColocationResult r8 = packed.run(10, 6);

    EXPECT_GT(r8.throughput(), r1.throughput());
    EXPECT_GT(r8.meanLatency(), r1.meanLatency());
}

TEST(Integration, ServingUsesColocatedTimingModel)
{
    // A server with 8 workers shows longer per-batch service times than
    // a single-worker server (shared-LLC contention propagates into
    // the serving layer).
    ServerOptions one;
    one.numWorkers = 1;
    one.maxBatch = 32;
    ServerOptions eight = one;
    eight.numWorkers = 8;

    Server a(broadwell(), rmc2Small(), TimerOptions{}, one);
    Server b(broadwell(), rmc2Small(), TimerOptions{}, eight);
    double solo = a.runClosedLoop(6).serviceTime.mean();
    double packed = b.runClosedLoop(6).serviceTime.mean();
    EXPECT_GT(packed, solo);
}

TEST(Integration, Fig11SmallFcProtectedBySkylakeL2)
{
    // The Fig 11 caption's mechanism: a standalone FC probe whose
    // ~800 KB of weights fit Skylake's 1 MB L2 but not Broadwell's
    // 256 KB L2, co-located with RMC1 inferences. Under co-location the
    // probe degrades on Broadwell (its weights are displaced from the
    // contended inclusive LLC) and stays nearly flat on Skylake.
    ModelConfig fc_probe;
    fc_probe.name = "fc-probe";
    fc_probe.modelClass = ModelClass::Other;
    fc_probe.denseFeatures = 448;
    fc_probe.bottomMlp = {448};
    fc_probe.topMlp = {64, 1};
    fc_probe.validate();

    auto fc_time = [&](const MachineSpec &m, uint32_t colocated) {
        std::vector<TenantSpec> tenants;
        TimerOptions probe_opts;
        probe_opts.batch = 1;
        tenants.push_back({fc_probe, probe_opts});
        for (uint32_t i = 0; i < colocated; ++i) {
            TimerOptions rmc_opts;
            rmc_opts.batch = 32;
            rmc_opts.seed = 77 + i;
            tenants.push_back({rmc1Large(), rmc_opts});
        }
        ColocationSim sim(m, tenants);
        ColocationResult r = sim.run(10, 6);
        return r.tenantAverages.front().secondsByKind(OpKind::FC);
    };

    double bdw_deg = fc_time(broadwell(), 11) / fc_time(broadwell(), 0);
    double skl_deg = fc_time(skylake(), 11) / fc_time(skylake(), 0);
    EXPECT_GT(bdw_deg, 1.15);
    EXPECT_LT(skl_deg, 1.10);
    EXPECT_LT(skl_deg, bdw_deg);
}

TEST(Integration, TraceLocalityChangesSlsTime)
{
    // Fig 14 -> memory-system implication: high-reuse traces make SLS
    // faster than near-random traces on the same model/machine.
    MachineSpec bdw = broadwell();
    TimerOptions local;
    local.batch = 16;
    local.repeatProb = 0.9;
    TimerOptions random;
    random.batch = 16;
    random.repeatProb = 0.0;
    random.zipfAlpha = 0.5;

    ModelTimer t_local(bdw, rmc2Small(), local);
    ModelTimer t_random(bdw, rmc2Small(), random);
    double s_local =
        t_local.steadyState(15, 10).secondsByKind(OpKind::SLS);
    double s_random =
        t_random.steadyState(15, 10).secondsByKind(OpKind::SLS);
    EXPECT_LT(s_local, 0.8 * s_random);
}

TEST(Integration, KernelCacheDumpReflectsModelForward)
{
    // The path `recperf eval --dump-kernel-cache` walks: a model
    // forward first-touches its GEMM/SLS shapes, and the dump then
    // names every one of them with a tuned variant. The FC stack's
    // batch and the embedding dim must both appear as cache keys.
    KernelCache &cache = KernelCache::global();
    cache.setPolicy(IsaPolicy{}); // clears to a cold cache
    ModelConfig cfg = rmc1Small().functionalScale(256);
    Rng rng(9);
    RecModel model(cfg, rng);
    const int64_t batch = 8;
    (void)model.forward(model.randomInput(batch, rng));

    EXPECT_GT(cache.tuneCount(), 0u);
    std::string dump = cache.dumpTable();
    EXPECT_NE(std::string::npos, dump.find("kernel cache:"));
    EXPECT_NE(std::string::npos, dump.find("gemm m8"));
    EXPECT_NE(std::string::npos,
              dump.find("d" + std::to_string(cfg.emb.embDim)));
    cache.setPolicy(IsaPolicy{});
}

} // namespace
} // namespace recperf
