/**
 * @file
 * Chaos tests for the replicated-shard failover layer.
 *
 * Seeded randomized fault schedules (replica kills, correlated rack
 * failures, straggler storms) are layered over the renewal-process
 * fault injector and run against invariant checks: accounting never
 * breaks (completed + failed == offered), runs terminate (no hangs),
 * replication rescues availability where a single copy demonstrably
 * fails, recovered replicas pay a warm-up penalty, and everything is
 * bit-identical for a fixed seed — including across tensor thread
 * counts.
 */

#include <gtest/gtest.h>

#include "core/thread_pool.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "resilience/fault_injector.hh"
#include "resilience/policies.hh"
#include "resilience/replica_set.hh"
#include "serving/distributed.hh"

namespace recperf {
namespace {

constexpr uint32_t kNodes = 2;
constexpr int kWarmup = 10;
constexpr int kIters = 200;

ShardedInference
makeSim()
{
    TimerOptions topts;
    topts.batch = 16;
    return ShardedInference(broadwell(), rmc1Small(), kNodes,
                            NetworkConfig{}, topts);
}

FaultOptions
renewalFaults(double mtbf_seconds, double mttr_seconds, uint64_t seed)
{
    FaultOptions f;
    f.shardMtbfSeconds = mtbf_seconds;
    f.shardMttrSeconds = mttr_seconds;
    f.seed = seed;
    return f;
}

RetryPolicy
standardRetry()
{
    RetryPolicy retry;
    retry.timeoutSeconds = 2e-3;
    retry.maxRetries = 4;
    return retry;
}

ReplicaOptions
replicasOf(uint32_t count, uint64_t seed = 2020)
{
    ReplicaOptions r;
    r.replicas = count;
    r.seed = seed;
    return r;
}

ReplicatedShardedResult
runChaos(uint32_t replicas, const FaultOptions &faults,
         const ChaosSchedule *chaos, int iters = kIters,
         bool hedge_on = true)
{
    ShardedInference sim = makeSim();
    HedgePolicy hedge;
    hedge.enabled = hedge_on;
    RunOptions options;
    options.warmupIters = kWarmup;
    options.measureIters = iters;
    options.faults = faults;
    options.retry = standardRetry();
    options.hedge = hedge;
    options.replicas = replicasOf(replicas);
    options.chaos = chaos;
    return sim.run(options);
}

/** Rack failure covering the whole run: replica rank @p rank is down
 *  on every shard, forever. */
ChaosSchedule
permanentRackKill(uint32_t rank)
{
    ChaosSchedule chaos;
    ChaosEvent rack;
    rack.kind = ChaosEvent::Kind::KillRack;
    rack.start = 0.0;
    rack.end = 1e9;
    rack.replica = rank;
    chaos.add(rack);
    return chaos;
}

TEST(ChaosSchedule, ScriptedWindows)
{
    ChaosSchedule chaos;
    ChaosEvent kill;
    kill.kind = ChaosEvent::Kind::KillReplica;
    kill.start = 1.0;
    kill.end = 2.0;
    kill.shard = 1;
    kill.replica = 0;
    chaos.add(kill);

    // Half-open window: start inclusive, end exclusive.
    EXPECT_FALSE(chaos.forcedDown(1, 0, 0.999));
    EXPECT_TRUE(chaos.forcedDown(1, 0, 1.0));
    EXPECT_TRUE(chaos.forcedDown(1, 0, 1.999));
    EXPECT_FALSE(chaos.forcedDown(1, 0, 2.0));
    // Other replicas and shards are untouched.
    EXPECT_FALSE(chaos.forcedDown(1, 1, 1.5));
    EXPECT_FALSE(chaos.forcedDown(0, 0, 1.5));

    ChaosEvent storm;
    storm.kind = ChaosEvent::Kind::StragglerStorm;
    storm.start = 1.0;
    storm.end = 3.0;
    storm.factor = 4.0;
    chaos.add(storm);
    EXPECT_DOUBLE_EQ(chaos.serviceFactor(0.5), 1.0);
    EXPECT_DOUBLE_EQ(chaos.serviceFactor(1.5), 4.0);
    // A storm never marks replicas down.
    EXPECT_FALSE(chaos.forcedDown(0, 1, 1.5));
}

TEST(ChaosSchedule, RackKillIsCorrelatedAcrossShards)
{
    ChaosSchedule chaos = permanentRackKill(0);
    for (uint32_t shard = 0; shard < 8; ++shard) {
        EXPECT_TRUE(chaos.forcedDown(shard, 0, 5.0));
        EXPECT_FALSE(chaos.forcedDown(shard, 1, 5.0));
    }
}

TEST(ChaosSchedule, RandomScheduleDeterministicFromSeed)
{
    ChaosSchedule a = ChaosSchedule::random(9, 4, 2, 0.1, 12, 5e-3);
    ChaosSchedule b = ChaosSchedule::random(9, 4, 2, 0.1, 12, 5e-3);
    ASSERT_EQ(a.size(), 12u);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
        EXPECT_DOUBLE_EQ(a.events()[i].start, b.events()[i].start);
        EXPECT_DOUBLE_EQ(a.events()[i].end, b.events()[i].end);
        EXPECT_EQ(a.events()[i].shard, b.events()[i].shard);
        EXPECT_EQ(a.events()[i].replica, b.events()[i].replica);
    }

    ChaosSchedule c = ChaosSchedule::random(10, 4, 2, 0.1, 12, 5e-3);
    bool differs = false;
    for (size_t i = 0; i < c.size(); ++i) {
        if (c.events()[i].start != a.events()[i].start)
            differs = true;
    }
    EXPECT_TRUE(differs);
}

TEST(ChaosRun, AccountingInvariantUnderRandomSchedules)
{
    // Randomized kill/rack/storm schedules at several seeds: whatever
    // happens, every offered inference is accounted for and the run
    // terminates.
    for (uint64_t seed : {1ull, 7ull, 42ull}) {
        ChaosSchedule chaos =
            ChaosSchedule::random(seed, kNodes, 2, /*horizon=*/50e-3,
                                  /*events=*/10, /*mean_dur=*/2e-3);
        FaultOptions faults = renewalFaults(10e-3, 1e-3, seed);
        ReplicatedShardedResult r = runChaos(2, faults, &chaos);
        EXPECT_EQ(r.completed + r.failed, static_cast<uint64_t>(kIters))
            << "seed " << seed;
        EXPECT_EQ(r.latency.count(), r.completed) << "seed " << seed;
    }
}

TEST(ChaosRun, NoHangWithZeroTimeout)
{
    // timeout 0 means "wait out any straggler": failed shards must
    // still fail fast rather than hang the run.
    ChaosSchedule chaos =
        ChaosSchedule::random(5, kNodes, 2, 50e-3, 8, 2e-3);
    FaultOptions faults = renewalFaults(5e-3, 1e-3, 5);
    ShardedInference sim = makeSim();
    RetryPolicy retry; // timeoutSeconds = 0
    retry.maxRetries = 3;
    HedgePolicy hedge;
    hedge.enabled = true;
    hedge.delaySeconds = 0.5e-3;
    RunOptions options;
    options.warmupIters = kWarmup;
    options.measureIters = kIters;
    options.faults = faults;
    options.retry = retry;
    options.hedge = hedge;
    options.replicas = replicasOf(2);
    options.chaos = &chaos;
    ReplicatedShardedResult r = sim.run(options);
    EXPECT_EQ(r.completed + r.failed, static_cast<uint64_t>(kIters));
}

TEST(ChaosRun, RackKillOfPrimariesIsAbsorbedByReplication)
{
    // Replica rank 0 (every shard's primary) is down for the whole
    // run. With R = 2 the rank-1 replicas carry all traffic.
    ChaosSchedule chaos = permanentRackKill(0);
    ReplicatedShardedResult r = runChaos(2, FaultOptions{}, &chaos);
    EXPECT_EQ(r.completed, static_cast<uint64_t>(kIters));
    EXPECT_EQ(r.failed, 0u);
    EXPECT_GT(r.failovers, 0u);
    EXPECT_GT(r.breakerOpens, 0u);
}

TEST(ChaosRun, SingleCopyDiesUnderTheSameRackKill)
{
    // The same schedule with R = 1 has no second-best replica to fail
    // over to: every inference fails, none hang.
    ChaosSchedule chaos = permanentRackKill(0);
    ReplicatedShardedResult r = runChaos(1, FaultOptions{}, &chaos);
    EXPECT_EQ(r.completed, 0u);
    EXPECT_EQ(r.failed, static_cast<uint64_t>(kIters));
    EXPECT_EQ(r.failovers, 0u);
}

TEST(ChaosRun, ReplicationRescuesRenewalFailures)
{
    // Renewal-process failures (MTBF = 5x MTTR, seed chosen so the
    // single-copy run demonstrably loses inferences): adding a replica
    // per shard restores three-nines availability.
    FaultOptions faults = renewalFaults(5e-3, 1e-3, 12);
    ReplicatedShardedResult r1 =
        runChaos(1, faults, nullptr, /*iters=*/400);
    ReplicatedShardedResult r2 =
        runChaos(2, faults, nullptr, /*iters=*/400);
    EXPECT_LT(r1.availability(), 0.999);
    EXPECT_GE(r2.availability(), 0.999);
    EXPECT_GT(r2.availability(), r1.availability());
    EXPECT_GT(r2.failovers, 0u);
}

TEST(ChaosRun, BreakersOpenAndRecloseAcrossAKillWindow)
{
    // A single scripted kill: the victim's breaker must trip during
    // the window and re-close via probes after it ends.
    ChaosSchedule chaos;
    ChaosEvent kill;
    kill.kind = ChaosEvent::Kind::KillReplica;
    kill.start = 0.0;
    kill.end = 3e-3;
    kill.shard = 0;
    kill.replica = 0;
    chaos.add(kill);

    ReplicatedShardedResult r = runChaos(2, FaultOptions{}, &chaos);
    EXPECT_EQ(r.completed, static_cast<uint64_t>(kIters));
    EXPECT_GT(r.breakerOpens, 0u);
    EXPECT_GT(r.breakerCloses, 0u);
    EXPECT_GT(r.probesAdmitted, 0u);
}

TEST(ChaosRun, RecoveredReplicaPaysWarmupPenalty)
{
    // After the kill window the primary recovers with cold caches: the
    // auto-calibrated warm-up factor is > 1 and some post-recovery
    // service time is booked as warm-up penalty.
    ChaosSchedule chaos;
    ChaosEvent kill;
    kill.kind = ChaosEvent::Kind::KillReplica;
    kill.start = 0.0;
    kill.end = 2e-3;
    kill.shard = 0;
    kill.replica = 0;
    chaos.add(kill);

    ReplicatedShardedResult r = runChaos(2, FaultOptions{}, &chaos);
    EXPECT_GT(r.warmupFactorUsed, 1.0);
    EXPECT_GT(r.warmupPenaltySeconds, 0.0);

    // A fault-free run books no warm-up penalty at all.
    ReplicatedShardedResult clean = runChaos(2, FaultOptions{}, nullptr);
    EXPECT_DOUBLE_EQ(clean.warmupPenaltySeconds, 0.0);
}

TEST(ChaosRun, StragglerStormInflatesLatency)
{
    ChaosSchedule storm;
    ChaosEvent e;
    e.kind = ChaosEvent::Kind::StragglerStorm;
    e.start = 0.0;
    e.end = 1e9;
    e.factor = 5.0;
    storm.add(e);

    ReplicatedShardedResult calm = runChaos(2, FaultOptions{}, nullptr);
    ReplicatedShardedResult stormy = runChaos(2, FaultOptions{}, &storm);
    EXPECT_EQ(stormy.completed, static_cast<uint64_t>(kIters));
    EXPECT_GT(stormy.latency.p(50), 2.0 * calm.latency.p(50));
}

void
expectBitwiseEqual(const ReplicatedShardedResult &a,
                   const ReplicatedShardedResult &b)
{
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.failovers, b.failovers);
    EXPECT_EQ(a.breakerOpens, b.breakerOpens);
    EXPECT_EQ(a.breakerCloses, b.breakerCloses);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.hedgesIssued, b.hedgesIssued);
    ASSERT_EQ(a.latency.count(), b.latency.count());
    for (size_t i = 0; i < a.latency.count(); ++i) {
        EXPECT_EQ(a.latency.samples()[i], b.latency.samples()[i])
            << "latency sample " << i << " differs";
    }
    EXPECT_EQ(a.warmupPenaltySeconds, b.warmupPenaltySeconds);
    EXPECT_EQ(a.warmupFactorUsed, b.warmupFactorUsed);
}

TEST(ChaosDeterminism, IdenticalRunsAreBitwiseEqual)
{
    ChaosSchedule chaos =
        ChaosSchedule::random(3, kNodes, 2, 50e-3, 10, 2e-3);
    FaultOptions faults = renewalFaults(10e-3, 1e-3, 3);
    ReplicatedShardedResult a = runChaos(2, faults, &chaos);
    ReplicatedShardedResult b = runChaos(2, faults, &chaos);
    expectBitwiseEqual(a, b);
}

TEST(ChaosDeterminism, ThreadCountDoesNotPerturbResults)
{
    // The latency statistics of a replicated run must be bitwise equal
    // whether the tensor engine uses one thread or four
    // (RECPERF_THREADS=4): threading parallelises the arithmetic, and
    // must never reorder the simulation's random streams.
    ChaosSchedule chaos =
        ChaosSchedule::random(3, kNodes, 2, 50e-3, 6, 2e-3);
    FaultOptions faults = renewalFaults(10e-3, 1e-3, 3);

    int original = globalThreadCount();
    setGlobalThreadCount(1);
    ReplicatedShardedResult one = runChaos(2, faults, &chaos);
    setGlobalThreadCount(4);
    ReplicatedShardedResult four = runChaos(2, faults, &chaos);
    setGlobalThreadCount(original);

    expectBitwiseEqual(one, four);
}

TEST(ChaosDeterminism, ResilientPathMatchesAcrossThreadCounts)
{
    // Same guarantee for the PR-1 single-copy path used when R = 1.
    FaultOptions faults = renewalFaults(10e-3, 1e-3, 7);
    faults.stragglerProb = 0.1;
    faults.stragglerAlpha = 1.5;
    faults.stragglerMin = 2.0;
    RetryPolicy retry = standardRetry();
    HedgePolicy hedge;
    hedge.enabled = true;

    RunOptions options;
    options.warmupIters = kWarmup;
    options.measureIters = kIters;
    options.faults = faults;
    options.retry = retry;
    options.hedge = hedge;

    int original = globalThreadCount();
    setGlobalThreadCount(1);
    ShardedInference sim_one = makeSim();
    ResilientShardedResult one = sim_one.run(options);
    setGlobalThreadCount(4);
    ShardedInference sim_four = makeSim();
    ResilientShardedResult four = sim_four.run(options);
    setGlobalThreadCount(original);

    EXPECT_EQ(one.completed, four.completed);
    EXPECT_EQ(one.failed, four.failed);
    ASSERT_EQ(one.latency.count(), four.latency.count());
    for (size_t i = 0; i < one.latency.count(); ++i)
        EXPECT_EQ(one.latency.samples()[i], four.latency.samples()[i]);
}

} // namespace
} // namespace recperf
