/**
 * @file
 * Functional integrity-layer tests: per-row checksums over fp32 and
 * quantized embedding state (scale/bias bytes included), corruption
 * primitives, golden-copy repair, inline sampled verification on the
 * SLS hot path, and the disabled-layer contract — bitwise-identical
 * output at every thread count with zero verification work.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "core/rng.hh"
#include "core/thread_pool.hh"
#include "obs/metrics.hh"
#include "ops/fully_connected.hh"
#include "ops/integrity.hh"
#include "ops/quantized_embedding.hh"
#include "ops/sparse_lengths_sum.hh"
#include "tensor/tensor.hh"

namespace recperf {
namespace {

class IntegrityTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        IntegrityRuntime::global().reset();
        setGlobalThreadCount(0);
    }
};

EmbeddingTable
makeTable(int64_t rows, int64_t dim, uint64_t seed = 7)
{
    Rng rng(seed);
    return EmbeddingTable(rows, dim, rng);
}

// Pooled lookup covering rows [0, rows): `slots` slots of `per` IDs.
void
makeLookup(int64_t rows, int64_t slots, int64_t per, uint64_t seed,
           std::vector<int64_t> &ids, std::vector<int64_t> &lengths)
{
    Rng rng(seed);
    ids.clear();
    lengths.assign(static_cast<size_t>(slots), per);
    for (int64_t i = 0; i < slots * per; ++i)
        ids.push_back(static_cast<int64_t>(
            rng.nextBelow(static_cast<uint64_t>(rows))));
}

TEST_F(IntegrityTest, SealVerifyAndScanFp32)
{
    EmbeddingTable table = makeTable(64, 16);
    IntegrityShield shield = IntegrityShield::forTable(table);
    shield.seal();
    EXPECT_EQ(shield.rows(), 64);
    EXPECT_EQ(shield.rowBytes(), 16u * sizeof(float));
    EXPECT_TRUE(shield.scanCorrupted().empty());

    shield.flipBit(17, 5);
    EXPECT_FALSE(shield.verifyRow(17));
    EXPECT_TRUE(shield.verifyRow(16));
    std::vector<int64_t> bad = shield.scanCorrupted();
    ASSERT_EQ(bad.size(), 1u);
    EXPECT_EQ(bad[0], 17);

    // Repair restores the golden bytes bit-exactly.
    EXPECT_TRUE(shield.repairRow(17));
    EXPECT_TRUE(shield.verifyRow(17));
    EXPECT_FALSE(shield.repairRow(17)); // already clean
}

TEST_F(IntegrityTest, FlipBitIsitsOwnInverse)
{
    EmbeddingTable table = makeTable(8, 4);
    std::vector<float> before(
        table.table().data(),
        table.table().data() + table.paramCount());
    IntegrityShield shield = IntegrityShield::forTable(table);
    shield.seal();
    shield.flipBit(3, 21);
    EXPECT_FALSE(shield.verifyRow(3));
    shield.flipBit(3, 21);
    EXPECT_TRUE(shield.verifyRow(3));
    EXPECT_EQ(std::memcmp(before.data(), table.table().data(),
                          before.size() * sizeof(float)),
              0);
}

TEST_F(IntegrityTest, CorruptionKindsFlipReportedBits)
{
    EmbeddingTable table = makeTable(32, 8);
    IntegrityShield shield = IntegrityShield::forTable(table);
    shield.seal();
    Rng rng(11);
    EXPECT_EQ(shield.corrupt(CorruptionKind::SingleBitFlip, 1, 0, rng),
              1);
    EXPECT_FALSE(shield.verifyRow(1));
    EXPECT_EQ(shield.corrupt(CorruptionKind::MultiBitFlip, 2, 9, rng),
              3);
    EXPECT_FALSE(shield.verifyRow(2));
    // Stuck-at-one rows read back as NaN fp32 lanes.
    shield.corrupt(CorruptionKind::StuckRow, 3, 0, rng);
    EXPECT_FALSE(shield.verifyRow(3));
    const float *row = table.table().data() + 3 * table.dim();
    for (int64_t c = 0; c < table.dim(); ++c)
        EXPECT_TRUE(std::isnan(row[c]));
    for (int64_t r : {1, 2, 3})
        shield.repairRow(r);
    EXPECT_TRUE(shield.scanCorrupted().empty());
}

// Satellite: quantized-row checksums span the int8 payload AND the
// fp32 scale/bias — a flip in any of the three is detected equally.
TEST_F(IntegrityTest, QuantizedChecksumCoversPayloadScaleAndBias)
{
    EmbeddingTable source = makeTable(40, 24);
    QuantizedEmbeddingTable qtable(source);
    IntegrityShield shield = IntegrityShield::forQuantized(qtable);
    shield.seal();
    EXPECT_EQ(shield.rowBytes(),
              static_cast<size_t>(qtable.rowBytes()));
    EXPECT_TRUE(shield.scanCorrupted().empty());

    const size_t payload_bits = static_cast<size_t>(qtable.dim()) * 8;
    struct Case
    {
        const char *what;
        int64_t row;
        uint64_t bit;
    } cases[] = {
        {"int8 payload", 5, 3},
        {"scale field", 6, payload_bits + 7},
        {"bias field", 7, payload_bits + 32 + 19},
    };
    for (const Case &c : cases) {
        shield.flipBit(c.row, c.bit);
        EXPECT_FALSE(shield.verifyRow(c.row)) << c.what;
        std::vector<int64_t> bad = shield.scanCorrupted();
        ASSERT_EQ(bad.size(), 1u) << c.what;
        EXPECT_EQ(bad[0], c.row) << c.what;
        EXPECT_TRUE(shield.repairRow(c.row)) << c.what;
        EXPECT_TRUE(shield.verifyRow(c.row)) << c.what;
    }
}

TEST_F(IntegrityTest, ScaleFlipCorruptsDequantizedOutputUntilRepair)
{
    EmbeddingTable source = makeTable(16, 8);
    QuantizedEmbeddingTable qtable(source);
    IntegrityShield shield = IntegrityShield::forQuantized(qtable);
    shield.seal();
    std::vector<float> clean(static_cast<size_t>(qtable.dim()));
    qtable.dequantizeRow(4, clean.data());
    // Flip the scale's top mantissa-adjacent bit: every element of the
    // dequantized row moves, though nothing in the payload changed.
    shield.flipBit(4, static_cast<uint64_t>(qtable.dim()) * 8 + 30);
    std::vector<float> dirty(static_cast<size_t>(qtable.dim()));
    qtable.dequantizeRow(4, dirty.data());
    EXPECT_NE(std::memcmp(clean.data(), dirty.data(),
                          clean.size() * sizeof(float)),
              0);
    shield.repairRow(4);
    qtable.dequantizeRow(4, dirty.data());
    EXPECT_EQ(std::memcmp(clean.data(), dirty.data(),
                          clean.size() * sizeof(float)),
              0);
}

TEST_F(IntegrityTest, FcShieldCoversWeightAndBias)
{
    Rng rng(3);
    FullyConnected layer(12, 6, rng);
    IntegrityShield shield = IntegrityShield::forLayer(layer);
    shield.seal();
    EXPECT_EQ(shield.rows(), 6);
    shield.flipBit(2, 4);                 // weight byte
    shield.flipBit(5, 12 * 32 + 1);       // bias bits follow the row
    std::vector<int64_t> bad = shield.scanCorrupted();
    ASSERT_EQ(bad.size(), 2u);
    EXPECT_EQ(bad[0], 2);
    EXPECT_EQ(bad[1], 5);
    for (int64_t r : bad)
        EXPECT_TRUE(shield.repairRow(r));
    EXPECT_TRUE(shield.scanCorrupted().empty());
}

TEST_F(IntegrityTest, InlineVerificationDetectsAndRepairsOnHotPath)
{
    EmbeddingTable table = makeTable(128, 16);
    std::vector<int64_t> ids, lengths;
    makeLookup(128, 8, 4, 23, ids, lengths);
    Tensor clean = table.forward(ids, lengths);

    IntegrityShield shield = IntegrityShield::forTable(table);
    shield.seal();
    // Corrupt a row the lookup touches.
    shield.flipBit(ids[0], 13);
    IntegrityRuntime &rt = IntegrityRuntime::global();
    rt.configure(1.0, /*repair_on_detect=*/true);
    rt.attach(&table, &shield);
    rt.setEnabled(true);

    Tensor healed = table.forward(ids, lengths);
    EXPECT_EQ(rt.batchesSeen(), 1u);
    EXPECT_EQ(rt.batchesVerified(), 1u);
    EXPECT_EQ(rt.corruptionsDetected(), 1u);
    EXPECT_EQ(rt.rowsRepaired(), 1u);
    // Repair happened before the gather: output matches the clean run.
    EXPECT_EQ(std::memcmp(clean.data(), healed.data(),
                          static_cast<size_t>(clean.size()) *
                              sizeof(float)),
              0);
    EXPECT_TRUE(shield.scanCorrupted().empty());

    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    reg.reset();
    rt.exportTo(reg);
    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("integrity.inline.detected"), 1u);
    EXPECT_EQ(snap.counter("integrity.inline.repaired"), 1u);
    reg.reset();
}

TEST_F(IntegrityTest, QuantizedInlineHookVerifiesSampledBatches)
{
    EmbeddingTable source = makeTable(96, 8);
    QuantizedEmbeddingTable qtable(source);
    IntegrityShield shield = IntegrityShield::forQuantized(qtable);
    shield.seal();
    shield.flipBit(7, 2);
    IntegrityRuntime &rt = IntegrityRuntime::global();
    rt.configure(1.0);
    rt.attach(&qtable, &shield);
    rt.setEnabled(true);
    std::vector<int64_t> ids = {7, 8, 9}, lengths = {3};
    (void)qtable.forward(ids, lengths);
    EXPECT_EQ(rt.corruptionsDetected(), 1u);
    EXPECT_EQ(rt.rowsRepaired(), 1u);
    EXPECT_TRUE(shield.verifyRow(7));
}

TEST_F(IntegrityTest, SamplingScheduleIsDeterministicAcrossThreadCounts)
{
    std::vector<int64_t> ids, lengths;
    for (int threads : {1, 4}) {
        setGlobalThreadCount(threads);
        IntegrityRuntime &rt = IntegrityRuntime::global();
        rt.reset();
        EmbeddingTable table = makeTable(64, 8);
        IntegrityShield shield = IntegrityShield::forTable(table);
        shield.seal();
        rt.configure(0.25); // verify every 4th batch
        rt.attach(&table, &shield);
        rt.setEnabled(true);
        for (int batch = 0; batch < 10; ++batch) {
            makeLookup(64, 4, 4, 100 + static_cast<uint64_t>(batch),
                       ids, lengths);
            (void)table.forward(ids, lengths);
        }
        EXPECT_EQ(rt.batchesSeen(), 10u) << threads << " threads";
        EXPECT_EQ(rt.batchesVerified(), 2u) << threads << " threads";
        rt.reset();
    }
}

// Satellite: the integrity layer compiled in but *disabled* leaves
// eval output bitwise identical, at 1 and 4 worker threads.
TEST_F(IntegrityTest, DisabledLayerIsBitwiseInvisible)
{
    std::vector<int64_t> ids, lengths;
    makeLookup(256, 16, 5, 42, ids, lengths);
    std::vector<float> want;
    for (int threads : {1, 4}) {
        setGlobalThreadCount(threads);
        EmbeddingTable table = makeTable(256, 32);
        // Shield attached but runtime disabled: the hot path must not
        // even consult it.
        IntegrityShield shield = IntegrityShield::forTable(table);
        shield.seal();
        IntegrityRuntime::global().attach(&table, &shield);
        ASSERT_FALSE(IntegrityRuntime::global().enabled());
        Tensor out = table.forward(ids, lengths);
        EXPECT_EQ(IntegrityRuntime::global().batchesSeen(), 0u);
        std::vector<float> got(
            out.data(), out.data() + out.size());
        if (want.empty())
            want = got;
        else
            EXPECT_EQ(std::memcmp(want.data(), got.data(),
                                  want.size() * sizeof(float)),
                      0)
                << threads << " threads";
        IntegrityRuntime::global().reset();
    }
}

TEST_F(IntegrityTest, EnvelopeCountsNanInfAndRange)
{
    std::vector<float> x = {0.5f, -2.0f,
                            std::numeric_limits<float>::quiet_NaN(),
                            std::numeric_limits<float>::infinity(),
                            -150.0f, 3.0f};
    EnvelopeStats stats;
    checkEnvelope(x.data(), x.size(), 100.0f, stats);
    EXPECT_EQ(stats.checked, 6u);
    EXPECT_EQ(stats.nans, 1u);
    EXPECT_EQ(stats.infs, 1u);
    EXPECT_EQ(stats.range, 1u);
    EXPECT_FALSE(stats.clean());

    EnvelopeStats unbounded;
    checkEnvelope(x.data(), 2, 0.0f, unbounded); // no magnitude bound
    EXPECT_TRUE(unbounded.clean());
}

TEST_F(IntegrityTest, Fnv1aMatchesKnownVectors)
{
    // Standard FNV-1a 64 test vectors.
    EXPECT_EQ(fnv1a("", 0), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv1a("a", 1), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv1a("foobar", 6), 0x85944171f73967e8ULL);
}

} // namespace
} // namespace recperf
