/**
 * @file
 * Unit tests for the command-line argument parser.
 */

#include <gtest/gtest.h>

#include "core/args.hh"
#include "core/logging.hh"

namespace recperf {
namespace {

ArgParser
makeParser()
{
    ArgParser p("prog", "test program");
    p.addFlag("verbose", "chatty output");
    p.addOption("batch", "16", "batch size");
    p.addOption("rate", "1.5", "arrival rate");
    return p;
}

TEST(ArgParser, DefaultsApply)
{
    ArgParser p = makeParser();
    std::string err;
    ASSERT_TRUE(p.parse({}, &err)) << err;
    EXPECT_FALSE(p.flag("verbose"));
    EXPECT_EQ(p.option("batch"), "16");
    EXPECT_EQ(p.optionInt("batch"), 16);
    EXPECT_DOUBLE_EQ(p.optionDouble("rate"), 1.5);
}

TEST(ArgParser, SpaceSeparatedValue)
{
    ArgParser p = makeParser();
    std::string err;
    ASSERT_TRUE(p.parse({"--batch", "64"}, &err)) << err;
    EXPECT_EQ(p.optionInt("batch"), 64);
}

TEST(ArgParser, EqualsValue)
{
    ArgParser p = makeParser();
    std::string err;
    ASSERT_TRUE(p.parse({"--batch=128", "--rate=2.25"}, &err)) << err;
    EXPECT_EQ(p.optionInt("batch"), 128);
    EXPECT_DOUBLE_EQ(p.optionDouble("rate"), 2.25);
}

TEST(ArgParser, FlagSetting)
{
    ArgParser p = makeParser();
    std::string err;
    ASSERT_TRUE(p.parse({"--verbose"}, &err)) << err;
    EXPECT_TRUE(p.flag("verbose"));
}

TEST(ArgParser, PositionalArguments)
{
    ArgParser p = makeParser();
    std::string err;
    ASSERT_TRUE(p.parse({"run", "--batch", "8", "extra"}, &err)) << err;
    EXPECT_EQ(p.positional(),
              (std::vector<std::string>{"run", "extra"}));
}

TEST(ArgParser, UnknownArgumentFails)
{
    ArgParser p = makeParser();
    std::string err;
    EXPECT_FALSE(p.parse({"--bogus"}, &err));
    EXPECT_NE(err.find("bogus"), std::string::npos);
}

TEST(ArgParser, MissingValueFails)
{
    ArgParser p = makeParser();
    std::string err;
    EXPECT_FALSE(p.parse({"--batch"}, &err));
    EXPECT_NE(err.find("batch"), std::string::npos);
}

TEST(ArgParser, FlagWithValueFails)
{
    ArgParser p = makeParser();
    std::string err;
    EXPECT_FALSE(p.parse({"--verbose=yes"}, &err));
}

TEST(ArgParser, BadIntegerFatal)
{
    ArgParser p = makeParser();
    std::string err;
    ASSERT_TRUE(p.parse({"--batch", "soup"}, &err));
    EXPECT_THROW(p.optionInt("batch"), FatalError);
}

TEST(ArgParser, UnknownLookupPanics)
{
    ArgParser p = makeParser();
    EXPECT_THROW(p.flag("nope"), PanicError);
    EXPECT_THROW(p.option("nope"), PanicError);
}

TEST(ArgParser, DuplicateRegistrationPanics)
{
    ArgParser p = makeParser();
    EXPECT_THROW(p.addFlag("batch", "dup"), PanicError);
}

TEST(ArgParser, ExplicitlySetDistinguishesDefaults)
{
    // CLI validation uses this to reject bad combinations only when
    // the user actually asked for them (e.g. --retries with a zero
    // timeout), not when a default merely applies.
    ArgParser p = makeParser();
    std::string err;
    ASSERT_TRUE(p.parse({"--batch", "16", "--verbose"}, &err)) << err;
    EXPECT_TRUE(p.explicitlySet("batch")); // even at the default value
    EXPECT_TRUE(p.explicitlySet("verbose"));
    EXPECT_FALSE(p.explicitlySet("rate"));
    EXPECT_THROW(p.explicitlySet("nope"), PanicError);
}

TEST(ArgParser, HelpTextMentionsEverything)
{
    ArgParser p = makeParser();
    std::string help = p.helpText();
    EXPECT_NE(help.find("--verbose"), std::string::npos);
    EXPECT_NE(help.find("--batch"), std::string::npos);
    EXPECT_NE(help.find("default: 16"), std::string::npos);
}

} // namespace
} // namespace recperf
