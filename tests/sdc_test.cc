/**
 * @file
 * Tests for the silent-data-corruption defense: seeded corruption
 * injection, the scrub/inline/guard/canary detection ladder,
 * quarantine-and-repair, drain escalation, and the metrics/fault-log
 * reproducibility contracts.
 */

#include <gtest/gtest.h>

#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "obs/metrics.hh"
#include "resilience/corruption.hh"
#include "resilience/fault_injector.hh"
#include "resilience/sdc.hh"
#include "serving/distributed.hh"

namespace recperf {
namespace {

/** Corruption-only fault schedule (no fail-stop channels). */
FaultOptions
corruptionFaults(double rate, uint64_t seed = 11)
{
    FaultOptions f;
    f.seed = seed;
    f.corruption.ratePerSec = rate;
    return f;
}

/** Small two-shard topology for driving the controller directly. */
CorruptionTopology
smallTopology()
{
    CorruptionTopology topo;
    topo.shards = 2;
    topo.replicas = 1;
    topo.embDim = 32;
    topo.tableRows = {{4000, 4000}, {4000}};
    return topo;
}

RunResult
runSharded(const RunOptions &options, int nodes = 4)
{
    TimerOptions opts;
    opts.batch = 16;
    ShardedInference sim(broadwell(), rmc1Small(),
                         static_cast<uint32_t>(nodes), NetworkConfig{},
                         opts);
    return sim.run(options);
}

TEST(CorruptionOptions, ValidateRejectsBadValues)
{
    CorruptionOptions c;
    c.ratePerSec = -1.0;
    EXPECT_FALSE(c.validate().empty());
    c = CorruptionOptions{};
    c.zipfAlpha = -0.5;
    EXPECT_FALSE(c.validate().empty());
    c = CorruptionOptions{};
    c.multiBitFraction = 1.5;
    EXPECT_FALSE(c.validate().empty());
    c = CorruptionOptions{};
    c.multiBitFraction = 0.7;
    c.stuckRowFraction = 0.7;
    EXPECT_FALSE(c.validate().empty());
    c = CorruptionOptions{};
    c.fcFraction = -0.1;
    EXPECT_FALSE(c.validate().empty());
    EXPECT_TRUE(CorruptionOptions{}.validate().empty());
}

TEST(SdcOptions, ValidateRejectsBadValues)
{
    SdcOptions s;
    s.scrubIntervalSeconds = -1.0;
    EXPECT_FALSE(s.validate().empty());
    s = SdcOptions{};
    s.inlineSampleRate = 1.5;
    EXPECT_FALSE(s.validate().empty());
    s = SdcOptions{};
    s.canaryIntervalSeconds = -0.1;
    EXPECT_FALSE(s.validate().empty());
    s = SdcOptions{};
    s.repairBandwidthGBps = 0.0;
    EXPECT_FALSE(s.validate().empty());
    s = SdcOptions{};
    s.drainDensity = 2.0;
    EXPECT_FALSE(s.validate().empty());
    s = SdcOptions{};
    s.quarantineQuality = 1.5;
    EXPECT_FALSE(s.validate().empty());
    EXPECT_TRUE(SdcOptions{}.validate().empty());
}

TEST(FaultInjectorCorruption, DrawsAreDeterministic)
{
    FaultOptions f = corruptionFaults(50000.0);
    FaultInjector a(f, 2);
    FaultInjector b(f, 2);
    a.setCorruptionTopology(smallTopology());
    b.setCorruptionTopology(smallTopology());
    std::vector<CorruptionEvent> ea = a.drawCorruptionsUpTo(0.01);
    std::vector<CorruptionEvent> eb = b.drawCorruptionsUpTo(0.01);
    ASSERT_GT(ea.size(), 10u);
    ASSERT_EQ(ea.size(), eb.size());
    for (size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].time, eb[i].time);
        EXPECT_EQ(ea[i].kind, eb[i].kind);
        EXPECT_EQ(ea[i].shard, eb[i].shard);
        EXPECT_EQ(ea[i].table, eb[i].table);
        EXPECT_EQ(ea[i].row, eb[i].row);
        EXPECT_EQ(ea[i].bit, eb[i].bit);
    }
    EXPECT_EQ(a.corruptionsInjected(), b.corruptionsInjected());
}

TEST(FaultInjectorCorruption, ZipfTargetingConcentratesOnHotRows)
{
    FaultOptions skewed = corruptionFaults(100000.0);
    skewed.corruption.zipfAlpha = 1.2;
    FaultOptions uniform = corruptionFaults(100000.0);
    uniform.corruption.zipfAlpha = 0.0;
    FaultInjector a(skewed, 2);
    FaultInjector b(uniform, 2);
    a.setCorruptionTopology(smallTopology());
    b.setCorruptionTopology(smallTopology());
    auto distinctRows = [](const std::vector<CorruptionEvent> &events) {
        std::vector<int64_t> rows;
        for (const CorruptionEvent &ev : events)
            rows.push_back((static_cast<int64_t>(ev.shard) << 50) |
                           (static_cast<int64_t>(ev.table) << 40) |
                           ev.row);
        std::sort(rows.begin(), rows.end());
        rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
        return rows.size();
    };
    size_t zipf_distinct = distinctRows(a.drawCorruptionsUpTo(0.02));
    size_t uniform_distinct = distinctRows(b.drawCorruptionsUpTo(0.02));
    // A skewed generator re-hits hot rows, a uniform one rarely does.
    EXPECT_LT(zipf_distinct, uniform_distinct);
}

TEST(SdcController, ScrubDetectsEverythingWithinOnePeriod)
{
    FaultOptions f = corruptionFaults(20000.0);
    FaultInjector injector(f, 2);
    CorruptionTopology topo = smallTopology();
    injector.setCorruptionTopology(topo);
    SdcOptions so;
    so.scrubIntervalSeconds = 0.002;
    so.quarantineQuality = 0.85;
    SdcController ctl(so, topo, &injector, 42, 16, 20);
    ctl.calibrate(1e-4, 25.0);
    EXPECT_GT(ctl.serviceSlowdown(), 1.0);
    double now = 0.0;
    for (int i = 0; i < 100; ++i) {
        now += ctl.beginInference(now);
        double verify = ctl.onShardLookup(0, 0, now);
        verify += ctl.onShardLookup(1, 0, now);
        (void)ctl.endInference(now + 1e-4);
        now += 1e-4 + verify;
    }
    ctl.finish(now);
    const SdcStats &s = ctl.stats();
    EXPECT_GT(s.injectedRows, 20u);
    uint64_t eligible = 0;
    uint64_t detected = 0;
    for (const SdcController::EventRecord &rec : ctl.events()) {
        if (rec.cleared || rec.event.table < 0)
            continue;
        ++eligible;
        if (rec.detectTime >= 0.0) {
            ++detected;
            EXPECT_LE(rec.detectTime - rec.event.time,
                      so.scrubIntervalSeconds * (1.0 + 1e-9));
        }
    }
    // The detection bound: one full sweep passes every row position
    // within a period of any injection.
    EXPECT_EQ(detected, eligible);
    EXPECT_EQ(s.detected, s.detectionLatency.count());
}

TEST(SdcController, RepairChannelIsSerialized)
{
    FaultOptions f = corruptionFaults(50000.0);
    FaultInjector injector(f, 2);
    CorruptionTopology topo = smallTopology();
    injector.setCorruptionTopology(topo);
    SdcOptions so;
    so.scrubIntervalSeconds = 0.001;
    so.quarantineQuality = 0.85;
    SdcController ctl(so, topo, &injector, 42, 16, 20);
    ctl.calibrate(1e-4, 25.0);
    double now = 0.0;
    for (int i = 0; i < 50; ++i) {
        now += ctl.beginInference(now);
        ctl.onShardLookup(0, 0, now);
        ctl.onShardLookup(1, 0, now);
        (void)ctl.endInference(now + 1e-4);
        now += 1e-4;
    }
    ctl.finish(now);
    const SdcStats &s = ctl.stats();
    EXPECT_GT(s.quarantinedRows, 0u);
    // Every quarantined row eventually re-fetches, and the serialized
    // channel's busy time covers at least one RTT per transfer.
    EXPECT_EQ(s.repairs, s.quarantinedRows);
    EXPECT_GE(s.repairSeconds,
              static_cast<double>(s.repairs) * so.repairRttSeconds);
}

TEST(ShardedSdc, OutputGuardsPreventEveryEscape)
{
    RunOptions options;
    options.measureIters = 200;
    options.faults = corruptionFaults(2000.0);
    options.sdc.outputGuards = true;
    RunResult r = runSharded(options);
    EXPECT_TRUE(r.sdc.active);
    EXPECT_GT(r.sdc.injectedRows, 0u);
    EXPECT_EQ(r.sdc.corruptedServed, 0u);
    EXPECT_GT(r.sdc.detectedGuard, 0u);
    EXPECT_EQ(r.completed, 200u);
}

TEST(ShardedSdc, NoDefenseServesCorruptedResponses)
{
    RunOptions options;
    options.measureIters = 200;
    options.faults = corruptionFaults(5000.0);
    RunResult r = runSharded(options);
    EXPECT_TRUE(r.sdc.active);
    EXPECT_GT(r.sdc.injectedRows, 0u);
    EXPECT_EQ(r.sdc.detected, 0u);
    EXPECT_GT(r.sdc.corruptedServed, 0u);
}

TEST(ShardedSdc, RunsAreDeterministic)
{
    RunOptions options;
    options.measureIters = 150;
    options.faults = corruptionFaults(3000.0);
    options.sdc.scrubIntervalSeconds = 0.005;
    options.sdc.inlineSampleRate = 0.25;
    options.sdc.outputGuards = true;
    options.sdc.canaryIntervalSeconds = 0.010;
    RunResult a = runSharded(options);
    RunResult b = runSharded(options);
    EXPECT_EQ(a.sdc.injectedRows, b.sdc.injectedRows);
    EXPECT_EQ(a.sdc.detected, b.sdc.detected);
    EXPECT_EQ(a.sdc.detectedScrub, b.sdc.detectedScrub);
    EXPECT_EQ(a.sdc.detectedInline, b.sdc.detectedInline);
    EXPECT_EQ(a.sdc.detectedGuard, b.sdc.detectedGuard);
    EXPECT_EQ(a.sdc.detectedCanary, b.sdc.detectedCanary);
    EXPECT_EQ(a.sdc.quarantinedRows, b.sdc.quarantinedRows);
    EXPECT_EQ(a.sdc.degradedServed, b.sdc.degradedServed);
    EXPECT_EQ(a.latency.p(99.0), b.latency.p(99.0));
    EXPECT_EQ(a.duration, b.duration);
}

TEST(ShardedSdc, QuarantineQualityAccounting)
{
    RunOptions options;
    options.measureIters = 200;
    options.faults = corruptionFaults(2000.0);
    options.sdc.outputGuards = true;
    options.sdc.scrubIntervalSeconds = 0.005;
    options.sdc.quarantineQuality = 0.5;
    RunResult r = runSharded(options);
    ASSERT_GT(r.sdc.degradedServed, 0u);
    EXPECT_EQ(r.sdc.corruptedServed, 0u);
    // Every degraded response scores the quarantine quality, every
    // clean one scores 1.0.
    double expected = static_cast<double>(r.completed) -
        static_cast<double>(r.sdc.degradedServed) * 0.5;
    EXPECT_NEAR(r.sdc.qualitySum, expected, 1e-9);
}

TEST(ShardedSdc, DensityEscalatesToDrainAndRehydrate)
{
    RunOptions options;
    options.measureIters = 300;
    options.faults = corruptionFaults(20000.0);
    options.sdc.scrubIntervalSeconds = 0.002;
    options.sdc.outputGuards = true;
    options.sdc.drainDensity = 1e-4;
    // Rehydrating a 200k-row shard at 1 GB/s would eclipse the run;
    // model a fat parameter-store pipe so drains resolve in-run.
    options.sdc.repairBandwidthGBps = 20.0;
    options.hedge.enabled = true;
    ReplicaOptions replicas;
    replicas.replicas = 2;
    options.replicas = replicas;
    RunResult r = runSharded(options);
    EXPECT_GT(r.sdc.rehydrates, 0u);
    EXPECT_GT(r.sdc.rowsRehydrated, 0u);
    // The replica layer keeps serving around drained copies.
    EXPECT_GT(r.availability(), 0.5);
    EXPECT_GT(r.completed, 0u);
}

TEST(ShardedSdc, InactiveRunExportsNoIntegrityMetrics)
{
    RunOptions options;
    options.measureIters = 50;
    RunResult r = runSharded(options);
    EXPECT_FALSE(r.sdc.active);
    obs::MetricsRegistry registry;
    r.exportTo(registry);
    std::string json = registry.snapshot().toJson();
    EXPECT_EQ(json.find("integrity."), std::string::npos);

    // And an active run does export the integrity series.
    options.faults = corruptionFaults(2000.0);
    options.sdc.outputGuards = true;
    RunResult active = runSharded(options);
    obs::MetricsRegistry registry2;
    active.exportTo(registry2);
    std::string json2 = registry2.snapshot().toJson();
    EXPECT_NE(json2.find("integrity.injected.rows"), std::string::npos);
    EXPECT_NE(json2.find("integrity.detection_latency_seconds"),
              std::string::npos);
}

TEST(ShardedSdc, FaultLogRecordsEveryCorruption)
{
    RunOptions options;
    options.measureIters = 150;
    options.faults = corruptionFaults(3000.0);
    options.sdc.scrubIntervalSeconds = 0.005;
    FaultLog log;
    options.faultLog = &log;
    RunResult r = runSharded(options);
    EXPECT_GT(r.sdc.injectedRows + r.sdc.injectedFc, 0u);
    EXPECT_EQ(log.corruptionCount(),
              r.sdc.injectedRows + r.sdc.injectedFc);
    std::string jsonl = log.toJsonl();
    EXPECT_NE(jsonl.find("\"kind\":\"single_bit_flip\""),
              std::string::npos);
    // One line per recorded event.
    size_t lines = 0;
    for (char c : jsonl)
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, log.size());
}

TEST(ShardedSdc, CanariesDetectIdleCorruption)
{
    RunOptions options;
    options.measureIters = 200;
    options.faults = corruptionFaults(3000.0);
    // Canaries only: idle-row corruption is still found, at a goodput
    // tax rather than added per-response latency.
    options.sdc.canaryIntervalSeconds = 0.001;
    RunResult r = runSharded(options);
    EXPECT_GT(r.sdc.canaryRuns, 0u);
    EXPECT_GT(r.sdc.detectedCanary, 0u);
}

} // namespace
} // namespace recperf
