/**
 * @file
 * Tests for the co-location simulator: the paper's Takeaways 6-8.
 */

#include <gtest/gtest.h>

#include "core/logging.hh"
#include "core/stats.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "timing/colocation.hh"

namespace recperf {
namespace {

ColocationResult
colocate(const MachineSpec &m, const ModelConfig &cfg, uint32_t n,
         int64_t batch = 32)
{
    TimerOptions opts;
    opts.batch = batch;
    ColocationSim sim(m, cfg, opts, n);
    return sim.run(12, 8);
}

TEST(Colocation, SingleTenantMatchesStandalone)
{
    MachineSpec bdw = broadwell();
    ColocationResult r = colocate(bdw, rmc1Small(), 1);
    ASSERT_EQ(r.tenantAverages.size(), 1u);
    EXPECT_GT(r.meanLatency(), 0.0);
    EXPECT_GT(r.throughput(), 0.0);
}

TEST(Colocation, Takeaway6LatencyDegradesWithN)
{
    // Memory-sensitive classes degrade clearly; the compute-bound RMC3
    // hides its extra memory time behind GEMM compute at this batch, so
    // we only require it not to improve.
    MachineSpec bdw = broadwell();
    for (const ModelConfig &cfg : {rmc1Small(), rmc2Small()}) {
        double solo = colocate(bdw, cfg, 1).meanLatency();
        double n8 = colocate(bdw, cfg, 8).meanLatency();
        EXPECT_GT(n8, 1.05 * solo) << cfg.name;
        EXPECT_LT(n8, 5.0 * solo) << cfg.name; // bounded degradation
    }
    double solo3 = colocate(bdw, rmc3Small(), 1).meanLatency();
    double n8_3 = colocate(bdw, rmc3Small(), 8).meanLatency();
    EXPECT_GE(n8_3, 0.99 * solo3);
}

TEST(Colocation, Takeaway6Rmc2DegradesMost)
{
    // Fig 9: at N=8, degradation is 1.3 / 2.6 / 1.6x for RMC1/2/3.
    MachineSpec bdw = broadwell();
    auto degradation = [&](const ModelConfig &cfg) {
        return colocate(bdw, cfg, 8).meanLatency() /
            colocate(bdw, cfg, 1).meanLatency();
    };
    double d1 = degradation(rmc1Small());
    double d2 = degradation(rmc2Small());
    double d3 = degradation(rmc3Small());
    EXPECT_GT(d2, d1);
    EXPECT_GT(d2, d3);
}

TEST(Colocation, SlsShareGrowsUnderColocation)
{
    // Fig 9: the SparseLengthsSum fraction of RMC2 runtime grows as
    // co-location evicts embedding rows from the shared LLC.
    MachineSpec bdw = broadwell();
    double solo_frac =
        colocate(bdw, rmc2Small(), 1).averageTiming()
            .fractionByKind(OpKind::SLS);
    double n8_frac =
        colocate(bdw, rmc2Small(), 8).averageTiming()
            .fractionByKind(OpKind::SLS);
    EXPECT_GT(n8_frac, solo_frac - 0.02);
}

TEST(Colocation, Takeaway7InclusiveDegradesMoreThanExclusive)
{
    // Broadwell (inclusive) suffers a larger relative latency hit than
    // Skylake (exclusive) at high co-location.
    auto rel = [&](const MachineSpec &m, uint32_t n) {
        return colocate(m, rmc2Small(), n).meanLatency() /
            colocate(m, rmc2Small(), 1).meanLatency();
    };
    double bdw_deg = rel(broadwell(), 12);
    double skl_deg = rel(skylake(), 12);
    EXPECT_GT(bdw_deg, skl_deg);
}

TEST(Colocation, BackInvalidationsOnlyOnInclusive)
{
    MachineSpec bdw = broadwell();
    TimerOptions opts;
    opts.batch = 32;
    ColocationSim bdw_sim(bdw, rmc2Small(), opts, 4);
    ColocationResult ignored = bdw_sim.run(6, 4);
    (void)ignored;

    MachineSpec skl = skylake();
    ColocationSim skl_sim(skl, rmc2Small(), opts, 4);
    ignored = skl_sim.run(6, 4);
    (void)ignored;
    // The inclusive machine's private caches observe back-invalidation;
    // assertions are done through the public latency effect above, and
    // the mechanism is directly unit-tested in hierarchy_test.
    SUCCEED();
}

TEST(Colocation, ThroughputGrowsWithModestColocation)
{
    MachineSpec bdw = broadwell();
    double t1 = colocate(bdw, rmc1Small(), 1).throughput();
    double t4 = colocate(bdw, rmc1Small(), 4).throughput();
    double t8 = colocate(bdw, rmc1Small(), 8).throughput();
    EXPECT_GT(t4, 1.5 * t1);
    EXPECT_GT(t8, t4);
}

TEST(Colocation, LatencyBoundedThroughputRespectsSla)
{
    MachineSpec bdw = broadwell();
    ColocationResult r = colocate(bdw, rmc2Small(), 4);
    // A generous SLA admits all tenants; an impossible SLA none.
    EXPECT_GT(r.latencyBoundedThroughput(10.0, 32), 0.0);
    EXPECT_EQ(r.latencyBoundedThroughput(1e-9, 32), 0.0);
    EXPECT_GE(r.latencyBoundedThroughput(10.0, 32),
              r.latencyBoundedThroughput(0.5e-3, 32));
}

TEST(Colocation, HyperthreadingEngagesBeyondPhysicalCores)
{
    MachineSpec bdw = broadwell();
    TimerOptions opts;
    opts.batch = 8;
    ColocationSim below(bdw, rmc1Small(), opts, bdw.coresPerSocket);
    EXPECT_FALSE(below.hyperthreading());
    ColocationSim above(bdw, rmc1Small(), opts, bdw.coresPerSocket + 2);
    EXPECT_TRUE(above.hyperthreading());
}

TEST(Colocation, SamplesCoverAllTenants)
{
    MachineSpec bdw = broadwell();
    TimerOptions opts;
    opts.batch = 8;
    ColocationSim sim(bdw, rmc1Small(), opts, 3);
    ColocationResult r = sim.run(4, 5);
    EXPECT_EQ(r.latencySamples.size(), 15u);
    EXPECT_EQ(r.fcSamples.size(), 15u);
    EXPECT_EQ(r.slsSamples.size(), 15u);
    EXPECT_EQ(r.tenantAverages.size(), 3u);
}

TEST(Colocation, FcAndSlsSamplesPositive)
{
    MachineSpec bdw = broadwell();
    ColocationResult r = colocate(bdw, rmc1Small(), 2, 8);
    for (double s : r.fcSamples)
        EXPECT_GT(s, 0.0);
    for (double s : r.slsSamples)
        EXPECT_GT(s, 0.0);
    EXPECT_LT(percentile(r.fcSamples, 50), r.meanLatency());
}

TEST(Colocation, Takeaway8VariabilityGrowsWithColocation)
{
    // §VI-A: co-location introduces performance variability — the
    // p99/p5 band of an FC operator widens as neighbours contend for
    // the shared LLC (Fig 11b). Probe = LLC-resident FC co-located
    // with RMC1 instances on Broadwell.
    ModelConfig probe;
    probe.name = "fc-var-probe";
    probe.modelClass = ModelClass::Other;
    probe.denseFeatures = 448;
    probe.bottomMlp = {448};
    probe.topMlp = {64, 1};
    probe.validate();

    auto band = [&](uint32_t colocated) {
        std::vector<TenantSpec> tenants;
        TimerOptions popts;
        popts.batch = 1;
        tenants.push_back({probe, popts});
        for (uint32_t i = 0; i < colocated; ++i) {
            TimerOptions opts;
            opts.batch = 32;
            opts.seed = 400 + i;
            tenants.push_back({rmc1Large(), opts});
        }
        ColocationSim sim(broadwell(), tenants);
        ColocationResult r = sim.run(8, 30);
        std::vector<double> fc;
        for (size_t i = 0; i < r.fcSamples.size(); i += tenants.size())
            fc.push_back(r.fcSamples[i]);
        return percentile(fc, 99) / percentile(fc, 5);
    };

    double solo_band = band(0);
    double packed_band = band(10);
    EXPECT_GT(packed_band, solo_band);
    EXPECT_LT(solo_band, 1.02); // near-deterministic without neighbours
}

TEST(Colocation, RejectsZeroTenants)
{
    MachineSpec bdw = broadwell();
    TimerOptions opts;
    EXPECT_THROW(ColocationSim(bdw, rmc1Small(), opts, 0), PanicError);
}

} // namespace
} // namespace recperf
