/**
 * @file
 * Tests for the brownout ladder: option validation, the hysteresis
 * state machine (escalate on short-window burn, de-escalate on
 * long-window burn, dwell-bounded transition rate), the serving
 * integration (level occupancy, quality accounting, trace/metric
 * visibility), and bitwise determinism across host thread counts and
 * chaos seeds.
 */

#include <gtest/gtest.h>

#include "core/logging.hh"
#include "core/thread_pool.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "sched/brownout.hh"
#include "serving/server.hh"

namespace recperf {
namespace {

BrownoutOptions
ladder()
{
    BrownoutOptions b;
    b.enabled = true;
    b.enterBurn = 4.0;
    b.escalationGrowth = 2.0;
    b.exitFraction = 0.5;
    b.dwellSeconds = 0.01;
    b.shortWindowSeconds = 0.01;
    b.longWindowSeconds = 0.05;
    return b;
}

TEST(BrownoutOptions, ThresholdsGrowPerLevel)
{
    BrownoutOptions b = ladder();
    EXPECT_DOUBLE_EQ(b.enterThreshold(1), 4.0);
    EXPECT_DOUBLE_EQ(b.enterThreshold(2), 8.0);
    EXPECT_DOUBLE_EQ(b.enterThreshold(3), 16.0);
}

TEST(BrownoutOptions, QualityDecreasesDownTheLadder)
{
    BrownoutOptions b = ladder();
    double prev = 1.1;
    for (int l = 0; l < kBrownoutLevels; ++l) {
        double q = b.qualityScore(static_cast<BrownoutLevel>(l));
        EXPECT_GT(q, 0.0);
        EXPECT_LE(q, 1.0);
        EXPECT_LT(q, prev);
        prev = q;
    }
    EXPECT_DOUBLE_EQ(
        b.qualityScore(BrownoutLevel::Full), 1.0);
}

TEST(BrownoutOptions, LevelNamesAreStable)
{
    EXPECT_STREQ(brownoutLevelName(BrownoutLevel::Full), "full");
    EXPECT_STREQ(brownoutLevelName(BrownoutLevel::TruncateCandidates),
                 "truncate_candidates");
    EXPECT_STREQ(brownoutLevelName(BrownoutLevel::SkipTables),
                 "skip_tables");
    EXPECT_STREQ(brownoutLevelName(BrownoutLevel::StaleEmbeddings),
                 "stale_embeddings");
}

TEST(BrownoutOptions, ValidatesRanges)
{
    BrownoutOptions b = ladder();
    EXPECT_TRUE(b.validate().empty());
    // Disabled options never reject: legacy configs carry defaults.
    BrownoutOptions off;
    off.enterBurn = -1.0;
    EXPECT_TRUE(off.validate().empty());

    b = ladder();
    b.enterBurn = 0.0;
    EXPECT_FALSE(b.validate().empty());
    b = ladder();
    b.escalationGrowth = 0.5;
    EXPECT_FALSE(b.validate().empty());
    b = ladder();
    b.exitFraction = 1.5;
    EXPECT_FALSE(b.validate().empty());
    b = ladder();
    b.truncateFraction = 0.0;
    EXPECT_FALSE(b.validate().empty());
    b = ladder();
    b.skipTableFraction = 1.5;
    EXPECT_FALSE(b.validate().empty());
    b = ladder();
    b.shortWindowSeconds = 0.2; // must be <= the long window
    b.longWindowSeconds = 0.1;
    EXPECT_FALSE(b.validate().empty());
}

TEST(BrownoutController, EscalatesOneLevelPerUpdate)
{
    BrownoutController c(ladder());
    EXPECT_EQ(c.level(), BrownoutLevel::Full);
    // A burn far past every threshold still climbs one rung at a time
    // (dwell: 10 ms between moves).
    EXPECT_EQ(c.update(0.00, 100.0, 100.0),
              BrownoutLevel::TruncateCandidates);
    EXPECT_EQ(c.update(0.005, 100.0, 100.0),
              BrownoutLevel::TruncateCandidates); // dwell-blocked
    EXPECT_EQ(c.update(0.011, 100.0, 100.0), BrownoutLevel::SkipTables);
    EXPECT_EQ(c.update(0.022, 100.0, 100.0),
              BrownoutLevel::StaleEmbeddings);
    // Top of the ladder: no further escalation.
    EXPECT_EQ(c.update(0.033, 1000.0, 1000.0),
              BrownoutLevel::StaleEmbeddings);
    EXPECT_EQ(c.transitions(), 3u);
}

TEST(BrownoutController, HysteresisHoldsTheLevel)
{
    BrownoutController c(ladder());
    c.update(0.0, 100.0, 100.0); // -> L1 (enter threshold 4.0)
    // Short burn below the next entry threshold and long burn above
    // the exit band (4.0 * 0.5 = 2.0): the controller holds.
    EXPECT_EQ(c.update(0.02, 3.0, 3.0),
              BrownoutLevel::TruncateCandidates);
    EXPECT_EQ(c.update(0.04, 3.0, 3.0),
              BrownoutLevel::TruncateCandidates);
    // Long-window burn drops into the exit band: de-escalate.
    EXPECT_EQ(c.update(0.06, 3.0, 1.0), BrownoutLevel::Full);
    EXPECT_EQ(c.transitions(), 2u);
}

TEST(BrownoutController, RecoveryIsDeliberate)
{
    // A short-window spike enters the ladder, but leaving requires the
    // *long* window to drain — a calm short window alone is not enough.
    BrownoutController c(ladder());
    c.update(0.0, 100.0, 100.0); // -> L1
    EXPECT_EQ(c.update(0.02, 0.0, 5.0),
              BrownoutLevel::TruncateCandidates);
    EXPECT_EQ(c.update(0.04, 0.0, 1.9), BrownoutLevel::Full);
}

TEST(BrownoutController, DisabledNeverMoves)
{
    BrownoutOptions off;
    BrownoutController c(off);
    EXPECT_EQ(c.update(0.0, 1e6, 1e6), BrownoutLevel::Full);
    EXPECT_EQ(c.transitions(), 0u);
}

ServerOptions
overloadOptions(uint64_t seed = 1234)
{
    ServerOptions o;
    o.numWorkers = 2;
    o.maxBatch = 16;
    o.slaSeconds = 1.5e-3;
    o.jitterSigma = 0.05;
    o.seed = seed;
    o.deadlineSeconds = 1.5e-3;
    o.brownout = ladder();
    o.brownout.dwellSeconds = 0.005;
    return o;
}

TEST(ServerBrownout, LadderEngagesUnderOverload)
{
    Server server(broadwell(), rmc1Small(), TimerOptions{},
                  overloadOptions());
    ServingStats stats = server.runOpenLoop(400'000.0, 6'000);
    EXPECT_EQ(stats.offeredItems(), 6'000u);
    EXPECT_GT(stats.brownoutTransitions, 0u);
    uint64_t degraded = 0;
    for (int l = 1; l < kBrownoutLevels; ++l)
        degraded += stats.brownoutItems[l];
    EXPECT_GT(degraded, 0u);
    // Quality is an average over served items: below full fidelity
    // once any level >= 1 item is served, never below the L3 floor.
    EXPECT_LT(stats.qualityScore(), 1.0);
    EXPECT_GE(stats.qualityScore(),
              overloadOptions().brownout.qualityScore(
                  BrownoutLevel::StaleEmbeddings));
}

TEST(ServerBrownout, LightLoadStaysAtFullFidelity)
{
    Server server(broadwell(), rmc1Small(), TimerOptions{},
                  overloadOptions());
    ServingStats stats = server.runOpenLoop(1'000.0, 500);
    EXPECT_EQ(stats.brownoutTransitions, 0u);
    EXPECT_EQ(stats.finalBrownoutLevel, 0u);
    EXPECT_DOUBLE_EQ(stats.qualityScore(), 1.0);
    EXPECT_EQ(stats.brownoutItems[0], stats.completedItems());
}

TEST(ServerBrownout, LadderImprovesGoodputUnderOverload)
{
    // The acceptance property in miniature: at ~2x saturation the
    // ladder must beat the deadline-only configuration's goodput.
    ServerOptions with = overloadOptions();
    ServerOptions without = overloadOptions();
    without.brownout = BrownoutOptions{};
    Server a(broadwell(), rmc1Small(), TimerOptions{}, with);
    Server b(broadwell(), rmc1Small(), TimerOptions{}, without);
    ServingStats sa = a.runOpenLoop(400'000.0, 6'000);
    ServingStats sb = b.runOpenLoop(400'000.0, 6'000);
    EXPECT_GT(sa.deadlineGoodput(), sb.deadlineGoodput());
}

void
expectBitwiseEqual(const ServingStats &a, const ServingStats &b)
{
    EXPECT_EQ(a.slaMet, b.slaMet);
    EXPECT_EQ(a.slaMissed, b.slaMissed);
    EXPECT_EQ(a.shedAdmissionDeadline, b.shedAdmissionDeadline);
    EXPECT_EQ(a.deadlineShedQueue, b.deadlineShedQueue);
    EXPECT_EQ(a.deadlineCancelled, b.deadlineCancelled);
    EXPECT_EQ(a.brownoutTransitions, b.brownoutTransitions);
    EXPECT_EQ(a.finalBrownoutLevel, b.finalBrownoutLevel);
    for (int l = 0; l < kBrownoutLevels; ++l)
        EXPECT_EQ(a.brownoutItems[l], b.brownoutItems[l]);
    EXPECT_EQ(a.qualitySum, b.qualitySum);
    ASSERT_EQ(a.itemLatency.count(), b.itemLatency.count());
    for (size_t i = 0; i < a.itemLatency.count(); ++i)
        EXPECT_EQ(a.itemLatency.samples()[i],
                  b.itemLatency.samples()[i]);
}

TEST(ServerBrownout, TransitionsDeterministicAcrossThreadCounts)
{
    // The ladder reads only virtual-time burn rates, so level
    // transitions and every derived counter must be bit-identical
    // whether the host runs the tensor ops on 1 thread or 4.
    int original = globalThreadCount();
    setGlobalThreadCount(1);
    Server one(broadwell(), rmc1Small(), TimerOptions{},
               overloadOptions());
    ServingStats a = one.runOpenLoop(400'000.0, 4'000);
    setGlobalThreadCount(4);
    Server four(broadwell(), rmc1Small(), TimerOptions{},
                overloadOptions());
    ServingStats b = four.runOpenLoop(400'000.0, 4'000);
    setGlobalThreadCount(original);
    expectBitwiseEqual(a, b);
}

TEST(ServerBrownout, DeterministicAcrossRunsPerChaosSeed)
{
    // With the chaos fault channels layered on, each seed must
    // reproduce itself exactly (and accounting must close), across
    // the seeds the CI chaos job sweeps.
    for (uint64_t seed : {3ull, 4ull, 6ull}) {
        ServerOptions opts = overloadOptions(seed);
        opts.faults.stragglerProb = 0.05;
        opts.faults.spikeRatePerSec = 50.0;
        opts.faults.seed = seed;
        Server a(broadwell(), rmc1Small(), TimerOptions{}, opts);
        Server b(broadwell(), rmc1Small(), TimerOptions{}, opts);
        ServingStats sa = a.runOpenLoop(400'000.0, 4'000);
        ServingStats sb = b.runOpenLoop(400'000.0, 4'000);
        EXPECT_EQ(sa.offeredItems(), 4'000u);
        expectBitwiseEqual(sa, sb);
    }
}

TEST(ServerBrownout, ValidatesOptions)
{
    ServerOptions opts = overloadOptions();
    opts.brownout.exitFraction = 2.0;
    EXPECT_THROW(Server(broadwell(), rmc1Small(), TimerOptions{}, opts),
                 PanicError);
    opts = overloadOptions();
    opts.deadlineSeconds = -1.0;
    EXPECT_THROW(Server(broadwell(), rmc1Small(), TimerOptions{}, opts),
                 PanicError);
}

} // namespace
} // namespace recperf
