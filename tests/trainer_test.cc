/**
 * @file
 * Tests for SGD training: finite-difference gradient checks through
 * every parameter group, sparse embedding-update semantics, and
 * learning dynamics on synthetic click data.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/logging.hh"
#include "core/rng.hh"
#include "model/rec_model.hh"
#include "model/zoo.hh"
#include "train/trainer.hh"

namespace recperf {
namespace {

ModelConfig
tinyConfig()
{
    ModelConfig m;
    m.name = "train-tiny";
    m.modelClass = ModelClass::RMC1;
    m.denseFeatures = 6;
    m.bottomMlp = {8, 4};
    m.emb = {2, 32, 4, 3};
    m.topMlp = {6, 1};
    m.validate();
    return m;
}

struct Fixture
{
    Fixture() : rng(11), model(tinyConfig(), rng)
    {
        Rng in_rng(13);
        input = model.randomInput(8, in_rng);
        for (int i = 0; i < 8; ++i)
            labels.push_back(i % 2 ? 1.0f : 0.0f);
    }

    Rng rng;
    RecModel model;
    ModelInput input;
    std::vector<float> labels;
};

/**
 * Finite-difference check: after one SGD step, the observed update of
 * a single parameter must equal -lr times its numeric gradient.
 * @param select picks the parameter out of a (deterministic) model.
 */
template <typename Select>
void
checkParameterGradient(Select select)
{
    Fixture f;
    float *param = select(f);
    TrainOptions opts;
    opts.learningRate = 1.0f; // delta == -gradient
    Trainer trainer(f.model, opts);

    const float eps = 1e-3f;
    const float original = *param;
    *param = original + eps;
    double loss_plus = trainer.loss(f.input, f.labels);
    *param = original - eps;
    double loss_minus = trainer.loss(f.input, f.labels);
    *param = original;
    double numeric = (loss_plus - loss_minus) / (2.0 * eps);

    trainer.step(f.input, f.labels);
    double observed = original - *param; // == lr * analytic gradient

    EXPECT_NEAR(observed, numeric,
                std::max(2e-4, 0.05 * std::fabs(numeric)))
        << "numeric " << numeric << " observed " << observed;
}

TEST(TrainerGradients, TopWeight)
{
    checkParameterGradient([](Fixture &f) {
        return f.model.topLayers()[0].weight().data() + 3;
    });
}

TEST(TrainerGradients, TopBias)
{
    checkParameterGradient([](Fixture &f) {
        return f.model.topLayers()[1].bias().data();
    });
}

TEST(TrainerGradients, BottomWeight)
{
    checkParameterGradient([](Fixture &f) {
        return f.model.bottomLayers()[0].weight().data() + 7;
    });
}

TEST(TrainerGradients, BottomBias)
{
    checkParameterGradient([](Fixture &f) {
        return f.model.bottomLayers()[1].bias().data() + 1;
    });
}

TEST(TrainerGradients, EmbeddingRow)
{
    checkParameterGradient([](Fixture &f) {
        // A row that is actually referenced by the fixed input.
        int64_t id = f.input.sparse[0].ids.front();
        return f.model.tables()[0].table().data() +
            id * f.model.tables()[0].dim() + 1;
    });
}

TEST(Trainer, RequiresConcatInteraction)
{
    Rng rng(1);
    ModelConfig dot = tinyConfig();
    dot.bottomMlp = {8, 4};
    dot.emb.embDim = 4;
    dot.interaction = InteractionKind::Dot;
    dot.validate();
    RecModel model(dot, rng);
    EXPECT_THROW(Trainer(model, TrainOptions{}), PanicError);
}

TEST(Trainer, RejectsBadOptionsAndLabels)
{
    Fixture f;
    TrainOptions bad;
    bad.learningRate = 0.0f;
    EXPECT_THROW(Trainer(f.model, bad), PanicError);

    Trainer trainer(f.model, TrainOptions{});
    std::vector<float> short_labels(3, 1.0f);
    EXPECT_THROW(trainer.step(f.input, short_labels), PanicError);
    EXPECT_THROW(trainer.loss(f.input, short_labels), PanicError);
}

TEST(Trainer, StepReturnsPreUpdateLoss)
{
    Fixture f;
    Trainer trainer(f.model, TrainOptions{});
    double before = trainer.loss(f.input, f.labels);
    double reported = trainer.step(f.input, f.labels);
    EXPECT_NEAR(reported, before, 1e-9);
}

TEST(Trainer, LossDecreasesOnFixedBatch)
{
    Fixture f;
    TrainOptions opts;
    opts.learningRate = 0.1f;
    Trainer trainer(f.model, opts);
    double first = trainer.loss(f.input, f.labels);
    for (int i = 0; i < 50; ++i)
        trainer.step(f.input, f.labels);
    double last = trainer.loss(f.input, f.labels);
    EXPECT_LT(last, 0.5 * first);
}

TEST(Trainer, SparseUpdatesOnlyTouchGatheredRows)
{
    Fixture f;
    // Snapshot an untouched row and a touched row of table 0.
    const EmbeddingTable &table = f.model.tables()[0];
    int64_t touched = f.input.sparse[0].ids.front();
    int64_t untouched = -1;
    for (int64_t r = 0; r < table.rows(); ++r) {
        bool used = false;
        for (int64_t id : f.input.sparse[0].ids)
            used |= id == r;
        if (!used) {
            untouched = r;
            break;
        }
    }
    ASSERT_GE(untouched, 0) << "input references every row";

    std::vector<float> before_untouched, before_touched;
    for (int64_t c = 0; c < table.dim(); ++c) {
        before_untouched.push_back(table.table().at(untouched, c));
        before_touched.push_back(table.table().at(touched, c));
    }

    TrainOptions opts;
    opts.learningRate = 0.5f;
    Trainer trainer(f.model, opts);
    trainer.step(f.input, f.labels);

    bool touched_changed = false;
    for (int64_t c = 0; c < table.dim(); ++c) {
        EXPECT_EQ(table.table().at(untouched, c),
                  before_untouched[static_cast<size_t>(c)]);
        touched_changed |= table.table().at(touched, c) !=
            before_touched[static_cast<size_t>(c)];
    }
    EXPECT_TRUE(touched_changed);
}

TEST(Trainer, LearnsTeacherModel)
{
    // Student should recover most of a random teacher's decisions from
    // its labels — end-to-end learning through FCs and embeddings.
    Rng rng(21);
    RecModel teacher(tinyConfig(), rng);
    Rng student_rng(22);
    RecModel student(tinyConfig(), student_rng);

    TrainOptions opts;
    opts.learningRate = 0.05f;
    Trainer trainer(student, opts);

    Rng data_rng(23);
    double final_accuracy = 0.0;
    for (int epoch = 0; epoch < 200; ++epoch) {
        ModelInput batch = teacher.randomInput(32, data_rng);
        Tensor truth = teacher.forward(batch);
        std::vector<float> labels;
        for (int64_t b = 0; b < 32; ++b)
            labels.push_back(truth.at(b, 0) >= 0.5f ? 1.0f : 0.0f);
        trainer.step(batch, labels);
        if (epoch == 199)
            final_accuracy = trainer.accuracy(batch, labels);
    }
    EXPECT_GT(final_accuracy, 0.7);
}

TEST(Auc, PerfectAndRandomSeparation)
{
    // Perfectly separated scores -> AUC 1; anti-separated -> 0.
    EXPECT_DOUBLE_EQ(areaUnderRoc({0.9f, 0.8f, 0.2f, 0.1f},
                                  {1, 1, 0, 0}),
                     1.0);
    EXPECT_DOUBLE_EQ(areaUnderRoc({0.1f, 0.2f, 0.8f, 0.9f},
                                  {1, 1, 0, 0}),
                     0.0);
}

TEST(Auc, TiesAveraged)
{
    // All scores equal: AUC is exactly 0.5 by the tie convention.
    EXPECT_DOUBLE_EQ(areaUnderRoc({0.5f, 0.5f, 0.5f, 0.5f},
                                  {1, 0, 1, 0}),
                     0.5);
}

TEST(Auc, KnownMixedCase)
{
    // scores: pos {0.8, 0.4}, neg {0.6, 0.2}: pairs won = 3 of 4.
    EXPECT_DOUBLE_EQ(areaUnderRoc({0.8f, 0.4f, 0.6f, 0.2f},
                                  {1, 1, 0, 0}),
                     0.75);
}

TEST(Auc, DegenerateLabels)
{
    EXPECT_DOUBLE_EQ(areaUnderRoc({0.1f, 0.9f}, {1, 1}), 0.5);
    EXPECT_THROW(areaUnderRoc({}, {}), PanicError);
    EXPECT_THROW(areaUnderRoc({0.5f}, {1, 0}), PanicError);
}

TEST(Trainer, AucImprovesWithTraining)
{
    Fixture f;
    TrainOptions opts;
    opts.learningRate = 0.1f;
    Trainer trainer(f.model, opts);
    double before = trainer.auc(f.input, f.labels);
    for (int i = 0; i < 60; ++i)
        trainer.step(f.input, f.labels);
    double after = trainer.auc(f.input, f.labels);
    EXPECT_GT(after, before);
    EXPECT_GT(after, 0.95); // memorizes the fixed batch
}

TEST(TrainerAdagrad, GradientSignPreserved)
{
    // First Adagrad step moves each parameter by lr * sign(grad)
    // (accumulator = g^2 -> step = lr * g / |g|).
    Fixture f;
    TrainOptions opts;
    opts.learningRate = 0.01f;
    opts.optimizer = Optimizer::Adagrad;
    Trainer trainer(f.model, opts);

    Tensor before =
        f.model.topLayers()[0].weight().reshaped(
            f.model.topLayers()[0].weight().shape());
    trainer.step(f.input, f.labels);
    const Tensor &after = f.model.topLayers()[0].weight();
    int64_t moved = 0;
    for (int64_t i = 0; i < after.size(); ++i) {
        float delta = std::fabs(after.at(i) - before.at(i));
        if (delta == 0.0f)
            continue;
        ++moved;
        EXPECT_NEAR(delta, 0.01f, 1e-4f); // lr * g/|g| modulo epsilon
    }
    EXPECT_GT(moved, 0);
}

TEST(TrainerAdagrad, ConvergesOnFixedBatch)
{
    Fixture f;
    TrainOptions opts;
    opts.learningRate = 0.05f;
    opts.optimizer = Optimizer::Adagrad;
    Trainer trainer(f.model, opts);
    double first = trainer.loss(f.input, f.labels);
    for (int i = 0; i < 80; ++i)
        trainer.step(f.input, f.labels);
    EXPECT_LT(trainer.loss(f.input, f.labels), 0.5 * first);
}

TEST(TrainerAdagrad, StableAtLearningRatesThatBreakSgd)
{
    // Adagrad's per-parameter normalization bounds every update by the
    // learning rate regardless of gradient magnitude, so training stays
    // finite and converges even at an absurd step size.
    Fixture f;
    TrainOptions opts;
    opts.learningRate = 20.0f;
    opts.optimizer = Optimizer::Adagrad;
    Trainer trainer(f.model, opts);
    double first = trainer.step(f.input, f.labels);
    double last = first;
    for (int i = 0; i < 60; ++i)
        last = trainer.step(f.input, f.labels);
    EXPECT_TRUE(std::isfinite(last));
    EXPECT_LT(last, first);
    // Every parameter remains finite.
    for (const FullyConnected &fc : f.model.topLayers()) {
        for (int64_t i = 0; i < fc.weight().size(); ++i)
            ASSERT_TRUE(std::isfinite(fc.weight().at(i)));
    }
}

TEST(Trainer, Deterministic)
{
    auto run = [] {
        Rng rng(31);
        RecModel model(tinyConfig(), rng);
        Rng in_rng(32);
        ModelInput input = model.randomInput(8, in_rng);
        std::vector<float> labels(8, 1.0f);
        Trainer trainer(model, TrainOptions{});
        double total = 0.0;
        for (int i = 0; i < 10; ++i)
            total += trainer.step(input, labels);
        return total;
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

} // namespace
} // namespace recperf
