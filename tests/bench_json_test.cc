/**
 * @file
 * Golden test for the bench::JsonWriter envelope. bench_diff.py and CI
 * consume the committed BENCH_*.json files, so the envelope shape --
 * schema_version first, then bench / machine / config / results, with
 * fields rendered in insertion order -- is a compatibility contract.
 * Any change here must bump schema_version and update bench_diff.py.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "bench/bench_common.hh"

namespace recperf {
namespace {

TEST(BenchJson, EnvelopeMatchesGolden)
{
    bench::JsonWriter writer("unit_test_bench");
    writer.config().add("iters", 100).add("model", "rmc1");
    writer.newResult()
        .add("name", std::string("row \"one\""))
        .add("threads", 2)
        .add("p99_ms", 1.25)
        .add("ok", true);
    writer.newResult().add("name", "row two").add("p99_ms", 0.5);

    // host_cores and the backend/ISA stamp are the machine-dependent
    // fields; substitute them from the live process.
    std::string golden = std::string("{\n") +
        "  \"schema_version\": 1,\n"
        "  \"bench\": \"unit_test_bench\",\n"
        "  \"machine\": {\n"
        "    \"host_cores\": @CORES@,\n"
        "    \"backend\": \"@BACKEND@\",\n"
        "    \"isa\": \"@ISA@\"\n"
        "  },\n"
        "  \"config\": {\n"
        "    \"iters\": 100,\n"
        "    \"model\": \"rmc1\"\n"
        "  },\n"
        "  \"results\": [\n"
        "    {\n"
        "      \"name\": \"row \\\"one\\\"\",\n"
        "      \"threads\": 2,\n"
        "      \"p99_ms\": 1.25,\n"
        "      \"ok\": true\n"
        "    },\n"
        "    {\n"
        "      \"name\": \"row two\",\n"
        "      \"p99_ms\": 0.5\n"
        "    }\n"
        "  ]\n"
        "}\n";
    std::string cores =
        std::to_string(std::thread::hardware_concurrency());
    golden.replace(golden.find("@CORES@"), 7, cores);
    const BackendConfig &backend = activeBackendConfig();
    golden.replace(golden.find("@BACKEND@"), 9,
                   backendKindName(backend.kind));
    golden.replace(golden.find("@ISA@"), 5,
                   backend.isa.autoSelect
                       ? "auto"
                       : kernelIsaName(backend.isa.pinned));

    EXPECT_EQ(writer.str(), golden);
}

TEST(BenchJson, SchemaVersionIsStable)
{
    // bench_diff.py hard-fails on schema_version mismatch; bumping it
    // invalidates every committed baseline, so make it deliberate.
    EXPECT_EQ(bench::JsonWriter::kSchemaVersion, 1);
}

TEST(BenchJson, NumbersUseShortestRoundTrip)
{
    bench::JsonObject obj;
    obj.add("tiny", 1e-9);
    obj.add("frac", 0.3333333333333333);
    obj.add("whole", 2.0);
    std::string out = obj.render(0);
    EXPECT_NE(out.find("\"tiny\": 1e-09"), std::string::npos) << out;
    EXPECT_NE(out.find("\"frac\": 0.3333333333"), std::string::npos)
        << out;
    EXPECT_NE(out.find("\"whole\": 2"), std::string::npos) << out;
}

TEST(BenchJson, ControlCharactersAreEscaped)
{
    bench::JsonObject obj;
    obj.add("s", std::string("a\nb"));
    std::string out = obj.render(0);
    EXPECT_NE(out.find("\\u000a"), std::string::npos) << out;
}

} // namespace
} // namespace recperf
