/**
 * @file
 * Property test: the set-associative Cache against an executable
 * reference model (per-set LRU lists) under randomized operation
 * sequences. Any divergence in hit/miss outcomes, evicted victims, or
 * resident contents is a simulator bug.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <optional>
#include <vector>

#include "core/rng.hh"
#include "simcache/cache.hh"

namespace recperf {
namespace {

/** Obviously-correct reference: one LRU list per set. */
class ReferenceCache
{
  public:
    ReferenceCache(uint64_t size_bytes, uint32_t assoc,
                   uint32_t line_bytes = 64)
        : assoc_(assoc), line_bytes_(line_bytes),
          sets_(size_bytes / line_bytes / assoc)
    {
    }

    bool
    access(uint64_t addr)
    {
        auto &set = setFor(addr);
        uint64_t line = addr / line_bytes_;
        auto it = std::find(set.begin(), set.end(), line);
        if (it == set.end())
            return false;
        set.erase(it);
        set.push_back(line); // most recent at back
        return true;
    }

    std::optional<uint64_t>
    fill(uint64_t addr)
    {
        auto &set = setFor(addr);
        uint64_t line = addr / line_bytes_;
        auto it = std::find(set.begin(), set.end(), line);
        if (it != set.end()) {
            set.erase(it);
            set.push_back(line);
            return std::nullopt;
        }
        std::optional<uint64_t> evicted;
        if (set.size() == assoc_) {
            evicted = set.front() * line_bytes_;
            set.pop_front();
        }
        set.push_back(line);
        return evicted;
    }

    bool
    invalidate(uint64_t addr)
    {
        auto &set = setFor(addr);
        uint64_t line = addr / line_bytes_;
        auto it = std::find(set.begin(), set.end(), line);
        if (it == set.end())
            return false;
        set.erase(it);
        return true;
    }

    bool
    contains(uint64_t addr) const
    {
        const auto &set = sets_[addr / line_bytes_ % sets_.size()];
        return std::find(set.begin(), set.end(), addr / line_bytes_) !=
            set.end();
    }

    uint64_t
    occupancy() const
    {
        uint64_t n = 0;
        for (const auto &set : sets_)
            n += set.size();
        return n;
    }

  private:
    std::list<uint64_t> &
    setFor(uint64_t addr)
    {
        return sets_[addr / line_bytes_ % sets_.size()];
    }

    uint32_t assoc_;
    uint32_t line_bytes_;
    std::vector<std::list<uint64_t>> sets_;
};

struct FuzzConfig
{
    uint64_t seed;
    uint64_t size_bytes;
    uint32_t assoc;
    uint64_t addr_space_lines;
};

class CacheFuzz : public ::testing::TestWithParam<FuzzConfig>
{
};

TEST_P(CacheFuzz, AgreesWithReference)
{
    const FuzzConfig cfg = GetParam();
    Cache cache("fuzz", cfg.size_bytes, cfg.assoc);
    ReferenceCache ref(cfg.size_bytes, cfg.assoc);
    Rng rng(cfg.seed);

    for (int step = 0; step < 30'000; ++step) {
        uint64_t addr = rng.nextBelow(cfg.addr_space_lines) * 64 +
            rng.nextBelow(64); // arbitrary byte within the line
        switch (rng.nextBelow(4)) {
          case 0:
          case 1: { // access (most common)
            bool got = cache.access(addr);
            bool want = ref.access(addr);
            ASSERT_EQ(got, want) << "access mismatch at step " << step;
            break;
          }
          case 2: { // fill
            auto got = cache.fill(addr);
            auto want = ref.fill(addr);
            ASSERT_EQ(got.has_value(), want.has_value())
                << "fill eviction mismatch at step " << step;
            if (got) {
                ASSERT_EQ(*got, *want) << "victim mismatch at " << step;
            }
            break;
          }
          default: { // invalidate
            ASSERT_EQ(cache.invalidate(addr), ref.invalidate(addr))
                << "invalidate mismatch at step " << step;
            break;
          }
        }
        if (step % 4096 == 0) {
            ASSERT_EQ(cache.occupancy(), ref.occupancy());
            ASSERT_EQ(cache.contains(addr), ref.contains(addr));
        }
    }

    // Final state: identical resident sets.
    auto lines = cache.residentLines();
    ASSERT_EQ(lines.size(), ref.occupancy());
    for (uint64_t addr : lines)
        ASSERT_TRUE(ref.contains(addr));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheFuzz,
    ::testing::Values(
        FuzzConfig{1, 4096, 1, 256},        // direct-mapped, tight space
        FuzzConfig{2, 4096, 4, 512},
        FuzzConfig{3, 32 * 1024, 8, 4096},
        FuzzConfig{4, 256 * 1024, 16, 8192},
        FuzzConfig{5, 4096, 64, 128},       // fully-associative set
        FuzzConfig{6, 64 * 1024, 2, 100'000}));

} // namespace
} // namespace recperf
