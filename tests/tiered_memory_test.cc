/**
 * @file
 * Tests for the DRAM/NVM tiered embedding-storage model.
 */

#include <gtest/gtest.h>

#include "core/logging.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "timing/tiered_memory.hh"

namespace recperf {
namespace {

TieredSlsResult
runTiered(size_t cache_rows, CachePolicy policy = CachePolicy::Lru)
{
    TimerOptions opts;
    opts.batch = 8;
    TieredSlsModel model(broadwell(), rmc2Small(), NvmConfig{}, cache_rows,
                         policy, opts);
    return model.run(10, 10);
}

TEST(TieredMemory, RequiresTables)
{
    ModelConfig no_tables;
    no_tables.name = "dense-only";
    no_tables.denseFeatures = 8;
    no_tables.bottomMlp = {4};
    no_tables.topMlp = {1};
    TimerOptions opts;
    EXPECT_THROW(TieredSlsModel(broadwell(), no_tables, NvmConfig{}, 100,
                                CachePolicy::Lru, opts),
                 PanicError);
}

TEST(TieredMemory, CapacityCheck)
{
    NvmConfig tiny;
    tiny.capacityGB = 0.001;
    TimerOptions opts;
    EXPECT_THROW(TieredSlsModel(broadwell(), rmc2Small(), tiny, 100,
                                CachePolicy::Lru, opts),
                 PanicError);
}

TEST(TieredMemory, NoCacheMeansAllNvm)
{
    TieredSlsResult r = runTiered(0);
    EXPECT_EQ(r.dramCacheHitRate, 0.0);
    EXPECT_EQ(r.dramCacheBytes, 0.0);
    // 8 batch x 80 lookups x 32 tables rows, all from NVM.
    EXPECT_EQ(r.nvmReadsPerInference, 8u * 80 * 32);
    EXPECT_GT(r.slsSecondsPerInference, 0.0);
}

TEST(TieredMemory, CacheCutsNvmReads)
{
    TieredSlsResult none = runTiered(0);
    TieredSlsResult cached = runTiered(500'000);
    EXPECT_GT(cached.dramCacheHitRate, 0.3);
    EXPECT_LT(cached.nvmReadsPerInference, none.nvmReadsPerInference);
    EXPECT_LT(cached.slsSecondsPerInference, none.slsSecondsPerInference);
    EXPECT_GT(cached.dramCacheBytes, 0.0);
}

TEST(TieredMemory, LatencyMonotoneInCacheSize)
{
    double prev = runTiered(0).slsSecondsPerInference;
    for (size_t rows : {50'000, 500'000, 5'000'000}) {
        double t = runTiered(rows).slsSecondsPerInference;
        EXPECT_LE(t, prev * 1.05) << rows;
        prev = t;
    }
}

TEST(TieredMemory, BigCacheApproachesDramSpeed)
{
    // With a cache holding most hot rows, the tiered system should be
    // within a small factor of all-DRAM gathers.
    TieredSlsResult big = runTiered(5'000'000);
    MachineSpec bdw = broadwell();
    double all_dram = bdw.gatherSeconds(HitLevel::Memory,
                                        8.0 * 80 * 32 * 2, 8);
    EXPECT_LT(big.slsSecondsPerInference, 3.0 * all_dram);
}

TEST(TieredMemory, NvmSlowerThanDramPerRead)
{
    // Sanity on the NVM config itself.
    NvmConfig nvm;
    MachineSpec bdw = broadwell();
    EXPECT_GT(nvm.readLatencyNs, bdw.dram.latencyNs);
    EXPECT_LT(nvm.gatherGBps, bdw.dram.gatherGBps());
}

} // namespace
} // namespace recperf
