/**
 * @file
 * Unit tests for the machine specs (Table II) and the SIMD model.
 */

#include <gtest/gtest.h>

#include "core/logging.hh"
#include "machine/machine_spec.hh"

namespace recperf {
namespace {

TEST(MachineSpec, TableIIHaswell)
{
    MachineSpec m = haswell();
    EXPECT_EQ(m.name, "Haswell");
    EXPECT_DOUBLE_EQ(m.freqGHz, 2.5);
    EXPECT_EQ(m.coresPerSocket, 12u);
    EXPECT_EQ(m.sockets, 2u);
    EXPECT_EQ(m.simd.isa, SimdIsa::AVX2);
    EXPECT_EQ(m.l2.sizeBytes, 256u * 1024);
    EXPECT_EQ(m.l3.sizeBytes, 30ull * 1024 * 1024);
    EXPECT_EQ(m.policy, InclusionPolicy::Inclusive);
    EXPECT_EQ(m.dram.ddrType, "DDR3");
    EXPECT_DOUBLE_EQ(m.dram.ddrFreqMHz, 1600.0);
    EXPECT_DOUBLE_EQ(m.dram.bandwidthGBps, 51.0);
}

TEST(MachineSpec, TableIIBroadwell)
{
    MachineSpec m = broadwell();
    EXPECT_DOUBLE_EQ(m.freqGHz, 2.4);
    EXPECT_EQ(m.coresPerSocket, 14u);
    EXPECT_EQ(m.simd.isa, SimdIsa::AVX2);
    EXPECT_EQ(m.l3.sizeBytes, 35ull * 1024 * 1024);
    EXPECT_EQ(m.policy, InclusionPolicy::Inclusive);
    EXPECT_EQ(m.dram.ddrType, "DDR4");
    EXPECT_DOUBLE_EQ(m.dram.bandwidthGBps, 77.0);
}

TEST(MachineSpec, TableIISkylake)
{
    MachineSpec m = skylake();
    EXPECT_DOUBLE_EQ(m.freqGHz, 2.0);
    EXPECT_EQ(m.coresPerSocket, 20u);
    EXPECT_EQ(m.simd.isa, SimdIsa::AVX512);
    EXPECT_EQ(m.l2.sizeBytes, 1024u * 1024); // 4x larger L2
    EXPECT_EQ(m.policy, InclusionPolicy::Exclusive);
    EXPECT_DOUBLE_EQ(m.dram.ddrFreqMHz, 2666.0);
}

TEST(MachineSpec, FleetHasThreeGenerations)
{
    auto fleet = fleetMachines();
    ASSERT_EQ(fleet.size(), 3u);
    EXPECT_EQ(fleet[0].name, "Haswell");
    EXPECT_EQ(fleet[1].name, "Broadwell");
    EXPECT_EQ(fleet[2].name, "Skylake");
}

TEST(MachineSpec, TotalCores)
{
    EXPECT_EQ(haswell().totalCores(), 24u);
    EXPECT_EQ(broadwell().totalCores(), 28u);
    EXPECT_EQ(skylake().totalCores(), 40u);
}

TEST(MachineSpec, DramLatencyCycles)
{
    // 90 ns at 2.4 GHz = 216 cycles.
    EXPECT_EQ(broadwell().dramLatencyCycles(), 216u);
}

TEST(MachineSpec, StreamFasterAtInnerLevels)
{
    MachineSpec m = broadwell();
    double bytes = 1e6;
    EXPECT_LT(m.streamSeconds(HitLevel::L1, bytes),
              m.streamSeconds(HitLevel::L2, bytes));
    EXPECT_LT(m.streamSeconds(HitLevel::L2, bytes),
              m.streamSeconds(HitLevel::L3, bytes));
    EXPECT_LT(m.streamSeconds(HitLevel::L3, bytes),
              m.streamSeconds(HitLevel::Memory, bytes));
}

TEST(MachineSpec, GatherSlowerThanStreamFromDram)
{
    // Random 64 B gathers achieve a small fraction of stream bandwidth.
    MachineSpec m = broadwell();
    double lines = 1000;
    double bytes = lines * 64;
    EXPECT_GT(m.gatherSeconds(HitLevel::Memory, lines),
              10 * m.streamSeconds(HitLevel::Memory, bytes));
}

TEST(MachineSpec, GatherBandwidthNearOneGBps)
{
    // §V: SLS sustains ~1 GB/s of DRAM bandwidth on Broadwell.
    MachineSpec m = broadwell();
    EXPECT_NEAR(m.dram.gatherGBps(), 1.0, 0.4);
}

TEST(MachineSpec, HaswellGatherSlowerThanBroadwell)
{
    // DDR3-1600 vs DDR4-2400: the mechanism behind Takeaway 3.
    double lines = 1000;
    EXPECT_GT(haswell().gatherSeconds(HitLevel::Memory, lines),
              broadwell().gatherSeconds(HitLevel::Memory, lines));
}

TEST(MachineSpec, DispatchOverheadScalesWithFrequency)
{
    // Same cycle cost, lower frequency => more seconds (why Skylake
    // loses on dispatch-heavy, small-batch inference).
    EXPECT_GT(skylake().dispatchSeconds(OpKind::FC),
              broadwell().dispatchSeconds(OpKind::FC));
}

TEST(MachineSpec, DispatchHeavierForFcThanActivation)
{
    MachineSpec m = broadwell();
    EXPECT_GT(m.dispatchCyclesFor(OpKind::FC),
              m.dispatchCyclesFor(OpKind::SLS));
    EXPECT_GT(m.dispatchCyclesFor(OpKind::SLS),
              m.dispatchCyclesFor(OpKind::Activation));
}

TEST(MachineSpec, MakeHierarchyMatchesPolicy)
{
    auto bdw = broadwell().makeHierarchy(4);
    EXPECT_EQ(bdw->policy(), InclusionPolicy::Inclusive);
    EXPECT_EQ(bdw->numCores(), 4u);
    auto skl = skylake().makeHierarchy(2);
    EXPECT_EQ(skl->policy(), InclusionPolicy::Exclusive);
    EXPECT_EQ(skl->l3().sizeBytes(), skylake().l3.sizeBytes);
}

TEST(SimdModel, LaneWidths)
{
    EXPECT_EQ(simdLanes(SimdIsa::AVX2), 8);
    EXPECT_EQ(simdLanes(SimdIsa::AVX512), 16);
    EXPECT_STREQ(simdIsaName(SimdIsa::AVX512), "AVX-512");
}

TEST(SimdModel, PeakFlops)
{
    EXPECT_DOUBLE_EQ(makeAvx2Model().peakFlopsPerCycle(), 32.0);
    EXPECT_DOUBLE_EQ(makeAvx512Model().peakFlopsPerCycle(), 64.0);
}

TEST(SimdModel, EfficiencyMonotoneInBatch)
{
    for (const SimdModel &m : {makeAvx2Model(), makeAvx512Model()}) {
        double prev = 0.0;
        for (int64_t b : {1, 2, 4, 8, 16, 64, 256, 1024}) {
            double e = m.efficiency(b);
            EXPECT_GE(e, prev);
            EXPECT_LE(e, m.baseEfficiency + 1e-12);
            prev = e;
        }
    }
}

TEST(SimdModel, Avx512NeedsLargerBatch)
{
    // At batch 16 the AVX-2 machine is closer to its peak than the
    // AVX-512 machine is to its own (the §V underutilization).
    SimdModel avx2 = makeAvx2Model();
    SimdModel avx512 = makeAvx512Model();
    EXPECT_GT(avx2.efficiency(16) / avx2.baseEfficiency,
              avx512.efficiency(16) / avx512.baseEfficiency);
}

TEST(SimdModel, CrossoverNearBatch64)
{
    // Fig 8: Skylake's achieved GEMM rate overtakes Broadwell's
    // between batch 16 and batch 64.
    MachineSpec bdw = broadwell(), skl = skylake();
    auto rate = [](const MachineSpec &m, int64_t b) {
        return m.simd.achievedFlopsPerCycle(b) * m.cyclesPerSecond();
    };
    EXPECT_GT(rate(bdw, 16), rate(skl, 16));
    EXPECT_LT(rate(bdw, 64), rate(skl, 64));
    EXPECT_LT(rate(bdw, 256), rate(skl, 256));
}

TEST(SimdModel, EfficiencyRejectsBadBatch)
{
    EXPECT_THROW(makeAvx2Model().efficiency(0), PanicError);
}

} // namespace
} // namespace recperf
