/**
 * @file
 * Tests for the run-report renderer (obs::renderReport) and its JSON
 * reader, including the fig07 acceptance criterion: the operator cycle
 * fractions reconstructed from exported counters alone must reproduce
 * the paper's breakdown (RMC2 dominated by SLS, RMC3 by FC), and the
 * per-level cache counters feeding the MPKI table must equal the
 * simcache's own statistics over the measurement window.
 */

#include <gtest/gtest.h>

#include <string>

#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "obs/hw_counters.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "obs/request_log.hh"
#include "serving/server.hh"
#include "timing/model_timer.hh"

namespace recperf {
namespace {

// --- JSON reader --------------------------------------------------------

TEST(ReportJson, ParsesOurWritersSubset)
{
    const std::string doc = R"({
      "s": "a\"b\\cA",
      "n": -1.5e3,
      "t": true, "f": false, "z": null,
      "arr": [1, 2, {"nested": "yes"}],
      "obj": {"first": 1, "second": 2}
    })";
    obs::JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(doc, v, err)) << err;
    ASSERT_EQ(v.kind, obs::JsonValue::Kind::Object);
    EXPECT_EQ(v.find("s")->str, "a\"b\\cA");
    EXPECT_DOUBLE_EQ(v.find("n")->asNumber(), -1500.0);
    EXPECT_TRUE(v.find("t")->boolean);
    EXPECT_EQ(v.find("z")->kind, obs::JsonValue::Kind::Null);
    ASSERT_EQ(v.find("arr")->items.size(), 3u);
    EXPECT_EQ(v.find("arr")->items[2].find("nested")->str, "yes");
    // Object keys keep document order.
    EXPECT_EQ(v.find("obj")->fields[0].first, "first");
    EXPECT_EQ(v.find("obj")->fields[1].first, "second");
}

TEST(ReportJson, RejectsMalformedInputWithOffset)
{
    obs::JsonValue v;
    std::string err;
    EXPECT_FALSE(parseJson("{\"a\": }", v, err));
    EXPECT_NE(err.find("byte"), std::string::npos) << err;
    EXPECT_FALSE(parseJson("", v, err));
    EXPECT_FALSE(parseJson("{\"a\": 1} trailing", v, err));
}

TEST(Report, MalformedArtifactReportsErrorNotCrash)
{
    obs::ReportInputs inputs;
    inputs.metricsJson = "{not json";
    std::string err;
    EXPECT_EQ(renderReport(inputs, err), "");
    EXPECT_FALSE(err.empty());
}

TEST(Report, EmptyInputsRenderHeaderOnly)
{
    obs::ReportInputs inputs;
    std::string err;
    std::string report = renderReport(inputs, err);
    EXPECT_TRUE(err.empty());
    EXPECT_NE(report.find("recperf run report"), std::string::npos);
}

// --- fig07 acceptance ---------------------------------------------------

/**
 * Time @p config at batch 1 on Broadwell with telemetry on and return
 * the exported metrics snapshot (fig07's measurement shape).
 */
obs::MetricsSnapshot
timedSnapshot(const ModelConfig &config, const CacheHierarchy **hier_out,
              HierarchyCounters *ground_delta)
{
    obs::HwTelemetry &telem = obs::HwTelemetry::global();
    TimerOptions topts;
    topts.batch = 1;
    ModelTimer timer(broadwell(), config, topts);

    // Warm up outside the measurement window, as steadyState does.
    for (int i = 0; i < 50; ++i)
        (void)timer.run();
    telem.reset();
    telem.setEnabled(true);
    HierarchyCounters before = timer.hierarchy()->counters();
    for (int i = 0; i < 50; ++i)
        (void)timer.run();
    HierarchyCounters after = timer.hierarchy()->counters();
    telem.setEnabled(false);

    if (hier_out)
        *hier_out = timer.hierarchy();
    if (ground_delta) {
        ground_delta->l1.accesses = after.l1.accesses - before.l1.accesses;
        ground_delta->l1.misses = after.l1.misses - before.l1.misses;
        ground_delta->l2.misses = after.l2.misses - before.l2.misses;
        ground_delta->l3.misses = after.l3.misses - before.l3.misses;
        ground_delta->l3.backInvalidations =
            after.l3.backInvalidations - before.l3.backInvalidations;
    }

    static obs::MetricsRegistry reg; // fresh names per test run
    reg.reset();
    telem.exportTo(reg);
    return reg.snapshot();
}

TEST(Report, Fig07Rmc2IsSlsDominatedFromCountersAlone)
{
    HierarchyCounters ground{};
    obs::MetricsSnapshot snap = timedSnapshot(rmc2Small(), nullptr,
                                              &ground);
    // Paper Fig 7: RMC2 at batch 1 spends ~82.7% of its cycles in
    // SLS/embedding lookups. Reconstructed purely from the exported
    // hw.op.* counters.
    double sls = snap.gauge("hw.op.SLS.fraction");
    EXPECT_NEAR(sls, 0.827, 0.06) << "SLS fraction " << sls;
    EXPECT_GT(sls, snap.gauge("hw.op.FC.fraction"));

    // Per-level counters must equal the simcache ground truth deltas.
    EXPECT_EQ(snap.counter("simcache.l1.accesses"), ground.l1.accesses);
    EXPECT_EQ(snap.counter("simcache.l1.misses"), ground.l1.misses);
    EXPECT_EQ(snap.counter("simcache.l2.misses"), ground.l2.misses);
    EXPECT_EQ(snap.counter("simcache.l3.misses"), ground.l3.misses);
    EXPECT_EQ(snap.counter("simcache.l3.back_invalidations"),
              ground.l3.backInvalidations);
}

TEST(Report, Fig07Rmc3IsFcDominatedFromCountersAlone)
{
    obs::MetricsSnapshot snap = timedSnapshot(rmc3Small(), nullptr,
                                              nullptr);
    // Paper Fig 7: RMC3's wide FC stacks take ~97.5% of cycles.
    double fc = snap.gauge("hw.op.FC.fraction");
    EXPECT_NEAR(fc, 0.975, 0.03) << "FC fraction " << fc;
    EXPECT_GT(fc, 10.0 * snap.gauge("hw.op.SLS.fraction"));
}

TEST(Report, RendersOperatorCacheAndRooflineSectionsFromMetrics)
{
    obs::MetricsSnapshot snap = timedSnapshot(rmc2Small(), nullptr,
                                              nullptr);
    obs::ReportInputs inputs;
    inputs.metricsJson = snap.toJson();
    std::string err;
    std::string report = renderReport(inputs, err);
    ASSERT_FALSE(report.empty()) << err;
    EXPECT_NE(report.find("Operator breakdown"), std::string::npos);
    EXPECT_NE(report.find("SLS"), std::string::npos);
    EXPECT_NE(report.find("Cache hierarchy"), std::string::npos);
    EXPECT_NE(report.find("MPKI"), std::string::npos);
    EXPECT_NE(report.find("Roofline"), std::string::npos);
    EXPECT_NE(report.find("GFLOP/s"), std::string::npos);
}

// --- tail attribution ---------------------------------------------------

TEST(Report, TailAttributionSectionPinsBlameOrderingUnderOverload)
{
    // Seeded overload serve: the queue is the tail's cause, so the
    // blame table must exist and lead with `queue`. The ordering is
    // pinned — a change to the blame math or the section's sort shows
    // up here before it confuses a reader.
    obs::RequestLogger &rlog = obs::RequestLogger::global();
    rlog.configure(obs::RequestLogOptions{});
    rlog.setEnabled(true);
    ServerOptions sopts;
    sopts.numWorkers = 2;
    sopts.maxBatch = 16;
    sopts.slaSeconds = 1.5e-3;
    sopts.seed = 7;
    TimerOptions topts;
    topts.batch = sopts.maxBatch;
    Server server(broadwell(), rmc1Small(), topts, sopts);
    server.runOpenLoop(300000.0, 2500);
    rlog.setEnabled(false);

    static obs::MetricsRegistry reg;
    reg.reset();
    rlog.exportTo(reg);

    obs::ReportInputs inputs;
    inputs.metricsJson = reg.snapshot().toJson();
    std::string err;
    std::string report = renderReport(inputs, err);
    ASSERT_FALSE(report.empty()) << err;
    size_t section = report.find("Tail attribution");
    ASSERT_NE(section, std::string::npos) << report;
    size_t queue = report.find("queue", section);
    size_t service = report.find("service", section);
    ASSERT_NE(queue, std::string::npos) << report;
    ASSERT_NE(service, std::string::npos) << report;
    EXPECT_LT(queue, service)
        << "queueing must out-blame service under overload:\n"
        << report;
}

TEST(Report, NoTailSectionWithoutRequestLogGauges)
{
    obs::MetricsSnapshot snap = timedSnapshot(rmc2Small(), nullptr,
                                              nullptr);
    obs::ReportInputs inputs;
    inputs.metricsJson = snap.toJson();
    std::string err;
    std::string report = renderReport(inputs, err);
    ASSERT_FALSE(report.empty()) << err;
    EXPECT_EQ(report.find("Tail attribution"), std::string::npos);
}

} // namespace
} // namespace recperf
