/**
 * @file
 * Tests for table-wise sharded (distributed) inference.
 */

#include <gtest/gtest.h>

#include "core/logging.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "serving/distributed.hh"

namespace recperf {
namespace {

ShardedResult
shard(uint32_t nodes, int64_t batch = 16)
{
    TimerOptions opts;
    opts.batch = batch;
    ShardedInference sim(broadwell(), rmc2Small(), nodes, NetworkConfig{},
                         opts);
    return sim.run(RunOptions{.warmupIters = 8, .measureIters = 6})
        .breakdown();
}

TEST(Sharded, SingleNodeHasNoNetworkCost)
{
    ShardedResult r = shard(1);
    EXPECT_EQ(r.networkSeconds, 0.0);
    EXPECT_EQ(r.networkBytes, 0.0);
    EXPECT_GT(r.slowestShardSeconds, 0.0);
    EXPECT_GT(r.aggregatorSeconds, 0.0);
    EXPECT_NEAR(r.totalSeconds,
                r.slowestShardSeconds + r.aggregatorSeconds, 1e-12);
}

TEST(Sharded, RejectsMoreNodesThanTables)
{
    TimerOptions opts;
    EXPECT_THROW(ShardedInference(broadwell(), rmc1Small(), 5,
                                  NetworkConfig{}, opts),
                 PanicError); // RMC1 has 4 tables
    EXPECT_THROW(ShardedInference(broadwell(), rmc2Small(), 0,
                                  NetworkConfig{}, opts),
                 PanicError);
}

TEST(Sharded, ShardingCutsSlsTime)
{
    ShardedResult one = shard(1);
    ShardedResult eight = shard(8);
    // Each node holds 4 of 32 tables: the parallel SLS phase shrinks
    // several-fold (also helped by better per-node cache residency).
    EXPECT_LT(eight.slowestShardSeconds,
              0.35 * one.slowestShardSeconds);
}

TEST(Sharded, NetworkCostScalesWithBatchAndTables)
{
    ShardedResult small = shard(4, 4);
    ShardedResult big = shard(4, 64);
    EXPECT_NEAR(big.networkBytes / small.networkBytes, 16.0, 1e-9);
    EXPECT_GT(big.networkSeconds, small.networkSeconds);
}

TEST(Sharded, TotalLatencyImprovesForMemoryBoundModel)
{
    // RMC2 is SLS-dominated, so spreading the gathers wins even after
    // paying the network.
    ShardedResult one = shard(1);
    ShardedResult four = shard(4);
    EXPECT_LT(four.totalSeconds, one.totalSeconds);
}

TEST(Sharded, DiminishingReturns)
{
    // The aggregator + network floor limits scale-out.
    ShardedResult n4 = shard(4);
    ShardedResult n16 = shard(16);
    double gain_4_to_16 = n4.totalSeconds / n16.totalSeconds;
    double gain_1_to_4 = shard(1).totalSeconds / n4.totalSeconds;
    EXPECT_LT(gain_4_to_16, gain_1_to_4);
}

TEST(Sharded, NumNodesReported)
{
    TimerOptions opts;
    opts.batch = 4;
    ShardedInference sim(skylake(), rmc2Small(), 7, NetworkConfig{}, opts);
    EXPECT_EQ(sim.numNodes(), 7u);
    ShardedResult r =
        sim.run(RunOptions{.warmupIters = 3, .measureIters = 3})
            .breakdown();
    EXPECT_GT(r.totalSeconds, 0.0);
}

} // namespace
} // namespace recperf
