/**
 * @file
 * Unit tests for the functional recommendation model (Fig 3 execution
 * flow: Bottom-FC, embedding pooling, Concat, Top-FC, sigmoid CTR).
 */

#include <gtest/gtest.h>

#include "core/logging.hh"
#include "core/rng.hh"
#include "model/rec_model.hh"
#include "model/zoo.hh"
#include "ops/elementwise.hh"
#include "ops/reference.hh"

namespace recperf {
namespace {

ModelConfig
tinyConfig()
{
    ModelConfig m;
    m.name = "tiny";
    m.modelClass = ModelClass::RMC1;
    m.denseFeatures = 8;
    m.bottomMlp = {16, 4};
    m.emb = {3, 64, 4, 5};
    m.topMlp = {8, 1};
    m.validate();
    return m;
}

TEST(RecModel, OutputShapeAndRange)
{
    Rng rng(1);
    RecModel model(tinyConfig(), rng);
    ModelInput input = model.randomInput(6, rng);
    Tensor ctr = model.forward(input);
    EXPECT_EQ(ctr.shape(), (Shape{6, 1}));
    for (int64_t i = 0; i < ctr.size(); ++i) {
        EXPECT_GT(ctr.at(i), 0.0f);
        EXPECT_LT(ctr.at(i), 1.0f);
    }
}

TEST(RecModel, DeterministicForSameSeed)
{
    Rng rng_a(7), rng_b(7);
    RecModel a(tinyConfig(), rng_a), b(tinyConfig(), rng_b);
    Rng in_a(3), in_b(3);
    ModelInput ia = a.randomInput(4, in_a);
    ModelInput ib = b.randomInput(4, in_b);
    EXPECT_TRUE(a.forward(ia).allClose(b.forward(ib)));
}

TEST(RecModel, DifferentSeedsDiffer)
{
    Rng rng_a(7), rng_b(8), rng_in(3);
    RecModel a(tinyConfig(), rng_a), b(tinyConfig(), rng_b);
    ModelInput input = a.randomInput(4, rng_in);
    EXPECT_FALSE(a.forward(input).allClose(b.forward(input)));
}

TEST(RecModel, BatchConsistency)
{
    // Scoring a batch equals scoring each sample alone (no cross-batch
    // leakage).
    Rng rng(11);
    RecModel model(tinyConfig(), rng);
    Rng in_rng(5);
    ModelInput batch = model.randomInput(3, in_rng);
    Tensor full = model.forward(batch);

    for (int64_t s = 0; s < 3; ++s) {
        ModelInput single;
        single.dense = Tensor({1, batch.dense.dim(1)});
        for (int64_t c = 0; c < batch.dense.dim(1); ++c)
            single.dense.at(0, c) = batch.dense.at(s, c);
        for (const SparseInput &sp : batch.sparse) {
            SparseInput one;
            size_t start = 0;
            for (int64_t prev = 0; prev < s; ++prev)
                start += static_cast<size_t>(sp.lengths[prev]);
            one.lengths = {sp.lengths[s]};
            for (int64_t j = 0; j < sp.lengths[s]; ++j)
                one.ids.push_back(sp.ids[start + j]);
            single.sparse.push_back(std::move(one));
        }
        Tensor ctr = model.forward(single);
        EXPECT_NEAR(ctr.at(static_cast<int64_t>(0)), full.at(s, 0), 1e-5f);
    }
}

TEST(RecModel, ManualForwardMatchesComposition)
{
    // Cross-check the full pipeline against a by-hand composition of
    // the reference operators.
    ModelConfig cfg = tinyConfig();
    Rng rng(13);
    RecModel model(cfg, rng);
    Rng in_rng(17);
    ModelInput input = model.randomInput(2, in_rng);

    Tensor z = input.dense.reshaped(input.dense.shape());
    for (const FullyConnected &fc : model.bottomLayers())
        z = relu(reference::fullyConnected(z, fc.weight(), fc.bias()));

    std::vector<Tensor> pooled;
    for (size_t t = 0; t < model.tables().size(); ++t) {
        pooled.push_back(reference::sparseLengthsSum(
            model.tables()[t].table(), input.sparse[t].ids,
            input.sparse[t].lengths));
    }
    std::vector<const Tensor *> feats = {&z};
    for (const Tensor &p : pooled)
        feats.push_back(&p);
    Tensor joined = concatCols(feats);
    const auto &top = model.topLayers();
    for (size_t i = 0; i < top.size(); ++i) {
        joined = reference::fullyConnected(joined, top[i].weight(),
                                           top[i].bias());
        if (i + 1 < top.size())
            reluInplace(joined);
    }
    Tensor want = sigmoid(joined);

    EXPECT_TRUE(model.forward(input).allClose(want, 1e-4f));
}

TEST(RecModel, RejectsWrongDenseWidth)
{
    Rng rng(1);
    RecModel model(tinyConfig(), rng);
    ModelInput input = model.randomInput(2, rng);
    input.dense = Tensor({2, 5});
    EXPECT_THROW(model.forward(input), PanicError);
}

TEST(RecModel, RejectsWrongTableCount)
{
    Rng rng(1);
    RecModel model(tinyConfig(), rng);
    ModelInput input = model.randomInput(2, rng);
    input.sparse.pop_back();
    EXPECT_THROW(model.forward(input), PanicError);
}

TEST(RecModel, RejectsBatchMismatchAcrossTables)
{
    Rng rng(1);
    RecModel model(tinyConfig(), rng);
    ModelInput input = model.randomInput(2, rng);
    input.sparse[1].lengths.push_back(0);
    EXPECT_THROW(model.forward(input), PanicError);
}

TEST(RecModel, ParamCountMatchesConfig)
{
    Rng rng(1);
    ModelConfig cfg = tinyConfig();
    RecModel model(cfg, rng);
    EXPECT_EQ(model.paramCount(),
              cfg.fcParamCount() + cfg.embParamCount());
}

TEST(RecModel, FunctionalScaleZooRuns)
{
    // Every zoo model executes functionally at reduced embedding scale.
    Rng rng(23);
    for (const ModelConfig &cfg : representativeModels()) {
        ModelConfig scaled = cfg.functionalScale(512);
        RecModel model(scaled, rng);
        ModelInput input = model.randomInput(2, rng);
        Tensor ctr = model.forward(input);
        EXPECT_EQ(ctr.shape(), (Shape{2, 1})) << cfg.name;
    }
}

TEST(RecModel, RandomInputWellFormed)
{
    Rng rng(29);
    ModelConfig cfg = tinyConfig();
    RecModel model(cfg, rng);
    ModelInput input = model.randomInput(5, rng);
    EXPECT_EQ(input.dense.dim(0), 5);
    EXPECT_EQ(static_cast<int64_t>(input.sparse.size()), cfg.emb.numTables);
    for (const SparseInput &sp : input.sparse) {
        EXPECT_EQ(sp.lengths.size(), 5u);
        EXPECT_EQ(sp.ids.size(),
                  static_cast<size_t>(5 * cfg.emb.lookupsPerTable));
        for (int64_t id : sp.ids) {
            EXPECT_GE(id, 0);
            EXPECT_LT(id, cfg.emb.rowsPerTable);
        }
    }
}

} // namespace
} // namespace recperf
