/**
 * @file
 * Unit and property tests for the multi-level cache hierarchy,
 * covering inclusive vs. exclusive L2/L3 policies.
 */

#include <gtest/gtest.h>

#include "core/logging.hh"
#include "core/rng.hh"
#include "simcache/hierarchy.hh"

namespace recperf {
namespace {

LevelConfig
l1cfg()
{
    return {4 * 1024, 4, 4};
}

LevelConfig
l2cfg()
{
    return {16 * 1024, 8, 12};
}

LevelConfig
l3cfg()
{
    return {64 * 1024, 16, 38};
}

CacheHierarchy
makeHier(InclusionPolicy policy, uint32_t cores = 1)
{
    return CacheHierarchy(cores, l1cfg(), l2cfg(), l3cfg(), policy, 200);
}

TEST(Hierarchy, ColdMissGoesToMemory)
{
    auto h = makeHier(InclusionPolicy::Inclusive);
    EXPECT_EQ(h.access(0, 0), HitLevel::Memory);
}

TEST(Hierarchy, SecondAccessHitsL1)
{
    auto h = makeHier(InclusionPolicy::Inclusive);
    h.access(0, 0);
    EXPECT_EQ(h.access(0, 0), HitLevel::L1);
}

TEST(Hierarchy, InclusiveFillsAllLevels)
{
    auto h = makeHier(InclusionPolicy::Inclusive);
    h.access(0, 4096);
    EXPECT_TRUE(h.l1(0).contains(4096));
    EXPECT_TRUE(h.l2(0).contains(4096));
    EXPECT_TRUE(h.l3().contains(4096));
}

TEST(Hierarchy, ExclusiveDramFillBypassesL3)
{
    auto h = makeHier(InclusionPolicy::Exclusive);
    h.access(0, 4096);
    EXPECT_TRUE(h.l1(0).contains(4096));
    EXPECT_TRUE(h.l2(0).contains(4096));
    EXPECT_FALSE(h.l3().contains(4096));
}

TEST(Hierarchy, ExclusiveL3HitPromotesAndRemoves)
{
    auto h = makeHier(InclusionPolicy::Exclusive);
    // Fill L2 well past capacity so victims spill into L3.
    const uint64_t lines = 2 * 16 * 1024 / 64;
    for (uint64_t i = 0; i < lines; ++i)
        h.access(0, i * 64);
    // Find a line that is in L3 but not in L2.
    uint64_t victim_addr = UINT64_MAX;
    for (uint64_t addr : h.l3().residentLines()) {
        if (!h.l2(0).contains(addr)) {
            victim_addr = addr;
            break;
        }
    }
    ASSERT_NE(victim_addr, UINT64_MAX) << "no spilled victim found";
    EXPECT_EQ(h.access(0, victim_addr), HitLevel::L3);
    EXPECT_FALSE(h.l3().contains(victim_addr)); // moved up and out
    EXPECT_TRUE(h.l2(0).contains(victim_addr));
}

TEST(Hierarchy, L2HitRefillsL1)
{
    auto h = makeHier(InclusionPolicy::Inclusive);
    h.access(0, 0);
    // Simulate an L1-only eviction; the L2 copy remains.
    h.l1(0).extract(0);
    ASSERT_TRUE(h.l2(0).contains(0));
    EXPECT_EQ(h.access(0, 0), HitLevel::L2);
    EXPECT_TRUE(h.l1(0).contains(0));
}

TEST(Hierarchy, PrivateCachesAreIsolated)
{
    auto h = makeHier(InclusionPolicy::Inclusive, 2);
    h.access(0, 0);
    EXPECT_FALSE(h.l1(1).contains(0));
    EXPECT_FALSE(h.l2(1).contains(0));
    // But the shared L3 serves the other core.
    EXPECT_EQ(h.access(1, 0), HitLevel::L3);
}

TEST(Hierarchy, InclusiveBackInvalidationReachesPrivates)
{
    auto h = makeHier(InclusionPolicy::Inclusive, 2);
    h.access(0, 0); // core 0 caches line 0 in L1/L2/L3
    // Core 1 streams enough lines to wash line 0 out of the L3.
    const uint64_t lines = 4 * 64 * 1024 / 64;
    for (uint64_t i = 1; i <= lines; ++i)
        h.access(1, i * 64);
    EXPECT_FALSE(h.l3().contains(0));
    // Inclusion: the private copies must have been back-invalidated.
    EXPECT_FALSE(h.l2(0).contains(0));
    EXPECT_FALSE(h.l1(0).contains(0));
    EXPECT_GT(h.l2(0).stats().backInvalidations, 0u);
}

TEST(Hierarchy, ExclusiveVictimSurvivesOtherCoreStream)
{
    // The same scenario under an exclusive LLC: core 0's L2 copy is
    // NOT invalidated by core 1's stream (the Skylake advantage of
    // Takeaway 7).
    auto h = makeHier(InclusionPolicy::Exclusive, 2);
    h.access(0, 0);
    const uint64_t lines = 4 * 64 * 1024 / 64;
    for (uint64_t i = 1; i <= lines; ++i)
        h.access(1, i * 64);
    EXPECT_TRUE(h.l2(0).contains(0));
    EXPECT_EQ(h.access(0, 0), HitLevel::L1);
}

TEST(Hierarchy, LatencyMapping)
{
    auto h = makeHier(InclusionPolicy::Inclusive);
    EXPECT_EQ(h.latencyCycles(HitLevel::L1), 4u);
    EXPECT_EQ(h.latencyCycles(HitLevel::L2), 12u);
    EXPECT_EQ(h.latencyCycles(HitLevel::L3), 38u);
    EXPECT_EQ(h.latencyCycles(HitLevel::Memory), 200u);
}

TEST(Hierarchy, HitLevelNames)
{
    EXPECT_STREQ(hitLevelName(HitLevel::L1), "L1");
    EXPECT_STREQ(hitLevelName(HitLevel::Memory), "DRAM");
}

TEST(Hierarchy, FlushAllEmptiesEverything)
{
    auto h = makeHier(InclusionPolicy::Inclusive, 2);
    h.access(0, 0);
    h.access(1, 128);
    h.flushAll();
    EXPECT_EQ(h.l1(0).occupancy(), 0u);
    EXPECT_EQ(h.l2(1).occupancy(), 0u);
    EXPECT_EQ(h.l3().occupancy(), 0u);
}

TEST(Hierarchy, ResetStatsKeepsContents)
{
    auto h = makeHier(InclusionPolicy::Inclusive);
    h.access(0, 0);
    h.resetStats();
    EXPECT_EQ(h.l3().stats().accesses, 0u);
    EXPECT_EQ(h.access(0, 0), HitLevel::L1);
}

TEST(Hierarchy, InvalidCoreAccessPanics)
{
    auto h = makeHier(InclusionPolicy::Inclusive, 2);
    EXPECT_THROW(h.access(2, 0), PanicError);
}

/** Property: the inclusion invariant holds under random traffic. */
class InclusionProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(InclusionProperty, HoldsUnderRandomTraffic)
{
    auto h = makeHier(InclusionPolicy::Inclusive, 3);
    Rng rng(GetParam());
    for (int i = 0; i < 20'000; ++i) {
        uint32_t core = static_cast<uint32_t>(rng.nextBelow(3));
        uint64_t addr = rng.nextBelow(1 << 20) * 64;
        h.access(core, addr);
        if (i % 4096 == 0)
            h.checkInclusionInvariant();
    }
    h.checkInclusionInvariant();
}

INSTANTIATE_TEST_SUITE_P(Seeds, InclusionProperty,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

/** Property: exclusive L2/L3 hold (almost) disjoint line sets. */
class ExclusionProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ExclusionProperty, L3DisjointFromL2)
{
    auto h = makeHier(InclusionPolicy::Exclusive, 2);
    Rng rng(GetParam());
    for (int i = 0; i < 20'000; ++i) {
        uint32_t core = static_cast<uint32_t>(rng.nextBelow(2));
        uint64_t addr = rng.nextBelow(1 << 18) * 64;
        h.access(core, addr);
    }
    // Exclusive LLC holds victims only: a line present in some L2
    // should not simultaneously be in L3 (it was extracted on hit and
    // only inserted on L2 eviction).
    uint64_t overlap = 0, total = 0;
    for (uint32_t core = 0; core < 2; ++core) {
        for (uint64_t addr : h.l2(core).residentLines()) {
            ++total;
            overlap += h.l3().contains(addr) ? 1 : 0;
        }
    }
    ASSERT_GT(total, 0u);
    // A small overlap is possible (a line resident in the *other*
    // core's L2 may be duplicated into L3 as this core's victim).
    EXPECT_LT(static_cast<double>(overlap) / static_cast<double>(total),
              0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExclusionProperty,
                         ::testing::Values(5u, 6u, 7u));

/** Property: hit rate rises monotonically with LLC capacity. */
TEST(Hierarchy, HitRateMonotoneInLlcSize)
{
    double prev_misses = 1e18;
    for (uint64_t llc_kb : {32, 64, 128, 256}) {
        LevelConfig l3{llc_kb * 1024, 16, 38};
        CacheHierarchy h(1, l1cfg(), l2cfg(), l3,
                         InclusionPolicy::Inclusive, 200);
        Rng rng(11);
        // Zipf-ish working set larger than the smallest LLC.
        for (int i = 0; i < 50'000; ++i) {
            uint64_t addr = (rng.nextBelow(4096) * rng.nextBelow(2) +
                             rng.nextBelow(512)) * 64;
            h.access(0, addr);
        }
        double misses = static_cast<double>(h.l3().stats().misses);
        EXPECT_LE(misses, prev_misses) << "LLC " << llc_kb << " KB";
        prev_misses = misses;
    }
}

} // namespace
} // namespace recperf
