/**
 * @file
 * Kernel cache / microkernel engine tests: memoization (tune once,
 * hit forever), concurrent first-touch, the pinned-ISA bitwise
 * determinism contract across thread counts and cold/warm runs,
 * vectorized-vs-reference tolerance on Table I and ragged shapes,
 * and warm-cache speedup at the model level.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <vector>

#include "core/rng.hh"
#include "core/thread_pool.hh"
#include "machine/simd.hh"
#include "model/rec_model.hh"
#include "model/zoo.hh"
#include "obs/metrics.hh"
#include "ops/batch_matmul.hh"
#include "ops/fully_connected.hh"
#include "ops/kernel_cache.hh"
#include "ops/microkernels.hh"
#include "ops/quantized_embedding.hh"
#include "ops/reference.hh"
#include "ops/sparse_lengths_sum.hh"

using namespace recperf;

namespace {

/** ISA tiers usable on this host *and* compiled into this binary. */
std::vector<KernelIsa>
usableIsas()
{
    std::vector<KernelIsa> isas;
    for (int t = 0; t <= static_cast<int>(detectIsa()); ++t) {
        KernelIsa isa = static_cast<KernelIsa>(t);
        if (microkernels::kernelsFor(isa).available)
            isas.push_back(isa);
    }
    return isas;
}

class KernelCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        threads_before_ = globalThreadCount();
        KernelCache::global().setPolicy(IsaPolicy{});
        KernelCache::global().setTuningEnabled(true);
    }

    void
    TearDown() override
    {
        setGlobalThreadCount(threads_before_);
        KernelCache::global().setPolicy(IsaPolicy{});
        KernelCache::global().setTuningEnabled(true);
    }

    int threads_before_ = 1;
};

Tensor
randomTensor(Shape shape, Rng &rng)
{
    Tensor t(shape);
    t.fillUniform(rng, -1.0f, 1.0f);
    return t;
}

/** gemmBt against the naive triple loop, relative 1e-4. */
void
expectGemmMatchesReference(int64_t m, int64_t n, int64_t k)
{
    Rng rng(7 + static_cast<uint64_t>(m * 131 + n * 17 + k));
    Tensor a = randomTensor({m, k}, rng);
    Tensor b = randomTensor({n, k}, rng);
    Tensor c({m, n});
    gemmBt(a.data(), b.data(), c.data(), m, n, k, /*accumulate=*/false);
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            float want = 0.0f;
            for (int64_t p = 0; p < k; ++p)
                want += a.at(i, p) * b.at(j, p);
            float got = c.at(i, j);
            float tol = 1e-4f * std::max(1.0f, std::fabs(want));
            ASSERT_NEAR(want, got, tol)
                << "m" << m << " n" << n << " k" << k << " at (" << i
                << ", " << j << ")";
        }
    }
}

} // namespace

TEST_F(KernelCacheTest, DetectIsaIsStableAndNamed)
{
    KernelIsa first = detectIsa();
    EXPECT_EQ(first, detectIsa());
    EXPECT_STRNE("unknown", kernelIsaName(first));
    // The scalar tier is always usable.
    EXPECT_TRUE(microkernels::kernelsFor(KernelIsa::Scalar).available);
    EXPECT_FALSE(usableIsas().empty());
}

TEST_F(KernelCacheTest, IsaPolicyParsing)
{
    IsaPolicy p;
    EXPECT_EQ("", isaPolicyFromName("auto", &p));
    EXPECT_TRUE(p.autoSelect);
    EXPECT_EQ("", isaPolicyFromName("scalar", &p));
    EXPECT_FALSE(p.autoSelect);
    EXPECT_EQ(KernelIsa::Scalar, p.pinned);
    EXPECT_TRUE(p.allows(KernelIsa::Scalar));
    EXPECT_FALSE(p.allows(KernelIsa::Avx2));

    std::string err = isaPolicyFromName("bogus", &p);
    EXPECT_NE(std::string::npos, err.find("unknown ISA"));
    if (detectIsa() < KernelIsa::Avx512) {
        err = isaPolicyFromName("avx512", &p);
        EXPECT_NE(std::string::npos, err.find("does not support"));
    }
}

TEST_F(KernelCacheTest, PoolingBucketRoundsToNearestPowerOfTwo)
{
    EXPECT_EQ(0, poolingBucket(0));
    EXPECT_EQ(1, poolingBucket(1));
    EXPECT_EQ(4, poolingBucket(5));
    EXPECT_EQ(64, poolingBucket(80));
    EXPECT_EQ(128, poolingBucket(96)); // tie goes up
    EXPECT_EQ(128, poolingBucket(100));
}

TEST_F(KernelCacheTest, ColdMissTunesOnceThenHits)
{
    KernelCache &cache = KernelCache::global();
    Rng rng(11);
    Tensor a = randomTensor({8, 48}, rng);
    Tensor b = randomTensor({24, 48}, rng);
    Tensor c({8, 24});
    for (int round = 0; round < 3; ++round)
        gemmBt(a.data(), b.data(), c.data(), 8, 24, 48, false);
    EXPECT_EQ(1u, cache.tuneCount());
    EXPECT_GE(cache.hitCount(), 2u);
    EXPECT_EQ(1u, cache.size());
}

TEST_F(KernelCacheTest, SlsTunesOncePerShape)
{
    KernelCache &cache = KernelCache::global();
    Rng rng(13);
    EmbeddingTable table(100, 32, rng);
    std::vector<int64_t> ids = {1, 2, 3, 4, 5, 6};
    std::vector<int64_t> lengths = {3, 3};
    (void)table.forward(ids, lengths, SlsReduction::Sum);
    (void)table.forward(ids, lengths, SlsReduction::Sum);
    EXPECT_EQ(1u, cache.tuneCount());

    EmbeddingTable other(100, 64, rng); // different dim -> new entry
    std::vector<int64_t> ids2 = {7, 8, 9, 10, 11, 12};
    (void)other.forward(ids2, lengths, SlsReduction::Sum);
    EXPECT_EQ(2u, cache.tuneCount());
}

TEST_F(KernelCacheTest, ConcurrentFirstTouchTunesExactlyOnce)
{
    // batchMatMulBt with batch >= pool size fans the per-item gemmBt
    // calls across the pool, so every worker first-touches the same
    // (m, n, k) shape at once; the cache must tune it exactly once.
    // The TSan CI leg runs this with RECPERF_THREADS=4.
    setGlobalThreadCount(4);
    KernelCache &cache = KernelCache::global();
    Rng rng(17);
    Tensor a = randomTensor({8, 6, 20}, rng);
    Tensor b = randomTensor({8, 10, 20}, rng);
    Tensor c = batchMatMulBt(a, b);
    EXPECT_EQ(1u, cache.tuneCount());
    Tensor want = reference::batchMatMulBt(a, b);
    EXPECT_TRUE(c.allClose(want, 1e-4f));
}

TEST_F(KernelCacheTest, PinnedIsaBitwiseAcrossThreadCountsAndColdWarm)
{
    // The determinism contract: with a pinned tier, results are
    // bit-identical across thread counts (warm cache) and across
    // cold/warm runs (a cold re-tune may pick different blocking —
    // blocking is bit-neutral by construction).
    const int64_t m = 33, n = 65, k = 129; // ragged on purpose
    Rng rng(19);
    Tensor a = randomTensor({m, k}, rng);
    Tensor b = randomTensor({n, k}, rng);
    const size_t bytes = static_cast<size_t>(m * n) * sizeof(float);

    for (KernelIsa isa : usableIsas()) {
        KernelCache::global().setPolicy(IsaPolicy{false, isa});

        setGlobalThreadCount(1);
        Tensor c1({m, n});
        gemmBt(a.data(), b.data(), c1.data(), m, n, k, false);

        setGlobalThreadCount(4); // warm cache, different thread count
        Tensor c4({m, n});
        gemmBt(a.data(), b.data(), c4.data(), m, n, k, false);
        EXPECT_EQ(0, std::memcmp(c1.data(), c4.data(), bytes))
            << "thread-count drift on " << kernelIsaName(isa);

        KernelCache::global().setPolicy(IsaPolicy{false, isa}); // cold
        Tensor cc({m, n});
        gemmBt(a.data(), b.data(), cc.data(), m, n, k, false);
        EXPECT_EQ(0, std::memcmp(c1.data(), cc.data(), bytes))
            << "cold/warm drift on " << kernelIsaName(isa);
    }
}

TEST_F(KernelCacheTest, VectorizedMatchesReferenceOnTableIShapes)
{
    // Table I GEMM shapes (batch-256 RMC1, batch-64 RMC3) plus ragged
    // edge cases; every usable tier must sit within 1e-4 relative of
    // the naive reference.
    struct Shape
    {
        int64_t m, n, k;
    };
    const Shape shapes[] = {
        {256, 128, 128}, {256, 128, 160}, {64, 256, 512}, {64, 512, 256},
        {3, 7, 129},     {1, 5, 1},       {16, 31, 65},   {33, 257, 300},
    };
    for (KernelIsa isa : usableIsas()) {
        KernelCache::global().setPolicy(IsaPolicy{false, isa});
        for (const Shape &s : shapes)
            expectGemmMatchesReference(s.m, s.n, s.k);
    }
}

TEST_F(KernelCacheTest, SlsVectorTiersBitwiseMatchScalar)
{
    // Float SLS is element-wise vertical adds: vector tiers must be
    // *bitwise* identical to scalar, not merely close.
    Rng rng(23);
    EmbeddingTable table(500, 48, rng); // 48 exercises the lane tail
    std::vector<int64_t> ids, lengths;
    Rng idrng(29);
    for (int slot = 0; slot < 40; ++slot) {
        int64_t len = static_cast<int64_t>(idrng.nextBelow(20));
        lengths.push_back(len);
        for (int64_t j = 0; j < len; ++j)
            ids.push_back(static_cast<int64_t>(idrng.nextBelow(500)));
    }

    KernelCache::global().setPolicy(IsaPolicy{false, KernelIsa::Scalar});
    Tensor want = table.forward(ids, lengths, SlsReduction::Mean);
    for (KernelIsa isa : usableIsas()) {
        if (isa == KernelIsa::Scalar)
            continue;
        KernelCache::global().setPolicy(IsaPolicy{false, isa});
        Tensor got = table.forward(ids, lengths, SlsReduction::Mean);
        EXPECT_EQ(0,
                  std::memcmp(want.data(), got.data(),
                              static_cast<size_t>(want.size()) *
                                  sizeof(float)))
            << "SLS bits drifted on " << kernelIsaName(isa);
    }
}

TEST_F(KernelCacheTest, QuantizedSlsWithinToleranceOfScalar)
{
    // Vector tiers fuse dequantize into one FMA (one rounding instead
    // of two), so quantized SLS carries a tolerance contract.
    Rng rng(31);
    EmbeddingTable source(300, 40, rng);
    QuantizedEmbeddingTable qtable(source);
    std::vector<int64_t> ids, lengths;
    Rng idrng(37);
    for (int slot = 0; slot < 24; ++slot) {
        int64_t len = static_cast<int64_t>(idrng.nextBelow(16));
        lengths.push_back(len);
        for (int64_t j = 0; j < len; ++j)
            ids.push_back(static_cast<int64_t>(idrng.nextBelow(300)));
    }

    KernelCache::global().setPolicy(IsaPolicy{false, KernelIsa::Scalar});
    Tensor want = qtable.forward(ids, lengths, SlsReduction::Sum);
    for (KernelIsa isa : usableIsas()) {
        if (isa == KernelIsa::Scalar)
            continue;
        KernelCache::global().setPolicy(IsaPolicy{false, isa});
        Tensor got = qtable.forward(ids, lengths, SlsReduction::Sum);
        EXPECT_TRUE(got.allClose(want, 1e-4f))
            << "quantized SLS drifted past tolerance on "
            << kernelIsaName(isa);
    }
}

TEST_F(KernelCacheTest, AccumulateFlagAndDegenerateShapes)
{
    Rng rng(41);
    Tensor a = randomTensor({4, 12}, rng);
    Tensor b = randomTensor({6, 12}, rng);
    Tensor base({4, 6});
    gemmBt(a.data(), b.data(), base.data(), 4, 6, 12, false);

    Tensor twice({4, 6});
    gemmBt(a.data(), b.data(), twice.data(), 4, 6, 12, false);
    gemmBt(a.data(), b.data(), twice.data(), 4, 6, 12, true);
    for (int64_t i = 0; i < twice.size(); ++i)
        EXPECT_FLOAT_EQ(2.0f * base.at(i), twice.at(i));

    // k == 0 zero-fills (no kernel dispatch), m == 0 is a no-op.
    Tensor zk({4, 6}, 7.0f);
    gemmBt(a.data(), b.data(), zk.data(), 4, 6, 0, false);
    for (int64_t i = 0; i < zk.size(); ++i)
        EXPECT_EQ(0.0f, zk.at(i));
    gemmBt(a.data(), b.data(), zk.data(), 0, 6, 12, false);
}

TEST_F(KernelCacheTest, GenericModeInstallsDefaultPlanWithoutTuning)
{
    KernelCache &cache = KernelCache::global();
    cache.setTuningEnabled(false);
    Rng rng(43);
    Tensor a = randomTensor({8, 32}, rng);
    Tensor b = randomTensor({16, 32}, rng);
    Tensor c({8, 16});
    gemmBt(a.data(), b.data(), c.data(), 8, 16, 32, false);
    EXPECT_EQ(0u, cache.tuneCount());
    EXPECT_EQ(1u, cache.size());
    EXPECT_NE(std::string::npos, cache.dumpTable().find("tuning off"));

    // Generic still computes the right answer.
    Tensor bias({16}, 0.0f);
    Tensor want = reference::fullyConnected(a, b, bias);
    EXPECT_TRUE(c.allClose(want, 1e-4f));
}

TEST_F(KernelCacheTest, DumpTableAndMetricsExport)
{
    KernelCache &cache = KernelCache::global();
    Rng rng(47);
    Tensor a = randomTensor({8, 24}, rng);
    Tensor b = randomTensor({12, 24}, rng);
    Tensor c({8, 12});
    gemmBt(a.data(), b.data(), c.data(), 8, 12, 24, false);
    gemmBt(a.data(), b.data(), c.data(), 8, 12, 24, false);

    std::string table = cache.dumpTable();
    EXPECT_NE(std::string::npos, table.find("gemm m8"));
    EXPECT_NE(std::string::npos, table.find("calls"));

    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    reg.reset();
    cache.exportMetrics(reg);
    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(2u, snap.counter("kernel.gemm.m8n12k24.calls"));
    EXPECT_EQ(cache.tuneCount(), snap.counter("kernel.cache.tunes"));
    EXPECT_EQ(static_cast<double>(static_cast<int>(detectIsa())),
              snap.gauge("hw.isa.detected"));
    EXPECT_GE(snap.gauge("kernel.gemm.m8n12k24.tuning_us"), 0.0);
    reg.reset();
}

TEST_F(KernelCacheTest, WarmCacheForwardNotSlowerThanColdRun)
{
    // Model-level "eval second run >= first run throughput": the cold
    // forward pays every tuning sweep; warm forwards just dispatch.
    ModelConfig cfg = rmc1Small().functionalScale(256);
    Rng rng(53);
    RecModel model(cfg, rng);
    ModelInput input = model.randomInput(4, rng);

    using Clock = std::chrono::steady_clock;
    auto c0 = Clock::now();
    (void)model.forward(input);
    double cold = std::chrono::duration<double>(Clock::now() - c0).count();

    double warm = cold;
    for (int i = 0; i < 3; ++i) {
        auto w0 = Clock::now();
        (void)model.forward(input);
        warm = std::min(
            warm,
            std::chrono::duration<double>(Clock::now() - w0).count());
    }
    EXPECT_GT(KernelCache::global().tuneCount(), 0u);
    EXPECT_LE(warm, cold);
}
