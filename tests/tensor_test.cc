/**
 * @file
 * Unit tests for the Tensor class.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "core/logging.hh"
#include "core/rng.hh"
#include "tensor/tensor.hh"

namespace recperf {
namespace {

TEST(Shape, NumElements)
{
    EXPECT_EQ(numElements({}), 1);
    EXPECT_EQ(numElements({5}), 5);
    EXPECT_EQ(numElements({2, 3, 4}), 24);
    EXPECT_EQ(numElements({0, 7}), 0);
}

TEST(Shape, NegativeDimPanics)
{
    EXPECT_THROW(numElements({2, -1}), PanicError);
}

TEST(Shape, ToString)
{
    EXPECT_EQ(shapeToString({2, 3}), "[2, 3]");
    EXPECT_EQ(shapeToString({}), "[]");
}

TEST(Tensor, DefaultIsEmpty)
{
    Tensor t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.size(), 0);
}

TEST(Tensor, ZeroInitialized)
{
    Tensor t({3, 4});
    EXPECT_EQ(t.size(), 12);
    for (int64_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t.at(i), 0.0f);
}

TEST(Tensor, FillConstructor)
{
    Tensor t({2, 2}, 7.5f);
    for (int64_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t.at(i), 7.5f);
}

TEST(Tensor, RankLimit)
{
    EXPECT_NO_THROW(Tensor({1, 2, 3, 4}));
    EXPECT_THROW(Tensor({1, 2, 3, 4, 5}), PanicError);
}

TEST(Tensor, TwoDimAccess)
{
    Tensor t({2, 3});
    t.at(1, 2) = 9.0f;
    EXPECT_EQ(t.at(1, 2), 9.0f);
    EXPECT_EQ(t.at(1 * 3 + 2), 9.0f); // row-major layout
}

TEST(Tensor, OutOfBoundsPanics)
{
    Tensor t({2, 3});
    EXPECT_THROW(t.at(6), PanicError);
    EXPECT_THROW(t.at(-1), PanicError);
    EXPECT_THROW(t.at(2, 0), PanicError);
    EXPECT_THROW(t.at(0, 3), PanicError);
}

TEST(Tensor, TwoDimAccessOnWrongRankPanics)
{
    Tensor t({6});
    EXPECT_THROW(t.at(0, 0), PanicError);
}

TEST(Tensor, DimAccessor)
{
    Tensor t({4, 5});
    EXPECT_EQ(t.dim(0), 4);
    EXPECT_EQ(t.dim(1), 5);
    EXPECT_THROW(t.dim(2), PanicError);
}

TEST(Tensor, FillUniformRange)
{
    Rng rng(1);
    Tensor t({100});
    t.fillUniform(rng, -2.0f, 3.0f);
    for (int64_t i = 0; i < t.size(); ++i) {
        EXPECT_GE(t.at(i), -2.0f);
        EXPECT_LT(t.at(i), 3.0f);
    }
}

TEST(Tensor, FillGaussianStats)
{
    Rng rng(2);
    Tensor t({20'000});
    t.fillGaussian(rng, 2.0f);
    double sum = 0.0, sq = 0.0;
    for (int64_t i = 0; i < t.size(); ++i) {
        sum += t.at(i);
        sq += static_cast<double>(t.at(i)) * t.at(i);
    }
    double n = static_cast<double>(t.size());
    EXPECT_NEAR(sum / n, 0.0, 0.1);
    EXPECT_NEAR(sq / n, 4.0, 0.2);
}

TEST(Tensor, AllCloseExact)
{
    Tensor a({2, 2}, 1.0f), b({2, 2}, 1.0f);
    EXPECT_TRUE(a.allClose(b));
}

TEST(Tensor, AllCloseTolerance)
{
    Tensor a({2}, 1.0f), b({2}, 1.0f + 1e-6f);
    EXPECT_TRUE(a.allClose(b, 1e-5f));
    EXPECT_FALSE(a.allClose(b, 1e-8f));
}

TEST(Tensor, AllCloseShapeMismatch)
{
    Tensor a({2, 3}), b({3, 2});
    EXPECT_FALSE(a.allClose(b));
}

TEST(Tensor, AllCloseRelativeScaling)
{
    // Large magnitudes get proportionally larger slack.
    Tensor a({1}), b({1});
    a.at(static_cast<int64_t>(0)) = 1e6f;
    b.at(static_cast<int64_t>(0)) = 1e6f + 5.0f;
    EXPECT_TRUE(a.allClose(b, 1e-4f));
    EXPECT_FALSE(a.allClose(b, 1e-7f));
}

TEST(Tensor, Reshape)
{
    Tensor t({2, 6});
    for (int64_t i = 0; i < 12; ++i)
        t.at(i) = static_cast<float>(i);
    Tensor r = t.reshaped({3, 4});
    EXPECT_EQ(r.dim(0), 3);
    EXPECT_EQ(r.dim(1), 4);
    for (int64_t i = 0; i < 12; ++i)
        EXPECT_EQ(r.at(i), static_cast<float>(i));
}

TEST(Tensor, ReshapeBadCountPanics)
{
    Tensor t({2, 6});
    EXPECT_THROW(t.reshaped({5, 2}), PanicError);
}

TEST(Tensor, DataIsCacheLineAligned)
{
    Tensor t({37});
    auto addr = reinterpret_cast<uintptr_t>(t.data());
    EXPECT_EQ(addr % 64, 0u);
}

TEST(Tensor, FillOverwrites)
{
    Tensor t({4}, 1.0f);
    t.fill(-2.0f);
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_EQ(t.at(i), -2.0f);
}

} // namespace
} // namespace recperf
