#!/usr/bin/env python3
"""Validate a recperf Chrome trace (and optional metrics JSON).

Checks, in order:
  1. Schema: top-level traceEvents list; every event carries name /
     ph / ts / pid / tid, complete ('X') events carry dur, and
     timestamps are finite and non-negative.
  2. Nesting: on every virtual lane (tid < 1000) the 'X' spans obey
     stack discipline -- a span that starts inside another must end
     inside it (small slack for microsecond rounding).
  3. Reconciliation: per-op spans (cat "op") tile their enclosing
     worker "batch" spans; the summed op time must match the summed
     batch time within --tolerance (default 1%, the PR's acceptance
     bound).
  4. Overload events: brownout ladder transitions (instant events of
     cat "brownout") must step one level at a time within [0, 3], and
     deadline instants (cat "deadline") must use the known event
     names; with a metrics JSON their counts must agree with the
     exported serving.* deadline/brownout counters.
  5. Counters: per (tid, name) counter track ('C' events) timestamps
     are monotone non-decreasing and every value is finite and
     non-negative; with a metrics JSON, the final value of each track
     must agree with the exported counter/gauge of the same name
     (small absolute slack for float formatting). Traces without
     counter events still pass -- emission is opt-in.
  6. Metrics (when a metrics JSON is given): schema_version 1, the
     counters/gauges/histograms sections exist, histogram percentiles
     are ordered, and serving.batches.total agrees with the number of
     batch spans in the trace.

With --ops-only, checks 2 and 3 are skipped: op-level traces (e.g.
`recperf eval --trace`) run everything on wall-clock lanes and have no
serve/batch spans to reconcile against. Every other check still runs.

With --require-track PREFIX (repeatable), at least one counter track
whose name starts with PREFIX must exist — turns check 5's "counters
are opt-in" default into a hard presence gate for runs that are
expected to emit them (e.g. the kernel.* cache counters).

With --fault-log FILE (the JSONL written by `recperf shard
--fault-log-out`), the injected-vs-detected accounting is
cross-checked end to end: every log line must be valid JSON with a
known kind, the corruption-event count must equal the exported
integrity.injected.* counters, detections can never exceed
injections, and the trace's integrity instants (injected / detected /
escape / rehydrate) must reconcile with both the log and the
integrity.* export.

Usage: check_trace.py TRACE.json [METRICS.json] [--tolerance 0.01]
                      [--ops-only] [--require-track PREFIX]...
                      [--fault-log FILE]
Exits 0 when every check passes, 1 otherwise.
"""

import argparse
import json
import math
import sys

WALL_TID_BASE = 1000  # tids >= this are wall-clock lanes
SLACK_US = 5e-3       # nesting slack: ts values are ns-rounded in JSON


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def check_schema(trace):
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")
    spans = []
    counters = []
    instants = []
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            continue  # metadata (thread_name)
        for key in ("name", "cat", "ph", "ts", "pid", "tid"):
            if key not in ev:
                fail(f"event {i} missing '{key}': {ev}")
        if not math.isfinite(ev["ts"]) or ev["ts"] < 0:
            fail(f"event {i} has bad ts {ev['ts']}")
        if ph == "X":
            dur = ev.get("dur")
            if dur is None or not math.isfinite(dur) or dur < 0:
                fail(f"complete event {i} has bad dur: {ev}")
            spans.append(ev)
        elif ph == "C":
            counters.append(ev)
        elif ph == "i":
            instants.append(ev)
        else:
            fail(f"event {i} has unknown ph '{ph}'")
    if not spans:
        fail("no complete ('X') spans in trace")
    return spans, counters, instants


def check_nesting(spans):
    lanes = {}
    for ev in spans:
        if ev["tid"] < WALL_TID_BASE:
            lanes.setdefault(ev["tid"], []).append(ev)
    checked = 0
    for tid, lane in lanes.items():
        # Events arrive sorted (ts asc, then longer span first); a
        # stack replay verifies each span closes inside its parent.
        stack = []
        for ev in lane:
            t0, t1 = ev["ts"], ev["ts"] + ev["dur"]
            while stack and t0 >= stack[-1] - SLACK_US:
                stack.pop()
            if stack and t1 > stack[-1] + SLACK_US:
                fail(f"lane {tid}: span '{ev['name']}' "
                     f"[{t0:.3f}, {t1:.3f}] escapes its parent "
                     f"(parent ends {stack[-1]:.3f})")
            stack.append(t1)
            checked += 1
    if checked == 0:
        fail("no virtual-lane spans to nesting-check")
    return checked


def check_reconciliation(spans, tolerance):
    batch_us = sum(ev["dur"] for ev in spans
                   if ev["cat"] == "serve" and ev["name"] == "batch")
    op_us = sum(ev["dur"] for ev in spans if ev["cat"] == "op")
    if batch_us == 0 or op_us == 0:
        fail(f"nothing to reconcile (batch {batch_us} us, op {op_us} us)")
    rel = abs(op_us - batch_us) / batch_us
    if rel > tolerance:
        fail(f"op spans ({op_us:.1f} us) vs batch spans "
             f"({batch_us:.1f} us): {rel * 100:.2f}% apart "
             f"(tolerance {tolerance * 100:.2f}%)")
    return rel


DEADLINE_EVENTS = ("expired_queue", "shed_admission", "cancelled",
                   "run_cancelled")

# (instant name, exported serving.* counter) pairs that must agree.
DEADLINE_COUNTERS = (
    ("expired_queue", "serving.deadline.shed"),
    ("shed_admission", "serving.shed.admission_deadline"),
    ("cancelled", "serving.deadline.cancelled"),
)


def check_overload_events(instants, metrics):
    """Validate deadline/brownout instants; returns their count.

    Brownout transitions carry from/to ladder levels that must step by
    exactly one inside [0, 3]. Deadline instants must use the known
    event names. With a metrics JSON from the same (serve) run, the
    instant counts must equal the exported serving.* counters — a shed
    or cancelled item that is counted but not traced (or vice versa)
    is an accounting bug. Comparison is skipped per counter when the
    export omits it (counters are gated on nonzero values, and shard
    traces pair with sharded.* exports instead).
    """
    deadline = {}
    transitions = 0
    for ev in instants:
        if ev["cat"] == "brownout":
            if ev["name"] != "level":
                fail(f"unknown brownout instant '{ev['name']}'")
            args = ev.get("args", {})
            try:
                src, dst = int(args["from"]), int(args["to"])
            except (KeyError, TypeError, ValueError):
                fail(f"brownout transition at ts {ev['ts']} lacks "
                     f"integer from/to args: {args}")
            if not (0 <= src <= 3 and 0 <= dst <= 3):
                fail(f"brownout transition {src} -> {dst} outside the "
                     f"ladder [0, 3]")
            if abs(src - dst) != 1:
                fail(f"brownout ladder skipped a level: {src} -> {dst} "
                     f"at ts {ev['ts']}")
            transitions += 1
        elif ev["cat"] == "deadline":
            if ev["name"] not in DEADLINE_EVENTS:
                fail(f"unknown deadline instant '{ev['name']}'")
            deadline[ev["name"]] = deadline.get(ev["name"], 0) + 1

    if metrics is not None:
        exported = metrics.get("counters", {})
        for name, counter in DEADLINE_COUNTERS:
            want = exported.get(counter)
            if want is not None and deadline.get(name, 0) != want:
                fail(f"{counter} = {want} but trace has "
                     f"{deadline.get(name, 0)} '{name}' instants")
        want = exported.get("serving.brownout.transitions")
        if want is not None and transitions != want:
            fail(f"serving.brownout.transitions = {want} but trace has "
                 f"{transitions} ladder transitions")
    return sum(deadline.values()) + transitions


CORRUPTION_KINDS = ("single_bit_flip", "multi_bit_flip", "stuck_row")
FAULT_LOG_KINDS = CORRUPTION_KINDS + ("node_up", "node_down",
                                      "load_spike")
INTEGRITY_EVENTS = ("injected", "detected", "escape", "rehydrate")


def load_fault_log(path):
    """Parse a --fault-log-out JSONL; returns the corruption count."""
    corruptions = 0
    try:
        with open(path) as f:
            for i, line in enumerate(f):
                line = line.strip()
                if not line:
                    fail(f"{path}:{i + 1}: empty fault-log line")
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as e:
                    fail(f"{path}:{i + 1}: bad JSON: {e}")
                kind = rec.get("kind")
                if kind not in FAULT_LOG_KINDS:
                    fail(f"{path}:{i + 1}: unknown kind {kind!r}")
                t = rec.get("t")
                if not isinstance(t, (int, float)) \
                        or not math.isfinite(t) or t < 0:
                    fail(f"{path}:{i + 1}: bad event time {t!r}")
                if kind in CORRUPTION_KINDS:
                    for key in ("shard", "replica", "table", "row",
                                "bit"):
                        if key not in rec:
                            fail(f"{path}:{i + 1}: corruption event "
                                 f"missing '{key}'")
                    corruptions += 1
    except OSError as e:
        fail(f"{path}: {e}")
    return corruptions


def check_integrity_events(instants, metrics, log_corruptions):
    """Reconcile injected-vs-detected accounting; returns instant count.

    The fault log records every corruption the injector drew, so it is
    the ground truth: the integrity.injected.* export must equal its
    corruption count, and detections can never exceed injections. The
    trace's integrity instants are emitted per event (injected: one
    per event that landed on a live replica; detected: one per row
    detection, so <= the detected counter which also counts FC hits;
    escape / rehydrate: exactly one per counted occurrence).
    Cross-checks are skipped per counter when the export omits it
    (integrity.* only exports when the defense plane ran).
    """
    seen = {}
    for ev in instants:
        if ev["cat"] != "integrity":
            continue
        if ev["name"] not in INTEGRITY_EVENTS:
            fail(f"unknown integrity instant '{ev['name']}'")
        seen[ev["name"]] = seen.get(ev["name"], 0) + 1

    exported = metrics.get("counters", {}) if metrics is not None else {}
    injected = None
    if "integrity.injected.rows" in exported:
        injected = exported["integrity.injected.rows"] + \
            exported.get("integrity.injected.fc", 0)
        if log_corruptions is not None and injected != log_corruptions:
            fail(f"fault log has {log_corruptions} corruption events "
                 f"but integrity.injected.* exports {injected}")
        detected = exported.get("integrity.detected.total", 0)
        if detected > injected:
            fail(f"integrity.detected.total = {detected} exceeds the "
                 f"{injected} injected corruptions")
    elif log_corruptions:
        fail(f"fault log has {log_corruptions} corruption events but "
             f"the metrics export has no integrity.injected.* counters")

    upper = injected if injected is not None else log_corruptions
    if upper is not None and seen.get("injected", 0) > upper:
        fail(f"trace has {seen['injected']} injected instants but only "
             f"{upper} corruptions were drawn")
    if metrics is not None:
        detected = exported.get("integrity.detected.total")
        if detected is not None and seen.get("detected", 0) > detected:
            fail(f"trace has {seen['detected']} detected instants but "
                 f"integrity.detected.total = {detected}")
        for name, counter in (("escape",
                               "integrity.responses.corrupted_served"),
                              ("rehydrate", "integrity.rehydrates")):
            want = exported.get(counter)
            if want is not None and seen.get(name, 0) != want:
                fail(f"{counter} = {want} but trace has "
                     f"{seen.get(name, 0)} '{name}' instants")
    return sum(seen.values())


def check_counters(counters, metrics):
    """Validate counter ('C') tracks; returns the number of tracks.

    A track is one (tid, name) series. Within a track timestamps must
    be monotone non-decreasing (counters ride the virtual clock, which
    only moves forward) and every value finite and non-negative. When
    a metrics JSON is supplied, the last value of a track whose name
    is also an exported counter or gauge must agree with it -- the
    final trace emission and the registry export read the same totals.
    """
    tracks = {}
    for ev in counters:
        value = ev.get("args", {}).get("value")
        if value is None or not isinstance(value, (int, float)) \
                or not math.isfinite(value) or value < 0:
            fail(f"counter '{ev['name']}' has bad value "
                 f"{value!r} at ts {ev['ts']}")
        key = (ev["tid"], ev["name"])
        prev = tracks.get(key)
        if prev is not None and ev["ts"] < prev[0] - SLACK_US:
            fail(f"counter track {key}: ts went backwards "
                 f"({prev[0]:.3f} -> {ev['ts']:.3f})")
        tracks[key] = (ev["ts"], value)

    if metrics is not None:
        exported = {}
        exported.update(metrics.get("counters", {}))
        exported.update(metrics.get("gauges", {}))
        for (tid, name), (_, last) in tracks.items():
            want = exported.get(name)
            if want is None:
                continue  # trace-only track (not every track exports)
            if abs(last - want) > max(1.5, 1e-6 * abs(want)):
                fail(f"counter '{name}' (tid {tid}) ends at {last} but "
                     f"metrics export says {want}")
    return len(tracks)


def check_metrics(metrics, spans):
    if metrics.get("schema_version") != 1:
        fail(f"metrics schema_version is "
             f"{metrics.get('schema_version')!r}, want 1")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            fail(f"metrics missing '{section}' object")
    for name, h in metrics["histograms"].items():
        pcts = [h.get(k, 0.0)
                for k in ("p50_s", "p95_s", "p99_s", "p999_s")]
        if any(a > b + 1e-12 for a, b in zip(pcts, pcts[1:])):
            fail(f"histogram '{name}' percentiles not ordered: {pcts}")
        if h.get("count", 0) > 0 and h.get("min_s", 0) > h.get("max_s", 0):
            fail(f"histogram '{name}' min > max")
    batches = metrics["counters"].get("serving.batches.total")
    if batches is not None:
        batch_spans = sum(1 for ev in spans
                          if ev["cat"] == "serve"
                          and ev["name"] == "batch")
        if batches != batch_spans:
            fail(f"serving.batches.total = {batches} but trace has "
                 f"{batch_spans} batch spans")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument("metrics", nargs="?")
    ap.add_argument("--tolerance", type=float, default=0.01)
    ap.add_argument("--ops-only", action="store_true",
                    help="skip nesting + op/batch reconciliation "
                         "(for eval traces with no serving layer)")
    ap.add_argument("--require-track", action="append", default=[],
                    metavar="PREFIX",
                    help="fail unless a counter track with this name "
                         "prefix exists (repeatable)")
    ap.add_argument("--fault-log", metavar="FILE",
                    help="JSONL from --fault-log-out: cross-check "
                         "injected corruption against the integrity.* "
                         "export and trace instants")
    args = ap.parse_args()

    trace = load_json(args.trace)
    spans, counters, instants = check_schema(trace)
    if args.ops_only:
        nested, rel = 0, 0.0
    else:
        nested = check_nesting(spans)
        rel = check_reconciliation(spans, args.tolerance)
    metrics = load_json(args.metrics) if args.metrics else None
    overload = check_overload_events(instants, metrics)
    log_corruptions = (load_fault_log(args.fault_log)
                       if args.fault_log else None)
    integrity = check_integrity_events(instants, metrics,
                                       log_corruptions)
    tracks = check_counters(counters, metrics)
    track_names = {name for ev in counters
                   for name in (ev["name"],)}
    for prefix in args.require_track:
        if not any(name.startswith(prefix) for name in track_names):
            fail(f"no counter track with prefix '{prefix}' "
                 f"(tracks: {sorted(track_names) or 'none'})")
    if metrics is not None:
        check_metrics(metrics, spans)
    recon = ("ops-only (nesting/reconcile skipped)" if args.ops_only
             else f"{nested} nesting-checked, op/batch reconcile "
                  f"within {rel * 100:.3f}%")
    log_note = (f", {log_corruptions} logged corruption(s)"
                if log_corruptions is not None else "")
    print(f"check_trace: OK ({len(spans)} spans, {recon}, "
          f"{overload} deadline/brownout event(s), "
          f"{integrity} integrity event(s){log_note}, "
          f"{len(counters)} counter events on {tracks} track(s)"
          f"{', metrics ok' if metrics is not None else ''})")


if __name__ == "__main__":
    main()
