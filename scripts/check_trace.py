#!/usr/bin/env python3
"""Validate a recperf Chrome trace (and optional metrics JSON).

Checks, in order:
  1. Schema: top-level traceEvents list; every event carries name /
     ph / ts / pid / tid, complete ('X') events carry dur, and
     timestamps are finite and non-negative.
  2. Nesting: on every virtual lane (tid < 1000) the 'X' spans obey
     stack discipline -- a span that starts inside another must end
     inside it (small slack for microsecond rounding).
  3. Reconciliation: per-op spans (cat "op") tile their enclosing
     worker "batch" spans; the summed op time must match the summed
     batch time within --tolerance (default 1%, the PR's acceptance
     bound).
  4. Overload events: brownout ladder transitions (instant events of
     cat "brownout") must step one level at a time within [0, 3], and
     deadline instants (cat "deadline") must use the known event
     names; with a metrics JSON their counts must agree with the
     exported serving.* deadline/brownout counters.
  5. Counters: per (tid, name) counter track ('C' events) timestamps
     are monotone non-decreasing and every value is finite and
     non-negative; with a metrics JSON, the final value of each track
     must agree with the exported counter/gauge of the same name
     (small absolute slack for float formatting). Traces without
     counter events still pass -- emission is opt-in.
  6. Metrics (when a metrics JSON is given): schema_version 1, the
     counters/gauges/histograms sections exist, histogram percentiles
     are ordered, and serving.batches.total agrees with the number of
     batch spans in the trace.

With --ops-only, checks 2 and 3 are skipped: op-level traces (e.g.
`recperf eval --trace`) run everything on wall-clock lanes and have no
serve/batch spans to reconcile against. Every other check still runs.

With --require-track PREFIX (repeatable), at least one counter track
whose name starts with PREFIX must exist — turns check 5's "counters
are opt-in" default into a hard presence gate for runs that are
expected to emit them (e.g. the kernel.* cache counters).

With --fault-log FILE (the JSONL written by `recperf shard
--fault-log-out`), the injected-vs-detected accounting is
cross-checked end to end: every log line must be valid JSON with a
known kind, the corruption-event count must equal the exported
integrity.injected.* counters, detections can never exceed
injections, and the trace's integrity instants (injected / detected /
escape / rehydrate) must reconcile with both the log and the
integrity.* export.

With --request-log FILE (the JSONL written by `recperf serve|shard
--request-log-out`), the per-request causal records are validated and
reconciled: every line must be a JSON object with a known outcome,
known phase names, unique ids, and phase durations that tile the
record's latency within --tolerance; with a metrics JSON the record
count must equal tail.requests.recorded - tail.requests.dropped, the
per-outcome counts must match the exported serving.* / sharded.*
counters, the summed retry/hedge tags must match the sharded.*
resilience counters, and the blame fractions recomputed from the
records must match the exported tail.blame.* gauges within 1e-6 (and
sum to 1).

Usage: check_trace.py TRACE.json [METRICS.json] [--tolerance 0.01]
                      [--ops-only] [--require-track PREFIX]...
                      [--fault-log FILE] [--request-log FILE]
Exits 0 when every check passes, 1 otherwise.
"""

import argparse
import json
import math
import sys

WALL_TID_BASE = 1000  # tids >= this are wall-clock lanes
SLACK_US = 5e-3       # nesting slack: ts values are ns-rounded in JSON


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def check_schema(trace):
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")
    spans = []
    counters = []
    instants = []
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            continue  # metadata (thread_name)
        for key in ("name", "cat", "ph", "ts", "pid", "tid"):
            if key not in ev:
                fail(f"event {i} missing '{key}': {ev}")
        if not math.isfinite(ev["ts"]) or ev["ts"] < 0:
            fail(f"event {i} has bad ts {ev['ts']}")
        if ph == "X":
            dur = ev.get("dur")
            if dur is None or not math.isfinite(dur) or dur < 0:
                fail(f"complete event {i} has bad dur: {ev}")
            spans.append(ev)
        elif ph == "C":
            counters.append(ev)
        elif ph == "i":
            instants.append(ev)
        else:
            fail(f"event {i} has unknown ph '{ph}'")
    if not spans:
        fail("no complete ('X') spans in trace")
    return spans, counters, instants


def check_nesting(spans):
    lanes = {}
    for ev in spans:
        if ev["tid"] < WALL_TID_BASE:
            lanes.setdefault(ev["tid"], []).append(ev)
    checked = 0
    for tid, lane in lanes.items():
        # Events arrive sorted (ts asc, then longer span first); a
        # stack replay verifies each span closes inside its parent.
        stack = []
        for ev in lane:
            t0, t1 = ev["ts"], ev["ts"] + ev["dur"]
            while stack and t0 >= stack[-1] - SLACK_US:
                stack.pop()
            if stack and t1 > stack[-1] + SLACK_US:
                fail(f"lane {tid}: span '{ev['name']}' "
                     f"[{t0:.3f}, {t1:.3f}] escapes its parent "
                     f"(parent ends {stack[-1]:.3f})")
            stack.append(t1)
            checked += 1
    if checked == 0:
        fail("no virtual-lane spans to nesting-check")
    return checked


def check_reconciliation(spans, tolerance):
    batch_us = sum(ev["dur"] for ev in spans
                   if ev["cat"] == "serve" and ev["name"] == "batch")
    op_us = sum(ev["dur"] for ev in spans if ev["cat"] == "op")
    if batch_us == 0 or op_us == 0:
        fail(f"nothing to reconcile (batch {batch_us} us, op {op_us} us)")
    rel = abs(op_us - batch_us) / batch_us
    if rel > tolerance:
        fail(f"op spans ({op_us:.1f} us) vs batch spans "
             f"({batch_us:.1f} us): {rel * 100:.2f}% apart "
             f"(tolerance {tolerance * 100:.2f}%)")
    return rel


DEADLINE_EVENTS = ("expired_queue", "shed_admission", "cancelled",
                   "run_cancelled")

# (instant name, exported serving.* counter) pairs that must agree.
DEADLINE_COUNTERS = (
    ("expired_queue", "serving.deadline.shed"),
    ("shed_admission", "serving.shed.admission_deadline"),
    ("cancelled", "serving.deadline.cancelled"),
)


def check_overload_events(instants, metrics):
    """Validate deadline/brownout instants; returns their count.

    Brownout transitions carry from/to ladder levels that must step by
    exactly one inside [0, 3]. Deadline instants must use the known
    event names. With a metrics JSON from the same (serve) run, the
    instant counts must equal the exported serving.* counters — a shed
    or cancelled item that is counted but not traced (or vice versa)
    is an accounting bug. Comparison is skipped per counter when the
    export omits it (counters are gated on nonzero values, and shard
    traces pair with sharded.* exports instead).
    """
    deadline = {}
    transitions = 0
    for ev in instants:
        if ev["cat"] == "brownout":
            if ev["name"] != "level":
                fail(f"unknown brownout instant '{ev['name']}'")
            args = ev.get("args", {})
            try:
                src, dst = int(args["from"]), int(args["to"])
            except (KeyError, TypeError, ValueError):
                fail(f"brownout transition at ts {ev['ts']} lacks "
                     f"integer from/to args: {args}")
            if not (0 <= src <= 3 and 0 <= dst <= 3):
                fail(f"brownout transition {src} -> {dst} outside the "
                     f"ladder [0, 3]")
            if abs(src - dst) != 1:
                fail(f"brownout ladder skipped a level: {src} -> {dst} "
                     f"at ts {ev['ts']}")
            transitions += 1
        elif ev["cat"] == "deadline":
            if ev["name"] not in DEADLINE_EVENTS:
                fail(f"unknown deadline instant '{ev['name']}'")
            deadline[ev["name"]] = deadline.get(ev["name"], 0) + 1

    if metrics is not None:
        exported = metrics.get("counters", {})
        for name, counter in DEADLINE_COUNTERS:
            want = exported.get(counter)
            if want is not None and deadline.get(name, 0) != want:
                fail(f"{counter} = {want} but trace has "
                     f"{deadline.get(name, 0)} '{name}' instants")
        want = exported.get("serving.brownout.transitions")
        if want is not None and transitions != want:
            fail(f"serving.brownout.transitions = {want} but trace has "
                 f"{transitions} ladder transitions")
    return sum(deadline.values()) + transitions


CORRUPTION_KINDS = ("single_bit_flip", "multi_bit_flip", "stuck_row")
FAULT_LOG_KINDS = CORRUPTION_KINDS + ("node_up", "node_down",
                                      "load_spike")
INTEGRITY_EVENTS = ("injected", "detected", "escape", "rehydrate")


def load_fault_log(path):
    """Parse a --fault-log-out JSONL; returns the corruption count."""
    corruptions = 0
    try:
        with open(path) as f:
            for i, line in enumerate(f):
                line = line.strip()
                if not line:
                    fail(f"{path}:{i + 1}: empty fault-log line")
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as e:
                    fail(f"{path}:{i + 1}: bad JSON: {e}")
                kind = rec.get("kind")
                if kind not in FAULT_LOG_KINDS:
                    fail(f"{path}:{i + 1}: unknown kind {kind!r}")
                t = rec.get("t")
                if not isinstance(t, (int, float)) \
                        or not math.isfinite(t) or t < 0:
                    fail(f"{path}:{i + 1}: bad event time {t!r}")
                if kind in CORRUPTION_KINDS:
                    for key in ("shard", "replica", "table", "row",
                                "bit"):
                        if key not in rec:
                            fail(f"{path}:{i + 1}: corruption event "
                                 f"missing '{key}'")
                    corruptions += 1
    except OSError as e:
        fail(f"{path}: {e}")
    return corruptions


def check_integrity_events(instants, metrics, log_corruptions):
    """Reconcile injected-vs-detected accounting; returns instant count.

    The fault log records every corruption the injector drew, so it is
    the ground truth: the integrity.injected.* export must equal its
    corruption count, and detections can never exceed injections. The
    trace's integrity instants are emitted per event (injected: one
    per event that landed on a live replica; detected: one per row
    detection, so <= the detected counter which also counts FC hits;
    escape / rehydrate: exactly one per counted occurrence).
    Cross-checks are skipped per counter when the export omits it
    (integrity.* only exports when the defense plane ran).
    """
    seen = {}
    for ev in instants:
        if ev["cat"] != "integrity":
            continue
        if ev["name"] not in INTEGRITY_EVENTS:
            fail(f"unknown integrity instant '{ev['name']}'")
        seen[ev["name"]] = seen.get(ev["name"], 0) + 1

    exported = metrics.get("counters", {}) if metrics is not None else {}
    injected = None
    if "integrity.injected.rows" in exported:
        injected = exported["integrity.injected.rows"] + \
            exported.get("integrity.injected.fc", 0)
        if log_corruptions is not None and injected != log_corruptions:
            fail(f"fault log has {log_corruptions} corruption events "
                 f"but integrity.injected.* exports {injected}")
        detected = exported.get("integrity.detected.total", 0)
        if detected > injected:
            fail(f"integrity.detected.total = {detected} exceeds the "
                 f"{injected} injected corruptions")
    elif log_corruptions:
        fail(f"fault log has {log_corruptions} corruption events but "
             f"the metrics export has no integrity.injected.* counters")

    upper = injected if injected is not None else log_corruptions
    if upper is not None and seen.get("injected", 0) > upper:
        fail(f"trace has {seen['injected']} injected instants but only "
             f"{upper} corruptions were drawn")
    if metrics is not None:
        detected = exported.get("integrity.detected.total")
        if detected is not None and seen.get("detected", 0) > detected:
            fail(f"trace has {seen['detected']} detected instants but "
                 f"integrity.detected.total = {detected}")
        for name, counter in (("escape",
                               "integrity.responses.corrupted_served"),
                              ("rehydrate", "integrity.rehydrates")):
            want = exported.get(counter)
            if want is not None and seen.get(name, 0) != want:
                fail(f"{counter} = {want} but trace has "
                     f"{seen.get(name, 0)} '{name}' instants")
    return sum(seen.values())


REQUEST_PHASES = ("queue", "service", "straggler", "shard_straggler",
                  "retry", "hedge", "warmup", "scrub", "network",
                  "aggregate")
REQUEST_OUTCOMES = ("served", "shed_admission",
                    "shed_admission_deadline", "shed_deadline_queue",
                    "cancelled", "dropped_low_priority", "failed")

# (outcome, exported counter) pairs that must agree when the export
# carries the counter. `served` and `cancelled` are handled separately
# because their counter names differ between the serve and shard paths.
REQUEST_OUTCOME_COUNTERS = (
    ("shed_admission", "serving.items.shed"),
    ("shed_admission_deadline", "serving.shed.admission_deadline"),
    ("shed_deadline_queue", "serving.deadline.shed"),
    ("dropped_low_priority", "serving.items.dropped_low_priority"),
    ("failed", "sharded.inferences.failed"),
)

# (record tag, exported sharded.* counter): the per-record tags are the
# same increments that feed the run counters, so their sums must agree.
REQUEST_TAG_COUNTERS = (
    ("retries", "sharded.retries"),
    ("hedges", "sharded.hedges.issued"),
    ("hedge_wins", "sharded.hedges.won"),
)


def request_percentile(samples, pct):
    """numpy-style linear interpolation, mirroring core/stats.hh."""
    samples = sorted(samples)
    if len(samples) == 1:
        return samples[0]
    rank = pct / 100.0 * (len(samples) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    return samples[lo] + (rank - lo) * (samples[hi] - samples[lo])


def load_request_log(path, tolerance):
    """Parse and validate a --request-log-out JSONL; returns records.

    Strict by design: a malformed or truncated log means the record
    plane is broken, so every violation is a hard failure — empty
    files, empty lines, non-object lines, unknown outcome or phase
    names, duplicate ids, and phase durations that do not tile the
    record's latency within --tolerance all fail loudly.
    """
    records = []
    seen_ids = set()
    try:
        with open(path) as f:
            lines = f.readlines()
    except OSError as e:
        fail(f"{path}: {e}")
    if not lines:
        fail(f"{path}: empty request log")
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            fail(f"{path}:{i + 1}: empty request-log line")
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{i + 1}: bad JSON: {e}")
        if not isinstance(rec, dict):
            fail(f"{path}:{i + 1}: record is not a JSON object")
        for key in ("id", "outcome", "arrival", "start", "finish",
                    "latency_s", "phases"):
            if key not in rec:
                fail(f"{path}:{i + 1}: record missing '{key}'")
        rid = rec["id"]
        if not isinstance(rid, int) or rid < 0:
            fail(f"{path}:{i + 1}: bad record id {rid!r}")
        if rid in seen_ids:
            fail(f"{path}:{i + 1}: duplicate record id {rid}")
        seen_ids.add(rid)
        if rec["outcome"] not in REQUEST_OUTCOMES:
            fail(f"{path}:{i + 1}: unknown outcome {rec['outcome']!r}")
        for key in ("arrival", "start", "finish", "latency_s"):
            v = rec[key]
            if not isinstance(v, (int, float)) or not math.isfinite(v) \
                    or v < 0:
                fail(f"{path}:{i + 1}: bad {key} {v!r}")
        if not (rec["arrival"] <= rec["start"] + 1e-12
                <= rec["finish"] + 2e-12):
            fail(f"{path}:{i + 1}: arrival/start/finish not monotone: "
                 f"{rec['arrival']} / {rec['start']} / {rec['finish']}")
        phases = rec["phases"]
        if not isinstance(phases, dict):
            fail(f"{path}:{i + 1}: phases is not an object")
        for name, v in phases.items():
            if name not in REQUEST_PHASES:
                fail(f"{path}:{i + 1}: unknown phase {name!r}")
            if not isinstance(v, (int, float)) or not math.isfinite(v) \
                    or v < 0:
                fail(f"{path}:{i + 1}: bad phase duration "
                     f"{name}={v!r}")
        lat = rec["latency_s"]
        tiled = sum(phases.values())
        if abs(tiled - lat) > max(tolerance * lat, 1e-9):
            fail(f"{path}:{i + 1}: phases sum to {tiled:.12g} but "
                 f"latency_s is {lat:.12g} "
                 f"(tolerance {tolerance * 100:.2f}%)")
        records.append(rec)
    return records


def check_request_log(records, metrics, path):
    """Reconcile the request log against the metrics export.

    Recomputes the p99-p50 blame decomposition from the records alone
    (the same math as obs::attributeTail) and requires the exported
    tail.blame.* gauges to agree within 1e-6 and to sum to 1. Counter
    cross-checks follow the usual convention: skipped per counter when
    the export omits it (exports are nonzero-gated and the serve/shard
    paths export disjoint counter sets).
    """
    outcome_counts = {}
    for rec in records:
        outcome_counts[rec["outcome"]] = \
            outcome_counts.get(rec["outcome"], 0) + 1

    served = [r for r in records if r["outcome"] == "served"]
    mass = dict.fromkeys(REQUEST_PHASES, 0.0)
    if served:
        latencies = [r["latency_s"] for r in served]
        p50 = request_percentile(latencies, 50.0)
        for rec in served:
            lat = rec["latency_s"]
            if lat <= p50 or lat <= 0.0:
                continue
            weight = (lat - p50) / lat
            for name, v in rec["phases"].items():
                mass[name] += v * weight
    total_mass = sum(mass.values())
    if total_mass > 0.0:
        blame = {name: m / total_mass for name, m in mass.items()}
    else:
        blame = dict.fromkeys(REQUEST_PHASES, 0.0)
        blame["service"] = 1.0

    if metrics is None:
        return
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})

    recorded = counters.get("tail.requests.recorded")
    if recorded is not None:
        dropped = counters.get("tail.requests.dropped", 0)
        if recorded - dropped != len(records):
            fail(f"tail.requests.recorded - dropped = "
                 f"{recorded} - {dropped} but {path} has "
                 f"{len(records)} records")

    want_served = None
    if "sharded.inferences.completed" in counters:
        want_served = counters["sharded.inferences.completed"]
    elif "serving.items.sla_met" in counters:
        want_served = counters["serving.items.sla_met"] + \
            counters.get("serving.items.sla_missed", 0)
    if want_served is not None \
            and outcome_counts.get("served", 0) != want_served:
        fail(f"metrics export says {want_served} served but {path} "
             f"has {outcome_counts.get('served', 0)} served records")
    want_cancelled = counters.get(
        "sharded.deadline.expired",
        counters.get("serving.deadline.cancelled"))
    if want_cancelled is not None \
            and outcome_counts.get("cancelled", 0) != want_cancelled:
        fail(f"metrics export says {want_cancelled} cancelled but "
             f"{path} has {outcome_counts.get('cancelled', 0)} "
             f"cancelled records")
    for outcome, counter in REQUEST_OUTCOME_COUNTERS:
        want = counters.get(counter)
        if want is not None and outcome_counts.get(outcome, 0) != want:
            fail(f"{counter} = {want} but {path} has "
                 f"{outcome_counts.get(outcome, 0)} "
                 f"'{outcome}' records")
    for tag, counter in REQUEST_TAG_COUNTERS:
        want = counters.get(counter)
        if want is None:
            continue
        got = sum(rec.get(tag, 0) for rec in records)
        if got != want:
            fail(f"{counter} = {want} but the {path} records sum "
                 f"their '{tag}' tags to {got}")

    exported_blame = {name[len("tail.blame."):]: v
                      for name, v in gauges.items()
                      if name.startswith("tail.blame.")}
    if exported_blame:
        for name, v in exported_blame.items():
            if name not in REQUEST_PHASES:
                fail(f"exported tail.blame.{name} is not a known cause")
            if abs(v - blame[name]) > 1e-6:
                fail(f"tail.blame.{name} = {v:.9f} but the log "
                     f"recomputes {blame[name]:.9f}")
        total = sum(exported_blame.values())
        if abs(total - 1.0) > 1e-6:
            fail(f"exported tail.blame.* fractions sum to {total:.9f}, "
                 f"not 1")
    elif recorded is not None and served:
        fail(f"metrics export has tail.requests.* but no tail.blame.* "
             f"gauges while {path} has {len(served)} served records")


def check_counters(counters, metrics):
    """Validate counter ('C') tracks; returns the number of tracks.

    A track is one (tid, name) series. Within a track timestamps must
    be monotone non-decreasing (counters ride the virtual clock, which
    only moves forward) and every value finite and non-negative. When
    a metrics JSON is supplied, the last value of a track whose name
    is also an exported counter or gauge must agree with it -- the
    final trace emission and the registry export read the same totals.
    """
    tracks = {}
    for ev in counters:
        value = ev.get("args", {}).get("value")
        if value is None or not isinstance(value, (int, float)) \
                or not math.isfinite(value) or value < 0:
            fail(f"counter '{ev['name']}' has bad value "
                 f"{value!r} at ts {ev['ts']}")
        key = (ev["tid"], ev["name"])
        prev = tracks.get(key)
        if prev is not None and ev["ts"] < prev[0] - SLACK_US:
            fail(f"counter track {key}: ts went backwards "
                 f"({prev[0]:.3f} -> {ev['ts']:.3f})")
        tracks[key] = (ev["ts"], value)

    if metrics is not None:
        exported = {}
        exported.update(metrics.get("counters", {}))
        exported.update(metrics.get("gauges", {}))
        for (tid, name), (_, last) in tracks.items():
            want = exported.get(name)
            if want is None:
                continue  # trace-only track (not every track exports)
            if abs(last - want) > max(1.5, 1e-6 * abs(want)):
                fail(f"counter '{name}' (tid {tid}) ends at {last} but "
                     f"metrics export says {want}")
    return len(tracks)


def check_metrics(metrics, spans):
    if metrics.get("schema_version") != 1:
        fail(f"metrics schema_version is "
             f"{metrics.get('schema_version')!r}, want 1")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            fail(f"metrics missing '{section}' object")
    for name, h in metrics["histograms"].items():
        pcts = [h.get(k, 0.0)
                for k in ("p50_s", "p95_s", "p99_s", "p999_s")]
        if any(a > b + 1e-12 for a, b in zip(pcts, pcts[1:])):
            fail(f"histogram '{name}' percentiles not ordered: {pcts}")
        if h.get("count", 0) > 0 and h.get("min_s", 0) > h.get("max_s", 0):
            fail(f"histogram '{name}' min > max")
    batches = metrics["counters"].get("serving.batches.total")
    if batches is not None:
        batch_spans = sum(1 for ev in spans
                          if ev["cat"] == "serve"
                          and ev["name"] == "batch")
        if batches != batch_spans:
            fail(f"serving.batches.total = {batches} but trace has "
                 f"{batch_spans} batch spans")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument("metrics", nargs="?")
    ap.add_argument("--tolerance", type=float, default=0.01)
    ap.add_argument("--ops-only", action="store_true",
                    help="skip nesting + op/batch reconciliation "
                         "(for eval traces with no serving layer)")
    ap.add_argument("--require-track", action="append", default=[],
                    metavar="PREFIX",
                    help="fail unless a counter track with this name "
                         "prefix exists (repeatable)")
    ap.add_argument("--fault-log", metavar="FILE",
                    help="JSONL from --fault-log-out: cross-check "
                         "injected corruption against the integrity.* "
                         "export and trace instants")
    ap.add_argument("--request-log", metavar="FILE",
                    help="JSONL from --request-log-out: validate the "
                         "causal records and reconcile outcome/blame "
                         "accounting against the metrics export")
    args = ap.parse_args()

    trace = load_json(args.trace)
    spans, counters, instants = check_schema(trace)
    if args.ops_only:
        nested, rel = 0, 0.0
    else:
        nested = check_nesting(spans)
        rel = check_reconciliation(spans, args.tolerance)
    metrics = load_json(args.metrics) if args.metrics else None
    overload = check_overload_events(instants, metrics)
    log_corruptions = (load_fault_log(args.fault_log)
                       if args.fault_log else None)
    integrity = check_integrity_events(instants, metrics,
                                       log_corruptions)
    requests = None
    if args.request_log:
        records = load_request_log(args.request_log, args.tolerance)
        check_request_log(records, metrics, args.request_log)
        requests = len(records)
    tracks = check_counters(counters, metrics)
    track_names = {name for ev in counters
                   for name in (ev["name"],)}
    for prefix in args.require_track:
        if not any(name.startswith(prefix) for name in track_names):
            fail(f"no counter track with prefix '{prefix}' "
                 f"(tracks: {sorted(track_names) or 'none'})")
    if metrics is not None:
        check_metrics(metrics, spans)
    recon = ("ops-only (nesting/reconcile skipped)" if args.ops_only
             else f"{nested} nesting-checked, op/batch reconcile "
                  f"within {rel * 100:.3f}%")
    log_note = (f", {log_corruptions} logged corruption(s)"
                if log_corruptions is not None else "")
    if requests is not None:
        log_note += f", {requests} request record(s) reconciled"
    print(f"check_trace: OK ({len(spans)} spans, {recon}, "
          f"{overload} deadline/brownout event(s), "
          f"{integrity} integrity event(s){log_note}, "
          f"{len(counters)} counter events on {tracks} track(s)"
          f"{', metrics ok' if metrics is not None else ''})")


if __name__ == "__main__":
    main()
