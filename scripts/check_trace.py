#!/usr/bin/env python3
"""Validate a recperf Chrome trace (and optional metrics JSON).

Checks, in order:
  1. Schema: top-level traceEvents list; every event carries name /
     ph / ts / pid / tid, complete ('X') events carry dur, and
     timestamps are finite and non-negative.
  2. Nesting: on every virtual lane (tid < 1000) the 'X' spans obey
     stack discipline -- a span that starts inside another must end
     inside it (small slack for microsecond rounding).
  3. Reconciliation: per-op spans (cat "op") tile their enclosing
     worker "batch" spans; the summed op time must match the summed
     batch time within --tolerance (default 1%, the PR's acceptance
     bound).
  4. Metrics (when a metrics JSON is given): schema_version 1, the
     counters/gauges/histograms sections exist, histogram percentiles
     are ordered, and serving.batches.total agrees with the number of
     batch spans in the trace.

Usage: check_trace.py TRACE.json [METRICS.json] [--tolerance 0.01]
Exits 0 when every check passes, 1 otherwise.
"""

import argparse
import json
import math
import sys

WALL_TID_BASE = 1000  # tids >= this are wall-clock lanes
SLACK_US = 5e-3       # nesting slack: ts values are ns-rounded in JSON


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def check_schema(trace):
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")
    spans = []
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            continue  # metadata (thread_name)
        for key in ("name", "cat", "ph", "ts", "pid", "tid"):
            if key not in ev:
                fail(f"event {i} missing '{key}': {ev}")
        if not math.isfinite(ev["ts"]) or ev["ts"] < 0:
            fail(f"event {i} has bad ts {ev['ts']}")
        if ph == "X":
            dur = ev.get("dur")
            if dur is None or not math.isfinite(dur) or dur < 0:
                fail(f"complete event {i} has bad dur: {ev}")
            spans.append(ev)
        elif ph not in ("i", "C"):
            fail(f"event {i} has unknown ph '{ph}'")
    if not spans:
        fail("no complete ('X') spans in trace")
    return spans


def check_nesting(spans):
    lanes = {}
    for ev in spans:
        if ev["tid"] < WALL_TID_BASE:
            lanes.setdefault(ev["tid"], []).append(ev)
    checked = 0
    for tid, lane in lanes.items():
        # Events arrive sorted (ts asc, then longer span first); a
        # stack replay verifies each span closes inside its parent.
        stack = []
        for ev in lane:
            t0, t1 = ev["ts"], ev["ts"] + ev["dur"]
            while stack and t0 >= stack[-1] - SLACK_US:
                stack.pop()
            if stack and t1 > stack[-1] + SLACK_US:
                fail(f"lane {tid}: span '{ev['name']}' "
                     f"[{t0:.3f}, {t1:.3f}] escapes its parent "
                     f"(parent ends {stack[-1]:.3f})")
            stack.append(t1)
            checked += 1
    if checked == 0:
        fail("no virtual-lane spans to nesting-check")
    return checked


def check_reconciliation(spans, tolerance):
    batch_us = sum(ev["dur"] for ev in spans
                   if ev["cat"] == "serve" and ev["name"] == "batch")
    op_us = sum(ev["dur"] for ev in spans if ev["cat"] == "op")
    if batch_us == 0 or op_us == 0:
        fail(f"nothing to reconcile (batch {batch_us} us, op {op_us} us)")
    rel = abs(op_us - batch_us) / batch_us
    if rel > tolerance:
        fail(f"op spans ({op_us:.1f} us) vs batch spans "
             f"({batch_us:.1f} us): {rel * 100:.2f}% apart "
             f"(tolerance {tolerance * 100:.2f}%)")
    return rel


def check_metrics(metrics, spans):
    if metrics.get("schema_version") != 1:
        fail(f"metrics schema_version is "
             f"{metrics.get('schema_version')!r}, want 1")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            fail(f"metrics missing '{section}' object")
    for name, h in metrics["histograms"].items():
        pcts = [h.get(k, 0.0)
                for k in ("p50_s", "p95_s", "p99_s", "p999_s")]
        if any(a > b + 1e-12 for a, b in zip(pcts, pcts[1:])):
            fail(f"histogram '{name}' percentiles not ordered: {pcts}")
        if h.get("count", 0) > 0 and h.get("min_s", 0) > h.get("max_s", 0):
            fail(f"histogram '{name}' min > max")
    batches = metrics["counters"].get("serving.batches.total")
    if batches is not None:
        batch_spans = sum(1 for ev in spans
                          if ev["cat"] == "serve"
                          and ev["name"] == "batch")
        if batches != batch_spans:
            fail(f"serving.batches.total = {batches} but trace has "
                 f"{batch_spans} batch spans")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument("metrics", nargs="?")
    ap.add_argument("--tolerance", type=float, default=0.01)
    args = ap.parse_args()

    trace = load_json(args.trace)
    spans = check_schema(trace)
    nested = check_nesting(spans)
    rel = check_reconciliation(spans, args.tolerance)
    if args.metrics:
        check_metrics(load_json(args.metrics), spans)
    print(f"check_trace: OK ({len(spans)} spans, {nested} nesting-checked, "
          f"op/batch reconcile within {rel * 100:.3f}%"
          f"{', metrics ok' if args.metrics else ''})")


if __name__ == "__main__":
    main()
