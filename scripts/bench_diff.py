#!/usr/bin/env python3
"""Perf-regression gate over two bench envelopes (bench::JsonWriter).

Compares a candidate BENCH_*.json against a baseline of the same bench
and fails when a latency-like metric regresses (grows) or a
throughput-like metric regresses (shrinks) by more than --threshold.

Rows are joined on identity keys (string fields plus the discrete
configuration integers: threads, replicas, nodes, batch, m, n, k, seed,
mtbf_ms, mttr_ms); everything else numeric is treated as a measured
metric and classified by name:

  lower-is-better : p50|p95|p99|latency|seconds|_ms|wasted|penalty|
                    failed|timeouts
  higher-is-better: throughput|goodput|gflops|speedup|efficiency|
                    availability|items_per_s|inf_s|completed

Unclassified metrics are reported only under --verbose and never gate.

Exit codes: 0 ok, 1 regression (or envelope mismatch), 2 usage/IO
error. --warn-only reports regressions but always exits 0, for pure
wall-clock benches whose own internal asserts are the hard gate.

Examples:
  bench_diff.py BENCH_failover.json new.json --threshold 0.05
  bench_diff.py old.json new.json --exact          # bit-identical gate
  bench_diff.py --self-test                        # built-in check
"""

import argparse
import json
import re
import sys

LOWER_IS_BETTER = re.compile(
    r"(p50|p95|p99|latency|seconds|_ms$|_ms_|wasted|penalty|failed|timeouts)")
HIGHER_IS_BETTER = re.compile(
    r"(throughput|goodput|gflops|speedup|efficiency|availability|"
    r"items_per_s|inf_s|completed)")

# Discrete config fields that identify a row rather than measure it.
IDENTITY_INTS = ("threads", "replicas", "nodes", "batch", "m", "n", "k",
                 "seed", "mtbf_ms", "mttr_ms", "rows", "dim", "tables",
                 "pooling", "ranks")

# Machine-stamp fields that invalidate a comparison when they differ:
# an nmp-backend candidate against a cpu-backend baseline is a config
# change, not a perf regression.
MACHINE_IDENTITY = ("backend", "isa")


def load_envelope(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        raise SystemExit(f"bench_diff: cannot read {path}: {e}")
    for field in ("schema_version", "bench", "results"):
        if field not in data:
            raise SystemExit(f"bench_diff: {path}: missing '{field}' "
                             "(not a bench envelope?)")
    return data


def row_key(row):
    """Identity of one result row: all string fields + discrete ints."""
    parts = []
    for k in sorted(row):
        v = row[k]
        if isinstance(v, str):
            parts.append((k, v))
        elif k in IDENTITY_INTS:
            parts.append((k, v))
    return tuple(parts)


def classify(name):
    if LOWER_IS_BETTER.search(name):
        return "lower"
    if HIGHER_IS_BETTER.search(name):
        return "higher"
    return None


def fmt_key(key):
    return " ".join(f"{k}={v}" for k, v in key) or "<single row>"


def compare(base, cand, opts):
    """Returns (failures, warnings, infos) as lists of strings."""
    failures, warnings, infos = [], [], []

    if base["schema_version"] != cand["schema_version"]:
        failures.append(
            f"schema_version mismatch: baseline {base['schema_version']} "
            f"vs candidate {cand['schema_version']}")
        return failures, warnings, infos
    if base["bench"] != cand["bench"]:
        failures.append(f"bench mismatch: baseline '{base['bench']}' vs "
                        f"candidate '{cand['bench']}'")
        return failures, warnings, infos
    if base.get("config") != cand.get("config"):
        msg = (f"config drift: baseline {base.get('config')} vs "
               f"candidate {cand.get('config')}")
        if opts.allow_config_drift:
            warnings.append(msg)
        else:
            failures.append(msg + " (pass --allow-config-drift to compare "
                            "anyway)")
            return failures, warnings, infos

    # Cross-backend (or cross-ISA) envelopes measure different engines;
    # gating one against the other would misreport the backend delta as
    # a regression. Envelopes written before the stamp existed lack the
    # fields — warn and compare anyway so old baselines keep working.
    base_machine = base.get("machine") or {}
    cand_machine = cand.get("machine") or {}
    for field in MACHINE_IDENTITY:
        bv, cv = base_machine.get(field), cand_machine.get(field)
        if bv is None or cv is None:
            if bv != cv:
                side = "baseline" if bv is None else "candidate"
                warnings.append(f"machine {field} missing from {side}; "
                                "cannot check backend drift")
            continue
        if bv != cv:
            msg = (f"machine {field} drift: baseline '{bv}' vs candidate "
                   f"'{cv}' (cross-backend comparison, not a regression)")
            if opts.allow_config_drift:
                warnings.append(msg)
            else:
                failures.append(msg + " (pass --allow-config-drift to "
                                "compare anyway)")
                return failures, warnings, infos

    base_rows = {row_key(r): r for r in base["results"]}
    cand_rows = {row_key(r): r for r in cand["results"]}

    for key in base_rows:
        if key not in cand_rows:
            warnings.append(f"row missing from candidate: {fmt_key(key)}")
    for key in cand_rows:
        if key not in base_rows:
            warnings.append(f"row new in candidate: {fmt_key(key)}")

    for key in sorted(set(base_rows) & set(cand_rows)):
        b, c = base_rows[key], cand_rows[key]
        for name in sorted(set(b) & set(c)):
            bv, cv = b[name], c[name]
            if isinstance(bv, str) or name in IDENTITY_INTS:
                continue
            if not isinstance(bv, (int, float)) or \
               not isinstance(cv, (int, float)):
                continue
            if opts.exact:
                if bv != cv:
                    failures.append(f"{fmt_key(key)}: {name} differs "
                                    f"({bv!r} -> {cv!r}) [--exact]")
                continue
            direction = classify(name)
            if direction is None:
                if opts.verbose:
                    infos.append(f"{fmt_key(key)}: {name} unclassified "
                                 f"({bv} -> {cv}), not gated")
                continue
            if bv == 0:
                # Can't form a ratio; any growth of a lower-is-better
                # metric from zero is flagged, shrink-from-zero cannot
                # happen for non-negative metrics.
                if direction == "lower" and cv > 0:
                    failures.append(f"{fmt_key(key)}: {name} grew from 0 "
                                    f"to {cv}")
                continue
            rel = (cv - bv) / abs(bv)
            regressed = (rel > opts.threshold if direction == "lower"
                         else rel < -opts.threshold)
            if regressed:
                msg = (f"{fmt_key(key)}: {name} regressed "
                       f"{rel * 100.0:+.1f}% ({bv:.6g} -> {cv:.6g}, "
                       f"threshold {opts.threshold * 100.0:.0f}%)")
                if direction == "higher" and opts.throughput_warn_only:
                    warnings.append(msg + " [warn-only]")
                else:
                    failures.append(msg)
            elif opts.verbose:
                infos.append(f"{fmt_key(key)}: {name} {rel * 100.0:+.1f}% "
                             f"({bv:.6g} -> {cv:.6g}) ok")

    return failures, warnings, infos


def self_test(opts):
    """Gate sanity check: a perturbed envelope must fail, an identical
    one must pass. Runs entirely in memory."""
    base = {
        "schema_version": 1,
        "bench": "selftest",
        "machine": {"host_cores": 1, "backend": "cpu", "isa": "auto"},
        "config": {"iters": 100},
        "results": [
            {"suite": "gemm", "name": "a", "threads": 1,
             "p99_ms": 2.0, "gflops": 10.0, "seconds_per_iter": 1e-3},
            {"suite": "gemm", "name": "a", "threads": 2,
             "p99_ms": 1.5, "gflops": 18.0, "seconds_per_iter": 6e-4},
        ],
    }
    ns = argparse.Namespace(threshold=0.10, exact=False,
                            throughput_warn_only=False,
                            allow_config_drift=False, verbose=False)

    identical = json.loads(json.dumps(base))
    f, w, _ = compare(base, identical, ns)
    assert not f and not w, f"identical envelopes flagged: {f + w}"

    exact_f, _, _ = compare(base, identical,
                            argparse.Namespace(**{**vars(ns), "exact": True}))
    assert not exact_f, f"identical envelopes failed --exact: {exact_f}"

    worse = json.loads(json.dumps(base))
    worse["results"][0]["p99_ms"] *= 1.5       # +50% p99
    worse["results"][1]["gflops"] *= 0.5       # -50% throughput
    f, _, _ = compare(base, worse, ns)
    assert any("p99_ms" in m for m in f), f"missed p99 regression: {f}"
    assert any("gflops" in m for m in f), f"missed gflops regression: {f}"

    # Throughput regressions demote to warnings under
    # --throughput-warn-only, latency ones still fail.
    f, w, _ = compare(base, worse,
                      argparse.Namespace(**{**vars(ns),
                                            "throughput_warn_only": True}))
    assert any("p99_ms" in m for m in f), "p99 must hard-fail"
    assert not any("gflops" in m for m in f), "gflops should be warn-only"
    assert any("gflops" in m for m in w), "gflops warning missing"

    # Small noise below threshold passes.
    noisy = json.loads(json.dumps(base))
    noisy["results"][0]["p99_ms"] *= 1.05
    f, _, _ = compare(base, noisy, ns)
    assert not f, f"5% noise failed 10% gate: {f}"

    # Schema / bench / config mismatches are hard failures.
    other = json.loads(json.dumps(base))
    other["bench"] = "different"
    f, _, _ = compare(base, other, ns)
    assert f, "bench mismatch not flagged"
    drift = json.loads(json.dumps(base))
    drift["config"]["iters"] = 200
    f, _, _ = compare(base, drift, ns)
    assert f, "config drift not flagged"
    f, w, _ = compare(base, drift,
                      argparse.Namespace(**{**vars(ns),
                                            "allow_config_drift": True}))
    assert not f and w, "--allow-config-drift should warn, not fail"

    # A candidate measured on a different compute backend (or ISA) must
    # be flagged as drift, not silently gated as a perf delta.
    cross = json.loads(json.dumps(base))
    cross["machine"]["backend"] = "nmp"
    f, _, _ = compare(base, cross, ns)
    assert any("machine backend drift" in m for m in f), \
        f"cross-backend envelope not flagged: {f}"
    f, w, _ = compare(base, cross,
                      argparse.Namespace(**{**vars(ns),
                                            "allow_config_drift": True}))
    assert not f and any("machine backend drift" in m for m in w), \
        "--allow-config-drift should demote backend drift to a warning"

    # Envelopes written before the backend stamp existed only warn.
    legacy = json.loads(json.dumps(base))
    del legacy["machine"]["backend"]
    del legacy["machine"]["isa"]
    f, w, _ = compare(legacy, base, ns)
    assert not f, f"stamp-less baseline must still compare: {f}"
    assert any("missing from baseline" in m for m in w), \
        f"missing-stamp warning absent: {w}"

    print("bench_diff self-test: OK")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="compare two bench envelopes and fail on regression")
    ap.add_argument("baseline", nargs="?", help="baseline BENCH_*.json")
    ap.add_argument("candidate", nargs="?", help="candidate BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative regression tolerance (default 0.10)")
    ap.add_argument("--exact", action="store_true",
                    help="require bit-identical numeric fields "
                         "(determinism gate)")
    ap.add_argument("--throughput-warn-only", action="store_true",
                    help="demote higher-is-better regressions to warnings "
                         "(noisy shared runners)")
    ap.add_argument("--allow-config-drift", action="store_true",
                    help="warn instead of fail when config blocks differ")
    ap.add_argument("--warn-only", action="store_true",
                    help="report every regression but always exit 0 "
                         "(pure wall-clock benches on shared runners, "
                         "where even latency metrics can spike "
                         "transiently; the bench's own internal asserts "
                         "remain the hard gate)")
    ap.add_argument("--verbose", action="store_true",
                    help="also print passing and unclassified metrics")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in gate sanity check and exit")
    opts = ap.parse_args()

    if opts.self_test:
        return self_test(opts)
    if not opts.baseline or not opts.candidate:
        ap.error("baseline and candidate envelopes are required")

    base = load_envelope(opts.baseline)
    cand = load_envelope(opts.candidate)
    failures, warnings, infos = compare(base, cand, opts)

    for msg in infos:
        print(f"info: {msg}")
    for msg in warnings:
        print(f"warning: {msg}")
    for msg in failures:
        print(f"FAIL: {msg}")

    shared = len({row_key(r) for r in base["results"]} &
                 {row_key(r) for r in cand["results"]})
    if failures:
        print(f"bench_diff: {len(failures)} regression(s) across {shared} "
              f"compared row(s)")
        if opts.warn_only:
            print("bench_diff: --warn-only, not gating")
            return 0
        return 1
    print(f"bench_diff: OK ({shared} row(s) compared, "
          f"{len(warnings)} warning(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
