#!/usr/bin/env bash
# Build and run the JSON-emitting benchmarks, writing results to the
# repo root so the perf trajectory is tracked in-tree:
#
#  - BENCH_parallel_ops.json: thread-scaling of the parallel engine
#  - BENCH_kernel_tuning.json: tuned microkernel engine vs generic
#    baseline (GEMM/SLS/crossover/eval suites; stamps detected ISA)
#  - BENCH_failover.json: availability + p99 vs replica count under
#    injected shard failures (MTBF = 10x MTTR)
#  - BENCH_brownout.json: goodput + served p99 under 1.5x overload
#    with deadline budgets and the brownout ladder on/off
#  - BENCH_sdc.json: corruption detection rate, escapes and p99 tax
#    across the (corruption rate x scrub interval x inline sampling)
#    defense grid
#  - BENCH_backend.json: near-memory SLS backend vs host CPU latency
#    across RMC1/2/3 x pooling depth x PIM rank count (virtual time)
#  - BENCH_tail_attribution.json: p99-p50 blame decomposition derived
#    from the per-request causal log across overload / straggler /
#    hedged scenarios (virtual time; bit-deterministic)
#
# All files share the bench::JsonWriter envelope (bench_common.hh):
#   {schema_version, bench, machine, config, results[]}
#
# Usage: scripts/run_bench.sh [--threads 1,2,4,8] [--min-time 0.25]
# Extra arguments are forwarded to micro_parallel_ops only.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build
cmake --build build --target micro_parallel_ops micro_kernel_tuning \
    study_failover study_brownout study_sdc study_backend \
    fig11_tail_latency

./build/bench/micro_parallel_ops --out BENCH_parallel_ops.json "$@"
echo "wrote $(pwd)/BENCH_parallel_ops.json"

./build/bench/micro_kernel_tuning --out BENCH_kernel_tuning.json
echo "wrote $(pwd)/BENCH_kernel_tuning.json"

./build/bench/study_failover --out BENCH_failover.json
echo "wrote $(pwd)/BENCH_failover.json"

./build/bench/study_brownout --out BENCH_brownout.json
echo "wrote $(pwd)/BENCH_brownout.json"

./build/bench/study_sdc --out BENCH_sdc.json
echo "wrote $(pwd)/BENCH_sdc.json"

./build/bench/study_backend --out BENCH_backend.json
echo "wrote $(pwd)/BENCH_backend.json"

./build/bench/fig11_tail_latency --out BENCH_tail_attribution.json
echo "wrote $(pwd)/BENCH_tail_attribution.json"
