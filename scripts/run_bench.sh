#!/usr/bin/env bash
# Build and run the thread-scaling microbenchmark, writing the JSON
# result to BENCH_parallel_ops.json at the repo root so the perf
# trajectory of the parallel execution engine is tracked in-tree.
#
# Usage: scripts/run_bench.sh [--threads 1,2,4,8] [--min-time 0.25]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build
cmake --build build --target micro_parallel_ops

./build/bench/micro_parallel_ops --out BENCH_parallel_ops.json "$@"
echo "wrote $(pwd)/BENCH_parallel_ops.json"
