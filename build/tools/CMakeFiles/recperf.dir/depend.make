# Empty dependencies file for recperf.
# This may be replaced when dependencies are built.
