file(REMOVE_RECURSE
  "CMakeFiles/recperf.dir/recperf_cli.cc.o"
  "CMakeFiles/recperf.dir/recperf_cli.cc.o.d"
  "recperf"
  "recperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
