# Empty compiler generated dependencies file for fig14_unique_ids.
# This may be replaced when dependencies are built.
