file(REMOVE_RECURSE
  "CMakeFiles/fig14_unique_ids.dir/fig14_unique_ids.cc.o"
  "CMakeFiles/fig14_unique_ids.dir/fig14_unique_ids.cc.o.d"
  "fig14_unique_ids"
  "fig14_unique_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_unique_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
