file(REMOVE_RECURSE
  "CMakeFiles/table3_bottlenecks.dir/table3_bottlenecks.cc.o"
  "CMakeFiles/table3_bottlenecks.dir/table3_bottlenecks.cc.o.d"
  "table3_bottlenecks"
  "table3_bottlenecks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_bottlenecks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
