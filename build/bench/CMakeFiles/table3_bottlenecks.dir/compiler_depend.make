# Empty compiler generated dependencies file for table3_bottlenecks.
# This may be replaced when dependencies are built.
