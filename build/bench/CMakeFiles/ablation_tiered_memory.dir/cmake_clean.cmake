file(REMOVE_RECURSE
  "CMakeFiles/ablation_tiered_memory.dir/ablation_tiered_memory.cc.o"
  "CMakeFiles/ablation_tiered_memory.dir/ablation_tiered_memory.cc.o.d"
  "ablation_tiered_memory"
  "ablation_tiered_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tiered_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
