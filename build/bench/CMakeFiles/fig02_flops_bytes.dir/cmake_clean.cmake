file(REMOVE_RECURSE
  "CMakeFiles/fig02_flops_bytes.dir/fig02_flops_bytes.cc.o"
  "CMakeFiles/fig02_flops_bytes.dir/fig02_flops_bytes.cc.o.d"
  "fig02_flops_bytes"
  "fig02_flops_bytes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_flops_bytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
