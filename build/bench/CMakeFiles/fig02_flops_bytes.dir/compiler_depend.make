# Empty compiler generated dependencies file for fig02_flops_bytes.
# This may be replaced when dependencies are built.
