# Empty compiler generated dependencies file for fig12_ncf_comparison.
# This may be replaced when dependencies are built.
