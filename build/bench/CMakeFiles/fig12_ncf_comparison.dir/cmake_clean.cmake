file(REMOVE_RECURSE
  "CMakeFiles/fig12_ncf_comparison.dir/fig12_ncf_comparison.cc.o"
  "CMakeFiles/fig12_ncf_comparison.dir/fig12_ncf_comparison.cc.o.d"
  "fig12_ncf_comparison"
  "fig12_ncf_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_ncf_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
