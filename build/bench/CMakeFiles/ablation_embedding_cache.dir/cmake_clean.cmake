file(REMOVE_RECURSE
  "CMakeFiles/ablation_embedding_cache.dir/ablation_embedding_cache.cc.o"
  "CMakeFiles/ablation_embedding_cache.dir/ablation_embedding_cache.cc.o.d"
  "ablation_embedding_cache"
  "ablation_embedding_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_embedding_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
