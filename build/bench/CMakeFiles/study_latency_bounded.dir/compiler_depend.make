# Empty compiler generated dependencies file for study_latency_bounded.
# This may be replaced when dependencies are built.
