file(REMOVE_RECURSE
  "CMakeFiles/study_latency_bounded.dir/study_latency_bounded.cc.o"
  "CMakeFiles/study_latency_bounded.dir/study_latency_bounded.cc.o.d"
  "study_latency_bounded"
  "study_latency_bounded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_latency_bounded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
