# Empty compiler generated dependencies file for table2_machines.
# This may be replaced when dependencies are built.
