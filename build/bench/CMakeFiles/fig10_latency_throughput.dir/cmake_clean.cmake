file(REMOVE_RECURSE
  "CMakeFiles/fig10_latency_throughput.dir/fig10_latency_throughput.cc.o"
  "CMakeFiles/fig10_latency_throughput.dir/fig10_latency_throughput.cc.o.d"
  "fig10_latency_throughput"
  "fig10_latency_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_latency_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
