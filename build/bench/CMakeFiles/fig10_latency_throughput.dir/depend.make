# Empty dependencies file for fig10_latency_throughput.
# This may be replaced when dependencies are built.
