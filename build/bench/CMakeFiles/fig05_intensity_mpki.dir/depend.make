# Empty dependencies file for fig05_intensity_mpki.
# This may be replaced when dependencies are built.
