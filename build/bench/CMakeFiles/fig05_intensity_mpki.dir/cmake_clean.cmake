file(REMOVE_RECURSE
  "CMakeFiles/fig05_intensity_mpki.dir/fig05_intensity_mpki.cc.o"
  "CMakeFiles/fig05_intensity_mpki.dir/fig05_intensity_mpki.cc.o.d"
  "fig05_intensity_mpki"
  "fig05_intensity_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_intensity_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
