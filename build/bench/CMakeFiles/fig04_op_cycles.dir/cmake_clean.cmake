file(REMOVE_RECURSE
  "CMakeFiles/fig04_op_cycles.dir/fig04_op_cycles.cc.o"
  "CMakeFiles/fig04_op_cycles.dir/fig04_op_cycles.cc.o.d"
  "fig04_op_cycles"
  "fig04_op_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_op_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
