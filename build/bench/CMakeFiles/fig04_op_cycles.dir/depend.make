# Empty dependencies file for fig04_op_cycles.
# This may be replaced when dependencies are built.
