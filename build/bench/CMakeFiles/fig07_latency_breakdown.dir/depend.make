# Empty dependencies file for fig07_latency_breakdown.
# This may be replaced when dependencies are built.
