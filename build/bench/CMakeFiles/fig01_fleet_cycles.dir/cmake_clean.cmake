file(REMOVE_RECURSE
  "CMakeFiles/fig01_fleet_cycles.dir/fig01_fleet_cycles.cc.o"
  "CMakeFiles/fig01_fleet_cycles.dir/fig01_fleet_cycles.cc.o.d"
  "fig01_fleet_cycles"
  "fig01_fleet_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_fleet_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
