# Empty compiler generated dependencies file for fig01_fleet_cycles.
# This may be replaced when dependencies are built.
