# Empty compiler generated dependencies file for fig09_colocation.
# This may be replaced when dependencies are built.
