file(REMOVE_RECURSE
  "CMakeFiles/fig09_colocation.dir/fig09_colocation.cc.o"
  "CMakeFiles/fig09_colocation.dir/fig09_colocation.cc.o.d"
  "fig09_colocation"
  "fig09_colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
