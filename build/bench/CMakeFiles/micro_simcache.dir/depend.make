# Empty dependencies file for micro_simcache.
# This may be replaced when dependencies are built.
