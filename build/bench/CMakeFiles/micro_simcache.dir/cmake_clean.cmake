file(REMOVE_RECURSE
  "CMakeFiles/micro_simcache.dir/micro_simcache.cc.o"
  "CMakeFiles/micro_simcache.dir/micro_simcache.cc.o.d"
  "micro_simcache"
  "micro_simcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_simcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
