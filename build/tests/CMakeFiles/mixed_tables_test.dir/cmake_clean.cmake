file(REMOVE_RECURSE
  "CMakeFiles/mixed_tables_test.dir/mixed_tables_test.cc.o"
  "CMakeFiles/mixed_tables_test.dir/mixed_tables_test.cc.o.d"
  "mixed_tables_test"
  "mixed_tables_test.pdb"
  "mixed_tables_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_tables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
