# Empty dependencies file for mixed_tables_test.
# This may be replaced when dependencies are built.
