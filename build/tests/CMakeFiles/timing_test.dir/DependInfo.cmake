
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/timing_test.cc" "tests/CMakeFiles/timing_test.dir/timing_test.cc.o" "gcc" "tests/CMakeFiles/timing_test.dir/timing_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/train/CMakeFiles/recperf_train.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/recperf_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/fleet/CMakeFiles/recperf_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/recperf_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/recperf_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/recperf_model.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/recperf_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/simcache/CMakeFiles/recperf_simcache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/recperf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/recperf_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/recperf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/recperf_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
