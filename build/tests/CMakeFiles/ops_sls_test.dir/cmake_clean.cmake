file(REMOVE_RECURSE
  "CMakeFiles/ops_sls_test.dir/ops_sls_test.cc.o"
  "CMakeFiles/ops_sls_test.dir/ops_sls_test.cc.o.d"
  "ops_sls_test"
  "ops_sls_test.pdb"
  "ops_sls_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_sls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
