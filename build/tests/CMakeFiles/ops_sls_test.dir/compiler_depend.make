# Empty compiler generated dependencies file for ops_sls_test.
# This may be replaced when dependencies are built.
