# Empty dependencies file for quantized_embedding_test.
# This may be replaced when dependencies are built.
