file(REMOVE_RECURSE
  "CMakeFiles/quantized_embedding_test.dir/quantized_embedding_test.cc.o"
  "CMakeFiles/quantized_embedding_test.dir/quantized_embedding_test.cc.o.d"
  "quantized_embedding_test"
  "quantized_embedding_test.pdb"
  "quantized_embedding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantized_embedding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
