file(REMOVE_RECURSE
  "CMakeFiles/ops_fc_test.dir/ops_fc_test.cc.o"
  "CMakeFiles/ops_fc_test.dir/ops_fc_test.cc.o.d"
  "ops_fc_test"
  "ops_fc_test.pdb"
  "ops_fc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_fc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
