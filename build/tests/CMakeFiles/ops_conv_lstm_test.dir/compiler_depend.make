# Empty compiler generated dependencies file for ops_conv_lstm_test.
# This may be replaced when dependencies are built.
