# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ops_conv_lstm_test.
