file(REMOVE_RECURSE
  "CMakeFiles/ops_conv_lstm_test.dir/ops_conv_lstm_test.cc.o"
  "CMakeFiles/ops_conv_lstm_test.dir/ops_conv_lstm_test.cc.o.d"
  "ops_conv_lstm_test"
  "ops_conv_lstm_test.pdb"
  "ops_conv_lstm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_conv_lstm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
