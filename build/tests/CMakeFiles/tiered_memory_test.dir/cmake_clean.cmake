file(REMOVE_RECURSE
  "CMakeFiles/tiered_memory_test.dir/tiered_memory_test.cc.o"
  "CMakeFiles/tiered_memory_test.dir/tiered_memory_test.cc.o.d"
  "tiered_memory_test"
  "tiered_memory_test.pdb"
  "tiered_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiered_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
