file(REMOVE_RECURSE
  "CMakeFiles/ops_batchmatmul_test.dir/ops_batchmatmul_test.cc.o"
  "CMakeFiles/ops_batchmatmul_test.dir/ops_batchmatmul_test.cc.o.d"
  "ops_batchmatmul_test"
  "ops_batchmatmul_test.pdb"
  "ops_batchmatmul_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_batchmatmul_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
