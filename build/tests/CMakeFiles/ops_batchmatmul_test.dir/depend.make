# Empty dependencies file for ops_batchmatmul_test.
# This may be replaced when dependencies are built.
