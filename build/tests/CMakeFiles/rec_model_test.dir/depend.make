# Empty dependencies file for rec_model_test.
# This may be replaced when dependencies are built.
