file(REMOVE_RECURSE
  "CMakeFiles/rec_model_test.dir/rec_model_test.cc.o"
  "CMakeFiles/rec_model_test.dir/rec_model_test.cc.o.d"
  "rec_model_test"
  "rec_model_test.pdb"
  "rec_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rec_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
