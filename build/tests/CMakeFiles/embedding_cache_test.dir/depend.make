# Empty dependencies file for embedding_cache_test.
# This may be replaced when dependencies are built.
