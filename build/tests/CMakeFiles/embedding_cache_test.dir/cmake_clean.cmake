file(REMOVE_RECURSE
  "CMakeFiles/embedding_cache_test.dir/embedding_cache_test.cc.o"
  "CMakeFiles/embedding_cache_test.dir/embedding_cache_test.cc.o.d"
  "embedding_cache_test"
  "embedding_cache_test.pdb"
  "embedding_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
