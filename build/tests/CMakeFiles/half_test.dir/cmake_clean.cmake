file(REMOVE_RECURSE
  "CMakeFiles/half_test.dir/half_test.cc.o"
  "CMakeFiles/half_test.dir/half_test.cc.o.d"
  "half_test"
  "half_test.pdb"
  "half_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/half_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
