# Empty compiler generated dependencies file for ncf_test.
# This may be replaced when dependencies are built.
