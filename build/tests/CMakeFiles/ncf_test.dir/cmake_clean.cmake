file(REMOVE_RECURSE
  "CMakeFiles/ncf_test.dir/ncf_test.cc.o"
  "CMakeFiles/ncf_test.dir/ncf_test.cc.o.d"
  "ncf_test"
  "ncf_test.pdb"
  "ncf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
