# Empty compiler generated dependencies file for train_ctr.
# This may be replaced when dependencies are built.
