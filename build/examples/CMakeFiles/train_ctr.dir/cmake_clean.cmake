file(REMOVE_RECURSE
  "CMakeFiles/train_ctr.dir/train_ctr.cpp.o"
  "CMakeFiles/train_ctr.dir/train_ctr.cpp.o.d"
  "train_ctr"
  "train_ctr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_ctr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
