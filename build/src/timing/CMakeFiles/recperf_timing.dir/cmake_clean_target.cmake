file(REMOVE_RECURSE
  "librecperf_timing.a"
)
