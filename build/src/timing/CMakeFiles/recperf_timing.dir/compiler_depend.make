# Empty compiler generated dependencies file for recperf_timing.
# This may be replaced when dependencies are built.
