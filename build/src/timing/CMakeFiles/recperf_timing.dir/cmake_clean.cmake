file(REMOVE_RECURSE
  "CMakeFiles/recperf_timing.dir/colocation.cc.o"
  "CMakeFiles/recperf_timing.dir/colocation.cc.o.d"
  "CMakeFiles/recperf_timing.dir/model_timer.cc.o"
  "CMakeFiles/recperf_timing.dir/model_timer.cc.o.d"
  "CMakeFiles/recperf_timing.dir/op_timing.cc.o"
  "CMakeFiles/recperf_timing.dir/op_timing.cc.o.d"
  "CMakeFiles/recperf_timing.dir/tiered_memory.cc.o"
  "CMakeFiles/recperf_timing.dir/tiered_memory.cc.o.d"
  "librecperf_timing.a"
  "librecperf_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recperf_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
