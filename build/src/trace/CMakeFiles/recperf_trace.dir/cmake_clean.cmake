file(REMOVE_RECURSE
  "CMakeFiles/recperf_trace.dir/embedding_cache.cc.o"
  "CMakeFiles/recperf_trace.dir/embedding_cache.cc.o.d"
  "CMakeFiles/recperf_trace.dir/id_generator.cc.o"
  "CMakeFiles/recperf_trace.dir/id_generator.cc.o.d"
  "CMakeFiles/recperf_trace.dir/trace_file.cc.o"
  "CMakeFiles/recperf_trace.dir/trace_file.cc.o.d"
  "librecperf_trace.a"
  "librecperf_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recperf_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
