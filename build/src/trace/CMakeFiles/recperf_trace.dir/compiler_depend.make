# Empty compiler generated dependencies file for recperf_trace.
# This may be replaced when dependencies are built.
