
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/embedding_cache.cc" "src/trace/CMakeFiles/recperf_trace.dir/embedding_cache.cc.o" "gcc" "src/trace/CMakeFiles/recperf_trace.dir/embedding_cache.cc.o.d"
  "/root/repo/src/trace/id_generator.cc" "src/trace/CMakeFiles/recperf_trace.dir/id_generator.cc.o" "gcc" "src/trace/CMakeFiles/recperf_trace.dir/id_generator.cc.o.d"
  "/root/repo/src/trace/trace_file.cc" "src/trace/CMakeFiles/recperf_trace.dir/trace_file.cc.o" "gcc" "src/trace/CMakeFiles/recperf_trace.dir/trace_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/recperf_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
