file(REMOVE_RECURSE
  "librecperf_trace.a"
)
