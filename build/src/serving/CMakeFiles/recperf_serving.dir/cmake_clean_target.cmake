file(REMOVE_RECURSE
  "librecperf_serving.a"
)
