file(REMOVE_RECURSE
  "CMakeFiles/recperf_serving.dir/distributed.cc.o"
  "CMakeFiles/recperf_serving.dir/distributed.cc.o.d"
  "CMakeFiles/recperf_serving.dir/server.cc.o"
  "CMakeFiles/recperf_serving.dir/server.cc.o.d"
  "librecperf_serving.a"
  "librecperf_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recperf_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
