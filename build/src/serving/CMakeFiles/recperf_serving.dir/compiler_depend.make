# Empty compiler generated dependencies file for recperf_serving.
# This may be replaced when dependencies are built.
