file(REMOVE_RECURSE
  "CMakeFiles/recperf_ops.dir/batch_matmul.cc.o"
  "CMakeFiles/recperf_ops.dir/batch_matmul.cc.o.d"
  "CMakeFiles/recperf_ops.dir/conv.cc.o"
  "CMakeFiles/recperf_ops.dir/conv.cc.o.d"
  "CMakeFiles/recperf_ops.dir/elementwise.cc.o"
  "CMakeFiles/recperf_ops.dir/elementwise.cc.o.d"
  "CMakeFiles/recperf_ops.dir/fully_connected.cc.o"
  "CMakeFiles/recperf_ops.dir/fully_connected.cc.o.d"
  "CMakeFiles/recperf_ops.dir/half.cc.o"
  "CMakeFiles/recperf_ops.dir/half.cc.o.d"
  "CMakeFiles/recperf_ops.dir/lstm.cc.o"
  "CMakeFiles/recperf_ops.dir/lstm.cc.o.d"
  "CMakeFiles/recperf_ops.dir/op_cost.cc.o"
  "CMakeFiles/recperf_ops.dir/op_cost.cc.o.d"
  "CMakeFiles/recperf_ops.dir/quantized_embedding.cc.o"
  "CMakeFiles/recperf_ops.dir/quantized_embedding.cc.o.d"
  "CMakeFiles/recperf_ops.dir/reference.cc.o"
  "CMakeFiles/recperf_ops.dir/reference.cc.o.d"
  "CMakeFiles/recperf_ops.dir/sparse_lengths_sum.cc.o"
  "CMakeFiles/recperf_ops.dir/sparse_lengths_sum.cc.o.d"
  "librecperf_ops.a"
  "librecperf_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recperf_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
