file(REMOVE_RECURSE
  "librecperf_ops.a"
)
