
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ops/batch_matmul.cc" "src/ops/CMakeFiles/recperf_ops.dir/batch_matmul.cc.o" "gcc" "src/ops/CMakeFiles/recperf_ops.dir/batch_matmul.cc.o.d"
  "/root/repo/src/ops/conv.cc" "src/ops/CMakeFiles/recperf_ops.dir/conv.cc.o" "gcc" "src/ops/CMakeFiles/recperf_ops.dir/conv.cc.o.d"
  "/root/repo/src/ops/elementwise.cc" "src/ops/CMakeFiles/recperf_ops.dir/elementwise.cc.o" "gcc" "src/ops/CMakeFiles/recperf_ops.dir/elementwise.cc.o.d"
  "/root/repo/src/ops/fully_connected.cc" "src/ops/CMakeFiles/recperf_ops.dir/fully_connected.cc.o" "gcc" "src/ops/CMakeFiles/recperf_ops.dir/fully_connected.cc.o.d"
  "/root/repo/src/ops/half.cc" "src/ops/CMakeFiles/recperf_ops.dir/half.cc.o" "gcc" "src/ops/CMakeFiles/recperf_ops.dir/half.cc.o.d"
  "/root/repo/src/ops/lstm.cc" "src/ops/CMakeFiles/recperf_ops.dir/lstm.cc.o" "gcc" "src/ops/CMakeFiles/recperf_ops.dir/lstm.cc.o.d"
  "/root/repo/src/ops/op_cost.cc" "src/ops/CMakeFiles/recperf_ops.dir/op_cost.cc.o" "gcc" "src/ops/CMakeFiles/recperf_ops.dir/op_cost.cc.o.d"
  "/root/repo/src/ops/quantized_embedding.cc" "src/ops/CMakeFiles/recperf_ops.dir/quantized_embedding.cc.o" "gcc" "src/ops/CMakeFiles/recperf_ops.dir/quantized_embedding.cc.o.d"
  "/root/repo/src/ops/reference.cc" "src/ops/CMakeFiles/recperf_ops.dir/reference.cc.o" "gcc" "src/ops/CMakeFiles/recperf_ops.dir/reference.cc.o.d"
  "/root/repo/src/ops/sparse_lengths_sum.cc" "src/ops/CMakeFiles/recperf_ops.dir/sparse_lengths_sum.cc.o" "gcc" "src/ops/CMakeFiles/recperf_ops.dir/sparse_lengths_sum.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/recperf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/recperf_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
