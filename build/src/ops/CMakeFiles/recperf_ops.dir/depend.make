# Empty dependencies file for recperf_ops.
# This may be replaced when dependencies are built.
