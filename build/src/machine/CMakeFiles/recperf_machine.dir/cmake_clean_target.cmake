file(REMOVE_RECURSE
  "librecperf_machine.a"
)
