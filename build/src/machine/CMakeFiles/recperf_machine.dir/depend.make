# Empty dependencies file for recperf_machine.
# This may be replaced when dependencies are built.
