file(REMOVE_RECURSE
  "CMakeFiles/recperf_machine.dir/machine_spec.cc.o"
  "CMakeFiles/recperf_machine.dir/machine_spec.cc.o.d"
  "CMakeFiles/recperf_machine.dir/simd.cc.o"
  "CMakeFiles/recperf_machine.dir/simd.cc.o.d"
  "librecperf_machine.a"
  "librecperf_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recperf_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
