file(REMOVE_RECURSE
  "CMakeFiles/recperf_tensor.dir/tensor.cc.o"
  "CMakeFiles/recperf_tensor.dir/tensor.cc.o.d"
  "librecperf_tensor.a"
  "librecperf_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recperf_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
