# Empty compiler generated dependencies file for recperf_tensor.
# This may be replaced when dependencies are built.
