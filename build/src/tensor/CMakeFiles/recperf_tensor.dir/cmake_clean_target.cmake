file(REMOVE_RECURSE
  "librecperf_tensor.a"
)
