file(REMOVE_RECURSE
  "librecperf_simcache.a"
)
