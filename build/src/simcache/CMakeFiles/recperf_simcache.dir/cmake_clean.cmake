file(REMOVE_RECURSE
  "CMakeFiles/recperf_simcache.dir/cache.cc.o"
  "CMakeFiles/recperf_simcache.dir/cache.cc.o.d"
  "CMakeFiles/recperf_simcache.dir/hierarchy.cc.o"
  "CMakeFiles/recperf_simcache.dir/hierarchy.cc.o.d"
  "librecperf_simcache.a"
  "librecperf_simcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recperf_simcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
