# Empty dependencies file for recperf_simcache.
# This may be replaced when dependencies are built.
