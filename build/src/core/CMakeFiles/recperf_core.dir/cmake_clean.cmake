file(REMOVE_RECURSE
  "CMakeFiles/recperf_core.dir/args.cc.o"
  "CMakeFiles/recperf_core.dir/args.cc.o.d"
  "CMakeFiles/recperf_core.dir/logging.cc.o"
  "CMakeFiles/recperf_core.dir/logging.cc.o.d"
  "CMakeFiles/recperf_core.dir/rng.cc.o"
  "CMakeFiles/recperf_core.dir/rng.cc.o.d"
  "CMakeFiles/recperf_core.dir/stats.cc.o"
  "CMakeFiles/recperf_core.dir/stats.cc.o.d"
  "librecperf_core.a"
  "librecperf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recperf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
