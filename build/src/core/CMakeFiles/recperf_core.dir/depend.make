# Empty dependencies file for recperf_core.
# This may be replaced when dependencies are built.
