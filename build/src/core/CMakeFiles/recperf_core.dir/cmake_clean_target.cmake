file(REMOVE_RECURSE
  "librecperf_core.a"
)
