# Empty compiler generated dependencies file for recperf_model.
# This may be replaced when dependencies are built.
