file(REMOVE_RECURSE
  "librecperf_model.a"
)
