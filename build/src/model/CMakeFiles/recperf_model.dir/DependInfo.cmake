
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/config.cc" "src/model/CMakeFiles/recperf_model.dir/config.cc.o" "gcc" "src/model/CMakeFiles/recperf_model.dir/config.cc.o.d"
  "/root/repo/src/model/ncf.cc" "src/model/CMakeFiles/recperf_model.dir/ncf.cc.o" "gcc" "src/model/CMakeFiles/recperf_model.dir/ncf.cc.o.d"
  "/root/repo/src/model/proxy.cc" "src/model/CMakeFiles/recperf_model.dir/proxy.cc.o" "gcc" "src/model/CMakeFiles/recperf_model.dir/proxy.cc.o.d"
  "/root/repo/src/model/rec_model.cc" "src/model/CMakeFiles/recperf_model.dir/rec_model.cc.o" "gcc" "src/model/CMakeFiles/recperf_model.dir/rec_model.cc.o.d"
  "/root/repo/src/model/zoo.cc" "src/model/CMakeFiles/recperf_model.dir/zoo.cc.o" "gcc" "src/model/CMakeFiles/recperf_model.dir/zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ops/CMakeFiles/recperf_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/recperf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/recperf_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
