file(REMOVE_RECURSE
  "CMakeFiles/recperf_model.dir/config.cc.o"
  "CMakeFiles/recperf_model.dir/config.cc.o.d"
  "CMakeFiles/recperf_model.dir/ncf.cc.o"
  "CMakeFiles/recperf_model.dir/ncf.cc.o.d"
  "CMakeFiles/recperf_model.dir/proxy.cc.o"
  "CMakeFiles/recperf_model.dir/proxy.cc.o.d"
  "CMakeFiles/recperf_model.dir/rec_model.cc.o"
  "CMakeFiles/recperf_model.dir/rec_model.cc.o.d"
  "CMakeFiles/recperf_model.dir/zoo.cc.o"
  "CMakeFiles/recperf_model.dir/zoo.cc.o.d"
  "librecperf_model.a"
  "librecperf_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recperf_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
