file(REMOVE_RECURSE
  "librecperf_train.a"
)
