
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/trainer.cc" "src/train/CMakeFiles/recperf_train.dir/trainer.cc.o" "gcc" "src/train/CMakeFiles/recperf_train.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/recperf_model.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/recperf_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/recperf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/recperf_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
