# Empty compiler generated dependencies file for recperf_train.
# This may be replaced when dependencies are built.
