file(REMOVE_RECURSE
  "CMakeFiles/recperf_train.dir/trainer.cc.o"
  "CMakeFiles/recperf_train.dir/trainer.cc.o.d"
  "librecperf_train.a"
  "librecperf_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recperf_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
