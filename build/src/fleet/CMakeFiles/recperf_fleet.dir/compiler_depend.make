# Empty compiler generated dependencies file for recperf_fleet.
# This may be replaced when dependencies are built.
