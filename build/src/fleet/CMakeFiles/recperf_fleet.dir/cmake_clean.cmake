file(REMOVE_RECURSE
  "CMakeFiles/recperf_fleet.dir/fleet_mix.cc.o"
  "CMakeFiles/recperf_fleet.dir/fleet_mix.cc.o.d"
  "librecperf_fleet.a"
  "librecperf_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recperf_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
