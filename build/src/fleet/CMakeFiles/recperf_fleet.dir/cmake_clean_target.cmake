file(REMOVE_RECURSE
  "librecperf_fleet.a"
)
