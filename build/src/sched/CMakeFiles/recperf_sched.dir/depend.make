# Empty dependencies file for recperf_sched.
# This may be replaced when dependencies are built.
