file(REMOVE_RECURSE
  "CMakeFiles/recperf_sched.dir/scheduler.cc.o"
  "CMakeFiles/recperf_sched.dir/scheduler.cc.o.d"
  "librecperf_sched.a"
  "librecperf_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recperf_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
