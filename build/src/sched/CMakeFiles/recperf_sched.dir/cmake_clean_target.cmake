file(REMOVE_RECURSE
  "librecperf_sched.a"
)
