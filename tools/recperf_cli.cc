/**
 * @file
 * recperf — command-line driver for the RecPerf experiments.
 *
 * Subcommands:
 *   time      time one model on one machine at one batch size
 *   colocate  sweep co-located instances on a socket
 *   serve     open-loop serving simulation with SLA accounting
 *             (optionally with fault injection, admission control,
 *             and degraded-service mode; --healthy-replicas models a
 *             tier that lost replicas and must degrade earlier)
 *   shard     sharded inference under injected faults with
 *             timeout/retry and hedged requests; --replicas >= 2 adds
 *             the failover layer (health-checked replica routing,
 *             per-replica circuit breakers, recovery warm-up)
 *   trace     report the unique-ID fraction of a trace profile
 *   eval      execute the real tensor model (thread-pool hot path)
 *             and report measured throughput
 *   report    render a run report (latency percentiles, operator
 *             breakdown, cache MPKI, roofline placement, SLO burn)
 *             from saved --metrics-out/--trace-out/--timeseries-out
 *             artifacts
 *   zoo       list the model zoo and machine fleet
 *
 * The global --threads flag (or RECPERF_THREADS) sizes the worker
 * pool used by every tensor kernel. time/serve/shard/eval accept
 * --trace-out=<file> (Chrome trace-event JSON; open in Perfetto) and
 * --metrics-out=<file> (metrics-registry JSON plus a summary table).
 * --counters turns on the hardware-model telemetry (FLOPs, bytes,
 * per-level cache stats, roofline gauges) and --timeseries-out=<file>
 * additionally samples it on a fixed virtual-time cadence into JSONL
 * (--timeseries-interval-ms sets the cadence).
 *
 * Examples:
 *   recperf time --model rmc2 --machine skylake --batch 64
 *   recperf colocate --model rmc2 --machine broadwell --max-tenants 8
 *   recperf serve --model rmc1 --workers 8 --rate 50000 --sla-ms 10
 *   recperf serve --rate 80000 --admission --admit-wait 0.5 \
 *                 --straggler-prob 0.05
 *   recperf shard --model rmc2 --nodes 8 --hedge --mtbf-ms 50
 *   recperf shard --nodes 4 --replicas 2 --router p2c --hedge \
 *                 --mtbf-ms 10 --mttr-ms 1
 *   recperf trace --zipf 1.05 --repeat 0.65
 *   recperf eval --model rmc2 --batch 64 --threads 8
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "backend/compute_backend.hh"
#include "core/args.hh"
#include "core/logging.hh"
#include "core/rng.hh"
#include "core/thread_pool.hh"
#include "machine/simd.hh"
#include "model/rec_model.hh"
#include "ops/integrity.hh"
#include "ops/kernel_cache.hh"
#include "ops/microkernels.hh"
#include "obs/hw_counters.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "obs/request_log.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "resilience/deadline.hh"
#include "resilience/fault_injector.hh"
#include "resilience/policies.hh"
#include "sched/brownout.hh"
#include "serving/distributed.hh"
#include "serving/server.hh"
#include "timing/colocation.hh"
#include "timing/model_timer.hh"
#include "trace/id_generator.hh"

using namespace recperf;

namespace {

void obsBegin(ArgParser &args);
void obsEnd(ArgParser &args);

ModelConfig
modelByName(const std::string &name)
{
    for (const ModelConfig &cfg : allZooModels()) {
        if (cfg.name == name)
            return cfg;
    }
    if (name == "rmc1")
        return rmc1Small();
    if (name == "rmc2")
        return rmc2Small();
    if (name == "rmc3")
        return rmc3Small();
    if (name == "rmc3-dot")
        return rmc3Dot();
    if (name == "ncf")
        return ncfConfig();
    RP_FATAL("unknown model '%s' (try: rmc1, rmc2, rmc3, rmc3-dot, ncf, "
             "or a full zoo name)", name.c_str());
}

MachineSpec
machineByName(const std::string &name)
{
    for (const MachineSpec &m : fleetMachines()) {
        std::string lower = m.name;
        for (char &c : lower)
            c = static_cast<char>(std::tolower(c));
        if (lower == name)
            return m;
    }
    RP_FATAL("unknown machine '%s' (try: haswell, broadwell, skylake)",
             name.c_str());
}

int
cmdTime(ArgParser &args)
{
    obsBegin(args);
    ModelConfig cfg = modelByName(args.option("model"));
    MachineSpec machine = machineByName(args.option("machine"));
    TimerOptions opts;
    opts.batch = args.optionInt("batch");
    opts.zipfAlpha = args.optionDouble("zipf");
    opts.repeatProb = args.optionDouble("repeat");
    opts.backend = activeBackendConfig();

    ModelTimer timer(machine, cfg, opts);
    ModelTiming t = timer.steadyState(
        static_cast<int>(args.optionInt("iters")),
        static_cast<int>(args.optionInt("iters")));

    std::printf("%s on %s, batch %lld:\n", cfg.name.c_str(),
                machine.name.c_str(),
                static_cast<long long>(opts.batch));
    // Default cpu runs print nothing extra — their output is a
    // byte-equality anchor across the backend refactor.
    if (opts.backend.kind != BackendKind::Cpu) {
        const NmpConfig &nmp = opts.backend.nmp;
        std::printf("  backend:    %10s (%u ranks @ %.1f GB/s, link "
                    "%.1f GB/s, placement %s)\n",
                    timer.backend().name(), nmp.ranks, nmp.rankGBps,
                    nmp.linkGBps, nmpPlacementName(nmp.placement));
        double offload = 0.0;
        uint64_t transfer = 0;
        for (const OpTiming &op : t.ops) {
            offload += op.offloadSeconds;
            transfer += op.transferBytes;
        }
        std::printf("  offload:    %10.3f ms on-engine, %.1f KB over "
                    "the host link\n", offload * 1e3,
                    static_cast<double>(transfer) / 1024.0);
    }
    std::printf("  latency:    %10.3f ms\n", t.totalSeconds() * 1e3);
    std::printf("  throughput: %10.0f items/s (single core)\n",
                static_cast<double>(opts.batch) / t.totalSeconds());
    std::printf("  LLC MPKI:   %10.2f\n", t.llcMpki());
    std::printf("  breakdown:\n");
    for (const auto &[kind, secs] : t.breakdown()) {
        std::printf("    %-11s %8.3f ms (%5.1f%%)\n", opKindName(kind),
                    secs * 1e3, 100.0 * secs / t.totalSeconds());
    }
    obsEnd(args);
    return 0;
}

int
cmdColocate(ArgParser &args)
{
    ModelConfig cfg = modelByName(args.option("model"));
    MachineSpec machine = machineByName(args.option("machine"));
    auto max_tenants =
        static_cast<uint32_t>(args.optionInt("max-tenants"));
    TimerOptions opts;
    opts.batch = args.optionInt("batch");
    opts.backend = activeBackendConfig();

    std::printf("co-locating %s on %s (batch %lld):\n", cfg.name.c_str(),
                machine.name.c_str(),
                static_cast<long long>(opts.batch));
    std::printf("  %3s %12s %16s\n", "N", "latency", "throughput");
    double base = 0.0;
    for (uint32_t n = 1; n <= max_tenants; n *= 2) {
        ColocationSim sim(machine, cfg, opts, n);
        ColocationResult r = sim.run(10, 6);
        if (n == 1)
            base = r.meanLatency();
        std::printf("  %3u %9.3f ms %11.0f inf/s  (%.2fx latency)\n", n,
                    r.meanLatency() * 1e3, r.throughput(),
                    r.meanLatency() / base);
    }
    return 0;
}

/** Memory-corruption channel of the failure model (shard). */
CorruptionOptions
corruptionFromArgs(ArgParser &args)
{
    CorruptionOptions c;
    c.ratePerSec = args.optionDouble("corrupt-rate");
    c.zipfAlpha = args.optionDouble("corrupt-zipf");
    c.multiBitFraction = args.optionDouble("corrupt-multi-bit");
    c.stuckRowFraction = args.optionDouble("corrupt-stuck-row");
    c.fcFraction = args.optionDouble("corrupt-fc");
    return c;
}

/** SDC detection/recovery ladder options (shard). */
SdcOptions
sdcFromArgs(ArgParser &args)
{
    SdcOptions s;
    s.scrubIntervalSeconds = args.optionDouble("scrub-interval-ms") / 1e3;
    s.inlineSampleRate = args.optionDouble("integrity-sample");
    s.outputGuards = args.flag("integrity-guards");
    s.canaryIntervalSeconds =
        args.optionDouble("integrity-canary-ms") / 1e3;
    s.repairRttSeconds = args.optionDouble("repair-rtt-us") / 1e6;
    s.repairBandwidthGBps = args.optionDouble("repair-gbps");
    s.drainDensity = args.optionDouble("drain-density");
    return s;
}

/** Failure-model options shared by serve and shard. */
FaultOptions
faultsFromArgs(ArgParser &args)
{
    FaultOptions f;
    f.stragglerProb = args.optionDouble("straggler-prob");
    f.stragglerAlpha = args.optionDouble("straggler-alpha");
    f.stragglerMin = args.optionDouble("straggler-min");
    f.shardMtbfSeconds = args.optionDouble("mtbf-ms") / 1e3;
    f.shardMttrSeconds = args.optionDouble("mttr-ms") / 1e3;
    f.spikeRatePerSec = args.optionDouble("spike-rate");
    f.spikeDurationSeconds = args.optionDouble("spike-ms") / 1e3;
    f.spikeFactor = args.optionDouble("spike-factor");
    f.seed = static_cast<uint64_t>(args.optionInt("fault-seed"));
    f.corruption = corruptionFromArgs(args);
    return f;
}

/** Retry/hedge policies shared by the shard paths. */
RetryPolicy
retryFromArgs(ArgParser &args)
{
    RetryPolicy retry;
    retry.timeoutSeconds = args.optionDouble("timeout-ms") / 1e3;
    retry.maxRetries = static_cast<int>(args.optionInt("retries"));
    return retry;
}

HedgePolicy
hedgeFromArgs(ArgParser &args)
{
    HedgePolicy hedge;
    hedge.enabled = args.flag("hedge");
    hedge.delaySeconds = args.optionDouble("hedge-ms") / 1e3;
    return hedge;
}

ReplicaOptions
replicasFromArgs(ArgParser &args, std::string *error)
{
    ReplicaOptions r;
    int64_t replicas = args.optionInt("replicas");
    if (replicas < 1) {
        *error = strprintf("--replicas must be >= 1 (got %lld)",
                           static_cast<long long>(replicas));
        return r;
    }
    r.replicas = static_cast<uint32_t>(replicas);
    if (!routerPolicyFromName(args.option("router"), &r.router)) {
        *error = strprintf("unknown --router '%s' (try: primary-first, "
                           "least-loaded, p2c)",
                           args.option("router").c_str());
        return r;
    }
    r.breaker.errorThreshold =
        static_cast<int>(args.optionInt("breaker-errors"));
    r.breaker.openSeconds = args.optionDouble("breaker-open-ms") / 1e3;
    r.breaker.probeAdmitProb = args.optionDouble("breaker-probe");
    r.breaker.closeAfterProbes =
        static_cast<int>(args.optionInt("breaker-close-probes"));
    r.warmupSeconds = args.optionDouble("warmup-ms") / 1e3;
    r.warmupFactor = args.optionDouble("warmup-factor");
    r.seed = static_cast<uint64_t>(args.optionInt("fault-seed"));
    return r;
}

BrownoutOptions
brownoutFromArgs(ArgParser &args)
{
    BrownoutOptions b;
    b.enabled = args.flag("brownout");
    b.enterBurn = args.optionDouble("brownout-enter");
    b.escalationGrowth = args.optionDouble("brownout-growth");
    b.exitFraction = args.optionDouble("brownout-exit");
    b.dwellSeconds = args.optionDouble("brownout-dwell-ms") / 1e3;
    b.truncateFraction = args.optionDouble("brownout-truncate");
    b.skipTableFraction = args.optionDouble("brownout-skip-tables");
    return b;
}

/**
 * Rejects nonsensical serve/shard configurations (negative rates,
 * impossible retry/hedge combinations, bad replica counts) with a
 * clear message; the caller exits with code 2.
 */
std::string
validateServingArgs(ArgParser &args, const std::string &command)
{
    if (args.optionInt("items") < 1)
        return strprintf("--items must be >= 1 (got %lld)",
                         static_cast<long long>(args.optionInt("items")));
    if (args.optionInt("iters") < 1)
        return strprintf("--iters must be >= 1 (got %lld)",
                         static_cast<long long>(args.optionInt("iters")));
    if (args.optionInt("batch") < 1)
        return strprintf("--batch must be >= 1 (got %lld)",
                         static_cast<long long>(args.optionInt("batch")));

    std::string err = faultsFromArgs(args).validate();
    if (!err.empty())
        return err;
    err = validateDeadlineSeconds(args.optionDouble("deadline-ms") / 1e3);
    if (!err.empty())
        return err;
    if (args.optionDouble("mtbf-ms") > 0.0 &&
        args.optionDouble("mttr-ms") <= 0.0) {
        return strprintf("--mttr-ms must be positive when --mtbf-ms "
                         "enables shard failures (got %g)",
                         args.optionDouble("mttr-ms"));
    }
    err = obs::validateRequestLogArgs(
        static_cast<int>(args.optionInt("request-log-k")),
        args.optionDouble("request-log-window-ms") / 1e3,
        !args.option("request-log-out").empty() ||
            !args.option("exemplars-out").empty(),
        args.explicitlySet("request-log-k"),
        args.explicitlySet("request-log-window-ms"));
    if (!err.empty())
        return err;

    if (command == "serve") {
        if (args.optionDouble("rate") <= 0.0)
            return strprintf("--rate must be a positive arrival rate "
                             "(got %g items/s)",
                             args.optionDouble("rate"));
        if (args.optionDouble("sla-ms") <= 0.0)
            return strprintf("--sla-ms must be positive (got %g)",
                             args.optionDouble("sla-ms"));
        if (args.optionInt("workers") < 1)
            return strprintf("--workers must be >= 1 (got %lld)",
                             static_cast<long long>(
                                 args.optionInt("workers")));
        AdmissionOptions admission;
        admission.enabled = args.flag("admission");
        admission.maxWaitFraction = args.optionDouble("admit-wait");
        if (!(err = validateAdmissionOptions(admission)).empty())
            return err;
        DegradeOptions degrade;
        degrade.enabled = args.optionInt("degrade-batch") > 0;
        degrade.degradedMaxBatch = args.optionInt("degrade-batch");
        degrade.backlogFactor = args.optionDouble("backlog-factor");
        degrade.lowPriorityFraction = args.optionDouble("low-priority");
        if (args.optionInt("degrade-batch") < 0)
            return strprintf("--degrade-batch cannot be negative "
                             "(got %lld)",
                             static_cast<long long>(
                                 args.optionInt("degrade-batch")));
        if (!(err = validateDegradeOptions(degrade)).empty())
            return err;
        BrownoutOptions brownout = brownoutFromArgs(args);
        if (!brownout.enabled) {
            static const char *const kBrownoutKnobs[] = {
                "brownout-enter", "brownout-growth", "brownout-exit",
                "brownout-dwell-ms", "brownout-truncate",
                "brownout-skip-tables"};
            for (const char *knob : kBrownoutKnobs) {
                if (args.explicitlySet(knob)) {
                    return strprintf("--%s has no effect without "
                                     "--brownout", knob);
                }
            }
        }
        if (!(err = brownout.validate()).empty())
            return err;
        // The corruption channel and the SDC defense ladder run in the
        // sharded loop only; reject them up front like --brownout on
        // shard rather than silently ignoring the knobs.
        static const char *const kSdcKnobs[] = {
            "corrupt-rate", "corrupt-zipf", "corrupt-multi-bit",
            "corrupt-stuck-row", "corrupt-fc", "scrub-interval-ms",
            "integrity-sample", "integrity-canary-ms", "repair-rtt-us",
            "repair-gbps", "drain-density", "fault-log-out"};
        for (const char *knob : kSdcKnobs) {
            if (args.explicitlySet(knob)) {
                return strprintf("--%s applies to shard only (the SDC "
                                 "defense runs in the sharded loop)",
                                 knob);
            }
        }
        if (args.flag("integrity-guards"))
            return "--integrity-guards applies to shard only (the SDC "
                   "defense runs in the sharded loop)";
        if (args.explicitlySet("corrupt-events"))
            return "--corrupt-events applies to eval only (functional "
                   "bit flips against real tables)";
        int64_t cluster = args.optionInt("cluster-replicas");
        int64_t healthy = args.optionInt("healthy-replicas");
        if (cluster < 1)
            return strprintf("--cluster-replicas must be >= 1 "
                             "(got %lld)",
                             static_cast<long long>(cluster));
        if (healthy < 0 || healthy > cluster)
            return strprintf("--healthy-replicas must be in [0, "
                             "--cluster-replicas=%lld] (got %lld; 0 "
                             "means all healthy)",
                             static_cast<long long>(cluster),
                             static_cast<long long>(healthy));
    }

    if (command == "shard") {
        if (args.flag("brownout"))
            return "--brownout applies to serve only (shard degrades "
                   "via --deadline-ms, retries, and hedges)";
        if (args.optionInt("nodes") < 1)
            return strprintf("--nodes must be >= 1 (got %lld)",
                             static_cast<long long>(
                                 args.optionInt("nodes")));
        RetryPolicy retry = retryFromArgs(args);
        if (!(err = validateRetryPolicy(retry)).empty())
            return err;
        if (!(err = validateHedgePolicy(hedgeFromArgs(args), retry))
                 .empty())
            return err;
        // Retries that could never fire are a configuration mistake,
        // but only when the user actually asked for them.
        if (args.explicitlySet("retries") && retry.maxRetries > 0 &&
            retry.timeoutSeconds <= 0.0 &&
            args.optionDouble("mtbf-ms") <= 0.0) {
            return "--retries can never trigger with a zero "
                   "--timeout-ms and no shard failures (--mtbf-ms 0); "
                   "set a timeout, enable failures, or use --retries 0";
        }
        std::string replica_err;
        ReplicaOptions replicas = replicasFromArgs(args, &replica_err);
        if (!replica_err.empty())
            return replica_err;
        if (!(err = replicas.validate()).empty())
            return err;
        if (args.optionInt("chaos-events") < 0)
            return strprintf("--chaos-events cannot be negative "
                             "(got %lld)",
                             static_cast<long long>(
                                 args.optionInt("chaos-events")));
        if (args.optionDouble("chaos-ms") <= 0.0 &&
            args.optionInt("chaos-events") > 0) {
            return strprintf("--chaos-ms must be positive when chaos "
                             "windows are scripted (got %g)",
                             args.optionDouble("chaos-ms"));
        }
        if (args.explicitlySet("corrupt-events"))
            return "--corrupt-events applies to eval only (functional "
                   "bit flips against real tables)";
        // Sub-knobs of the corruption channel do nothing without an
        // event rate, mirroring the brownout-knob convention.
        if (args.optionDouble("corrupt-rate") <= 0.0) {
            static const char *const kCorruptKnobs[] = {
                "corrupt-zipf", "corrupt-multi-bit",
                "corrupt-stuck-row", "corrupt-fc"};
            for (const char *knob : kCorruptKnobs) {
                if (args.explicitlySet(knob)) {
                    return strprintf("--%s has no effect without "
                                     "--corrupt-rate", knob);
                }
            }
        }
        // 0 is the "off" default; an explicit rate must be usable.
        double sample = args.optionDouble("integrity-sample");
        if (args.explicitlySet("integrity-sample") &&
            (sample <= 0.0 || sample > 1.0)) {
            return strprintf("--integrity-sample must be in (0, 1] "
                             "(got %g)", sample);
        }
        if (!(err = sdcFromArgs(args).validate()).empty())
            return err;
    }
    return "";
}

/**
 * Observability plumbing shared by time/serve/shard/eval: --trace-out
 * enables the tracer for the run, --counters / --timeseries-out turn
 * on the hardware-model telemetry (and its virtual-time sampler), and
 * --metrics-out writes the drained registry as JSON (plus a summary
 * table on stdout).
 */
void
obsBegin(ArgParser &args)
{
    obs::MetricsRegistry::global().reset();
    if (!args.option("trace-out").empty()) {
        obs::Tracer::global().clear();
        obs::Tracer::global().setEnabled(true);
    }
    bool want_timeseries = !args.option("timeseries-out").empty();
    if (args.flag("counters") || want_timeseries) {
        obs::HwTelemetry::global().reset();
        obs::HwTelemetry::global().setEnabled(true);
    }
    if (want_timeseries) {
        obs::TimeSeriesOptions topts;
        topts.intervalSeconds =
            args.optionDouble("timeseries-interval-ms") / 1e3;
        obs::TimeSeriesSampler::global().configure(topts);
        obs::TimeSeriesSampler::global().setEnabled(true);
    }
    if (!args.option("request-log-out").empty() ||
        !args.option("exemplars-out").empty()) {
        obs::RequestLogOptions ropts;
        ropts.slowestK =
            static_cast<int>(args.optionInt("request-log-k"));
        ropts.windowSeconds =
            args.optionDouble("request-log-window-ms") / 1e3;
        obs::RequestLogger::global().configure(ropts);
        obs::RequestLogger::global().setEnabled(true);
    }
}

void
obsEnd(ArgParser &args)
{
    // Export telemetry into the registry before the snapshot so the
    // metrics file carries the final counter values (check_trace.py
    // cross-checks the trace's counter tracks against them). Kernel
    // counters follow the same rule: trace tracks first (while the
    // tracer is still enabled), then the matching metrics export.
    KernelCache &kcache = KernelCache::global();
    kcache.emitTraceCounters(obs::Tracer::global());
    kcache.exportMetrics(obs::MetricsRegistry::global());
    obs::HwTelemetry &telem = obs::HwTelemetry::global();
    if (telem.enabled())
        telem.exportTo(obs::MetricsRegistry::global());
    obs::TimeSeriesSampler &sampler = obs::TimeSeriesSampler::global();
    if (sampler.enabled()) {
        sampler.exportTo(obs::MetricsRegistry::global());
        const std::string &ts_path = args.option("timeseries-out");
        if (!ts_path.empty() && sampler.writeFile(ts_path)) {
            std::printf("  timeseries:    wrote %s (%zu samples)\n",
                        ts_path.c_str(), sampler.size());
        }
    }
    obs::RequestLogger &rlog = obs::RequestLogger::global();
    if (rlog.enabled()) {
        // Export before the metrics snapshot so the tail.blame.*
        // gauges land in --metrics-out; a run without logging never
        // calls exportTo, keeping its metric set byte-identical.
        rlog.exportTo(obs::MetricsRegistry::global());
        const std::string &rl_path = args.option("request-log-out");
        if (!rl_path.empty() && rlog.writeFile(rl_path)) {
            std::printf("  request log:   wrote %s (%zu records)\n",
                        rl_path.c_str(), rlog.size());
        }
        const std::string &ex_path = args.option("exemplars-out");
        if (!ex_path.empty() && rlog.writeExemplars(ex_path)) {
            std::printf("  exemplars:     wrote %s\n", ex_path.c_str());
        }
    }
    telem.setEnabled(false);
    sampler.setEnabled(false);
    rlog.setEnabled(false);

    obs::Tracer &tracer = obs::Tracer::global();
    const std::string &trace_path = args.option("trace-out");
    if (!trace_path.empty()) {
        tracer.setEnabled(false);
        if (tracer.writeFile(trace_path)) {
            std::printf("  trace:         wrote %s (%zu events)\n",
                        trace_path.c_str(), tracer.snapshot().size());
        }
    }
    const std::string &metrics_path = args.option("metrics-out");
    if (metrics_path.empty())
        return;
    obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
    std::string json = snap.toJson();
    std::FILE *f = std::fopen(metrics_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "warning: cannot write %s\n",
                     metrics_path.c_str());
    } else {
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("  metrics:       wrote %s\n", metrics_path.c_str());
    }
    std::printf("metrics summary:\n%s", snap.table().c_str());
}

int
cmdServe(ArgParser &args)
{
    obsBegin(args);
    ModelConfig cfg = modelByName(args.option("model"));
    MachineSpec machine = machineByName(args.option("machine"));
    ServerOptions sopts;
    sopts.numWorkers = static_cast<uint32_t>(args.optionInt("workers"));
    sopts.maxBatch = args.optionInt("batch");
    sopts.slaSeconds = args.optionDouble("sla-ms") / 1e3;
    sopts.admission.enabled = args.flag("admission");
    sopts.admission.maxWaitFraction = args.optionDouble("admit-wait");
    sopts.degrade.enabled = args.optionInt("degrade-batch") > 0;
    sopts.degrade.degradedMaxBatch = args.optionInt("degrade-batch");
    sopts.degrade.backlogFactor = args.optionDouble("backlog-factor");
    sopts.degrade.lowPriorityFraction = args.optionDouble("low-priority");
    sopts.clusterReplicas =
        static_cast<uint32_t>(args.optionInt("cluster-replicas"));
    sopts.healthyReplicas =
        static_cast<uint32_t>(args.optionInt("healthy-replicas"));
    sopts.deadlineSeconds = args.optionDouble("deadline-ms") / 1e3;
    sopts.brownout = brownoutFromArgs(args);
    FaultOptions faults = faultsFromArgs(args);
    faults.shardMtbfSeconds = 0.0; // shard failures only apply to shard
    sopts.faults = faults;

    TimerOptions topts;
    topts.backend = activeBackendConfig();
    Server server(machine, cfg, topts, sopts);
    ServingStats stats = server.runOpenLoop(
        args.optionDouble("rate"),
        static_cast<uint64_t>(args.optionInt("items")));

    std::printf("serving %s on %s: %u workers, max batch %lld, SLA "
                "%.1f ms\n", cfg.name.c_str(), machine.name.c_str(),
                sopts.numWorkers, static_cast<long long>(sopts.maxBatch),
                sopts.slaSeconds * 1e3);
    if (sopts.clusterReplicas > 1) {
        uint32_t healthy = sopts.healthyReplicas == 0
            ? sopts.clusterReplicas : sopts.healthyReplicas;
        std::printf("  tier health:   %10u of %u replicas (overload "
                    "responses arm %.1fx earlier)\n", healthy,
                    sopts.clusterReplicas,
                    static_cast<double>(sopts.clusterReplicas) / healthy);
    }
    std::printf("  offered rate:  %10.0f items/s\n",
                args.optionDouble("rate"));
    if (sopts.deadlineSeconds > 0.0) {
        std::printf("  deadline:      %10.1f ms budget%s\n",
                    sopts.deadlineSeconds * 1e3,
                    sopts.brownout.enabled ? ", brownout ladder armed"
                                           : "");
    }
    stats.exportTo(obs::MetricsRegistry::global());
    std::fputs(ServingStats::summarize(
                   obs::MetricsRegistry::global().snapshot())
                   .c_str(),
               stdout);
    obsEnd(args);
    return 0;
}

void
printResilientResult(const ResilientShardedResult &r)
{
    std::printf("  completed:     %10llu inferences (%.2f%% "
                "availability)\n",
                static_cast<unsigned long long>(r.completed),
                r.availability() * 100);
    std::printf("  failed:        %10llu (retry exhaustion)\n",
                static_cast<unsigned long long>(r.failed));
    if (r.deadlineExpired || r.deadlineFastFails) {
        std::printf("  deadline-shed: %10llu cancelled (%llu fail-fast "
                    "skips)\n",
                    static_cast<unsigned long long>(r.deadlineExpired),
                    static_cast<unsigned long long>(r.deadlineFastFails));
    }
    std::printf("  latency p50:   %10.3f ms\n", r.latency.p(50) * 1e3);
    std::printf("  latency p99:   %10.3f ms\n", r.latency.p(99) * 1e3);
    std::printf("  goodput:       %10.0f inf/s\n", r.goodput());
    std::printf("  hedges:        %10llu issued, %llu won\n",
                static_cast<unsigned long long>(r.hedgesIssued),
                static_cast<unsigned long long>(r.hedgeWins));
    std::printf("  retries:       %10llu (%llu timeouts, %llu down "
                "shards)\n",
                static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.timeouts),
                static_cast<unsigned long long>(r.shardDownEncounters));
    std::printf("  hedge cost:    %10.3f ms compute, %.1f KB network\n",
                r.hedgeExtraSeconds * 1e3, r.hedgeExtraBytes / 1024.0);
    std::printf("  wasted:        %10.3f ms (timeouts + failures)\n",
                r.wastedSeconds * 1e3);
}

/** SDC defense summary; silent when no controller ran. */
void
printSdcSummary(const RunResult &r)
{
    if (!r.sdc.active)
        return;
    const SdcStats &s = r.sdc;
    std::printf("  integrity:     %llu row + %llu FC corruptions, %llu "
                "detected (%llu scrub, %llu inline, %llu guard, %llu "
                "canary)\n",
                static_cast<unsigned long long>(s.injectedRows),
                static_cast<unsigned long long>(s.injectedFc),
                static_cast<unsigned long long>(s.detected),
                static_cast<unsigned long long>(s.detectedScrub),
                static_cast<unsigned long long>(s.detectedInline),
                static_cast<unsigned long long>(s.detectedGuard),
                static_cast<unsigned long long>(s.detectedCanary));
    std::printf("  quarantine:    %llu rows quarantined, %llu repairs, "
                "%llu rehydrates (%llu rows wiped)\n",
                static_cast<unsigned long long>(s.quarantinedRows),
                static_cast<unsigned long long>(s.repairs),
                static_cast<unsigned long long>(s.rehydrates),
                static_cast<unsigned long long>(s.rowsRehydrated));
    std::printf("  escapes:       %llu corrupted responses served, "
                "%llu degraded\n",
                static_cast<unsigned long long>(s.corruptedServed),
                static_cast<unsigned long long>(s.degradedServed));
    if (!s.detectionLatency.empty()) {
        std::printf("  detection:     %10.3f ms p50, %.3f ms p99 "
                    "injection-to-detection\n",
                    s.detectionLatency.p(50.0) * 1e3,
                    s.detectionLatency.p(99.0) * 1e3);
    }
}

/** Write the reproducibility fault log when --fault-log-out is set. */
void
writeFaultLog(ArgParser &args, const FaultLog &log)
{
    const std::string &path = args.option("fault-log-out");
    if (path.empty())
        return;
    log.writeFile(path);
    std::printf("  fault log:     wrote %s (%zu events)\n", path.c_str(),
                log.size());
}

int
cmdShard(ArgParser &args)
{
    obsBegin(args);
    ModelConfig cfg = modelByName(args.option("model"));
    MachineSpec machine = machineByName(args.option("machine"));
    TimerOptions topts;
    topts.batch = args.optionInt("batch");
    topts.backend = activeBackendConfig();
    auto nodes = static_cast<uint32_t>(args.optionInt("nodes"));
    int iters = static_cast<int>(args.optionInt("iters"));

    FaultOptions faults = faultsFromArgs(args);
    RetryPolicy retry = retryFromArgs(args);
    HedgePolicy hedge = hedgeFromArgs(args);
    std::string replica_err;
    ReplicaOptions replicas = replicasFromArgs(args, &replica_err);
    RP_ASSERT(replica_err.empty(), "%s", replica_err.c_str());

    ShardedInference sim(machine, cfg, nodes, NetworkConfig{}, topts);

    std::printf("sharded %s on %u x %s, batch %lld (straggler p=%.2f, "
                "MTBF %.0f ms, hedge %s)\n", cfg.name.c_str(), nodes,
                machine.name.c_str(),
                static_cast<long long>(topts.batch),
                faults.stragglerProb, faults.shardMtbfSeconds * 1e3,
                hedge.enabled ? "on" : "off");

    RunOptions ropts;
    ropts.warmupIters = 20;
    ropts.measureIters = iters;
    // Redundant with topts.backend for the CLI, but exercises the
    // run-level override every embedding client can use.
    ropts.backend = activeBackendConfig();
    ropts.faults = faults;
    ropts.retry = retry;
    ropts.hedge = hedge;
    ropts.deadlineSeconds = args.optionDouble("deadline-ms") / 1e3;
    if (ropts.deadlineSeconds > 0.0) {
        std::printf("  deadline:      %10.1f ms budget per inference\n",
                    ropts.deadlineSeconds * 1e3);
    }
    ropts.sdc = sdcFromArgs(args);
    FaultLog fault_log;
    if (!args.option("fault-log-out").empty())
        ropts.faultLog = &fault_log;
    if (faults.corruption.enabled() || ropts.sdc.anyDefense()) {
        std::printf("  sdc:           %.1f corruptions/s, scrub %.1f ms, "
                    "inline %.2f, guards %s, canary %.1f ms\n",
                    faults.corruption.ratePerSec,
                    ropts.sdc.scrubIntervalSeconds * 1e3,
                    ropts.sdc.inlineSampleRate,
                    ropts.sdc.outputGuards ? "on" : "off",
                    ropts.sdc.canaryIntervalSeconds * 1e3);
    }

    ChaosSchedule chaos;
    auto chaos_events =
        static_cast<uint32_t>(args.optionInt("chaos-events"));
    if (replicas.replicas <= 1) {
        // Single-copy path: PR-1 mitigations only (a hedge assumes an
        // implicit spare replica). `ropts.replicas` stays disengaged.
        RunResult r = sim.run(ropts);
        printResilientResult(r);
        printSdcSummary(r);
        writeFaultLog(args, fault_log);
        r.exportTo(obs::MetricsRegistry::global());
        obsEnd(args);
        return 0;
    }

    ropts.replicas = replicas;
    if (chaos_events > 0) {
        // Horizon heuristic: virtual time advances by roughly one
        // per-inference latency per iteration; scale from the SLA-ish
        // chaos window length instead of pre-timing the model.
        double horizon = static_cast<double>(iters) *
            args.optionDouble("chaos-ms") / 1e3;
        chaos = ChaosSchedule::random(
            faults.seed, nodes, replicas.replicas, horizon, chaos_events,
            args.optionDouble("chaos-ms") / 1e3);
        ropts.chaos = &chaos;
    }

    RunResult r = sim.run(ropts);

    std::printf("  failover layer: %u replicas/shard, router %s, "
                "breaker %d errors -> open %.1f ms, warm-up %.2fx over "
                "%.1f ms%s\n", replicas.replicas,
                routerPolicyName(replicas.router),
                replicas.breaker.errorThreshold,
                replicas.breaker.openSeconds * 1e3, r.warmupFactorUsed,
                replicas.warmupSeconds * 1e3,
                chaos_events > 0
                    ? strprintf(", %u chaos windows", chaos_events)
                        .c_str()
                    : "");
    printResilientResult(r);
    std::printf("  failovers:     %10llu served by a backup replica\n",
                static_cast<unsigned long long>(r.failovers));
    if (r.replicaSkips) {
        std::printf("  replica skips: %10llu EWMA over the remaining "
                    "deadline budget\n",
                    static_cast<unsigned long long>(r.replicaSkips));
    }
    std::printf("  breakers:      %10llu opened, %llu re-closed, %llu "
                "probes, %llu all-open rejects\n",
                static_cast<unsigned long long>(r.breakerOpens),
                static_cast<unsigned long long>(r.breakerCloses),
                static_cast<unsigned long long>(r.probesAdmitted),
                static_cast<unsigned long long>(r.breakerRejects));
    std::printf("  warm-up cost:  %10.3f ms re-filling recovered "
                "replicas' caches\n", r.warmupPenaltySeconds * 1e3);
    printSdcSummary(r);
    writeFaultLog(args, fault_log);
    r.exportTo(obs::MetricsRegistry::global());
    obsEnd(args);
    return 0;
}

int
cmdEval(ArgParser &args)
{
    // Unlike `time` (the calibrated timing model), this executes the
    // real tensor graph on the thread pool and reports wall-clock
    // throughput — the honest hot path the execution engine serves.
    ModelConfig cfg =
        modelByName(args.option("model"))
            .functionalScale(args.optionInt("rows-cap"));
    int64_t batch = args.optionInt("batch");
    int iters = static_cast<int>(args.optionInt("iters"));
    Rng rng(static_cast<uint64_t>(args.optionInt("seed")));
    RecModel model(cfg, rng);
    ModelInput input = model.randomInput(batch, rng);

    // Functional integrity: shield the real tables with per-row
    // checksums, optionally flip seeded bits into them, and let the
    // inline SLS hook detect and repair whatever the fixed input
    // actually gathers. With --integrity-sample alone the output
    // checksum is bit-identical to an unshielded run.
    double sample = args.optionDouble("integrity-sample");
    int64_t flips = args.optionInt("corrupt-events");
    if (args.explicitlySet("integrity-sample") &&
        (sample <= 0.0 || sample > 1.0)) {
        std::fprintf(stderr, "error: --integrity-sample must be in "
                             "(0, 1] (got %g)\n", sample);
        return 2;
    }
    if (flips < 0) {
        std::fprintf(stderr, "error: --corrupt-events cannot be "
                             "negative (got %lld)\n",
                     static_cast<long long>(flips));
        return 2;
    }
    if (flips > 0 && sample <= 0.0) {
        std::fprintf(stderr, "error: --corrupt-events needs "
                             "--integrity-sample to detect and repair "
                             "the flips\n");
        return 2;
    }
    std::vector<std::unique_ptr<IntegrityShield>> shields;
    if (sample > 0.0) {
        IntegrityRuntime &integrity = IntegrityRuntime::global();
        integrity.configure(sample, /*repair_on_detect=*/true);
        std::vector<EmbeddingTable> &tables = model.tables();
        for (size_t t = 0; t < tables.size(); ++t) {
            shields.push_back(std::make_unique<IntegrityShield>(
                IntegrityShield::forTable(tables[t],
                                          strprintf("table%zu", t))));
            shields.back()->seal();
            integrity.attach(&tables[t], shields.back().get());
        }
        if (flips > 0) {
            Rng corrupt_rng(
                static_cast<uint64_t>(args.optionInt("fault-seed")) ^
                0x5dc0ffeeb5ULL);
            for (int64_t i = 0; i < flips; ++i) {
                size_t t = static_cast<size_t>(
                    corrupt_rng.nextBelow(shields.size()));
                int64_t row = static_cast<int64_t>(corrupt_rng.nextBelow(
                    static_cast<uint64_t>(shields[t]->rows())));
                uint64_t bit = corrupt_rng.nextBelow(
                    static_cast<uint64_t>(shields[t]->rowBytes()) * 8);
                shields[t]->flipBit(row, bit);
            }
        }
        integrity.setEnabled(true);
    }

    for (int i = 0; i < 2; ++i)
        (void)model.forward(input); // warm-up
    obsBegin(args);
    obs::LatencyHistogram batch_hist =
        obs::MetricsRegistry::global().histogram("eval.batch_seconds");
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
        auto it0 = std::chrono::steady_clock::now();
        (void)model.forward(input);
        batch_hist.record(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - it0)
                              .count());
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count() /
        static_cast<double>(iters);
    obs::MetricsRegistry::global()
        .gauge("eval.throughput_items_per_s")
        .set(static_cast<double>(batch) / secs);

    std::printf("eval %s (rows capped at %lld), batch %lld, "
                "%d threads:\n",
                cfg.name.c_str(),
                static_cast<long long>(args.optionInt("rows-cap")),
                static_cast<long long>(batch), globalThreadCount());
    std::printf("  latency:    %10.3f ms / batch (measured)\n",
                secs * 1e3);
    std::printf("  throughput: %10.0f items/s\n",
                static_cast<double>(batch) / secs);
    // FNV-1a over the final forward's output bytes: with a pinned
    // --isa this line is bit-identical across thread counts and cache
    // cold/warm runs (CI diffs it as the determinism anchor).
    Tensor out = model.forward(input);
    const unsigned char *bytes =
        reinterpret_cast<const unsigned char *>(out.data());
    uint64_t hash = 0xcbf29ce484222325ULL;
    for (size_t i = 0; i < static_cast<size_t>(out.size()) * sizeof(float);
         ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    std::printf("  checksum:   %016llx (isa %s)\n",
                static_cast<unsigned long long>(hash),
                KernelCache::global().policy().autoSelect
                    ? "auto"
                    : kernelIsaName(
                          KernelCache::global().policy().pinned));
    if (sample > 0.0) {
        IntegrityRuntime &integrity = IntegrityRuntime::global();
        integrity.exportTo(obs::MetricsRegistry::global());
        std::printf("  integrity:  %llu/%llu batches verified, %llu "
                    "corruptions detected, %llu rows repaired\n",
                    static_cast<unsigned long long>(
                        integrity.batchesVerified()),
                    static_cast<unsigned long long>(
                        integrity.batchesSeen()),
                    static_cast<unsigned long long>(
                        integrity.corruptionsDetected()),
                    static_cast<unsigned long long>(
                        integrity.rowsRepaired()));
        integrity.reset();
    }
    if (args.flag("dump-kernel-cache"))
        std::fputs(KernelCache::global().dumpTable().c_str(), stdout);
    obsEnd(args);
    return 0;
}

int
cmdTrace(ArgParser &args)
{
    TraceProfile profile{"cli", args.optionDouble("zipf"),
                         args.optionDouble("repeat"), 8192};
    Rng rng(static_cast<uint64_t>(args.optionInt("seed")));
    auto gen = makeGenerator(profile, args.optionInt("rows"),
                             rng.split());
    auto trace = gen->draw(
        static_cast<size_t>(args.optionInt("items")));
    std::printf("trace: zipf alpha %.2f, repeat prob %.2f over %lld "
                "rows\n", profile.zipfAlpha, profile.repeatProb,
                static_cast<long long>(args.optionInt("rows")));
    std::printf("  unique sparse IDs: %.1f%% of %zu draws\n",
                uniqueFraction(trace) * 100.0, trace.size());
    return 0;
}

/** Slurp a whole file; false (with a message in @p err) on failure. */
bool
readFile(const std::string &path, std::string *out, std::string *err)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        *err = strprintf("cannot read %s", path.c_str());
        return false;
    }
    out->clear();
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out->append(buf, n);
    std::fclose(f);
    return true;
}

int
cmdReport(ArgParser &args)
{
    obs::ReportInputs inputs;
    std::string err;
    const struct
    {
        const char *flag;
        std::string *dst;
    } sources[] = {{"metrics", &inputs.metricsJson},
                   {"trace", &inputs.traceJson},
                   {"timeseries", &inputs.timeseriesJsonl}};
    bool any = false;
    for (const auto &src : sources) {
        const std::string &path = args.option(src.flag);
        if (path.empty())
            continue;
        if (!readFile(path, src.dst, &err)) {
            std::fprintf(stderr, "error: %s\n", err.c_str());
            return 2;
        }
        any = true;
    }
    if (!any) {
        std::fprintf(stderr,
                     "error: report needs at least one artifact "
                     "(--metrics, --trace, and/or --timeseries)\n");
        return 2;
    }
    std::string report = obs::renderReport(inputs, err);
    if (report.empty()) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 1;
    }
    std::fputs(report.c_str(), stdout);
    return 0;
}

int
cmdExplain(ArgParser &args)
{
    obs::ExplainInputs inputs;
    std::string err;
    const std::string &log_path = args.option("request-log");
    if (log_path.empty()) {
        std::fprintf(stderr,
                     "error: explain needs --request-log FILE (a "
                     "serve/shard --request-log-out artifact); join a "
                     "--metrics export to cross-check the blame "
                     "gauges\n");
        return 2;
    }
    if (!readFile(log_path, &inputs.requestLogJsonl, &err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 2;
    }
    const std::string &metrics_path = args.option("metrics");
    if (!metrics_path.empty() &&
        !readFile(metrics_path, &inputs.metricsJson, &err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 2;
    }
    if (args.optionInt("top") < 1) {
        std::fprintf(stderr,
                     "error: --top must be >= 1 (got %lld)\n",
                     static_cast<long long>(args.optionInt("top")));
        return 2;
    }
    inputs.top = static_cast<int>(args.optionInt("top"));
    std::string view = obs::renderExplain(inputs, err);
    if (view.empty()) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 1;
    }
    std::fputs(view.c_str(), stdout);
    return 0;
}

int
cmdZoo()
{
    std::printf("model zoo:\n");
    for (const ModelConfig &cfg : allZooModels()) {
        std::printf("  %-12s %2lld tables x %8lld rows, %3lld lookups, "
                    "%6.2f GB emb, %8.2fM FC params\n", cfg.name.c_str(),
                    static_cast<long long>(cfg.emb.numTables),
                    static_cast<long long>(cfg.emb.rowsPerTable),
                    static_cast<long long>(cfg.emb.lookupsPerTable),
                    cfg.embStorageBytes() / 1e9,
                    cfg.fcParamCount() / 1e6);
    }
    std::printf("machines:\n");
    for (const MachineSpec &m : fleetMachines()) {
        std::printf("  %-10s %.1f GHz, %2u cores/socket, %s, L3 %.1f MB "
                    "(%s), %s\n", m.name.c_str(), m.freqGHz,
                    m.coresPerSocket, simdIsaName(m.simd.isa),
                    m.l3.sizeBytes / 1024.0 / 1024.0,
                    m.policy == InclusionPolicy::Inclusive ? "inclusive"
                                                           : "exclusive",
                    m.dram.ddrType.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> raw(argv + 1, argv + argc);
    std::string command = raw.empty() ? "help" : raw.front();
    std::vector<std::string> rest(raw.begin() + (raw.empty() ? 0 : 1),
                                  raw.end());

    ArgParser args("recperf " + command,
                   "RecPerf experiment driver (HPCA'20 reproduction)");
    args.addOption("model", "rmc1", "model: rmc1|rmc2|rmc3|rmc3-dot|ncf");
    args.addOption("machine", "broadwell",
                   "machine: haswell|broadwell|skylake");
    args.addOption("batch", "16", "batch size / max serving batch");
    args.addOption("iters", "20", "measured iterations");
    args.addOption("max-tenants", "8", "co-location sweep upper bound");
    args.addOption("workers", "4", "serving workers");
    args.addOption("rate", "10000", "offered items/s (serve)");
    args.addOption("items", "20000", "items to simulate");
    args.addOption("sla-ms", "10", "SLA in milliseconds");
    args.addOption("zipf", "1.1", "trace popularity skew");
    args.addOption("repeat", "0.5", "trace re-reference probability");
    args.addOption("rows", "2000000", "embedding rows (trace)");
    args.addOption("seed", "42", "random seed");
    args.addOption("threads", "0",
                   "tensor-op worker threads (0 = RECPERF_THREADS or "
                   "hardware)");
    args.addOption("backend", "cpu",
                   "compute backend: cpu|nmp (overrides "
                   "RECPERF_BACKEND; nmp offloads SparseLengthsSum to "
                   "a near-memory engine)");
    args.addOption("isa", "auto",
                   "kernel ISA tier: scalar|avx2|avx512|auto "
                   "(overrides RECPERF_ISA; pinned tiers are "
                   "bit-deterministic; part of the backend spec)");
    args.addOption("nmp-ranks", "8",
                   "PIM-enabled memory ranks (nmp backend)");
    args.addOption("nmp-rank-gbps", "9.6",
                   "in-rank gather bandwidth per rank, GB/s (nmp)");
    args.addOption("nmp-row-ns", "50",
                   "per-row in-rank access latency, ns (nmp)");
    args.addOption("nmp-link-gbps", "12",
                   "host<->PIM link bandwidth, GB/s (nmp)");
    args.addOption("nmp-launch-us", "2",
                   "per-offloaded-op launch round trip, us (nmp)");
    args.addOption("nmp-placement", "auto",
                   "which tables offload: auto|all|none (nmp)");
    args.addOption("nmp-min-table-kb", "1024",
                   "auto placement: smaller tables stay on host (nmp)");
    args.addOption("nmp-host-llc-frac", "0.5",
                   "auto placement: tables within this fraction of "
                   "the LLC share stay on host (nmp)");
    args.addFlag("dump-kernel-cache",
                 "print the memoized kernel table after eval");
    args.addOption("rows-cap", "4096",
                   "embedding rows cap for eval's functional model");
    args.addOption("nodes", "4", "shard nodes (shard)");
    args.addOption("straggler-prob", "0", "straggler probability");
    args.addOption("straggler-alpha", "1.5", "straggler pareto shape");
    args.addOption("straggler-min", "2", "minimum straggler slowdown");
    args.addOption("mtbf-ms", "0", "shard mean time between failures");
    args.addOption("mttr-ms", "10", "shard mean time to repair");
    args.addOption("spike-rate", "0", "load spikes per second");
    args.addOption("spike-ms", "5", "load spike duration");
    args.addOption("spike-factor", "2", "slowdown during a spike");
    args.addOption("fault-seed", "2020", "failure-model seed");
    args.addOption("timeout-ms", "0", "per-shard timeout (0 = none)");
    args.addOption("retries", "2", "max retries per shard request");
    args.addFlag("hedge", "hedge slow shard requests to a replica");
    args.addOption("hedge-ms", "0", "hedge delay (0 = auto p95)");
    args.addOption("replicas", "1",
                   "replicas per shard (>= 2 enables failover)");
    args.addOption("router", "primary-first",
                   "replica router: primary-first|least-loaded|p2c");
    args.addOption("breaker-errors", "3",
                   "consecutive errors tripping a replica's breaker");
    args.addOption("breaker-open-ms", "0.5",
                   "breaker cooldown before half-open");
    args.addOption("breaker-probe", "0.7",
                   "half-open probe admission probability");
    args.addOption("breaker-close-probes", "2",
                   "probe successes that re-close a breaker");
    args.addOption("warmup-ms", "2",
                   "post-recovery warm-up window (cold caches)");
    args.addOption("warmup-factor", "0",
                   "post-recovery slowdown (0 = measured cold/steady)");
    args.addOption("chaos-events", "0",
                   "scripted chaos windows over the run (shard)");
    args.addOption("chaos-ms", "5", "mean chaos window duration");
    args.addOption("corrupt-rate", "0",
                   "memory-corruption events per second (shard; 0 = "
                   "off)");
    args.addOption("corrupt-zipf", "1.05",
                   "corruption row-targeting skew (0 = uniform)");
    args.addOption("corrupt-multi-bit", "0.2",
                   "fraction of corruptions flipping multiple bits");
    args.addOption("corrupt-stuck-row", "0.1",
                   "fraction of corruptions sticking a whole row at 1s");
    args.addOption("corrupt-fc", "0",
                   "fraction of corruptions hitting FC weights");
    args.addOption("scrub-interval-ms", "0",
                   "background checksum scrub full-sweep period (shard; "
                   "0 = off)");
    args.addOption("integrity-sample", "0",
                   "inline-verified fraction of lookup batches, (0, 1] "
                   "(shard|eval; 0 = off)");
    args.addFlag("integrity-guards",
                 "NaN/inf/range + checksum output guards at the "
                 "aggregation boundary (shard)");
    args.addOption("integrity-canary-ms", "0",
                   "canary-query period with golden outputs (shard; "
                   "0 = off)");
    args.addOption("repair-rtt-us", "200",
                   "parameter-store round trip per row re-fetch");
    args.addOption("repair-gbps", "1",
                   "parameter-store transfer bandwidth");
    args.addOption("drain-density", "0",
                   "corrupted-row density escalating a replica to "
                   "drain + rehydrate (0 = off)");
    args.addOption("fault-log-out", "",
                   "write every injected fault event as JSONL (shard)");
    args.addOption("corrupt-events", "0",
                   "seeded bit flips injected into eval's real tables "
                   "(eval; needs --integrity-sample)");
    args.addOption("cluster-replicas", "1",
                   "replicas backing the serving tier (serve)");
    args.addOption("healthy-replicas", "0",
                   "healthy replicas in the tier (0 = all)");
    args.addOption("trace-out", "",
                   "write a Chrome trace-event JSON of the run "
                   "(serve|shard|eval)");
    args.addOption("metrics-out", "",
                   "write the metrics registry as JSON and print the "
                   "summary table (serve|shard|eval)");
    args.addFlag("counters",
                 "collect hardware-model telemetry (FLOPs, bytes, "
                 "cache stats, roofline gauges)");
    args.addOption("timeseries-out", "",
                   "sample telemetry/SLO burn on a virtual-time "
                   "cadence and write JSONL (implies --counters)");
    args.addOption("timeseries-interval-ms", "10",
                   "virtual-time sampling cadence for "
                   "--timeseries-out");
    args.addOption("request-log-out", "",
                   "write one causal JSON record per request as JSONL "
                   "(serve|shard)");
    args.addOption("exemplars-out", "",
                   "write the slowest-k + per-decile exemplar records "
                   "as JSONL (serve|shard)");
    args.addOption("request-log-k", "4",
                   "slowest-k exemplar reservoir size "
                   "(--request-log-out)");
    args.addOption("request-log-window-ms", "0",
                   "slowest-k trailing window in virtual ms (0 = whole "
                   "run)");
    args.addOption("metrics", "",
                   "metrics JSON artifact to render (report|explain)");
    args.addOption("trace", "",
                   "trace JSON artifact to render (report)");
    args.addOption("timeseries", "",
                   "timeseries JSONL artifact to render (report)");
    args.addOption("request-log", "",
                   "request-log JSONL artifact to attribute (explain)");
    args.addOption("top", "4",
                   "slowest exemplar timelines to render (explain)");
    args.addFlag("admission", "shed items whose wait blows the SLA");
    args.addOption("admit-wait", "0.5", "sheddable wait as SLA fraction");
    args.addOption("degrade-batch", "0",
                   "degraded-mode batch cap (0 = off)");
    args.addOption("backlog-factor", "2",
                   "backlog (in max batches) triggering degraded mode");
    args.addOption("deadline-ms", "0",
                   "per-item deadline budget (serve|shard; 0 = off)");
    args.addFlag("brownout",
                 "enable the SLO-driven brownout ladder (serve)");
    args.addOption("brownout-enter", "4",
                   "short-window burn rate entering ladder level 1");
    args.addOption("brownout-growth", "2",
                   "entry-threshold growth per ladder level");
    args.addOption("brownout-exit", "0.5",
                   "de-escalate below this fraction of the entry "
                   "threshold (hysteresis)");
    args.addOption("brownout-dwell-ms", "20",
                   "minimum time between ladder transitions");
    args.addOption("brownout-truncate", "0.5",
                   "candidate-set fraction kept at level >= 1");
    args.addOption("brownout-skip-tables", "0.5",
                   "SLS work fraction skipped at level 2");
    args.addOption("low-priority", "0.2",
                   "fraction of items droppable when degraded");
    args.addFlag("help", "show this help");

    std::string error;
    if (!args.parse(rest, &error)) {
        std::fprintf(stderr, "error: %s\n%s", error.c_str(),
                     args.helpText().c_str());
        return 2;
    }
    if (command == "help" || args.flag("help")) {
        std::printf("usage: recperf <time|colocate|serve|shard|trace|"
                    "eval|report|explain|zoo> [options]\n\n%s",
                    args.helpText().c_str());
        return 0;
    }

    if (args.optionInt("threads") > 0)
        setGlobalThreadCount(static_cast<int>(args.optionInt("threads")));

    // Resolve the backend spec up front — backend family and kernel
    // ISA tier are one validated unit (flag > env > default for each
    // component) — and fail fast with exit 2, like every other
    // argument error, before any kernel runs. Both sources are
    // validated: a bad env var is an error even when an explicit flag
    // would override it.
    {
        std::string backend_name = args.option("backend");
        if (const char *env = std::getenv("RECPERF_BACKEND")) {
            if (!backendKindFromName(env, nullptr)) {
                std::fprintf(stderr,
                             "error: RECPERF_BACKEND: unknown backend "
                             "'%s' (expected cpu|nmp)\n", env);
                return 2;
            }
            if (!args.explicitlySet("backend"))
                backend_name = env;
        }
        std::string isa_name = args.option("isa");
        if (const char *env = std::getenv("RECPERF_ISA")) {
            IsaPolicy probe;
            std::string env_err = isaPolicyFromName(env, &probe);
            if (!env_err.empty()) {
                std::fprintf(stderr, "error: RECPERF_ISA: %s\n",
                             env_err.c_str());
                return 2;
            }
            if (!args.explicitlySet("isa"))
                isa_name = env;
        }
        BackendConfig backend;
        std::string err =
            backendConfigFromSpec(backend_name, isa_name, &backend);
        if (!err.empty()) {
            std::fprintf(stderr, "error: --backend/--isa: %s\n",
                         err.c_str());
            return 2;
        }

        // NMP knobs only make sense against the nmp backend; a knob on
        // a cpu run is a spec error, not something to silently ignore.
        static const char *kNmpKnobs[] = {
            "nmp-ranks", "nmp-rank-gbps", "nmp-row-ns", "nmp-link-gbps",
            "nmp-launch-us", "nmp-placement", "nmp-min-table-kb",
            "nmp-host-llc-frac"};
        if (backend.kind != BackendKind::Nmp) {
            for (const char *knob : kNmpKnobs) {
                if (args.explicitlySet(knob)) {
                    std::fprintf(stderr,
                                 "error: --%s requires --backend=nmp\n",
                                 knob);
                    return 2;
                }
            }
        } else {
            backend.nmp.ranks =
                static_cast<uint32_t>(args.optionInt("nmp-ranks"));
            backend.nmp.rankGBps = args.optionDouble("nmp-rank-gbps");
            backend.nmp.rowAccessNs = args.optionDouble("nmp-row-ns");
            backend.nmp.linkGBps = args.optionDouble("nmp-link-gbps");
            backend.nmp.launchUs = args.optionDouble("nmp-launch-us");
            backend.nmp.minTableBytes =
                static_cast<uint64_t>(
                    args.optionInt("nmp-min-table-kb")) * 1024;
            backend.nmp.hostLlcFraction =
                args.optionDouble("nmp-host-llc-frac");
            if (!nmpPlacementFromName(args.option("nmp-placement"),
                                      &backend.nmp.placement)) {
                std::fprintf(stderr,
                             "error: --nmp-placement: unknown policy "
                             "'%s' (expected auto|all|none)\n",
                             args.option("nmp-placement").c_str());
                return 2;
            }
            err = backend.nmp.validate();
            if (!err.empty()) {
                std::fprintf(stderr, "error: --backend=nmp: %s\n",
                             err.c_str());
                return 2;
            }
        }
        setActiveBackend(backend);
    }

    try {
        if (command == "serve" || command == "shard") {
            std::string invalid = validateServingArgs(args, command);
            if (!invalid.empty()) {
                std::fprintf(stderr, "error: %s\n", invalid.c_str());
                return 2;
            }
        } else {
            // The request log records the serving lanes only; on any
            // other command the knobs would silently do nothing.
            static const char *const kRlogKnobs[] = {
                "request-log-out", "exemplars-out", "request-log-k",
                "request-log-window-ms"};
            for (const char *knob : kRlogKnobs) {
                if (args.explicitlySet(knob)) {
                    std::fprintf(stderr,
                                 "error: --%s applies to serve and "
                                 "shard only (the request log records "
                                 "the serving lanes)\n", knob);
                    return 2;
                }
            }
        }
        if (command == "time")
            return cmdTime(args);
        if (command == "colocate")
            return cmdColocate(args);
        if (command == "serve")
            return cmdServe(args);
        if (command == "shard")
            return cmdShard(args);
        if (command == "trace")
            return cmdTrace(args);
        if (command == "eval")
            return cmdEval(args);
        if (command == "report")
            return cmdReport(args);
        if (command == "explain")
            return cmdExplain(args);
        if (command == "zoo")
            return cmdZoo();
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }

    std::fprintf(stderr, "unknown command '%s'; try: recperf help\n",
                 command.c_str());
    return 2;
}
