/**
 * @file
 * recperf — command-line driver for the RecPerf experiments.
 *
 * Subcommands:
 *   time      time one model on one machine at one batch size
 *   colocate  sweep co-located instances on a socket
 *   serve     open-loop serving simulation with SLA accounting
 *             (optionally with fault injection, admission control,
 *             and degraded-service mode)
 *   shard     sharded inference under injected faults with
 *             timeout/retry and hedged requests
 *   trace     report the unique-ID fraction of a trace profile
 *   eval      execute the real tensor model (thread-pool hot path)
 *             and report measured throughput
 *   zoo       list the model zoo and machine fleet
 *
 * The global --threads flag (or RECPERF_THREADS) sizes the worker
 * pool used by every tensor kernel.
 *
 * Examples:
 *   recperf time --model rmc2 --machine skylake --batch 64
 *   recperf colocate --model rmc2 --machine broadwell --max-tenants 8
 *   recperf serve --model rmc1 --workers 8 --rate 50000 --sla-ms 10
 *   recperf serve --rate 80000 --admission --admit-wait 0.5 \
 *                 --straggler-prob 0.05
 *   recperf shard --model rmc2 --nodes 8 --hedge --mtbf-ms 50
 *   recperf trace --zipf 1.05 --repeat 0.65
 *   recperf eval --model rmc2 --batch 64 --threads 8
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/args.hh"
#include "core/logging.hh"
#include "core/rng.hh"
#include "core/thread_pool.hh"
#include "model/rec_model.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "resilience/fault_injector.hh"
#include "resilience/policies.hh"
#include "serving/distributed.hh"
#include "serving/server.hh"
#include "timing/colocation.hh"
#include "timing/model_timer.hh"
#include "trace/id_generator.hh"

using namespace recperf;

namespace {

ModelConfig
modelByName(const std::string &name)
{
    for (const ModelConfig &cfg : allZooModels()) {
        if (cfg.name == name)
            return cfg;
    }
    if (name == "rmc1")
        return rmc1Small();
    if (name == "rmc2")
        return rmc2Small();
    if (name == "rmc3")
        return rmc3Small();
    if (name == "rmc3-dot")
        return rmc3Dot();
    if (name == "ncf")
        return ncfConfig();
    RP_FATAL("unknown model '%s' (try: rmc1, rmc2, rmc3, rmc3-dot, ncf, "
             "or a full zoo name)", name.c_str());
}

MachineSpec
machineByName(const std::string &name)
{
    for (const MachineSpec &m : fleetMachines()) {
        std::string lower = m.name;
        for (char &c : lower)
            c = static_cast<char>(std::tolower(c));
        if (lower == name)
            return m;
    }
    RP_FATAL("unknown machine '%s' (try: haswell, broadwell, skylake)",
             name.c_str());
}

int
cmdTime(ArgParser &args)
{
    ModelConfig cfg = modelByName(args.option("model"));
    MachineSpec machine = machineByName(args.option("machine"));
    TimerOptions opts;
    opts.batch = args.optionInt("batch");
    opts.zipfAlpha = args.optionDouble("zipf");
    opts.repeatProb = args.optionDouble("repeat");

    ModelTimer timer(machine, cfg, opts);
    ModelTiming t = timer.steadyState(
        static_cast<int>(args.optionInt("iters")),
        static_cast<int>(args.optionInt("iters")));

    std::printf("%s on %s, batch %lld:\n", cfg.name.c_str(),
                machine.name.c_str(),
                static_cast<long long>(opts.batch));
    std::printf("  latency:    %10.3f ms\n", t.totalSeconds() * 1e3);
    std::printf("  throughput: %10.0f items/s (single core)\n",
                static_cast<double>(opts.batch) / t.totalSeconds());
    std::printf("  LLC MPKI:   %10.2f\n", t.llcMpki());
    std::printf("  breakdown:\n");
    for (const auto &[kind, secs] : t.breakdown()) {
        std::printf("    %-11s %8.3f ms (%5.1f%%)\n", opKindName(kind),
                    secs * 1e3, 100.0 * secs / t.totalSeconds());
    }
    return 0;
}

int
cmdColocate(ArgParser &args)
{
    ModelConfig cfg = modelByName(args.option("model"));
    MachineSpec machine = machineByName(args.option("machine"));
    auto max_tenants =
        static_cast<uint32_t>(args.optionInt("max-tenants"));
    TimerOptions opts;
    opts.batch = args.optionInt("batch");

    std::printf("co-locating %s on %s (batch %lld):\n", cfg.name.c_str(),
                machine.name.c_str(),
                static_cast<long long>(opts.batch));
    std::printf("  %3s %12s %16s\n", "N", "latency", "throughput");
    double base = 0.0;
    for (uint32_t n = 1; n <= max_tenants; n *= 2) {
        ColocationSim sim(machine, cfg, opts, n);
        ColocationResult r = sim.run(10, 6);
        if (n == 1)
            base = r.meanLatency();
        std::printf("  %3u %9.3f ms %11.0f inf/s  (%.2fx latency)\n", n,
                    r.meanLatency() * 1e3, r.throughput(),
                    r.meanLatency() / base);
    }
    return 0;
}

/** Failure-model options shared by serve and shard. */
FaultOptions
faultsFromArgs(ArgParser &args)
{
    FaultOptions f;
    f.stragglerProb = args.optionDouble("straggler-prob");
    f.stragglerAlpha = args.optionDouble("straggler-alpha");
    f.stragglerMin = args.optionDouble("straggler-min");
    f.shardMtbfSeconds = args.optionDouble("mtbf-ms") / 1e3;
    f.shardMttrSeconds = args.optionDouble("mttr-ms") / 1e3;
    f.spikeRatePerSec = args.optionDouble("spike-rate");
    f.spikeDurationSeconds = args.optionDouble("spike-ms") / 1e3;
    f.spikeFactor = args.optionDouble("spike-factor");
    f.seed = static_cast<uint64_t>(args.optionInt("fault-seed"));
    return f;
}

int
cmdServe(ArgParser &args)
{
    ModelConfig cfg = modelByName(args.option("model"));
    MachineSpec machine = machineByName(args.option("machine"));
    ServerOptions sopts;
    sopts.numWorkers = static_cast<uint32_t>(args.optionInt("workers"));
    sopts.maxBatch = args.optionInt("batch");
    sopts.slaSeconds = args.optionDouble("sla-ms") / 1e3;
    sopts.admission.enabled = args.flag("admission");
    sopts.admission.maxWaitFraction = args.optionDouble("admit-wait");
    sopts.degrade.enabled = args.optionInt("degrade-batch") > 0;
    sopts.degrade.degradedMaxBatch = args.optionInt("degrade-batch");
    sopts.degrade.backlogFactor = args.optionDouble("backlog-factor");
    sopts.degrade.lowPriorityFraction = args.optionDouble("low-priority");
    FaultOptions faults = faultsFromArgs(args);
    faults.shardMtbfSeconds = 0.0; // shard failures only apply to shard
    sopts.faults = faults;

    Server server(machine, cfg, TimerOptions{}, sopts);
    ServingStats stats = server.runOpenLoop(
        args.optionDouble("rate"),
        static_cast<uint64_t>(args.optionInt("items")));

    std::printf("serving %s on %s: %u workers, max batch %lld, SLA "
                "%.1f ms\n", cfg.name.c_str(), machine.name.c_str(),
                sopts.numWorkers, static_cast<long long>(sopts.maxBatch),
                sopts.slaSeconds * 1e3);
    std::printf("  offered:       %10.0f items/s\n",
                args.optionDouble("rate"));
    std::printf("  within SLA:    %10.0f items/s (%.1f%%)\n",
                stats.goodThroughput(), stats.slaFraction() * 100);
    std::printf("  latency p50:   %10.3f ms\n",
                stats.itemLatency.p(50) * 1e3);
    std::printf("  latency p99:   %10.3f ms\n",
                stats.itemLatency.p(99) * 1e3);
    std::printf("  mean batch:    %10.1f items\n",
                stats.serviceTime.count()
                    ? static_cast<double>(stats.itemLatency.count()) /
                        static_cast<double>(stats.serviceTime.count())
                    : 0.0);
    if (sopts.admission.enabled || sopts.degrade.enabled) {
        std::printf("  served:        %10.1f%% of offered items\n",
                    stats.servedFraction() * 100);
        std::printf("  shed:          %10llu items (admission)\n",
                    static_cast<unsigned long long>(stats.shedItems));
        std::printf("  dropped:       %10llu low-priority items\n",
                    static_cast<unsigned long long>(
                        stats.droppedLowPriority));
        std::printf("  degraded:      %10llu batches\n",
                    static_cast<unsigned long long>(
                        stats.degradedBatches));
    }
    return 0;
}

int
cmdShard(ArgParser &args)
{
    ModelConfig cfg = modelByName(args.option("model"));
    MachineSpec machine = machineByName(args.option("machine"));
    TimerOptions topts;
    topts.batch = args.optionInt("batch");
    auto nodes = static_cast<uint32_t>(args.optionInt("nodes"));

    FaultOptions faults = faultsFromArgs(args);
    RetryPolicy retry;
    retry.timeoutSeconds = args.optionDouble("timeout-ms") / 1e3;
    retry.maxRetries = static_cast<int>(args.optionInt("retries"));
    HedgePolicy hedge;
    hedge.enabled = args.flag("hedge");
    hedge.delaySeconds = args.optionDouble("hedge-ms") / 1e3;

    ShardedInference sim(machine, cfg, nodes, NetworkConfig{}, topts);
    ResilientShardedResult r = sim.runResilient(
        /*warmup_iters=*/20, static_cast<int>(args.optionInt("iters")),
        faults, retry, hedge);

    std::printf("sharded %s on %u x %s, batch %lld (straggler p=%.2f, "
                "MTBF %.0f ms, hedge %s)\n", cfg.name.c_str(), nodes,
                machine.name.c_str(),
                static_cast<long long>(topts.batch),
                faults.stragglerProb, faults.shardMtbfSeconds * 1e3,
                hedge.enabled ? "on" : "off");
    std::printf("  completed:     %10llu inferences (%.1f%% "
                "availability)\n",
                static_cast<unsigned long long>(r.completed),
                r.availability() * 100);
    std::printf("  failed:        %10llu (retry exhaustion)\n",
                static_cast<unsigned long long>(r.failed));
    std::printf("  latency p50:   %10.3f ms\n", r.latency.p(50) * 1e3);
    std::printf("  latency p99:   %10.3f ms\n", r.latency.p(99) * 1e3);
    std::printf("  goodput:       %10.0f inf/s\n", r.goodput());
    std::printf("  hedges:        %10llu issued, %llu won\n",
                static_cast<unsigned long long>(r.hedgesIssued),
                static_cast<unsigned long long>(r.hedgeWins));
    std::printf("  retries:       %10llu (%llu timeouts, %llu down "
                "shards)\n",
                static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.timeouts),
                static_cast<unsigned long long>(r.shardDownEncounters));
    std::printf("  hedge cost:    %10.3f ms compute, %.1f KB network\n",
                r.hedgeExtraSeconds * 1e3, r.hedgeExtraBytes / 1024.0);
    std::printf("  wasted:        %10.3f ms (timeouts + failures)\n",
                r.wastedSeconds * 1e3);
    return 0;
}

int
cmdEval(ArgParser &args)
{
    // Unlike `time` (the calibrated timing model), this executes the
    // real tensor graph on the thread pool and reports wall-clock
    // throughput — the honest hot path the execution engine serves.
    ModelConfig cfg =
        modelByName(args.option("model"))
            .functionalScale(args.optionInt("rows-cap"));
    int64_t batch = args.optionInt("batch");
    int iters = static_cast<int>(args.optionInt("iters"));
    Rng rng(static_cast<uint64_t>(args.optionInt("seed")));
    RecModel model(cfg, rng);
    ModelInput input = model.randomInput(batch, rng);

    for (int i = 0; i < 2; ++i)
        (void)model.forward(input); // warm-up
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        (void)model.forward(input);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count() /
        static_cast<double>(iters);

    std::printf("eval %s (rows capped at %lld), batch %lld, "
                "%d threads:\n",
                cfg.name.c_str(),
                static_cast<long long>(args.optionInt("rows-cap")),
                static_cast<long long>(batch), globalThreadCount());
    std::printf("  latency:    %10.3f ms / batch (measured)\n",
                secs * 1e3);
    std::printf("  throughput: %10.0f items/s\n",
                static_cast<double>(batch) / secs);
    return 0;
}

int
cmdTrace(ArgParser &args)
{
    TraceProfile profile{"cli", args.optionDouble("zipf"),
                         args.optionDouble("repeat"), 8192};
    Rng rng(static_cast<uint64_t>(args.optionInt("seed")));
    auto gen = makeGenerator(profile, args.optionInt("rows"),
                             rng.split());
    auto trace = gen->draw(
        static_cast<size_t>(args.optionInt("items")));
    std::printf("trace: zipf alpha %.2f, repeat prob %.2f over %lld "
                "rows\n", profile.zipfAlpha, profile.repeatProb,
                static_cast<long long>(args.optionInt("rows")));
    std::printf("  unique sparse IDs: %.1f%% of %zu draws\n",
                uniqueFraction(trace) * 100.0, trace.size());
    return 0;
}

int
cmdZoo()
{
    std::printf("model zoo:\n");
    for (const ModelConfig &cfg : allZooModels()) {
        std::printf("  %-12s %2lld tables x %8lld rows, %3lld lookups, "
                    "%6.2f GB emb, %8.2fM FC params\n", cfg.name.c_str(),
                    static_cast<long long>(cfg.emb.numTables),
                    static_cast<long long>(cfg.emb.rowsPerTable),
                    static_cast<long long>(cfg.emb.lookupsPerTable),
                    cfg.embStorageBytes() / 1e9,
                    cfg.fcParamCount() / 1e6);
    }
    std::printf("machines:\n");
    for (const MachineSpec &m : fleetMachines()) {
        std::printf("  %-10s %.1f GHz, %2u cores/socket, %s, L3 %.1f MB "
                    "(%s), %s\n", m.name.c_str(), m.freqGHz,
                    m.coresPerSocket, simdIsaName(m.simd.isa),
                    m.l3.sizeBytes / 1024.0 / 1024.0,
                    m.policy == InclusionPolicy::Inclusive ? "inclusive"
                                                           : "exclusive",
                    m.dram.ddrType.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> raw(argv + 1, argv + argc);
    std::string command = raw.empty() ? "help" : raw.front();
    std::vector<std::string> rest(raw.begin() + (raw.empty() ? 0 : 1),
                                  raw.end());

    ArgParser args("recperf " + command,
                   "RecPerf experiment driver (HPCA'20 reproduction)");
    args.addOption("model", "rmc1", "model: rmc1|rmc2|rmc3|rmc3-dot|ncf");
    args.addOption("machine", "broadwell",
                   "machine: haswell|broadwell|skylake");
    args.addOption("batch", "16", "batch size / max serving batch");
    args.addOption("iters", "20", "measured iterations");
    args.addOption("max-tenants", "8", "co-location sweep upper bound");
    args.addOption("workers", "4", "serving workers");
    args.addOption("rate", "10000", "offered items/s (serve)");
    args.addOption("items", "20000", "items to simulate");
    args.addOption("sla-ms", "10", "SLA in milliseconds");
    args.addOption("zipf", "1.1", "trace popularity skew");
    args.addOption("repeat", "0.5", "trace re-reference probability");
    args.addOption("rows", "2000000", "embedding rows (trace)");
    args.addOption("seed", "42", "random seed");
    args.addOption("threads", "0",
                   "tensor-op worker threads (0 = RECPERF_THREADS or "
                   "hardware)");
    args.addOption("rows-cap", "4096",
                   "embedding rows cap for eval's functional model");
    args.addOption("nodes", "4", "shard nodes (shard)");
    args.addOption("straggler-prob", "0", "straggler probability");
    args.addOption("straggler-alpha", "1.5", "straggler pareto shape");
    args.addOption("straggler-min", "2", "minimum straggler slowdown");
    args.addOption("mtbf-ms", "0", "shard mean time between failures");
    args.addOption("mttr-ms", "10", "shard mean time to repair");
    args.addOption("spike-rate", "0", "load spikes per second");
    args.addOption("spike-ms", "5", "load spike duration");
    args.addOption("spike-factor", "2", "slowdown during a spike");
    args.addOption("fault-seed", "2020", "failure-model seed");
    args.addOption("timeout-ms", "0", "per-shard timeout (0 = none)");
    args.addOption("retries", "2", "max retries per shard request");
    args.addFlag("hedge", "hedge slow shard requests to a replica");
    args.addOption("hedge-ms", "0", "hedge delay (0 = auto p95)");
    args.addFlag("admission", "shed items whose wait blows the SLA");
    args.addOption("admit-wait", "0.5", "sheddable wait as SLA fraction");
    args.addOption("degrade-batch", "0",
                   "degraded-mode batch cap (0 = off)");
    args.addOption("backlog-factor", "2",
                   "backlog (in max batches) triggering degraded mode");
    args.addOption("low-priority", "0.2",
                   "fraction of items droppable when degraded");
    args.addFlag("help", "show this help");

    std::string error;
    if (!args.parse(rest, &error)) {
        std::fprintf(stderr, "error: %s\n%s", error.c_str(),
                     args.helpText().c_str());
        return 2;
    }
    if (command == "help" || args.flag("help")) {
        std::printf("usage: recperf <time|colocate|serve|shard|trace|"
                    "eval|zoo> [options]\n\n%s",
                    args.helpText().c_str());
        return 0;
    }

    if (args.optionInt("threads") > 0)
        setGlobalThreadCount(static_cast<int>(args.optionInt("threads")));

    try {
        if (command == "time")
            return cmdTime(args);
        if (command == "colocate")
            return cmdColocate(args);
        if (command == "serve")
            return cmdServe(args);
        if (command == "shard")
            return cmdShard(args);
        if (command == "trace")
            return cmdTrace(args);
        if (command == "eval")
            return cmdEval(args);
        if (command == "zoo")
            return cmdZoo();
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }

    std::fprintf(stderr, "unknown command '%s'; try: recperf help\n",
                 command.c_str());
    return 2;
}
