#include "core/logging.hh"

#include <cstdio>
#include <vector>

namespace recperf {

std::string
vstrprintf(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string out = vstrprintf(fmt, args);
    va_end(args);
    return out;
}

namespace detail {

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    throw FatalError(msg);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    throw PanicError(msg);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace recperf
