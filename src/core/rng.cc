#include "core/rng.hh"

#include <cmath>

#include "core/logging.hh"

namespace recperf {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

uint64_t
Rng::next()
{
    // xoshiro256** step.
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    RP_ASSERT(bound > 0, "nextBelow bound must be positive");
    // Lemire-style rejection to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    while (true) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextInt(int64_t lo, int64_t hi)
{
    RP_ASSERT(lo <= hi, "nextInt range [%lld, %lld] is empty",
              static_cast<long long>(lo), static_cast<long long>(hi));
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

float
Rng::nextFloat(float lo, float hi)
{
    return lo + static_cast<float>(nextDouble()) * (hi - lo);
}

double
Rng::nextGaussian()
{
    if (has_cached_gaussian_) {
        has_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    double u1 = 0.0;
    while (u1 == 0.0)
        u1 = nextDouble();
    double u2 = nextDouble();
    double mag = std::sqrt(-2.0 * std::log(u1));
    cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
    has_cached_gaussian_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::nextExponential(double rate)
{
    RP_ASSERT(rate > 0.0, "exponential rate must be positive");
    double u = 0.0;
    while (u == 0.0)
        u = nextDouble();
    return -std::log(u) / rate;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

} // namespace recperf
