/**
 * @file
 * Cooperative cancellation for in-flight work.
 *
 * A CancelToken is shared between the issuer of a piece of work (the
 * serving layer, which knows the request's deadline) and the code
 * executing it (the model forward pass, the shard fan-out). Executors
 * poll `cancelled()` at natural checkpoints — per embedding table, per
 * batch, per shard attempt — and abandon the remaining work when the
 * flag is set, so a request that can no longer meet its deadline stops
 * consuming compute instead of completing late.
 *
 * Polling costs one relaxed atomic load, mirroring the observability
 * layer's disabled-path contract. Tokens are in core (not resilience)
 * because the model layer polls them and must not depend on the
 * serving-side policy stack.
 */

#ifndef RECPERF_CORE_CANCELLATION_HH
#define RECPERF_CORE_CANCELLATION_HH

#include <atomic>
#include <cstdint>

namespace recperf {

/** Shared cancel flag polled by cooperative checkpoints. */
class CancelToken
{
  public:
    CancelToken() = default;
    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Request cancellation; idempotent, safe from any thread. */
    void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

    /**
     * Poll the flag (one relaxed load). With a fuse armed, every poll
     * burns one charge and the token self-cancels when the fuse
     * reaches zero — deterministic only under single-threaded polling
     * (tests use it to cancel mid-fan-out at an exact checkpoint).
     */
    bool cancelled() const
    {
        int64_t fuse = fuse_.load(std::memory_order_relaxed);
        if (fuse >= 0 &&
            fuse_.fetch_sub(1, std::memory_order_relaxed) <= 0)
            cancelled_.store(true, std::memory_order_relaxed);
        return cancelled_.load(std::memory_order_relaxed);
    }

    /** Arm the self-cancel fuse: the (n+1)-th poll observes cancelled. */
    void cancelAfterChecks(int64_t n)
    {
        fuse_.store(n, std::memory_order_relaxed);
    }

    /** Clear both the flag and any armed fuse. */
    void reset()
    {
        cancelled_.store(false, std::memory_order_relaxed);
        fuse_.store(-1, std::memory_order_relaxed);
    }

  private:
    mutable std::atomic<bool> cancelled_{false};
    /** Remaining polls before self-cancel; < 0 disarms the fuse. */
    mutable std::atomic<int64_t> fuse_{-1};
};

} // namespace recperf

#endif // RECPERF_CORE_CANCELLATION_HH
