/**
 * @file
 * Shared worker pool and the parallelFor primitive behind every
 * parallel kernel (FC GEMM panels, SLS slot fan-out, BatchMatMul,
 * inter-op table scheduling).
 *
 * Design constraints, in order:
 *  1. Determinism — callers partition work so that each output element
 *     is produced by exactly one chunk with an unchanged reduction
 *     order; the pool itself never reorders arithmetic. Results are
 *     bitwise-identical at any thread count.
 *  2. Safe nesting — a parallelFor issued from inside a parallel
 *     region (pool worker or re-entrant caller) runs inline on the
 *     issuing thread, so ops can parallelize unconditionally and
 *     compose (e.g. BatchMatMul over batch calling gemmBt).
 *  3. Low overhead — one atomic fetch-add per chunk, caller
 *     participates as a worker, and tiny ranges never touch the pool.
 */

#ifndef RECPERF_CORE_THREAD_POOL_HH
#define RECPERF_CORE_THREAD_POOL_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace recperf {

/**
 * Fixed-size pool of worker threads executing chunked index ranges.
 *
 * A pool of size N owns N-1 OS threads; the thread calling
 * parallelFor() acts as the Nth worker, so `ThreadPool(1)` spawns no
 * threads and always runs inline.
 */
class ThreadPool
{
  public:
    /** Spawn @p threads - 1 workers (clamped to [1, kMaxThreads]). */
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Pool size including the calling thread. */
    int threadCount() const { return nthreads_; }

    /**
     * Run fn(chunk_begin, chunk_end) over [begin, end) split into
     * chunks of at least @p grain indices. Chunks are claimed with an
     * atomic counter in ascending order; each index is covered exactly
     * once. Blocks until every chunk has finished.
     *
     * The first exception thrown by @p fn is captured, remaining
     * unclaimed chunks are skipped, and the exception is rethrown on
     * the calling thread once the region has quiesced.
     *
     * Nested calls (from a pool worker or from @p fn itself) execute
     * the whole range inline on the calling thread.
     */
    void parallelFor(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)> &fn);

    /** Upper bound on configurable pool sizes. */
    static constexpr int kMaxThreads = 256;

  private:
    struct Region;

    void workerLoop();
    static void runChunks(Region &region);

    int nthreads_;
    std::mutex mu_;
    std::condition_variable work_cv_;
    uint64_t generation_ = 0;
    std::shared_ptr<Region> region_;
    bool shutdown_ = false;
    std::vector<std::thread> workers_;
};

/**
 * The process-wide pool used by all tensor ops. Created lazily on
 * first use with `RECPERF_THREADS` threads (falling back to
 * std::thread::hardware_concurrency when unset or 0).
 */
std::shared_ptr<ThreadPool> globalThreadPool();

/**
 * Replace the global pool with one of @p threads threads (0 restores
 * the environment/hardware default). In-flight parallelFor calls keep
 * the pool they started on; this is safe to call between kernels but
 * not concurrently with them from another thread.
 */
void setGlobalThreadCount(int threads);

/** Thread count of the current global pool (creates it if needed). */
int globalThreadCount();

/** True while the calling thread is inside a parallelFor region. */
bool inParallelRegion();

/**
 * Observability hook for executed pool chunks. The obs layer installs
 * this (core cannot link against it — the dependency points the other
 * way); when non-null, every executed chunk is bracketed with
 * steady-clock reads and reported as (lo, hi, t0, t1) on the executing
 * thread. Install nullptr to restore the untraced path, whose only cost
 * is one atomic load per chunk.
 */
using PoolChunkHook = void (*)(int64_t lo, int64_t hi,
                               std::chrono::steady_clock::time_point t0,
                               std::chrono::steady_clock::time_point t1);

void setPoolChunkHook(PoolChunkHook hook);

/** Convenience wrapper: globalThreadPool()->parallelFor(...). */
void parallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)> &fn);

} // namespace recperf

#endif // RECPERF_CORE_THREAD_POOL_HH
