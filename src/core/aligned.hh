/**
 * @file
 * Cache-line-aligned heap buffer used as tensor storage.
 */

#ifndef RECPERF_CORE_ALIGNED_HH
#define RECPERF_CORE_ALIGNED_HH

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>

namespace recperf {

/** Width of one cache line on every machine this project models. */
inline constexpr size_t kCacheLineBytes = 64;

/**
 * An owning, 64-byte-aligned array of trivially-copyable elements.
 * Alignment matters for the blocked GEMM kernels and makes the
 * address-trace arithmetic in the cache simulator exact.
 */
template <typename T>
class AlignedBuffer
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "AlignedBuffer holds trivially-copyable elements only");

  public:
    AlignedBuffer() = default;

    explicit AlignedBuffer(size_t count) { resize(count); }

    AlignedBuffer(const AlignedBuffer &other) { *this = other; }

    AlignedBuffer &
    operator=(const AlignedBuffer &other)
    {
        if (this != &other) {
            resize(other.size_);
            if (size_ > 0)
                std::memcpy(data_.get(), other.data_.get(), size_ * sizeof(T));
        }
        return *this;
    }

    AlignedBuffer(AlignedBuffer &&) noexcept = default;
    AlignedBuffer &operator=(AlignedBuffer &&) noexcept = default;

    /** Reallocate to hold @p count elements; contents are not preserved. */
    void
    resize(size_t count)
    {
        size_ = count;
        if (count == 0) {
            data_.reset();
            return;
        }
        size_t bytes = count * sizeof(T);
        bytes = (bytes + kCacheLineBytes - 1) / kCacheLineBytes *
            kCacheLineBytes;
        void *raw = std::aligned_alloc(kCacheLineBytes, bytes);
        if (!raw)
            throw std::bad_alloc();
        data_.reset(static_cast<T *>(raw));
    }

    T *data() { return data_.get(); }
    const T *data() const { return data_.get(); }
    size_t size() const { return size_; }

    T &operator[](size_t i) { return data_.get()[i]; }
    const T &operator[](size_t i) const { return data_.get()[i]; }

  private:
    struct FreeDeleter
    {
        void operator()(T *p) const { std::free(p); }
    };

    std::unique_ptr<T[], FreeDeleter> data_;
    size_t size_ = 0;
};

} // namespace recperf

#endif // RECPERF_CORE_ALIGNED_HH
