/**
 * @file
 * Statistics helpers: streaming moments, percentiles, and histograms.
 *
 * Used throughout the timing and serving layers to report latency
 * distributions (mean, p5, p50, p99) in the same form the paper does.
 */

#ifndef RECPERF_CORE_STATS_HH
#define RECPERF_CORE_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace recperf {

/**
 * Streaming mean / variance / min / max via Welford's algorithm.
 * O(1) memory; exact first two moments.
 */
class RunningStat
{
  public:
    void add(double x);
    void merge(const RunningStat &other);
    void reset();

    size_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Exact percentile over a sample vector using linear interpolation
 * between closest ranks (the same definition as numpy.percentile).
 *
 * @param samples sample values; need not be sorted (copied internally).
 * @param pct percentile in [0, 100].
 */
double percentile(std::vector<double> samples, double pct);

/**
 * Retains every sample and answers arbitrary percentile queries.
 * Suitable for the sample counts in this project (<= millions).
 */
class LatencySample
{
  public:
    void add(double x) { samples_.push_back(x); }
    void clear() { samples_.clear(); }
    size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double mean() const;

    /** Percentile query; 0.0 on an empty sample (e.g. a run whose
     *  items were all shed), unlike the strict percentile(). */
    double p(double pct) const
    {
        return samples_.empty() ? 0.0 : percentile(samples_, pct);
    }

    double min() const;
    double max() const;

    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
};

/**
 * Fixed-width histogram over [lo, hi); out-of-range samples clamp into
 * the end buckets. Used for operator-latency distribution plots (Fig 11a).
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t buckets);

    void add(double x);
    size_t count() const { return count_; }
    size_t bucketCount() const { return counts_.size(); }
    size_t bucketHits(size_t i) const { return counts_.at(i); }
    double bucketLow(size_t i) const;
    double bucketHigh(size_t i) const { return bucketLow(i + 1); }

    /** Render an ASCII bar chart, one line per non-empty bucket. */
    std::string render(size_t max_width = 50) const;

  private:
    double lo_;
    double hi_;
    std::vector<size_t> counts_;
    size_t count_ = 0;
};

} // namespace recperf

#endif // RECPERF_CORE_STATS_HH
