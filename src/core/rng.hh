/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of RecPerf (weight initialization, sparse-ID
 * traces, arrival processes, timing jitter) draw from Rng so that every
 * experiment is reproducible from a single seed. The core generator is
 * xoshiro256**, which is fast, has a 256-bit state, and passes BigCrush.
 */

#ifndef RECPERF_CORE_RNG_HH
#define RECPERF_CORE_RNG_HH

#include <cstdint>
#include <limits>

namespace recperf {

/**
 * A seedable, splittable pseudo-random number generator.
 *
 * Satisfies the UniformRandomBitGenerator requirements so it can also be
 * used with <random> distributions when convenient.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<uint64_t>::max();
    }

    /** Next raw 64-bit value. */
    uint64_t operator()() { return next(); }

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound) using unbiased rejection. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextInt(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform float in [lo, hi). */
    float nextFloat(float lo, float hi);

    /** Standard normal via Box-Muller (cached second value). */
    double nextGaussian();

    /** Exponential with the given rate (inter-arrival times). */
    double nextExponential(double rate);

    /** Bernoulli trial with probability p of true. */
    bool nextBool(double p);

    /**
     * Derive an independent child generator. Used to give each component
     * (trace gen, jitter, arrivals) its own stream from one master seed.
     */
    Rng split();

  private:
    uint64_t state_[4];
    double cached_gaussian_ = 0.0;
    bool has_cached_gaussian_ = false;
};

} // namespace recperf

#endif // RECPERF_CORE_RNG_HH
