#include "core/thread_pool.hh"

#include <algorithm>
#include <cstdlib>

#include "core/logging.hh"

namespace recperf {

namespace {

// Set for pool workers (permanently) and for any thread currently
// executing inside a parallelFor region, so nested calls degrade to
// inline execution instead of deadlocking on the shared pool.
thread_local bool t_in_parallel_region = false;

struct RegionGuard
{
    RegionGuard() { t_in_parallel_region = true; }
    ~RegionGuard() { t_in_parallel_region = false; }
};

int
clampThreads(int threads)
{
    return std::clamp(threads, 1, ThreadPool::kMaxThreads);
}

std::atomic<PoolChunkHook> g_chunk_hook{nullptr};

int
defaultThreadCount()
{
    if (const char *env = std::getenv("RECPERF_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && v > 0)
            return clampThreads(static_cast<int>(v));
    }
    unsigned hw = std::thread::hardware_concurrency();
    return clampThreads(hw ? static_cast<int>(hw) : 1);
}

} // namespace

/**
 * One parallelFor invocation. Shared-owned: each worker that wakes for
 * it holds a reference, so a straggler arriving after the caller has
 * already retired the region finds only an exhausted chunk counter,
 * never freed memory. The fn pointer targets the caller's stack but is
 * only dereferenced for successfully claimed chunks, all of which
 * complete before the caller returns.
 */
struct ThreadPool::Region
{
    const std::function<void(int64_t, int64_t)> *fn = nullptr;
    int64_t begin = 0;
    int64_t end = 0;
    int64_t grain = 1;
    int64_t num_chunks = 0;
    std::atomic<int64_t> next_chunk{0};
    std::atomic<int64_t> done_chunks{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error; // first error; guarded by error_mu
    std::mutex error_mu;
};

ThreadPool::ThreadPool(int threads) : nthreads_(clampThreads(threads))
{
    workers_.reserve(static_cast<size_t>(nthreads_ - 1));
    for (int i = 0; i < nthreads_ - 1; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    // Workers are always "inside" a region: anything they run that
    // calls parallelFor recursively must execute inline.
    t_in_parallel_region = true;
    uint64_t seen_generation = 0;
    for (;;) {
        std::shared_ptr<Region> region;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [&] {
                return shutdown_ || generation_ != seen_generation;
            });
            if (shutdown_)
                return;
            seen_generation = generation_;
            region = region_;
        }
        if (region)
            runChunks(*region);
    }
}

void
ThreadPool::runChunks(Region &region)
{
    PoolChunkHook hook = g_chunk_hook.load(std::memory_order_acquire);
    for (;;) {
        int64_t chunk = region.next_chunk.fetch_add(
            1, std::memory_order_relaxed);
        if (chunk >= region.num_chunks)
            return;
        // After a failure the remaining chunks are claimed but not
        // executed, so the region still quiesces deterministically.
        if (!region.failed.load(std::memory_order_acquire)) {
            int64_t lo = region.begin + chunk * region.grain;
            int64_t hi = std::min(lo + region.grain, region.end);
            std::chrono::steady_clock::time_point t0;
            if (hook)
                t0 = std::chrono::steady_clock::now();
            try {
                (*region.fn)(lo, hi);
            } catch (...) {
                std::lock_guard<std::mutex> lock(region.error_mu);
                if (!region.error)
                    region.error = std::current_exception();
                region.failed.store(true, std::memory_order_release);
            }
            if (hook)
                hook(lo, hi, t0, std::chrono::steady_clock::now());
        }
        region.done_chunks.fetch_add(1, std::memory_order_acq_rel);
    }
}

void
ThreadPool::parallelFor(int64_t begin, int64_t end, int64_t grain,
                        const std::function<void(int64_t, int64_t)> &fn)
{
    RP_ASSERT(grain > 0, "parallelFor grain must be positive, got %lld",
              static_cast<long long>(grain));
    int64_t total = end - begin;
    if (total <= 0)
        return;
    // Inline paths: a 1-thread pool and a range that fits one grain
    // run fn directly WITHOUT marking a region, so a nested
    // parallelFor inside fn (e.g. gemmBt under a batch-1 BatchMatMul)
    // can still use the pool. Only genuinely nested calls inline with
    // parallelism suppressed.
    if (t_in_parallel_region) {
        fn(begin, end);
        return;
    }
    if (nthreads_ == 1 || total <= grain) {
        fn(begin, end);
        return;
    }

    // Cap the chunk count at a small multiple of the pool size: enough
    // slack for load balancing, few enough that the per-chunk atomic
    // claim is noise.
    int64_t max_chunks = static_cast<int64_t>(nthreads_) * 4;
    int64_t eff_grain =
        std::max(grain, (total + max_chunks - 1) / max_chunks);

    auto region = std::make_shared<Region>();
    region->fn = &fn;
    region->begin = begin;
    region->end = end;
    region->grain = eff_grain;
    region->num_chunks = (total + eff_grain - 1) / eff_grain;

    {
        std::lock_guard<std::mutex> lock(mu_);
        region_ = region;
        ++generation_;
    }
    work_cv_.notify_all();

    {
        RegionGuard guard;
        runChunks(*region);
    }

    // The caller ran out of chunks; any remaining ones are in flight on
    // workers and each lasts at least a grain of work, so a yield loop
    // is both short-lived and scheduler-friendly (it donates the CPU to
    // exactly the threads we are waiting on when cores are scarce).
    while (region->done_chunks.load(std::memory_order_acquire) !=
           region->num_chunks) {
        std::this_thread::yield();
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        if (region_ == region)
            region_.reset();
    }

    if (region->error)
        std::rethrow_exception(region->error);
}

namespace {

std::mutex g_pool_mu;
std::shared_ptr<ThreadPool> g_pool; // guarded by g_pool_mu

} // namespace

std::shared_ptr<ThreadPool>
globalThreadPool()
{
    std::lock_guard<std::mutex> lock(g_pool_mu);
    if (!g_pool)
        g_pool = std::make_shared<ThreadPool>(defaultThreadCount());
    return g_pool;
}

void
setGlobalThreadCount(int threads)
{
    std::shared_ptr<ThreadPool> replaced; // destroyed outside the lock
    {
        std::lock_guard<std::mutex> lock(g_pool_mu);
        int want = threads > 0 ? clampThreads(threads)
                               : defaultThreadCount();
        if (g_pool && g_pool->threadCount() == want)
            return;
        replaced = std::move(g_pool);
        g_pool = std::make_shared<ThreadPool>(want);
    }
}

int
globalThreadCount()
{
    return globalThreadPool()->threadCount();
}

bool
inParallelRegion()
{
    return t_in_parallel_region;
}

void
setPoolChunkHook(PoolChunkHook hook)
{
    g_chunk_hook.store(hook, std::memory_order_release);
}

void
parallelFor(int64_t begin, int64_t end, int64_t grain,
            const std::function<void(int64_t, int64_t)> &fn)
{
    // Hold a reference for the duration so a concurrent
    // setGlobalThreadCount cannot destroy the pool under us.
    std::shared_ptr<ThreadPool> pool = globalThreadPool();
    pool->parallelFor(begin, end, grain, fn);
}

} // namespace recperf
