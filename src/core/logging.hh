/**
 * @file
 * Error handling and logging primitives for RecPerf.
 *
 * Follows the gem5 convention: fatal() is for user error (bad
 * configuration, invalid arguments) and exits cleanly; panic() is for
 * internal invariant violations (library bugs) and aborts. warn() and
 * inform() are non-terminating status channels.
 */

#ifndef RECPERF_CORE_LOGGING_HH
#define RECPERF_CORE_LOGGING_HH

#include <cstdarg>
#include <string>

namespace recperf {

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** vprintf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, va_list args);

namespace detail {

[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/**
 * Terminate due to a user-caused error (bad config, invalid argument).
 * Prints the message and throws FatalError so callers/tests can observe it.
 */
#define RP_FATAL(...) \
    ::recperf::detail::fatalImpl(__FILE__, __LINE__, ::recperf::strprintf(__VA_ARGS__))

/** Terminate due to an internal invariant violation (a RecPerf bug). */
#define RP_PANIC(...) \
    ::recperf::detail::panicImpl(__FILE__, __LINE__, ::recperf::strprintf(__VA_ARGS__))

/** Non-terminating warning about questionable but survivable conditions. */
#define RP_WARN(...) \
    ::recperf::detail::warnImpl(__FILE__, __LINE__, ::recperf::strprintf(__VA_ARGS__))

/** Informational status message. */
#define RP_INFORM(...) \
    ::recperf::detail::informImpl(::recperf::strprintf(__VA_ARGS__))

/** Internal invariant check; active in all build types. */
#define RP_ASSERT(cond, ...)                                                  \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::recperf::detail::panicImpl(                                     \
                __FILE__, __LINE__,                                           \
                std::string("assertion failed: " #cond)                       \
                    __VA_OPT__(+ " " + ::recperf::strprintf(__VA_ARGS__)));   \
        }                                                                     \
    } while (0)

/** Exception thrown by RP_FATAL: a user-correctable configuration error. */
class FatalError : public std::exception
{
  public:
    explicit FatalError(std::string msg) : msg_(std::move(msg)) {}
    const char *what() const noexcept override { return msg_.c_str(); }

  private:
    std::string msg_;
};

/** Exception thrown by RP_PANIC/RP_ASSERT: an internal invariant violation. */
class PanicError : public std::exception
{
  public:
    explicit PanicError(std::string msg) : msg_(std::move(msg)) {}
    const char *what() const noexcept override { return msg_.c_str(); }

  private:
    std::string msg_;
};

} // namespace recperf

#endif // RECPERF_CORE_LOGGING_HH
