/**
 * @file
 * Minimal command-line argument parsing for the RecPerf tools.
 *
 * Supports boolean flags (--verbose), valued options (--batch 16 or
 * --batch=16), and positional arguments, with generated help text.
 */

#ifndef RECPERF_CORE_ARGS_HH
#define RECPERF_CORE_ARGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace recperf {

/** Declarative command-line parser. */
class ArgParser
{
  public:
    explicit ArgParser(std::string program, std::string description);

    /** Register a boolean flag, e.g. "verbose" for --verbose. */
    void addFlag(const std::string &name, const std::string &help);

    /** Register a valued option with a default. */
    void addOption(const std::string &name, const std::string &def,
                   const std::string &help);

    /**
     * Parse argv (excluding argv[0]).
     * @return true on success; on failure @p error describes the issue.
     */
    bool parse(const std::vector<std::string> &args, std::string *error);

    bool flag(const std::string &name) const;
    const std::string &option(const std::string &name) const;

    /** Whether the user supplied @p name (vs. the default applying).
     *  Lets validation reject combinations only when asked for. */
    bool explicitlySet(const std::string &name) const;
    int64_t optionInt(const std::string &name) const;
    double optionDouble(const std::string &name) const;
    const std::vector<std::string> &positional() const { return pos_; }

    /** Generated usage text. */
    std::string helpText() const;

  private:
    struct Option
    {
        std::string value;
        std::string def;
        std::string help;
        bool is_flag = false;
        bool set = false;
    };

    std::string program_;
    std::string description_;
    std::vector<std::string> order_;
    std::map<std::string, Option> options_;
    std::vector<std::string> pos_;
};

} // namespace recperf

#endif // RECPERF_CORE_ARGS_HH
