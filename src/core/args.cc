#include "core/args.hh"

#include <cstdlib>

#include "core/logging.hh"

namespace recperf {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description))
{
}

void
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    RP_ASSERT(!options_.count(name), "duplicate argument --%s",
              name.c_str());
    options_[name] = {"", "", help, /*is_flag=*/true, false};
    order_.push_back(name);
}

void
ArgParser::addOption(const std::string &name, const std::string &def,
                     const std::string &help)
{
    RP_ASSERT(!options_.count(name), "duplicate argument --%s",
              name.c_str());
    options_[name] = {def, def, help, /*is_flag=*/false, false};
    order_.push_back(name);
}

bool
ArgParser::parse(const std::vector<std::string> &args, std::string *error)
{
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg.rfind("--", 0) != 0) {
            pos_.push_back(arg);
            continue;
        }

        std::string name = arg.substr(2);
        std::string inline_value;
        bool has_inline = false;
        if (auto eq = name.find('='); eq != std::string::npos) {
            inline_value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_inline = true;
        }

        auto it = options_.find(name);
        if (it == options_.end()) {
            if (error)
                *error = "unknown argument --" + name;
            return false;
        }
        Option &opt = it->second;
        opt.set = true;
        if (opt.is_flag) {
            if (has_inline) {
                if (error)
                    *error = "flag --" + name + " takes no value";
                return false;
            }
            opt.value = "1";
        } else if (has_inline) {
            opt.value = inline_value;
        } else {
            if (i + 1 >= args.size()) {
                if (error)
                    *error = "missing value for --" + name;
                return false;
            }
            opt.value = args[++i];
        }
    }
    return true;
}

bool
ArgParser::flag(const std::string &name) const
{
    auto it = options_.find(name);
    RP_ASSERT(it != options_.end() && it->second.is_flag,
              "unknown flag --%s", name.c_str());
    return it->second.set;
}

const std::string &
ArgParser::option(const std::string &name) const
{
    auto it = options_.find(name);
    RP_ASSERT(it != options_.end() && !it->second.is_flag,
              "unknown option --%s", name.c_str());
    return it->second.value;
}

bool
ArgParser::explicitlySet(const std::string &name) const
{
    auto it = options_.find(name);
    RP_ASSERT(it != options_.end(), "unknown argument --%s",
              name.c_str());
    return it->second.set;
}

int64_t
ArgParser::optionInt(const std::string &name) const
{
    const std::string &v = option(name);
    char *end = nullptr;
    long long parsed = std::strtoll(v.c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        RP_FATAL("--%s expects an integer, got '%s'", name.c_str(),
                 v.c_str());
    return parsed;
}

double
ArgParser::optionDouble(const std::string &name) const
{
    const std::string &v = option(name);
    char *end = nullptr;
    double parsed = std::strtod(v.c_str(), &end);
    if (end == nullptr || *end != '\0')
        RP_FATAL("--%s expects a number, got '%s'", name.c_str(),
                 v.c_str());
    return parsed;
}

std::string
ArgParser::helpText() const
{
    std::string out = program_ + " — " + description_ + "\n\noptions:\n";
    for (const std::string &name : order_) {
        const Option &opt = options_.at(name);
        if (opt.is_flag) {
            out += strprintf("  --%-18s %s\n", name.c_str(),
                             opt.help.c_str());
        } else {
            out += strprintf("  --%-18s %s (default: %s)\n",
                             (name + " <v>").c_str(), opt.help.c_str(),
                             opt.def.c_str());
        }
    }
    return out;
}

} // namespace recperf
