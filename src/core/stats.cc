#include "core/stats.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/logging.hh"

namespace recperf {

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    double delta = other.mean_ - mean_;
    size_t total = count_ + other.count_;
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    mean_ += delta * nb / static_cast<double>(total);
    m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(total);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ = total;
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
percentile(std::vector<double> samples, double pct)
{
    RP_ASSERT(!samples.empty(), "percentile of empty sample set");
    RP_ASSERT(pct >= 0.0 && pct <= 100.0, "percentile %f out of [0,100]", pct);
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1)
        return samples.front();
    double rank = pct / 100.0 * static_cast<double>(samples.size() - 1);
    size_t lo = static_cast<size_t>(std::floor(rank));
    size_t hi = static_cast<size_t>(std::ceil(rank));
    double frac = rank - static_cast<double>(lo);
    return samples[lo] + frac * (samples[hi] - samples[lo]);
}

double
LatencySample::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = std::accumulate(samples_.begin(), samples_.end(), 0.0);
    return sum / static_cast<double>(samples_.size());
}

double
LatencySample::min() const
{
    RP_ASSERT(!samples_.empty(), "min of empty sample set");
    return *std::min_element(samples_.begin(), samples_.end());
}

double
LatencySample::max() const
{
    RP_ASSERT(!samples_.empty(), "max of empty sample set");
    return *std::max_element(samples_.begin(), samples_.end());
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    RP_ASSERT(hi > lo, "histogram range [%f, %f) is empty", lo, hi);
    RP_ASSERT(buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::add(double x)
{
    double frac = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<long>(frac * static_cast<double>(counts_.size()));
    idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<size_t>(idx)];
    ++count_;
}

double
Histogram::bucketLow(size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
        static_cast<double>(counts_.size());
}

std::string
Histogram::render(size_t max_width) const
{
    size_t peak = 0;
    for (size_t c : counts_)
        peak = std::max(peak, c);
    if (peak == 0)
        return "<empty histogram>\n";

    std::string out;
    for (size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        size_t width = std::max<size_t>(1, counts_[i] * max_width / peak);
        out += strprintf("%10.4g..%-10.4g |%s %zu\n", bucketLow(i),
                         bucketHigh(i),
                         std::string(width, '#').c_str(), counts_[i]);
    }
    return out;
}

} // namespace recperf
