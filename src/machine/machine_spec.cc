#include "machine/machine_spec.hh"

#include <cmath>

#include "core/aligned.hh"
#include "core/logging.hh"

namespace recperf {

namespace {

// Per-core cache stream bandwidth in bytes per cycle. These scale with
// core frequency, which is why moderate-batch GEMMs (cache-resident
// panels) favour the higher-clocked Broadwell over Skylake (Section V).
constexpr double kL1BytesPerCycle = 96.0;
constexpr double kL2BytesPerCycle = 48.0;
constexpr double kL3BytesPerCycle = 24.0;

// Out-of-order overlap achieved on dependent gathers that hit in the
// cache hierarchy (fraction of the full load-to-use latency exposed).
constexpr double kGatherHitOverlap = 0.5;

} // namespace

uint32_t
MachineSpec::dramLatencyCycles() const
{
    return static_cast<uint32_t>(std::lround(dram.latencyNs * freqGHz));
}

double
MachineSpec::dispatchCyclesFor(OpKind kind) const
{
    switch (kind) {
      case OpKind::FC:
      case OpKind::BatchMM:
      case OpKind::Conv:
      case OpKind::Recurrent:
        return dispatchCyclesFc;
      case OpKind::SLS:
        return dispatchCyclesSls;
      default:
        return dispatchCyclesLight;
    }
}

double
MachineSpec::dispatchSeconds(OpKind kind) const
{
    return dispatchCyclesFor(kind) / cyclesPerSecond();
}

std::unique_ptr<CacheHierarchy>
MachineSpec::makeHierarchy(uint32_t tenants) const
{
    RP_ASSERT(tenants > 0, "need at least one tenant");
    return std::make_unique<CacheHierarchy>(tenants, l1, l2, l3, policy,
                                            dramLatencyCycles(), prefetch);
}

double
MachineSpec::streamSeconds(HitLevel level, double bytes) const
{
    switch (level) {
      case HitLevel::L1:
        return bytes / (kL1BytesPerCycle * cyclesPerSecond());
      case HitLevel::L2:
        return bytes / (kL2BytesPerCycle * cyclesPerSecond());
      case HitLevel::L3:
        return bytes / (kL3BytesPerCycle * cyclesPerSecond());
      case HitLevel::Memory:
        return bytes / (dram.streamGBps() * 1e9);
    }
    RP_PANIC("unreachable hit level");
}

double
DramConfig::gatherMlpFactor(int64_t batch) const
{
    double b = static_cast<double>(batch);
    return 1.0 + gatherMlpGain * b / (b + 64.0);
}

double
MachineSpec::gatherSeconds(HitLevel level, double lines, int64_t batch) const
{
    switch (level) {
      case HitLevel::L1:
      case HitLevel::L2:
      case HitLevel::L3: {
        // Cache-hit gathers partially overlap in the OoO window.
        const LevelConfig &cfg = level == HitLevel::L1 ? l1
            : level == HitLevel::L2 ? l2 : l3;
        double cycles = lines * cfg.latencyCycles * kGatherHitOverlap;
        return cycles / cyclesPerSecond();
      }
      case HitLevel::Memory:
        // Dependent random gathers achieve only gatherGBps of DRAM
        // bandwidth (~1 GB/s on Broadwell, Section V); batching exposes
        // independent misses that overlap (gatherMlpFactor).
        return lines * kCacheLineBytes /
            (dram.gatherGBps() * dram.gatherMlpFactor(batch) * 1e9);
    }
    RP_PANIC("unreachable hit level");
}

MachineSpec
haswell()
{
    MachineSpec m;
    m.name = "Haswell";
    m.freqGHz = 2.5;
    m.coresPerSocket = 12;
    m.sockets = 2;
    // The paper's Haswell parts sustain roughly half of Broadwell's
    // packed-FMA throughput on these GEMM kernels; modeled as reduced
    // effective issue (calibrated to the batch-16 latency ratios).
    m.simd = makeAvx2Model(/*fma_ports=*/1.5);
    m.l1 = {32 * 1024, 8, 4};
    m.l2 = {256 * 1024, 8, 12};
    m.l3 = {30ull * 1024 * 1024, 20, 36};
    m.policy = InclusionPolicy::Inclusive;
    m.dram = {"DDR3", 1600.0, 51.0, 100.0, 0.60, 0.011, 0.10};
    return m;
}

MachineSpec
broadwell()
{
    MachineSpec m;
    m.name = "Broadwell";
    m.freqGHz = 2.4;
    m.coresPerSocket = 14;
    m.sockets = 2;
    m.simd = makeAvx2Model();
    m.l1 = {32 * 1024, 8, 4};
    m.l2 = {256 * 1024, 8, 12};
    m.l3 = {35ull * 1024 * 1024, 20, 38};
    m.policy = InclusionPolicy::Inclusive;
    m.dram = {"DDR4", 2400.0, 77.0, 90.0, 0.60, 0.011, 0.25};
    return m;
}

MachineSpec
skylake()
{
    MachineSpec m;
    m.name = "Skylake";
    m.freqGHz = 2.0;
    m.coresPerSocket = 20;
    m.sockets = 2;
    m.simd = makeAvx512Model();
    m.l1 = {32 * 1024, 8, 4};
    m.l2 = {1024 * 1024, 16, 14};
    m.l3 = {static_cast<uint64_t>(27.5 * 1024 * 1024), 11, 44};
    m.policy = InclusionPolicy::Exclusive;
    m.dram = {"DDR4", 2666.0, 85.0, 85.0, 0.60, 0.011, 0.80};
    return m;
}

std::vector<MachineSpec>
fleetMachines()
{
    return {haswell(), broadwell(), skylake()};
}

} // namespace recperf
