/**
 * @file
 * Server architecture descriptions — Table II of the paper.
 *
 * Three generations of dual-socket Intel servers co-exist in the data
 * center: Haswell, Broadwell, and Skylake. The spec captures every
 * parameter the paper identifies as performance-relevant: operating
 * frequency, core count, SIMD generation, per-level cache geometry,
 * the L2/L3 inclusion policy, and the DDR generation / bandwidth.
 */

#ifndef RECPERF_MACHINE_MACHINE_SPEC_HH
#define RECPERF_MACHINE_MACHINE_SPEC_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "machine/simd.hh"
#include "ops/op_cost.hh"
#include "simcache/hierarchy.hh"

namespace recperf {

/** DRAM configuration of one socket. */
struct DramConfig
{
    std::string ddrType;        ///< "DDR3" or "DDR4"
    double ddrFreqMHz = 0.0;    ///< transfer rate in MT/s
    double bandwidthGBps = 0.0; ///< peak per-socket bandwidth
    double latencyNs = 0.0;     ///< idle load-to-use latency

    /**
     * Effective bandwidth for prefetch-friendly sequential streams
     * (FC weight reads), as a fraction of peak.
     */
    double streamEfficiency = 0.75;

    /**
     * Effective bandwidth for dependent random 64 B gathers
     * (embedding-table reads). Production SLS sustains only ~1 GB/s on
     * Broadwell (Section V), i.e. a small fraction of peak.
     */
    double gatherEfficiency = 0.014;

    /**
     * How strongly batching raises gather throughput. Larger batches
     * expose independent lookups that overlap in the miss queues;
     * deeper out-of-order machines (Skylake) benefit the most. This is
     * why AVX-512-era Skylake needs batch >= 128 to win on the
     * memory-intensive RMC1/RMC2 (Fig 8, Takeaway 4).
     */
    double gatherMlpGain = 0.25;

    double streamGBps() const { return bandwidthGBps * streamEfficiency; }
    double gatherGBps() const { return bandwidthGBps * gatherEfficiency; }

    /** Gather bandwidth multiplier at a given batch size. */
    double gatherMlpFactor(int64_t batch) const;
};

/**
 * One server generation (Table II) plus calibrated throughput models.
 */
struct MachineSpec
{
    std::string name;
    double freqGHz = 0.0;
    uint32_t coresPerSocket = 0;
    uint32_t sockets = 2;
    SimdModel simd;
    LevelConfig l1;
    LevelConfig l2;
    LevelConfig l3;             ///< per-socket shared LLC
    InclusionPolicy policy = InclusionPolicy::Inclusive;
    double dramCapacityGB = 256.0;
    DramConfig dram;

    /**
     * Hardware prefetching applied by makeHierarchy(). Off by default:
     * the paper's fleet measurements bake prefetcher effects into the
     * calibrated bandwidths, so this knob exists for what-if studies
     * (§VII) rather than the baseline reproduction.
     */
    PrefetchConfig prefetch;

    /**
     * Fixed per-operator framework dispatch cost in core cycles
     * (Caffe2 operator setup, output allocation, scheduling). Heavier
     * operators carry more framework work: FC sets up the GEMM
     * descriptor and output blob, SLS validates/gathers index arrays,
     * element-wise ops are nearly free to launch. Calibrated against
     * the batch-1 operator breakdowns of Fig 7.
     */
    double dispatchCyclesFc = 6000.0;
    double dispatchCyclesSls = 2500.0;
    double dispatchCyclesLight = 1200.0;

    /** Dispatch cycles for an operator of the given kind. */
    double dispatchCyclesFor(OpKind kind) const;

    uint32_t totalCores() const { return coresPerSocket * sockets; }

    /** Core cycles per second. */
    double cyclesPerSecond() const { return freqGHz * 1e9; }

    /**
     * Single-core peak arithmetic throughput in GFLOP/s — the flat
     * compute roof of the roofline model (the paper times one MKL
     * thread per model instance, so the per-core roof is the relevant
     * one).
     */
    double peakGflops() const
    {
        return simd.peakFlopsPerCycle() * freqGHz;
    }

    /**
     * Arithmetic intensity (FLOPs/byte) where the compute roof meets
     * the streaming-DRAM roof. Operators left of the ridge are
     * memory-bound (SLS), right of it compute-bound (large FC).
     */
    double ridgeIntensity() const
    {
        double stream = dram.streamGBps();
        return stream > 0.0 ? peakGflops() / stream : 0.0;
    }

    /** Idle DRAM latency expressed in core cycles. */
    uint32_t dramLatencyCycles() const;

    /** Seconds consumed by dispatching an operator of @p kind. */
    double dispatchSeconds(OpKind kind) const;

    /**
     * Build a cache hierarchy with @p tenants private L1/L2 pairs
     * sharing one socket's LLC — the co-location configuration of
     * Section VI.
     */
    std::unique_ptr<CacheHierarchy> makeHierarchy(uint32_t tenants) const;

    /** Seconds to stream @p bytes from the level named by @p level. */
    double streamSeconds(HitLevel level, double bytes) const;

    /**
     * Seconds to gather @p lines random cache lines, with batch-level
     * memory parallelism applied to the DRAM component.
     */
    double gatherSeconds(HitLevel level, double lines,
                         int64_t batch = 1) const;
};

/** Table II: Intel Haswell (AVX-2, DDR3-1600, inclusive L2/L3). */
MachineSpec haswell();

/** Table II: Intel Broadwell (AVX-2, DDR4-2400, inclusive L2/L3). */
MachineSpec broadwell();

/** Table II: Intel Skylake (AVX-512, DDR4-2666, exclusive L2/L3). */
MachineSpec skylake();

/** All three fleet machines, in Table II order. */
std::vector<MachineSpec> fleetMachines();

} // namespace recperf

#endif // RECPERF_MACHINE_MACHINE_SPEC_HH
