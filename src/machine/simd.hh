/**
 * @file
 * SIMD throughput model for AVX-2 and AVX-512 fp32 GEMM kernels.
 *
 * Section V of the paper observes that wide-SIMD benefits only
 * materialize at larger batch sizes: packed AVX-512 instruction
 * throughput reaches 74% of theoretical at batch 4 and 91% at batch 16,
 * and despite its nominally 2x wider vectors Skylake only overtakes
 * Broadwell on compute-intensive models starting at batch ~64.
 *
 * We model the *achieved* fraction of peak FLOPs as a saturating
 * function of batch size, eff(b) = base * b / (b + k), with a larger k
 * for AVX-512 (wide vectors and 2-D register tiles are harder to fill
 * from small GEMM M-dimensions). The constants are calibrated so the
 * Broadwell/Skylake crossover lands near batch 64, matching Fig 8.
 */

#ifndef RECPERF_MACHINE_SIMD_HH
#define RECPERF_MACHINE_SIMD_HH

#include <cstdint>

namespace recperf {

/** Vector ISA generations present in the fleet (Table II). */
enum class SimdIsa
{
    AVX2,
    AVX512,
};

/** Display name, e.g. "AVX-512". */
const char *simdIsaName(SimdIsa isa);

/** fp32 lanes per vector register. */
int simdLanes(SimdIsa isa);

/**
 * Achieved-throughput model for one core executing fp32 GEMM.
 */
struct SimdModel
{
    SimdIsa isa = SimdIsa::AVX2;

    /**
     * Theoretical peak fp32 FLOPs per cycle per core (lanes x 2 for FMA
     * x issue ports). @p fma_ports is a machine-level calibration knob:
     * Broadwell and Skylake sustain 2 FMA issues/cycle; the paper's
     * Haswell parts sustain measurably less on these kernels.
     */
    double fmaPorts = 2.0;

    /** Fraction of peak achievable at asymptotic batch. */
    double baseEfficiency = 0.82;

    /** Batch half-saturation constant; larger = slower ramp. */
    double batchHalfSat = 2.0;

    /**
     * Lower bound on the saturation factor: even a batch-1 GEMV
     * vectorizes along the reduction dimension, so utilization never
     * collapses to b/(b+k) alone (low-batch FC stays memory-bound, as
     * observed in §V).
     */
    double minSaturation = 0.35;

    /** Theoretical peak fp32 FLOPs/cycle/core. */
    double peakFlopsPerCycle() const;

    /** Achieved fraction of peak at the given GEMM batch (M) size. */
    double efficiency(int64_t batch) const;

    /** Achieved fp32 FLOPs per cycle at the given batch. */
    double achievedFlopsPerCycle(int64_t batch) const;
};

/** Calibrated AVX-2 model (Broadwell-class). */
SimdModel makeAvx2Model(double fma_ports = 2.0);

/** Calibrated AVX-512 model (Skylake-class). */
SimdModel makeAvx512Model();

} // namespace recperf

#endif // RECPERF_MACHINE_SIMD_HH
