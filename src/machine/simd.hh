/**
 * @file
 * SIMD throughput model for AVX-2 and AVX-512 fp32 GEMM kernels.
 *
 * Section V of the paper observes that wide-SIMD benefits only
 * materialize at larger batch sizes: packed AVX-512 instruction
 * throughput reaches 74% of theoretical at batch 4 and 91% at batch 16,
 * and despite its nominally 2x wider vectors Skylake only overtakes
 * Broadwell on compute-intensive models starting at batch ~64.
 *
 * We model the *achieved* fraction of peak FLOPs as a saturating
 * function of batch size, eff(b) = base * b / (b + k), with a larger k
 * for AVX-512 (wide vectors and 2-D register tiles are harder to fill
 * from small GEMM M-dimensions). The constants are calibrated so the
 * Broadwell/Skylake crossover lands near batch 64, matching Fig 8.
 */

#ifndef RECPERF_MACHINE_SIMD_HH
#define RECPERF_MACHINE_SIMD_HH

#include <cstdint>
#include <string>

namespace recperf {

/** Vector ISA generations present in the fleet (Table II). */
enum class SimdIsa
{
    AVX2,
    AVX512,
};

/** Display name, e.g. "AVX-512". */
const char *simdIsaName(SimdIsa isa);

/** fp32 lanes per vector register. */
int simdLanes(SimdIsa isa);

/**
 * Achieved-throughput model for one core executing fp32 GEMM.
 */
struct SimdModel
{
    SimdIsa isa = SimdIsa::AVX2;

    /**
     * Theoretical peak fp32 FLOPs per cycle per core (lanes x 2 for FMA
     * x issue ports). @p fma_ports is a machine-level calibration knob:
     * Broadwell and Skylake sustain 2 FMA issues/cycle; the paper's
     * Haswell parts sustain measurably less on these kernels.
     */
    double fmaPorts = 2.0;

    /** Fraction of peak achievable at asymptotic batch. */
    double baseEfficiency = 0.82;

    /** Batch half-saturation constant; larger = slower ramp. */
    double batchHalfSat = 2.0;

    /**
     * Lower bound on the saturation factor: even a batch-1 GEMV
     * vectorizes along the reduction dimension, so utilization never
     * collapses to b/(b+k) alone (low-batch FC stays memory-bound, as
     * observed in §V).
     */
    double minSaturation = 0.35;

    /** Theoretical peak fp32 FLOPs/cycle/core. */
    double peakFlopsPerCycle() const;

    /** Achieved fraction of peak at the given GEMM batch (M) size. */
    double efficiency(int64_t batch) const;

    /** Achieved fp32 FLOPs per cycle at the given batch. */
    double achievedFlopsPerCycle(int64_t batch) const;
};

/** Calibrated AVX-2 model (Broadwell-class). */
SimdModel makeAvx2Model(double fma_ports = 2.0);

/** Calibrated AVX-512 model (Skylake-class). */
SimdModel makeAvx512Model();

/**
 * Vector ISA tiers the *execution engine's* microkernels target (as
 * opposed to SimdIsa, which parameterizes the analytical timing model).
 * Ordered: a host that supports a tier supports every lower one.
 */
enum class KernelIsa
{
    Scalar = 0,
    Avx2 = 1,   ///< AVX2 + FMA (256-bit)
    Avx512 = 2, ///< AVX-512F (512-bit)
};

/** Stable lowercase name ("scalar" / "avx2" / "avx512"). */
const char *kernelIsaName(KernelIsa isa);

/**
 * Best vector tier the *host CPU* supports, probed once via CPUID
 * (cached after the first call). Non-x86 builds report Scalar.
 * Avx2 requires AVX2+FMA; Avx512 requires AVX-512F.
 */
KernelIsa detectIsa();

/**
 * How the kernel engine picks an ISA: either tune across every tier the
 * host supports ("auto", the default) or pin one tier. Pinning is the
 * bitwise-determinism anchor: with a pinned tier, kernel results are
 * bit-identical across thread counts and cache cold/warm runs.
 */
struct IsaPolicy
{
    bool autoSelect = true;
    KernelIsa pinned = KernelIsa::Scalar; ///< used when !autoSelect

    /** Highest tier this policy permits on this host. */
    KernelIsa resolved() const
    {
        return autoSelect ? detectIsa() : pinned;
    }

    /** True when the policy allows dispatching to @p isa. */
    bool allows(KernelIsa isa) const
    {
        return autoSelect ? isa <= detectIsa() : isa == pinned;
    }
};

/**
 * Parse "scalar" / "avx2" / "avx512" / "auto" into @p out, validating
 * pinned tiers against detectIsa(). Returns "" on success, else a
 * human-readable error (unknown name, or the host lacks the tier) —
 * the CLI turns that into exit code 2 before any kernel runs.
 */
std::string isaPolicyFromName(const std::string &name, IsaPolicy *out);

} // namespace recperf

#endif // RECPERF_MACHINE_SIMD_HH
