#include "machine/simd.hh"

#include <algorithm>

#include "core/logging.hh"

namespace recperf {

const char *
simdIsaName(SimdIsa isa)
{
    switch (isa) {
      case SimdIsa::AVX2: return "AVX-2";
      case SimdIsa::AVX512: return "AVX-512";
    }
    return "Unknown";
}

int
simdLanes(SimdIsa isa)
{
    switch (isa) {
      case SimdIsa::AVX2: return 8;
      case SimdIsa::AVX512: return 16;
    }
    return 0;
}

double
SimdModel::peakFlopsPerCycle() const
{
    // lanes * 2 (multiply+add per FMA) * issue ports.
    return static_cast<double>(simdLanes(isa)) * 2.0 * fmaPorts;
}

double
SimdModel::efficiency(int64_t batch) const
{
    RP_ASSERT(batch > 0, "batch must be positive");
    double b = static_cast<double>(batch);
    double saturation = std::max(b / (b + batchHalfSat), minSaturation);
    return baseEfficiency * saturation;
}

double
SimdModel::achievedFlopsPerCycle(int64_t batch) const
{
    return peakFlopsPerCycle() * efficiency(batch);
}

SimdModel
makeAvx2Model(double fma_ports)
{
    SimdModel m;
    m.isa = SimdIsa::AVX2;
    m.fmaPorts = fma_ports;
    m.baseEfficiency = 0.82;
    m.batchHalfSat = 2.0;
    // 256-bit GEMV kernels keep most of the pipeline busy even at
    // batch 1, so low-batch FC stays memory-bound on AVX-2 parts.
    m.minSaturation = 0.55;
    return m;
}

SimdModel
makeAvx512Model()
{
    SimdModel m;
    m.isa = SimdIsa::AVX512;
    m.fmaPorts = 2.0;
    // Wide 512-bit register tiles need large M panels to fill; this is
    // the mechanism behind the paper's batch-64 BDW/SKL crossover.
    m.baseEfficiency = 0.75;
    m.batchHalfSat = 28.0;
    m.minSaturation = 0.35;
    return m;
}

const char *
kernelIsaName(KernelIsa isa)
{
    switch (isa) {
      case KernelIsa::Scalar: return "scalar";
      case KernelIsa::Avx2: return "avx2";
      case KernelIsa::Avx512: return "avx512";
    }
    return "unknown";
}

static KernelIsa
probeHostIsa()
{
#if defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("avx512f"))
        return KernelIsa::Avx512;
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
        return KernelIsa::Avx2;
#endif
    return KernelIsa::Scalar;
}

KernelIsa
detectIsa()
{
    static const KernelIsa host = probeHostIsa();
    return host;
}

std::string
isaPolicyFromName(const std::string &name, IsaPolicy *out)
{
    IsaPolicy policy;
    if (name == "auto" || name.empty()) {
        policy.autoSelect = true;
    } else if (name == "scalar") {
        policy = {false, KernelIsa::Scalar};
    } else if (name == "avx2") {
        policy = {false, KernelIsa::Avx2};
    } else if (name == "avx512") {
        policy = {false, KernelIsa::Avx512};
    } else {
        return "unknown ISA '" + name +
               "' (expected scalar|avx2|avx512|auto)";
    }
    if (!policy.autoSelect && policy.pinned > detectIsa()) {
        return std::string("this host does not support --isa=") + name +
               " (detected: " + kernelIsaName(detectIsa()) + ")";
    }
    if (out)
        *out = policy;
    return "";
}

} // namespace recperf
