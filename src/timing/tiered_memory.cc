#include "timing/tiered_memory.hh"

#include "core/logging.hh"

namespace recperf {

TieredSlsModel::TieredSlsModel(const MachineSpec &machine,
                               const ModelConfig &config,
                               const NvmConfig &nvm,
                               size_t dram_cache_rows, CachePolicy policy,
                               const TimerOptions &options)
    : machine_(machine), config_(config), nvm_(nvm), options_(options)
{
    config_.validate();
    RP_ASSERT(config_.emb.numTables > 0,
              "tiered memory study needs embedding tables");
    RP_ASSERT(static_cast<double>(config_.embStorageBytes()) <=
              nvm.capacityGB * 1e9,
              "tables exceed NVM capacity");

    if (dram_cache_rows > 0) {
        cache_ = std::make_unique<EmbeddingVectorCache>(dram_cache_rows,
                                                        policy);
    }
    Rng rng(options_.seed);
    for (int64_t t = 0; t < config_.emb.numTables; ++t) {
        TraceProfile profile{"tiered", options_.zipfAlpha,
                             options_.repeatProb, options_.repeatWindow};
        table_gens_.push_back(
            makeGenerator(profile, config_.emb.rowsOf(t), rng.split()));
    }
}

double
TieredSlsModel::nvmGatherSeconds(double rows) const
{
    double lines_per_row = static_cast<double>(
        (config_.emb.rowBytes() + 63) / 64);
    return rows * lines_per_row * 64.0 / (nvm_.gatherGBps * 1e9);
}

TieredSlsResult
TieredSlsModel::run(int warmup_iters, int measure_iters)
{
    RP_ASSERT(measure_iters > 0, "need at least one measured iteration");
    const int64_t rows_per_table =
        options_.batch * config_.emb.lookupsPerTable;

    auto run_once = [&](bool measure, TieredSlsResult *out) {
        uint64_t dram_rows = 0, nvm_rows = 0;
        for (size_t t = 0; t < table_gens_.size(); ++t) {
            for (int64_t r = 0; r < rows_per_table; ++r) {
                uint64_t key = (static_cast<uint64_t>(t) << 48) |
                    static_cast<uint64_t>(table_gens_[t]->next());
                bool hit = cache_ && cache_->access(key);
                if (hit)
                    ++dram_rows;
                else
                    ++nvm_rows;
            }
        }
        if (measure && out) {
            // DRAM-cached rows cost a DRAM gather; the rest read NVM.
            out->slsSecondsPerInference += machine_.gatherSeconds(
                HitLevel::Memory, static_cast<double>(dram_rows) *
                    ((config_.emb.rowBytes() + 63) / 64),
                options_.batch) +
                nvmGatherSeconds(static_cast<double>(nvm_rows));
            out->nvmReadsPerInference += nvm_rows;
        }
    };

    for (int i = 0; i < warmup_iters; ++i)
        run_once(false, nullptr);
    if (cache_)
        cache_->resetStats();

    TieredSlsResult result;
    for (int i = 0; i < measure_iters; ++i)
        run_once(true, &result);
    result.slsSecondsPerInference /= measure_iters;
    result.nvmReadsPerInference /= static_cast<uint64_t>(measure_iters);
    result.dramCacheHitRate = cache_ ? cache_->hitRate() : 0.0;
    result.dramCacheBytes = cache_
        ? static_cast<double>(cache_->capacity()) *
            static_cast<double>(config_.emb.rowBytes())
        : 0.0;
    return result;
}

} // namespace recperf
