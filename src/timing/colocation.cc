#include "timing/colocation.hh"

#include <algorithm>
#include <numeric>

#include "core/logging.hh"

namespace recperf {

namespace {

// Tenants occupy disjoint 16 TB address windows.
constexpr uint64_t kTenantRegionBytes = 1ull << 44;

} // namespace

double
ColocationResult::meanLatency() const
{
    if (latencySamples.empty())
        return 0.0;
    double sum = std::accumulate(latencySamples.begin(),
                                 latencySamples.end(), 0.0);
    return sum / static_cast<double>(latencySamples.size());
}

double
ColocationResult::throughput() const
{
    // Each tenant runs on its own core; aggregate rate is the sum of
    // per-tenant rates.
    double rate = 0.0;
    for (const ModelTiming &t : tenantAverages) {
        double lat = t.totalSeconds();
        if (lat > 0.0)
            rate += 1.0 / lat;
    }
    return rate;
}

double
ColocationResult::latencyBoundedThroughput(double sla_seconds,
                                           int64_t batch) const
{
    double rate = 0.0;
    for (const ModelTiming &t : tenantAverages) {
        double lat = t.totalSeconds();
        if (lat > 0.0 && lat <= sla_seconds)
            rate += static_cast<double>(batch) / lat;
    }
    return rate;
}

ModelTiming
ColocationResult::averageTiming() const
{
    ModelTiming avg;
    for (const ModelTiming &t : tenantAverages)
        avg.accumulate(t);
    if (!tenantAverages.empty())
        avg.scale(1.0 / static_cast<double>(tenantAverages.size()));
    return avg;
}

namespace {

std::vector<TenantSpec>
replicate(const ModelConfig &config, const TimerOptions &options,
          uint32_t num_tenants)
{
    RP_ASSERT(num_tenants >= 1, "need at least one tenant");
    std::vector<TenantSpec> tenants;
    for (uint32_t t = 0; t < num_tenants; ++t) {
        TimerOptions opts = options;
        opts.seed = options.seed + 0x1000ull * (t + 1);
        tenants.push_back({config, opts});
    }
    return tenants;
}

} // namespace

ColocationSim::ColocationSim(const MachineSpec &machine,
                             const ModelConfig &config,
                             const TimerOptions &options,
                             uint32_t num_tenants)
    : ColocationSim(machine, replicate(config, options, num_tenants))
{
}

ColocationSim::ColocationSim(const MachineSpec &machine,
                             const std::vector<TenantSpec> &tenants)
    : machine_(machine)
{
    RP_ASSERT(!tenants.empty(), "need at least one tenant");
    auto num_tenants = static_cast<uint32_t>(tenants.size());
    hyperthreading_ = num_tenants > machine.coresPerSocket;

    hier_ = machine_.makeHierarchy(num_tenants);

    for (uint32_t t = 0; t < num_tenants; ++t) {
        TimerOptions opts = tenants[t].options;
        opts.hyperthreading = hyperthreading_;
        auto timer = std::make_unique<ModelTimer>(machine_,
                                                  tenants[t].config, opts);
        timer->attach(hier_.get(), t, kTenantRegionBytes * (t + 1));
        timers_.push_back(std::move(timer));
    }
}

uint32_t
ColocationSim::numTenants() const
{
    return static_cast<uint32_t>(timers_.size());
}

void
ColocationSim::refreshContention(const std::vector<double> &dram_bytes)
{
    double total = std::accumulate(dram_bytes.begin(), dram_bytes.end(), 0.0);
    for (size_t t = 0; t < timers_.size(); ++t) {
        double others = total - dram_bytes[t];
        timers_[t]->setContention(numTenants(), others);
    }
}

ColocationResult
ColocationSim::run(int warmup_iters, int measure_iters)
{
    RP_ASSERT(measure_iters > 0, "need at least one measured iteration");
    const size_t n = timers_.size();

    // Two warm-up passes: the first fills the caches and yields a DRAM
    // pressure estimate; the second re-runs with contention applied so
    // the estimate (which itself raises FC DRAM traffic) converges.
    std::vector<double> dram_bytes(n, 0.0);
    for (int pass = 0; pass < 2; ++pass) {
        int iters = std::max(1, warmup_iters / 2);
        std::vector<double> observed(n, 0.0);
        for (int i = 0; i < iters; ++i) {
            for (size_t t = 0; t < n; ++t) {
                timers_[t]->run();
                observed[t] += timers_[t]->lastDramBytes();
            }
        }
        for (size_t t = 0; t < n; ++t)
            dram_bytes[t] = observed[t] / iters;
        refreshContention(dram_bytes);
    }

    ColocationResult result;
    std::vector<ModelTiming> sums(n);
    for (int i = 0; i < measure_iters; ++i) {
        for (size_t t = 0; t < n; ++t) {
            ModelTiming timing = timers_[t]->run();
            result.latencySamples.push_back(timing.totalSeconds());
            result.fcSamples.push_back(timing.secondsByKind(OpKind::FC));
            result.slsSamples.push_back(timing.secondsByKind(OpKind::SLS));
            sums[t].accumulate(timing);
        }
    }
    for (size_t t = 0; t < n; ++t) {
        sums[t].scale(1.0 / measure_iters);
        result.tenantAverages.push_back(std::move(sums[t]));
    }
    return result;
}

} // namespace recperf
