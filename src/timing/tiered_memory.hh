/**
 * @file
 * Tiered DRAM/NVM embedding storage model.
 *
 * The paper's related work (Eisenman et al. [25], cited in §V/§VIII)
 * proposes holding the tens-of-GB embedding tables in dense non-
 * volatile memory with a DRAM cache for hot rows. This model quantifies
 * that design point on our simulated servers: sparse-ID traces drive a
 * row-granular DRAM cache; misses pay NVM gather costs.
 */

#ifndef RECPERF_TIMING_TIERED_MEMORY_HH
#define RECPERF_TIMING_TIERED_MEMORY_HH

#include <memory>
#include <vector>

#include "machine/machine_spec.hh"
#include "model/config.hh"
#include "timing/model_timer.hh"
#include "trace/embedding_cache.hh"

namespace recperf {

/** Dense non-volatile memory characteristics (Optane-class). */
struct NvmConfig
{
    /** Idle read latency; several times DRAM. */
    double readLatencyNs = 350.0;

    /** Effective bandwidth on dependent random 64 B gathers. */
    double gatherGBps = 0.30;

    /** Capacity per socket — large enough for any RMC's tables. */
    double capacityGB = 1536.0;
};

/** Outcome of a tiered-memory SLS simulation. */
struct TieredSlsResult
{
    double slsSecondsPerInference = 0.0;
    double dramCacheHitRate = 0.0;
    uint64_t nvmReadsPerInference = 0;

    /** DRAM bytes needed by the cache (capacity_rows x rowBytes). */
    double dramCacheBytes = 0.0;
};

/**
 * Simulates the SparseLengthsSum cost of one model when its embedding
 * tables live in NVM behind a row-granular DRAM cache.
 */
class TieredSlsModel
{
  public:
    /**
     * @param dram_cache_rows total cached rows across all tables
     *        (0 = no cache: every gather reads NVM).
     */
    TieredSlsModel(const MachineSpec &machine, const ModelConfig &config,
                   const NvmConfig &nvm, size_t dram_cache_rows,
                   CachePolicy policy, const TimerOptions &options);

    /**
     * Warm the cache, then measure the average per-inference SLS cost
     * over @p measure_iters inferences.
     */
    TieredSlsResult run(int warmup_iters, int measure_iters);

  private:
    double nvmGatherSeconds(double rows) const;

    MachineSpec machine_;
    ModelConfig config_;
    NvmConfig nvm_;
    TimerOptions options_;
    std::unique_ptr<EmbeddingVectorCache> cache_;
    std::vector<std::unique_ptr<IdGenerator>> table_gens_;
};

} // namespace recperf

#endif // RECPERF_TIMING_TIERED_MEMORY_HH
