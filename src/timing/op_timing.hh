/**
 * @file
 * Timing results for operators and whole-model inferences.
 */

#ifndef RECPERF_TIMING_OP_TIMING_HH
#define RECPERF_TIMING_OP_TIMING_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hh"
#include "ops/op_cost.hh"

namespace recperf {

namespace obs {
class HwTelemetry;
} // namespace obs

/** Timing and memory-behaviour record for one operator invocation. */
struct OpTiming
{
    OpKind kind = OpKind::Other;
    std::string name;

    double seconds = 0.0;          ///< total modeled latency
    double computeSeconds = 0.0;   ///< arithmetic-bound component
    double memorySeconds = 0.0;    ///< memory-bound component
    double dispatchSeconds = 0.0;  ///< fixed framework overhead

    /**
     * Time spent on a near-memory/offload engine (zero for host-only
     * backends). Offloaded work never touches the host hierarchy, so
     * these seconds sit outside the DRAM roofline ceiling.
     */
    double offloadSeconds = 0.0;

    /** Host<->engine link traffic (command upload + result download). */
    uint64_t transferBytes = 0;

    /** Estimated dynamic instructions (for MPKI metrics). */
    double instructions = 0.0;

    /**
     * Algorithmic work: FLOPs executed and bytes moved (before cache
     * filtering). Feeds the arithmetic-intensity / roofline telemetry.
     */
    OpCost cost;

    /** Cache lines serviced per level (SLS uses the real simulator). */
    uint64_t l1Lines = 0;
    uint64_t l2Lines = 0;
    uint64_t l3Lines = 0;
    uint64_t dramLines = 0;
};

/** End-to-end timing of one model inference. */
struct ModelTiming
{
    std::vector<OpTiming> ops;

    /** Sum of per-op latencies (single-threaded execution, as in §IV). */
    double totalSeconds() const;

    /** Latency attributed to a given operator kind. */
    double secondsByKind(OpKind kind) const;

    /** Fraction of total latency in a given operator kind (Fig 7). */
    double fractionByKind(OpKind kind) const;

    /** Latency per operator kind. */
    std::map<OpKind, double> breakdown() const;

    /** Total estimated instructions. */
    double instructions() const;

    /** LLC misses (lines serviced by DRAM) per kilo-instruction. */
    double llcMpki() const;

    /** DRAM lines touched. */
    uint64_t dramLines() const;

    /** Summed FLOPs / bytes across every operator. */
    OpCost totalCost() const;

    /** Summed FLOPs / bytes of one operator kind. */
    OpCost costByKind(OpKind kind) const;

    /** FLOPs per byte moved across the whole inference. */
    double arithmeticIntensity() const;

    /** Merge another inference's records (for aggregation). */
    void accumulate(const ModelTiming &other);

    /** Divide all time/instruction quantities by @p n (averaging). */
    void scale(double inv_n);
};

/**
 * Emit one virtual-time trace span per operator of @p timing, tiling
 * [t0, t0 + scale * totalSeconds] on lane @p tid in execution order
 * (category "op", args carrying the operator kind). @p scale stretches
 * each op's modeled latency by the same factor the caller applied to
 * the total (serving-layer jitter), so the children exactly tile the
 * parent span. Returns the end timestamp. No-op (returning the end
 * timestamp) when tracing is disabled.
 */
double emitOpSpans(obs::Tracer &tracer, const ModelTiming &timing,
                   double t0, uint32_t tid, double scale = 1.0);

struct MachineSpec;

/**
 * Push one inference's hardware-model counters into @p telemetry: the
 * machine's roofline envelope (peak GFLOP/s, stream/gather bandwidth)
 * plus, per operator, modeled seconds, FLOPs, bytes moved,
 * instructions, and per-level cache lines. Callers gate on
 * HwTelemetry::enabled() so the disabled path stays one relaxed load.
 */
void recordTelemetry(obs::HwTelemetry &telemetry,
                     const MachineSpec &machine,
                     const ModelTiming &timing);

} // namespace recperf

#endif // RECPERF_TIMING_OP_TIMING_HH
