/**
 * @file
 * Operator-level inference timing model.
 *
 * This is the substitute for the paper's physical Haswell/Broadwell/
 * Skylake testbed. For each operator of a model configuration it
 * combines:
 *
 *  - a roofline compute term: FLOPs / (SIMD achieved FLOPs/cycle x
 *    frequency), with batch-dependent AVX-2/AVX-512 efficiency (§V);
 *  - a memory term: SparseLengthsSum generates its actual sparse-ID
 *    gather trace (Zipf + temporal re-reference) and plays it through
 *    the machine's simulated cache hierarchy, so hit/miss behaviour —
 *    including shared-LLC contention and inclusive back-invalidation
 *    under co-location — is mechanistic, not assumed. FC layers use an
 *    analytic residency model (which cache level the weights live in,
 *    shrunk by co-located tenants' LLC pressure);
 *  - a fixed per-operator framework dispatch overhead (Caffe2-style);
 *  - optional hyperthreading penalties (FC 1.6x, SLS 1.3x; §VI).
 *
 * Latency is the serial sum of operator latencies: the paper runs one
 * Caffe2 worker with one MKL thread per model instance (§IV).
 *
 * The per-operator cost models live in the pluggable ComputeBackend
 * (backend/compute_backend.hh): CpuBackend carries the models above
 * verbatim, NmpBackend re-models SLS as a near-memory engine. The
 * ModelTimer owns run structure and state — trace generators, cache
 * hierarchy, contention, aggregation — and hands each hook a
 * TimingContext snapshot.
 */

#ifndef RECPERF_TIMING_MODEL_TIMER_HH
#define RECPERF_TIMING_MODEL_TIMER_HH

#include <memory>
#include <vector>

#include "backend/compute_backend.hh"
#include "machine/machine_spec.hh"
#include "model/config.hh"
#include "timing/op_timing.hh"
#include "trace/id_generator.hh"

namespace recperf {

/** Knobs for one timed model instance. */
struct TimerOptions
{
    int64_t batch = 1;

    /** One model per physical core (false) or two per core (true). */
    bool hyperthreading = false;

    /** Popularity skew of the embedding traffic. */
    double zipfAlpha = 1.1;

    /** Temporal re-reference probability (Fig 14 locality knob). */
    double repeatProb = 0.5;

    /**
     * Re-reference window in IDs. Sized so a single tenant's hot
     * embedding rows comfortably fit a server LLC but several
     * co-located tenants' do not (the Section VI contention regime).
     */
    size_t repeatWindow = 32768;

    uint64_t seed = 42;

    /** Which compute backend models this instance's operators. */
    BackendConfig backend;
};

/** Hyperthreading penalties measured in §VI. */
inline constexpr double kHtFcPenalty = 1.6;
inline constexpr double kHtSlsPenalty = 1.3;

/**
 * Times inferences of one model configuration on one machine.
 *
 * A ModelTimer owns per-table trace generators (so consecutive runs see
 * realistic re-reference) and either owns a single-tenant cache
 * hierarchy or is attached to a shared one by ColocationSim.
 */
class ModelTimer
{
  public:
    ModelTimer(const MachineSpec &machine, const ModelConfig &config,
               const TimerOptions &options);

    /**
     * Attach to an externally-owned shared hierarchy (co-location).
     * @param tenant this instance's private L1/L2 slot.
     * @param address_base distinct base so tenants never share lines.
     */
    void attach(CacheHierarchy *shared, uint32_t tenant,
                uint64_t address_base);

    /**
     * Report co-location pressure so the FC residency model can shrink
     * this tenant's effective LLC share.
     * @param active_tenants total co-located model instances.
     * @param other_dram_bytes_per_inf DRAM fill traffic injected by the
     *        other tenants between two of this tenant's inferences.
     */
    void setContention(uint32_t active_tenants,
                       double other_dram_bytes_per_inf);

    /**
     * Change the batch size for subsequent runs (dynamic batching in
     * the serving layer).
     */
    void setBatch(int64_t batch);

    /**
     * Rebind this timer to a different compute backend (e.g. a
     * RunOptions-level backend override at run start). Trace, cache,
     * and contention state are untouched.
     */
    void setBackend(const BackendConfig &backend);

    /** Time one inference, advancing cache and trace state. */
    ModelTiming run();

    /**
     * Warm up, then return the average per-inference timing.
     */
    ModelTiming steadyState(int warmup_iters, int measure_iters);

    const MachineSpec &machine() const { return machine_; }
    const ModelConfig &config() const { return config_; }
    const TimerOptions &options() const { return options_; }

    /** The backend currently modeling this timer's operators. */
    const ComputeBackend &backend() const { return *backend_; }

    /** DRAM bytes this tenant filled during its most recent run(). */
    double lastDramBytes() const { return last_dram_bytes_; }

    /** The hierarchy this timer's gathers run through (owned or shared). */
    const CacheHierarchy *hierarchy() const { return hier_; }

  private:
    /** Snapshot the state a backend timing hook may read or advance. */
    TimingContext makeContext();

    MachineSpec machine_;
    ModelConfig config_;
    TimerOptions options_;
    std::unique_ptr<ComputeBackend> backend_;

    std::unique_ptr<CacheHierarchy> owned_hier_;
    CacheHierarchy *hier_ = nullptr;
    uint32_t tenant_ = 0;
    uint64_t address_base_ = 0;

    uint32_t active_tenants_ = 1;
    double other_dram_bytes_per_inf_ = 0.0;
    double last_dram_bytes_ = 0.0;
    Rng contention_rng_{0};

    std::vector<std::unique_ptr<IdGenerator>> table_gens_;
};

} // namespace recperf

#endif // RECPERF_TIMING_MODEL_TIMER_HH
