#include "timing/model_timer.hh"

#include <algorithm>
#include <cmath>

#include "core/aligned.hh"
#include "core/logging.hh"
#include "obs/hw_counters.hh"

namespace recperf {

ModelTimer::ModelTimer(const MachineSpec &machine, const ModelConfig &config,
                       const TimerOptions &options)
    : machine_(machine), config_(config), options_(options)
{
    config_.validate();
    RP_ASSERT(options_.batch > 0, "batch must be positive");

    Rng rng(options_.seed);
    for (int64_t t = 0; t < config_.emb.numTables; ++t) {
        TraceProfile profile{"timer", options_.zipfAlpha,
                             options_.repeatProb, options_.repeatWindow};
        table_gens_.push_back(
            makeGenerator(profile, config_.emb.rowsOf(t), rng.split()));
    }

    owned_hier_ = machine_.makeHierarchy(1);
    hier_ = owned_hier_.get();
    contention_rng_ = Rng(options_.seed ^ 0xc0ffee123ULL);
    backend_ = makeBackend(options_.backend);
}

void
ModelTimer::attach(CacheHierarchy *shared, uint32_t tenant,
                   uint64_t address_base)
{
    RP_ASSERT(shared != nullptr, "attach to null hierarchy");
    RP_ASSERT(tenant < shared->numCores(), "tenant %u out of %u slots",
              tenant, shared->numCores());
    hier_ = shared;
    tenant_ = tenant;
    address_base_ = address_base;
    owned_hier_.reset();
}

void
ModelTimer::setBatch(int64_t batch)
{
    RP_ASSERT(batch > 0, "batch must be positive");
    options_.batch = batch;
}

void
ModelTimer::setContention(uint32_t active_tenants,
                          double other_dram_bytes_per_inf)
{
    RP_ASSERT(active_tenants >= 1, "at least this tenant is active");
    active_tenants_ = active_tenants;
    other_dram_bytes_per_inf_ = other_dram_bytes_per_inf;
}

void
ModelTimer::setBackend(const BackendConfig &backend)
{
    options_.backend = backend;
    backend_ = makeBackend(backend);
}

TimingContext
ModelTimer::makeContext()
{
    TimingContext ctx{machine_, config_};
    ctx.batch = options_.batch;
    ctx.hyperthreading = options_.hyperthreading;
    ctx.repeatWindow = options_.repeatWindow;
    ctx.hier = hier_;
    ctx.tenant = tenant_;
    ctx.addressBase = address_base_;
    ctx.activeTenants = active_tenants_;
    ctx.otherDramBytesPerInf = other_dram_bytes_per_inf_;
    ctx.lastDramBytes = last_dram_bytes_;
    ctx.contentionRng = &contention_rng_;
    ctx.tableGens = &table_gens_;
    return ctx;
}

ModelTiming
ModelTimer::run()
{
    ModelTiming timing;

    obs::HwTelemetry &telem = obs::HwTelemetry::global();
    if (telem.enabled()) {
        // Fold any pre-existing activity on this hierarchy into the
        // baseline so only this run's accesses land in the delta.
        telem.sampleHierarchy(*hier_);
    }

    // One context per inference: the hooks see exactly the state the
    // pre-backend member functions saw, in the same order.
    TimingContext ctx = makeContext();

    int64_t in = config_.denseFeatures;
    for (size_t i = 0; i < config_.bottomMlp.size(); ++i) {
        int64_t out = config_.bottomMlp[i];
        timing.ops.push_back(
            backend_->timeFc(ctx, strprintf("Bottom-FC[%zu]", i), in,
                             out));
        timing.ops.push_back(backend_->timeActivation(
            ctx, strprintf("ReLU-bottom[%zu]", i), options_.batch * out));
        in = out;
    }

    for (size_t tbl = 0; tbl < table_gens_.size(); ++tbl)
        timing.ops.push_back(backend_->timeSls(ctx, tbl));

    timing.ops.push_back(config_.interaction == InteractionKind::Dot
                             ? backend_->timeBatchMM(ctx)
                             : backend_->timeConcat(ctx));

    in = config_.topInputDim();
    for (size_t i = 0; i < config_.topMlp.size(); ++i) {
        int64_t out = config_.topMlp[i];
        timing.ops.push_back(
            backend_->timeFc(ctx, strprintf("Top-FC[%zu]", i), in, out));
        const char *act = i + 1 < config_.topMlp.size() ? "ReLU-top"
                                                        : "Sigmoid";
        timing.ops.push_back(backend_->timeActivation(
            ctx, strprintf("%s[%zu]", act, i), options_.batch * out));
        in = out;
    }

    last_dram_bytes_ = static_cast<double>(timing.dramLines()) *
        kCacheLineBytes;

    if (telem.enabled()) {
        recordTelemetry(telem, machine_, timing);
        telem.sampleHierarchy(*hier_);
    }
    return timing;
}

ModelTiming
ModelTimer::steadyState(int warmup_iters, int measure_iters)
{
    RP_ASSERT(measure_iters > 0, "need at least one measured iteration");
    for (int i = 0; i < warmup_iters; ++i)
        run();
    // Telemetry should describe steady state, not the warm-up ramp.
    obs::HwTelemetry &telem = obs::HwTelemetry::global();
    if (telem.enabled())
        telem.reset();
    ModelTiming avg;
    for (int i = 0; i < measure_iters; ++i)
        avg.accumulate(run());
    avg.scale(1.0 / measure_iters);
    return avg;
}

} // namespace recperf
