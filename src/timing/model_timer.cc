#include "timing/model_timer.hh"

#include <algorithm>
#include <cmath>

#include "core/aligned.hh"
#include "core/logging.hh"
#include "obs/hw_counters.hh"

namespace recperf {

namespace {

// Address-space layout: each embedding table gets a 64 GB region below
// the tenant base so tables (and tenants) never alias cache lines.
constexpr uint64_t kTableRegionBytes = 1ull << 36;

// Fraction of the private L2 usable by FC weight panels (the rest is
// activations, IDs, and framework state).
constexpr double kL2UsableFrac = 0.8;

// Core cycles of per-row bookkeeping in the SLS inner loop (index
// loads, bounds handling, accumulation stalls). Scales with frequency,
// which is one reason the 2.0 GHz Skylake loses small-batch SLS to the
// 2.4 GHz Broadwell despite its faster DRAM.
constexpr double kSlsPerRowCycles = 10.0;

// Memory-controller queueing under co-location: every additional
// active tenant adds a small delay to DRAM-serviced requests, up to 2x.
double
dramQueueFactor(uint32_t active_tenants)
{
    return std::min(2.0, 1.0 + 0.04 * (active_tenants - 1));
}

// Instruction-count model: IPC-1 dispatch plus vector loads/FMAs.
double
vectorInstructions(double flops, double bytes, int lanes)
{
    return flops / (2.0 * lanes) + bytes / 32.0;
}

} // namespace

ModelTimer::ModelTimer(const MachineSpec &machine, const ModelConfig &config,
                       const TimerOptions &options)
    : machine_(machine), config_(config), options_(options)
{
    config_.validate();
    RP_ASSERT(options_.batch > 0, "batch must be positive");

    Rng rng(options_.seed);
    for (int64_t t = 0; t < config_.emb.numTables; ++t) {
        TraceProfile profile{"timer", options_.zipfAlpha,
                             options_.repeatProb, options_.repeatWindow};
        table_gens_.push_back(
            makeGenerator(profile, config_.emb.rowsOf(t), rng.split()));
    }

    owned_hier_ = machine_.makeHierarchy(1);
    hier_ = owned_hier_.get();
    contention_rng_ = Rng(options_.seed ^ 0xc0ffee123ULL);
}

void
ModelTimer::attach(CacheHierarchy *shared, uint32_t tenant,
                   uint64_t address_base)
{
    RP_ASSERT(shared != nullptr, "attach to null hierarchy");
    RP_ASSERT(tenant < shared->numCores(), "tenant %u out of %u slots",
              tenant, shared->numCores());
    hier_ = shared;
    tenant_ = tenant;
    address_base_ = address_base;
    owned_hier_.reset();
}

void
ModelTimer::setBatch(int64_t batch)
{
    RP_ASSERT(batch > 0, "batch must be positive");
    options_.batch = batch;
}

void
ModelTimer::setContention(uint32_t active_tenants,
                          double other_dram_bytes_per_inf)
{
    RP_ASSERT(active_tenants >= 1, "at least this tenant is active");
    active_tenants_ = active_tenants;
    other_dram_bytes_per_inf_ = other_dram_bytes_per_inf;
}

double
ModelTimer::llcShareBytes() const
{
    return static_cast<double>(machine_.l3.sizeBytes) /
        static_cast<double>(active_tenants_);
}

OpTiming
ModelTimer::timeFc(const std::string &name, int64_t in, int64_t out)
{
    OpTiming t;
    t.kind = OpKind::FC;
    t.name = name;

    const double weight_bytes = static_cast<double>(in * out + out) * 4.0;
    const double act_bytes =
        static_cast<double>(options_.batch * (in + out)) * 4.0;
    const double flops =
        2.0 * static_cast<double>(options_.batch) * static_cast<double>(in) *
        static_cast<double>(out);

    // Steady-state residency: which level do the weights live in?
    HitLevel level;
    if (weight_bytes <= kL2UsableFrac *
            static_cast<double>(machine_.l2.sizeBytes)) {
        level = HitLevel::L2;
    } else if (weight_bytes <= llcShareBytes()) {
        level = HitLevel::L3;
    } else {
        level = HitLevel::Memory;
    }

    // DRAM fills — other tenants' and this tenant's own embedding
    // traffic — displace part of the weight lines between consecutive
    // inferences.
    double refetch_frac = 0.0;
    if (level == HitLevel::L3) {
        // Capacity contention in the shared LLC. An exclusive LLC is
        // only filled by the (much slower) stream of L2 victims, so
        // displacement pressure is reduced.
        double pressure = other_dram_bytes_per_inf_ + last_dram_bytes_;
        if (machine_.policy == InclusionPolicy::Exclusive)
            pressure *= 0.5;
        // The neighbours' fill traffic is bursty: how much of it lands
        // between two of this tenant's weight reuses varies inference
        // to inference. This burstiness is what blows up p99 latency
        // under heavy co-location (Fig 11) while p5 stays put.
        pressure *= std::exp(contention_rng_.nextGaussian() * 0.6);
        refetch_frac = std::min(1.0, pressure / llcShareBytes());
    } else if (level == HitLevel::L2 &&
               machine_.policy == InclusionPolicy::Inclusive) {
        // Inclusive back-invalidation: when an L3 line with an L2 copy
        // is evicted by another tenant's fill, the L2 copy dies too.
        double pressure = other_dram_bytes_per_inf_ *
            std::exp(contention_rng_.nextGaussian() * 0.6);
        refetch_frac = std::min(
            1.0, pressure / static_cast<double>(machine_.l3.sizeBytes));
    }

    double dram_queue = dramQueueFactor(active_tenants_);
    double stream_seconds = machine_.streamSeconds(level, weight_bytes) *
        (level == HitLevel::Memory ? dram_queue : 1.0);

    // Displacement refetches are latency-exposed: they hit in bursts
    // the prefetcher cannot anticipate, so — unlike steady streaming —
    // they do not hide under the compute roofline.
    double refetch_extra = refetch_frac * std::max(
        0.0, dram_queue *
                machine_.streamSeconds(HitLevel::Memory, weight_bytes) -
            machine_.streamSeconds(level, weight_bytes));

    // Activation traffic, from the private L2 (or LLC when large).
    HitLevel act_level = act_bytes <= 0.5 *
            static_cast<double>(machine_.l2.sizeBytes)
        ? HitLevel::L2 : HitLevel::L3;
    stream_seconds += machine_.streamSeconds(act_level, act_bytes);

    t.computeSeconds =
        flops / (machine_.simd.achievedFlopsPerCycle(options_.batch) *
                 machine_.cyclesPerSecond());
    t.memorySeconds = stream_seconds + refetch_extra;
    t.dispatchSeconds = machine_.dispatchSeconds(t.kind);
    t.instructions = vectorInstructions(flops, weight_bytes + act_bytes,
                                        simdLanes(machine_.simd.isa)) +
        machine_.dispatchCyclesFor(t.kind);
    t.cost.flops = flops;
    t.cost.bytesRead = weight_bytes +
        static_cast<double>(options_.batch * in) * 4.0;
    t.cost.bytesWritten = static_cast<double>(options_.batch * out) * 4.0;

    double dram_bytes = refetch_frac * weight_bytes +
        (level == HitLevel::Memory ? weight_bytes : 0.0);
    t.dramLines = static_cast<uint64_t>(dram_bytes / kCacheLineBytes);
    uint64_t weight_lines =
        static_cast<uint64_t>(weight_bytes / kCacheLineBytes);
    if (level == HitLevel::L2)
        t.l2Lines = weight_lines;
    else if (level == HitLevel::L3)
        t.l3Lines = weight_lines - t.dramLines;

    double ht = options_.hyperthreading ? kHtFcPenalty : 1.0;
    t.seconds = (std::max(t.computeSeconds, stream_seconds) +
                 refetch_extra + t.dispatchSeconds) * ht;
    return t;
}

OpTiming
ModelTimer::timeSls(size_t table_index)
{
    OpTiming t;
    t.kind = OpKind::SLS;
    t.name = strprintf("SparseLengthsSum[%zu]", table_index);

    const int64_t dim = config_.emb.embDim;
    const int64_t row_bytes = config_.emb.rowBytes();
    const uint64_t lines_per_row =
        (static_cast<uint64_t>(row_bytes) + kCacheLineBytes - 1) /
        kCacheLineBytes;
    const int64_t rows = options_.batch * config_.emb.lookupsPerTable;
    const uint64_t table_base = address_base_ +
        (static_cast<uint64_t>(table_index) + 1) * kTableRegionBytes;

    IdGenerator &gen = *table_gens_[table_index];
    uint64_t hits[4] = {0, 0, 0, 0};
    for (int64_t r = 0; r < rows; ++r) {
        uint64_t row_addr = table_base +
            static_cast<uint64_t>(gen.next()) *
                static_cast<uint64_t>(row_bytes);
        for (uint64_t l = 0; l < lines_per_row; ++l) {
            HitLevel level = hier_->access(tenant_,
                                           row_addr + l * kCacheLineBytes);
            ++hits[static_cast<int>(level)];
        }
    }

    t.l1Lines = hits[0];
    t.l2Lines = hits[1];
    t.l3Lines = hits[2];
    t.dramLines = hits[3];

    t.memorySeconds =
        machine_.gatherSeconds(HitLevel::L1, static_cast<double>(hits[0])) +
        machine_.gatherSeconds(HitLevel::L2, static_cast<double>(hits[1])) +
        machine_.gatherSeconds(HitLevel::L3, static_cast<double>(hits[2])) +
        machine_.gatherSeconds(HitLevel::Memory,
                               static_cast<double>(hits[3]),
                               options_.batch) *
            dramQueueFactor(active_tenants_) +
        static_cast<double>(rows) * kSlsPerRowCycles /
            machine_.cyclesPerSecond();

    const double flops = static_cast<double>(rows) *
        static_cast<double>(dim);
    // Element-wise sums issue on the vector units but are latency-bound
    // behind the gathers; a quarter of peak is generous.
    t.computeSeconds = flops /
        (0.25 * machine_.simd.peakFlopsPerCycle() *
         machine_.cyclesPerSecond());
    t.dispatchSeconds = machine_.dispatchSeconds(t.kind);
    t.instructions = static_cast<double>(rows) *
            (static_cast<double>(dim) / simdLanes(machine_.simd.isa) * 2.0 +
             8.0) +
        machine_.dispatchCyclesFor(t.kind);
    t.cost.flops = flops;
    // Row reads plus 8 B of sparse-ID metadata per row; one pooled
    // output vector per sample.
    t.cost.bytesRead = static_cast<double>(rows) *
        (static_cast<double>(row_bytes) + 8.0);
    t.cost.bytesWritten = static_cast<double>(options_.batch) *
        static_cast<double>(dim) * 4.0;

    double ht = options_.hyperthreading ? kHtSlsPenalty : 1.0;
    t.seconds = (std::max(t.computeSeconds, t.memorySeconds) +
                 t.dispatchSeconds) * ht;
    return t;
}

OpTiming
ModelTimer::timeConcat()
{
    OpTiming t;
    t.kind = OpKind::Concat;
    t.name = "Concat";
    double bytes = static_cast<double>(options_.batch) *
        static_cast<double>(config_.topInputDim()) * 4.0 * 2.0;
    t.memorySeconds = machine_.streamSeconds(HitLevel::L2, bytes);
    t.dispatchSeconds = machine_.dispatchSeconds(t.kind);
    t.instructions = bytes / 32.0 + machine_.dispatchCyclesFor(t.kind);
    t.cost.bytesRead = bytes * 0.5;
    t.cost.bytesWritten = bytes * 0.5;
    double ht = options_.hyperthreading ? kHtSlsPenalty : 1.0;
    t.seconds = (t.memorySeconds + t.dispatchSeconds) * ht;
    return t;
}

OpTiming
ModelTimer::timeBatchMM()
{
    OpTiming t;
    t.kind = OpKind::BatchMM;
    t.name = "BatchMatMul";

    const int64_t f = config_.featureCount();
    const int64_t d = config_.emb.embDim;
    // Caffe2 computes the full f x f product per sample and slices the
    // triangle afterwards.
    const double flops = 2.0 * static_cast<double>(options_.batch) *
        static_cast<double>(f) * static_cast<double>(f) *
        static_cast<double>(d);
    const double bytes = static_cast<double>(options_.batch) *
        (static_cast<double>(f * d) * 4.0 +
         static_cast<double>(f * f) * 4.0);

    // The GEMM M-dimension is the feature count (tens), so wide-SIMD
    // register tiles fill according to f, not the request batch.
    t.computeSeconds = flops /
        (machine_.simd.achievedFlopsPerCycle(f) *
         machine_.cyclesPerSecond());
    t.memorySeconds = machine_.streamSeconds(HitLevel::L2, bytes);
    t.dispatchSeconds = machine_.dispatchSeconds(t.kind);
    t.instructions = vectorInstructions(flops, bytes,
                                        simdLanes(machine_.simd.isa)) +
        machine_.dispatchCyclesFor(t.kind);
    t.cost.flops = flops;
    t.cost.bytesRead = static_cast<double>(options_.batch) *
        static_cast<double>(f * d) * 4.0;
    t.cost.bytesWritten = static_cast<double>(options_.batch) *
        static_cast<double>(f * f) * 4.0;

    double ht = options_.hyperthreading ? kHtFcPenalty : 1.0;
    t.seconds = (std::max(t.computeSeconds, t.memorySeconds) +
                 t.dispatchSeconds) * ht;
    return t;
}

OpTiming
ModelTimer::timeInteraction()
{
    return config_.interaction == InteractionKind::Dot ? timeBatchMM()
                                                       : timeConcat();
}

OpTiming
ModelTimer::timeActivation(const std::string &name, int64_t elements)
{
    OpTiming t;
    t.kind = OpKind::Activation;
    t.name = name;
    double flops = static_cast<double>(elements);
    double bytes = flops * 4.0 * 2.0;
    t.computeSeconds = flops /
        (0.5 * machine_.simd.peakFlopsPerCycle() *
         machine_.cyclesPerSecond());
    t.memorySeconds = machine_.streamSeconds(HitLevel::L1, bytes);
    t.dispatchSeconds = machine_.dispatchSeconds(t.kind);
    t.instructions = vectorInstructions(flops, bytes,
                                        simdLanes(machine_.simd.isa)) +
        machine_.dispatchCyclesFor(t.kind);
    t.cost.flops = flops;
    t.cost.bytesRead = flops * 4.0;
    t.cost.bytesWritten = flops * 4.0;
    double ht = options_.hyperthreading ? kHtSlsPenalty : 1.0;
    t.seconds = (std::max(t.computeSeconds, t.memorySeconds) +
                 t.dispatchSeconds) * ht;
    return t;
}

ModelTiming
ModelTimer::run()
{
    ModelTiming timing;

    obs::HwTelemetry &telem = obs::HwTelemetry::global();
    if (telem.enabled()) {
        // Fold any pre-existing activity on this hierarchy into the
        // baseline so only this run's accesses land in the delta.
        telem.sampleHierarchy(*hier_);
    }

    int64_t in = config_.denseFeatures;
    for (size_t i = 0; i < config_.bottomMlp.size(); ++i) {
        int64_t out = config_.bottomMlp[i];
        timing.ops.push_back(
            timeFc(strprintf("Bottom-FC[%zu]", i), in, out));
        timing.ops.push_back(timeActivation(
            strprintf("ReLU-bottom[%zu]", i), options_.batch * out));
        in = out;
    }

    for (size_t tbl = 0; tbl < table_gens_.size(); ++tbl)
        timing.ops.push_back(timeSls(tbl));

    timing.ops.push_back(timeInteraction());

    in = config_.topInputDim();
    for (size_t i = 0; i < config_.topMlp.size(); ++i) {
        int64_t out = config_.topMlp[i];
        timing.ops.push_back(timeFc(strprintf("Top-FC[%zu]", i), in, out));
        const char *act = i + 1 < config_.topMlp.size() ? "ReLU-top"
                                                        : "Sigmoid";
        timing.ops.push_back(timeActivation(
            strprintf("%s[%zu]", act, i), options_.batch * out));
        in = out;
    }

    last_dram_bytes_ = static_cast<double>(timing.dramLines()) *
        kCacheLineBytes;

    if (telem.enabled()) {
        recordTelemetry(telem, machine_, timing);
        telem.sampleHierarchy(*hier_);
    }
    return timing;
}

ModelTiming
ModelTimer::steadyState(int warmup_iters, int measure_iters)
{
    RP_ASSERT(measure_iters > 0, "need at least one measured iteration");
    for (int i = 0; i < warmup_iters; ++i)
        run();
    // Telemetry should describe steady state, not the warm-up ramp.
    obs::HwTelemetry &telem = obs::HwTelemetry::global();
    if (telem.enabled())
        telem.reset();
    ModelTiming avg;
    for (int i = 0; i < measure_iters; ++i)
        avg.accumulate(run());
    avg.scale(1.0 / measure_iters);
    return avg;
}

} // namespace recperf
