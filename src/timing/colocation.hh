/**
 * @file
 * Co-location of multiple model instances on one socket (Section VI).
 *
 * N model instances are pinned to distinct cores of a single socket,
 * sharing its LLC. Their embedding gather streams run through the
 * shared simulated hierarchy, so capacity contention and (on inclusive
 * hierarchies) back-invalidation emerge mechanistically. When N
 * exceeds the socket's physical cores, instances double up via
 * hyperthreading and pay the measured SMT penalties (FC 1.6x,
 * SLS 1.3x).
 */

#ifndef RECPERF_TIMING_COLOCATION_HH
#define RECPERF_TIMING_COLOCATION_HH

#include <memory>
#include <vector>

#include "timing/model_timer.hh"

namespace recperf {

/** Result of one co-location experiment. */
struct ColocationResult
{
    /** Average per-inference timing for each tenant. */
    std::vector<ModelTiming> tenantAverages;

    /** Per-inference total-latency samples across all tenants. */
    std::vector<double> latencySamples;

    /** Per-inference FC-time samples (Fig 11's operator view). */
    std::vector<double> fcSamples;

    /** Per-inference SLS-time samples. */
    std::vector<double> slsSamples;

    /** Mean per-inference latency across tenants. */
    double meanLatency() const;

    /** Aggregate inferences per second (tenants run concurrently). */
    double throughput() const;

    /**
     * Aggregate items ranked per second counting only inferences that
     * meet the SLA (latency-bounded throughput, Section III).
     */
    double latencyBoundedThroughput(double sla_seconds,
                                    int64_t batch) const;

    /** Element-wise average of the tenant timing breakdowns. */
    ModelTiming averageTiming() const;
};

/** One co-located model instance: its architecture and run options. */
struct TenantSpec
{
    ModelConfig config;
    TimerOptions options;
};

/**
 * Runs N co-located model instances on one machine's socket.
 */
class ColocationSim
{
  public:
    /**
     * Homogeneous co-location: @p num_tenants instances of one config.
     * Hyperthreading is enabled automatically when the count exceeds
     * the socket's physical core count.
     */
    ColocationSim(const MachineSpec &machine, const ModelConfig &config,
                  const TimerOptions &options, uint32_t num_tenants);

    /**
     * Heterogeneous co-location: one tenant per spec (e.g. the Fig 11
     * experiment co-locating a standalone FC operator with RMC1
     * inferences).
     */
    ColocationSim(const MachineSpec &machine,
                  const std::vector<TenantSpec> &tenants);

    /**
     * Warm up (letting contention estimates converge), then measure.
     */
    ColocationResult run(int warmup_iters, int measure_iters);

    uint32_t numTenants() const;
    bool hyperthreading() const { return hyperthreading_; }

  private:
    void refreshContention(const std::vector<double> &dram_bytes);

    MachineSpec machine_;
    bool hyperthreading_ = false;
    std::unique_ptr<CacheHierarchy> hier_;
    std::vector<std::unique_ptr<ModelTimer>> timers_;
};

} // namespace recperf

#endif // RECPERF_TIMING_COLOCATION_HH
