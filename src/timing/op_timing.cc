#include "timing/op_timing.hh"

namespace recperf {

double
ModelTiming::totalSeconds() const
{
    double total = 0.0;
    for (const OpTiming &op : ops)
        total += op.seconds;
    return total;
}

double
ModelTiming::secondsByKind(OpKind kind) const
{
    double total = 0.0;
    for (const OpTiming &op : ops) {
        if (op.kind == kind)
            total += op.seconds;
    }
    return total;
}

double
ModelTiming::fractionByKind(OpKind kind) const
{
    double total = totalSeconds();
    return total > 0.0 ? secondsByKind(kind) / total : 0.0;
}

std::map<OpKind, double>
ModelTiming::breakdown() const
{
    std::map<OpKind, double> by_kind;
    for (const OpTiming &op : ops)
        by_kind[op.kind] += op.seconds;
    return by_kind;
}

double
ModelTiming::instructions() const
{
    double total = 0.0;
    for (const OpTiming &op : ops)
        total += op.instructions;
    return total;
}

double
ModelTiming::llcMpki() const
{
    double instr = instructions();
    if (instr <= 0.0)
        return 0.0;
    return static_cast<double>(dramLines()) / (instr / 1000.0);
}

uint64_t
ModelTiming::dramLines() const
{
    uint64_t lines = 0;
    for (const OpTiming &op : ops)
        lines += op.dramLines;
    return lines;
}

void
ModelTiming::accumulate(const ModelTiming &other)
{
    if (ops.empty()) {
        ops = other.ops;
        return;
    }
    if (ops.size() != other.ops.size()) {
        // Structure mismatch: fall back to kind-level accumulation by
        // appending; callers normally accumulate identical structures.
        ops.insert(ops.end(), other.ops.begin(), other.ops.end());
        return;
    }
    for (size_t i = 0; i < ops.size(); ++i) {
        OpTiming &dst = ops[i];
        const OpTiming &src = other.ops[i];
        dst.seconds += src.seconds;
        dst.computeSeconds += src.computeSeconds;
        dst.memorySeconds += src.memorySeconds;
        dst.dispatchSeconds += src.dispatchSeconds;
        dst.instructions += src.instructions;
        dst.l1Lines += src.l1Lines;
        dst.l2Lines += src.l2Lines;
        dst.l3Lines += src.l3Lines;
        dst.dramLines += src.dramLines;
    }
}

double
emitOpSpans(obs::Tracer &tracer, const ModelTiming &timing, double t0,
            uint32_t tid, double scale)
{
    if (!tracer.enabled())
        return t0 + scale * timing.totalSeconds();
    double t = t0;
    for (const OpTiming &op : timing.ops) {
        double end = t + scale * op.seconds;
        tracer.span("op", op.name, t, end, tid,
                    {{"kind", opKindName(op.kind)}});
        t = end;
    }
    return t;
}

void
ModelTiming::scale(double inv_n)
{
    for (OpTiming &op : ops) {
        op.seconds *= inv_n;
        op.computeSeconds *= inv_n;
        op.memorySeconds *= inv_n;
        op.dispatchSeconds *= inv_n;
        op.instructions *= inv_n;
        op.l1Lines = static_cast<uint64_t>(op.l1Lines * inv_n);
        op.l2Lines = static_cast<uint64_t>(op.l2Lines * inv_n);
        op.l3Lines = static_cast<uint64_t>(op.l3Lines * inv_n);
        op.dramLines = static_cast<uint64_t>(op.dramLines * inv_n);
    }
}

} // namespace recperf
