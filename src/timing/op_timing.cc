#include "timing/op_timing.hh"

#include "machine/machine_spec.hh"
#include "obs/hw_counters.hh"

namespace recperf {

double
ModelTiming::totalSeconds() const
{
    double total = 0.0;
    for (const OpTiming &op : ops)
        total += op.seconds;
    return total;
}

double
ModelTiming::secondsByKind(OpKind kind) const
{
    double total = 0.0;
    for (const OpTiming &op : ops) {
        if (op.kind == kind)
            total += op.seconds;
    }
    return total;
}

double
ModelTiming::fractionByKind(OpKind kind) const
{
    double total = totalSeconds();
    return total > 0.0 ? secondsByKind(kind) / total : 0.0;
}

std::map<OpKind, double>
ModelTiming::breakdown() const
{
    std::map<OpKind, double> by_kind;
    for (const OpTiming &op : ops)
        by_kind[op.kind] += op.seconds;
    return by_kind;
}

double
ModelTiming::instructions() const
{
    double total = 0.0;
    for (const OpTiming &op : ops)
        total += op.instructions;
    return total;
}

double
ModelTiming::llcMpki() const
{
    double instr = instructions();
    if (instr <= 0.0)
        return 0.0;
    return static_cast<double>(dramLines()) / (instr / 1000.0);
}

uint64_t
ModelTiming::dramLines() const
{
    uint64_t lines = 0;
    for (const OpTiming &op : ops)
        lines += op.dramLines;
    return lines;
}

OpCost
ModelTiming::totalCost() const
{
    OpCost total;
    for (const OpTiming &op : ops)
        total += op.cost;
    return total;
}

OpCost
ModelTiming::costByKind(OpKind kind) const
{
    OpCost total;
    for (const OpTiming &op : ops) {
        if (op.kind == kind)
            total += op.cost;
    }
    return total;
}

double
ModelTiming::arithmeticIntensity() const
{
    return totalCost().intensity();
}

void
ModelTiming::accumulate(const ModelTiming &other)
{
    if (ops.empty()) {
        ops = other.ops;
        return;
    }
    if (ops.size() != other.ops.size()) {
        // Structure mismatch: fall back to kind-level accumulation by
        // appending; callers normally accumulate identical structures.
        ops.insert(ops.end(), other.ops.begin(), other.ops.end());
        return;
    }
    for (size_t i = 0; i < ops.size(); ++i) {
        OpTiming &dst = ops[i];
        const OpTiming &src = other.ops[i];
        dst.seconds += src.seconds;
        dst.computeSeconds += src.computeSeconds;
        dst.memorySeconds += src.memorySeconds;
        dst.dispatchSeconds += src.dispatchSeconds;
        dst.offloadSeconds += src.offloadSeconds;
        dst.transferBytes += src.transferBytes;
        dst.instructions += src.instructions;
        dst.cost += src.cost;
        dst.l1Lines += src.l1Lines;
        dst.l2Lines += src.l2Lines;
        dst.l3Lines += src.l3Lines;
        dst.dramLines += src.dramLines;
    }
}

double
emitOpSpans(obs::Tracer &tracer, const ModelTiming &timing, double t0,
            uint32_t tid, double scale)
{
    if (!tracer.enabled())
        return t0 + scale * timing.totalSeconds();
    double t = t0;
    for (const OpTiming &op : timing.ops) {
        double end = t + scale * op.seconds;
        tracer.span("op", op.name, t, end, tid,
                    {{"kind", opKindName(op.kind)}});
        t = end;
    }
    return t;
}

void
ModelTiming::scale(double inv_n)
{
    for (OpTiming &op : ops) {
        op.seconds *= inv_n;
        op.computeSeconds *= inv_n;
        op.memorySeconds *= inv_n;
        op.dispatchSeconds *= inv_n;
        op.offloadSeconds *= inv_n;
        op.transferBytes = static_cast<uint64_t>(op.transferBytes * inv_n);
        op.instructions *= inv_n;
        op.cost.flops *= inv_n;
        op.cost.bytesRead *= inv_n;
        op.cost.bytesWritten *= inv_n;
        op.l1Lines = static_cast<uint64_t>(op.l1Lines * inv_n);
        op.l2Lines = static_cast<uint64_t>(op.l2Lines * inv_n);
        op.l3Lines = static_cast<uint64_t>(op.l3Lines * inv_n);
        op.dramLines = static_cast<uint64_t>(op.dramLines * inv_n);
    }
}

void
recordTelemetry(obs::HwTelemetry &telemetry, const MachineSpec &machine,
                const ModelTiming &timing)
{
    obs::RooflineSpec roof;
    roof.machine = machine.name;
    roof.peakGflops = machine.peakGflops();
    roof.streamGBps = machine.dram.streamGBps();
    roof.gatherGBps = machine.dram.gatherGBps();
    telemetry.setRoofline(roof);

    for (const OpTiming &op : timing.ops) {
        obs::OpRecord rec;
        rec.kindName = opKindName(op.kind);
        rec.seconds = op.seconds;
        rec.flops = op.cost.flops;
        rec.bytesRead = op.cost.bytesRead;
        rec.bytesWritten = op.cost.bytesWritten;
        rec.instructions = op.instructions;
        rec.l1Lines = op.l1Lines;
        rec.l2Lines = op.l2Lines;
        rec.l3Lines = op.l3Lines;
        rec.dramLines = op.dramLines;
        rec.offloadSeconds = op.offloadSeconds;
        rec.transferBytes = op.transferBytes;
        telemetry.recordOp(rec);
    }
}

} // namespace recperf
