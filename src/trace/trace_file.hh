/**
 * @file
 * Plain-text sparse-ID trace persistence and replay.
 *
 * The open-source benchmark lets users instrument models with recorded
 * or public traces; this gives RecPerf the same capability (one ID per
 * line, '#' comments allowed).
 */

#ifndef RECPERF_TRACE_TRACE_FILE_HH
#define RECPERF_TRACE_TRACE_FILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/id_generator.hh"

namespace recperf {

/** Write a trace; throws FatalError on I/O failure. */
void saveTrace(const std::string &path, const std::vector<int64_t> &ids);

/** Read a trace; throws FatalError on I/O or parse failure. */
std::vector<int64_t> loadTrace(const std::string &path);

/** Replays a fixed trace in a loop. */
class TraceReplayGen : public IdGenerator
{
  public:
    /**
     * @param ids recorded trace (must be non-empty).
     * @param rows table size; all IDs must be < rows.
     */
    TraceReplayGen(std::vector<int64_t> ids, int64_t rows);

    int64_t next() override;
    int64_t rows() const override { return rows_; }

  private:
    std::vector<int64_t> ids_;
    int64_t rows_;
    size_t pos_ = 0;
};

} // namespace recperf

#endif // RECPERF_TRACE_TRACE_FILE_HH
