/**
 * @file
 * Software embedding-vector cache simulation.
 *
 * Fig 14 shows that many production traces re-reference a small set of
 * sparse IDs, which "enables opportunities for embedding vector re-use
 * and intelligent caching" (§VII). This models exactly that: a
 * row-granular cache of embedding vectors (e.g. a DRAM cache in front
 * of NVM-resident tables, as in Eisenman et al. [25], or an
 * accelerator-side scratchpad), with LRU and LFU policies, driven by
 * the same trace generators the timing model uses.
 */

#ifndef RECPERF_TRACE_EMBEDDING_CACHE_HH
#define RECPERF_TRACE_EMBEDDING_CACHE_HH

#include <cstdint>
#include <list>
#include <map>
#include <unordered_map>

#include "trace/id_generator.hh"

namespace recperf {

/** Replacement policy of the vector cache. */
enum class CachePolicy
{
    Lru, ///< least recently used
    Lfu, ///< least frequently used (with LRU tie-break)
};

/** Display name, e.g. "LRU". */
const char *cachePolicyName(CachePolicy policy);

/**
 * A row-granular cache of embedding vectors with a fixed capacity in
 * rows. Keys are opaque 64-bit row identifiers (callers combine table
 * index and row index).
 */
class EmbeddingVectorCache
{
  public:
    EmbeddingVectorCache(size_t capacity_rows, CachePolicy policy);

    /**
     * Reference a row; inserts it on miss (evicting per policy).
     * @return true on hit.
     */
    bool access(uint64_t key);

    /** Probe without updating state. */
    bool contains(uint64_t key) const;

    size_t capacity() const { return capacity_; }
    size_t size() const { return index_.size(); }
    CachePolicy policy() const { return policy_; }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    double hitRate() const;

    void resetStats();

  private:
    struct Entry
    {
        uint64_t key;
        uint64_t frequency; ///< LFU reference count
    };

    // Entries live in buckets keyed by frequency (LFU) or in a single
    // recency list (LRU, where the frequency key is constant 0).
    using Bucket = std::list<Entry>;

    void touch(std::map<uint64_t, Bucket>::iterator bucket_it,
               Bucket::iterator entry_it);
    void evictOne();

    size_t capacity_;
    CachePolicy policy_;
    std::map<uint64_t, Bucket> buckets_;
    std::unordered_map<uint64_t,
                       std::pair<uint64_t, Bucket::iterator>> index_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/**
 * Hit rate of a cache of @p capacity_rows rows over @p n draws from a
 * generator (after a warm-up of the same length).
 */
double simulateCacheHitRate(IdGenerator &gen, size_t n,
                            size_t capacity_rows, CachePolicy policy);

} // namespace recperf

#endif // RECPERF_TRACE_EMBEDDING_CACHE_HH
