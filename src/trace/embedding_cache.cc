#include "trace/embedding_cache.hh"

#include "core/logging.hh"

namespace recperf {

const char *
cachePolicyName(CachePolicy policy)
{
    switch (policy) {
      case CachePolicy::Lru: return "LRU";
      case CachePolicy::Lfu: return "LFU";
    }
    return "Unknown";
}

EmbeddingVectorCache::EmbeddingVectorCache(size_t capacity_rows,
                                           CachePolicy policy)
    : capacity_(capacity_rows), policy_(policy)
{
    RP_ASSERT(capacity_rows > 0, "cache needs a positive capacity");
}

bool
EmbeddingVectorCache::access(uint64_t key)
{
    auto it = index_.find(key);
    if (it != index_.end()) {
        ++hits_;
        auto bucket_it = buckets_.find(it->second.first);
        touch(bucket_it, it->second.second);
        return true;
    }

    ++misses_;
    if (index_.size() >= capacity_)
        evictOne();

    uint64_t freq_key = policy_ == CachePolicy::Lfu ? 1 : 0;
    Bucket &bucket = buckets_[freq_key];
    // Most-recent entries live at the back of their bucket.
    bucket.push_back({key, 1});
    index_[key] = {freq_key, std::prev(bucket.end())};
    return false;
}

bool
EmbeddingVectorCache::contains(uint64_t key) const
{
    return index_.count(key) > 0;
}

double
EmbeddingVectorCache::hitRate() const
{
    uint64_t total = hits_ + misses_;
    return total > 0
        ? static_cast<double>(hits_) / static_cast<double>(total) : 0.0;
}

void
EmbeddingVectorCache::resetStats()
{
    hits_ = 0;
    misses_ = 0;
}

void
EmbeddingVectorCache::touch(std::map<uint64_t, Bucket>::iterator bucket_it,
                            Bucket::iterator entry_it)
{
    Entry entry = *entry_it;
    bucket_it->second.erase(entry_it);

    uint64_t new_key = bucket_it->first;
    if (policy_ == CachePolicy::Lfu) {
        ++entry.frequency;
        new_key = entry.frequency;
    }
    if (bucket_it->second.empty())
        buckets_.erase(bucket_it);

    Bucket &bucket = buckets_[new_key];
    bucket.push_back(entry);
    index_[entry.key] = {new_key, std::prev(bucket.end())};
}

void
EmbeddingVectorCache::evictOne()
{
    RP_ASSERT(!buckets_.empty(), "evict from empty cache");
    // Lowest frequency bucket (LFU) or the single recency bucket (LRU);
    // within a bucket the front is the least recently used.
    auto bucket_it = buckets_.begin();
    Entry victim = bucket_it->second.front();
    bucket_it->second.pop_front();
    if (bucket_it->second.empty())
        buckets_.erase(bucket_it);
    index_.erase(victim.key);
}

double
simulateCacheHitRate(IdGenerator &gen, size_t n, size_t capacity_rows,
                     CachePolicy policy)
{
    EmbeddingVectorCache cache(capacity_rows, policy);
    for (size_t i = 0; i < n; ++i)
        cache.access(static_cast<uint64_t>(gen.next()));
    cache.resetStats();
    for (size_t i = 0; i < n; ++i)
        cache.access(static_cast<uint64_t>(gen.next()));
    return cache.hitRate();
}

} // namespace recperf
