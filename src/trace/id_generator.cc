#include "trace/id_generator.hh"

#include <cmath>
#include <unordered_set>

#include "core/logging.hh"

namespace recperf {

std::vector<int64_t>
IdGenerator::draw(size_t n)
{
    std::vector<int64_t> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(next());
    return out;
}

UniformGen::UniformGen(int64_t rows, Rng rng) : rows_(rows), rng_(rng)
{
    RP_ASSERT(rows > 0, "UniformGen needs a positive row count");
}

int64_t
UniformGen::next()
{
    return static_cast<int64_t>(rng_.nextBelow(
        static_cast<uint64_t>(rows_)));
}

ZipfGen::ZipfGen(int64_t rows, double alpha, Rng rng, bool scatter)
    : rows_(rows), alpha_(alpha), scatter_(scatter), rng_(rng)
{
    RP_ASSERT(rows > 0, "ZipfGen needs a positive row count");
    RP_ASSERT(alpha > 0.0, "Zipf alpha must be positive");
    h_integral_x1_ = hIntegral(1.5) - 1.0;
    h_integral_num_rows_ = hIntegral(static_cast<double>(rows_) + 0.5);
    s_ = 2.0 - hIntegralInverse(hIntegral(2.5) - h(2.0));
}

double
ZipfGen::hIntegral(double x) const
{
    double log_x = std::log(x);
    // (x^(1-alpha) - 1) / (1 - alpha), continuous at alpha == 1.
    double t = (1.0 - alpha_) * log_x;
    double helper = std::fabs(t) > 1e-8 ? std::expm1(t) / t : 1.0 + t / 2.0;
    return log_x * helper;
}

double
ZipfGen::hIntegralInverse(double y) const
{
    double t = y * (1.0 - alpha_);
    if (t < -1.0)
        t = -1.0;
    double helper = std::fabs(t) > 1e-8 ? std::log1p(t) / t : 1.0 - t / 2.0;
    return std::exp(y * helper);
}

double
ZipfGen::h(double x) const
{
    return std::exp(-alpha_ * std::log(x));
}

int64_t
ZipfGen::next()
{
    // Hormann's rejection-inversion sampling for the Zipf distribution.
    while (true) {
        double u = h_integral_num_rows_ +
            rng_.nextDouble() * (h_integral_x1_ - h_integral_num_rows_);
        double x = hIntegralInverse(u);
        auto k = static_cast<int64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        else if (k > rows_)
            k = rows_;

        if (static_cast<double>(k) - x <= s_ ||
            u >= hIntegral(static_cast<double>(k) + 0.5) -
                h(static_cast<double>(k))) {
            int64_t rank0 = k - 1;
            if (!scatter_)
                return rank0;
            // Fibonacci-hash scatter so hot ranks land on unrelated
            // physical rows (and thus unrelated cache sets). rank+1 so
            // the hottest rank does not map to row 0.
            auto scattered = (static_cast<uint64_t>(rank0) + 1) *
                0x9e3779b97f4a7c15ULL;
            return static_cast<int64_t>(scattered %
                                        static_cast<uint64_t>(rows_));
        }
    }
}

RepeatGen::RepeatGen(std::unique_ptr<IdGenerator> base, double repeat_prob,
                     size_t window, Rng rng)
    : base_(std::move(base)), repeat_prob_(repeat_prob), window_(window),
      rng_(rng)
{
    RP_ASSERT(base_ != nullptr, "RepeatGen needs a base generator");
    RP_ASSERT(repeat_prob >= 0.0 && repeat_prob < 1.0,
              "repeat probability %f out of [0, 1)", repeat_prob);
    RP_ASSERT(window > 0, "RepeatGen needs a positive window");
}

int64_t
RepeatGen::next()
{
    int64_t id;
    if (!history_.empty() && rng_.nextBool(repeat_prob_)) {
        size_t idx = static_cast<size_t>(rng_.nextBelow(history_.size()));
        id = history_[idx];
    } else {
        id = base_->next();
    }
    history_.push_back(id);
    if (history_.size() > window_)
        history_.pop_front();
    return id;
}

double
uniqueFraction(const std::vector<int64_t> &trace)
{
    if (trace.empty())
        return 0.0;
    std::unordered_set<int64_t> distinct(trace.begin(), trace.end());
    return static_cast<double>(distinct.size()) /
        static_cast<double>(trace.size());
}

std::vector<TraceProfile>
productionTraceProfiles()
{
    // Spanning Fig 14: from nearly-unique (light personalization
    // services) to heavily repeated (viral-content ranking).
    return {
        {"trace-1", 0.60, 0.05, 512},
        {"trace-2", 0.70, 0.15, 512},
        {"trace-3", 0.80, 0.25, 1024},
        {"trace-4", 0.90, 0.35, 1024},
        {"trace-5", 0.95, 0.45, 2048},
        {"trace-6", 1.00, 0.55, 2048},
        {"trace-7", 1.05, 0.65, 4096},
        {"trace-8", 1.05, 0.75, 4096},
        {"trace-9", 1.10, 0.85, 8192},
        {"trace-10", 1.10, 0.93, 8192},
    };
}

std::unique_ptr<IdGenerator>
makeGenerator(const TraceProfile &profile, int64_t rows, Rng rng)
{
    Rng base_rng = rng.split();
    auto base = std::make_unique<ZipfGen>(rows, profile.zipfAlpha, base_rng);
    if (profile.repeatProb <= 0.0)
        return base;
    return std::make_unique<RepeatGen>(std::move(base), profile.repeatProb,
                                       profile.window, rng);
}

} // namespace recperf
