#include "trace/trace_file.hh"

#include <cstdio>

#include "core/logging.hh"

namespace recperf {

void
saveTrace(const std::string &path, const std::vector<int64_t> &ids)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        RP_FATAL("cannot open trace file '%s' for writing", path.c_str());
    std::fprintf(f, "# recperf sparse-ID trace, %zu entries\n", ids.size());
    for (int64_t id : ids)
        std::fprintf(f, "%lld\n", static_cast<long long>(id));
    std::fclose(f);
}

std::vector<int64_t>
loadTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        RP_FATAL("cannot open trace file '%s' for reading", path.c_str());
    std::vector<int64_t> ids;
    char line[256];
    while (std::fgets(line, sizeof(line), f)) {
        if (line[0] == '#' || line[0] == '\n')
            continue;
        long long value;
        if (std::sscanf(line, "%lld", &value) != 1) {
            std::fclose(f);
            RP_FATAL("malformed trace line in '%s': %s", path.c_str(), line);
        }
        ids.push_back(value);
    }
    std::fclose(f);
    return ids;
}

TraceReplayGen::TraceReplayGen(std::vector<int64_t> ids, int64_t rows)
    : ids_(std::move(ids)), rows_(rows)
{
    RP_ASSERT(!ids_.empty(), "replay trace is empty");
    for (int64_t id : ids_) {
        RP_ASSERT(id >= 0 && id < rows_,
                  "trace ID %lld out of table rows %lld",
                  static_cast<long long>(id), static_cast<long long>(rows_));
    }
}

int64_t
TraceReplayGen::next()
{
    int64_t id = ids_[pos_];
    pos_ = (pos_ + 1) % ids_.size();
    return id;
}

} // namespace recperf
