/**
 * @file
 * Sparse-ID trace generation for embedding-table lookups.
 *
 * The paper's Fig 14 shows that the fraction of *unique* sparse IDs per
 * use case varies widely across production traces — from nearly random
 * to highly repetitive — which determines how much embedding-vector
 * reuse a cache can exploit. The open-source benchmark ships trace
 * generators for exactly this purpose; these are our equivalents:
 *
 *  - UniformGen: uniform random rows (the "random" bar of Fig 14);
 *  - ZipfGen: power-law popularity, the classic recommendation skew;
 *  - RepeatGen: wraps any generator and re-issues recently-seen IDs
 *    with probability p, directly dialing the unique-ID fraction.
 */

#ifndef RECPERF_TRACE_ID_GENERATOR_HH
#define RECPERF_TRACE_ID_GENERATOR_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.hh"

namespace recperf {

/** Produces an endless stream of embedding row indices in [0, rows). */
class IdGenerator
{
  public:
    virtual ~IdGenerator() = default;

    /** Next sparse ID. */
    virtual int64_t next() = 0;

    /** Number of distinct rows this generator draws from. */
    virtual int64_t rows() const = 0;

    /** Convenience: draw @p n IDs. */
    std::vector<int64_t> draw(size_t n);
};

/** Uniform random rows — no reuse beyond birthday collisions. */
class UniformGen : public IdGenerator
{
  public:
    UniformGen(int64_t rows, Rng rng);

    int64_t next() override;
    int64_t rows() const override { return rows_; }

  private:
    int64_t rows_;
    Rng rng_;
};

/**
 * Zipf-distributed rows: P(k) proportional to 1/k^alpha over row ranks
 * 1..rows. Sampled with Hormann's rejection-inversion, which is O(1)
 * per draw even for multi-million-row tables. Row IDs are additionally
 * scattered with a multiplicative hash so that hot rows are not
 * physically adjacent in the table (as in real embedding tables).
 */
class ZipfGen : public IdGenerator
{
  public:
    /**
     * @param alpha skew parameter; ~0.6-1.1 for recommendation traffic.
     * @param scatter when true, decorrelate rank from physical row.
     */
    ZipfGen(int64_t rows, double alpha, Rng rng, bool scatter = true);

    int64_t next() override;
    int64_t rows() const override { return rows_; }
    double alpha() const { return alpha_; }

  private:
    double hIntegral(double x) const;
    double hIntegralInverse(double y) const;
    double h(double x) const;

    int64_t rows_;
    double alpha_;
    bool scatter_;
    Rng rng_;
    double h_integral_x1_;
    double h_integral_num_rows_;
    double s_;
};

/**
 * Temporal-locality wrapper: with probability @p repeat_prob the next
 * ID is re-drawn uniformly from a sliding window of recent IDs,
 * otherwise it comes from the base generator. The expected unique-ID
 * fraction of a long trace is approximately (1 - repeat_prob) for
 * large tables, making Fig 14's spectrum directly reproducible.
 */
class RepeatGen : public IdGenerator
{
  public:
    RepeatGen(std::unique_ptr<IdGenerator> base, double repeat_prob,
              size_t window, Rng rng);

    int64_t next() override;
    int64_t rows() const override { return base_->rows(); }
    double repeatProb() const { return repeat_prob_; }

  private:
    std::unique_ptr<IdGenerator> base_;
    double repeat_prob_;
    size_t window_;
    Rng rng_;
    std::deque<int64_t> history_;
};

/** Fraction of distinct values in a trace (the Fig 14 y-axis). */
double uniqueFraction(const std::vector<int64_t> &trace);

/** A named trace recipe, mirroring the paper's production traces 1-10. */
struct TraceProfile
{
    std::string name;
    double zipfAlpha;   ///< popularity skew
    double repeatProb;  ///< temporal re-reference probability
    size_t window;      ///< re-reference window (IDs)
};

/**
 * Ten synthetic production-like profiles spanning Fig 14's range of
 * unique-ID fractions (~5% to ~90%), plus callers can always use plain
 * UniformGen for the "random" reference bar.
 */
std::vector<TraceProfile> productionTraceProfiles();

/** Instantiate a generator for a profile over a table of @p rows rows. */
std::unique_ptr<IdGenerator> makeGenerator(const TraceProfile &profile,
                                           int64_t rows, Rng rng);

} // namespace recperf

#endif // RECPERF_TRACE_ID_GENERATOR_HH
