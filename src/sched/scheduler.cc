#include "sched/scheduler.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"
#include "timing/colocation.hh"

namespace recperf {

const char *
placementPolicyName(PlacementPolicy policy)
{
    switch (policy) {
      case PlacementPolicy::TypeOblivious: return "type-oblivious";
      case PlacementPolicy::ModelAware: return "model-aware";
    }
    return "unknown";
}

double
Placement::servedFraction() const
{
    return demandItemsPerSec > 0.0 ? servedItemsPerSec / demandItemsPerSec
                                   : 0.0;
}

HeterogeneousScheduler::HeterogeneousScheduler(
    std::vector<MachinePool> pools, uint32_t tenants_per_socket)
    : pools_(std::move(pools)), tenants_per_socket_(tenants_per_socket)
{
    RP_ASSERT(!pools_.empty(), "scheduler needs at least one pool");
    RP_ASSERT(tenants_per_socket_ >= 1, "need at least one tenant");
}

double
HeterogeneousScheduler::machineRate(size_t pool,
                                    const Workload &workload) const
{
    RP_ASSERT(pool < pools_.size(), "pool %zu out of %zu", pool,
              pools_.size());
    const MachineSpec &spec = pools_[pool].spec;

    TimerOptions opts;
    opts.batch = workload.batch;
    ColocationSim sim(spec, workload.config, opts, tenants_per_socket_);
    ColocationResult r = sim.run(8, 5);

    double latency = r.meanLatency();
    if (latency > workload.slaSeconds)
        return 0.0;
    // All sockets run the same co-location pattern.
    double per_socket = static_cast<double>(tenants_per_socket_) *
        static_cast<double>(workload.batch) / latency;
    return per_socket * spec.sockets;
}

Placement
HeterogeneousScheduler::place(const std::vector<Workload> &workloads,
                              PlacementPolicy policy) const
{
    RP_ASSERT(!workloads.empty(), "nothing to place");

    // Rate matrix: items/s per machine for every (pool, workload).
    std::vector<std::vector<double>> rate(pools_.size());
    for (size_t p = 0; p < pools_.size(); ++p) {
        for (const Workload &w : workloads)
            rate[p].push_back(machineRate(p, w));
    }

    Placement placement;
    for (const Workload &w : workloads)
        placement.demandItemsPerSec += w.demandItemsPerSec;

    std::vector<uint32_t> free_machines;
    for (const MachinePool &pool : pools_)
        free_machines.push_back(pool.machines);
    std::vector<double> unmet;
    for (const Workload &w : workloads)
        unmet.push_back(w.demandItemsPerSec);

    auto allocate = [&](size_t p, size_t w, uint32_t count) {
        if (count == 0)
            return;
        // Machines are consumed even when they serve nothing (rate 0):
        // a type-oblivious scheduler does not know any better.
        free_machines[p] -= count;
        placement.allocations.push_back({p, w, count, rate[p][w]});
        double served = std::min(unmet[w],
                                 rate[p][w] * static_cast<double>(count));
        placement.servedItemsPerSec += served;
        unmet[w] -= served;
    };

    if (policy == PlacementPolicy::TypeOblivious) {
        // Deal machines out one at a time to the workload with the most
        // unmet demand, ignoring machine type entirely.
        for (size_t p = 0; p < pools_.size(); ++p) {
            while (free_machines[p] > 0) {
                size_t needy = 0;
                for (size_t w = 1; w < workloads.size(); ++w) {
                    if (unmet[w] > unmet[needy])
                        needy = w;
                }
                if (unmet[needy] <= 0.0)
                    break;
                allocate(p, needy, 1);
            }
        }
    } else {
        // Model-aware, scarcity first: workloads that few machine
        // types can serve (e.g. a tight SLA only one generation meets)
        // claim their machines before flexible workloads consume them.
        std::vector<size_t> order(workloads.size());
        for (size_t w = 0; w < order.size(); ++w)
            order[w] = w;
        auto feasible_pools = [&](size_t w) {
            size_t n = 0;
            for (size_t p = 0; p < pools_.size(); ++p)
                n += rate[p][w] > 0.0 ? 1 : 0;
            return n;
        };
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                             return feasible_pools(a) < feasible_pools(b);
                         });

        for (size_t w : order) {
            while (unmet[w] > 0.0) {
                // Best remaining pool for this workload.
                size_t best_p = pools_.size();
                for (size_t p = 0; p < pools_.size(); ++p) {
                    if (free_machines[p] == 0 || rate[p][w] <= 0.0)
                        continue;
                    if (best_p == pools_.size() ||
                        rate[p][w] > rate[best_p][w]) {
                        best_p = p;
                    }
                }
                if (best_p == pools_.size())
                    break;
                auto needed = static_cast<uint32_t>(std::min<double>(
                    free_machines[best_p],
                    std::ceil(unmet[w] / rate[best_p][w])));
                allocate(best_p, w, std::max(1u, needed));
            }
        }
    }
    return placement;
}

} // namespace recperf
