#include "sched/brownout.hh"

#include <cmath>

#include "core/logging.hh"

namespace recperf {

const char *
brownoutLevelName(BrownoutLevel level)
{
    switch (level) {
    case BrownoutLevel::Full:
        return "full";
    case BrownoutLevel::TruncateCandidates:
        return "truncate_candidates";
    case BrownoutLevel::SkipTables:
        return "skip_tables";
    case BrownoutLevel::StaleEmbeddings:
        return "stale_embeddings";
    }
    return "unknown";
}

double
BrownoutOptions::enterThreshold(int level) const
{
    if (level <= 0)
        return 0.0;
    return enterBurn * std::pow(escalationGrowth, level - 1);
}

double
BrownoutOptions::qualityScore(BrownoutLevel level) const
{
    // Modeled fidelity of the accuracy proxy per level. Truncating the
    // candidate set costs little (the head of the ranking survives);
    // stale embeddings cost the most (features are out of date).
    switch (level) {
    case BrownoutLevel::Full:
        return 1.0;
    case BrownoutLevel::TruncateCandidates:
        return 0.97;
    case BrownoutLevel::SkipTables:
        return 0.92;
    case BrownoutLevel::StaleEmbeddings:
        return 0.85;
    }
    return 1.0;
}

std::string
BrownoutOptions::validate() const
{
    if (!enabled)
        return "";
    if (!(enterBurn > 0.0) || std::isnan(enterBurn))
        return strprintf("brownout enter burn rate must be positive "
                         "(got %g)", enterBurn);
    if (!(escalationGrowth >= 1.0))
        return strprintf("brownout escalation growth must be >= 1 "
                         "(got %g)", escalationGrowth);
    if (!(exitFraction > 0.0) || exitFraction >= 1.0)
        return strprintf("brownout exit fraction must be in (0, 1) "
                         "(got %g)", exitFraction);
    if (dwellSeconds < 0.0 || std::isnan(dwellSeconds))
        return strprintf("brownout dwell cannot be negative (got %g s)",
                         dwellSeconds);
    if (!(truncateFraction > 0.0) || truncateFraction > 1.0)
        return strprintf("brownout truncate fraction must be in (0, 1] "
                         "(got %g)", truncateFraction);
    if (skipTableFraction < 0.0 || skipTableFraction > 1.0)
        return strprintf("brownout skip-table fraction must be in "
                         "[0, 1] (got %g)", skipTableFraction);
    if (!(shortWindowSeconds > 0.0) || !(longWindowSeconds > 0.0))
        return "brownout burn-rate windows must be positive";
    if (shortWindowSeconds > longWindowSeconds)
        return strprintf("brownout short window (%g s) cannot exceed "
                         "the long window (%g s)",
                         shortWindowSeconds, longWindowSeconds);
    if (!(errorBudget > 0.0))
        return strprintf("brownout error budget must be positive "
                         "(got %g)", errorBudget);
    return "";
}

BrownoutController::BrownoutController(const BrownoutOptions &options)
    : options_(options)
{
}

BrownoutLevel
BrownoutController::update(double now, double burnShort, double burnLong)
{
    if (!options_.enabled)
        return BrownoutLevel::Full;
    // The dwell gate only applies after the first transition, so a run
    // starting already on fire escalates immediately.
    bool dwelled = !moved_ ||
        now - lastTransition_ >= options_.dwellSeconds;
    if (dwelled) {
        if (level_ + 1 < kBrownoutLevels &&
            burnShort >= options_.enterThreshold(level_ + 1)) {
            ++level_;
            ++transitions_;
            moved_ = true;
            lastTransition_ = now;
        } else if (level_ > 0 &&
                   burnLong <= options_.enterThreshold(level_) *
                       options_.exitFraction) {
            --level_;
            ++transitions_;
            moved_ = true;
            lastTransition_ = now;
        }
    }
    return static_cast<BrownoutLevel>(level_);
}

} // namespace recperf
