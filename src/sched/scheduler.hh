/**
 * @file
 * Heterogeneity-aware placement of recommendation inference.
 *
 * The paper's system-level insight: data centers hold a mix of
 * Haswell/Broadwell/Skylake servers, and the optimal platform depends
 * on the model class and operating point (latency-critical filtering
 * favours Broadwell; batched, co-located throughput favours Skylake —
 * Takeaways 3, 4, 7). The scheduler assigns machines from heterogeneous
 * pools to workload streams, either blindly (type-oblivious) or using
 * the timing model's predictions, and reports the achievable
 * SLA-bounded throughput of each policy.
 */

#ifndef RECPERF_SCHED_SCHEDULER_HH
#define RECPERF_SCHED_SCHEDULER_HH

#include <string>
#include <vector>

#include "machine/machine_spec.hh"
#include "model/config.hh"
#include "timing/model_timer.hh"

namespace recperf {

/** A pool of identical machines. */
struct MachinePool
{
    MachineSpec spec;
    uint32_t machines = 0;
};

/** A workload stream: one model served at one operating point. */
struct Workload
{
    ModelConfig config;
    int64_t batch = 32;
    double slaSeconds = 0.450;
    /** Items/s the service must rank; demand beyond capacity is lost. */
    double demandItemsPerSec = 0.0;
};

/** How machines are matched to workloads. */
enum class PlacementPolicy
{
    /** Type-oblivious: machines are dealt out round-robin. */
    TypeOblivious,
    /** Model-aware: greedily match pools to the workloads they serve
     *  best (items/s under SLA, as predicted by the timing model). */
    ModelAware,
};

/** Display name, e.g. "model-aware". */
const char *placementPolicyName(PlacementPolicy policy);

/** One (pool, workload) allocation decision. */
struct Allocation
{
    size_t poolIndex = 0;
    size_t workloadIndex = 0;
    uint32_t machines = 0;
    double itemsPerSecPerMachine = 0.0;
};

/** The outcome of placing all workloads. */
struct Placement
{
    std::vector<Allocation> allocations;
    /** Items/s served within SLA, summed over workloads (capped by
     *  demand). */
    double servedItemsPerSec = 0.0;
    /** Total demand across workloads. */
    double demandItemsPerSec = 0.0;

    double servedFraction() const;
};

/**
 * Places heterogeneous machine pools against workload streams.
 */
class HeterogeneousScheduler
{
  public:
    /**
     * @param tenants_per_socket co-located instances assumed per
     *        socket when estimating machine capacity.
     */
    explicit HeterogeneousScheduler(std::vector<MachinePool> pools,
                                    uint32_t tenants_per_socket = 8);

    /**
     * Items/s (within SLA) one machine of @p pool sustains on
     * @p workload; 0 when the SLA cannot be met at this co-location.
     */
    double machineRate(size_t pool, const Workload &workload) const;

    /** Assign machines to workloads under the given policy. */
    Placement place(const std::vector<Workload> &workloads,
                    PlacementPolicy policy) const;

    const std::vector<MachinePool> &pools() const { return pools_; }

  private:
    std::vector<MachinePool> pools_;
    uint32_t tenants_per_socket_;
};

} // namespace recperf

#endif // RECPERF_SCHED_SCHEDULER_HH
