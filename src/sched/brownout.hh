/**
 * @file
 * SLO-driven brownout ladder: ordered graceful-degradation levels.
 *
 * Under sustained overload, collapsing (unbounded queues, blanket
 * shedding) loses every request; browning out trades a little modeled
 * quality for bounded latency. The ladder orders the degradations the
 * serving layer can apply per request, cheapest-first:
 *
 *   L0 Full              — full model, full candidate set
 *   L1 TruncateCandidates— score only a fraction of the candidate set
 *                          (smaller effective batch per request)
 *   L2 SkipTables        — additionally skip low-value embedding
 *                          tables (drop a fraction of the SLS work)
 *   L3 StaleEmbeddings   — serve from cached/stale pooled embeddings
 *                          (no SLS work at all)
 *
 * A BrownoutController picks the level by reading the SLO burn-rate
 * gauges (obs::TimeSeriesSampler, PR 5): it escalates one level when
 * the *short*-window burn rate crosses that level's threshold and
 * de-escalates when the *long*-window burn rate falls below a fraction
 * of it — classic multi-window hysteresis, so a transient spike climbs
 * the ladder fast but recovery is deliberate. A dwell time bounds the
 * transition rate in both directions (no flapping). Each level carries
 * a modeled quality score so runs can report the accuracy proxy they
 * traded away.
 *
 * The controller is pure state-machine arithmetic over virtual time —
 * deterministic and bit-identical across host thread counts.
 */

#ifndef RECPERF_SCHED_BROWNOUT_HH
#define RECPERF_SCHED_BROWNOUT_HH

#include <cstdint>
#include <string>

namespace recperf {

/** Degradation levels, ordered by increasing quality loss. */
enum class BrownoutLevel : int
{
    Full = 0,
    TruncateCandidates = 1,
    SkipTables = 2,
    StaleEmbeddings = 3,
};

/** Number of ladder levels (Full included). */
constexpr int kBrownoutLevels = 4;

const char *brownoutLevelName(BrownoutLevel level);

/** Ladder thresholds, hysteresis, and per-level degradation knobs. */
struct BrownoutOptions
{
    bool enabled = false;

    /**
     * Short-window burn rate at which the controller leaves L0. A burn
     * rate of 1.0 consumes the error budget exactly at the allowed
     * rate, so the default arms only under clear overload.
     */
    double enterBurn = 4.0;

    /** Threshold growth per level: enter(k) = enterBurn * growth^(k-1). */
    double escalationGrowth = 2.0;

    /**
     * De-escalate from level k once the long-window burn rate drops
     * below enter(k) * exitFraction (the hysteresis band).
     */
    double exitFraction = 0.5;

    /** Minimum virtual time between transitions (either direction). */
    double dwellSeconds = 0.02;

    /** Candidate-set fraction kept at L1 and above. */
    double truncateFraction = 0.5;

    /** Fraction of SLS (embedding) work skipped at L2. */
    double skipTableFraction = 0.5;

    /** Burn-rate windows and budget of the controller's own sensor. */
    double shortWindowSeconds = 0.1;
    double longWindowSeconds = 0.5;
    double errorBudget = 0.01;

    /** Short-window burn rate that triggers entry *into* @p level. */
    double enterThreshold(int level) const;

    /** Modeled quality retained by answers served at @p level. */
    double qualityScore(BrownoutLevel level) const;

    /** Empty string when sane, first problem otherwise (CLI-grade). */
    std::string validate() const;
};

/**
 * The per-run ladder state machine. Call update() at each decision
 * point (batch formation) with the current burn-rate readings; it
 * moves at most one level per call.
 */
class BrownoutController
{
  public:
    explicit BrownoutController(const BrownoutOptions &options);

    /** Re-evaluate the level at virtual time @p now. */
    BrownoutLevel update(double now, double burnShort, double burnLong);

    BrownoutLevel level() const
    {
        return static_cast<BrownoutLevel>(level_);
    }

    /** Level changes (either direction) since construction. */
    uint64_t transitions() const { return transitions_; }

  private:
    BrownoutOptions options_;
    int level_ = 0;
    bool moved_ = false;
    double lastTransition_ = 0.0;
    uint64_t transitions_ = 0;
};

} // namespace recperf

#endif // RECPERF_SCHED_BROWNOUT_HH
