#include "fleet/fleet_mix.hh"

#include <cmath>

#include "core/logging.hh"
#include "model/proxy.hh"
#include "model/zoo.hh"
#include "timing/model_timer.hh"

namespace recperf {

namespace {

bool
isRecommendation(ModelClass cls)
{
    return cls == ModelClass::RMC1 || cls == ModelClass::RMC2 ||
        cls == ModelClass::RMC3 || cls == ModelClass::NCF;
}

/** Normalized operator breakdown of a zoo config timed on a machine. */
std::map<OpKind, double>
timedBreakdown(const MachineSpec &machine, const ModelConfig &config,
               int64_t batch)
{
    TimerOptions opts;
    opts.batch = batch;
    ModelTimer timer(machine, config, opts);
    ModelTiming timing = timer.steadyState(8, 8);
    std::map<OpKind, double> shares = timing.breakdown();
    double total = timing.totalSeconds();
    RP_ASSERT(total > 0.0, "zero model time in fleet breakdown");
    for (auto &[kind, secs] : shares)
        secs /= total;
    return shares;
}

} // namespace

FleetMix::FleetMix(std::vector<FleetEntry> entries)
    : entries_(std::move(entries))
{
    double total = 0.0;
    for (const FleetEntry &e : entries_) {
        RP_ASSERT(e.cycleShare >= 0.0, "negative cycle share for %s",
                  e.name.c_str());
        total += e.cycleShare;
    }
    RP_ASSERT(std::fabs(total - 1.0) < 1e-6,
              "fleet cycle shares sum to %f, expected 1", total);
}

FleetMix
FleetMix::productionDefault(const MachineSpec &machine)
{
    // Fig 1: RMC1-3 together 65%, all recommendation >= 79%. Operator
    // breakdowns are measured at unit batch, like Fig 7.
    const int64_t serving_batch = 1;
    std::vector<FleetEntry> entries;

    entries.push_back({"RMC1", ModelClass::RMC1, 0.31,
                       timedBreakdown(machine, rmc1Small(), serving_batch)});
    entries.push_back({"RMC2", ModelClass::RMC2, 0.24,
                       timedBreakdown(machine, rmc2Small(), serving_batch)});
    entries.push_back({"RMC3", ModelClass::RMC3, 0.10,
                       timedBreakdown(machine, rmc3Small(), serving_batch)});
    // "Other RMCs": hundreds of diverse models; approximated as an even
    // blend of the large light-ranking and heavy-ranking variants.
    std::map<OpKind, double> other;
    for (const auto &[kind, frac] :
         timedBreakdown(machine, rmc1Large(), serving_batch)) {
        other[kind] += 0.5 * frac;
    }
    for (const auto &[kind, frac] :
         timedBreakdown(machine, rmc3Large(), serving_batch)) {
        other[kind] += 0.5 * frac;
    }
    entries.push_back({"Other-RMCs", ModelClass::NCF, 0.14, other});

    // Non-recommendation remainder: CNN- and RNN-dominated services.
    double non_rec = 1.0 - 0.31 - 0.24 - 0.10 - 0.14;
    auto proxies = proxyModels();
    const ProxyModel *resnet = nullptr;
    const ProxyModel *gnmt = nullptr;
    for (const ProxyModel &p : proxies) {
        if (p.name == "ResNet50")
            resnet = &p;
        if (p.name == "GNMT")
            gnmt = &p;
    }
    RP_ASSERT(resnet && gnmt, "proxy models missing");
    // The paper's fleet runs far more CNN than RNN cycles (SLS alone is
    // 4x the Conv cycles but 20x the Recurrent cycles, Section II-B).
    entries.push_back({"CNN-services", ModelClass::Other, non_rec * 0.83,
                       resnet->opShare});
    entries.push_back({"RNN-services", ModelClass::Other, non_rec * 0.17,
                       gnmt->opShare});

    return FleetMix(std::move(entries));
}

std::map<std::string, double>
FleetMix::modelShares() const
{
    std::map<std::string, double> shares;
    for (const FleetEntry &e : entries_)
        shares[e.name] += e.cycleShare;
    return shares;
}

double
FleetMix::recommendationShare() const
{
    double share = 0.0;
    for (const FleetEntry &e : entries_) {
        if (isRecommendation(e.modelClass))
            share += e.cycleShare;
    }
    return share;
}

double
FleetMix::rmcShare() const
{
    double share = 0.0;
    for (const FleetEntry &e : entries_) {
        if (e.modelClass == ModelClass::RMC1 ||
            e.modelClass == ModelClass::RMC2 ||
            e.modelClass == ModelClass::RMC3) {
            share += e.cycleShare;
        }
    }
    return share;
}

FleetMix::OperatorShares
FleetMix::operatorShares() const
{
    OperatorShares shares;
    for (const FleetEntry &e : entries_) {
        auto &bucket = isRecommendation(e.modelClass)
            ? shares.recommendation : shares.nonRecommendation;
        for (const auto &[kind, frac] : e.opBreakdown)
            bucket[kind] += e.cycleShare * frac;
    }
    return shares;
}

} // namespace recperf
