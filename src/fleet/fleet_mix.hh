/**
 * @file
 * Data-center fleet model: which models consume the AI cycles.
 *
 * Fig 1 of the paper reports that recommendation models consume over
 * 79% of AI inference cycles (RMC1-3 alone 65%); Fig 4 breaks the
 * fleet-wide cycles down by operator (FC, SLS and Concat together over
 * 45%, SLS alone ~15%). Those figures are fleet-weighted sums of
 * per-model operator breakdowns; this module performs that weighting
 * over a configurable mix of recommendation models (timed with the
 * machine model) and non-recommendation proxies.
 */

#ifndef RECPERF_FLEET_FLEET_MIX_HH
#define RECPERF_FLEET_FLEET_MIX_HH

#include <map>
#include <string>
#include <vector>

#include "machine/machine_spec.hh"
#include "model/config.hh"
#include "ops/op_cost.hh"

namespace recperf {

/** One workload's share of the fleet's AI inference cycles. */
struct FleetEntry
{
    std::string name;
    ModelClass modelClass = ModelClass::Other;
    double cycleShare = 0.0; ///< fraction of all AI inference cycles
    /** Operator breakdown within this workload (fractions sum to 1). */
    std::map<OpKind, double> opBreakdown;
};

/** A weighted collection of fleet workloads. */
class FleetMix
{
  public:
    explicit FleetMix(std::vector<FleetEntry> entries);

    /**
     * The paper's production mix: RMC1 ~31%, RMC2 ~24%, RMC3 ~10%
     * (together 65%), other recommendation models 14% (79% total),
     * and non-recommendation CNN/RNN workloads for the remainder.
     * Recommendation operator breakdowns are obtained by timing the
     * zoo configs on @p machine at a typical serving batch.
     */
    static FleetMix productionDefault(const MachineSpec &machine);

    const std::vector<FleetEntry> &entries() const { return entries_; }

    /** Fraction of all AI cycles per workload (Fig 1). */
    std::map<std::string, double> modelShares() const;

    /** Fraction of all AI cycles spent in recommendation models. */
    double recommendationShare() const;

    /** Fraction of AI cycles in RMC1+RMC2+RMC3. */
    double rmcShare() const;

    /** Fleet-wide cycles per operator kind (Fig 4), split into
     *  recommendation and non-recommendation contributions. */
    struct OperatorShares
    {
        std::map<OpKind, double> recommendation;
        std::map<OpKind, double> nonRecommendation;
    };
    OperatorShares operatorShares() const;

  private:
    std::vector<FleetEntry> entries_;
};

} // namespace recperf

#endif // RECPERF_FLEET_FLEET_MIX_HH
