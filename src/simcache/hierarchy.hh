/**
 * @file
 * Multi-core, three-level cache hierarchy with inclusive or exclusive
 * L2/L3 policies.
 *
 * Haswell and Broadwell implement inclusive L2/L3 hierarchies; Skylake's
 * L3 is exclusive (non-inclusive victim cache) of the L2 (Table II).
 * The paper attributes Broadwell's co-location latency degradation and
 * multimodal tail behaviour to inclusive back-invalidation (Takeaway 7,
 * Fig 11); this model reproduces that mechanism: an eviction from an
 * inclusive LLC removes the line from every core's private L1/L2.
 *
 * Each "core" owns a private L1 and L2 and shares the L3. Co-located
 * model instances are mapped to distinct cores, so their irregular
 * embedding-table streams contend in the shared LLC exactly as in the
 * paper's co-location experiments.
 */

#ifndef RECPERF_SIMCACHE_HIERARCHY_HH
#define RECPERF_SIMCACHE_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "simcache/cache.hh"

namespace recperf {

/** Which level serviced an access. */
enum class HitLevel
{
    L1,
    L2,
    L3,
    Memory,
};

/** Display name, e.g. "L2" or "DRAM". */
const char *hitLevelName(HitLevel level);

/** L2/L3 inclusion policy (Table II row "L2/L3 Inclusive or Exclusive"). */
enum class InclusionPolicy
{
    Inclusive,
    Exclusive,
};

/** Geometry and access latency of one cache level. */
struct LevelConfig
{
    uint64_t sizeBytes = 0;
    uint32_t associativity = 8;
    uint32_t latencyCycles = 4;
};

/**
 * Hardware prefetching configuration (§VII's "intelligent
 * pre-fetching" lever). The next-line prefetcher pulls the @p degree
 * following lines into the private L2 on every demand miss — it turns
 * the second line of a 128 B embedding row from a demand miss into a
 * hit, but pollutes the caches on single-line rows.
 */
struct PrefetchConfig
{
    bool nextLine = false;
    uint32_t degree = 1;
};

/**
 * Aggregated per-level statistics of one hierarchy: every core's
 * private L1s (and L2s) summed, plus the shared LLC. This is the
 * hardware-counter view the telemetry layer exports — per-level
 * hits/misses/back-invalidations feeding the MPKI gauges.
 */
struct HierarchyCounters
{
    CacheStats l1; ///< summed over all cores' private L1s
    CacheStats l2; ///< summed over all cores' private L2s
    CacheStats l3; ///< the shared LLC
};

/**
 * Three-level hierarchy: per-core private L1 and L2, shared L3.
 */
class CacheHierarchy
{
  public:
    /**
     * @param num_cores number of private L1/L2 pairs (co-location slots).
     * @param dram_latency_cycles core cycles charged for an LLC miss.
     */
    CacheHierarchy(uint32_t num_cores, const LevelConfig &l1,
                   const LevelConfig &l2, const LevelConfig &l3,
                   InclusionPolicy policy, uint32_t dram_latency_cycles,
                   const PrefetchConfig &prefetch = PrefetchConfig{});

    uint32_t numCores() const { return static_cast<uint32_t>(l1s_.size()); }
    InclusionPolicy policy() const { return policy_; }

    /**
     * Simulate one load by core @p core to byte address @p addr,
     * applying the inclusion policy's fill/eviction rules.
     *
     * @return the level that serviced the access.
     */
    HitLevel access(uint32_t core, uint64_t addr);

    /** Latency in core cycles for an access serviced at @p level. */
    uint32_t latencyCycles(HitLevel level) const;

    Cache &l1(uint32_t core) { return *l1s_.at(core); }
    Cache &l2(uint32_t core) { return *l2s_.at(core); }
    Cache &l3() { return *l3_; }
    const Cache &l1(uint32_t core) const { return *l1s_.at(core); }
    const Cache &l2(uint32_t core) const { return *l2s_.at(core); }
    const Cache &l3() const { return *l3_; }

    /** Sum of misses seen by the shared LLC. */
    uint64_t llcMisses() const { return l3_->stats().misses; }

    /** Cumulative per-level statistics aggregated across all cores. */
    HierarchyCounters counters() const;

    /** Drop all cached lines (stats preserved). */
    void flushAll();

    /** Reset all statistics (contents preserved). */
    void resetStats();

    /** Verify the inclusion invariant; panics on violation. Test hook. */
    void checkInclusionInvariant() const;

    /** Lines brought in by the prefetcher (all cores). */
    uint64_t prefetchedLines() const { return prefetched_lines_; }

  private:
    void fillPrivate(uint32_t core, uint64_t addr);
    void backInvalidate(uint64_t addr);
    void insertVictimIntoL3(uint64_t addr);
    void issuePrefetches(uint32_t core, uint64_t addr);

    PrefetchConfig prefetch_;
    uint64_t prefetched_lines_ = 0;
    InclusionPolicy policy_;
    LevelConfig l1cfg_;
    LevelConfig l2cfg_;
    LevelConfig l3cfg_;
    uint32_t dram_latency_cycles_;
    std::vector<std::unique_ptr<Cache>> l1s_;
    std::vector<std::unique_ptr<Cache>> l2s_;
    std::unique_ptr<Cache> l3_;
};

} // namespace recperf

#endif // RECPERF_SIMCACHE_HIERARCHY_HH
