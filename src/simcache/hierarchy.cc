#include "simcache/hierarchy.hh"

#include "core/logging.hh"

namespace recperf {

const char *
hitLevelName(HitLevel level)
{
    switch (level) {
      case HitLevel::L1: return "L1";
      case HitLevel::L2: return "L2";
      case HitLevel::L3: return "L3";
      case HitLevel::Memory: return "DRAM";
    }
    return "Unknown";
}

CacheHierarchy::CacheHierarchy(uint32_t num_cores, const LevelConfig &l1,
                               const LevelConfig &l2, const LevelConfig &l3,
                               InclusionPolicy policy,
                               uint32_t dram_latency_cycles,
                               const PrefetchConfig &prefetch)
    : prefetch_(prefetch), policy_(policy), l1cfg_(l1), l2cfg_(l2),
      l3cfg_(l3), dram_latency_cycles_(dram_latency_cycles)
{
    RP_ASSERT(num_cores > 0, "hierarchy needs at least one core");
    for (uint32_t c = 0; c < num_cores; ++c) {
        l1s_.push_back(std::make_unique<Cache>(
            strprintf("L1[%u]", c), l1.sizeBytes, l1.associativity));
        l2s_.push_back(std::make_unique<Cache>(
            strprintf("L2[%u]", c), l2.sizeBytes, l2.associativity));
    }
    l3_ = std::make_unique<Cache>("L3", l3.sizeBytes, l3.associativity);
}

HitLevel
CacheHierarchy::access(uint32_t core, uint64_t addr)
{
    RP_ASSERT(core < numCores(), "core %u out of %u", core, numCores());

    if (l1s_[core]->access(addr))
        return HitLevel::L1;

    if (l2s_[core]->access(addr)) {
        // Refill L1 from L2; an inclusive L1 victim needs no action.
        if (auto v = l1s_[core]->fill(addr); v && policy_ ==
                InclusionPolicy::Exclusive) {
            // L1 victims stay resident in L2 in this model; nothing to do.
        }
        return HitLevel::L2;
    }

    if (l3_->access(addr)) {
        if (policy_ == InclusionPolicy::Exclusive) {
            // Victim-cache semantics: the line moves up and out of L3.
            l3_->extract(addr);
        }
        fillPrivate(core, addr);
        return HitLevel::L3;
    }

    // Serviced by memory.
    if (policy_ == InclusionPolicy::Inclusive) {
        if (auto victim = l3_->fill(addr))
            backInvalidate(*victim);
    }
    // Exclusive: DRAM fills bypass the L3; it is populated by L2 victims.
    fillPrivate(core, addr);
    if (prefetch_.nextLine)
        issuePrefetches(core, addr);
    return HitLevel::Memory;
}

void
CacheHierarchy::issuePrefetches(uint32_t core, uint64_t addr)
{
    const uint64_t line = l1s_[core]->lineBytes();
    for (uint32_t d = 1; d <= prefetch_.degree; ++d) {
        uint64_t next = addr + d * line;
        if (l2s_[core]->contains(next) || l1s_[core]->contains(next))
            continue;
        ++prefetched_lines_;
        // Prefetches install into the private L2 (and, on inclusive
        // hierarchies, the L3) without touching the L1.
        if (policy_ == InclusionPolicy::Inclusive &&
            !l3_->contains(next)) {
            if (auto victim = l3_->fill(next))
                backInvalidate(*victim);
        }
        if (auto l2_victim = l2s_[core]->fill(next)) {
            if (policy_ == InclusionPolicy::Exclusive)
                insertVictimIntoL3(*l2_victim);
            l1s_[core]->extract(*l2_victim);
        }
    }
}

void
CacheHierarchy::fillPrivate(uint32_t core, uint64_t addr)
{
    if (auto l2_victim = l2s_[core]->fill(addr)) {
        if (policy_ == InclusionPolicy::Exclusive) {
            insertVictimIntoL3(*l2_victim);
        }
        // Inclusive: the victim's copy may legitimately remain in L3.
        // Evict it from L1 to keep L1 subset-of-L2 in both policies.
        l1s_[core]->extract(*l2_victim);
    }
    l1s_[core]->fill(addr);
}

void
CacheHierarchy::backInvalidate(uint64_t addr)
{
    for (size_t c = 0; c < l1s_.size(); ++c) {
        l2s_[c]->invalidate(addr);
        l1s_[c]->invalidate(addr);
    }
}

void
CacheHierarchy::insertVictimIntoL3(uint64_t addr)
{
    // Exclusive LLC absorbs private-cache victims; its own victims are
    // simply dropped (clean-eviction model).
    l3_->fill(addr);
}

uint32_t
CacheHierarchy::latencyCycles(HitLevel level) const
{
    switch (level) {
      case HitLevel::L1: return l1cfg_.latencyCycles;
      case HitLevel::L2: return l2cfg_.latencyCycles;
      case HitLevel::L3: return l3cfg_.latencyCycles;
      case HitLevel::Memory: return dram_latency_cycles_;
    }
    RP_PANIC("unreachable hit level");
}

void
CacheHierarchy::flushAll()
{
    for (auto &c : l1s_)
        c->flush();
    for (auto &c : l2s_)
        c->flush();
    l3_->flush();
}

HierarchyCounters
CacheHierarchy::counters() const
{
    HierarchyCounters agg;
    for (const auto &c : l1s_)
        agg.l1 += c->stats();
    for (const auto &c : l2s_)
        agg.l2 += c->stats();
    agg.l3 += l3_->stats();
    return agg;
}

void
CacheHierarchy::resetStats()
{
    for (auto &c : l1s_)
        c->stats().reset();
    for (auto &c : l2s_)
        c->stats().reset();
    l3_->stats().reset();
}

void
CacheHierarchy::checkInclusionInvariant() const
{
    if (policy_ != InclusionPolicy::Inclusive)
        return;
    // Every line held in a private L1 or L2 must also be present in L3.
    for (size_t c = 0; c < l2s_.size(); ++c) {
        for (uint64_t addr : l2s_[c]->residentLines()) {
            RP_ASSERT(l3_->contains(addr),
                      "inclusion violated: L2[%zu] line %llu not in L3",
                      c, static_cast<unsigned long long>(addr));
        }
        for (uint64_t addr : l1s_[c]->residentLines()) {
            RP_ASSERT(l3_->contains(addr),
                      "inclusion violated: L1[%zu] line %llu not in L3",
                      c, static_cast<unsigned long long>(addr));
        }
    }
}

} // namespace recperf
