/**
 * @file
 * A single set-associative cache with LRU replacement.
 *
 * This is the building block of the simulated Haswell/Broadwell/Skylake
 * memory hierarchies. It tracks tags only (no data): the functional
 * model results never depend on it, but hit/miss behaviour — and hence
 * the paper's MPKI and latency effects — does.
 */

#ifndef RECPERF_SIMCACHE_CACHE_HH
#define RECPERF_SIMCACHE_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace recperf {

/** Hit/miss and maintenance counters for one cache. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t backInvalidations = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
            static_cast<double>(accesses) : 0.0;
    }

    void
    reset()
    {
        *this = CacheStats();
    }

    CacheStats &
    operator+=(const CacheStats &o)
    {
        accesses += o.accesses;
        hits += o.hits;
        misses += o.misses;
        evictions += o.evictions;
        backInvalidations += o.backInvalidations;
        return *this;
    }
};

/**
 * Set-associative, LRU, tag-only cache model.
 *
 * Addresses are byte addresses; the cache operates on aligned lines of
 * lineBytes() granularity.
 */
class Cache
{
  public:
    /**
     * @param name label used in stats dumps, e.g. "L2".
     * @param size_bytes total capacity; must be a multiple of
     *        line_bytes * associativity.
     * @param associativity ways per set.
     * @param line_bytes line size (64 on all modeled machines).
     */
    Cache(std::string name, uint64_t size_bytes, uint32_t associativity,
          uint32_t line_bytes = 64);

    const std::string &name() const { return name_; }
    uint64_t sizeBytes() const { return size_bytes_; }
    uint32_t associativity() const { return assoc_; }
    uint32_t lineBytes() const { return line_bytes_; }
    uint64_t numSets() const { return sets_.size(); }

    /**
     * Look up a line; on hit, refresh its LRU position. Counts as an
     * access in the stats. Does NOT allocate on miss — allocation
     * decisions belong to the hierarchy (inclusive vs. exclusive).
     *
     * @return true on hit.
     */
    bool access(uint64_t addr);

    /** Probe without touching LRU state or stats. */
    bool contains(uint64_t addr) const;

    /**
     * Insert a line, evicting the LRU line of the set if full.
     *
     * @return the byte address of the evicted line, if any.
     */
    std::optional<uint64_t> fill(uint64_t addr);

    /**
     * Remove a line if present (back-invalidation from an inclusive
     * outer level, or promotion out of an exclusive victim cache).
     *
     * @return true when the line was present.
     */
    bool invalidate(uint64_t addr);

    /**
     * Remove a line without charging a back-invalidation (used when an
     * exclusive LLC promotes a line up to a private L2 on hit).
     *
     * @return true when the line was present.
     */
    bool extract(uint64_t addr);

    /** Drop all lines; stats are preserved. */
    void flush();

    /** Number of currently valid lines. */
    uint64_t occupancy() const;

    /** Byte addresses of all resident lines (test/invariant hook). */
    std::vector<uint64_t> residentLines() const;

    CacheStats &stats() { return stats_; }
    const CacheStats &stats() const { return stats_; }

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    struct Set
    {
        std::vector<Line> ways;
    };

    uint64_t lineAddr(uint64_t addr) const { return addr / line_bytes_; }
    size_t setIndex(uint64_t line) const { return line % sets_.size(); }

    std::string name_;
    uint64_t size_bytes_;
    uint32_t assoc_;
    uint32_t line_bytes_;
    uint64_t tick_ = 0;
    std::vector<Set> sets_;
    CacheStats stats_;
};

} // namespace recperf

#endif // RECPERF_SIMCACHE_CACHE_HH
