#include "simcache/cache.hh"

#include "core/logging.hh"

namespace recperf {

Cache::Cache(std::string name, uint64_t size_bytes, uint32_t associativity,
             uint32_t line_bytes)
    : name_(std::move(name)), size_bytes_(size_bytes), assoc_(associativity),
      line_bytes_(line_bytes)
{
    RP_ASSERT(line_bytes_ > 0 && assoc_ > 0, "bad cache geometry");
    RP_ASSERT(size_bytes_ % (static_cast<uint64_t>(line_bytes_) * assoc_) == 0,
              "%s: size %llu not divisible by line*assoc",
              name_.c_str(), static_cast<unsigned long long>(size_bytes_));
    uint64_t num_sets = size_bytes_ / line_bytes_ / assoc_;
    RP_ASSERT(num_sets > 0, "%s: zero sets", name_.c_str());
    sets_.resize(num_sets);
    for (auto &set : sets_)
        set.ways.resize(assoc_);
}

bool
Cache::access(uint64_t addr)
{
    ++stats_.accesses;
    ++tick_;
    uint64_t line = lineAddr(addr);
    Set &set = sets_[setIndex(line)];
    for (Line &way : set.ways) {
        if (way.valid && way.tag == line) {
            way.lastUse = tick_;
            ++stats_.hits;
            return true;
        }
    }
    ++stats_.misses;
    return false;
}

bool
Cache::contains(uint64_t addr) const
{
    uint64_t line = lineAddr(addr);
    const Set &set = sets_[setIndex(line)];
    for (const Line &way : set.ways) {
        if (way.valid && way.tag == line)
            return true;
    }
    return false;
}

std::optional<uint64_t>
Cache::fill(uint64_t addr)
{
    ++tick_;
    uint64_t line = lineAddr(addr);
    Set &set = sets_[setIndex(line)];

    // Already present: refresh recency, nothing evicted.
    for (Line &way : set.ways) {
        if (way.valid && way.tag == line) {
            way.lastUse = tick_;
            return std::nullopt;
        }
    }

    // Prefer an invalid way.
    for (Line &way : set.ways) {
        if (!way.valid) {
            way.valid = true;
            way.tag = line;
            way.lastUse = tick_;
            return std::nullopt;
        }
    }

    // Evict LRU.
    Line *victim = &set.ways.front();
    for (Line &way : set.ways) {
        if (way.lastUse < victim->lastUse)
            victim = &way;
    }
    uint64_t evicted = victim->tag * line_bytes_;
    victim->tag = line;
    victim->lastUse = tick_;
    ++stats_.evictions;
    return evicted;
}

bool
Cache::invalidate(uint64_t addr)
{
    uint64_t line = lineAddr(addr);
    Set &set = sets_[setIndex(line)];
    for (Line &way : set.ways) {
        if (way.valid && way.tag == line) {
            way.valid = false;
            ++stats_.backInvalidations;
            return true;
        }
    }
    return false;
}

bool
Cache::extract(uint64_t addr)
{
    uint64_t line = lineAddr(addr);
    Set &set = sets_[setIndex(line)];
    for (Line &way : set.ways) {
        if (way.valid && way.tag == line) {
            way.valid = false;
            return true;
        }
    }
    return false;
}

void
Cache::flush()
{
    for (Set &set : sets_) {
        for (Line &way : set.ways)
            way.valid = false;
    }
}

uint64_t
Cache::occupancy() const
{
    uint64_t n = 0;
    for (const Set &set : sets_) {
        for (const Line &way : set.ways)
            n += way.valid ? 1 : 0;
    }
    return n;
}

std::vector<uint64_t>
Cache::residentLines() const
{
    std::vector<uint64_t> lines;
    for (const Set &set : sets_) {
        for (const Line &way : set.ways) {
            if (way.valid)
                lines.push_back(way.tag * line_bytes_);
        }
    }
    return lines;
}

} // namespace recperf
