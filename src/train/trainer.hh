/**
 * @file
 * SGD training for recommendation models.
 *
 * The paper's open-source benchmark (DLRM) supports training as well as
 * inference, and §II notes that "sparse features ... make training more
 * challenging": embedding gradients are *sparse* — only the rows
 * gathered in the forward pass receive updates. This module implements
 * exact backpropagation through the Fig 3 graph (Top-FC -> concat ->
 * SparseLengthsSum / Bottom-FC) with binary cross-entropy on the
 * predicted CTR, plus plain SGD with sparse embedding updates.
 *
 * Limitations: concat interaction only (the dot-interaction backward is
 * not implemented), sum-reduction SLS.
 */

#ifndef RECPERF_TRAIN_TRAINER_HH
#define RECPERF_TRAIN_TRAINER_HH

#include <vector>

#include "model/rec_model.hh"

namespace recperf {

/** Optimizer family. */
enum class Optimizer
{
    Sgd,
    /**
     * Adagrad — the standard choice for sparse embedding training:
     * per-parameter step sizes adapt to how often each row is touched,
     * so rare IDs keep large steps while hot IDs anneal.
     */
    Adagrad,
};

/** Optimizer settings. */
struct TrainOptions
{
    float learningRate = 0.05f;
    Optimizer optimizer = Optimizer::Sgd;
    float adagradEpsilon = 1e-8f;
};

/**
 * Area under the ROC curve of scores against binary labels — the
 * ranking-quality metric used for CTR models. 0.5 = random, 1 = perfect.
 */
double areaUnderRoc(const std::vector<float> &scores,
                    const std::vector<float> &labels);

/**
 * Trains a RecModel in place with SGD on binary cross-entropy.
 */
class Trainer
{
  public:
    /**
     * @param model trained in place; must use Concat interaction.
     */
    Trainer(RecModel &model, const TrainOptions &options);

    /**
     * Mean binary cross-entropy of the model on a labeled batch
     * (no parameter update).
     */
    double loss(const ModelInput &input,
                const std::vector<float> &labels) const;

    /**
     * One SGD step on a labeled batch.
     * @param labels clicks in {0, 1} (or soft targets in [0, 1]);
     *        size must equal the batch.
     * @return the batch loss *before* the update.
     */
    double step(const ModelInput &input, const std::vector<float> &labels);

    /** Fraction of correct 0.5-thresholded predictions. */
    double accuracy(const ModelInput &input,
                    const std::vector<float> &labels) const;

    /** AUC of the model's scores on a labeled batch. */
    double auc(const ModelInput &input,
               const std::vector<float> &labels) const;

  private:
    /** Forward pass retaining every intermediate needed for backward. */
    struct Activations
    {
        Tensor dense;                      ///< input [batch, features]
        std::vector<Tensor> bottomPre;     ///< FC outputs pre-ReLU
        std::vector<Tensor> bottomPost;    ///< post-ReLU
        std::vector<Tensor> pooled;        ///< per-table SLS outputs
        Tensor concat;                     ///< top input
        std::vector<Tensor> topPre;        ///< FC outputs pre-activation
        std::vector<Tensor> topPost;       ///< post-ReLU (last = logits)
        Tensor probabilities;              ///< sigmoid(logits)
    };

    Activations forwardRetain(const ModelInput &input) const;

    /**
     * Backward through one FC layer, applying the optimizer update.
     * @param x layer input; @p dy gradient w.r.t. layer output.
     * @param state_index which FC accumulator slot to use (Adagrad).
     * @return gradient w.r.t. x.
     */
    Tensor backwardFc(FullyConnected &fc, const Tensor &x,
                      const Tensor &dy, size_t state_index);

    /** Optimizer step size for one parameter (updates its accumulator). */
    float stepSize(std::vector<float> &accum, size_t index, float grad);

    RecModel &model_;
    TrainOptions options_;

    /** Adagrad accumulators: one per FC (weights+bias) and per table. */
    std::vector<std::vector<float>> fc_accum_;
    std::vector<std::vector<float>> table_accum_;
};

} // namespace recperf

#endif // RECPERF_TRAIN_TRAINER_HH
