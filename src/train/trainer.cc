#include "train/trainer.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/logging.hh"
#include "ops/elementwise.hh"

namespace recperf {

namespace {

/** Numerically-safe log for BCE. */
double
safeLog(double x)
{
    return std::log(std::max(x, 1e-12));
}

} // namespace

double
areaUnderRoc(const std::vector<float> &scores,
             const std::vector<float> &labels)
{
    RP_ASSERT(scores.size() == labels.size() && !scores.empty(),
              "AUC needs matching, non-empty scores/labels");
    // Mann-Whitney U via average ranks (ties handled exactly).
    std::vector<size_t> order(scores.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return scores[a] < scores[b];
    });

    double positive_rank_sum = 0.0;
    size_t positives = 0, negatives = 0;
    size_t i = 0;
    while (i < order.size()) {
        size_t j = i;
        while (j < order.size() && scores[order[j]] == scores[order[i]])
            ++j;
        // Ranks are 1-based; tied entries share the average rank.
        double avg_rank = (static_cast<double>(i + 1) +
                           static_cast<double>(j)) / 2.0;
        for (size_t k = i; k < j; ++k) {
            if (labels[order[k]] >= 0.5f) {
                positive_rank_sum += avg_rank;
                ++positives;
            } else {
                ++negatives;
            }
        }
        i = j;
    }
    if (positives == 0 || negatives == 0)
        return 0.5; // undefined; conventional fallback
    double u = positive_rank_sum -
        static_cast<double>(positives) *
            (static_cast<double>(positives) + 1.0) / 2.0;
    return u / (static_cast<double>(positives) *
                static_cast<double>(negatives));
}

Trainer::Trainer(RecModel &model, const TrainOptions &options)
    : model_(model), options_(options)
{
    RP_ASSERT(model_.config().interaction == InteractionKind::Concat,
              "%s: trainer supports concat interaction only",
              model_.config().name.c_str());
    RP_ASSERT(options_.learningRate > 0.0f, "learning rate must be > 0");

    if (options_.optimizer == Optimizer::Adagrad) {
        // Accumulators: bottom FCs, then top FCs; one per table.
        for (const FullyConnected &fc : model_.bottomLayers()) {
            fc_accum_.emplace_back(
                static_cast<size_t>(fc.paramCount()), 0.0f);
        }
        for (const FullyConnected &fc : model_.topLayers()) {
            fc_accum_.emplace_back(
                static_cast<size_t>(fc.paramCount()), 0.0f);
        }
        for (const EmbeddingTable &t : model_.tables()) {
            table_accum_.emplace_back(
                static_cast<size_t>(t.paramCount()), 0.0f);
        }
    }
}

float
Trainer::stepSize(std::vector<float> &accum, size_t index, float grad)
{
    if (options_.optimizer == Optimizer::Sgd)
        return options_.learningRate;
    float &acc = accum[index];
    acc += grad * grad;
    return options_.learningRate /
        (std::sqrt(acc) + options_.adagradEpsilon);
}

Trainer::Activations
Trainer::forwardRetain(const ModelInput &input) const
{
    Activations acts;
    const ModelConfig &cfg = model_.config();

    int64_t batch = 0;
    if (!model_.bottomLayers().empty()) {
        acts.dense = input.dense.reshaped(input.dense.shape());
        batch = acts.dense.dim(0);
        Tensor x = acts.dense.reshaped(acts.dense.shape());
        for (const FullyConnected &fc : model_.bottomLayers()) {
            Tensor pre = fc.forward(x);
            acts.bottomPre.push_back(pre.reshaped(pre.shape()));
            reluInplace(pre);
            acts.bottomPost.push_back(pre.reshaped(pre.shape()));
            x = std::move(pre);
        }
    }

    for (size_t t = 0; t < model_.tables().size(); ++t) {
        const SparseInput &sp = input.sparse[t];
        if (batch == 0)
            batch = static_cast<int64_t>(sp.lengths.size());
        acts.pooled.push_back(
            model_.tables()[t].forward(sp.ids, sp.lengths));
    }

    std::vector<const Tensor *> features;
    if (!acts.bottomPost.empty())
        features.push_back(&acts.bottomPost.back());
    for (const Tensor &p : acts.pooled)
        features.push_back(&p);
    acts.concat = concatCols(features);
    RP_ASSERT(acts.concat.dim(1) == cfg.topInputDim(),
              "concat width mismatch");

    Tensor x = acts.concat.reshaped(acts.concat.shape());
    const auto &top = model_.topLayers();
    for (size_t i = 0; i < top.size(); ++i) {
        Tensor pre = top[i].forward(x);
        acts.topPre.push_back(pre.reshaped(pre.shape()));
        if (i + 1 < top.size())
            reluInplace(pre);
        acts.topPost.push_back(pre.reshaped(pre.shape()));
        x = std::move(pre);
    }
    acts.probabilities = sigmoid(acts.topPost.back());
    return acts;
}

double
Trainer::loss(const ModelInput &input,
              const std::vector<float> &labels) const
{
    Activations acts = forwardRetain(input);
    int64_t batch = acts.probabilities.dim(0);
    RP_ASSERT(static_cast<int64_t>(labels.size()) == batch,
              "%zu labels for batch %lld", labels.size(),
              static_cast<long long>(batch));
    double total = 0.0;
    for (int64_t b = 0; b < batch; ++b) {
        double p = acts.probabilities.at(b, 0);
        double y = labels[static_cast<size_t>(b)];
        total -= y * safeLog(p) + (1.0 - y) * safeLog(1.0 - p);
    }
    return total / static_cast<double>(batch);
}

double
Trainer::accuracy(const ModelInput &input,
                  const std::vector<float> &labels) const
{
    Activations acts = forwardRetain(input);
    int64_t batch = acts.probabilities.dim(0);
    RP_ASSERT(static_cast<int64_t>(labels.size()) == batch,
              "label/batch mismatch");
    int64_t correct = 0;
    for (int64_t b = 0; b < batch; ++b) {
        bool predicted = acts.probabilities.at(b, 0) >= 0.5f;
        bool actual = labels[static_cast<size_t>(b)] >= 0.5f;
        correct += predicted == actual ? 1 : 0;
    }
    return static_cast<double>(correct) / static_cast<double>(batch);
}

double
Trainer::auc(const ModelInput &input,
             const std::vector<float> &labels) const
{
    Activations acts = forwardRetain(input);
    std::vector<float> scores;
    for (int64_t b = 0; b < acts.probabilities.dim(0); ++b)
        scores.push_back(acts.probabilities.at(b, 0));
    return areaUnderRoc(scores, labels);
}

Tensor
Trainer::backwardFc(FullyConnected &fc, const Tensor &x, const Tensor &dy,
                    size_t state_index)
{
    const int64_t batch = x.dim(0);
    const int64_t in = fc.inFeatures();
    const int64_t out = fc.outFeatures();
    RP_ASSERT(dy.dim(0) == batch && dy.dim(1) == out,
              "FC backward shape mismatch");

    // dX = dY * W — uses the pre-update weights.
    Tensor dx({batch, in});
    for (int64_t b = 0; b < batch; ++b) {
        const float *dy_row = dy.data() + b * out;
        float *dx_row = dx.data() + b * in;
        for (int64_t j = 0; j < out; ++j) {
            const float *w_row = fc.weight().data() + j * in;
            float g = dy_row[j];
            if (g == 0.0f)
                continue;
            for (int64_t k = 0; k < in; ++k)
                dx_row[k] += g * w_row[k];
        }
    }

    // Parameter update: dW = dY^T X, db = sum(dY), with the per-
    // parameter step size of the configured optimizer.
    const bool adagrad = options_.optimizer == Optimizer::Adagrad;
    std::vector<float> *accum = adagrad ? &fc_accum_[state_index]
                                        : nullptr;
    const auto weight_count = static_cast<size_t>(in * out);
    for (int64_t j = 0; j < out; ++j) {
        float *w_row = fc.weight().data() + j * in;
        double db = 0.0;
        // Accumulate the full gradient first (Adagrad needs dW, not
        // the per-sample contributions).
        std::vector<float> dw(static_cast<size_t>(in), 0.0f);
        for (int64_t b = 0; b < batch; ++b) {
            float g = dy.data()[b * out + j];
            if (g == 0.0f)
                continue;
            db += g;
            const float *x_row = x.data() + b * in;
            for (int64_t k = 0; k < in; ++k)
                dw[static_cast<size_t>(k)] += g * x_row[k];
        }
        for (int64_t k = 0; k < in; ++k) {
            float g = dw[static_cast<size_t>(k)];
            if (g == 0.0f)
                continue;
            float lr = adagrad
                ? stepSize(*accum, static_cast<size_t>(j * in + k), g)
                : options_.learningRate;
            w_row[k] -= lr * g;
        }
        float gb = static_cast<float>(db);
        float lr = adagrad
            ? stepSize(*accum, weight_count + static_cast<size_t>(j), gb)
            : options_.learningRate;
        fc.bias().at(j) -= lr * gb;
    }
    return dx;
}

double
Trainer::step(const ModelInput &input, const std::vector<float> &labels)
{
    Activations acts = forwardRetain(input);
    const int64_t batch = acts.probabilities.dim(0);
    RP_ASSERT(static_cast<int64_t>(labels.size()) == batch,
              "%zu labels for batch %lld", labels.size(),
              static_cast<long long>(batch));

    // Loss (reported pre-update) and its gradient at the logits:
    // d BCE / d logit = (p - y) / batch.
    double batch_loss = 0.0;
    Tensor dlogits({batch, 1});
    for (int64_t b = 0; b < batch; ++b) {
        double p = acts.probabilities.at(b, 0);
        double y = labels[static_cast<size_t>(b)];
        batch_loss -= y * safeLog(p) + (1.0 - y) * safeLog(1.0 - p);
        dlogits.at(b, 0) =
            static_cast<float>((p - y) / static_cast<double>(batch));
    }
    batch_loss /= static_cast<double>(batch);

    // --- Top-FC stack, last to first. ---
    auto &top = model_.topLayers();
    const size_t top_state_base = model_.bottomLayers().size();
    Tensor dy = std::move(dlogits);
    for (size_t i = top.size(); i-- > 0;) {
        if (i + 1 < top.size()) {
            // Undo the ReLU between layer i and i+1.
            const Tensor &pre = acts.topPre[i];
            for (int64_t n = 0; n < dy.size(); ++n) {
                if (pre.data()[n] <= 0.0f)
                    dy.data()[n] = 0.0f;
            }
        }
        const Tensor &x = i == 0 ? acts.concat : acts.topPost[i - 1];
        dy = backwardFc(top[i], x, dy, top_state_base + i);
    }

    // --- Split the concat gradient. ---
    const ModelConfig &cfg = model_.config();
    int64_t col = 0;
    Tensor d_bottom;
    if (!model_.bottomLayers().empty()) {
        int64_t width = cfg.bottomOutDim();
        d_bottom = Tensor({batch, width});
        for (int64_t b = 0; b < batch; ++b) {
            for (int64_t k = 0; k < width; ++k)
                d_bottom.at(b, k) = dy.at(b, col + k);
        }
        col += width;
    }

    // --- Sparse embedding updates (rows touched this batch only). ---
    const bool adagrad = options_.optimizer == Optimizer::Adagrad;
    for (size_t t = 0; t < model_.tables().size(); ++t) {
        EmbeddingTable &table = model_.tables()[t];
        const SparseInput &sp = input.sparse[t];
        const int64_t dim = table.dim();
        size_t cursor = 0;
        for (int64_t b = 0; b < batch; ++b) {
            for (int64_t j = 0; j < sp.lengths[static_cast<size_t>(b)];
                 ++j) {
                int64_t id = sp.ids[cursor++];
                float *row = table.table().data() + id * dim;
                for (int64_t k = 0; k < dim; ++k) {
                    float g = dy.at(b, col + k);
                    if (g == 0.0f)
                        continue;
                    float lr = adagrad
                        ? stepSize(table_accum_[t],
                                   static_cast<size_t>(id * dim + k), g)
                        : options_.learningRate;
                    row[k] -= lr * g;
                }
            }
        }
        col += dim;
    }
    RP_ASSERT(col == cfg.topInputDim(), "concat gradient split mismatch");

    // --- Bottom-FC stack. ---
    auto &bottom = model_.bottomLayers();
    if (!bottom.empty()) {
        Tensor db = std::move(d_bottom);
        for (size_t i = bottom.size(); i-- > 0;) {
            const Tensor &pre = acts.bottomPre[i];
            for (int64_t n = 0; n < db.size(); ++n) {
                if (pre.data()[n] <= 0.0f)
                    db.data()[n] = 0.0f;
            }
            const Tensor &x = i == 0 ? acts.dense : acts.bottomPost[i - 1];
            db = backwardFc(bottom[i], x, db, i);
        }
    }
    return batch_loss;
}

} // namespace recperf
