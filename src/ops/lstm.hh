/**
 * @file
 * LSTM cell — the canonical RNN operator.
 *
 * Backs the recurrent baselines the paper compares against (GNMT,
 * DeepSpeech2 in Figs 2, 4, 5). Standard formulation with fused gate
 * weights: [i; f; g; o] = W x + U h + b.
 */

#ifndef RECPERF_OPS_LSTM_HH
#define RECPERF_OPS_LSTM_HH

#include <cstdint>

#include "ops/fully_connected.hh"
#include "ops/op_cost.hh"
#include "tensor/tensor.hh"

namespace recperf {

class Rng;

/** Hidden and cell state of one LSTM layer. */
struct LstmState
{
    Tensor h; ///< [batch, hidden]
    Tensor c; ///< [batch, hidden]
};

/**
 * One LSTM cell with fused input/recurrent gate weights.
 */
class LstmCell
{
  public:
    LstmCell(int64_t input_size, int64_t hidden_size);
    LstmCell(int64_t input_size, int64_t hidden_size, Rng &rng);

    int64_t inputSize() const { return input_; }
    int64_t hiddenSize() const { return hidden_; }

    /** Zeroed state for a batch. */
    LstmState initialState(int64_t batch) const;

    /**
     * One timestep.
     * @param x input of shape [batch, input_size].
     * @param state previous (h, c); batch must match.
     * @return next (h, c).
     */
    LstmState forward(const Tensor &x, const LstmState &state) const;

    /**
     * Process a sequence [seq, batch, input]; returns the final state.
     * The input-side gate GEMMs (W x_t) for all timesteps are batched
     * into one gemmBt call; only the recurrent U h GEMM runs per step.
     */
    LstmState forwardSequence(const Tensor &xs, LstmState state) const;

    /** Gate parameter blocks (test hooks). */
    FullyConnected &inputGates() { return w_; }
    FullyConnected &recurrentGates() { return u_; }

    int64_t paramCount() const;

    /** Work accounting for one timestep. */
    static OpCost cost(int64_t batch, int64_t input_size,
                       int64_t hidden_size);

  private:
    /** One timestep given precomputed W x + b gates [batch, 4h]. */
    LstmState stepPreGated(Tensor gates, const LstmState &state) const;

    int64_t input_;
    int64_t hidden_;
    FullyConnected w_; ///< [4h, input] + bias
    FullyConnected u_; ///< [4h, hidden], bias unused (fused into w_)
};

} // namespace recperf

#endif // RECPERF_OPS_LSTM_HH
