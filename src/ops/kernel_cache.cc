#include "ops/kernel_cache.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iterator>

#include "core/aligned.hh"
#include "core/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace recperf {

namespace {

using Clock = std::chrono::steady_clock;

/** Per-candidate measurement budget; candidates faster than this are
 *  re-timed over enough reps to fill it (caps timer-quantization
 *  noise without making first-touch tuning expensive). */
constexpr uint64_t kTargetNs = 40000;
constexpr int kMaxReps = 64;

uint64_t
mix64(uint64_t x)
{
    // splitmix64 finalizer — the usual full-avalanche mixer.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

uint64_t
gemmHash(int64_t m, int64_t n, int64_t k)
{
    uint64_t h = mix64(static_cast<uint64_t>(m));
    h = mix64(h ^ static_cast<uint64_t>(n));
    return mix64(h ^ static_cast<uint64_t>(k));
}

uint64_t
slsHash(int64_t dim, int64_t pooling, bool quantized)
{
    uint64_t h = mix64(static_cast<uint64_t>(dim) |
                       (quantized ? 1ULL << 62 : 0));
    return mix64(h ^ static_cast<uint64_t>(pooling));
}

/** Deterministic, cheap operand fill (values in [0.5, 2.47]); the
 *  tuner only measures, never checks results, but keeping operands
 *  finite and mixed-sign-free avoids denormal slowdowns skewing it. */
void
fillPattern(float *p, int64_t count)
{
    for (int64_t i = 0; i < count; ++i)
        p[i] = 0.5f + static_cast<float>((i * 37) & 63) * 0.03125f;
}

void
fillPatternU8(uint8_t *p, int64_t count)
{
    for (int64_t i = 0; i < count; ++i)
        p[i] = static_cast<uint8_t>((i * 13) & 0xff);
}

template <class F>
uint64_t
timeNs(F &&f)
{
    const Clock::time_point t0 = Clock::now();
    f();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count());
}

/** One warm-up run, then adaptive repetitions up to the budget. */
template <class F>
uint64_t
measureNs(F &&f)
{
    f();
    uint64_t t = timeNs(f);
    if (t < kTargetNs) {
        const int reps = static_cast<int>(std::min<uint64_t>(
            kMaxReps, kTargetNs / std::max<uint64_t>(t, 1) + 1));
        t = timeNs([&] {
            for (int r = 0; r < reps; ++r)
                f();
        }) / static_cast<uint64_t>(reps);
    }
    return t;
}

int64_t
roundUpTo(int64_t v, int64_t quantum)
{
    return ((v + quantum - 1) / quantum) * quantum;
}

/** Best *compiled* tier at or below the policy's resolved tier. */
KernelIsa
resolveTier(const IsaPolicy &policy)
{
    KernelIsa tier = policy.resolved();
    if (!policy.autoSelect) {
        RP_ASSERT(microkernels::kernelsFor(tier).available,
                  "ISA tier '%s' is pinned but was not compiled into "
                  "this binary",
                  kernelIsaName(tier));
        return tier;
    }
    while (tier > KernelIsa::Scalar &&
           !microkernels::kernelsFor(tier).available)
        tier = static_cast<KernelIsa>(static_cast<int>(tier) - 1);
    return tier;
}

GemmPlan
defaultGemmPlan(KernelIsa isa)
{
    GemmPlan p;
    p.isa = isa;
    p.blk = GemmBlocking{}; // the seed gemmBt's 32/32/256, nr = 1
    p.fn = microkernels::kernelsFor(isa).gemmRow;
    return p;
}

SlsPlan
defaultSlsPlan(KernelIsa isa)
{
    const microkernels::IsaKernels &k = microkernels::kernelsFor(isa);
    SlsPlan p;
    p.isa = isa;
    p.unroll = 0;
    p.fn = k.slsAccum[0];
    p.qfn = k.qslsAccum[0];
    return p;
}

} // namespace

int64_t
poolingBucket(int64_t pooling)
{
    if (pooling <= 0)
        return 0;
    int64_t lower = 1;
    while (lower * 2 <= pooling)
        lower *= 2;
    const int64_t upper = lower * 2;
    return (pooling - lower) < (upper - pooling) ? lower : upper;
}

void
runGemmPanel(const float *a, const float *b, float *c, int64_t m0,
             int64_t m1, int64_t n, int64_t k, const GemmPlan &plan,
             float *pack, bool accumulate)
{
    const GemmBlocking &blk = plan.blk;
    for (int64_t n0 = 0; n0 < n; n0 += blk.nc) {
        const int64_t w = std::min(blk.nc, n - n0);
        microkernels::gemmPackPanel(b, k, n0, w, blk.kc, pack);
        for (int64_t i = m0; i < m1; ++i) {
            plan.fn(a + i * k, pack, c + i * n + n0, w, k, blk.kc,
                    blk.nr, accumulate);
        }
    }
}

KernelCache &
KernelCache::global()
{
    static KernelCache cache;
    return cache;
}

KernelCache::KernelCache()
{
    // CLI runs validate RECPERF_ISA up front (exit 2); library users
    // (tests, benches) get the same validation here, fatally.
    if (const char *env = std::getenv("RECPERF_ISA")) {
        const std::string err = isaPolicyFromName(env, &policy_);
        if (!err.empty())
            RP_FATAL("RECPERF_ISA: %s", err.c_str());
    }
}

const KernelCache::GemmEntry *
KernelCache::findGemm(uint64_t h, int64_t m, int64_t n, int64_t k) const
{
    for (size_t i = 0; i < kSlots; ++i) {
        const size_t idx = (h + i) & (kSlots - 1);
        const GemmEntry *e =
            gemm_slots_[idx].load(std::memory_order_acquire);
        if (e == nullptr)
            return nullptr;
        if (e->m == m && e->n == n && e->k == k)
            return e;
    }
    return nullptr;
}

const KernelCache::SlsEntry *
KernelCache::findSls(uint64_t h, int64_t dim, int64_t pooling,
                     bool quantized) const
{
    for (size_t i = 0; i < kSlots; ++i) {
        const size_t idx = (h + i) & (kSlots - 1);
        const SlsEntry *e = sls_slots_[idx].load(std::memory_order_acquire);
        if (e == nullptr)
            return nullptr;
        if (e->dim == dim && e->pooling == pooling &&
            e->quantized == quantized)
            return e;
    }
    return nullptr;
}

void
KernelCache::insertGemm(uint64_t h, std::unique_ptr<GemmEntry> e)
{
    for (size_t i = 0; i < kSlots; ++i) {
        const size_t idx = (h + i) & (kSlots - 1);
        if (gemm_slots_[idx].load(std::memory_order_relaxed) == nullptr) {
            gemm_slots_[idx].store(e.get(), std::memory_order_release);
            gemm_owned_.push_back(std::move(e));
            return;
        }
    }
    RP_FATAL("kernel cache full (%zu GEMM shapes)", kSlots);
}

void
KernelCache::insertSls(uint64_t h, std::unique_ptr<SlsEntry> e)
{
    for (size_t i = 0; i < kSlots; ++i) {
        const size_t idx = (h + i) & (kSlots - 1);
        if (sls_slots_[idx].load(std::memory_order_relaxed) == nullptr) {
            sls_slots_[idx].store(e.get(), std::memory_order_release);
            sls_owned_.push_back(std::move(e));
            return;
        }
    }
    RP_FATAL("kernel cache full (%zu SLS shapes)", kSlots);
}

std::vector<KernelIsa>
KernelCache::isaCandidates() const
{
    std::vector<KernelIsa> isas;
    if (!policy_.autoSelect) {
        isas.push_back(resolveTier(policy_));
        return isas;
    }
    for (int t = 0; t <= static_cast<int>(detectIsa()); ++t) {
        const KernelIsa isa = static_cast<KernelIsa>(t);
        if (microkernels::kernelsFor(isa).available)
            isas.push_back(isa);
    }
    return isas;
}

const KernelCache::GemmEntry &
KernelCache::gemm(int64_t m, int64_t n, int64_t k)
{
    const uint64_t h = gemmHash(m, n, k);
    if (const GemmEntry *e = findGemm(h, m, n, k)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return *e;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (const GemmEntry *e = findGemm(h, m, n, k)) {
        // Lost the tuning race to another thread — still a hit.
        hits_.fetch_add(1, std::memory_order_relaxed);
        return *e;
    }
    auto e = std::make_unique<GemmEntry>();
    e->m = m;
    e->n = n;
    e->k = k;
    if (tuning_enabled_.load(std::memory_order_relaxed)) {
        e->plan = tuneGemm(m, n, k, &e->tuningUs, &e->candidates);
        tunes_.fetch_add(1, std::memory_order_relaxed);
    } else {
        e->plan = defaultGemmPlan(resolveTier(policy_));
    }
    const GemmEntry *raw = e.get();
    insertGemm(h, std::move(e));
    return *raw;
}

const KernelCache::SlsEntry &
KernelCache::sls(int64_t dim, int64_t pooling, bool quantized)
{
    const uint64_t h = slsHash(dim, pooling, quantized);
    if (const SlsEntry *e = findSls(h, dim, pooling, quantized)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return *e;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (const SlsEntry *e = findSls(h, dim, pooling, quantized)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return *e;
    }
    auto e = std::make_unique<SlsEntry>();
    e->dim = dim;
    e->pooling = pooling;
    e->quantized = quantized;
    if (tuning_enabled_.load(std::memory_order_relaxed)) {
        e->plan = tuneSls(dim, pooling, quantized, &e->tuningUs,
                          &e->candidates);
        tunes_.fetch_add(1, std::memory_order_relaxed);
    } else {
        e->plan = defaultSlsPlan(resolveTier(policy_));
    }
    const SlsEntry *raw = e.get();
    insertSls(h, std::move(e));
    return *raw;
}

GemmPlan
KernelCache::tuneGemm(int64_t m, int64_t n, int64_t k, double *tuning_us,
                      int *candidates) const
{
    const Clock::time_point sweep0 = Clock::now();

    // Candidate grid. All blockings within a tier are bit-equivalent
    // re-tilings (microkernels.hh), so the noisy wall-clock choice
    // below can never change numerical results. KC is clamped to the
    // rounded-up K so oversized chunks collapse and dedupe.
    struct Cand
    {
        KernelIsa isa;
        GemmBlocking blk;
    };
    static const GemmBlocking kVectorGrid[] = {
        {32, 32, 256, 1}, {32, 32, 256, 2}, {32, 32, 256, 4},
        {16, 32, 256, 1}, {16, 32, 256, 2}, {16, 32, 256, 4},
        {64, 64, 512, 1}, {64, 64, 512, 2}, {64, 64, 512, 4},
        {32, 64, 128, 1}, {32, 64, 128, 2}, {32, 64, 128, 4},
    };
    static const GemmBlocking kScalarGrid[] = {
        {32, 32, 256, 1},
        {32, 32, 256, 2},
    };
    const int64_t kc_cap =
        roundUpTo(std::max<int64_t>(k, 1), microkernels::kKcQuantum);
    std::vector<Cand> cands;
    const std::vector<KernelIsa> isas = isaCandidates();
    for (KernelIsa isa : isas) {
        // In auto mode the scalar tier is a fallback, not a serious
        // contender against a vector tier — probe it cheaply.
        const bool scalar_fallback = policy_.autoSelect &&
            isa == KernelIsa::Scalar && isas.size() > 1;
        const auto *grid = scalar_fallback ? kScalarGrid : kVectorGrid;
        const size_t count = scalar_fallback
            ? std::size(kScalarGrid) : std::size(kVectorGrid);
        for (size_t g = 0; g < count; ++g) {
            GemmBlocking blk = grid[g];
            blk.kc = std::min(blk.kc, kc_cap);
            const bool dup =
                std::any_of(cands.begin(), cands.end(), [&](const Cand &c) {
                    return c.isa == isa && c.blk.mc == blk.mc &&
                        c.blk.nc == blk.nc && c.blk.kc == blk.kc &&
                        c.blk.nr == blk.nr;
                });
            if (!dup)
                cands.push_back({isa, blk});
        }
    }
    RP_ASSERT(!cands.empty(), "no kernel candidates for gemm tuning");

    // Synthetic operands of the real shape; measured row count is the
    // candidate's MC so the score prices pack amortization per row.
    int64_t mrows_max = 1;
    for (const Cand &c : cands)
        mrows_max = std::max(mrows_max, std::min(m, c.blk.mc));
    AlignedBuffer<float> a(static_cast<size_t>(mrows_max * k));
    AlignedBuffer<float> b(static_cast<size_t>(n * k));
    AlignedBuffer<float> out(static_cast<size_t>(mrows_max * n));
    fillPattern(a.data(), mrows_max * k);
    fillPattern(b.data(), n * k);

    GemmPlan best;
    double best_score = 0.0;
    for (const Cand &c : cands) {
        GemmPlan plan;
        plan.isa = c.isa;
        plan.blk = c.blk;
        plan.fn = microkernels::kernelsFor(c.isa).gemmRow;
        const int64_t mrows = std::max<int64_t>(
            1, std::min(m, c.blk.mc));
        AlignedBuffer<float> pack(static_cast<size_t>(
            microkernels::gemmPackFloats(c.blk.nc, k, c.blk.kc)));
        const uint64_t t = measureNs([&] {
            runGemmPanel(a.data(), b.data(), out.data(), 0, mrows, n, k,
                         plan, pack.data(), /*accumulate=*/false);
        });
        const double score =
            static_cast<double>(t) / static_cast<double>(mrows);
        if (best.fn == nullptr || score < best_score) {
            best = plan;
            best_score = score;
        }
    }

    *candidates = static_cast<int>(cands.size());
    *tuning_us = std::chrono::duration<double, std::micro>(Clock::now() -
                                                           sweep0)
                     .count();
    return best;
}

SlsPlan
KernelCache::tuneSls(int64_t dim, int64_t pooling, bool quantized,
                     double *tuning_us, int *candidates) const
{
    const Clock::time_point sweep0 = Clock::now();

    const int64_t pool = std::max<int64_t>(1, pooling);
    const int64_t rows = 1024;
    const int64_t slots = 64;
    AlignedBuffer<float> table(static_cast<size_t>(rows * dim));
    AlignedBuffer<float> out(static_cast<size_t>(slots * dim));
    fillPattern(table.data(), rows * dim);
    std::fill(out.data(), out.data() + slots * dim, 0.0f);
    AlignedBuffer<uint8_t> codes(quantized
                                     ? static_cast<size_t>(rows * dim)
                                     : size_t{1});
    if (quantized)
        fillPatternU8(codes.data(), rows * dim);
    // Strided gather pattern: misses L1 like a real embedding walk.
    std::vector<int64_t> ids(static_cast<size_t>(slots * pool));
    for (size_t i = 0; i < ids.size(); ++i)
        ids[i] = static_cast<int64_t>((i * 977) % static_cast<size_t>(rows));

    SlsPlan best;
    double best_score = 0.0;
    int total = 0;
    for (KernelIsa isa : isaCandidates()) {
        const microkernels::IsaKernels &kern =
            microkernels::kernelsFor(isa);
        for (int u = 0; u < microkernels::kSlsUnrolls; ++u) {
            SlsPlan plan;
            plan.isa = isa;
            plan.unroll = u;
            plan.fn = kern.slsAccum[u];
            plan.qfn = kern.qslsAccum[u];
            const uint64_t t = measureNs([&] {
                size_t cursor = 0;
                for (int64_t s = 0; s < slots; ++s) {
                    float *dst = out.data() + s * dim;
                    for (int64_t j = 0; j < pool; ++j) {
                        const int64_t id = ids[cursor++];
                        if (quantized) {
                            plan.qfn(dst, codes.data() + id * dim, 0.02f,
                                     -1.0f, dim);
                        } else {
                            plan.fn(dst, table.data() + id * dim, dim);
                        }
                    }
                }
            });
            ++total;
            const double score = static_cast<double>(t);
            if (best.fn == nullptr || score < best_score) {
                best = plan;
                best_score = score;
            }
        }
    }

    *candidates = total;
    *tuning_us = std::chrono::duration<double, std::micro>(Clock::now() -
                                                           sweep0)
                     .count();
    return best;
}

void
KernelCache::setPolicy(const IsaPolicy &policy)
{
    clear();
    std::lock_guard<std::mutex> lock(mu_);
    policy_ = policy;
}

IsaPolicy
KernelCache::policy() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return policy_;
}

void
KernelCache::setTuningEnabled(bool on)
{
    clear();
    tuning_enabled_.store(on, std::memory_order_relaxed);
}

bool
KernelCache::tuningEnabled() const
{
    return tuning_enabled_.load(std::memory_order_relaxed);
}

void
KernelCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &slot : gemm_slots_)
        slot.store(nullptr, std::memory_order_relaxed);
    for (auto &slot : sls_slots_)
        slot.store(nullptr, std::memory_order_relaxed);
    gemm_owned_.clear();
    sls_owned_.clear();
    tunes_.store(0, std::memory_order_relaxed);
    hits_.store(0, std::memory_order_relaxed);
}

uint64_t
KernelCache::tuneCount() const
{
    return tunes_.load(std::memory_order_relaxed);
}

uint64_t
KernelCache::hitCount() const
{
    return hits_.load(std::memory_order_relaxed);
}

size_t
KernelCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return gemm_owned_.size() + sls_owned_.size();
}

std::string
KernelCache::dumpTable() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    char line[256];
    std::snprintf(line, sizeof line,
                  "kernel cache: %zu gemm + %zu sls entries "
                  "(detected %s, policy %s, tuning %s)\n",
                  gemm_owned_.size(), sls_owned_.size(),
                  kernelIsaName(detectIsa()),
                  policy_.autoSelect ? "auto"
                                     : kernelIsaName(policy_.pinned),
                  tuning_enabled_.load(std::memory_order_relaxed)
                      ? "on" : "off");
    out += line;
    for (const auto &e : gemm_owned_) {
        const uint64_t calls = e->calls.load(std::memory_order_relaxed);
        const uint64_t ns = e->ns.load(std::memory_order_relaxed);
        std::snprintf(
            line, sizeof line,
            "  gemm m%-5lld n%-5lld k%-5lld -> %-6s mc%-3lld nc%-3lld "
            "kc%-4lld nr%d  %8llu calls  %10.0f ns/call  (%d cands, "
            "%.0f us tuning)\n",
            static_cast<long long>(e->m), static_cast<long long>(e->n),
            static_cast<long long>(e->k), kernelIsaName(e->plan.isa),
            static_cast<long long>(e->plan.blk.mc),
            static_cast<long long>(e->plan.blk.nc),
            static_cast<long long>(e->plan.blk.kc), e->plan.blk.nr,
            static_cast<unsigned long long>(calls),
            calls ? static_cast<double>(ns) / static_cast<double>(calls)
                  : 0.0,
            e->candidates, e->tuningUs);
        out += line;
    }
    for (const auto &e : sls_owned_) {
        const uint64_t calls = e->calls.load(std::memory_order_relaxed);
        const uint64_t ns = e->ns.load(std::memory_order_relaxed);
        std::snprintf(
            line, sizeof line,
            "  sls  d%-5lld pool%-4lld %s -> %-6s unroll%d  %8llu calls "
            " %10.0f ns/call  (%d cands, %.0f us tuning)\n",
            static_cast<long long>(e->dim),
            static_cast<long long>(e->pooling),
            e->quantized ? "q8" : "f32", kernelIsaName(e->plan.isa),
            e->plan.unroll + 1, static_cast<unsigned long long>(calls),
            calls ? static_cast<double>(ns) / static_cast<double>(calls)
                  : 0.0,
            e->candidates, e->tuningUs);
        out += line;
    }
    return out;
}

namespace {

std::string
gemmMetricBase(const KernelCache::GemmEntry &e)
{
    char buf[96];
    std::snprintf(buf, sizeof buf, "kernel.gemm.m%lldn%lldk%lld",
                  static_cast<long long>(e.m), static_cast<long long>(e.n),
                  static_cast<long long>(e.k));
    return buf;
}

std::string
slsMetricBase(const KernelCache::SlsEntry &e)
{
    char buf[96];
    std::snprintf(buf, sizeof buf, "kernel.sls.d%lldp%lld%s",
                  static_cast<long long>(e.dim),
                  static_cast<long long>(e.pooling),
                  e.quantized ? "q" : "");
    return buf;
}

} // namespace

void
KernelCache::exportMetrics(obs::MetricsRegistry &reg) const
{
    std::lock_guard<std::mutex> lock(mu_);
    reg.gauge("hw.isa.detected")
        .set(static_cast<double>(static_cast<int>(detectIsa())));
    reg.gauge("hw.isa.selected")
        .set(static_cast<double>(static_cast<int>(resolveTier(policy_))));
    reg.counter("kernel.cache.hits")
        .add(hits_.load(std::memory_order_relaxed));
    reg.counter("kernel.cache.tunes")
        .add(tunes_.load(std::memory_order_relaxed));
    for (const auto &e : gemm_owned_) {
        const std::string base = gemmMetricBase(*e);
        const uint64_t calls = e->calls.load(std::memory_order_relaxed);
        const uint64_t ns = e->ns.load(std::memory_order_relaxed);
        reg.counter(base + ".calls").add(calls);
        reg.gauge(base + ".ns_per_call")
            .set(calls ? static_cast<double>(ns) /
                     static_cast<double>(calls)
                       : 0.0);
        reg.gauge(base + ".variant")
            .set(static_cast<double>(static_cast<int>(e->plan.isa)));
        reg.gauge(base + ".tuning_us").set(e->tuningUs);
    }
    for (const auto &e : sls_owned_) {
        const std::string base = slsMetricBase(*e);
        const uint64_t calls = e->calls.load(std::memory_order_relaxed);
        const uint64_t ns = e->ns.load(std::memory_order_relaxed);
        reg.counter(base + ".calls").add(calls);
        reg.gauge(base + ".ns_per_call")
            .set(calls ? static_cast<double>(ns) /
                     static_cast<double>(calls)
                       : 0.0);
        reg.gauge(base + ".variant")
            .set(static_cast<double>(static_cast<int>(e->plan.isa)));
        reg.gauge(base + ".tuning_us").set(e->tuningUs);
    }
}

void
KernelCache::emitTraceCounters(obs::Tracer &tracer, uint32_t tid) const
{
    if (!tracer.enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    const double t = tracer.wallSeconds();
    tracer.counter("kernel", "kernel.cache.hits", t, tid,
                   static_cast<double>(
                       hits_.load(std::memory_order_relaxed)));
    tracer.counter("kernel", "kernel.cache.tunes", t, tid,
                   static_cast<double>(
                       tunes_.load(std::memory_order_relaxed)));
    for (const auto &e : gemm_owned_) {
        tracer.counter("kernel", gemmMetricBase(*e) + ".calls", t, tid,
                       static_cast<double>(
                           e->calls.load(std::memory_order_relaxed)));
    }
    for (const auto &e : sls_owned_) {
        tracer.counter("kernel", slsMetricBase(*e) + ".calls", t, tid,
                       static_cast<double>(
                           e->calls.load(std::memory_order_relaxed)));
    }
}

} // namespace recperf
