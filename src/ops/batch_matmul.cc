#include "ops/batch_matmul.hh"

#include <algorithm>

#include "core/logging.hh"
#include "core/thread_pool.hh"
#include "obs/trace.hh"
#include "ops/fully_connected.hh"

namespace recperf {

Tensor
batchMatMulBt(const Tensor &a, const Tensor &b)
{
    obs::Tracer::Scope trace(obs::Tracer::global(), "op", "batchMatMulBt");
    RP_ASSERT(a.rank() == 3 && b.rank() == 3,
              "batchMatMul operands must be rank 3, got %s and %s",
              shapeToString(a.shape()).c_str(),
              shapeToString(b.shape()).c_str());
    RP_ASSERT(a.dim(0) == b.dim(0) && a.dim(2) == b.dim(2),
              "batchMatMul shape mismatch %s x %s",
              shapeToString(a.shape()).c_str(),
              shapeToString(b.shape()).c_str());

    int64_t batch = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(1);
    Tensor c({batch, m, n});
    if (batch >= globalThreadCount()) {
        // Enough independent matmuls to feed every thread: go
        // inter-op. The nested gemmBt calls detect the surrounding
        // region and run inline, so the kernel per item is the serial
        // one — bitwise-identical either way.
        parallelFor(0, batch, 1, [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) {
                gemmBt(a.data() + i * m * k, b.data() + i * n * k,
                       c.data() + i * m * n, m, n, k,
                       /*accumulate=*/false);
            }
        });
    } else {
        // Few large matmuls: let each gemmBt parallelize over rows.
        for (int64_t i = 0; i < batch; ++i) {
            gemmBt(a.data() + i * m * k, b.data() + i * n * k,
                   c.data() + i * m * n, m, n, k, /*accumulate=*/false);
        }
    }
    return c;
}

Tensor
dotInteraction(const Tensor &features)
{
    obs::Tracer::Scope trace(obs::Tracer::global(), "op",
                             "dotInteraction");
    RP_ASSERT(features.rank() == 3, "dotInteraction input must be rank 3");
    int64_t batch = features.dim(0);
    int64_t f = features.dim(1);
    int64_t d = features.dim(2);
    int64_t pairs = f * (f - 1) / 2;

    Tensor out({batch, pairs});
    // One chunk should cover at least ~16K multiply-adds.
    int64_t grain = std::max<int64_t>(
        1, 16384 / std::max<int64_t>(1, pairs * d));
    parallelFor(0, batch, grain, [&](int64_t lo, int64_t hi) {
        for (int64_t b = lo; b < hi; ++b) {
            const float *z = features.data() + b * f * d;
            float *dst = out.data() + b * pairs;
            int64_t idx = 0;
            for (int64_t i = 1; i < f; ++i) {
                for (int64_t j = 0; j < i; ++j) {
                    const float *zi = z + i * d;
                    const float *zj = z + j * d;
                    float acc = 0.0f;
                    for (int64_t c = 0; c < d; ++c)
                        acc += zi[c] * zj[c];
                    dst[idx++] = acc;
                }
            }
        }
    });
    return out;
}

OpCost
batchMatMulCost(int64_t batch, int64_t m, int64_t n, int64_t k)
{
    OpCost c;
    c.flops = 2.0 * static_cast<double>(batch) * static_cast<double>(m) *
        static_cast<double>(n) * static_cast<double>(k);
    c.bytesRead = sizeof(float) * static_cast<double>(batch) *
        (static_cast<double>(m) * static_cast<double>(k) +
         static_cast<double>(n) * static_cast<double>(k));
    c.bytesWritten = sizeof(float) * static_cast<double>(batch) *
        static_cast<double>(m) * static_cast<double>(n);
    return c;
}

} // namespace recperf
