/**
 * @file
 * Naive reference implementations for correctness testing.
 *
 * These are deliberately straightforward triple loops with no blocking
 * so the optimized kernels can be validated against them.
 */

#ifndef RECPERF_OPS_REFERENCE_HH
#define RECPERF_OPS_REFERENCE_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"

namespace recperf {
namespace reference {

/** Naive Y = X * W^T + b; x: [batch, in], w: [out, in], b: [out]. */
Tensor fullyConnected(const Tensor &x, const Tensor &w, const Tensor &b);

/** Naive pooled embedding lookup (sum reduction). */
Tensor sparseLengthsSum(const Tensor &table, const std::vector<int64_t> &ids,
                        const std::vector<int64_t> &lengths);

/** Naive C[b] = A[b] * B[b]^T. */
Tensor batchMatMulBt(const Tensor &a, const Tensor &b);

} // namespace reference
} // namespace recperf

#endif // RECPERF_OPS_REFERENCE_HH
