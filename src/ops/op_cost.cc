#include "ops/op_cost.hh"

namespace recperf {

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::FC: return "FC";
      case OpKind::SLS: return "SLS";
      case OpKind::Concat: return "Concat";
      case OpKind::BatchMM: return "BatchMM";
      case OpKind::Activation: return "Activation";
      case OpKind::Conv: return "Conv";
      case OpKind::Recurrent: return "Recurrent";
      case OpKind::Other: return "Other";
    }
    return "Unknown";
}

OpCost &
OpCost::operator+=(const OpCost &o)
{
    flops += o.flops;
    bytesRead += o.bytesRead;
    bytesWritten += o.bytesWritten;
    return *this;
}

OpCost
OpCost::operator+(const OpCost &o) const
{
    OpCost out = *this;
    out += o;
    return out;
}

double
OpCost::intensity() const
{
    return bytesRead > 0.0 ? flops / bytesRead : 0.0;
}

} // namespace recperf
