/**
 * @file
 * IEEE 754 binary16 (half precision) conversion and fp16 embedding
 * tables.
 *
 * Half-precision embedding storage halves table capacity and the cache
 * lines touched per gather, with ~3 decimal digits of precision — the
 * milder sibling of the int8 row-wise scheme (§VIII compression).
 */

#ifndef RECPERF_OPS_HALF_HH
#define RECPERF_OPS_HALF_HH

#include <cstdint>
#include <vector>

#include "ops/sparse_lengths_sum.hh"
#include "tensor/tensor.hh"

namespace recperf {

/** Convert fp32 to binary16 (round-to-nearest-even, handles subnormals,
 *  infinities and NaN). */
uint16_t floatToHalf(float value);

/** Convert binary16 to fp32 (exact). */
float halfToFloat(uint16_t bits);

/**
 * An embedding table stored in binary16.
 */
class HalfEmbeddingTable
{
  public:
    /** Convert an fp32 table. */
    explicit HalfEmbeddingTable(const EmbeddingTable &source);

    int64_t rows() const { return rows_; }
    int64_t dim() const { return dim_; }
    int64_t rowBytes() const { return dim_ * 2; }
    int64_t storageBytes() const { return rows_ * rowBytes(); }

    /** Dequantize one row into @p out (length dim()). */
    void expandRow(int64_t row, float *out) const;

    /** Pooled lookup (SparseLengthsSum semantics) in fp32 accumulation. */
    Tensor forward(const std::vector<int64_t> &ids,
                   const std::vector<int64_t> &lengths,
                   SlsReduction reduction = SlsReduction::Sum) const;

  private:
    int64_t rows_;
    int64_t dim_;
    std::vector<uint16_t> data_;
};

} // namespace recperf

#endif // RECPERF_OPS_HALF_HH
