/**
 * @file
 * AVX2+FMA microkernel tier: two independent 8-lane FMA chains per
 * output (stride 16 over K), reduced with a fixed pairwise tree.
 * Compiled with per-file -mavx2 -mfma (see src/ops/CMakeLists.txt);
 * when the toolchain cannot target AVX2 the tier degrades to an
 * available=false stub and the cache never dispatches here.
 */

#include "ops/microkernels_impl.hh"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>

namespace recperf {
namespace microkernels {
namespace {

struct Avx2Ops
{
    using V = __m256;
    static constexpr int kLanes = 8;
    static constexpr int kAcc = 2;

    static V
    zero()
    {
        return _mm256_setzero_ps();
    }
    static V
    load(const float *p)
    {
        return _mm256_loadu_ps(p);
    }
    static V
    madd(V a, V b, V acc)
    {
        return _mm256_fmadd_ps(a, b, acc);
    }
    static V
    add(V a, V b)
    {
        return _mm256_add_ps(a, b);
    }
    static void
    store(float *p, V a)
    {
        _mm256_storeu_ps(p, a);
    }
    static float
    reduce(const V acc[kAcc])
    {
        // Fixed tree: chain merge, 256 -> 128 -> 64 -> 32.
        const __m256 s = _mm256_add_ps(acc[0], acc[1]);
        const __m128 lo = _mm256_castps256_ps128(s);
        const __m128 hi = _mm256_extractf128_ps(s, 1);
        const __m128 q = _mm_add_ps(lo, hi);
        const __m128 d = _mm_add_ps(q, _mm_movehl_ps(q, q));
        const __m128 r =
            _mm_add_ss(d, _mm_shuffle_ps(d, d, _MM_SHUFFLE(1, 1, 1, 1)));
        return _mm_cvtss_f32(r);
    }
    static V
    broadcast(float x)
    {
        return _mm256_set1_ps(x);
    }
    static V
    loadU8(const uint8_t *p)
    {
        const __m128i bytes =
            _mm_loadl_epi64(reinterpret_cast<const __m128i *>(p));
        return _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
    }
    static V
    dequantMadd(V v, V scale, V bias)
    {
        return _mm256_fmadd_ps(v, scale, bias);
    }
};

} // namespace

const IsaKernels &
avx2Kernels()
{
    static const IsaKernels kernels = detail::makeKernels<Avx2Ops>();
    return kernels;
}

} // namespace microkernels
} // namespace recperf

#else // !(__AVX2__ && __FMA__)

namespace recperf {
namespace microkernels {

const IsaKernels &
avx2Kernels()
{
    static const IsaKernels kernels; // available = false
    return kernels;
}

} // namespace microkernels
} // namespace recperf

#endif
