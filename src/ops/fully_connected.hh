/**
 * @file
 * Fully-connected (dense) layer: Y = X * W^T + b.
 *
 * This is the compute-intensive operator of the paper's recommendation
 * models (Bottom-FC / Top-FC in Fig 3). The forward kernel is a
 * cache-blocked fp32 GEMM; a naive reference lives in ops/reference.hh
 * for correctness testing.
 */

#ifndef RECPERF_OPS_FULLY_CONNECTED_HH
#define RECPERF_OPS_FULLY_CONNECTED_HH

#include <cstdint>

#include "ops/op_cost.hh"
#include "tensor/tensor.hh"

namespace recperf {

class Rng;

/**
 * A fully-connected layer with owned weights [out, in] and bias [out].
 */
class FullyConnected
{
  public:
    /** Construct with zero weights. */
    FullyConnected(int64_t in_features, int64_t out_features);

    /** Construct and He-initialize weights from @p rng. */
    FullyConnected(int64_t in_features, int64_t out_features, Rng &rng);

    int64_t inFeatures() const { return in_; }
    int64_t outFeatures() const { return out_; }

    Tensor &weight() { return weight_; }
    const Tensor &weight() const { return weight_; }
    Tensor &bias() { return bias_; }
    const Tensor &bias() const { return bias_; }

    /**
     * Forward pass.
     * @param x activations of shape [batch, in_features].
     * @return activations of shape [batch, out_features].
     */
    Tensor forward(const Tensor &x) const;

    /** Number of parameters (weights + bias). */
    int64_t paramCount() const { return in_ * out_ + out_; }

    /** Work accounting for one forward pass at the given batch size. */
    static OpCost cost(int64_t batch, int64_t in_features,
                       int64_t out_features);

  private:
    int64_t in_;
    int64_t out_;
    Tensor weight_;
    Tensor bias_;
};

/**
 * Standalone blocked GEMM used by FullyConnected and BatchMatMul:
 * C[m, n] (+)= A[m, k] * B^T where B is stored as [n, k].
 *
 * @param accumulate when false, C is overwritten; when true, added into.
 */
void gemmBt(const float *a, const float *b, float *c, int64_t m, int64_t n,
            int64_t k, bool accumulate);

} // namespace recperf

#endif // RECPERF_OPS_FULLY_CONNECTED_HH
