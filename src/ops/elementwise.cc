#include "ops/elementwise.hh"

#include <cmath>
#include <cstring>

#include "core/logging.hh"

namespace recperf {

Tensor
relu(const Tensor &x)
{
    Tensor y(x.shape());
    for (int64_t i = 0; i < x.size(); ++i)
        y.data()[i] = x.data()[i] > 0.0f ? x.data()[i] : 0.0f;
    return y;
}

void
reluInplace(Tensor &x)
{
    for (int64_t i = 0; i < x.size(); ++i) {
        if (x.data()[i] < 0.0f)
            x.data()[i] = 0.0f;
    }
}

Tensor
sigmoid(const Tensor &x)
{
    Tensor y(x.shape());
    for (int64_t i = 0; i < x.size(); ++i)
        y.data()[i] = 1.0f / (1.0f + std::exp(-x.data()[i]));
    return y;
}

OpCost
elementwiseCost(int64_t elements)
{
    OpCost c;
    c.flops = static_cast<double>(elements);
    c.bytesRead = static_cast<double>(elements) * sizeof(float);
    c.bytesWritten = static_cast<double>(elements) * sizeof(float);
    return c;
}

Tensor
concatCols(const std::vector<const Tensor *> &inputs)
{
    RP_ASSERT(!inputs.empty(), "concat of zero tensors");
    int64_t rows = inputs.front()->dim(0);
    int64_t total_cols = 0;
    for (const Tensor *t : inputs) {
        RP_ASSERT(t->rank() == 2, "concat input must be rank 2, got %s",
                  shapeToString(t->shape()).c_str());
        RP_ASSERT(t->dim(0) == rows,
                  "concat inputs disagree on rows: %lld vs %lld",
                  static_cast<long long>(t->dim(0)),
                  static_cast<long long>(rows));
        total_cols += t->dim(1);
    }

    Tensor out({rows, total_cols});
    for (int64_t r = 0; r < rows; ++r) {
        float *dst = out.data() + r * total_cols;
        for (const Tensor *t : inputs) {
            int64_t cols = t->dim(1);
            std::memcpy(dst, t->data() + r * cols,
                        static_cast<size_t>(cols) * sizeof(float));
            dst += cols;
        }
    }
    return out;
}

OpCost
concatCost(int64_t total_elements)
{
    OpCost c;
    c.flops = 0.0;
    c.bytesRead = static_cast<double>(total_elements) * sizeof(float);
    c.bytesWritten = static_cast<double>(total_elements) * sizeof(float);
    return c;
}

} // namespace recperf
