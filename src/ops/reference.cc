#include "ops/reference.hh"

#include "core/logging.hh"

namespace recperf {
namespace reference {

Tensor
fullyConnected(const Tensor &x, const Tensor &w, const Tensor &b)
{
    int64_t batch = x.dim(0);
    int64_t in = x.dim(1);
    int64_t out = w.dim(0);
    RP_ASSERT(w.dim(1) == in && b.dim(0) == out, "reference FC shape mismatch");

    Tensor y({batch, out});
    for (int64_t i = 0; i < batch; ++i) {
        for (int64_t j = 0; j < out; ++j) {
            double acc = b.at(j);
            for (int64_t p = 0; p < in; ++p)
                acc += static_cast<double>(x.at(i, p)) * w.at(j, p);
            y.at(i, j) = static_cast<float>(acc);
        }
    }
    return y;
}

Tensor
sparseLengthsSum(const Tensor &table, const std::vector<int64_t> &ids,
                 const std::vector<int64_t> &lengths)
{
    int64_t dim = table.dim(1);
    Tensor out({static_cast<int64_t>(lengths.size()), dim});
    size_t cursor = 0;
    for (size_t slot = 0; slot < lengths.size(); ++slot) {
        for (int64_t j = 0; j < lengths[slot]; ++j) {
            int64_t id = ids[cursor++];
            for (int64_t c = 0; c < dim; ++c) {
                out.at(static_cast<int64_t>(slot), c) += table.at(id, c);
            }
        }
    }
    return out;
}

Tensor
batchMatMulBt(const Tensor &a, const Tensor &b)
{
    int64_t batch = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(1);
    Tensor c({batch, m, n});
    for (int64_t bi = 0; bi < batch; ++bi) {
        for (int64_t i = 0; i < m; ++i) {
            for (int64_t j = 0; j < n; ++j) {
                double acc = 0.0;
                for (int64_t p = 0; p < k; ++p) {
                    acc += static_cast<double>(
                               a.data()[(bi * m + i) * k + p]) *
                        b.data()[(bi * n + j) * k + p];
                }
                c.data()[(bi * m + i) * n + j] = static_cast<float>(acc);
            }
        }
    }
    return c;
}

} // namespace reference
} // namespace recperf
