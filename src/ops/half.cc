#include "ops/half.hh"

#include <cstring>
#include <numeric>

#include "core/logging.hh"

namespace recperf {

uint16_t
floatToHalf(float value)
{
    uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));

    const uint32_t sign = (bits >> 16) & 0x8000u;
    const int32_t exponent =
        static_cast<int32_t>((bits >> 23) & 0xff) - 127 + 15;
    uint32_t mantissa = bits & 0x7fffffu;

    if (exponent >= 0x1f) {
        // Overflow to infinity; preserve NaN payload presence.
        if (((bits >> 23) & 0xff) == 0xff && mantissa != 0)
            return static_cast<uint16_t>(sign | 0x7e00u); // quiet NaN
        return static_cast<uint16_t>(sign | 0x7c00u);
    }
    if (exponent <= 0) {
        // Subnormal half (or zero). Shift in the implicit leading 1.
        if (exponent < -10)
            return static_cast<uint16_t>(sign); // underflow to zero
        mantissa |= 0x800000u;
        uint32_t shift = static_cast<uint32_t>(14 - exponent);
        uint32_t half_mant = mantissa >> shift;
        // Round to nearest even.
        uint32_t rem = mantissa & ((1u << shift) - 1);
        uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (half_mant & 1)))
            ++half_mant;
        return static_cast<uint16_t>(sign | half_mant);
    }

    // Normal number: round mantissa from 23 to 10 bits, nearest even.
    uint32_t half_mant = mantissa >> 13;
    uint32_t rem = mantissa & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (half_mant & 1)))
        ++half_mant;
    // The + (not |) lets mantissa rounding overflow carry into the
    // exponent, which is exactly the IEEE behaviour.
    uint32_t result =
        sign | ((static_cast<uint32_t>(exponent) << 10) + half_mant);
    return static_cast<uint16_t>(result);
}

float
halfToFloat(uint16_t bits)
{
    const uint32_t sign = static_cast<uint32_t>(bits & 0x8000u) << 16;
    const uint32_t exponent = (bits >> 10) & 0x1fu;
    uint32_t mantissa = bits & 0x3ffu;

    uint32_t out;
    if (exponent == 0) {
        if (mantissa == 0) {
            out = sign; // signed zero
        } else {
            // Subnormal: normalize.
            int shift = 0;
            while ((mantissa & 0x400u) == 0) {
                mantissa <<= 1;
                ++shift;
            }
            mantissa &= 0x3ffu;
            // Subnormal value = mant * 2^-24; after normalizing by
            // `shift` the exponent is 2^(-15 - shift + 1).
            uint32_t exp32 = static_cast<uint32_t>(127 - 14 - shift);
            out = sign | (exp32 << 23) | (mantissa << 13);
        }
    } else if (exponent == 0x1f) {
        out = sign | 0x7f800000u | (mantissa << 13); // inf / NaN
    } else {
        uint32_t exp32 = exponent - 15 + 127;
        out = sign | (exp32 << 23) | (mantissa << 13);
    }
    float value;
    std::memcpy(&value, &out, sizeof(value));
    return value;
}

HalfEmbeddingTable::HalfEmbeddingTable(const EmbeddingTable &source)
    : rows_(source.rows()), dim_(source.dim())
{
    data_.resize(static_cast<size_t>(rows_ * dim_));
    const float *src = source.table().data();
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] = floatToHalf(src[i]);
}

void
HalfEmbeddingTable::expandRow(int64_t row, float *out) const
{
    RP_ASSERT(row >= 0 && row < rows_, "row %lld out of %lld",
              static_cast<long long>(row), static_cast<long long>(rows_));
    const uint16_t *src = data_.data() + row * dim_;
    for (int64_t c = 0; c < dim_; ++c)
        out[c] = halfToFloat(src[c]);
}

Tensor
HalfEmbeddingTable::forward(const std::vector<int64_t> &ids,
                            const std::vector<int64_t> &lengths,
                            SlsReduction reduction) const
{
    int64_t total = std::accumulate(lengths.begin(), lengths.end(),
                                    static_cast<int64_t>(0));
    RP_ASSERT(total == static_cast<int64_t>(ids.size()),
              "sum(lengths)=%lld != ids.size()=%zu",
              static_cast<long long>(total), ids.size());

    Tensor out({static_cast<int64_t>(lengths.size()), dim_});
    std::vector<float> row(static_cast<size_t>(dim_));
    size_t cursor = 0;
    for (size_t slot = 0; slot < lengths.size(); ++slot) {
        float *dst = out.data() + static_cast<int64_t>(slot) * dim_;
        for (int64_t j = 0; j < lengths[slot]; ++j) {
            expandRow(ids[cursor++], row.data());
            for (int64_t c = 0; c < dim_; ++c)
                dst[c] += row[static_cast<size_t>(c)];
        }
        if (reduction == SlsReduction::Mean && lengths[slot] > 0) {
            float inv = 1.0f / static_cast<float>(lengths[slot]);
            for (int64_t c = 0; c < dim_; ++c)
                dst[c] *= inv;
        }
    }
    return out;
}

} // namespace recperf
