/**
 * @file
 * Shape-keyed kernel cache: tune once, memoize, dispatch forever.
 *
 * The paper's Table I observation is that RMC inference spends its
 * compute in a handful of *recurring* GEMM (M,N,K) and SLS
 * (dim, pooling) shapes. This cache exploits that: the first time a
 * shape is seen it runs a short tuning sweep — ISA tier (scalar /
 * AVX2 / AVX-512 from runtime CPUID), register-tile width NR, and
 * MC/NC/KC blocking — times each candidate on a synthetic problem of
 * the same shape, and memoizes the winner in a LuaJIT-style dispatch
 * table. Steady-state dispatch is one acquire load on an open-address
 * slot; tuning happens once, serialized under a mutex (never on the
 * thread pool, so a first touch from inside parallelFor cannot
 * deadlock or nest).
 *
 * Determinism contract (DESIGN.md §14): every bit-affecting choice is
 * a function of the ISA tier alone (see microkernels.hh). Blocking
 * and unroll candidates within a tier are bit-equivalent re-tilings,
 * so the wall-clock tuner's (inherently noisy) winner choice never
 * changes results: with a pinned `--isa`, outputs are bit-identical
 * across thread counts, blocking decisions, and cache cold/warm runs.
 *
 * Each entry self-measures (relaxed atomic call/ns counters) and the
 * whole table exports through MetricsRegistry
 * (`kernel.<shape>.{variant,tuning_us,calls,ns_per_call}`) and as
 * Chrome-trace counter events for `recperf report` / check_trace.py.
 */

#ifndef RECPERF_OPS_KERNEL_CACHE_HH
#define RECPERF_OPS_KERNEL_CACHE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "machine/simd.hh"
#include "ops/microkernels.hh"

namespace recperf {

namespace obs {
class MetricsRegistry;
class Tracer;
} // namespace obs

/** Loop-tiling parameters (bit-neutral; see determinism contract). */
struct GemmBlocking
{
    int64_t mc = 32;  ///< rows per parallel chunk (pack amortization)
    int64_t nc = 32;  ///< packed panel width
    int64_t kc = 256; ///< pack chunk depth (multiple of 64)
    int nr = 1;       ///< register-tile columns (1, 2, or 4)
};

/** Memoized decision for one GEMM shape. */
struct GemmPlan
{
    KernelIsa isa = KernelIsa::Scalar;
    GemmBlocking blk;
    microkernels::GemmRowFn fn = nullptr;
};

/** Memoized decision for one SLS shape. */
struct SlsPlan
{
    KernelIsa isa = KernelIsa::Scalar;
    int unroll = 0; ///< index into IsaKernels::slsAccum (0 = 1x, 1 = 2x)
    microkernels::SlsAccumFn fn = nullptr;
    microkernels::QslsAccumFn qfn = nullptr;
};

/**
 * Run the blocked GEMM row span [m0, m1) serially with @p plan:
 * C[i][n0+j] (+)= dot(A row i, B row n0+j) for row-major A[m][k],
 * B[n][k]. @p pack must hold gemmPackFloats(blk.nc, k, blk.kc)
 * floats. Shared by gemmBt's parallel chunks and the tuner's serial
 * measurements — one code path, one bit pattern.
 */
void runGemmPanel(const float *a, const float *b, float *c, int64_t m0,
                  int64_t m1, int64_t n, int64_t k, const GemmPlan &plan,
                  float *pack, bool accumulate);

/** Nearest power of two (ties go up; 0 stays 0) — the SLS cache key
 *  buckets average pooling so jittered lengths share one entry. */
int64_t poolingBucket(int64_t pooling);

class KernelCache
{
  public:
    /** Per-shape record: the tuned plan plus self-measurement. */
    struct GemmEntry
    {
        int64_t m = 0, n = 0, k = 0;
        GemmPlan plan;
        double tuningUs = 0.0; ///< wall time the tuning sweep took
        int candidates = 0;    ///< candidates the sweep timed
        mutable std::atomic<uint64_t> calls{0};
        mutable std::atomic<uint64_t> ns{0};

        void
        recordCall(uint64_t elapsed_ns) const
        {
            calls.fetch_add(1, std::memory_order_relaxed);
            ns.fetch_add(elapsed_ns, std::memory_order_relaxed);
        }
    };

    struct SlsEntry
    {
        int64_t dim = 0, pooling = 0;
        bool quantized = false;
        SlsPlan plan;
        double tuningUs = 0.0;
        int candidates = 0;
        mutable std::atomic<uint64_t> calls{0};
        mutable std::atomic<uint64_t> ns{0};

        void
        recordCall(uint64_t elapsed_ns) const
        {
            calls.fetch_add(1, std::memory_order_relaxed);
            ns.fetch_add(elapsed_ns, std::memory_order_relaxed);
        }
    };

    /** Process-wide cache; initial policy comes from RECPERF_ISA. */
    static KernelCache &global();

    KernelCache();
    KernelCache(const KernelCache &) = delete;
    KernelCache &operator=(const KernelCache &) = delete;

    /**
     * Entry for GEMM shape (m, n, k); tunes on first sight. The
     * returned reference stays valid until clear()/setPolicy().
     */
    const GemmEntry &gemm(int64_t m, int64_t n, int64_t k);

    /** Entry for SLS shape (dim, pooling bucket, quantized?). */
    const SlsEntry &sls(int64_t dim, int64_t pooling, bool quantized);

    /**
     * Pin or un-pin the ISA tier. Clears the cache (existing plans may
     * reference the wrong tier). Not thread-safe against concurrent
     * kernel calls — quiesce first (CLI startup / test setup).
     */
    void setPolicy(const IsaPolicy &policy);
    IsaPolicy policy() const;

    /**
     * When disabled, first touch installs the default ("generic")
     * blocking for the policy's tier without sweeping — the baseline
     * arm of the tuned-vs-generic benchmarks. Clears the cache.
     */
    void setTuningEnabled(bool on);
    bool tuningEnabled() const;

    /** Drop every entry and reset hit/tune counters (not thread-safe
     *  against concurrent kernel calls). */
    void clear();

    /** Completed tuning sweeps since construction/clear(). */
    uint64_t tuneCount() const;

    /** Steady-state dispatches that found a memoized entry. */
    uint64_t hitCount() const;

    /** Number of memoized entries. */
    size_t size() const;

    /** Human-readable table (shape -> variant, blocking, ns/call) —
     *  `recperf eval --dump-kernel-cache`. */
    std::string dumpTable() const;

    /**
     * Export `kernel.<shape>.*` and `kernel.cache.*` metrics plus
     * `hw.isa.{detected,selected}` gauges into @p reg.
     */
    void exportMetrics(obs::MetricsRegistry &reg) const;

    /**
     * Emit one Chrome-trace counter event per exported kernel counter
     * (cat "kernel", virtual lane @p tid) at the tracer's current wall
     * time, so check_trace.py can reconcile tracks against metrics.
     */
    void emitTraceCounters(obs::Tracer &tracer, uint32_t tid = 0) const;

  private:
    static constexpr size_t kSlots = 512;

    const GemmEntry *findGemm(uint64_t h, int64_t m, int64_t n,
                              int64_t k) const;
    const SlsEntry *findSls(uint64_t h, int64_t dim, int64_t pooling,
                            bool quantized) const;
    void insertGemm(uint64_t h, std::unique_ptr<GemmEntry> e);
    void insertSls(uint64_t h, std::unique_ptr<SlsEntry> e);

    GemmPlan tuneGemm(int64_t m, int64_t n, int64_t k, double *tuning_us,
                      int *candidates) const;
    SlsPlan tuneSls(int64_t dim, int64_t pooling, bool quantized,
                    double *tuning_us, int *candidates) const;
    std::vector<KernelIsa> isaCandidates() const;

    std::array<std::atomic<GemmEntry *>, kSlots> gemm_slots_{};
    std::array<std::atomic<SlsEntry *>, kSlots> sls_slots_{};
    std::vector<std::unique_ptr<GemmEntry>> gemm_owned_;
    std::vector<std::unique_ptr<SlsEntry>> sls_owned_;
    mutable std::mutex mu_; ///< guards tuning + insertion + owned_
    IsaPolicy policy_;
    std::atomic<bool> tuning_enabled_{true};
    std::atomic<uint64_t> tunes_{0};
    std::atomic<uint64_t> hits_{0};
};

} // namespace recperf

#endif // RECPERF_OPS_KERNEL_CACHE_HH
