/**
 * @file
 * 2-D convolution (NCHW) — the canonical CNN operator.
 *
 * The paper contrasts recommendation operators against CNN layers
 * throughout (Figs 2, 4, 5). This is a functional direct convolution
 * used by the proxy baselines and the operator-comparison tests; its
 * cost function backs the Fig 5 intensity numbers.
 */

#ifndef RECPERF_OPS_CONV_HH
#define RECPERF_OPS_CONV_HH

#include <cstdint>

#include "ops/op_cost.hh"
#include "tensor/tensor.hh"

namespace recperf {

class Rng;

/**
 * A conv2d layer with square kernels, configurable stride and
 * symmetric zero padding. Layout is NCHW; weights are
 * [out_ch, in_ch, k, k].
 */
class Conv2d
{
  public:
    Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
           int64_t stride = 1, int64_t padding = 0);

    /** He-initialized variant. */
    Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
           int64_t stride, int64_t padding, Rng &rng);

    int64_t inChannels() const { return in_ch_; }
    int64_t outChannels() const { return out_ch_; }
    int64_t kernel() const { return kernel_; }
    int64_t stride() const { return stride_; }
    int64_t padding() const { return padding_; }

    Tensor &weight() { return weight_; }
    const Tensor &weight() const { return weight_; }
    Tensor &bias() { return bias_; }
    const Tensor &bias() const { return bias_; }

    /** Spatial output size for an input of extent @p in. */
    int64_t outSize(int64_t in) const;

    /**
     * Forward pass.
     * @param x input of shape [n, in_ch, h, w].
     * @return output of shape [n, out_ch, outSize(h), outSize(w)].
     */
    Tensor forward(const Tensor &x) const;

    int64_t paramCount() const;

    /** Work accounting for one forward pass. */
    static OpCost cost(int64_t batch, int64_t in_ch, int64_t out_ch,
                       int64_t kernel, int64_t out_h, int64_t out_w);

  private:
    int64_t in_ch_;
    int64_t out_ch_;
    int64_t kernel_;
    int64_t stride_;
    int64_t padding_;
    Tensor weight_;
    Tensor bias_;
};

} // namespace recperf

#endif // RECPERF_OPS_CONV_HH
