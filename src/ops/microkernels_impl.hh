/**
 * @file
 * Shared microkernel bodies, templated over an ISA "Ops" policy.
 *
 * Included by exactly the per-ISA translation units
 * (microkernels_{scalar,avx2,avx512}.cc); each defines an Ops struct
 * (vector type, lane count, accumulator-chain count, load/madd/reduce
 * primitives) and instantiates these templates. The loop structure —
 * and therefore the floating-point association order — is fixed here
 * once, so a tier's results cannot drift between kernels: only the
 * Ops primitives differ.
 *
 * An Ops policy provides:
 *   using V;                        // vector register type
 *   static constexpr int kLanes;    // fp32 lanes per V
 *   static constexpr int kAcc;      // independent accumulator chains
 *   V zero(); V load(const float*); V madd(V a, V b, V acc);
 *   V add(V, V); void store(float*, V);
 *   float reduce(const V acc[kAcc]);           // fixed pairwise tree
 *   V broadcast(float); V loadU8(const uint8_t*);
 *   V dequantMadd(V v, V scale, V bias);       // v*scale + bias
 */

#ifndef RECPERF_OPS_MICROKERNELS_IMPL_HH
#define RECPERF_OPS_MICROKERNELS_IMPL_HH

#include <algorithm>

#include "ops/microkernels.hh"

namespace recperf {
namespace microkernels {

// Per-ISA kernel-set accessors, one per translation unit. A tier whose
// ISA the toolchain could not target returns available=false.
const IsaKernels &scalarKernels();
const IsaKernels &avx2Kernels();
const IsaKernels &avx512Kernels();

namespace detail {

/**
 * One register tile: COLS packed columns against one A row. The K walk
 * steps kLanes*kAcc floats at a time across pack chunks (chunk edges
 * are STEP-aligned because kc % kKcQuantum == 0), merges the chains
 * with Ops::reduce's fixed tree, then folds the ragged tail (< STEP
 * elements, always inside the last chunk) sequentially — the same
 * shape the seed dotUnrolled used, independent of kc/nr/blocking.
 */
template <class Ops, int COLS>
inline void
gemmTile(const float *arow, const float *pack, float *crow, int64_t j0,
         int64_t w, int64_t k, int64_t kc, bool accumulate)
{
    constexpr int64_t STEP =
        static_cast<int64_t>(Ops::kLanes) * Ops::kAcc;
    typename Ops::V acc[COLS][Ops::kAcc];
    for (int c = 0; c < COLS; ++c)
        for (int a = 0; a < Ops::kAcc; ++a)
            acc[c][a] = Ops::zero();

    const int64_t k_main = k - (k % STEP);
    const int64_t chunks = kc > 0 ? (k + kc - 1) / kc : 0;
    for (int64_t q = 0; q < chunks; ++q) {
        const int64_t base = q * kc;
        const int64_t kb = std::min(kc, k - base);
        const int64_t mb = std::min(kb, k_main - base);
        const float *x = arow + base;
        const float *bcol[COLS];
        for (int c = 0; c < COLS; ++c)
            bcol[c] = pack + (q * w + j0 + c) * kc;
        for (int64_t p = 0; p + STEP <= mb; p += STEP) {
            for (int a = 0; a < Ops::kAcc; ++a) {
                const int64_t off = p + a * Ops::kLanes;
                const typename Ops::V xv = Ops::load(x + off);
                for (int c = 0; c < COLS; ++c)
                    acc[c][a] =
                        Ops::madd(xv, Ops::load(bcol[c] + off), acc[c][a]);
            }
        }
    }

    float red[COLS];
    for (int c = 0; c < COLS; ++c)
        red[c] = Ops::reduce(acc[c]);

    if (k_main < k) {
        const int64_t q = chunks - 1;
        const int64_t base = q * kc;
        const float *x = arow + base;
        for (int c = 0; c < COLS; ++c) {
            const float *bc = pack + (q * w + j0 + c) * kc;
            float r = red[c];
            for (int64_t p = k_main - base; p < k - base; ++p)
                r += x[p] * bc[p];
            red[c] = r;
        }
    }

    for (int c = 0; c < COLS; ++c) {
        float *out = crow + j0 + c;
        *out = accumulate ? *out + red[c] : red[c];
    }
}

/** Row driver: nr-wide tiles, then the ragged column remainder. The
 *  per-column arithmetic is identical for every tile width, so nr is
 *  a bit-neutral tunable. */
template <class Ops>
void
gemmRowImpl(const float *arow, const float *pack, float *crow, int64_t w,
            int64_t k, int64_t kc, int nr, bool accumulate)
{
    int64_t j = 0;
    if (nr >= 4) {
        for (; j + 4 <= w; j += 4)
            gemmTile<Ops, 4>(arow, pack, crow, j, w, k, kc, accumulate);
    }
    if (nr >= 2) {
        for (; j + 2 <= w; j += 2)
            gemmTile<Ops, 2>(arow, pack, crow, j, w, k, kc, accumulate);
    }
    for (; j < w; ++j)
        gemmTile<Ops, 1>(arow, pack, crow, j, w, k, kc, accumulate);
}

/** dst += src: element-independent vertical adds — bit-identical to
 *  scalar on every tier and at every unroll. */
template <class Ops, int U>
void
slsAccumImpl(float *dst, const float *src, int64_t dim)
{
    constexpr int64_t STEP = static_cast<int64_t>(Ops::kLanes) * U;
    int64_t c = 0;
    for (; c + STEP <= dim; c += STEP) {
        for (int u = 0; u < U; ++u) {
            const int64_t off = c + u * Ops::kLanes;
            Ops::store(dst + off,
                       Ops::add(Ops::load(dst + off), Ops::load(src + off)));
        }
    }
    for (; c < dim; ++c)
        dst[c] += src[c];
}

/** dst[c] += codes[c]*scale + bias. Vector tiers fuse the dequantize
 *  into one FMA rounding; the scalar tail keeps the two-rounding form
 *  (tolerance contract, not bitwise, across tiers). */
template <class Ops, int U>
void
qslsAccumImpl(float *dst, const uint8_t *codes, float scale, float bias,
              int64_t dim)
{
    constexpr int64_t STEP = static_cast<int64_t>(Ops::kLanes) * U;
    const typename Ops::V vs = Ops::broadcast(scale);
    const typename Ops::V vb = Ops::broadcast(bias);
    int64_t c = 0;
    for (; c + STEP <= dim; c += STEP) {
        for (int u = 0; u < U; ++u) {
            const int64_t off = c + u * Ops::kLanes;
            const typename Ops::V t =
                Ops::dequantMadd(Ops::loadU8(codes + off), vs, vb);
            Ops::store(dst + off, Ops::add(Ops::load(dst + off), t));
        }
    }
    for (; c < dim; ++c) {
        const float t = static_cast<float>(codes[c]) * scale + bias;
        dst[c] += t;
    }
}

/** Assemble the full kernel set for one Ops policy. */
template <class Ops>
IsaKernels
makeKernels()
{
    IsaKernels k;
    k.available = true;
    k.gemmRow = &gemmRowImpl<Ops>;
    k.slsAccum[0] = &slsAccumImpl<Ops, 1>;
    k.slsAccum[1] = &slsAccumImpl<Ops, 2>;
    k.qslsAccum[0] = &qslsAccumImpl<Ops, 1>;
    k.qslsAccum[1] = &qslsAccumImpl<Ops, 2>;
    return k;
}

} // namespace detail
} // namespace microkernels
} // namespace recperf

#endif // RECPERF_OPS_MICROKERNELS_IMPL_HH
