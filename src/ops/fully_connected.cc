#include "ops/fully_connected.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "backend/compute_backend.hh"
#include "core/aligned.hh"
#include "core/logging.hh"
#include "core/rng.hh"
#include "core/thread_pool.hh"
#include "obs/trace.hh"
#include "ops/kernel_cache.hh"
#include "ops/microkernels.hh"

namespace recperf {

void
gemmBt(const float *a, const float *b, float *c, int64_t m, int64_t n,
       int64_t k, bool accumulate)
{
    obs::Tracer::Scope trace(obs::Tracer::global(), "op", "gemmBt");
    if (m == 0)
        return;
    if (n == 0 || k == 0) {
        if (!accumulate)
            std::fill(c, c + m * n, 0.0f);
        return;
    }
    // One acquire-load dispatch in the steady state; the first touch
    // of a shape tunes under the cache mutex (never on the pool).
    const KernelCache::GemmEntry &entry =
        activeBackend().gemmKernel(m, n, k);
    const GemmPlan &plan = entry.plan;
    const size_t pack_floats = static_cast<size_t>(
        microkernels::gemmPackFloats(plan.blk.nc, k, plan.blk.kc));
    const auto t0 = std::chrono::steady_clock::now();
    // MC is the parallel grain: each chunk packs its own B panels
    // (64-byte-aligned scratch) and reduces its rows completely, so
    // chunks can land on any thread without changing a single bit.
    parallelFor(0, m, plan.blk.mc, [&](int64_t m0, int64_t m1) {
        AlignedBuffer<float> pack(pack_floats);
        runGemmPanel(a, b, c, m0, m1, n, k, plan, pack.data(),
                     accumulate);
    });
    entry.recordCall(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
}

FullyConnected::FullyConnected(int64_t in_features, int64_t out_features)
    : in_(in_features), out_(out_features),
      weight_({out_features, in_features}), bias_({out_features})
{
    RP_ASSERT(in_features > 0 && out_features > 0,
              "FC dims must be positive, got %lld x %lld",
              static_cast<long long>(in_features),
              static_cast<long long>(out_features));
}

FullyConnected::FullyConnected(int64_t in_features, int64_t out_features,
                               Rng &rng)
    : FullyConnected(in_features, out_features)
{
    // He initialization keeps activation magnitudes stable through ReLU
    // stacks.
    float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
    weight_.fillGaussian(rng, stddev);
    bias_.fill(0.0f);
}

Tensor
FullyConnected::forward(const Tensor &x) const
{
    obs::Tracer::Scope trace(obs::Tracer::global(), "op", "FC::forward");
    RP_ASSERT(x.rank() == 2, "FC input must be rank 2, got %s",
              shapeToString(x.shape()).c_str());
    RP_ASSERT(x.dim(1) == in_, "FC input width %lld != in_features %lld",
              static_cast<long long>(x.dim(1)), static_cast<long long>(in_));

    int64_t batch = x.dim(0);
    Tensor y({batch, out_});
    gemmBt(x.data(), weight_.data(), y.data(), batch, out_, in_,
           /*accumulate=*/false);
    for (int64_t i = 0; i < batch; ++i) {
        float *row = y.data() + i * out_;
        for (int64_t j = 0; j < out_; ++j)
            row[j] += bias_.at(j);
    }
    return y;
}

OpCost
FullyConnected::cost(int64_t batch, int64_t in_features, int64_t out_features)
{
    OpCost c;
    // One multiply-add per (batch, out, in) triple plus the bias add.
    c.flops = 2.0 * static_cast<double>(batch) *
        static_cast<double>(in_features) * static_cast<double>(out_features) +
        static_cast<double>(batch) * static_cast<double>(out_features);
    // Weights + bias are read once; the input panel is read once.
    c.bytesRead = sizeof(float) *
        (static_cast<double>(in_features) * static_cast<double>(out_features) +
         static_cast<double>(out_features) +
         static_cast<double>(batch) * static_cast<double>(in_features));
    c.bytesWritten = sizeof(float) * static_cast<double>(batch) *
        static_cast<double>(out_features);
    return c;
}

} // namespace recperf
