#include "ops/fully_connected.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"
#include "core/rng.hh"

namespace recperf {

namespace {

// Block sizes chosen so an A-panel plus a B-panel fit comfortably in a
// 32 KB L1 cache.
constexpr int64_t kBlockM = 32;
constexpr int64_t kBlockN = 32;
constexpr int64_t kBlockK = 256;

} // namespace

void
gemmBt(const float *a, const float *b, float *c, int64_t m, int64_t n,
       int64_t k, bool accumulate)
{
    if (!accumulate) {
        std::fill(c, c + m * n, 0.0f);
    }
    for (int64_t m0 = 0; m0 < m; m0 += kBlockM) {
        int64_t m1 = std::min(m0 + kBlockM, m);
        for (int64_t n0 = 0; n0 < n; n0 += kBlockN) {
            int64_t n1 = std::min(n0 + kBlockN, n);
            for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
                int64_t k1 = std::min(k0 + kBlockK, k);
                for (int64_t i = m0; i < m1; ++i) {
                    const float *arow = a + i * k;
                    float *crow = c + i * n;
                    for (int64_t j = n0; j < n1; ++j) {
                        const float *brow = b + j * k;
                        float acc = 0.0f;
                        for (int64_t p = k0; p < k1; ++p)
                            acc += arow[p] * brow[p];
                        crow[j] += acc;
                    }
                }
            }
        }
    }
}

FullyConnected::FullyConnected(int64_t in_features, int64_t out_features)
    : in_(in_features), out_(out_features),
      weight_({out_features, in_features}), bias_({out_features})
{
    RP_ASSERT(in_features > 0 && out_features > 0,
              "FC dims must be positive, got %lld x %lld",
              static_cast<long long>(in_features),
              static_cast<long long>(out_features));
}

FullyConnected::FullyConnected(int64_t in_features, int64_t out_features,
                               Rng &rng)
    : FullyConnected(in_features, out_features)
{
    // He initialization keeps activation magnitudes stable through ReLU
    // stacks.
    float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
    weight_.fillGaussian(rng, stddev);
    bias_.fill(0.0f);
}

Tensor
FullyConnected::forward(const Tensor &x) const
{
    RP_ASSERT(x.rank() == 2, "FC input must be rank 2, got %s",
              shapeToString(x.shape()).c_str());
    RP_ASSERT(x.dim(1) == in_, "FC input width %lld != in_features %lld",
              static_cast<long long>(x.dim(1)), static_cast<long long>(in_));

    int64_t batch = x.dim(0);
    Tensor y({batch, out_});
    gemmBt(x.data(), weight_.data(), y.data(), batch, out_, in_,
           /*accumulate=*/false);
    for (int64_t i = 0; i < batch; ++i) {
        float *row = y.data() + i * out_;
        for (int64_t j = 0; j < out_; ++j)
            row[j] += bias_.at(j);
    }
    return y;
}

OpCost
FullyConnected::cost(int64_t batch, int64_t in_features, int64_t out_features)
{
    OpCost c;
    // One multiply-add per (batch, out, in) triple plus the bias add.
    c.flops = 2.0 * static_cast<double>(batch) *
        static_cast<double>(in_features) * static_cast<double>(out_features) +
        static_cast<double>(batch) * static_cast<double>(out_features);
    // Weights + bias are read once; the input panel is read once.
    c.bytesRead = sizeof(float) *
        (static_cast<double>(in_features) * static_cast<double>(out_features) +
         static_cast<double>(out_features) +
         static_cast<double>(batch) * static_cast<double>(in_features));
    c.bytesWritten = sizeof(float) * static_cast<double>(batch) *
        static_cast<double>(out_features);
    return c;
}

} // namespace recperf
