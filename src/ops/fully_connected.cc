#include "ops/fully_connected.hh"

#include <algorithm>
#include <cmath>

#include "core/aligned.hh"
#include "core/logging.hh"
#include "core/rng.hh"
#include "core/thread_pool.hh"
#include "obs/trace.hh"

namespace recperf {

namespace {

// Block sizes chosen so an A-panel plus a B-panel fit comfortably in a
// 32 KB L1 cache.
constexpr int64_t kBlockM = 32;
constexpr int64_t kBlockN = 32;
constexpr int64_t kBlockK = 256;

/**
 * Dot product over @p len elements, unrolled by 4 with independent
 * accumulators so the FMA chains don't serialize. The split-then-merge
 * accumulation order is fixed, which is what keeps gemmBt
 * deterministic at every thread count.
 */
inline float
dotUnrolled(const float *__restrict x, const float *__restrict y,
            int64_t len)
{
    float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
    int64_t p = 0;
    for (; p + 4 <= len; p += 4) {
        acc0 += x[p + 0] * y[p + 0];
        acc1 += x[p + 1] * y[p + 1];
        acc2 += x[p + 2] * y[p + 2];
        acc3 += x[p + 3] * y[p + 3];
    }
    float acc = (acc0 + acc1) + (acc2 + acc3);
    for (; p < len; ++p)
        acc += x[p] * y[p];
    return acc;
}

/**
 * One M-row panel of the blocked GEMM. Every output row in [m0, m1) is
 * reduced entirely here in a fixed k-block order, so panels can run on
 * different threads without changing a single bit of the result. Each
 * B block is packed once into @p pack (kBlockN x kBlockK, 64-byte
 * aligned) and reused across the whole row panel — a layout change
 * only, never an arithmetic one.
 */
void
gemmBtPanel(const float *__restrict a, const float *__restrict b,
            float *__restrict c, int64_t m0, int64_t m1, int64_t n,
            int64_t k, float *__restrict pack)
{
    for (int64_t n0 = 0; n0 < n; n0 += kBlockN) {
        int64_t n1 = std::min(n0 + kBlockN, n);
        for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
            int64_t k1 = std::min(k0 + kBlockK, k);
            int64_t kb = k1 - k0;
            for (int64_t j = n0; j < n1; ++j) {
                const float *__restrict brow = b + j * k + k0;
                std::copy(brow, brow + kb, pack + (j - n0) * kBlockK);
            }
            for (int64_t i = m0; i < m1; ++i) {
                const float *__restrict arow = a + i * k + k0;
                float *__restrict crow = c + i * n;
                for (int64_t j = n0; j < n1; ++j) {
                    crow[j] += dotUnrolled(
                        arow, pack + (j - n0) * kBlockK, kb);
                }
            }
        }
    }
}

} // namespace

void
gemmBt(const float *a, const float *b, float *c, int64_t m, int64_t n,
       int64_t k, bool accumulate)
{
    obs::Tracer::Scope trace(obs::Tracer::global(), "op", "gemmBt");
    if (n == 0 || k == 0) {
        if (!accumulate)
            std::fill(c, c + m * n, 0.0f);
        return;
    }
    parallelFor(0, m, kBlockM, [&](int64_t m0, int64_t m1) {
        if (!accumulate)
            std::fill(c + m0 * n, c + m1 * n, 0.0f);
        AlignedBuffer<float> pack(
            static_cast<size_t>(kBlockN * kBlockK));
        gemmBtPanel(a, b, c, m0, m1, n, k, pack.data());
    });
}

FullyConnected::FullyConnected(int64_t in_features, int64_t out_features)
    : in_(in_features), out_(out_features),
      weight_({out_features, in_features}), bias_({out_features})
{
    RP_ASSERT(in_features > 0 && out_features > 0,
              "FC dims must be positive, got %lld x %lld",
              static_cast<long long>(in_features),
              static_cast<long long>(out_features));
}

FullyConnected::FullyConnected(int64_t in_features, int64_t out_features,
                               Rng &rng)
    : FullyConnected(in_features, out_features)
{
    // He initialization keeps activation magnitudes stable through ReLU
    // stacks.
    float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
    weight_.fillGaussian(rng, stddev);
    bias_.fill(0.0f);
}

Tensor
FullyConnected::forward(const Tensor &x) const
{
    obs::Tracer::Scope trace(obs::Tracer::global(), "op", "FC::forward");
    RP_ASSERT(x.rank() == 2, "FC input must be rank 2, got %s",
              shapeToString(x.shape()).c_str());
    RP_ASSERT(x.dim(1) == in_, "FC input width %lld != in_features %lld",
              static_cast<long long>(x.dim(1)), static_cast<long long>(in_));

    int64_t batch = x.dim(0);
    Tensor y({batch, out_});
    gemmBt(x.data(), weight_.data(), y.data(), batch, out_, in_,
           /*accumulate=*/false);
    for (int64_t i = 0; i < batch; ++i) {
        float *row = y.data() + i * out_;
        for (int64_t j = 0; j < out_; ++j)
            row[j] += bias_.at(j);
    }
    return y;
}

OpCost
FullyConnected::cost(int64_t batch, int64_t in_features, int64_t out_features)
{
    OpCost c;
    // One multiply-add per (batch, out, in) triple plus the bias add.
    c.flops = 2.0 * static_cast<double>(batch) *
        static_cast<double>(in_features) * static_cast<double>(out_features) +
        static_cast<double>(batch) * static_cast<double>(out_features);
    // Weights + bias are read once; the input panel is read once.
    c.bytesRead = sizeof(float) *
        (static_cast<double>(in_features) * static_cast<double>(out_features) +
         static_cast<double>(out_features) +
         static_cast<double>(batch) * static_cast<double>(in_features));
    c.bytesWritten = sizeof(float) * static_cast<double>(batch) *
        static_cast<double>(out_features);
    return c;
}

} // namespace recperf
