#include "ops/quantized_embedding.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "backend/compute_backend.hh"
#include "core/logging.hh"
#include "core/thread_pool.hh"
#include "obs/trace.hh"
#include "ops/integrity.hh"
#include "ops/kernel_cache.hh"

namespace recperf {

QuantizedEmbeddingTable::QuantizedEmbeddingTable(const EmbeddingTable &source)
    : rows_(source.rows()), dim_(source.dim())
{
    codes_.resize(static_cast<size_t>(rows_ * dim_));
    scales_.resize(static_cast<size_t>(rows_));
    biases_.resize(static_cast<size_t>(rows_));

    const Tensor &table = source.table();
    for (int64_t r = 0; r < rows_; ++r) {
        const float *row = table.data() + r * dim_;
        float lo = row[0], hi = row[0];
        for (int64_t c = 1; c < dim_; ++c) {
            lo = std::min(lo, row[c]);
            hi = std::max(hi, row[c]);
        }
        float scale = (hi - lo) / 255.0f;
        if (scale == 0.0f)
            scale = 1.0f; // constant row; all codes become 0
        scales_[static_cast<size_t>(r)] = scale;
        biases_[static_cast<size_t>(r)] = lo;
        for (int64_t c = 0; c < dim_; ++c) {
            float q = std::round((row[c] - lo) / scale);
            q = std::clamp(q, 0.0f, 255.0f);
            codes_[static_cast<size_t>(r * dim_ + c)] =
                static_cast<uint8_t>(q);
        }
    }
}

void
QuantizedEmbeddingTable::dequantizeRow(int64_t row, float *out) const
{
    RP_ASSERT(row >= 0 && row < rows_, "row %lld out of %lld",
              static_cast<long long>(row), static_cast<long long>(rows_));
    float scale = scales_[static_cast<size_t>(row)];
    float bias = biases_[static_cast<size_t>(row)];
    const uint8_t *codes = codes_.data() + row * dim_;
    for (int64_t c = 0; c < dim_; ++c)
        out[c] = static_cast<float>(codes[c]) * scale + bias;
}

Tensor
QuantizedEmbeddingTable::forward(const std::vector<int64_t> &ids,
                                 const std::vector<int64_t> &lengths,
                                 SlsReduction reduction) const
{
    obs::Tracer::Scope trace(obs::Tracer::global(), "op",
                             "QSLS::forward");
    int64_t total = std::accumulate(lengths.begin(), lengths.end(),
                                    static_cast<int64_t>(0));
    RP_ASSERT(total == static_cast<int64_t>(ids.size()),
              "sum(lengths)=%lld != ids.size()=%zu",
              static_cast<long long>(total), ids.size());

    // Same inline integrity hook as EmbeddingTable::forward: a single
    // relaxed load when disabled, serial sampled verification when on.
    if (IntegrityRuntime::global().enabled())
        IntegrityRuntime::global().onLookup(this, ids);

    // Mirrors EmbeddingTable::forward: prefix offsets decouple the
    // slots, the pool fans them out, and the dequantize scratch row is
    // per-chunk so threads never share it.
    int64_t slots = static_cast<int64_t>(lengths.size());
    std::vector<int64_t> offsets(static_cast<size_t>(slots) + 1, 0);
    for (int64_t slot = 0; slot < slots; ++slot) {
        RP_ASSERT(lengths[static_cast<size_t>(slot)] >= 0,
                  "negative length at slot %lld",
                  static_cast<long long>(slot));
        offsets[static_cast<size_t>(slot) + 1] =
            offsets[static_cast<size_t>(slot)] +
            lengths[static_cast<size_t>(slot)];
    }

    // Fused dequantize-accumulate through the tuned kernel: no scratch
    // row, and vector tiers fold the mul-add into one FMA (tolerance,
    // not bitwise, vs the scalar tier — DESIGN.md §14).
    const KernelCache::SlsEntry &entry = activeBackend().slsKernel(
        dim_, poolingBucket(slots > 0 ? total / slots : 0),
        /*quantized=*/true);
    const microkernels::QslsAccumFn accum = entry.plan.qfn;

    Tensor out({slots, dim_});
    int64_t grain = std::max<int64_t>(
        1, 4096 / std::max<int64_t>(1, dim_));
    const auto t0 = std::chrono::steady_clock::now();
    parallelFor(0, slots, grain, [&](int64_t lo, int64_t hi) {
        for (int64_t slot = lo; slot < hi; ++slot) {
            size_t cursor =
                static_cast<size_t>(offsets[static_cast<size_t>(slot)]);
            int64_t len = lengths[static_cast<size_t>(slot)];
            float *dst = out.data() + slot * dim_;
            for (int64_t j = 0; j < len; ++j) {
                int64_t id = ids[cursor++];
                RP_ASSERT(id >= 0 && id < rows_,
                          "sparse ID %lld out of table rows %lld",
                          static_cast<long long>(id),
                          static_cast<long long>(rows_));
                accum(dst, codes_.data() + id * dim_,
                      scales_[static_cast<size_t>(id)],
                      biases_[static_cast<size_t>(id)], dim_);
            }
            if (reduction == SlsReduction::Mean && len > 0) {
                float inv = 1.0f / static_cast<float>(len);
                for (int64_t c = 0; c < dim_; ++c)
                    dst[c] *= inv;
            }
        }
    });
    entry.recordCall(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
    return out;
}

float
QuantizedEmbeddingTable::maxQuantizationStep() const
{
    float widest = 0.0f;
    for (float s : scales_)
        widest = std::max(widest, s);
    return widest;
}

OpCost
QuantizedEmbeddingTable::cost(int64_t total_ids, int64_t outputs,
                              int64_t dim)
{
    OpCost c;
    // Dequantize (mul+add) then accumulate: 3 flops per element.
    c.flops = 3.0 * static_cast<double>(total_ids) *
        static_cast<double>(dim);
    c.bytesRead = static_cast<double>(total_ids) *
            (static_cast<double>(dim) + 8.0) +
        static_cast<double>(total_ids) * sizeof(int64_t);
    c.bytesWritten = static_cast<double>(outputs) *
        static_cast<double>(dim) * sizeof(float);
    return c;
}

} // namespace recperf
