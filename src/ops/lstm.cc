#include "ops/lstm.hh"

#include <cmath>

#include "core/logging.hh"
#include "core/rng.hh"

namespace recperf {

namespace {

float
sigmoidScalar(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

} // namespace

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size)
    : input_(input_size), hidden_(hidden_size),
      w_(input_size, 4 * hidden_size), u_(hidden_size, 4 * hidden_size)
{
    RP_ASSERT(input_size > 0 && hidden_size > 0,
              "LSTM dims must be positive");
}

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size, Rng &rng)
    : LstmCell(input_size, hidden_size)
{
    float scale = 1.0f / std::sqrt(static_cast<float>(hidden_size));
    w_.weight().fillUniform(rng, -scale, scale);
    u_.weight().fillUniform(rng, -scale, scale);
    // Standard trick: positive forget-gate bias stabilizes early state.
    for (int64_t j = 0; j < hidden_; ++j)
        w_.bias().at(hidden_ + j) = 1.0f;
}

LstmState
LstmCell::initialState(int64_t batch) const
{
    return {Tensor({batch, hidden_}), Tensor({batch, hidden_})};
}

LstmState
LstmCell::forward(const Tensor &x, const LstmState &state) const
{
    RP_ASSERT(x.rank() == 2 && x.dim(1) == input_,
              "LSTM input shape %s mismatches input size %lld",
              shapeToString(x.shape()).c_str(),
              static_cast<long long>(input_));
    int64_t batch = x.dim(0);
    RP_ASSERT(state.h.dim(0) == batch && state.c.dim(0) == batch,
              "LSTM state batch mismatch");

    // Fused gate pre-activations: [i; f; g; o] per sample.
    Tensor gates = w_.forward(x);
    Tensor recur = u_.forward(state.h);
    for (int64_t i = 0; i < gates.size(); ++i)
        gates.data()[i] += recur.data()[i];

    LstmState next = initialState(batch);
    for (int64_t b = 0; b < batch; ++b) {
        const float *g = gates.data() + b * 4 * hidden_;
        const float *c_prev = state.c.data() + b * hidden_;
        float *c_next = next.c.data() + b * hidden_;
        float *h_next = next.h.data() + b * hidden_;
        for (int64_t j = 0; j < hidden_; ++j) {
            float in_gate = sigmoidScalar(g[j]);
            float forget = sigmoidScalar(g[hidden_ + j]);
            float cand = std::tanh(g[2 * hidden_ + j]);
            float out_gate = sigmoidScalar(g[3 * hidden_ + j]);
            c_next[j] = forget * c_prev[j] + in_gate * cand;
            h_next[j] = out_gate * std::tanh(c_next[j]);
        }
    }
    return next;
}

LstmState
LstmCell::forwardSequence(const Tensor &xs, LstmState state) const
{
    RP_ASSERT(xs.rank() == 3 && xs.dim(2) == input_,
              "sequence shape %s mismatches input size %lld",
              shapeToString(xs.shape()).c_str(),
              static_cast<long long>(input_));
    int64_t seq = xs.dim(0), batch = xs.dim(1);
    for (int64_t t = 0; t < seq; ++t) {
        Tensor x({batch, input_});
        std::memcpy(x.data(), xs.data() + t * batch * input_,
                    static_cast<size_t>(batch * input_) * sizeof(float));
        state = forward(x, state);
    }
    return state;
}

int64_t
LstmCell::paramCount() const
{
    return w_.paramCount() + u_.paramCount();
}

OpCost
LstmCell::cost(int64_t batch, int64_t input_size, int64_t hidden_size)
{
    OpCost c = FullyConnected::cost(batch, input_size, 4 * hidden_size);
    c += FullyConnected::cost(batch, hidden_size, 4 * hidden_size);
    // Element-wise gate math: ~8 ops per hidden unit.
    c.flops += 8.0 * static_cast<double>(batch) *
        static_cast<double>(hidden_size);
    c.bytesRead += 8.0 * static_cast<double>(batch) *
        static_cast<double>(hidden_size);
    c.bytesWritten += 8.0 * static_cast<double>(batch) *
        static_cast<double>(hidden_size);
    return c;
}

} // namespace recperf
