#include "ops/lstm.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/logging.hh"
#include "core/rng.hh"
#include "core/thread_pool.hh"

namespace recperf {

namespace {

float
sigmoidScalar(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

} // namespace

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size)
    : input_(input_size), hidden_(hidden_size),
      w_(input_size, 4 * hidden_size), u_(hidden_size, 4 * hidden_size)
{
    RP_ASSERT(input_size > 0 && hidden_size > 0,
              "LSTM dims must be positive");
}

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size, Rng &rng)
    : LstmCell(input_size, hidden_size)
{
    float scale = 1.0f / std::sqrt(static_cast<float>(hidden_size));
    w_.weight().fillUniform(rng, -scale, scale);
    u_.weight().fillUniform(rng, -scale, scale);
    // Standard trick: positive forget-gate bias stabilizes early state.
    for (int64_t j = 0; j < hidden_; ++j)
        w_.bias().at(hidden_ + j) = 1.0f;
}

LstmState
LstmCell::initialState(int64_t batch) const
{
    return {Tensor({batch, hidden_}), Tensor({batch, hidden_})};
}

LstmState
LstmCell::forward(const Tensor &x, const LstmState &state) const
{
    RP_ASSERT(x.rank() == 2 && x.dim(1) == input_,
              "LSTM input shape %s mismatches input size %lld",
              shapeToString(x.shape()).c_str(),
              static_cast<long long>(input_));
    // Fused gate pre-activations: [i; f; g; o] per sample.
    return stepPreGated(w_.forward(x), state);
}

LstmState
LstmCell::stepPreGated(Tensor gates, const LstmState &state) const
{
    int64_t batch = gates.dim(0);
    RP_ASSERT(state.h.dim(0) == batch && state.c.dim(0) == batch,
              "LSTM state batch mismatch");

    Tensor recur = u_.forward(state.h);
    for (int64_t i = 0; i < gates.size(); ++i)
        gates.data()[i] += recur.data()[i];

    LstmState next = initialState(batch);
    // Gate math is independent per sample; keep chunks at ~1K
    // transcendentals each.
    int64_t grain = std::max<int64_t>(
        1, 1024 / std::max<int64_t>(1, hidden_));
    parallelFor(0, batch, grain, [&](int64_t lo, int64_t hi) {
        for (int64_t b = lo; b < hi; ++b) {
            const float *g = gates.data() + b * 4 * hidden_;
            const float *c_prev = state.c.data() + b * hidden_;
            float *c_next = next.c.data() + b * hidden_;
            float *h_next = next.h.data() + b * hidden_;
            for (int64_t j = 0; j < hidden_; ++j) {
                float in_gate = sigmoidScalar(g[j]);
                float forget = sigmoidScalar(g[hidden_ + j]);
                float cand = std::tanh(g[2 * hidden_ + j]);
                float out_gate = sigmoidScalar(g[3 * hidden_ + j]);
                c_next[j] = forget * c_prev[j] + in_gate * cand;
                h_next[j] = out_gate * std::tanh(c_next[j]);
            }
        }
    });
    return next;
}

LstmState
LstmCell::forwardSequence(const Tensor &xs, LstmState state) const
{
    RP_ASSERT(xs.rank() == 3 && xs.dim(2) == input_,
              "sequence shape %s mismatches input size %lld",
              shapeToString(xs.shape()).c_str(),
              static_cast<long long>(input_));
    int64_t seq = xs.dim(0), batch = xs.dim(1);
    if (seq == 0)
        return state;
    // The input-side gate projections are independent across time, so
    // one [seq*batch, 4h] GEMM replaces seq small ones; each row is
    // reduced exactly as the per-step kernel would, so the state
    // trajectory is bitwise-unchanged.
    Tensor all_gates = w_.forward(xs.reshaped({seq * batch, input_}));
    for (int64_t t = 0; t < seq; ++t) {
        Tensor gates({batch, 4 * hidden_});
        std::memcpy(gates.data(),
                    all_gates.data() + t * batch * 4 * hidden_,
                    static_cast<size_t>(batch * 4 * hidden_) *
                        sizeof(float));
        state = stepPreGated(std::move(gates), state);
    }
    return state;
}

int64_t
LstmCell::paramCount() const
{
    return w_.paramCount() + u_.paramCount();
}

OpCost
LstmCell::cost(int64_t batch, int64_t input_size, int64_t hidden_size)
{
    OpCost c = FullyConnected::cost(batch, input_size, 4 * hidden_size);
    c += FullyConnected::cost(batch, hidden_size, 4 * hidden_size);
    // Element-wise gate math: ~8 ops per hidden unit.
    c.flops += 8.0 * static_cast<double>(batch) *
        static_cast<double>(hidden_size);
    c.bytesRead += 8.0 * static_cast<double>(batch) *
        static_cast<double>(hidden_size);
    c.bytesWritten += 8.0 * static_cast<double>(batch) *
        static_cast<double>(hidden_size);
    return c;
}

} // namespace recperf
