/**
 * @file
 * Silent-data-corruption defense for parameter state.
 *
 * Embedding tables dominate the models' DRAM footprint (§II, §V), which
 * makes them the largest silent-data-corruption surface: a flipped bit
 * in a hot row poisons every ranking that touches it without a crash or
 * timeout. This file supplies the functional half of the defense:
 *
 *  - IntegrityShield: per-row FNV-1a checksums plus a golden byte
 *    snapshot over any row-organized parameter block (fp32 embedding
 *    tables, quantized code/scale/bias triples, FC weight+bias rows),
 *    with primitive corruption operators (bit flips, stuck rows) and
 *    golden-copy repair;
 *  - IntegrityRuntime: a process-wide registry that, when enabled,
 *    samples SLS lookup batches and verifies the touched rows inline.
 *    Disabled (the default) it costs exactly one relaxed atomic load
 *    per lookup batch and leaves eval output bitwise identical;
 *  - output-guard helpers: NaN/inf/range envelopes over activations.
 *
 * The virtual-time serving model (src/resilience/sdc.hh) reuses the
 * CorruptionKind taxonomy defined here.
 */

#ifndef RECPERF_OPS_INTEGRITY_HH
#define RECPERF_OPS_INTEGRITY_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace recperf {

class EmbeddingTable;
class QuantizedEmbeddingTable;
class FullyConnected;
class Rng;

namespace obs {
class MetricsRegistry;
}

/** FNV-1a 64-bit hash (the repo's eval-checksum primitive). */
uint64_t fnv1a(const void *data, size_t bytes,
               uint64_t h = 0xcbf29ce484222325ULL);

/** Memory-corruption event kinds modeled by the fault axis. */
enum class CorruptionKind
{
    SingleBitFlip, ///< one flipped bit in a row
    MultiBitFlip,  ///< a burst of flipped bits in one row
    StuckRow,      ///< whole row reads as stuck-at-one (0xFF bytes)
};

/** Stable lower_snake name of a corruption kind (logs, traces). */
const char *corruptionKindName(CorruptionKind kind);

/**
 * Checksums + golden copy over a row-organized parameter block.
 *
 * A shield views its target as @c rows logical rows, each the
 * concatenation of one slice per Region (so a quantized row covers its
 * int8 codes, fp32 scale and fp32 bias even though they live in three
 * separate arrays). seal() records per-row checksums and a golden byte
 * snapshot; verifyRow()/scanCorrupted() detect divergence; repairRow()
 * restores the golden bytes. Checksum granularity is per row: coarser
 * (whole-table) cannot localize for quarantine, finer (per cache line)
 * multiplies metadata 8x for no extra recall (DESIGN.md §15).
 */
class IntegrityShield
{
  public:
    /** One strided byte slice contributing to every logical row. */
    struct Region
    {
        uint8_t *data;      ///< base of row 0's slice
        size_t strideBytes; ///< distance between consecutive rows
        size_t rowBytes;    ///< bytes contributed per row
    };

    IntegrityShield(std::string name, int64_t rows,
                    std::vector<Region> regions);

    /** Shield an fp32 embedding table (one region: the row). */
    static IntegrityShield forTable(EmbeddingTable &table,
                                    std::string name = "table");

    /** Shield a quantized table: codes + scale + bias per row. */
    static IntegrityShield forQuantized(QuantizedEmbeddingTable &table,
                                        std::string name = "qtable");

    /** Shield an FC layer: weight row + bias element per output. */
    static IntegrityShield forLayer(FullyConnected &layer,
                                    std::string name = "fc");

    const std::string &name() const { return name_; }
    int64_t rows() const { return rows_; }

    /** Logical bytes per row (sum over regions). */
    size_t rowBytes() const { return row_bytes_; }

    /** Record per-row checksums and the golden snapshot. */
    void seal();

    bool sealed() const { return !checksums_.empty(); }

    /** Checksum of the row's current bytes. */
    uint64_t rowChecksum(int64_t row) const;

    /** True when the row still matches its sealed checksum. */
    bool verifyRow(int64_t row) const;

    /** Full sweep; returns the rows failing verification. */
    std::vector<int64_t> scanCorrupted() const;

    /** Flip one bit; @p bit_offset indexes the logical row bytes. */
    void flipBit(int64_t row, uint64_t bit_offset);

    /**
     * Apply a corruption event; returns the number of bits flipped.
     * MultiBitFlip draws its extra bit positions from @p rng;
     * StuckRow forces every byte to 0xFF (stuck-at-one).
     */
    int corrupt(CorruptionKind kind, int64_t row, uint64_t bit_offset,
                Rng &rng);

    /** Restore the golden bytes; true when any byte changed. */
    bool repairRow(int64_t row);

  private:
    uint8_t *rowByte(int64_t row, size_t offset) const;
    void gatherRow(int64_t row, uint8_t *out) const;

    std::string name_;
    int64_t rows_;
    size_t row_bytes_;
    std::vector<Region> regions_;
    std::vector<uint64_t> checksums_; ///< per row, set by seal()
    std::vector<uint8_t> golden_;     ///< rows_ x row_bytes_ snapshot
};

/** Tally of one NaN/inf/range envelope check over activations. */
struct EnvelopeStats
{
    uint64_t checked = 0; ///< elements examined
    uint64_t nans = 0;    ///< NaN elements
    uint64_t infs = 0;    ///< +-inf elements
    uint64_t range = 0;   ///< finite elements with |x| > maxAbs

    bool clean() const { return nans == 0 && infs == 0 && range == 0; }
};

/**
 * Scan @p n floats against the output envelope; @p max_abs <= 0
 * disables the magnitude bound (NaN/inf still checked).
 */
void checkEnvelope(const float *x, size_t n, float max_abs,
                   EnvelopeStats &stats);

/**
 * Process-wide inline-verification hook on the SLS hot path.
 *
 * Both SLS forwards consult enabled() — one relaxed load — and, only
 * when true, pass their touched IDs to onLookup() before fanning out
 * to the kernel-cache fast path. Lookup batches are sampled
 * deterministically (a per-shield batch counter, independent of thread
 * count: the hook runs serially before the parallelFor); a sampled
 * batch verifies the checksums of its unique touched rows and, on
 * mismatch, repairs from the golden copy so subsequent output is
 * clean. Counters are only meaningful between reset() calls.
 */
class IntegrityRuntime
{
  public:
    static IntegrityRuntime &global();

    /** Fast-path gate; relaxed load, false by default. */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void setEnabled(bool on);

    /**
     * @param sample_rate fraction of lookup batches verified, in
     *        (0, 1]; batch k is verified when k % round(1/rate) == 0.
     * @param repair_on_detect restore golden bytes on mismatch.
     */
    void configure(double sample_rate, bool repair_on_detect = true);

    /** Register @p shield for the table whose `this` is @p key. */
    void attach(const void *key, IntegrityShield *shield);

    void detach(const void *key);

    /** Disable, detach all shields, zero counters, default config. */
    void reset();

    /** Called by the SLS forwards with the batch's touched IDs. */
    void onLookup(const void *key, const std::vector<int64_t> &ids);

    uint64_t batchesSeen() const;
    uint64_t batchesVerified() const;
    uint64_t rowsVerified() const;
    uint64_t corruptionsDetected() const;
    uint64_t rowsRepaired() const;

    /** Export integrity.inline.* counters (call only after use). */
    void exportTo(obs::MetricsRegistry &registry) const;

  private:
    IntegrityRuntime() = default;

    struct Entry
    {
        IntegrityShield *shield = nullptr;
        uint64_t batches = 0; ///< lookup batches seen for this shield
    };

    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    std::unordered_map<const void *, Entry> shields_;
    uint64_t every_n_ = 1; ///< verify every Nth batch per shield
    bool repair_on_detect_ = true;
    uint64_t batches_seen_ = 0;
    uint64_t batches_verified_ = 0;
    uint64_t rows_verified_ = 0;
    uint64_t detected_ = 0;
    uint64_t repaired_ = 0;
};

} // namespace recperf

#endif // RECPERF_OPS_INTEGRITY_HH
